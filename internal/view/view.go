// Package view implements Yamashita–Kameda views of edge-labeled, bicolored
// anonymous networks, the machinery behind the paper's necessary condition
// for election (Theorem 2.1).
//
// The view V(v) of a node v is the infinite edge-labeled rooted tree of all
// labeled walks out of v. Two nodes compute identically in an anonymous
// network iff their views are label-isomorphic. By Norris's theorem, views
// are equal iff they agree to depth n−1, so view equivalence is decidable;
// this package decides it by synchronized partition refinement (depth-k
// classes are exactly k rounds of refinement), keeps the explicit tree
// construction for display and cross-checking, and computes the
// symmetricity σ_ℓ(G) (the common size of the view classes) per labeling as
// well as σ(G) = max over labelings for small graphs.
package view

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Classes holds the view-equivalence classes of a labeled bicolored graph.
type Classes struct {
	// Class[v] is the class index of node v (indices are dense, starting
	// at 0, ordered by smallest member).
	Class []int
	// Members[i] lists the nodes of class i, ascending.
	Members [][]int
}

// depthClasses computes the partition of nodes by view-isomorphism to the
// given depth, via synchronized refinement:
//
//	class_0(v)   = (color(v), deg(v))
//	class_k+1(v) = (class_k(v), multiset over ports p of
//	                 (ℓ_v(p), ℓ_w(twin p), class_k(w)))
//
// which mirrors the recursive definition of V^(k)(v) in the paper's proof
// of Theorem 2.1.
func depthClasses(g *graph.Graph, l graph.EdgeLabeling, colors []int, depth int) []int {
	n := g.N()
	cls := make([]int, n)
	key := make([]string, n)
	for v := 0; v < n; v++ {
		col := 0
		if colors != nil {
			col = colors[v]
		}
		key[v] = fmt.Sprintf("%d|%d", col, g.Deg(v))
	}
	cls = densify(key)
	for k := 0; k < depth; k++ {
		next := make([]string, n)
		for v := 0; v < n; v++ {
			parts := make([]string, 0, g.Deg(v))
			for p, h := range g.Ports(v) {
				parts = append(parts, fmt.Sprintf("%d:%d:%d", l[v][p], l[h.To][h.Twin], cls[h.To]))
			}
			sort.Strings(parts)
			next[v] = fmt.Sprintf("%d#%s", cls[v], strings.Join(parts, ","))
		}
		newCls := densify(next)
		if equalInts(newCls, cls) {
			return cls // stabilized early; deeper views agree
		}
		cls = newCls
	}
	return cls
}

// densify maps distinct strings to dense ints, ordered by first occurrence
// of the smallest node — we instead order classes canonically by sorted key
// so results are reproducible.
func densify(keys []string) []int {
	uniq := append([]string(nil), keys...)
	sort.Strings(uniq)
	id := make(map[string]int)
	next := 0
	for _, k := range uniq {
		if _, ok := id[k]; !ok {
			id[k] = next
			next++
		}
	}
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = id[k]
	}
	return out
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ComputeClasses returns the view-equivalence classes of (g, l, colors).
// colors may be nil (all white). Norris's theorem bounds the needed depth
// by n−1; refinement stops as soon as it stabilizes.
func ComputeClasses(g *graph.Graph, l graph.EdgeLabeling, colors []int) (*Classes, error) {
	if err := l.Validate(g); err != nil {
		return nil, err
	}
	cls := depthClasses(g, l, colors, max(g.N()-1, 0))
	return fromAssignment(cls), nil
}

// ClassesAtDepth returns the coarser partition by views truncated at the
// given depth — exposed so tests can verify Norris's theorem empirically.
func ClassesAtDepth(g *graph.Graph, l graph.EdgeLabeling, colors []int, depth int) (*Classes, error) {
	if err := l.Validate(g); err != nil {
		return nil, err
	}
	return fromAssignment(depthClasses(g, l, colors, depth)), nil
}

func fromAssignment(cls []int) *Classes {
	// Renumber classes by smallest member.
	first := map[int]int{}
	for v, c := range cls {
		if _, ok := first[c]; !ok {
			first[c] = v
		}
	}
	type pair struct{ min, old int }
	var ps []pair
	for c, m := range first {
		ps = append(ps, pair{m, c})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].min < ps[j].min })
	renum := make(map[int]int, len(ps))
	for i, p := range ps {
		renum[p.old] = i
	}
	out := &Classes{Class: make([]int, len(cls)), Members: make([][]int, len(ps))}
	for v, c := range cls {
		nc := renum[c]
		out.Class[v] = nc
		out.Members[nc] = append(out.Members[nc], v)
	}
	return out
}

// Count returns the number of classes.
func (c *Classes) Count() int { return len(c.Members) }

// SameView reports whether nodes u and v have label-isomorphic views.
func (c *Classes) SameView(u, v int) bool { return c.Class[u] == c.Class[v] }

// Sizes returns the class sizes in class order.
func (c *Classes) Sizes() []int {
	out := make([]int, len(c.Members))
	for i, m := range c.Members {
		out[i] = len(m)
	}
	return out
}

// Symmetricity returns σ_ℓ(G): the common size of all view classes. In a
// connected graph all classes have the same size (Yamashita–Kameda); the
// second return value reports whether that held (it always should — a false
// indicates a non-connected input or an internal error).
func (c *Classes) Symmetricity() (int, bool) {
	if len(c.Members) == 0 {
		return 0, false
	}
	s := len(c.Members[0])
	for _, m := range c.Members {
		if len(m) != s {
			return 0, false
		}
	}
	return s, true
}

// Tree is an explicit truncated view V^(k)(v): a rooted tree whose edges
// carry the pair of labels of the graph edge they traverse, and whose nodes
// carry the black/white color. Used for display (Figure 2) and as an oracle
// in tests; the refinement path above is the efficient implementation.
type Tree struct {
	Color int
	// Children are ordered by (LabelHere, LabelThere) then recursively;
	// ordering is canonical so DeepEqual on rendered forms is meaningful.
	Children []TreeEdge
}

// TreeEdge is a downward edge of a view tree.
type TreeEdge struct {
	LabelHere  int // label at the parent's graph node
	LabelThere int // label at the child's graph node
	Child      *Tree
}

// BuildTree constructs V^(depth)(v) explicitly. Exponential in depth; keep
// depth small (tests use depth <= 6).
func BuildTree(g *graph.Graph, l graph.EdgeLabeling, colors []int, v, depth int) *Tree {
	col := 0
	if colors != nil {
		col = colors[v]
	}
	t := &Tree{Color: col}
	if depth == 0 {
		return t
	}
	for p, h := range g.Ports(v) {
		t.Children = append(t.Children, TreeEdge{
			LabelHere:  l[v][p],
			LabelThere: l[h.To][h.Twin],
			Child:      BuildTree(g, l, colors, h.To, depth-1),
		})
	}
	sort.Slice(t.Children, func(i, j int) bool {
		a, b := t.Children[i], t.Children[j]
		if a.LabelHere != b.LabelHere {
			return a.LabelHere < b.LabelHere
		}
		if a.LabelThere != b.LabelThere {
			return a.LabelThere < b.LabelThere
		}
		return a.Child.render() < b.Child.render()
	})
	return t
}

// render serializes the tree canonically.
func (t *Tree) render() string {
	var b strings.Builder
	t.renderTo(&b)
	return b.String()
}

func (t *Tree) renderTo(b *strings.Builder) {
	fmt.Fprintf(b, "c%d(", t.Color)
	for i, e := range t.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%d/%d->", e.LabelHere, e.LabelThere)
		e.Child.renderTo(b)
	}
	b.WriteByte(')')
}

// Equal reports whether two view trees are label-isomorphic (children are
// canonically ordered, so structural equality suffices).
func (t *Tree) Equal(o *Tree) bool { return t.render() == o.render() }

// String renders the tree canonically (one line).
func (t *Tree) String() string { return t.render() }

// SymmetricityMax computes σ(G) = max over all edge-labelings ℓ of σ_ℓ(G),
// by exhaustive enumeration of labelings (each node independently permutes
// labels 0..deg−1 over its ports). The number of labelings is ∏ deg(v)!,
// so this is only feasible for tiny graphs; limit caps the number of
// labelings tried (0 means 10^7) and an error is returned if exceeded.
func SymmetricityMax(g *graph.Graph, colors []int, limit int) (int, graph.EdgeLabeling, error) {
	if limit <= 0 {
		limit = 10_000_000
	}
	total := 1
	for v := 0; v < g.N(); v++ {
		f := factorial(g.Deg(v))
		if total > limit/max(f, 1) {
			return 0, nil, fmt.Errorf("view: labeling space exceeds limit %d", limit)
		}
		total *= f
	}
	best := 0
	var bestL graph.EdgeLabeling
	l := graph.PortLabeling(g)
	var rec func(v int) error
	rec = func(v int) error {
		if v == g.N() {
			cl, err := ComputeClasses(g, l, colors)
			if err != nil {
				return err
			}
			if s, ok := cl.Symmetricity(); ok && s > best {
				best = s
				bestL = l.Clone()
			}
			return nil
		}
		perms := permutations(g.Deg(v))
		for _, p := range perms {
			l[v] = p
			if err := rec(v + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, nil, err
	}
	return best, bestL, nil
}

func permutations(n int) [][]int {
	var out [][]int
	cur := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				cur = append(cur, i)
				rec()
				cur = cur[:len(cur)-1]
				used[i] = false
			}
		}
	}
	rec()
	return out
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
