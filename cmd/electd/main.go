// Command electd is the election daemon: the repository's analysis,
// single-run, and campaign planes served over HTTP/JSON (internal/serve).
//
// Usage:
//
//	electd [-listen :8080] [-workers N] [-queue-timeout 2s]
//	       [-request-timeout 30s] [-campaign-timeout 5m] [-run-timeout 30s]
//	       [-max-campaign-runs 100000] [-cache-bytes 67108864]
//	       [-drain-grace 10s] [-drain-cleanup 5s]
//
// Endpoints (see internal/serve for wire formats):
//
//	POST /v1/analyze        solvability analysis of one instance
//	POST /v1/elect          one simulated election run + replay artifact
//	POST /v1/campaign       chunked-JSONL campaign stream
//	GET  /v1/artifacts/{id} replay bundle download
//	GET  /healthz           liveness + drain state
//	GET  /debug/metrics     telemetry registry snapshot
//	GET  /debug/metrics/stream  registry snapshots as server-sent events
//	GET  /debug/live        live operator dashboard (single HTML file)
//	GET  /debug/requests    recent slow/failed request traces
//
// Every request gets an ID (client X-Request-ID honored, generated
// otherwise) that is echoed in the response, stamped into campaign run
// records, and logged; -access-log=false silences the per-request JSON
// log lines.
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503, in-flight
// requests get -drain-grace to finish, then their runs are canceled through
// the context plumbing and given -drain-cleanup to unwind. A second signal
// exits immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen          = flag.String("listen", ":8080", "address to serve on")
		workers         = flag.Int("workers", 0, "heavy-request slots (0 = GOMAXPROCS)")
		queueTimeout    = flag.Duration("queue-timeout", 2*time.Second, "max wait for a pool slot before shedding 503")
		requestTimeout  = flag.Duration("request-timeout", 30*time.Second, "deadline of /v1/analyze and /v1/elect")
		campaignTimeout = flag.Duration("campaign-timeout", 5*time.Minute, "deadline of /v1/campaign")
		runTimeout      = flag.Duration("run-timeout", 30*time.Second, "per-run simulation watchdog")
		maxCampaignRuns = flag.Int("max-campaign-runs", 0, "largest work list one campaign may expand to (0 = default)")
		cacheBytes      = flag.Int64("cache-bytes", 0, "analysis-cache byte bound (0 = default 64MiB, negative = unbounded)")
		drainGrace      = flag.Duration("drain-grace", 10*time.Second, "drain budget for in-flight requests")
		drainCleanup    = flag.Duration("drain-cleanup", 5*time.Second, "post-cancel unwind budget")
		slowRequest     = flag.Duration("slow-request", 0, "successful requests at least this slow land in /debug/requests (0 = default 500ms)")
		accessLog       = flag.Bool("access-log", true, "emit one structured JSON log line per request on stderr")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintln(out, "Usage: electd [flags]")
		fmt.Fprintln(out, "Serves the analysis, single-run, and campaign planes over HTTP/JSON.")
		fmt.Fprintln(out)
		flag.PrintDefaults()
		fmt.Fprintln(out, `
Endpoints (see internal/serve for wire formats):
  POST /v1/analyze           solvability analysis of one instance
  POST /v1/elect             one simulated election run + replay artifact
  POST /v1/campaign          chunked-JSONL campaign stream
  GET  /v1/artifacts/{id}    replay bundle download
  GET  /healthz              liveness + drain state
  GET  /debug/metrics        telemetry registry snapshot (JSON)
  GET  /debug/metrics/stream registry snapshots as server-sent events
  GET  /debug/live           live operator dashboard (single HTML file)
  GET  /debug/requests       recent slow/failed request traces`)
	}
	flag.Parse()

	var logger *slog.Logger
	if *accessLog {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	s := serve.New(serve.Config{
		Workers:         *workers,
		QueueTimeout:    *queueTimeout,
		RequestTimeout:  *requestTimeout,
		CampaignTimeout: *campaignTimeout,
		RunTimeout:      *runTimeout,
		MaxCampaignRuns: *maxCampaignRuns,
		CacheMaxBytes:   *cacheBytes,
		SlowRequest:     *slowRequest,
		AccessLog:       logger,
	})
	hs, err := serve.Listen(*listen, s, nil)
	if err != nil {
		return err
	}
	hs.Start()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	log.Printf("electd: serving on %s (workers=%d)", hs.Addr(), w)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-hs.Err():
		// The listener died under us; nothing to drain.
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigc:
		log.Printf("electd: %v, draining (grace %v)", sig, *drainGrace)
	}

	// A second signal during the drain kills the process the hard way.
	done := make(chan error, 1)
	go func() { done <- serve.Drain(hs, s, *drainGrace, *drainCleanup) }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		log.Printf("electd: drained cleanly")
		return nil
	case sig := <-sigc:
		log.Printf("electd: second %v, exiting immediately", sig)
		hs.Close() //nolint:errcheck // exiting anyway
		return nil
	}
}
