package faults

import (
	"strings"
	"testing"
)

func TestWirePlanRoundTrip(t *testing.T) {
	p := &WirePlan{Events: []WireEvent{
		{Kind: WireDrop, Index: 4, Agent: 1, From: 2, To: 3, Arg: 1},
		{Kind: WireDelay, Index: 9, Agent: 0, From: 0, To: 5},
		{Kind: WireDup, Index: 12, Agent: 2, From: 5, To: 0},
		{Kind: WireReorder, Index: 30, Agent: 1, From: 3, To: 2},
	}}
	got, err := DecodeWirePlanString(p.EncodeString())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(p.Events) {
		t.Fatalf("decoded %d events, want %d", len(got.Events), len(p.Events))
	}
	for i := range p.Events {
		if got.Events[i] != p.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], p.Events[i])
		}
	}
	if !strings.Contains(p.Summary(), "drop send#4 a1 n2->n3 arg=1") {
		t.Fatalf("summary %q", p.Summary())
	}
	if (&WirePlan{}).Summary() != "no wire faults injected" {
		t.Fatal("empty summary changed")
	}
}

func TestDecodeWirePlanRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  {0x00, 0x01},
		"bad kind":   append([]byte{wireMagic, 1}, 99, 0, 0, 0, 0, 0),
		"truncated":  {wireMagic, 1, 0, 0},
		"trailing":   append((&WirePlan{}).Encode(), 0xEE),
		"huge field": {wireMagic, 1, 0, 0xff, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0},
	}
	for name, data := range cases {
		if _, err := DecodeWirePlan(data); err == nil {
			t.Fatalf("%s: accepted %v", name, data)
		}
	}
	if _, err := DecodeWirePlanString("!!!"); err == nil {
		t.Fatal("bad base64 accepted")
	}
}

func TestWireStrategyDeterminism(t *testing.T) {
	if _, err := NewWire("gravity", 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range WireStrategies() {
		a, err := NewWire(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewWire(name, 42)
		faults := 0
		for i := 0; i < 400; i++ {
			op := WireOp{Index: i, Agent: i % 3, From: i % 5, To: (i + 1) % 5}
			x, y := a.Inject(op), b.Inject(op)
			if x != y {
				t.Fatalf("%s: send %d diverged under the same seed: %+v vs %+v", name, i, x, y)
			}
			if x.Fault {
				faults++
			}
		}
		if faults == 0 {
			t.Fatalf("%s injected nothing in 400 sends", name)
		}
		if len(a.Plan().Events) != faults {
			t.Fatalf("%s: plan has %d events, injected %d", name, len(a.Plan().Events), faults)
		}
	}
}

func TestReplayWireReissuesByIndex(t *testing.T) {
	plan := &WirePlan{Events: []WireEvent{
		{Kind: WireDrop, Index: 2, Arg: 1},
		{Kind: WireDup, Index: 5},
	}}
	r := ReplayWire(plan)
	for i := 0; i < 8; i++ {
		act := r.Inject(WireOp{Index: i, Agent: 7, From: 1, To: 2})
		want := i == 2 || i == 5
		if act.Fault != want {
			t.Fatalf("send %d: fault=%v", i, act.Fault)
		}
	}
	got := r.Plan()
	if len(got.Events) != 2 || got.Events[0].Agent != 7 {
		t.Fatalf("re-recorded plan %+v", got)
	}
}
