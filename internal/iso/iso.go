// Package iso implements isomorphism machinery for vertex-colored directed
// multigraphs: equitable partition refinement, canonical labeling by
// refinement-guided backtracking (a miniature nauty), isomorphism testing,
// and automorphism-group generators and orbits.
//
// This is the engine behind the paper's Lemma 3.1 (a deterministic total
// order on bi-colored digraphs via a canonical word) and Definition 2.1
// (node equivalence via color-preserving automorphisms). The paper defines
// its canonical word as the minimum of w(π(M)) over all n! permutations π;
// computing that exact minimum is factorial in the worst case, so Canonical
// instead minimizes over the refinement-consistent orderings explored by a
// nauty-style backtracking search. The result is still a canonical form —
// equal words exactly characterize color-isomorphism — and hence still
// induces the deterministic total order on isomorphism classes that
// Lemma 3.1 requires (the protocol only needs all agents to agree on one
// such order, as DESIGN.md §5 and §6 record). BruteCanonicalWord retains
// the paper's exact min-word definition as a small-instance oracle.
//
// Every solvability decision in the repo funnels through Canonical, so the
// hot paths here are written allocation-free: integer signature refinement
// over flat scratch buffers (no fmt, no strings, no maps), incremental
// best-word prefix pruning, and stabilizer-orbit pruning with cached
// union-find state. DESIGN.md §8 describes the engine; reference.go keeps
// the original (pre-optimization) engine for differential tests and for
// measuring the speedup (BENCH_iso.json).
package iso

import (
	"bytes"
	"errors"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/perm"
)

// Colored is a vertex-colored directed multigraph given by an adjacency
// multiplicity matrix. Undirected graphs are represented symmetrically
// (a loop contributes 2 to its diagonal entry, matching
// graph.AdjacencyMatrix). Colors are small non-negative integers whose
// values are meaningful across graphs (e.g. 0 = white, 1 = black/home-base):
// two Colored values are isomorphic only under color-preserving bijections.
type Colored struct {
	N     int
	Color []int
	Adj   [][]int // Adj[u][v] = number of arcs u -> v
}

// NewColored allocates an all-white, arcless graph on n vertices whose
// adjacency rows share one flat backing array (a single allocation instead
// of n+1, and cache-contiguous row scans). Callers fill Color and Adj.
func NewColored(n int) *Colored {
	c := &Colored{N: n, Color: make([]int, n), Adj: make([][]int, n)}
	flat := make([]int, n*n)
	for i := range c.Adj {
		c.Adj[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return c
}

// FromGraph builds the symmetric Colored form of an undirected multigraph.
// colors may be nil (all vertices colored 0) or have length g.N().
func FromGraph(g *graph.Graph, colors []int) *Colored {
	n := g.N()
	c := &Colored{N: n, Color: make([]int, n), Adj: g.AdjacencyMatrix()}
	if colors != nil {
		if len(colors) != n {
			panic("iso: color slice length mismatch")
		}
		copy(c.Color, colors)
	}
	return c
}

// NewDigraph builds a Colored digraph on n vertices from arc list (u, v)
// pairs; parallel arcs accumulate multiplicity. colors may be nil.
func NewDigraph(n int, arcs [][2]int, colors []int) *Colored {
	c := NewColored(n)
	for _, a := range arcs {
		c.Adj[a[0]][a[1]]++
	}
	if colors != nil {
		if len(colors) != n {
			panic("iso: color slice length mismatch")
		}
		copy(c.Color, colors)
	}
	return c
}

// Clone returns a deep copy.
func (c *Colored) Clone() *Colored {
	d := NewColored(c.N)
	copy(d.Color, c.Color)
	for i := range d.Adj {
		copy(d.Adj[i], c.Adj[i])
	}
	return d
}

// Permuted returns the graph with vertex v renamed p[v].
func (c *Colored) Permuted(p perm.Perm) *Colored {
	d := NewColored(c.N)
	for v := 0; v < c.N; v++ {
		d.Color[p[v]] = c.Color[v]
		row, drow := c.Adj[v], d.Adj[p[v]]
		for w, m := range row {
			drow[p[w]] = m
		}
	}
	return d
}

// word serializes the graph relabeled by p (vertex v goes to position p[v]).
// Layout: colors in position order, then for each position i the block
//
//	Adj[v_i][v_0], …, Adj[v_i][v_i], Adj[v_0][v_i], …, Adj[v_{i-1}][v_i]
//
// where v_j is the vertex at position j — the growing-principal-submatrix
// order. Total length n + n², an injective serialization, so two Colored
// values have equal words for some relabelings iff they are isomorphic.
// This layout (rather than row-major rows) is what makes incremental
// best-word prefix pruning possible during the canonical search: once the
// first k positions of an ordering are fixed, its first n + k² word bytes
// are fixed too.
func (c *Colored) word(p perm.Perm) []byte {
	inv := make([]int, c.N)
	for v, pos := range p {
		inv[pos] = v
	}
	return c.appendWord(make([]byte, 0, c.N+c.N*c.N), inv)
}

// appendWord appends the serialization of the ordering inv (inv[pos] =
// vertex at position pos) to dst.
func (c *Colored) appendWord(dst []byte, inv []int) []byte {
	for _, v := range inv {
		dst = append(dst, byte(c.Color[v]))
	}
	for i, vi := range inv {
		dst = appendBlock(dst, c, inv, i, vi)
	}
	return dst
}

// appendBlock appends position i's word block for the ordering inv.
func appendBlock(dst []byte, c *Colored, inv []int, i, vi int) []byte {
	row := c.Adj[vi]
	for j := 0; j <= i; j++ {
		dst = append(dst, byte(row[inv[j]]))
	}
	for j := 0; j < i; j++ {
		dst = append(dst, byte(c.Adj[inv[j]][vi]))
	}
	return dst
}

// IsAutomorphism reports whether p is a color-preserving automorphism of c.
func (c *Colored) IsAutomorphism(p perm.Perm) bool {
	if len(p) != c.N {
		return false
	}
	for v := 0; v < c.N; v++ {
		if c.Color[p[v]] != c.Color[v] {
			return false
		}
		row, prow := c.Adj[v], c.Adj[p[v]]
		for w, m := range row {
			if prow[p[w]] != m {
				return false
			}
		}
	}
	return true
}

// Result is the outcome of a canonical labeling computation.
type Result struct {
	// Perm maps each original vertex to its canonical position.
	Perm perm.Perm
	// Word is the canonical byte string: two Colored values are
	// color-isomorphic iff their Words are equal.
	Word []byte
	// AutoGens generates the color-preserving automorphism group
	// (it may be empty for rigid graphs; the identity is never included).
	AutoGens []perm.Perm
}

// referenceEngine, when set, routes Canonical through the frozen pre-PR
// engine in reference.go. A benchmarking hook (cmd/benchiso measures the
// optimized engine's speedup on identical workloads, including
// elect.Analyze, without plumbing an engine parameter through every layer);
// not intended for production use.
var referenceEngine atomic.Bool

// SetReferenceEngine routes Canonical through the frozen pre-optimization
// engine (on=true) or the optimized engine (on=false, the default). Both
// engines produce canonical forms; see reference.go for when their words
// coincide. Safe to call concurrently, but toggling while other goroutines
// are comparing words across the switch is a logic error.
func SetReferenceEngine(on bool) { referenceEngine.Store(on) }

// Canonical computes a canonical form of c: the minimum serialized word
// over the refinement-consistent vertex orderings explored by the search.
// Words are equal iff the graphs are color-isomorphic, which is the property
// Lemma 3.1's total order needs (see the package comment).
func Canonical(c *Colored) *Result {
	if referenceEngine.Load() {
		return referenceCanonical(c)
	}
	r, err := CanonicalBudget(c, 0)
	if err != nil {
		panic("iso: unreachable: unbudgeted search returned " + err.Error())
	}
	return r
}

// ErrLeafBudget is returned by CanonicalBudget when the backtracking search
// visits more leaves than the caller allowed.
var ErrLeafBudget = errors.New("iso: canonical search exceeded its leaf budget")

// CanonicalBudget is Canonical with an explicit bound on search effort:
// the search fails with ErrLeafBudget after visiting maxLeaves leaves
// (maxLeaves <= 0 means unbounded). The error is explicit — a budgeted
// search never silently truncates, since a word computed from a partial
// search would not be canonical.
func CanonicalBudget(c *Colored, maxLeaves int) (*Result, error) {
	if c.N == 0 {
		return &Result{Perm: perm.Perm{}, Word: []byte{}}, nil
	}
	st := newCanonState(c, maxLeaves)
	st.run()
	st.flushStats()
	if st.budgetHit {
		return nil, ErrLeafBudget
	}
	return &Result{Perm: st.bperm, Word: st.best, AutoGens: st.autos}, nil
}

// EquitablePartition returns the coarsest equitable refinement of c's color
// partition: the cells, in canonical (isomorphism-invariant) order, of the
// partition in which any two vertices of a cell have equal arc multiplicity
// into and out of every cell. This is the refinement step of the canonical
// search, exposed for benchmarks and diagnostics.
func EquitablePartition(c *Colored) [][]int {
	if c.N == 0 {
		return nil
	}
	st := newCanonState(c, 0)
	lv := st.level(0)
	st.initialPartition(lv)
	st.refine(lv)
	out := make([][]int, 0, lv.ncells)
	for k := 0; k < lv.ncells; k++ {
		out = append(out, append([]int(nil), lv.lab[lv.cellStart[k]:lv.cellStart[k+1]]...))
	}
	return out
}

// CanonicalWord is a convenience wrapper returning only the canonical word.
func CanonicalWord(c *Colored) []byte { return Canonical(c).Word }

// Isomorphic reports whether a and b are color-isomorphic.
func Isomorphic(a, b *Colored) bool {
	if a.N != b.N {
		return false
	}
	return bytes.Equal(CanonicalWord(a), CanonicalWord(b))
}

// IsomorphismBetween returns a color-preserving isomorphism a→b (as the
// permutation sending vertex v of a to IsomorphismBetween(a,b)[v] of b),
// or nil if none exists.
func IsomorphismBetween(a, b *Colored) perm.Perm {
	if a.N != b.N {
		return nil
	}
	ra, rb := Canonical(a), Canonical(b)
	if !bytes.Equal(ra.Word, rb.Word) {
		return nil
	}
	// v --ra--> canonical pos --rb⁻¹--> vertex of b.
	return ra.Perm.Compose(rb.Perm.Inverse())
}

// AutomorphismGens returns generators of the color-preserving automorphism
// group of c, never including the identity. For rigid graphs the slice is
// empty.
func AutomorphismGens(c *Colored) []perm.Perm {
	return automorphismGensComplete(c)
}

// automorphismGensComplete computes generators whose generated group has the
// true automorphism orbits. The canonical-search generators alone are not
// guaranteed complete (orbit pruning can suppress leaves), so we verify and
// repair by the transporter method: vertices u, v are in the same orbit iff
// the graphs with u (resp. v) individualized are isomorphic, and the
// transporter isomorphism is an automorphism mapping u to v.
func automorphismGensComplete(c *Colored) []perm.Perm {
	gens := Canonical(c).AutoGens
	n := c.N
	// Union-find over current generators.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, g := range gens {
		for i, v := range g {
			union(i, v)
		}
	}
	// For every pair of distinct current roots with equal color, test
	// whether an automorphism merges them. The canonical form of the
	// graph-with-u-individualized is computed once per root u, not once
	// per candidate pair (it is the expensive half of every transporter
	// test in u's inner loop).
	fresh := 0
	for _, col := range c.Color {
		if col >= fresh {
			fresh = col + 1
		}
	}
	scratch := c.Clone()
	for u := 0; u < n; u++ {
		if find(u) != u {
			continue
		}
		var ru *Result // canonical form of c with u individualized, lazily
		for v := u + 1; v < n; v++ {
			if find(v) == find(u) || c.Color[v] != c.Color[u] {
				continue
			}
			if ru == nil {
				scratch.Color[u] = fresh
				ru = Canonical(scratch)
				scratch.Color[u] = c.Color[u]
			}
			scratch.Color[v] = fresh
			rv := Canonical(scratch)
			scratch.Color[v] = c.Color[v]
			if !bytes.Equal(ru.Word, rv.Word) {
				continue
			}
			// The transporter u→v: through the shared canonical form.
			a := ru.Perm.Compose(rv.Perm.Inverse())
			gens = append(gens, a)
			for i, w := range a {
				union(i, w)
			}
		}
	}
	return gens
}

// Orbits returns the orbits of the color-preserving automorphism group of c,
// each sorted ascending, ordered by smallest element.
func Orbits(c *Colored) [][]int {
	return perm.OrbitsOf(c.N, AutomorphismGens(c))
}

// BruteCanonicalWord computes the canonical word by trying all n!
// permutations; a correctness oracle for tests (n must be at most 8).
func BruteCanonicalWord(c *Colored) []byte {
	if c.N > 8 {
		panic("iso: BruteCanonicalWord limited to n <= 8")
	}
	var best []byte
	p := perm.Identity(c.N)
	var rec func(k int)
	rec = func(k int) {
		if k == c.N {
			w := c.word(p)
			if best == nil || bytes.Compare(w, best) < 0 {
				best = append([]byte(nil), w...)
			}
			return
		}
		for i := k; i < c.N; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	return best
}
