package elect

import (
	"repro/internal/sim"
)

// Navigator exposes map-based navigation to custom protocol authors: after
// MAP-DRAWING, it can tour the network, walk to specific map nodes, and
// wait at the home-base — the same primitives the built-in protocols use.
type Navigator struct {
	k *knowledge
}

// NewNavigator builds a Navigator for an agent that has drawn its map.
func NewNavigator(a *sim.Agent, m *Map) *Navigator {
	return &Navigator{k: &knowledge{a: a, m: m, at: m.Home}}
}

// init of the tour is lazy: knowledge.buildTour needs the classes only for
// protocol scheduling; navigation needs just the DFS tree.
func (n *Navigator) ensureTour() {
	if n.k.tour == nil {
		n.k.buildTour()
	}
}

// WriteEverywhere tours the whole network writing the colored tag on every
// whiteboard and returns to the home-base.
func (n *Navigator) WriteEverywhere(tag string) error {
	n.ensureTour()
	return n.k.writeEverywhere(tag)
}

// TourAll visits every node (home first), invoking f with the local node id
// and the board, and returns home.
func (n *Navigator) TourAll(f func(local int, b *sim.Board)) error {
	n.ensureTour()
	return n.k.tourAll(f)
}

// MoveTo walks to the given local map node.
func (n *Navigator) MoveTo(local int) error {
	n.ensureTour()
	return n.k.moveTo(local)
}

// WaitHome returns to the home-base and blocks until pred holds on its
// whiteboard.
func (n *Navigator) WaitHome(pred func(sim.Signs) bool) (sim.Signs, error) {
	n.ensureTour()
	return n.k.waitHome(pred)
}

// AccessHome returns to the home-base and runs f on its whiteboard.
func (n *Navigator) AccessHome(f func(b *sim.Board)) error {
	n.ensureTour()
	return n.k.accessHome(f)
}

// At returns the agent's current local map node.
func (n *Navigator) At() int { return n.k.at }
