package telemetry

import "net/http"

// DashboardHandler serves the live operator dashboard — a single
// self-contained HTML page (inline CSS/JS, no external dependencies,
// works offline) that subscribes to the /debug/metrics/stream SSE feed
// and renders the registry in real time: a throughput tile (rate of the
// primary runs/requests counter), worker-pool depth, cache hit/coalesce
// rates, shed/cancel counters, live quantile gauges, every histogram as
// bucket bars, and a rate-annotated counter table. Mount it at
// /debug/live on anything that also mounts StreamHandler.
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashboardHTML)) //nolint:errcheck // a failed response write has no recovery
	})
}

// dashboardHTML is the whole dashboard. It is deliberately generic over
// the registry contents — the same page serves cmd/campaign -listen and
// electd — with named tiles lighting up when their metrics exist.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>live metrics</title>
<style>
  :root { --bg:#0e1117; --card:#161b24; --ink:#d7dde6; --dim:#7d8896; --acc:#4aa3ff; --warn:#ff6b6b; --ok:#58c77b; }
  * { box-sizing:border-box; margin:0; }
  body { background:var(--bg); color:var(--ink); font:14px/1.45 ui-monospace,SFMono-Regular,Menlo,monospace; padding:18px; }
  h1 { font-size:16px; font-weight:600; margin-bottom:2px; }
  #sub { color:var(--dim); font-size:12px; margin-bottom:14px; }
  #sub .live { color:var(--ok); } #sub .dead { color:var(--warn); }
  .grid { display:grid; grid-template-columns:repeat(auto-fill,minmax(240px,1fr)); gap:10px; margin-bottom:14px; }
  .card { background:var(--card); border-radius:8px; padding:10px 12px; }
  .card h2 { font-size:11px; font-weight:600; color:var(--dim); text-transform:uppercase; letter-spacing:.06em; margin-bottom:4px; }
  .big { font-size:26px; font-weight:700; }
  .unit { font-size:12px; color:var(--dim); margin-left:4px; }
  .spark { display:block; margin-top:6px; width:100%; height:34px; }
  table { border-collapse:collapse; width:100%; }
  th,td { text-align:left; padding:2px 10px 2px 0; font-size:12px; }
  th { color:var(--dim); font-weight:600; }
  td.num, th.num { text-align:right; }
  .section { margin:16px 0 6px; font-size:12px; color:var(--dim); text-transform:uppercase; letter-spacing:.06em; }
  .bars { display:flex; align-items:flex-end; gap:2px; height:56px; margin-top:6px; }
  .bar { flex:1; background:var(--acc); min-height:1px; border-radius:2px 2px 0 0; }
  .bar[title*="overflow"] { background:var(--warn); }
  .blabel { font-size:10px; color:var(--dim); margin-top:3px; overflow:hidden; white-space:nowrap; }
  .hist { background:var(--card); border-radius:8px; padding:10px 12px; }
</style>
</head>
<body>
<h1>live metrics</h1>
<div id="sub">connecting&hellip;</div>
<div class="grid" id="tiles"></div>
<div class="section">histograms</div>
<div class="grid" id="hists"></div>
<div class="section">counters</div>
<div class="card"><table id="counters"></table></div>
<div class="section">gauges</div>
<div class="card"><table id="gauges"></table></div>
<script>
"use strict";
var hist = [];               // [{t, snap}] ring of recent snapshots
var MAXHIST = 180;
var events = 0;

function fmt(v) {
  if (Math.abs(v) >= 1e9) return (v/1e9).toFixed(2)+"G";
  if (Math.abs(v) >= 1e6) return (v/1e6).toFixed(2)+"M";
  if (Math.abs(v) >= 1e4) return (v/1e3).toFixed(1)+"k";
  return (Math.round(v*100)/100).toString();
}
function counter(s, n) { return (s.counters && n in s.counters) ? s.counters[n] : null; }
function gauge(s, n)   { return (s.gauges && n in s.gauges) ? s.gauges[n] : null; }

// rate of counter n in 1/s over the last window of up to w snapshots
function rate(n, w) {
  if (hist.length < 2) return null;
  var a = hist[Math.max(0, hist.length - 1 - (w||10))], b = hist[hist.length-1];
  var va = counter(a.snap, n), vb = counter(b.snap, n);
  if (va === null || vb === null) return null;
  var dt = (b.t - a.t) / 1000;
  return dt > 0 ? (vb - va) / dt : 0;
}
function series(get) {
  var out = [];
  for (var i = 1; i < hist.length; i++) {
    var v = get(hist[i], hist[i-1]);
    if (v !== null) out.push(v);
  }
  return out;
}
function spark(vals) {
  if (!vals.length) return "";
  var w = 220, h = 34, max = Math.max.apply(null, vals.concat([1e-9]));
  var pts = vals.map(function (v, i) {
    return (i * w / Math.max(1, vals.length - 1)).toFixed(1) + "," + (h - 2 - (h - 6) * v / max).toFixed(1);
  });
  return '<svg class="spark" viewBox="0 0 ' + w + ' ' + h + '" preserveAspectRatio="none">' +
    '<polyline fill="none" stroke="#4aa3ff" stroke-width="1.5" points="' + pts.join(" ") + '"/></svg>';
}
function tile(title, value, unit, sparkHTML) {
  return '<div class="card"><h2>' + title + '</h2><span class="big">' + value +
    '</span><span class="unit">' + (unit||"") + '</span>' + (sparkHTML||"") + '</div>';
}

function render(s) {
  var tiles = "";
  // Throughput: campaign runs or served requests, whichever is live.
  var prim = counter(s, "campaign_runs_total") !== null ? "campaign_runs_total" : "serve_requests_total";
  var r = rate(prim, 10);
  if (r !== null) {
    var rs = series(function (b, a) {
      var vb = counter(b.snap, prim), va = counter(a.snap, prim);
      return (vb === null || va === null) ? null : Math.max(0, (vb - va) / ((b.t - a.t) / 1000));
    });
    tiles += tile(prim === "campaign_runs_total" ? "run throughput" : "request throughput",
      fmt(r), "/s &middot; " + fmt(counter(s, prim)) + " total", spark(rs));
  }
  // Worker pool depth.
  ["campaign_inflight", "serve_inflight", "serve_queue_depth"].forEach(function (n) {
    var v = gauge(s, n);
    if (v !== null) {
      var gs = series(function (b) { var x = gauge(b.snap, n); return x === null ? null : x; });
      tiles += tile(n.replace(/_/g, " "), fmt(v), "", spark(gs));
    }
  });
  // Cache effectiveness (electd publishes gauges; rates over the stream).
  var ch = gauge(s, "serve_cache_hits"), cc = gauge(s, "serve_cache_coalesced"), cm = gauge(s, "serve_cache_misses");
  if (ch !== null && cm !== null) {
    var tot = ch + (cc||0) + cm;
    tiles += tile("cache hit+coalesce", tot > 0 ? (100*(ch+(cc||0))/tot).toFixed(1) : "0", "% of " + fmt(tot));
  }
  // Live campaign quantiles from the sketch gauges.
  var p50 = gauge(s, "campaign_moves_p50");
  if (p50 !== null) {
    tiles += tile("moves p50 / p90 / p99",
      fmt(p50) + " / " + fmt(gauge(s, "campaign_moves_p90")||0) + " / " + fmt(gauge(s, "campaign_moves_p99")||0),
      "of " + fmt(gauge(s, "campaign_runs_aggregated")||0) + " runs");
  }
  // Shed / canceled / violations.
  [["serve_shed_total","shed"], ["serve_canceled_total","canceled requests"],
   ["campaign_outcome_canceled","canceled runs"], ["campaign_invariant_violations_total","invariant violations"],
   ["serve_slow_requests_total","slow requests"]].forEach(function (p) {
    var v = counter(s, p[0]);
    if (v !== null && v > 0) tiles += tile(p[1], fmt(v), "total");
  });
  document.getElementById("tiles").innerHTML = tiles;

  // Histograms: bucket bars (sqrt scale so small buckets stay visible).
  var hh = "";
  var names = Object.keys(s.histograms || {}).sort();
  names.forEach(function (n) {
    var hg = s.histograms[n];
    if (!hg.buckets || !hg.count) return;
    var max = Math.max.apply(null, hg.buckets.map(function (b) { return b.count; }).concat([1]));
    var bars = hg.buckets.map(function (b) {
      var pct = Math.sqrt(b.count / max) * 100;
      var label = b.overflow ? "overflow" : "&le;" + fmt(b.le);
      return '<div class="bar" style="height:' + Math.max(2, pct) + '%" title="' + label + ": " + b.count + '"></div>';
    }).join("");
    hh += '<div class="hist"><h2>' + n + '</h2><div class="bars">' + bars + '</div>' +
      '<div class="blabel">n=' + fmt(hg.count) + " mean=" + fmt(hg.count ? hg.sum / hg.count : 0) + "</div></div>";
  });
  document.getElementById("hists").innerHTML = hh || '<div class="card"><h2>none yet</h2></div>';

  var ct = "<tr><th>counter</th><th class=num>total</th><th class=num>rate/s</th></tr>";
  Object.keys(s.counters || {}).sort().forEach(function (n) {
    var rr = rate(n, 10);
    ct += "<tr><td>" + n + '</td><td class=num>' + fmt(s.counters[n]) + '</td><td class=num>' +
      (rr === null ? "&mdash;" : fmt(rr)) + "</td></tr>";
  });
  document.getElementById("counters").innerHTML = ct;

  var gt = "<tr><th>gauge</th><th class=num>value</th></tr>";
  Object.keys(s.gauges || {}).sort().forEach(function (n) {
    gt += "<tr><td>" + n + '</td><td class=num>' + fmt(s.gauges[n]) + "</td></tr>";
  });
  document.getElementById("gauges").innerHTML = gt;
}

var es = new EventSource("/debug/metrics/stream");
es.addEventListener("metrics", function (e) {
  events++;
  var snap = JSON.parse(e.data);
  hist.push({ t: Date.now(), snap: snap });
  if (hist.length > MAXHIST) hist.shift();
  document.getElementById("sub").innerHTML =
    '<span class="live">&#9679; live</span> &middot; ' + events + " snapshots &middot; 1s cadence";
  render(snap);
});
es.onerror = function () {
  document.getElementById("sub").innerHTML = '<span class="dead">&#9679; disconnected</span> (retrying)';
};
</script>
</body>
</html>
`
