package graph

import (
	"testing"
	"testing/quick"
)

func TestPortLabelingValid(t *testing.T) {
	for _, g := range []*Graph{Path(4), Cycle(5), Star(3), Fig2c(), Petersen()} {
		l := PortLabeling(g)
		if err := l.Validate(g); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		for v := 0; v < g.N(); v++ {
			for p := range l[v] {
				if l[v][p] != p {
					t.Fatalf("port labeling should be the identity, got l[%d][%d]=%d", v, p, l[v][p])
				}
			}
		}
	}
}

func TestRandomLabelingValidAndDeterministic(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		g := Petersen()
		l1 := RandomLabeling(g, seed)
		l2 := RandomLabeling(g, seed)
		if l1.Validate(g) != nil {
			return false
		}
		for v := range l1 {
			for p := range l1[v] {
				if l1[v][p] != l2[v][p] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLabelingValidateRejects(t *testing.T) {
	g := Path(3)
	// Wrong node count.
	if err := (EdgeLabeling{{0}}).Validate(g); err == nil {
		t.Error("short labeling accepted")
	}
	// Wrong degree.
	if err := (EdgeLabeling{{0, 1}, {0, 1}, {0}}).Validate(g); err == nil {
		t.Error("wrong-arity labeling accepted")
	}
	// Duplicate label at a node.
	if err := (EdgeLabeling{{0}, {1, 1}, {0}}).Validate(g); err == nil {
		t.Error("duplicate labels accepted")
	}
	// Valid one.
	if err := (EdgeLabeling{{7}, {3, 9}, {2}}).Validate(g); err != nil {
		t.Errorf("valid labeling rejected: %v", err)
	}
}

func TestLabelingClone(t *testing.T) {
	g := Cycle(4)
	l := PortLabeling(g)
	c := l.Clone()
	c[0][0] = 99
	if l[0][0] == 99 {
		t.Error("clone aliases the original")
	}
}

func TestNetworkGeneratorsInPackage(t *testing.T) {
	st := StarGraph(3)
	if st.N() != 6 || st.M() != 6 {
		t.Errorf("ST(3): n=%d m=%d, want 6,6", st.N(), st.M())
	}
	pk := Pancake(3)
	if pk.N() != 6 || pk.M() != 6 {
		t.Errorf("Pancake(3): n=%d m=%d, want 6,6", pk.N(), pk.M())
	}
	wb := WrappedButterfly(3)
	if !wb.IsConnected() {
		t.Error("WB(3) disconnected")
	}
	if !st.IsConnected() || !pk.IsConnected() {
		t.Error("permutation networks disconnected")
	}
}

func TestGraphString(t *testing.T) {
	if s := Cycle(5).String(); s != "graph(n=5, m=5)" {
		t.Errorf("String() = %q", s)
	}
}
