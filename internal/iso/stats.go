package iso

import "sync/atomic"

// SearchStats is a snapshot of the canonical-search counters: how many
// searches ran, how big their backtracking trees were, and how often each
// pruning rule fired. The counters are process-global and monotonically
// increasing — callers wanting per-workload numbers take a snapshot
// before and after and Sub the two. The frozen reference engine
// (SetReferenceEngine) does not count.
type SearchStats struct {
	// Searches is the number of completed canonical searches.
	Searches int64 `json:"searches"`
	// Nodes is the number of search-tree nodes visited (refinement calls).
	Nodes int64 `json:"nodes"`
	// Leaves is the number of discrete partitions reached.
	Leaves int64 `json:"leaves"`
	// OrbitPrunes counts branches skipped because an already-tried vertex
	// of the cell maps to the candidate under a discovered automorphism.
	OrbitPrunes int64 `json:"orbit_prunes"`
	// PrefixPrunes counts subtrees cut because the path's determined word
	// bytes already exceed the best leaf word.
	PrefixPrunes int64 `json:"prefix_prunes"`
	// BudgetExhaustions counts searches aborted by ErrLeafBudget.
	BudgetExhaustions int64 `json:"budget_exhaustions"`
	// ParallelSearches counts searches that ran on a worker pool
	// (CanonicalOpt / CanonicalSparseOpt with Workers > 1); their nodes,
	// leaves and prunes are folded into the shared counters above.
	ParallelSearches int64 `json:"parallel_searches"`
	// WorkerTasks counts root branch tasks claimed by parallel workers
	// from the shared cursor (the work-stealing unit).
	WorkerTasks int64 `json:"worker_tasks"`
	// ClaimPrunes counts root tasks skipped because a claimed vertex of
	// another worker maps to the candidate under a discovered
	// automorphism — the cross-worker extension of OrbitPrunes.
	ClaimPrunes int64 `json:"claim_prunes"`
	// BestPublishes counts improvements installed into the shared
	// best-word snapshot by parallel workers.
	BestPublishes int64 `json:"best_publishes"`
}

// Sub returns s minus t field by field — the delta between two snapshots.
func (s SearchStats) Sub(t SearchStats) SearchStats {
	return SearchStats{
		Searches:          s.Searches - t.Searches,
		Nodes:             s.Nodes - t.Nodes,
		Leaves:            s.Leaves - t.Leaves,
		OrbitPrunes:       s.OrbitPrunes - t.OrbitPrunes,
		PrefixPrunes:      s.PrefixPrunes - t.PrefixPrunes,
		BudgetExhaustions: s.BudgetExhaustions - t.BudgetExhaustions,
		ParallelSearches:  s.ParallelSearches - t.ParallelSearches,
		WorkerTasks:       s.WorkerTasks - t.WorkerTasks,
		ClaimPrunes:       s.ClaimPrunes - t.ClaimPrunes,
		BestPublishes:     s.BestPublishes - t.BestPublishes,
	}
}

// searchStats are the process-global accumulators. The search itself
// counts into plain ints on its canonState (the hot path stays
// non-atomic); each search flushes them here once, on completion.
var searchStats struct {
	searches, nodes, leaves   atomic.Int64
	orbitPrunes, prefixPrunes atomic.Int64
	budgetExhaustions         atomic.Int64
	parallelSearches          atomic.Int64
	workerTasks, claimPrunes  atomic.Int64
	bestPublishes             atomic.Int64
}

// Stats snapshots the process-global canonical-search counters.
func Stats() SearchStats {
	return SearchStats{
		Searches:          searchStats.searches.Load(),
		Nodes:             searchStats.nodes.Load(),
		Leaves:            searchStats.leaves.Load(),
		OrbitPrunes:       searchStats.orbitPrunes.Load(),
		PrefixPrunes:      searchStats.prefixPrunes.Load(),
		BudgetExhaustions: searchStats.budgetExhaustions.Load(),
		ParallelSearches:  searchStats.parallelSearches.Load(),
		WorkerTasks:       searchStats.workerTasks.Load(),
		ClaimPrunes:       searchStats.claimPrunes.Load(),
		BestPublishes:     searchStats.bestPublishes.Load(),
	}
}

// flushStats adds one finished search's local counters to the globals.
func (st *canonState) flushStats() {
	searchStats.searches.Add(1)
	searchStats.nodes.Add(int64(st.nodes))
	searchStats.leaves.Add(int64(st.leaves))
	searchStats.orbitPrunes.Add(int64(st.orbitPrunes))
	searchStats.prefixPrunes.Add(int64(st.prefixPrunes))
	if st.budgetHit {
		searchStats.budgetExhaustions.Add(1)
	}
}

// flushParallelStats folds one finished parallel search into the globals:
// the pooled per-worker tree counters plus the shared-harness counters.
// The search counts once, not once per worker.
func flushParallelStats(sh *sharedSearch, nodes, orbitPrunes, prefixPrunes int64) {
	searchStats.searches.Add(1)
	searchStats.parallelSearches.Add(1)
	searchStats.nodes.Add(nodes)
	searchStats.leaves.Add(sh.leaves.Load())
	searchStats.orbitPrunes.Add(orbitPrunes)
	searchStats.prefixPrunes.Add(prefixPrunes)
	searchStats.workerTasks.Add(sh.tasks.Load())
	searchStats.claimPrunes.Add(sh.claimPrunes.Load())
	searchStats.bestPublishes.Add(sh.publishes.Load())
}
