// Package faults is the deterministic fault plane of the simulator: it
// decides, from a seed, where to crash-stop agents, tear whiteboard writes,
// and stall reads, and it records every injected fault into a Plan that is
// byte-replayable exactly like a sim.Schedule. Composing a recorded Plan
// with the recorded Schedule of the same run pins a faulty execution down
// completely: replaying both reproduces the run bit for bit.
//
// The package implements sim.FaultInjector twice — once as a family of
// seed-driven strategies (New) and once as a plan re-issuer (Replay) — so a
// fault found by sweeping can be attached to a bug report and re-executed
// anywhere.
package faults

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind classifies one injected fault event in a Plan.
type Kind uint8

// The fault-event kinds. The *Hold variants abandon the node's whiteboard
// lock as part of the crash, exercising the takeover recovery path.
const (
	// KindCrash crash-stops the agent at a sequence point.
	KindCrash Kind = iota
	// KindCrashHold crash-stops the agent while it holds the node lock.
	KindCrashHold
	// KindTorn tears a whiteboard write (Arg = kept prefix length) and
	// crash-stops the writer when its access ends.
	KindTorn
	// KindTornHold is KindTorn with the board lock left abandoned.
	KindTornHold
	// KindStale stalls a Wait predicate check by Arg extra sequence points
	// (bounded transient read staleness; the agent survives).
	KindStale

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindCrashHold:
		return "crash-hold"
	case KindTorn:
		return "torn"
	case KindTornHold:
		return "torn-hold"
	case KindStale:
		return "stale"
	default:
		return "unknown"
	}
}

// op maps the kind to the sim operation class whose per-agent counter
// addresses it.
func (k Kind) op() sim.FaultOp {
	switch k {
	case KindTorn, KindTornHold:
		return sim.FaultWrite
	case KindStale:
		return sim.FaultRead
	default:
		return sim.FaultStep
	}
}

// Event is one injected fault, addressed by the (operation class, agent,
// per-agent operation index) coordinates of its injection point — the same
// coordinates sim presents in FaultPoint, which is what makes replay exact.
type Event struct {
	// Kind is what was injected.
	Kind Kind `json:"kind"`
	// Agent is the victim agent's index.
	Agent int `json:"agent"`
	// Index is the victim's per-operation-class point counter at injection.
	Index int `json:"index"`
	// Node is the node where the injection happened (manifest information;
	// not needed to re-issue the event).
	Node int `json:"node"`
	// Arg is the kept prefix length for torn writes and the stall length
	// for staleness events; 0 otherwise.
	Arg int `json:"arg,omitempty"`
}

// String renders the event compactly, e.g. "crash-hold a2 step#17 @n3".
func (ev Event) String() string {
	s := fmt.Sprintf("%s a%d %s#%d @n%d", ev.Kind, ev.Agent, ev.Kind.op(), ev.Index, ev.Node)
	if ev.Kind == KindTorn || ev.Kind == KindTornHold || ev.Kind == KindStale {
		s += fmt.Sprintf(" arg=%d", ev.Arg)
	}
	return s
}

// Plan is the recorded fault decision log of one run: which faults were
// injected, at which points. Like sim.Schedule it is a pure value with a
// compact byte encoding; Replay re-issues it against another run of the
// same schedule.
type Plan struct {
	// Events are the injected faults in injection order.
	Events []Event `json:"events"`
}

// planMagic versions the encoding (bumped on layout changes).
const planMagic = 0xFA

// maxPlanEvents caps decoded plans (a run injects at most a handful of
// faults; anything huge is a corrupt or hostile input).
const maxPlanEvents = 1 << 20

// Encode serializes the plan: a magic byte, the event count, then five
// uvarints per event.
func (p *Plan) Encode() []byte {
	buf := make([]byte, 0, 2+10*len(p.Events))
	buf = append(buf, planMagic)
	buf = binary.AppendUvarint(buf, uint64(len(p.Events)))
	for _, ev := range p.Events {
		buf = binary.AppendUvarint(buf, uint64(ev.Kind))
		buf = binary.AppendUvarint(buf, uint64(ev.Agent))
		buf = binary.AppendUvarint(buf, uint64(ev.Index))
		buf = binary.AppendUvarint(buf, uint64(ev.Node))
		buf = binary.AppendUvarint(buf, uint64(ev.Arg))
	}
	return buf
}

// EncodeString returns the base64 form of Encode, for JSON manifests.
func (p *Plan) EncodeString() string {
	return base64.StdEncoding.EncodeToString(p.Encode())
}

// Summary renders the plan as a short human-readable list.
func (p *Plan) Summary() string {
	if len(p.Events) == 0 {
		return "no faults injected"
	}
	parts := make([]string, len(p.Events))
	for i, ev := range p.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, "; ")
}

// DecodePlan parses an encoded plan, validating the magic byte, the event
// count, and every kind.
func DecodePlan(data []byte) (*Plan, error) {
	if len(data) == 0 || data[0] != planMagic {
		return nil, errors.New("faults: bad plan header")
	}
	rest := data[1:]
	n, sz := binary.Uvarint(rest)
	if sz <= 0 || n > maxPlanEvents {
		return nil, errors.New("faults: bad plan event count")
	}
	rest = rest[sz:]
	p := &Plan{Events: make([]Event, 0, n)}
	for i := uint64(0); i < n; i++ {
		var vals [5]uint64
		for j := range vals {
			v, s := binary.Uvarint(rest)
			if s <= 0 {
				return nil, fmt.Errorf("faults: truncated plan at event %d", i)
			}
			vals[j] = v
			rest = rest[s:]
		}
		if vals[0] >= uint64(numKinds) {
			return nil, fmt.Errorf("faults: unknown event kind %d", vals[0])
		}
		if vals[1] > 1<<30 || vals[2] > 1<<30 || vals[3] > 1<<30 || vals[4] > 1<<30 {
			return nil, fmt.Errorf("faults: implausible field in event %d", i)
		}
		p.Events = append(p.Events, Event{
			Kind:  Kind(vals[0]),
			Agent: int(vals[1]),
			Index: int(vals[2]),
			Node:  int(vals[3]),
			Arg:   int(vals[4]),
		})
	}
	if len(rest) != 0 {
		return nil, errors.New("faults: trailing bytes after plan")
	}
	return p, nil
}

// DecodePlanString parses the base64 form produced by EncodeString.
func DecodePlanString(s string) (*Plan, error) {
	data, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("faults: bad plan base64: %w", err)
	}
	return DecodePlan(data)
}
