// Package runtime is the unified Protocol/Runtime contract of the
// reproduction: one serializable protocol definition, four execution
// backends. A Protocol is written once against the View/Effect step
// contract and then runs unchanged on
//
//   - Goroutine: the concurrent whiteboard simulator (internal/sim), one
//     goroutine per agent under the timing adversary;
//   - Scheduled: the same simulator under the deterministic serializing
//     scheduler, with replayable decision logs and the crash/torn/stale
//     fault plane (internal/faults);
//   - Transformed: the paper's Figure 1 transformation — "a message is an
//     agent" — executed as an in-process network of processors exchanging
//     (program, memory) messages;
//   - Networked: a real multi-process message bus — one OS process per
//     node shard, length-prefixed frames over unix sockets or TCP, and
//     wire-level fault injection (drop, delay, duplicate, reorder) with
//     replayable fault plans (faults.WirePlan).
//
// The contract deliberately matches the Figure 1 machine model: a protocol
// is a pure step function from (carried memory, local view) to (new
// memory, effect). Because the step function is serializable — memory is a
// string, views and effects are plain data — the same value can drive a
// goroutine, be re-stepped by a scheduler, ride inside a message, or be
// executed by a worker process on the far side of a socket. That is the
// executable content of the paper's transformation, promoted from a test
// harness to the system's architecture spine (DESIGN.md §15).
//
// Whiteboard semantics are identical on every backend: a board is a
// multiset of marks with per-writer deduplication (an agent writing the
// same mark twice at a node lands it once — mirroring sim's (Color, Tag)
// sign dedup), pre-marked with one "home" mark per resident agent before
// any step runs. View.Board is the sorted multiset; a parked agent is
// re-stepped only after its node's board changes.
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
)

// View is what a protocol step observes: the local neighborhood of the
// node its agent currently occupies. Identical across all four backends.
type View struct {
	// Degree is the degree of the current node.
	Degree int
	// Labels[p] is the edge label behind port p (distinct per node; the
	// trivial labeling is Labels[p] = p).
	Labels []int
	// Entry is the label, at this node, of the port the agent arrived
	// through (-1 at the home-base before any move).
	Entry int
	// Board is the sorted multiset of marks on the node's whiteboard,
	// including the engine's "home" pre-marks (one per resident agent).
	Board []string
	// ID is the agent's totally ordered integer identity (1-based agent
	// index — the quantitative model of Section 1.3).
	ID int
}

// Effect is what a protocol step decides: marks to write, then exactly one
// of move, park, or halt.
type Effect struct {
	// Write lists marks to add to the current whiteboard before acting.
	// Writes deduplicate per writer: a mark this agent already holds on
	// this board lands nothing.
	Write []string
	// Move, when >= 0, moves the agent through the port labeled Move.
	// -1 parks the agent at the node until the whiteboard changes.
	Move int
	// Halt, when non-empty, ends the agent with this outcome string
	// (conventionally one of the Halt* constants).
	Halt string
	// LeaderMark optionally names a board mark whose writer is the claimed
	// leader. The sim-backed backends resolve it to the leader's Color so
	// a defeated agent's sim.Outcome can acknowledge the winner; the
	// message-passing backends ignore it.
	LeaderMark string
}

// The conventional halt outcomes shared by election protocols across
// backends.
const (
	// HaltLeader marks the elected agent.
	HaltLeader = "leader"
	// HaltDefeated marks an agent that accepted another agent as leader.
	HaltDefeated = "defeated"
	// HaltUnsolvable marks an agent that detected the input is unsolvable.
	HaltUnsolvable = "unsolvable"
)

// TagHome is the engine-written home-base mark: every backend pre-marks
// each agent's home whiteboard with one "home" mark (written by that
// agent) before any protocol step executes, exactly like sim.TagHome.
const TagHome = "home"

// Protocol is an agent program in the unified contract: a serializable
// state machine stepped against local views. Implementations must be pure
// (no hidden state, no randomness) — the same (memory, view) must always
// produce the same (memory, effect), which is what lets every backend,
// including a worker process holding only the Spec string, execute it.
type Protocol interface {
	// Spec returns the protocol's registry spec ("name" or "name:args"),
	// the identity the networked backend ships to worker processes;
	// FromSpec(Spec()) must reconstruct an equivalent protocol.
	Spec() string
	// Init returns the agent's initial memory given its integer identity.
	Init(id int) string
	// Step executes one activation: from the carried memory and the local
	// view to new memory and an effect.
	Step(memory string, v View) (string, Effect)
}

// Config describes one election run, shared by all backends.
type Config struct {
	// Graph is the (multi)graph the agents inhabit (must be connected).
	Graph *graph.Graph
	// Labels is the edge labeling; nil defaults to the trivial
	// graph.PortLabeling (ℓ_v(p) = p).
	Labels graph.EdgeLabeling
	// Homes lists the home-base node of each agent; agent i gets ID i+1.
	Homes []int
	// Seed drives every backend's scheduling choices; the same (Config,
	// Protocol) pair is deterministic per backend for Scheduled,
	// Transformed, and Networked.
	Seed int64
	// MaxSteps bounds total protocol activations (default 200000).
	MaxSteps int
	// AllowSharedHomes permits several agents to start on one node.
	AllowSharedHomes bool
}

// normalize validates the config and fills defaults, returning the
// effective labeling.
func (c *Config) normalize() (graph.EdgeLabeling, error) {
	if c.Graph == nil || c.Graph.N() == 0 {
		return nil, errors.New("runtime: empty graph")
	}
	if !c.Graph.IsConnected() {
		return nil, errors.New("runtime: graph must be connected")
	}
	if len(c.Homes) == 0 {
		return nil, errors.New("runtime: need at least one agent")
	}
	seen := make(map[int]bool)
	for _, h := range c.Homes {
		if h < 0 || h >= c.Graph.N() {
			return nil, fmt.Errorf("runtime: home-base %d out of range", h)
		}
		if seen[h] && !c.AllowSharedHomes {
			return nil, fmt.Errorf("runtime: duplicate home-base %d (set AllowSharedHomes)", h)
		}
		seen[h] = true
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 200_000
	}
	labels := c.Labels
	if labels == nil {
		labels = graph.PortLabeling(c.Graph)
	}
	if err := labels.Validate(c.Graph); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	return labels, nil
}

// Result is what a backend reports after a run.
type Result struct {
	// Outcomes[i] is agent i's halt string ("" if the agent never halted).
	Outcomes []string
	// Moves[i] counts agent i's edge traversals.
	Moves []int64
	// Steps counts protocol activations across all agents.
	Steps int
	// Backend names the backend that produced the result.
	Backend string
}

// Leader returns the index of the unique agent that halted HaltLeader, or
// -1 when there is none or more than one.
func (r *Result) Leader() int {
	leader := -1
	for i, o := range r.Outcomes {
		if o == HaltLeader {
			if leader >= 0 {
				return -1
			}
			leader = i
		}
	}
	return leader
}

// TotalMoves sums the per-agent move counters.
func (r *Result) TotalMoves() int64 {
	var t int64
	for _, m := range r.Moves {
		t += m
	}
	return t
}

// Runtime is an execution backend: it runs a Protocol to completion on one
// substrate. The four implementations are Goroutine, Scheduled,
// Transformed, and Networked.
type Runtime interface {
	// Name returns the backend's registry name.
	Name() string
	// Run executes the protocol and returns the collected outcomes.
	Run(cfg Config, p Protocol) (*Result, error)
}

// Backends lists the four backend names accepted by New, in the canonical
// a/b/c/d order of DESIGN.md §15.
func Backends() []string {
	return []string{"goroutine", "scheduled", "transformed", "networked"}
}

// New returns a default-configured backend by name (one of Backends).
func New(name string) (Runtime, error) {
	switch name {
	case "goroutine":
		return Goroutine{}, nil
	case "scheduled":
		return &Scheduled{}, nil
	case "transformed":
		return Transformed{}, nil
	case "networked":
		return &Networked{}, nil
	default:
		return nil, fmt.Errorf("runtime: unknown backend %q (have %s)",
			name, strings.Join(Backends(), ", "))
	}
}

// registry maps protocol spec names to parsers so the networked backend
// can reconstruct a protocol from its Spec string on the worker side.
var (
	registryMu sync.RWMutex
	registry   = map[string]func(args string) (Protocol, error){}
)

// Register binds a protocol spec name to a parser. The parser receives the
// args part of "name:args" ("" when absent). Registering a name twice
// panics — specs are wire identities and must stay unambiguous.
func Register(name string, parse func(args string) (Protocol, error)) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("runtime: protocol " + name + " registered twice")
	}
	registry[name] = parse
}

// FromSpec reconstructs a protocol from its Spec string ("name" or
// "name:args"). Every registered protocol satisfies
// FromSpec(p.Spec()) ≡ p, which is what the networked backend relies on.
func FromSpec(spec string) (Protocol, error) {
	name, args, _ := strings.Cut(spec, ":")
	registryMu.RLock()
	parse, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: unknown protocol spec %q", spec)
	}
	return parse(args)
}

// mark is one whiteboard entry of the message-passing backends: the text
// plus the writing agent, so deduplication is per writer exactly as in the
// simulator's (Color, Tag) sign sets.
type mark struct {
	agent int
	text  string
}

// boardSet is the shared multiset-whiteboard implementation of the
// Transformed backend and the networked workers.
type boardSet struct {
	marks []mark
}

// write lands (agent, text) unless the agent already wrote that text here;
// it reports whether the board changed.
func (b *boardSet) write(agent int, text string) bool {
	for _, m := range b.marks {
		if m.agent == agent && m.text == text {
			return false
		}
	}
	b.marks = append(b.marks, mark{agent: agent, text: text})
	return true
}

// view returns the sorted multiset of mark texts.
func (b *boardSet) view() []string {
	out := make([]string, len(b.marks))
	for i, m := range b.marks {
		out[i] = m.text
	}
	sort.Strings(out)
	return out
}
