package runtime_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// Example_portOnce writes an election once against the Protocol contract
// and runs the same value on two backends — the concurrent goroutine
// simulator and the Figure 1 message-passing transformation. Outcomes,
// leader, and per-agent move counts agree because DFSElection's trajectory
// depends only on its own whiteboard marks and the shared edge labeling.
func Example_portOnce() {
	cfg := runtime.Config{
		Graph: graph.Cycle(6),
		Homes: []int{0, 3},
		Seed:  1,
	}
	p := runtime.DFSElection() // written once, against View/Effect

	for _, rt := range []runtime.Runtime{runtime.Goroutine{}, runtime.Transformed{}} {
		res, err := rt.Run(cfg, p)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: leader=agent%d outcomes=%v moves=%v\n",
			res.Backend, res.Leader(), res.Outcomes, res.Moves)
	}
	// Output:
	// goroutine: leader=agent1 outcomes=[defeated leader] moves=[14 14]
	// transformed: leader=agent1 outcomes=[defeated leader] moves=[14 14]
}
