// Package repro is a from-scratch Go reproduction of
//
//	L. Barrière, P. Flocchini, P. Fraigniaud, N. Santoro,
//	"Can we elect if we cannot compare?", 15th ACM SPAA, 2003.
//
// The paper studies deterministic leader election among mobile agents on
// anonymous networks in the QUALITATIVE model: agents carry distinct but
// mutually incomparable labels ("colors"), and local edge labels are
// likewise distinct but incomparable — protocols may test equality but may
// never order labels. The repository implements:
//
//   - an asynchronous mobile-agent simulator with whiteboards in which the
//     qualitative model is enforced by the type system (internal/sim);
//   - Protocol ELECT of Section 3 — whiteboard-DFS map drawing, canonical
//     ordering of the equivalence classes of the bicolored network, and the
//     gcd reduction via AGENT-REDUCE and NODE-REDUCE (internal/elect);
//   - the effectual Cayley-graph variant of Section 4, with exact Cayley
//     recognition by regular-subgroup search (internal/group);
//   - the impossibility machinery of Section 2 — views, symmetricity,
//     label-preserving automorphisms and the Theorem 2.1 oracle
//     (internal/view, internal/labeling);
//   - the quantitative baseline, the bespoke Petersen protocol, and the
//     lockstep anonymous-agents interpreter of the Section 1.3 argument.
//
// This root package is a façade re-exporting the pieces a downstream user
// needs: graph construction, election runs, and solvability analysis. The
// experiment harness regenerating the paper's table and figures lives in
// internal/exp and is driven by cmd/experiments and the root benchmarks.
package repro

import (
	"time"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Graph is an anonymous undirected multigraph (see internal/graph).
type Graph = graph.Graph

// Re-exported graph generators.
var (
	Path              = graph.Path
	Cycle             = graph.Cycle
	Complete          = graph.Complete
	CompleteBipartite = graph.CompleteBipartite
	Star              = graph.Star
	Hypercube         = graph.Hypercube
	Torus             = graph.Torus
	Grid              = graph.Grid
	Circulant         = graph.Circulant
	Petersen          = graph.Petersen
	CCC               = graph.CCC
	Prism             = graph.Prism
	Wheel             = graph.Wheel
	MoebiusKantor     = graph.MoebiusKantor
	RandomConnected   = graph.RandomConnected
)

// NewGraphBuilder starts an explicit graph construction.
func NewGraphBuilder(n int) *graph.Builder { return graph.NewBuilder(n) }

// Result is the outcome of a simulated election run.
type Result = sim.Result

// Outcome and roles of individual agents.
type (
	Outcome = sim.Outcome
	Role    = sim.Role
)

// Agent roles reported by protocols.
const (
	RoleLeader     = sim.RoleLeader
	RoleDefeated   = sim.RoleDefeated
	RoleUnsolvable = sim.RoleUnsolvable
)

// RunConfig configures an election run.
type RunConfig struct {
	// Seed drives the adversary: color assignment, per-agent symbol
	// encodings, initial wake-up set and delay injection.
	Seed int64
	// MaxDelay bounds the random per-operation delay (0 = yields only).
	MaxDelay time.Duration
	// WakeAll starts every agent awake; otherwise a random nonempty subset
	// starts and MAP-DRAWING wakes the rest.
	WakeAll bool
	// Timeout aborts a stuck run (default 30s).
	Timeout time.Duration
	// UseHairOrdering selects the paper's Lemma 3.1 hair construction for
	// the class order ≺ instead of the direct canonical order.
	UseHairOrdering bool
	// AllowSharedHomes permits repeated entries in the homes list — the
	// Section 1.2 extension where several agents start on one node.
	// Co-located agents are first reduced by a local whiteboard race; the
	// node weights stay visible to the class computation.
	AllowSharedHomes bool
	// Trace, when set, receives observer-side runtime events (moves, sign
	// writes, wake-ups, outcomes).
	Trace Tracer
	// Telemetry, when set, collects phase-scoped counters and protocol
	// spans for the run (see NewTelemetryRun and WriteChromeTrace). Nil
	// disables collection at zero cost.
	Telemetry *TelemetryRun
	// Scheduler, when set, replaces the free-running goroutine timing with
	// the deterministic serializing scheduler: agents execute one at a time
	// and Scheduler picks who runs at every sequence point (MaxDelay is then
	// ignored). Built-in adversarial strategies live in internal/adversary;
	// Replay reconstructs a recorded run. The execution becomes a pure
	// function of (Seed, grant sequence).
	Scheduler Strategy
	// RecordSchedule, when set, captures a scheduled run's grant sequence —
	// the compact decision log that replays the run bit-for-bit.
	RecordSchedule *Schedule
	// Faults, when set, injects deterministic faults (crash-stops, torn
	// whiteboard writes, bounded read staleness) at the simulator's sequence
	// points. Requires Scheduler — the fault plane composes with the
	// serializing turnstile so (schedule, fault plan) replays are exact.
	// Strategy-driven injectors and recordable plans live in internal/faults.
	Faults FaultInjector
	// TakeoverAfter is the number of sequence points a surviving agent burns
	// at a whiteboard abandoned by a crashed lock-holder before breaking the
	// lock and taking over (default 3; only meaningful with Faults).
	TakeoverAfter int
}

// Strategy decides which ready agent runs at each sequence point of a
// scheduled (serialized) run.
type Strategy = sim.Strategy

// Schedule is a recorded decision log: the sequence of agent indices
// granted by a scheduled run, encodable to bytes and replayable.
type Schedule = sim.Schedule

// ReplayStrategy is the strategy returned by Replay; it counts divergences
// when the log disagrees with the execution it drives.
type ReplayStrategy = sim.ReplayStrategy

// Replay returns a strategy that re-issues a recorded decision log.
func Replay(s *Schedule) *ReplayStrategy { return sim.Replay(s) }

// DecodeSchedule parses a Schedule.Encode byte stream.
var DecodeSchedule = sim.DecodeSchedule

// ErrDeadlock reports that a scheduled run wedged: no agent was ready and
// at least one was still blocked. A correct protocol never deadlocks under
// any legal schedule.
var ErrDeadlock = sim.ErrDeadlock

// ErrCrashed is the sentinel a crash-stopped agent's protocol goroutine
// unwinds with; it marks an injected fault, not a protocol failure, and is
// never promoted to a run-level error.
var ErrCrashed = sim.ErrCrashed

// FaultInjector decides, at each injection point of a scheduled run, whether
// to inject a fault (see RunConfig.Faults and internal/faults).
type FaultInjector = sim.FaultInjector

// FaultPoint names one potential injection point: the operation kind, the
// acting agent, its per-agent per-operation sequence index, the node, and
// the protocol phase.
type FaultPoint = sim.FaultPoint

// FaultAction is an injector's decision at a FaultPoint: crash (optionally
// holding the node lock), tear the in-flight write to a prefix, or stall
// the next reads.
type FaultAction = sim.FaultAction

// FaultOp classifies injection points (sequence step, sign write, board
// read).
type FaultOp = sim.FaultOp

// The fault injection-point kinds.
const (
	FaultStep  = sim.FaultStep
	FaultWrite = sim.FaultWrite
	FaultRead  = sim.FaultRead
)

// TelemetryRun collects one run's phase-scoped counters, spans and
// instants (see internal/telemetry).
type TelemetryRun = telemetry.Run

// NewTelemetryRun starts a telemetry collector for RunConfig.Telemetry.
func NewTelemetryRun() *TelemetryRun { return telemetry.NewRun() }

// WriteChromeTrace exports a collected run as Chrome trace_event JSON —
// open the file in Perfetto (ui.perfetto.dev) or chrome://tracing.
var WriteChromeTrace = telemetry.WriteChromeTrace

// Tracer receives observer-side simulation events.
type Tracer = sim.Tracer

// TraceEvent is one observer-side runtime event.
type TraceEvent = sim.Event

// Trace event kinds (see TraceEvent.Kind).
const (
	EvMove    = sim.EvMove
	EvWrite   = sim.EvWrite
	EvErase   = sim.EvErase
	EvWake    = sim.EvWake
	EvOutcome = sim.EvOutcome
	EvCrash   = sim.EvCrash
	EvRecover = sim.EvRecover
	EvTorn    = sim.EvTorn
)

// BufferedTracer decouples a slow trace sink (printing, file I/O) from the
// simulation: events buffer through a channel drained off the hot path, and
// a full buffer drops events (counted) instead of stalling agents under the
// whiteboard lock.
type BufferedTracer = sim.BufferedTracer

// NewBufferedTracer starts a buffered tracer feeding sink; install its
// Trace method as RunConfig.Trace and Close it after the run to flush.
func NewBufferedTracer(sink Tracer, size int) *BufferedTracer {
	return sim.NewBufferedTracer(sink, size)
}

func (c RunConfig) ordering() order.Ordering {
	if c.UseHairOrdering {
		return order.Hairs
	}
	return order.Direct
}

// RunElect runs Protocol ELECT (Section 3) with one agent per home-base.
// It elects a leader iff the gcd of the equivalence-class sizes of (g, p)
// is 1; otherwise every agent reports the election unsolvable.
func RunElect(g *Graph, homes []int, cfg RunConfig) (*Result, error) {
	return sim.Run(simConfig(g, homes, cfg, false),
		elect.Elect(elect.Options{Ordering: cfg.ordering()}))
}

// RunCayleyElect runs the Section 4 effectual protocol for Cayley graphs:
// agents recognize the Cayley structure from their drawn maps, report
// impossibility when a nontrivial translation preserves the home-base set,
// and otherwise elect via the ELECT reduction.
func RunCayleyElect(g *Graph, homes []int, cfg RunConfig) (*Result, error) {
	return sim.Run(simConfig(g, homes, cfg, false),
		elect.CayleyElect(elect.CayleyOptions{Ordering: cfg.ordering(), FallbackToElect: true}))
}

// RunQuantitative runs the quantitative baseline of Section 1.3: agents
// carry totally ordered integer identities and the maximum wins. It is
// universal — it succeeds on every input, including those impossible in the
// qualitative model.
func RunQuantitative(g *Graph, homes []int, cfg RunConfig) (*Result, error) {
	return sim.Run(simConfig(g, homes, cfg, true), elect.QuantitativeElect())
}

// RunPetersenAdHoc runs the bespoke Section 4 protocol electing a leader on
// the Petersen graph with two agents at adjacent home-bases — the instance
// where ELECT is not effectual (Figure 5).
func RunPetersenAdHoc(g *Graph, homes []int, cfg RunConfig) (*Result, error) {
	return sim.Run(simConfig(g, homes, cfg, false), elect.PetersenElect())
}

// RunGather runs the rendezvous protocol built on ELECT (the paper's
// footnote 2): elect a leader, then gather every agent at the leader's
// home-base. On success every agent is physically at the rendezvous node;
// if election is impossible, every agent reports unsolvable.
func RunGather(g *Graph, homes []int, cfg RunConfig) (*Result, error) {
	return sim.Run(simConfig(g, homes, cfg, false),
		elect.Gather(elect.Options{Ordering: cfg.ordering()}))
}

func simConfig(g *Graph, homes []int, cfg RunConfig, quant bool) sim.Config {
	return sim.Config{
		Graph:            g,
		Homes:            homes,
		Seed:             cfg.Seed,
		MaxDelay:         cfg.MaxDelay,
		WakeAll:          cfg.WakeAll,
		Timeout:          cfg.Timeout,
		QuantitativeIDs:  quant,
		AllowSharedHomes: cfg.AllowSharedHomes,
		Tracer:           cfg.Trace,
		Telemetry:        cfg.Telemetry,
		Scheduler:        cfg.Scheduler,
		Record:           cfg.RecordSchedule,
		Faults:           cfg.Faults,
		TakeoverAfter:    cfg.TakeoverAfter,
	}
}

// Violation is one protocol-invariant breach found by CheckInvariants.
type Violation = elect.Violation

// InvariantSpec parameterizes CheckInvariants with the oracle's verdict and
// the Theorem 3.1 move-bound constants.
type InvariantSpec = elect.InvariantSpec

// CheckInvariants validates a completed run against the protocol contract:
// at most one leader, all-agree-or-all-fail, verdict matching the gcd
// oracle, and the move bound (see internal/elect and internal/adversary).
var CheckInvariants = elect.CheckInvariants

// Analysis is the centralized solvability analysis of an input (see
// internal/elect.Analyze): ordered class sizes and gcd (Theorem 3.1),
// Cayley recognition and translation count d (Theorem 4.1), and the exact
// Theorem 2.1 symmetric-labeling check for simple graphs.
type Analysis = elect.Analysis

// Analyze computes the solvability analysis of (g, homes).
func Analyze(g *Graph, homes []int) (*Analysis, error) {
	return elect.Analyze(g, homes, order.Direct)
}
