package group

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/iso"
)

func isoGraphs(a, b *graph.Graph) bool {
	return iso.Isomorphic(iso.FromGraph(a, nil), iso.FromGraph(b, nil))
}

func TestSemidirectGroupAxioms(t *testing.T) {
	g := SemidirectZ2Zd(3)
	if g.Order() != 24 {
		t.Fatalf("order %d, want 24", g.Order())
	}
	if g.IsAbelian() {
		t.Fatal("Z2^3:Z3 should not be abelian")
	}
	// Re-validate the table through FromTable (associativity etc.).
	n := g.Order()
	mul := make([][]int, n)
	for a := 0; a < n; a++ {
		mul[a] = make([]int, n)
		for b := 0; b < n; b++ {
			mul[a][b] = g.Mul(a, b)
		}
	}
	if _, err := FromTable(g.Name(), mul, nil); err != nil {
		t.Fatalf("invalid group: %v", err)
	}
}

func TestCCCCayleyMatchesGraph(t *testing.T) {
	c, err := CCCCayley(3)
	if err != nil {
		t.Fatal(err)
	}
	if !isoGraphs(c.G, graph.CCC(3)) {
		t.Error("Cay(Z2^3:Z3, {(0,±1),(e0,0)}) not isomorphic to CCC(3)")
	}
	if c.Degree() != 3 {
		t.Errorf("CCC degree %d, want 3", c.Degree())
	}
}

func TestWrappedButterflyCayleyMatchesGraph(t *testing.T) {
	c, err := WrappedButterflyCayley(3)
	if err != nil {
		t.Fatal(err)
	}
	if !isoGraphs(c.G, graph.WrappedButterfly(3)) {
		t.Error("Cayley wrapped butterfly not isomorphic to WrappedButterfly(3)")
	}
	if c.Degree() != 4 {
		t.Errorf("WB degree %d, want 4", c.Degree())
	}
}

func TestStarCayleyMatchesGraph(t *testing.T) {
	for _, k := range []int{3, 4} {
		c, err := StarCayley(k)
		if err != nil {
			t.Fatal(err)
		}
		if !isoGraphs(c.G, graph.StarGraph(k)) {
			t.Errorf("StarCayley(%d) not isomorphic to StarGraph(%d)", k, k)
		}
	}
	// ST(3) is the 6-cycle.
	c, err := StarCayley(3)
	if err != nil {
		t.Fatal(err)
	}
	if !isoGraphs(c.G, graph.Cycle(6)) {
		t.Error("ST(3) should be C6")
	}
}

func TestPancakeCayleyMatchesGraph(t *testing.T) {
	for _, k := range []int{3, 4} {
		c, err := PancakeCayley(k)
		if err != nil {
			t.Fatal(err)
		}
		if !isoGraphs(c.G, graph.Pancake(k)) {
			t.Errorf("PancakeCayley(%d) not isomorphic to Pancake(%d)", k, k)
		}
	}
	// P3 is also the 6-cycle.
	c, _ := PancakeCayley(3)
	if !isoGraphs(c.G, graph.Cycle(6)) {
		t.Error("Pancake(3) should be C6")
	}
}

func TestNetworkShapes(t *testing.T) {
	st4 := graph.StarGraph(4)
	if st4.N() != 24 || st4.M() != 36 {
		t.Errorf("ST(4): n=%d m=%d, want 24, 36", st4.N(), st4.M())
	}
	if reg, d := st4.IsRegular(); !reg || d != 3 {
		t.Error("ST(4) should be cubic")
	}
	if !st4.IsConnected() {
		t.Error("ST(4) disconnected")
	}
	pk4 := graph.Pancake(4)
	if pk4.N() != 24 || pk4.M() != 36 {
		t.Errorf("Pancake(4): n=%d m=%d, want 24, 36", pk4.N(), pk4.M())
	}
	wb3 := graph.WrappedButterfly(3)
	if wb3.N() != 24 || wb3.M() != 48 {
		t.Errorf("WB(3): n=%d m=%d, want 24, 48", wb3.N(), wb3.M())
	}
	if wb3.Diameter() <= 0 {
		t.Error("WB(3) should be connected")
	}
}

func TestNaturalLabelingOnNetworkCayleys(t *testing.T) {
	cccs, err := CCCCayley(3)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := WrappedButterflyCayley(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Cayley{cccs, wb} {
		for v := 0; v < c.G.N(); v++ {
			for p, h := range c.G.Ports(v) {
				s := c.PortGen[v][p]
				if c.Group.Mul(v, s) != h.To {
					t.Fatalf("%s: natural labeling broken at (%d,%d)", c.Group.Name(), v, p)
				}
			}
		}
	}
}
