package elect

import (
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options configures the ELECT protocol family.
type Options struct {
	// Ordering selects the ≺ implementation (Lemma 3.1); Direct by default.
	Ordering order.Ordering
	// NoSkip disables the no-op-phase skip (the literal Figure 3 loops) —
	// an ablation that demonstrates why Theorem 3.1's cost accounting needs
	// the skip (DESIGN.md §6, finding 3). Correctness is unaffected.
	NoSkip bool
}

// Elect returns the Protocol ELECT of Section 3 (Figure 3): MAP-DRAWING,
// COMPUTE & ORDER on the automorphism-equivalence classes, then the gcd
// reduction by AGENT-REDUCE and NODE-REDUCE. It elects a leader iff
// gcd(|C_1|, …, |C_k|) = 1 and otherwise lets every agent report that the
// election failed (Theorem 3.1).
func Elect(opt Options) sim.Protocol {
	return func(a *sim.Agent) (sim.Outcome, error) {
		m, err := MapDraw(a)
		if err != nil {
			return sim.Outcome{}, err
		}
		k := newKnowledge(a, m, opt.Ordering)
		return runReductionOpt(k, opt.NoSkip)
	}
}

// runReduction executes the reduction schedule and the final announcement
// for one agent, given its COMPUTE & ORDER result.
func runReduction(k *knowledge) (sim.Outcome, error) {
	return runReductionOpt(k, false)
}

func runReductionOpt(k *knowledge, noSkip bool) (sim.Outcome, error) {
	// Shared-home extension (Section 1.2's "all our results extend"):
	// co-located agents first race on their own whiteboard; exactly one
	// champion per home-base stays active, the rest retire immediately.
	// Local races need no symmetry argument — the board mutex breaks the
	// tie — and the weights stay visible to the class computation (weights
	// are the node colors), so no solvable asymmetry is lost. After the
	// championship at most one agent is active per node and the reduction
	// proceeds exactly as in the paper, over node counts.
	champion := true
	if k.m.Weight[k.m.Home] > 1 {
		if err := k.accessHome(func(b *sim.Board) {
			if !b.Signs().Has(tagChampion) {
				b.Write(tagChampion)
			} else {
				champion = false
			}
		}); err != nil {
			return sim.Outcome{}, err
		}
	}
	sc := computeScheduleOpt(k.ord.Sizes(), k.ord.NumBlack, noSkip)
	st := &agentState{k: k, inD: champion && k.myClass() == 0}
	if !champion {
		if err := st.goPassive(); err != nil {
			return sim.Outcome{}, err
		}
	}
	for i := range sc.phases {
		plan := &sc.phases[i]
		var err error
		switch plan.kind {
		case phaseAgent:
			err = runAgentReducePhase(st, i, plan)
		case phaseNode:
			err = runNodeReducePhase(st, i, plan)
		}
		if err != nil {
			return sim.Outcome{}, err
		}
	}
	return announce(st, sc)
}

// announce finishes the protocol: the unique survivor (if the reduction
// reached 1) tours the network proclaiming itself leader; if the reduction
// stopped at d > 1 the survivors proclaim failure; everyone else waits at
// home for one of the two proclamations.
func announce(st *agentState, sc *schedule) (sim.Outcome, error) {
	k := st.k
	k.a.SetPhase(telemetry.PhaseAnnounce)
	sp := k.a.Span("announce")
	defer sp.End()
	if st.inD {
		if sc.finalD == 1 {
			// I am the unique survivor: the leader.
			if err := k.writeEverywhere(tagLeader); err != nil {
				return sim.Outcome{}, err
			}
			return sim.Outcome{Role: sim.RoleLeader, Leader: k.a.Color()}, nil
		}
		// Election is impossible: inform everyone.
		if err := k.writeEverywhere(tagFailed); err != nil {
			return sim.Outcome{}, err
		}
		return sim.Outcome{Role: sim.RoleUnsolvable}, nil
	}
	ss, err := k.waitHome(func(ss sim.Signs) bool {
		return ss.Has(tagLeader) || ss.Has(tagFailed)
	})
	if err != nil {
		return sim.Outcome{}, err
	}
	if leaders := ss.Colors(tagLeader); len(leaders) == 1 {
		return sim.Outcome{Role: sim.RoleDefeated, Leader: leaders[0]}, nil
	}
	return sim.Outcome{Role: sim.RoleUnsolvable}, nil
}
