package iso

import (
	"bytes"
	"sort"

	"repro/internal/graph"
	"repro/internal/perm"
)

// Sparse is a vertex-colored directed multigraph in compressed-sparse-row
// form — the O(n+m) counterpart of Colored for graphs too large to hold an
// n×n multiplicity matrix or an n+n² word. The sparse engine
// (CanonicalSparse, SparseOrbits) shares the refinement and search machinery
// with the dense engine but serializes the O(n+m) varint word described in
// DESIGN.md §13. Sparse words and dense words live in different code spaces:
// compare sparse words with sparse words only. Within the sparse engine the
// guarantee is the same: equal canonical words exactly characterize
// color-isomorphism.
type Sparse struct {
	// N is the vertex count, Color the per-vertex colors (same conventions
	// as Colored.Color).
	N     int
	Color []int

	g *csr
}

// Arcs returns the number of distinct (source, target) arc pairs — the m of
// the engine's O(n+m) bounds.
func (sp *Sparse) Arcs() int { return len(sp.g.outDst) }

// SparseFromGraph builds the symmetric Sparse form of an undirected
// multigraph in O(n + m): per-vertex neighbor lists are sorted and run-
// length encoded into multiplicities (a loop contributes 2, matching
// graph.AdjacencyMatrix and FromGraph). colors may be nil (all zero) or
// have length g.N().
func SparseFromGraph(gr *graph.Graph, colors []int) *Sparse {
	n := gr.N()
	sp := &Sparse{N: n, Color: make([]int, n)}
	if colors != nil {
		if len(colors) != n {
			panic("iso: color slice length mismatch")
		}
		copy(sp.Color, colors)
	}
	c := &csr{outStart: make([]int32, n+1)}
	var nbuf []int32
	for v := 0; v < n; v++ {
		hs := gr.Ports(v)
		nbuf = nbuf[:0]
		for _, h := range hs {
			nbuf = append(nbuf, int32(h.To))
		}
		sortInt32s(nbuf)
		for i := 0; i < len(nbuf); {
			j := i
			for j < len(nbuf) && nbuf[j] == nbuf[i] {
				j++
			}
			c.outDst = append(c.outDst, nbuf[i])
			c.outMult = append(c.outMult, int32(j-i))
			i = j
		}
		c.outStart[v+1] = int32(len(c.outDst))
	}
	// Undirected symmetry: the multiplicity matrix is symmetric, so the
	// in-CSR equals the out-CSR and can share its arrays.
	c.inStart, c.inDst, c.inMult = c.outStart, c.outDst, c.outMult
	sp.g = c
	return sp
}

// SparseFromColored converts a dense Colored (primarily for differential
// tests between the two engines).
func SparseFromColored(c *Colored) *Sparse {
	return &Sparse{N: c.N, Color: append([]int(nil), c.Color...), g: buildCSR(c)}
}

// SparseFromArcs builds a Sparse digraph on n vertices from (u, v) arc
// pairs; repeated pairs accumulate multiplicity. colors may be nil.
func SparseFromArcs(n int, arcs [][2]int, colors []int) *Sparse {
	sp := &Sparse{N: n, Color: make([]int, n)}
	if colors != nil {
		if len(colors) != n {
			panic("iso: color slice length mismatch")
		}
		copy(sp.Color, colors)
	}
	as := append([][2]int(nil), arcs...)
	c := &csr{outStart: make([]int32, n+1), inStart: make([]int32, n+1)}
	sort.Slice(as, func(i, j int) bool {
		if as[i][0] != as[j][0] {
			return as[i][0] < as[j][0]
		}
		return as[i][1] < as[j][1]
	})
	src := 0
	for i := 0; i < len(as); {
		j := i
		for j < len(as) && as[j] == as[i] {
			j++
		}
		for src < as[i][0] {
			src++
			c.outStart[src] = int32(len(c.outDst))
		}
		c.outDst = append(c.outDst, int32(as[i][1]))
		c.outMult = append(c.outMult, int32(j-i))
		i = j
	}
	for src < n {
		src++
		c.outStart[src] = int32(len(c.outDst))
	}
	sort.Slice(as, func(i, j int) bool {
		if as[i][1] != as[j][1] {
			return as[i][1] < as[j][1]
		}
		return as[i][0] < as[j][0]
	})
	dst := 0
	for i := 0; i < len(as); {
		j := i
		for j < len(as) && as[j] == as[i] {
			j++
		}
		for dst < as[i][1] {
			dst++
			c.inStart[dst] = int32(len(c.inDst))
		}
		c.inDst = append(c.inDst, int32(as[i][0]))
		c.inMult = append(c.inMult, int32(j-i))
		i = j
	}
	for dst < n {
		dst++
		c.inStart[dst] = int32(len(c.inDst))
	}
	sp.g = c
	return sp
}

// Recolor returns a view of sp with new colors sharing the (immutable)
// adjacency structure — an O(n) operation used by individualization-based
// orbit completion.
func (sp *Sparse) Recolor(colors []int) *Sparse {
	if len(colors) != sp.N {
		panic("iso: color slice length mismatch")
	}
	return &Sparse{N: sp.N, Color: append([]int(nil), colors...), g: sp.g}
}

// csrOutMult returns the multiplicity of arc v -> w (rows are sorted by
// destination, so one binary search).
func csrOutMult(g *csr, v int, w int32) int32 {
	lo, hi := g.outStart[v], g.outStart[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if g.outDst[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.outStart[v+1] && g.outDst[lo] == w {
		return g.outMult[lo]
	}
	return 0
}

// csrIsAutomorphism reports whether p is a color-preserving automorphism of
// the graph (colors, g) in O(Σ deg · log deg). Checking every out-arc maps
// with equal multiplicity, plus per-row entry-count equality, pins the whole
// arc multiset (p is a bijection), so in-arcs need no separate pass.
func csrIsAutomorphism(g *csr, colors []int, p perm.Perm) bool {
	n := len(colors)
	if len(p) != n {
		return false
	}
	for v := 0; v < n; v++ {
		pv := p[v]
		if colors[pv] != colors[v] {
			return false
		}
		if g.outStart[v+1]-g.outStart[v] != g.outStart[pv+1]-g.outStart[pv] {
			return false
		}
		for a := g.outStart[v]; a < g.outStart[v+1]; a++ {
			if csrOutMult(g, pv, int32(p[g.outDst[a]])) != g.outMult[a] {
				return false
			}
		}
	}
	return true
}

// IsAutomorphism reports whether p is a color-preserving automorphism of sp.
func (sp *Sparse) IsAutomorphism(p perm.Perm) bool {
	return csrIsAutomorphism(sp.g, sp.Color, p)
}

// OutMult returns the multiplicity of arc u -> v (0 when absent), one
// binary search over u's sorted out-row.
func (sp *Sparse) OutMult(u, v int) int {
	return int(csrOutMult(sp.g, u, int32(v)))
}

// SparseEquitablePartition returns the coarsest equitable refinement of
// sp's color partition, in canonical cell order — the sparse counterpart of
// EquitablePartition, O(n + m log n) per call.
func SparseEquitablePartition(sp *Sparse) [][]int {
	if sp.N == 0 {
		return nil
	}
	st := newSparseCanonState(sp, 0)
	lv := st.level(0)
	st.initialPartition(lv)
	st.refine(lv)
	out := make([][]int, 0, lv.ncells)
	for k := 0; k < lv.ncells; k++ {
		out = append(out, append([]int(nil), lv.lab[lv.cellStart[k]:lv.cellStart[k+1]]...))
	}
	return out
}

// SparseOrbits returns the exact orbits of the color-preserving
// automorphism group of sp (each sorted ascending, ordered by smallest
// element), running one canonical search for generators and completing them
// with individualization transporter tests.
func SparseOrbits(sp *Sparse, o Options) ([][]int, error) {
	r, err := CanonicalSparseOpt(sp, o)
	if err != nil {
		return nil, err
	}
	return SparseOrbitsWith(sp, r, o)
}

// SparseOrbitsWith completes the orbits of sp from an existing canonical
// result (avoiding a second search when the caller already ran one).
//
// The search's generators are not guaranteed to generate the full orbit
// partition (orbit pruning can suppress leaves), so candidate merges are
// verified per equitable cell: for two unmerged vertices u, v of one cell,
// individualize-and-refine each; if both refinements are discrete the only
// possible automorphism mapping u to v is the positional map between the
// two labelings (refinement is canonical, so any such automorphism maps one
// refined partition onto the other cell-by-cell) — verify it and either
// merge or conclude u, v lie in distinct orbits. If neither is discrete,
// fall back to the canonical-word transporter on recolored copies, exactly
// like the dense automorphismGensComplete. Mixed discreteness already
// proves distinct orbits.
func SparseOrbitsWith(sp *Sparse, r *Result, o Options) ([][]int, error) {
	n := sp.N
	uf := make([]int32, n)
	for i := range uf {
		uf[i] = int32(i)
	}
	for _, a := range r.AutoGens {
		for i, ai := range a {
			ufUnion(uf, int32(i), int32(ai))
		}
	}
	st := newSparseCanonState(sp, 0)
	lv := st.level(0)
	st.initialPartition(lv)
	st.refine(lv)

	fresh := 0
	for _, col := range sp.Color {
		if col >= fresh {
			fresh = col + 1
		}
	}
	scratch := st.level(1)
	var labU, labV []int
	for k := 0; k < lv.ncells; k++ {
		cs, ce := int(lv.cellStart[k]), int(lv.cellStart[k+1])
		if ce-cs < 2 {
			continue
		}
		// Distinct union-find roots among the cell's members, in lab order.
		roots := make([]int, 0, ce-cs)
		seen := make(map[int32]bool, ce-cs)
		for i := cs; i < ce; i++ {
			rt := ufFind(uf, int32(lv.lab[i]))
			if !seen[rt] {
				seen[rt] = true
				roots = append(roots, lv.lab[i])
			}
		}
		for ui := 0; ui < len(roots); ui++ {
			u := roots[ui]
			var uDiscrete bool
			var uPrepared bool
			var ru *Result
			for vi := ui + 1; vi < len(roots); vi++ {
				v := roots[vi]
				if ufFind(uf, int32(u)) == ufFind(uf, int32(v)) {
					continue
				}
				if !uPrepared {
					uPrepared = true
					labU, uDiscrete = st.individualizedLabeling(lv, scratch, k, u, labU)
				}
				var vDiscrete bool
				labV, vDiscrete = st.individualizedLabeling(lv, scratch, k, v, labV)
				if uDiscrete != vDiscrete {
					continue // provably distinct orbits
				}
				if uDiscrete {
					// The positional map is the only candidate transporter.
					a := make(perm.Perm, n)
					for i := range labU {
						a[labU[i]] = labV[i]
					}
					if csrIsAutomorphism(sp.g, sp.Color, a) {
						for i, ai := range a {
							ufUnion(uf, int32(i), int32(ai))
						}
					}
					continue
				}
				// Both non-discrete: canonical-word transporter on recolored
				// copies (the expensive, rarely taken path).
				if ru == nil {
					spu := sp.Recolor(sp.Color)
					spu.Color[u] = fresh
					var err error
					ru, err = CanonicalSparseOpt(spu, o)
					if err != nil {
						return nil, err
					}
				}
				spv := sp.Recolor(sp.Color)
				spv.Color[v] = fresh
				rv, err := CanonicalSparseOpt(spv, o)
				if err != nil {
					return nil, err
				}
				if !bytes.Equal(ru.Word, rv.Word) {
					continue
				}
				a := ru.Perm.Compose(rv.Perm.Inverse())
				if csrIsAutomorphism(sp.g, sp.Color, a) {
					for i, ai := range a {
						ufUnion(uf, int32(i), int32(ai))
					}
				}
			}
		}
	}
	return orbitsFromUF(uf), nil
}

// individualizedLabeling copies the equitable partition lv into scratch,
// individualizes v (in cell k) and refines; it reports whether the result
// is discrete and, if so, fills dst (reused across calls) with the
// labeling. Returns dst and the discreteness flag.
func (st *canonState) individualizedLabeling(lv, scratch *level, k, v int, dst []int) ([]int, bool) {
	scratch.copyFrom(lv)
	scratch.individualize(k, v)
	st.refineSingle(scratch, k)
	if !scratch.discrete(st.n) {
		return dst, false
	}
	dst = append(dst[:0], scratch.lab...)
	return dst, true
}

// orbitsFromUF groups vertices by union-find root, each orbit sorted
// ascending, orbits ordered by smallest element.
func orbitsFromUF(uf []int32) [][]int {
	n := len(uf)
	byRoot := make(map[int32][]int, n)
	order := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		rt := ufFind(uf, int32(v))
		if _, ok := byRoot[rt]; !ok {
			order = append(order, rt)
		}
		byRoot[rt] = append(byRoot[rt], v)
	}
	out := make([][]int, 0, len(order))
	for _, rt := range order {
		out = append(out, byRoot[rt])
	}
	return out
}
