package elect

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Whiteboard tags of the reduction machinery. All tags are colored by their
// writer, so they never collide across agents; round-scoped tags carry the
// phase and round indices.
const (
	tagPassive = "passive" // posted at an agent's own home when it leaves the game
	// tagChampion marks the winner of the local race at a shared home-base
	// (the shared-home extension's first step).
	tagChampion = "champion"
	tagLeader   = "leader" // posted everywhere by the elected leader
	tagFailed   = "failed" // posted everywhere when the reduction ends with |D| > 1
)

func tagRole(phase, round int, searcher bool) string {
	if searcher {
		return fmt.Sprintf("p%d.r%d.S", phase, round)
	}
	return fmt.Sprintf("p%d.r%d.W", phase, round)
}
func tagSync(phase, round int) string    { return fmt.Sprintf("p%d.r%d.sync", phase, round) }
func tagSVisit(phase, round int) string  { return fmt.Sprintf("p%d.r%d.svisit", phase, round) }
func tagMatched(phase, round int) string { return fmt.Sprintf("p%d.r%d.matched", phase, round) }
func tagAcq(phase, round int) string     { return fmt.Sprintf("p%d.r%d.acq", phase, round) }
func tagTaken(phase int) string          { return fmt.Sprintf("p%d.taken", phase) }
func tagClaim(phase, round int) string   { return fmt.Sprintf("p%d.r%d.claim", phase, round) }

// statusColors counts the distinct colors that have posted a round status —
// this round's W or S role, or the permanent passive sign — on a board. A
// searcher may act at a home only once every one of its weight residents
// has resolved.
func statusColors(ss sim.Signs, roleW, roleS string) int {
	var seen []sim.Color
	for _, s := range ss {
		if s.Tag != roleW && s.Tag != roleS && s.Tag != tagPassive {
			continue
		}
		dup := false
		for _, c := range seen {
			if c.Equal(s.Color) {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, s.Color)
		}
	}
	return len(seen)
}

// agentState tracks one agent's runtime fate through the reduction.
type agentState struct {
	k *knowledge
	// inD reports whether the agent currently belongs to the active set D.
	inD bool
	// passive is set once the agent is eliminated (matched or acquired).
	passive bool
}

// goPassive marks the agent eliminated and posts the fact at its home.
func (st *agentState) goPassive() error {
	st.passive = true
	st.inD = false
	return st.k.accessHome(func(b *sim.Board) { b.Write(tagPassive) })
}

// candidateHomes returns the local nodes that are home-bases of possible
// phase participants — the homes a searcher must resolve the status of:
// the classes that may host members of D plus the phase's own class
// (phasePlan.candidates). Homes of skipped classes are never scanned; their
// residents never post phase signs.
func candidateHomes(k *knowledge, classes []int) map[int]bool {
	out := make(map[int]bool)
	for _, c := range classes {
		for _, v := range k.ord.Classes[c] {
			if k.isHomeBase(v) {
				out[v] = true
			}
		}
	}
	return out
}

// runAgentReducePhase executes one AGENT-REDUCE phase (Figure 4) for this
// agent. The agent participates iff it is in D or its home class is the
// phase's class; otherwise the call is a no-op. phaseIdx is the global phase
// number (used to scope tags).
func runAgentReducePhase(st *agentState, phaseIdx int, plan *phasePlan) error {
	k := st.k
	inClass := k.myClass() == plan.classIdx
	if st.passive || (!st.inD && !inClass) {
		return nil
	}
	k.a.SetPhase(telemetry.PhaseAgentReduce)
	sp := phaseSpan(k.a, "agent-reduce", phaseIdx)
	defer sp.End()
	// Round-0 role: D searches iff plan.dSearches.
	searcher := (st.inD && plan.dSearches) || (inClass && !plan.dSearches)
	if len(plan.rounds) == 0 {
		// |D| == |C| on entry: AGENT-REDUCE returns S immediately; with the
		// tie convention S = D, the class agents retire unmatched.
		if !searcher {
			return st.goPassive()
		}
		st.inD = true
		return nil
	}
	for r, round := range plan.rounds {
		var err error
		var matchedMe bool
		if searcher {
			matchedMe, err = searchRound(st, phaseIdx, r, round, plan.candidates)
			if err != nil {
				return err
			}
			if !matchedMe {
				return errors.New("elect: searcher failed to match (protocol invariant broken)")
			}
			if round.swap {
				searcher = false // S becomes W
			}
		} else {
			wasMatched, werr := waitRound(st, phaseIdx, r, round)
			if werr != nil {
				return werr
			}
			if wasMatched {
				return st.goPassive()
			}
			if round.swap {
				searcher = true // unmatched waiters become searchers
			}
		}
	}
	// Rounds exhausted: |S| == |W|; S is the new D, W retires.
	if searcher {
		st.inD = true
		return nil
	}
	return st.goPassive()
}

// searchRound performs one searcher round: post role, synchronize with the
// other searchers, then tour the network matching the first unmatched
// waiter and stamping every board with the visit sign. Returns whether this
// searcher matched a waiter (it always must, by the counting argument of
// Section 3.3.1).
func searchRound(st *agentState, phaseIdx, r int, round roundPlan, candidates []int) (bool, error) {
	k := st.k
	if err := k.accessHome(func(b *sim.Board) { b.Write(tagRole(phaseIdx, r, true)) }); err != nil {
		return false, err
	}
	if err := k.writeEverywhere(tagSync(phaseIdx, r)); err != nil {
		return false, err
	}
	sync := tagSync(phaseIdx, r)
	if _, err := k.waitHome(func(ss sim.Signs) bool {
		return ss.CountColors(sync) >= round.s
	}); err != nil {
		return false, err
	}

	homes := candidateHomes(k, candidates)
	roleW := tagRole(phaseIdx, r, false)
	roleS := tagRole(phaseIdx, r, true)
	matchTag := tagMatched(phaseIdx, r)
	visitTag := tagSVisit(phaseIdx, r)
	matched := false
	for _, v := range k.tour {
		if err := k.moveTo(v); err != nil {
			return false, err
		}
		if homes[v] && v != k.m.Home {
			// Resolve every resident's status for this round before acting:
			// each will eventually post passive, this round's W, or this
			// round's S at its home. (A home hosts weight-many residents
			// under the shared-home extension.)
			weight := k.m.Weight[v]
			if _, err := k.a.Wait(func(ss sim.Signs) bool {
				return statusColors(ss, roleW, roleS) >= weight
			}); err != nil {
				return false, err
			}
		}
		if err := k.a.Access(func(b *sim.Board) {
			ss := b.Signs()
			// Match if the home still has an unmatched round-r waiter: the
			// number of matched stamps is below the number of waiters here.
			if !matched && v != k.m.Home && ss.CountColors(matchTag) < ss.CountColors(roleW) {
				b.Write(matchTag)
				matched = true
			}
			b.Write(visitTag)
		}); err != nil {
			return false, err
		}
	}
	if err := k.moveTo(k.m.Home); err != nil {
		return false, err
	}
	return matched, nil
}

// waitRound performs one waiter round: post the waiting sign at home, wait
// until every searcher of the round has visited, and report whether some
// searcher matched this agent.
func waitRound(st *agentState, phaseIdx, r int, round roundPlan) (bool, error) {
	k := st.k
	if err := k.accessHome(func(b *sim.Board) { b.Write(tagRole(phaseIdx, r, false)) }); err != nil {
		return false, err
	}
	visitTag := tagSVisit(phaseIdx, r)
	matchTag := tagMatched(phaseIdx, r)
	if _, err := k.waitHome(func(ss sim.Signs) bool {
		return ss.CountColors(visitTag) >= round.s
	}); err != nil {
		return false, err
	}
	// All searchers have visited, so the matched stamps on this board are
	// final. Co-located waiters race (under the board mutex) to claim them:
	// exactly as many waiters retire as stamps were left.
	claimTag := tagClaim(phaseIdx, r)
	matched := false
	err := k.a.Access(func(b *sim.Board) {
		ss := b.Signs()
		if ss.CountColors(claimTag) < ss.CountColors(matchTag) {
			b.Write(claimTag)
			matched = true
		}
	})
	if err != nil {
		return false, err
	}
	return matched, nil
}

// runNodeReducePhase executes one NODE-REDUCE phase for this agent (a
// member of D; others are unaffected — the consumed class is a node class).
func runNodeReducePhase(st *agentState, phaseIdx int, plan *phasePlan) error {
	k := st.k
	if st.passive || !st.inD {
		return nil
	}
	k.a.SetPhase(telemetry.PhaseNodeReduce)
	sp := phaseSpan(k.a, "node-reduce", phaseIdx)
	defer sp.End()
	selected := make(map[int]bool)
	for _, v := range k.classNodes(plan.classIdx) {
		selected[v] = true
	}
	takenTag := tagTaken(phaseIdx)
	for r, round := range plan.rounds {
		// Synchronize the α participants of this round.
		if err := k.accessHome(func(b *sim.Board) { b.Write(tagRole(phaseIdx, r, true)) }); err != nil {
			return err
		}
		if err := k.writeEverywhere(tagSync(phaseIdx, r)); err != nil {
			return err
		}
		sync := tagSync(phaseIdx, r)
		if _, err := k.waitHome(func(ss sim.Signs) bool {
			return ss.CountColors(sync) >= round.alpha
		}); err != nil {
			return err
		}
		// Acquisition tour.
		acqTag := tagAcq(phaseIdx, r)
		acquired := false
		myTaken := 0
		for _, v := range k.tour {
			if err := k.moveTo(v); err != nil {
				return err
			}
			if !selected[v] {
				continue
			}
			if err := k.a.Access(func(b *sim.Board) {
				ss := b.Signs()
				if ss.Has(takenTag) {
					// Permanently deselected in an earlier case-2 round.
					selected[v] = false
					return
				}
				if round.case1 {
					if !acquired && ss.CountColors(acqTag) < round.q {
						b.Write(acqTag)
						acquired = true
					}
				} else {
					if myTaken < round.q {
						b.Write(takenTag)
						selected[v] = false
						myTaken++
					}
				}
			}); err != nil {
				return err
			}
		}
		if err := k.moveTo(k.m.Home); err != nil {
			return err
		}
		if round.case1 {
			if acquired {
				return st.goPassive()
			}
		} else if myTaken != round.q {
			return fmt.Errorf("elect: node-reduce acquired %d of %d nodes", myTaken, round.q)
		}
	}
	return nil
}
