// Package serve wraps the repository's library planes — centralized
// analysis, single elections, multi-seed campaigns — behind a long-running
// HTTP/JSON daemon (cmd/electd). The CLIs stay; this is the
// election-as-a-service surface the ROADMAP's production track calls for.
//
// Endpoints:
//
//	POST /v1/analyze        solvability verdict (gcd, class structure,
//	                        Cayley recognition, Theorem 2.1) of an instance
//	POST /v1/elect          one simulated election run; returns the run
//	                        manifest plus a replay-artifact handle
//	POST /v1/campaign       a full campaign, streamed as chunked JSONL
//	                        (one line per run, trailing summary)
//	GET  /v1/artifacts/{id} replay bundle of a previous /v1/elect run
//	GET  /healthz           liveness + drain state
//	GET  /debug/metrics     the telemetry registry as JSON
//	GET  /debug/metrics/stream  the registry as a server-sent-event
//	                        stream (?interval_ms cadence, ?n to bound)
//	GET  /debug/live        single-file live operator dashboard
//	GET  /debug/requests    recent slow/failed requests from the trace ring
//
// Production concerns are the point of the package:
//
//   - The analysis cache is shared across every request and keyed by the
//     instance's iso-canonical form, with singleflight coalescing — N
//     concurrent clients asking about isomorphic instances pay for one
//     elect.Analyze — and an LRU byte bound (internal/analysiscache).
//   - A bounded in-daemon worker pool backpressures heavy endpoints:
//     requests wait at most QueueTimeout for a slot, then get 503 with
//     Retry-After rather than piling goroutines up.
//   - Every request runs under a deadline; campaign streams additionally
//     abort mid-run when the client disconnects, via the context plumbing
//     through campaign.ExecuteRunsContext and sim.Config.Context.
//   - Graceful drain: StartDrain flips /healthz to 503 (load balancers
//     stop routing), in-flight requests finish, and CancelRuns aborts
//     whatever is still running when the drain budget expires.
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/telemetry"
)

// Config tunes the daemon. The zero value is production-usable.
type Config struct {
	// Workers bounds the pool of heavy-request slots (default GOMAXPROCS).
	// One analyze or elect request holds one slot; a campaign request holds
	// one slot and parallelizes its runs internally up to the same bound.
	Workers int
	// QueueTimeout is how long a request waits for a pool slot before the
	// server sheds it with 503 (default 2s).
	QueueTimeout time.Duration
	// RequestTimeout is the per-request deadline of /v1/analyze and
	// /v1/elect (default 30s).
	RequestTimeout time.Duration
	// CampaignTimeout is the per-request deadline of /v1/campaign
	// (default 5m — campaigns are long by design).
	CampaignTimeout time.Duration
	// RunTimeout is the per-run simulation watchdog (default 30s).
	RunTimeout time.Duration
	// MaxCampaignRuns bounds the work list one campaign request may expand
	// to (default 100000).
	MaxCampaignRuns int
	// CacheMaxBytes bounds the shared analysis cache
	// (default analysiscache.DefaultMaxBytes).
	CacheMaxBytes int64
	// MaxArtifacts bounds the replay-artifact store (default 1024; the
	// oldest bundle is dropped past it).
	MaxArtifacts int
	// Metrics is the registry mounted at /debug/metrics (default: fresh).
	Metrics *telemetry.Registry
	// Analyze overrides the analysis function (tests inject counting or
	// blocking stand-ins; nil = the real elect.Analyze).
	Analyze analysiscache.AnalyzeFunc
	// SlowRequest is the duration past which a successful request is
	// recorded in the /debug/requests trace ring (default 500ms).
	SlowRequest time.Duration
	// TraceRing bounds the /debug/requests ring of recent slow/failed
	// request traces (default 256).
	TraceRing int
	// AccessLog, when set, receives one structured line per request with
	// the request ID, status, outcome and latency (nil = no access log).
	AccessLog *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CampaignTimeout <= 0 {
		c.CampaignTimeout = 5 * time.Minute
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 30 * time.Second
	}
	if c.MaxCampaignRuns <= 0 {
		c.MaxCampaignRuns = 100_000
	}
	if c.MaxArtifacts <= 0 {
		c.MaxArtifacts = 1024
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.SlowRequest <= 0 {
		c.SlowRequest = DefaultSlowRequest
	}
	if c.TraceRing <= 0 {
		c.TraceRing = DefaultTraceRing
	}
	return c
}

// Server is the election daemon: share-everything request handlers over
// one analysis cache, one metrics registry, one worker pool. Safe for
// concurrent use; create with New.
type Server struct {
	cfg       Config
	cache     *analysiscache.Cache
	metrics   *telemetry.Registry
	pool      chan struct{}
	artifacts *artifactStore
	traces    *traceRing
	mux       *http.ServeMux
	started   time.Time

	// baseCtx parents every run the server starts; CancelRuns cancels it
	// (the drain deadline's hammer). draining flips /healthz to 503.
	baseCtx    context.Context
	cancelRuns context.CancelFunc
	draining   atomic.Bool
	inflight   atomic.Int64
}

// New builds a Server from cfg (zero value ok).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		cache: analysiscache.New(analysiscache.Config{
			Analyze:  cfg.Analyze,
			Key:      analysiscache.CanonicalKey,
			MaxBytes: cfg.CacheMaxBytes,
		}),
		metrics:    cfg.Metrics,
		pool:       make(chan struct{}, cfg.Workers),
		artifacts:  newArtifactStore(cfg.MaxArtifacts),
		traces:     newTraceRing(cfg.TraceRing),
		mux:        http.NewServeMux(),
		started:    time.Now(),
		baseCtx:    ctx,
		cancelRuns: cancel,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/elect", s.handleElect)
	s.mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	s.mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	s.mux.Handle("GET /debug/metrics", s.metrics)
	s.mux.Handle("GET /debug/metrics/stream", s.metrics.StreamHandler())
	s.mux.Handle("GET /debug/live", telemetry.DashboardHandler())
	s.mux.HandleFunc("GET /debug/requests", s.handleRequests)
	return s
}

// ServeHTTP makes the Server an http.Handler. Every request runs inside
// a span: it gets a request ID (the client's X-Request-ID when sane,
// generated otherwise) that is echoed in the response header and carried
// through the context into campaign/elect runs, and on completion the
// span is classified, counted, retained in the /debug/requests ring when
// noteworthy, and access-logged.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	s.metrics.Gauge("serve_inflight").Set(s.inflight.Load())
	sp := &span{id: requestID(r), start: time.Now()}
	ctx := telemetry.WithRequestID(r.Context(), sp.id)
	ctx = context.WithValue(ctx, spanKey{}, sp)
	r = r.WithContext(ctx)
	w.Header().Set("X-Request-ID", sp.id)
	rec := &statusRecorder{ResponseWriter: w}
	s.mux.ServeHTTP(rec, r)
	dur := time.Since(sp.start)
	s.metrics.Histogram("serve_request_ms", latencyBuckets).
		Observe(int64(dur / time.Millisecond))
	s.metrics.Counter("serve_requests_total").Inc()
	s.finishTrace(r, sp, rec, dur)
	s.inflight.Add(-1)
	s.metrics.Gauge("serve_inflight").Set(s.inflight.Load())
}

// latencyBuckets shapes serve_request_ms: 1ms..4s exponential.
var latencyBuckets = telemetry.ExpBuckets(1, 2, 12)

// Cache exposes the shared analysis cache (cmd/electd wires campaign-side
// consumers through it; tests assert on its stats).
func (s *Server) Cache() *analysiscache.Cache { return s.cache }

// Metrics exposes the registry mounted at /debug/metrics.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// StartDrain flips the server into draining mode: /healthz starts
// answering 503 so load balancers stop routing, while in-flight requests
// keep running. Call before http.Server.Shutdown.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.metrics.Counter("serve_drains_total").Inc()
}

// CancelRuns aborts every in-flight simulation and campaign the server
// started — the hammer for a drain deadline that in-flight work outlived.
// The server cannot start new runs afterwards.
func (s *Server) CancelRuns() { s.cancelRuns() }

// runCtx derives a request's execution context: bounded by the deadline
// and additionally canceled when the server's run context dies (drain
// hammer). The request's own context is the parent, so a dropped client
// connection aborts the work too.
func (s *Server) runCtx(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	if sp := spanFrom(r.Context()); sp != nil {
		sp.deadlineMS = float64(d) / float64(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// acquire takes a worker-pool slot, waiting at most QueueTimeout, and
// records the wait in the request span.
func (s *Server) acquire(ctx context.Context) bool {
	start := time.Now()
	defer func() {
		if sp := spanFrom(ctx); sp != nil {
			sp.queueWaitMS = float64(time.Since(start)) / float64(time.Millisecond)
		}
	}()
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.pool <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	case <-timer.C:
		return false
	}
}

func (s *Server) release() { <-s.pool }

// publishCacheStats mirrors the cache counters into gauges so the
// /debug/metrics snapshot (and the load generator reading it) sees hit,
// coalesce and eviction rates without a separate endpoint.
func (s *Server) publishCacheStats() {
	st := s.cache.Stats()
	s.metrics.Gauge("serve_cache_hits").Set(st.Hits)
	s.metrics.Gauge("serve_cache_coalesced").Set(st.Coalesced)
	s.metrics.Gauge("serve_cache_misses").Set(st.Misses)
	s.metrics.Gauge("serve_cache_evictions").Set(st.Evictions)
	s.metrics.Gauge("serve_cache_entries").Set(int64(st.Entries))
	s.metrics.Gauge("serve_cache_size_bytes").Set(st.SizeBytes)
}
