package iso

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func TestSearchStats(t *testing.T) {
	before := Stats()
	// Petersen is vertex-transitive: its search discovers automorphisms,
	// so orbit pruning must fire, and the tree has many nodes.
	c := FromGraph(graph.Petersen(), nil)
	Canonical(c)
	d := Stats().Sub(before)
	if d.Searches != 1 {
		t.Errorf("searches delta = %d, want 1", d.Searches)
	}
	if d.Nodes <= 0 || d.Leaves <= 0 {
		t.Errorf("node/leaf deltas not positive: %+v", d)
	}
	if d.Nodes < d.Leaves {
		t.Errorf("visited fewer nodes than leaves: %+v", d)
	}
	if d.OrbitPrunes <= 0 {
		t.Errorf("Petersen search should orbit-prune, got %+v", d)
	}
	if d.BudgetExhaustions != 0 {
		t.Errorf("unbudgeted search exhausted a budget: %+v", d)
	}

	// A budgeted search that fails must count an exhaustion.
	before = Stats()
	if _, err := CanonicalBudget(c, 1); !errors.Is(err, ErrLeafBudget) {
		t.Fatalf("budget 1 on Petersen: err = %v, want ErrLeafBudget", err)
	}
	d = Stats().Sub(before)
	if d.BudgetExhaustions != 1 {
		t.Errorf("budget exhaustion delta = %d, want 1", d.BudgetExhaustions)
	}

	// The frozen reference engine must not count.
	before = Stats()
	SetReferenceEngine(true)
	Canonical(c)
	SetReferenceEngine(false)
	if d := Stats().Sub(before); d != (SearchStats{}) {
		t.Errorf("reference engine moved the counters: %+v", d)
	}
}

func TestSearchStatsSub(t *testing.T) {
	a := SearchStats{Searches: 5, Nodes: 100, Leaves: 20, OrbitPrunes: 3, PrefixPrunes: 7, BudgetExhaustions: 1}
	b := SearchStats{Searches: 2, Nodes: 40, Leaves: 5, OrbitPrunes: 1, PrefixPrunes: 2, BudgetExhaustions: 1}
	want := SearchStats{Searches: 3, Nodes: 60, Leaves: 15, OrbitPrunes: 2, PrefixPrunes: 5}
	if got := a.Sub(b); got != want {
		t.Errorf("Sub = %+v, want %+v", got, want)
	}
}
