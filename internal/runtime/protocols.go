package runtime

import (
	"fmt"
	"strconv"
	"strings"
)

func init() {
	Register("dfs-election", func(args string) (Protocol, error) {
		if args != "" {
			return nil, fmt.Errorf("runtime: dfs-election takes no args, got %q", args)
		}
		return DFSElection(), nil
	})
	Register("walker", func(args string) (Protocol, error) {
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("runtime: walker wants \"label,steps\", got %q", args)
		}
		label, err1 := strconv.Atoi(parts[0])
		steps, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("runtime: bad walker args %q", args)
		}
		return Walker(label, steps), nil
	})
}

// DFSElection returns the quantitative whiteboard-DFS election — the
// repository's one implementation of the election that used to be written
// twice (once as a sim protocol, once as a msgnet machine). Each agent
// traverses the whole network depth-first, leaving breadcrumbs on the
// whiteboards ("v:<id>" visited marks and "t:<id>:<label>" tried-port
// marks), counting the "home" pre-marks it passes to discover r (the
// number of agents) along the way; back home it waits until all r agents
// have stamped its home-base and elects the maximum identity.
//
// Every decision depends only on the agent's own marks and the node's
// labels, so its trajectory — and therefore its move count — is
// schedule-independent: all four backends produce the identical per-agent
// move vector on a fault-free run, which is what makes the protocol the
// cross-backend conformance probe. The memory encoding is
// "<mode>|<p1>,<p2>,...|<homes>" where mode F marks a forward move, B a
// bounce or backtrack, W the home wait; the list is the stack of port
// labels leading back home; homes is the running home-mark count.
func DFSElection() Protocol { return dfsElection{} }

type dfsElection struct{}

// Spec returns the registry identity "dfs-election".
func (dfsElection) Spec() string { return "dfs-election" }

// Init returns the empty initial memory (the first activation at the
// home-base sees mode "").
func (dfsElection) Init(int) string { return "" }

// Step executes one DFS activation.
func (dfsElection) Step(memory string, v View) (string, Effect) {
	mode, stack, homes := decodeDFS(memory)
	me := "v:" + strconv.Itoa(v.ID)
	triedPrefix := "t:" + strconv.Itoa(v.ID) + ":"

	if mode == "W" {
		return memory, waitEffect(v.Board, v.ID, homes)
	}

	var writes []string
	if mode == "F" || mode == "" {
		visited := false
		for _, m := range v.Board {
			if m == me {
				visited = true
				break
			}
		}
		if visited {
			// Forward move into an already-visited node: bounce straight
			// back through the arrival port.
			return encodeDFS("B", stack, homes), Effect{Move: v.Entry}
		}
		// First visit: count this node's residents toward r. "home" marks
		// are engine pre-marks present before any step runs (one per
		// resident, with multiplicity under shared homes), so the count is
		// schedule-independent.
		for _, m := range v.Board {
			if m == TagHome {
				homes++
			}
		}
		writes = append(writes, me)
		if v.Entry >= 0 {
			stack = append(stack, v.Entry)
			// The way home is for backtracking, not forward exploration.
			writes = append(writes, triedPrefix+strconv.Itoa(v.Entry))
		}
	}
	// Explore: smallest untried port label, else backtrack.
	tried := map[int]bool{}
	for _, m := range v.Board {
		if strings.HasPrefix(m, triedPrefix) {
			if k, err := strconv.Atoi(strings.TrimPrefix(m, triedPrefix)); err == nil {
				tried[k] = true
			}
		}
	}
	for _, m := range writes {
		if strings.HasPrefix(m, triedPrefix) {
			if k, err := strconv.Atoi(strings.TrimPrefix(m, triedPrefix)); err == nil {
				tried[k] = true
			}
		}
	}
	next := -1
	for _, lab := range v.Labels {
		if !tried[lab] && (next == -1 || lab < next) {
			next = lab
		}
	}
	if next >= 0 {
		writes = append(writes, triedPrefix+strconv.Itoa(next))
		return encodeDFS("F", stack, homes), Effect{Write: writes, Move: next}
	}
	if len(stack) > 0 {
		back := stack[len(stack)-1]
		return encodeDFS("B", stack[:len(stack)-1], homes), Effect{Write: writes, Move: back}
	}
	// Back home with the traversal complete: r is the accumulated home
	// count. Decide now if everyone has stamped already, otherwise park
	// (counting our own writes — parking with a satisfied predicate would
	// never be re-stepped).
	eff := waitEffect(append(append([]string{}, v.Board...), writes...), v.ID, homes)
	eff.Write = writes
	return encodeDFS("W", nil, homes), eff
}

// waitEffect is the DFSElection home wait: park until r distinct visited
// stamps are on the board, then crown the maximum identity.
func waitEffect(board []string, id, r int) Effect {
	best, count := -1, 0
	for _, m := range board {
		if strings.HasPrefix(m, "v:") {
			if k, err := strconv.Atoi(strings.TrimPrefix(m, "v:")); err == nil {
				count++
				if k > best {
					best = k
				}
			}
		}
	}
	if count < r {
		return Effect{Move: -1}
	}
	if best == id {
		return Effect{Halt: HaltLeader, Move: -1, LeaderMark: "v:" + strconv.Itoa(id)}
	}
	return Effect{Halt: HaltDefeated, Move: -1, LeaderMark: "v:" + strconv.Itoa(best)}
}

func decodeDFS(memory string) (mode string, stack []int, homes int) {
	if memory == "" {
		return "", nil, 0
	}
	parts := strings.SplitN(memory, "|", 3)
	mode = parts[0]
	if len(parts) > 1 && parts[1] != "" {
		for _, tok := range strings.Split(parts[1], ",") {
			if k, err := strconv.Atoi(tok); err == nil {
				stack = append(stack, k)
			}
		}
	}
	if len(parts) > 2 {
		homes, _ = strconv.Atoi(parts[2])
	}
	return mode, stack, homes
}

func encodeDFS(mode string, stack []int, homes int) string {
	toks := make([]string, len(stack))
	for i, k := range stack {
		toks[i] = strconv.Itoa(k)
	}
	return mode + "|" + strings.Join(toks, ",") + "|" + strconv.Itoa(homes)
}

// Walker returns a protocol that walks steps hops through the port with
// the given label and halts "done" — the minimal protocol for backend
// plumbing tests (ported from the msgnet machine of the same name).
func Walker(label, steps int) Protocol { return walker{label: label, steps: steps} }

type walker struct{ label, steps int }

// Spec returns "walker:<label>,<steps>".
func (w walker) Spec() string { return fmt.Sprintf("walker:%d,%d", w.label, w.steps) }

// Init seeds the memory with the remaining hop count.
func (w walker) Init(int) string { return strconv.Itoa(w.steps) }

// Step walks one hop or halts "done" when the budget is spent.
func (w walker) Step(memory string, _ View) (string, Effect) {
	left, err := strconv.Atoi(memory)
	if err != nil {
		return memory, Effect{Halt: "error", Move: -1}
	}
	if left == 0 {
		return memory, Effect{Halt: "done", Move: -1}
	}
	return strconv.Itoa(left - 1), Effect{Move: w.label}
}
