package zoo

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// Instance is one named (graph, homes) input of the feasibility matrix.
// cmd/zoo builds instances from "family:size:h0,h1,..." specs (the parsing
// lives there to keep this package independent of the campaign layer,
// which imports zoo for its protocol oracle).
type Instance struct {
	// Name identifies the instance in rows and reports
	// ("family:size:h0,h1,...").
	Name string
	// G is the instance graph.
	G *graph.Graph
	// Homes lists the agents' home-bases.
	Homes []int
}

// DefaultCorpus is the instance list cmd/zoo sweeps by default: solvable
// and unsolvable inputs across paths, cycles, stars, a wheel, a grid, a
// hypercube and a torus, chosen so that on every instance each election
// protocol's verdict coincides with the source paper's gcd oracle (the
// golden-file test pins exactly this agreement). Instances whose trivial
// port labeling is rigid but whose unlabeled form is symmetric (an
// antipodal cycle, the Petersen graph with adjacent homes) are deliberately
// absent: there the labeled protocols elect while the qualitative oracle
// says unsolvable — the paper's comparability dividend, demonstrated as a
// deliberate failing run in EXPERIMENTS.md rather than pinned here.
const DefaultCorpus = "path:2:0,1;path:4:0,1;path:6:0,3,5;cycle:5:0,2;cycle:6:0,2,3;star:4:1,2;star:5:0,1;wheel:5:0,2;grid:3:0,4,8;hypercube:3:0,5,6;torus:3:0,4"

// Row is one (instance, protocol) cell of the feasibility-and-cost matrix.
type Row struct {
	// Instance and Protocol name the cell.
	Instance string `json:"instance"`
	Protocol string `json:"protocol"`
	// Mode is the protocol's agreement contract ("strong", "weak",
	// "selection").
	Mode string `json:"mode"`
	// Nodes, Edges and Agents describe the instance.
	Nodes  int `json:"nodes"`
	Edges  int `json:"edges"`
	Agents int `json:"agents"`
	// GCD is gcd(|C_1|,…,|C_k|) and GCDVerdict the source paper's oracle.
	GCD        int    `json:"gcd"`
	GCDVerdict string `json:"gcd_verdict"`
	// Predicted is the protocol's own central-oracle verdict; Applicable
	// is false when the instance is outside the protocol's model (zoo-uso
	// on a non-dismantlable graph); Fallback marks selection's
	// quantitative tie-break.
	Predicted  string `json:"predicted"`
	Applicable bool   `json:"applicable"`
	Fallback   bool   `json:"fallback,omitempty"`
	// Verdict, Winner, Moves and Steps are the observed run (first
	// backend's result; the others must match it exactly).
	Verdict string `json:"verdict"`
	Winner  int    `json:"winner"`
	Moves   int64  `json:"moves"`
	Steps   int    `json:"steps"`
	// Backends lists the backends run; BackendAgree reports exact
	// outcome-vector and per-agent move equality across them.
	Backends     []string `json:"backends"`
	BackendAgree bool     `json:"backend_agree"`
	// Agree reports the run matched the protocol's central prediction
	// (verdict, unique leader, winner identity); AgreeGCD compares the
	// observed verdict with the gcd oracle (the models genuinely differ,
	// so this column is where the cross-model story shows).
	Agree    bool `json:"agree"`
	AgreeGCD bool `json:"agree_gcd"`
}

// BuildMatrix runs every (instance, protocol) cell on every named backend
// and assembles the cross-protocol feasibility-and-cost matrix. The error
// is non-nil only for harness failures (unknown spec or backend, a backend
// refusing the instance); disagreements are reported in the rows, not as
// errors, so the caller decides what gates.
func BuildMatrix(insts []Instance, specs []string, backendNames []string, seed int64) ([]Row, error) {
	backends := make([]runtime.Runtime, len(backendNames))
	for i, name := range backendNames {
		rt, err := runtime.New(name)
		if err != nil {
			return nil, err
		}
		if nw, ok := rt.(*runtime.Networked); ok {
			nw.Workers = 2
		}
		backends[i] = rt
	}
	var rows []Row
	for _, inst := range insts {
		an, err := Analyze(inst.G, inst.Homes)
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", inst.Name, err)
		}
		for _, spec := range specs {
			p, err := runtime.FromSpec(spec)
			if err != nil {
				return nil, err
			}
			pred, err := Predict(spec, inst.G, nil, inst.Homes)
			if err != nil {
				return nil, err
			}
			row := Row{
				Instance:   inst.Name,
				Protocol:   spec,
				Mode:       modeName(pred.Mode),
				Nodes:      inst.G.N(),
				Edges:      inst.G.M(),
				Agents:     len(inst.Homes),
				GCD:        an.GCD,
				GCDVerdict: GCDVerdict(an),
				Predicted:  predictedVerdict(pred),
				Applicable: pred.Applicable,
				Fallback:   pred.Fallback,
				Backends:   backendNames,
			}
			cfg := runtime.Config{Graph: inst.G, Homes: inst.Homes, Seed: seed}
			var base *runtime.Result
			row.BackendAgree = true
			for _, rt := range backends {
				res, err := rt.Run(cfg, p)
				if err != nil {
					return nil, fmt.Errorf("%s/%s on %s: %w", inst.Name, spec, rt.Name(), err)
				}
				if base == nil {
					base = res
					continue
				}
				for i := range base.Outcomes {
					if base.Outcomes[i] != res.Outcomes[i] || base.Moves[i] != res.Moves[i] {
						row.BackendAgree = false
					}
				}
			}
			row.Verdict = Verdict(base)
			row.Winner = base.Leader()
			row.Moves = base.TotalMoves()
			row.Steps = base.Steps
			row.Agree = len(Check(base, pred)) == 0
			row.AgreeGCD = row.Verdict == row.GCDVerdict
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// predictedVerdict renders a prediction as a verdict string.
func predictedVerdict(p Prediction) string {
	if p.Solvable {
		return "leader"
	}
	return "unsolvable"
}

// modeName renders a VerdictMode for display ("strong" for the default).
func modeName(m elect.VerdictMode) string {
	if m == elect.ModeStrong {
		return "strong"
	}
	return string(m)
}

// gcdExempt reports whether a row's model legitimately outruns the
// qualitative gcd oracle: selection and the quantitative dfs-election are
// universally solvable in the quantitative model — the Table 1 universality
// rows — so their verdicts are compared only against their own oracle.
func gcdExempt(row Row) bool {
	return row.Mode == "selection" || row.Protocol == "dfs-election"
}

// Disagreements filters the rows that violate the matrix's contract: a
// backend divergence, a run contradicting its protocol's central
// prediction, or — for the non-exempt election modes on instances inside
// the protocol's model — a verdict contradicting the source paper's gcd
// oracle (see gcdExempt for the universally-solvable exemptions).
func Disagreements(rows []Row) []Row {
	var bad []Row
	for _, row := range rows {
		switch {
		case !row.BackendAgree, !row.Agree:
			bad = append(bad, row)
		case !gcdExempt(row) && row.Applicable && !row.AgreeGCD:
			bad = append(bad, row)
		}
	}
	return bad
}

// WriteTable renders the matrix as an aligned human-facing table, one row
// per (instance, protocol) cell, grouped by instance.
func WriteTable(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "instance\tprotocol\tmode\tgcd\tgcd-verdict\tpredicted\tverdict\twinner\tmoves\tsteps\tbackends\tagree")
	for _, row := range rows {
		agree := "yes"
		switch {
		case !row.BackendAgree:
			agree = "BACKEND-DIVERGENCE"
		case !row.Agree:
			agree = "ORACLE-MISMATCH"
		case !gcdExempt(row) && row.Applicable && !row.AgreeGCD:
			agree = "GCD-MISMATCH"
		case !row.Applicable:
			agree = "yes (outside model)"
		}
		winner := "-"
		if row.Winner >= 0 {
			winner = strconv.Itoa(row.Winner)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%s\n",
			row.Instance, row.Protocol, row.Mode, row.GCD, row.GCDVerdict,
			row.Predicted, row.Verdict, winner, row.Moves, row.Steps,
			len(row.Backends), agree)
	}
	return tw.Flush()
}

// Summarize aggregates the matrix into per-protocol totals: instances
// solved, verdict/gcd agreement counts, and move/step totals.
func Summarize(rows []Row) []Summary {
	byProto := map[string]*Summary{}
	var order []string
	for _, row := range rows {
		s, ok := byProto[row.Protocol]
		if !ok {
			s = &Summary{Protocol: row.Protocol, Mode: row.Mode}
			byProto[row.Protocol] = s
			order = append(order, row.Protocol)
		}
		s.Instances++
		if row.Verdict == "leader" {
			s.Solved++
		}
		if row.Agree && row.BackendAgree {
			s.Agreements++
		}
		if row.AgreeGCD {
			s.GCDAgreements++
		}
		if !row.Applicable {
			s.OutsideModel++
		}
		s.Moves += row.Moves
		s.Steps += row.Steps
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]Summary, 0, len(order))
	for _, name := range order {
		out = append(out, *byProto[name])
	}
	return out
}

// Summary is one protocol's aggregate line of the matrix.
type Summary struct {
	// Protocol and Mode identify the protocol.
	Protocol string `json:"protocol"`
	Mode     string `json:"mode"`
	// Instances counts matrix cells; Solved those ending in a leader;
	// Agreements those matching the central prediction on every backend;
	// GCDAgreements those matching the source paper's oracle;
	// OutsideModel those outside the protocol's model.
	Instances     int `json:"instances"`
	Solved        int `json:"solved"`
	Agreements    int `json:"agreements"`
	GCDAgreements int `json:"gcd_agreements"`
	OutsideModel  int `json:"outside_model"`
	// Moves and Steps are cost totals across the protocol's cells.
	Moves int64 `json:"moves"`
	Steps int   `json:"steps"`
}
