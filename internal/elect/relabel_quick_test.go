package elect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sim"
)

// relabelInstance is one input of the relabeling-invariance property: the
// pool mixes electable (gcd 1) and unsolvable (gcd > 1) instances so both
// verdicts are twisted.
type relabelInstance struct {
	name  string
	g     *graph.Graph
	homes []int
}

func relabelPool() []relabelInstance {
	return []relabelInstance{
		{"cycle5", graph.Cycle(5), []int{0, 2}},
		{"cycle6-antipodal", graph.Cycle(6), []int{0, 3}}, // gcd 2: unsolvable
		{"cycle8", graph.Cycle(8), []int{0, 3, 5}},
		{"star4", graph.Star(4), []int{1, 2}},
		{"hypercube3", graph.Hypercube(3), []int{0, 5, 6}},
		{"petersen", graph.Petersen(), []int{0, 1}},
		{"complete4-antipodal", graph.Complete(4), []int{0, 1, 2, 3}}, // gcd 4: unsolvable
		{"grid23", graph.Grid(2, 3), []int{0, 5}},
	}
}

// relabelRun captures everything a relabeling may not change: the verdict
// and the automorphism class of the elected leader's home-base. (The leader
// *agent* may legitimately change — symbol presentation steers which member
// of the winning class gets there first — but the class is pinned by the
// reduction arithmetic.)
type relabelRun struct {
	verdict     bool // exactly one leader, everyone else defeated
	leaderClass int  // class index of the leader's home, -1 without a leader
	err         error
}

func runRelabeled(inst relabelInstance, seed, colorSeed, symbolSeed int64) relabelRun {
	res, err := sim.Run(sim.Config{
		Graph: inst.g, Homes: inst.homes, Seed: seed, WakeAll: true,
		ColorSeed: colorSeed, SymbolSeed: symbolSeed,
	}, Elect(Options{}))
	if err != nil {
		return relabelRun{err: err}
	}
	out := relabelRun{verdict: res.AgreedLeader(), leaderClass: -1}
	classes := order.Classes(inst.g, BlackColors(inst.g.N(), inst.homes))
	nodeClass := make([]int, inst.g.N())
	for ci, nodes := range classes {
		for _, v := range nodes {
			nodeClass[v] = ci
		}
	}
	for i, o := range res.Outcomes {
		if o.Role == sim.RoleLeader {
			out.leaderClass = nodeClass[inst.homes[i]]
		}
	}
	return out
}

// shrinkRelabel reduces a failing relabeling to a minimal one: first it
// drops each seam (color, symbol) to zero to isolate the responsible one,
// then walks the surviving seam down to the smallest seed in 1..32 that
// still diverges from the baseline. The returned pair reproduces the
// failure directly in sim.Config.
func shrinkRelabel(inst relabelInstance, seed int64, base relabelRun, colorSeed, symbolSeed int64) (int64, int64) {
	diverges := func(c, s int64) bool {
		got := runRelabeled(inst, seed, c, s)
		return got.err != nil || got.verdict != base.verdict || got.leaderClass != base.leaderClass
	}
	if colorSeed != 0 && diverges(0, symbolSeed) {
		colorSeed = 0
	}
	if symbolSeed != 0 && diverges(colorSeed, 0) {
		symbolSeed = 0
	}
	for small := int64(1); small <= 32; small++ {
		if colorSeed > 32 && diverges(small, symbolSeed) {
			colorSeed = small
		}
		if symbolSeed > 32 && diverges(colorSeed, small) {
			symbolSeed = small
		}
	}
	return colorSeed, symbolSeed
}

// TestRelabelingInvariance is the property test of the paper's opacity
// premise: colors and port symbols are pure names, so re-drawing the color
// palette and re-shuffling every symbol presentation (the ColorSeed /
// SymbolSeed seams in sim.Config, which leave scheduling untouched) must
// not change the verdict or the automorphism class that wins. A failure is
// shrunk to a minimal relabeling before reporting.
func TestRelabelingInvariance(t *testing.T) {
	pool := relabelPool()
	f := func(propSeed int64) bool {
		rng := rand.New(rand.NewSource(propSeed))
		inst := pool[rng.Intn(len(pool))]
		seed := 1 + rng.Int63n(1_000)
		colorSeed := 1 + rng.Int63n(1<<30)
		symbolSeed := 1 + rng.Int63n(1<<30)

		base := runRelabeled(inst, seed, 0, 0)
		if base.err != nil {
			t.Errorf("%s seed %d: baseline run failed: %v", inst.name, seed, base.err)
			return false
		}
		got := runRelabeled(inst, seed, colorSeed, symbolSeed)
		if got.err == nil && got.verdict == base.verdict && got.leaderClass == base.leaderClass {
			return true
		}
		minC, minS := shrinkRelabel(inst, seed, base, colorSeed, symbolSeed)
		t.Errorf("%s seed %d: verdict/class changed under relabeling — minimal relabeling ColorSeed=%d SymbolSeed=%d (baseline verdict=%v class=%d, relabeled verdict=%v class=%d err=%v)",
			inst.name, seed, minC, minS, base.verdict, base.leaderClass, got.verdict, got.leaderClass, got.err)
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRelabelingShrinker feeds the shrinker a fabricated divergence (a
// baseline that no relabeling can reproduce) and checks it reduces both
// seams into the small-seed window — the reporter must print a minimal
// relabeling, not the random 30-bit pair the property happened to draw.
func TestRelabelingShrinker(t *testing.T) {
	inst := relabelPool()[0]
	impossible := relabelRun{verdict: false, leaderClass: -99}
	c, s := shrinkRelabel(inst, 7, impossible, 1<<29+12345, 1<<29+54321)
	if c > 32 || s > 32 {
		t.Fatalf("shrinker left a non-minimal relabeling: ColorSeed=%d SymbolSeed=%d", c, s)
	}
}
