package elect

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/order"
	"repro/internal/sim"
)

func runShared(t *testing.T, g *graph.Graph, homes []int, seed int64, p sim.Protocol) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Graph: g, Homes: homes, Seed: seed, WakeAll: false,
		MaxDelay:         100 * time.Microsecond,
		Timeout:          60 * time.Second,
		AllowSharedHomes: true,
	}, p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

// TestSharedHomesSuite exercises the Section 1.2 extension: several agents
// per starting node. The expected solvability is the weighted-class gcd,
// cross-validated against the exact Theorem 2.1 oracle (weights as node
// colors) on every instance.
func TestSharedHomesSuite(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		homes   []int
		succeed bool
	}{
		// Two agents on one node of K2: the local race decides — solvable.
		{"K2-colocated", graph.Path(2), []int{0, 0}, true},
		// Two agents co-located on a cycle: the weighted class {0} is a
		// singleton — solvable, unlike the antipodal 1+1 placement.
		{"C5-colocated", graph.Cycle(5), []int{0, 0}, true},
		{"C6-colocated", graph.Cycle(6), []int{0, 0}, true},
		// 2+2 antipodal co-located pairs: the rotation preserves weights —
		// impossible.
		{"C4-2+2", graph.Cycle(4), []int{0, 0, 2, 2}, false},
		{"C6-2+2", graph.Cycle(6), []int{0, 0, 3, 3}, false},
		// 2+1 antipodal: the weight asymmetry breaks the rotation —
		// solvable although the 1+1 support placement is impossible.
		{"C4-2+1", graph.Cycle(4), []int{0, 0, 2}, true},
		{"C6-2+1", graph.Cycle(6), []int{0, 0, 3}, true},
		// Mixed: a pair and two singles on a cycle.
		{"C8-mixed", graph.Cycle(8), []int{0, 0, 2, 5}, true},
		// Q3: co-located pair plus a single at the antipode.
		{"Q3-2+1", graph.Hypercube(3), []int{0, 0, 7}, true},
		// Fully loaded K2 pairs: 2+2 on the two nodes — impossible.
		{"K2-2+2", graph.Path(2), []int{0, 0, 1, 1}, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			// Oracle cross-checks.
			colors := BlackColors(c.g.N(), c.homes)
			o := order.ComputeAndOrder(c.g, colors, order.Direct)
			if (o.GCD() == 1) != c.succeed {
				t.Fatalf("gcd oracle %d disagrees with expectation %v (sizes %v)",
					o.GCD(), c.succeed, o.Sizes())
			}
			w, err := labeling.ExistsSymmetricLabeling(c.g, colors, 0)
			if err != nil {
				t.Fatal(err)
			}
			if (w == nil) != c.succeed {
				t.Fatalf("Theorem 2.1 oracle (symmetric labeling exists=%v) disagrees with expectation %v",
					w != nil, c.succeed)
			}
			for seed := int64(1); seed <= 3; seed++ {
				res := runShared(t, c.g, c.homes, seed, Elect(Options{}))
				if c.succeed && !res.AgreedLeader() {
					t.Fatalf("seed %d: expected leader, got %+v", seed, res.Outcomes)
				}
				if !c.succeed && !res.AllUnsolvable() {
					t.Fatalf("seed %d: expected unsolvable, got %+v", seed, res.Outcomes)
				}
			}
		})
	}
}

// TestSharedHomesMapDraw: the drawn map records weights and all co-located
// colors.
func TestSharedHomesMapDraw(t *testing.T) {
	g := graph.Cycle(5)
	res, err := sim.Run(sim.Config{
		Graph: g, Homes: []int{0, 0, 2}, Seed: 4, WakeAll: true,
		AllowSharedHomes: true,
	}, func(a *sim.Agent) (sim.Outcome, error) {
		m, err := MapDraw(a)
		if err != nil {
			return sim.Outcome{}, err
		}
		if m.R() != 3 {
			return sim.Outcome{}, errFmt("R() = %d, want 3", m.R())
		}
		totalW := 0
		pairNodes := 0
		for v, w := range m.Weight {
			totalW += w
			if w == 2 {
				pairNodes++
				if len(m.HomeColors[v]) != 2 {
					return sim.Outcome{}, errFmt("weight-2 node lists %d colors", len(m.HomeColors[v]))
				}
				if m.HomeColors[v][0].Equal(m.HomeColors[v][1]) {
					return sim.Outcome{}, errFmt("co-located agents share a color")
				}
			}
		}
		if totalW != 3 || pairNodes != 1 {
			return sim.Outcome{}, errFmt("weights wrong: total %d pairs %d", totalW, pairNodes)
		}
		return sim.Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errors {
		if e != nil {
			t.Fatalf("agent %d: %v", i, e)
		}
	}
}

// TestSharedHomesCayley: the Section 4 decision under weights.
func TestSharedHomesCayley(t *testing.T) {
	// C4 with 2+2: the rotation by 2 is a weight-preserving translation.
	res := runShared(t, graph.Cycle(4), []int{0, 0, 2, 2}, 2, CayleyElect(CayleyOptions{}))
	if !res.AllUnsolvable() {
		t.Fatalf("C4 2+2: expected unsolvable, got %+v", res.Outcomes)
	}
	// C4 with 2+1: no weight-preserving translation; the champion of the
	// weight-2 node wins.
	res = runShared(t, graph.Cycle(4), []int{0, 0, 2}, 2, CayleyElect(CayleyOptions{}))
	if !res.AgreedLeader() {
		t.Fatalf("C4 2+1: expected leader, got %+v", res.Outcomes)
	}
}

// TestSharedHomesGather: gathering also works with co-located starts.
func TestSharedHomesGather(t *testing.T) {
	res := runShared(t, graph.Cycle(6), []int{0, 0, 2}, 3, Gather(Options{}))
	if !res.AgreedLeader() {
		t.Fatalf("expected gathered leader, got %+v", res.Outcomes)
	}
}

// TestSharedHomesQuantitative: the baseline is untouched by co-location.
func TestSharedHomesQuantitative(t *testing.T) {
	res, err := sim.Run(sim.Config{
		Graph: graph.Cycle(6), Homes: []int{0, 0, 3, 3}, Seed: 5, WakeAll: false,
		AllowSharedHomes: true, QuantitativeIDs: true,
		Timeout: 60 * time.Second,
	}, QuantitativeElect())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AgreedLeader() {
		t.Fatalf("quantitative with shared homes: %+v", res.Outcomes)
	}
}

func errFmt(format string, args ...any) error {
	return fmt.Errorf("elect: "+format, args...)
}
