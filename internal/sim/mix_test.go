package sim

import "testing"

// oldPresentationSeed is the pre-fix seeding scheme, kept here as the
// regression baseline: xor of prime multiples is far from injective.
func oldPresentationSeed(seedLo int64, agent, node int) int64 {
	return seedLo ^ int64(agent)*7919 ^ int64(node)*104729
}

// TestPresentationSeedCollisionRegression documents the collision that
// motivated the splitmix mixer: under the old scheme the pair
// (agent, node) = (104729, 7919) lands on the same RNG stream as (0, 0) —
// the products cancel under xor — so both presentations shuffled
// identically. The mixer must keep them apart.
func TestPresentationSeedCollisionRegression(t *testing.T) {
	const seedLo = 12345
	if oldPresentationSeed(seedLo, 104729, 7919) != oldPresentationSeed(seedLo, 0, 0) {
		t.Fatal("regression baseline changed: old scheme no longer collides")
	}
	if presentationSeed(seedLo, 104729, 7919) == presentationSeed(seedLo, 0, 0) {
		t.Fatal("splitmix mixer reproduces the old collision")
	}
}

// TestPresentationSeedDistinct sweeps a realistic (agent, node) grid and
// requires all-new distinct seeds, across several engine seeds.
func TestPresentationSeedDistinct(t *testing.T) {
	for _, seedLo := range []int64{0, 1, -7, 1 << 40} {
		seen := make(map[int64][2]int)
		for agent := 0; agent < 64; agent++ {
			for node := 0; node < 512; node++ {
				s := presentationSeed(seedLo, agent, node)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seedLo=%d: (%d,%d) and (%d,%d) share presentation seed %d",
						seedLo, prev[0], prev[1], agent, node, s)
				}
				seen[s] = [2]int{agent, node}
			}
		}
	}
}
