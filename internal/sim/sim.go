// Package sim is the mobile-agent runtime of the reproduction: an
// asynchronous simulator for agents moving on an anonymous port-labeled
// network and communicating through node whiteboards, as defined in
// Section 1.2 of the paper.
//
// Model enforcement. The qualitative model is enforced by the type system:
//
//   - Color is an opaque handle exposing only Equal. Protocol code cannot
//     order two colors; the engine additionally assigns the underlying
//     identities from a seed-shuffled palette, so code that smuggled an
//     ordering out of them would be flushed out by multi-seed tests.
//   - Symbol (a port symbol) is likewise opaque and only comparable for
//     equality; each agent sees the symbols of a node in its own
//     seed-shuffled presentation order, modelling "each agent produces its
//     own encoding of the symbols".
//   - Nodes are anonymous: an agent can observe only its current node's
//     degree, port symbols, entry symbol, and whiteboard.
//
// Concurrency. One goroutine per agent; each whiteboard is a mutex-protected
// sign set with a condition variable so agents can block until a predicate
// over the signs holds ("waiting for the arrival of another agent"). Every
// move and whiteboard access passes a scheduler hook that injects seeded
// random delays — the paper's adversary that makes every action take "a
// finite but otherwise unpredictable amount of time". Moves and accesses are
// counted per agent to validate the O(r·|E|) bound of Theorem 3.1.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Color is an agent color: distinct, but mutually incomparable. The zero
// Color is invalid.
type Color struct {
	id int // 1-based palette index, seed-shuffled; never exposed
}

// Equal is the only operation the qualitative model permits on colors.
func (c Color) Equal(d Color) bool { return c.id == d.id }

// IsZero reports whether c is the invalid zero Color.
func (c Color) IsZero() bool { return c.id == 0 }

// ColorPalette mints n distinct colors for observer-side tooling — checker
// tests fabricating Results, trace analyzers — which legitimately handle
// colors outside a run. Protocol code must never call it: agents only ever
// see the colors the engine dealt, and those stay incomparable.
func ColorPalette(n int) []Color {
	out := make([]Color, n)
	for i := range out {
		out[i] = Color{id: i + 1}
	}
	return out
}

// String renders an arbitrary stable name for diagnostics. The name carries
// no protocol-usable order (it reflects the seed-shuffled internal id).
func (c Color) String() string { return fmt.Sprintf("color#%d", c.id) }

// Symbol is a port symbol at some node: distinct from the other symbols of
// that node, recognizable on revisits, but incomparable. The zero Symbol is
// invalid. Symbols are valid map keys.
type Symbol struct {
	node int
	port int
	ok   bool
}

// IsZero reports whether s is the invalid zero Symbol.
func (s Symbol) IsZero() bool { return !s.ok }

// Sign is a colored sign on a whiteboard: a tag written by an agent of some
// color (Section 1.2: "an agent can write on the whiteboards signs colored
// by its own color").
type Sign struct {
	Color Color
	Tag   string
}

// Signs is a snapshot of a whiteboard's contents.
type Signs []Sign

// Has reports whether any sign carries the tag.
func (ss Signs) Has(tag string) bool {
	for _, s := range ss {
		if s.Tag == tag {
			return true
		}
	}
	return false
}

// HasBy reports whether a sign with the tag was written by the color.
func (ss Signs) HasBy(c Color, tag string) bool {
	for _, s := range ss {
		if s.Tag == tag && s.Color.Equal(c) {
			return true
		}
	}
	return false
}

// CountColors returns the number of distinct colors having written the tag.
func (ss Signs) CountColors(tag string) int {
	return len(ss.Colors(tag))
}

// Colors returns the distinct colors having written the tag (in an
// unspecified order — colors are incomparable).
func (ss Signs) Colors(tag string) []Color {
	var out []Color
	for _, s := range ss {
		if s.Tag != tag {
			continue
		}
		dup := false
		for _, c := range out {
			if c.Equal(s.Color) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s.Color)
		}
	}
	return out
}

// WithPrefix returns the signs whose tag starts with the prefix.
func (ss Signs) WithPrefix(prefix string) Signs {
	var out Signs
	for _, s := range ss {
		if len(s.Tag) >= len(prefix) && s.Tag[:len(prefix)] == prefix {
			out = append(out, s)
		}
	}
	return out
}

// Board is the mutable view of a whiteboard held during an exclusive access
// (the paper's "fair mutual exclusion mechanism"). It must only be used
// inside the Access callback that provided it.
type Board struct {
	wb    *whiteboard
	color Color
	// trace context (nil-safe): set by Agent.Access.
	agent *Agent
	node  int
}

// Signs returns the current signs (a copy safe to retain).
func (b *Board) Signs() Signs {
	out := make(Signs, len(b.wb.signs))
	copy(out, b.wb.signs)
	return out
}

// Write adds the sign (caller's color, tag). Duplicate (color, tag) pairs
// are idempotent. Under fault injection the write may be torn: only a proper
// prefix of the tag lands and the writer is crash-stopped when its access
// ends (so a torn sign is only ever the work of a dead agent).
func (b *Board) Write(tag string) {
	a := b.agent
	if a != nil && a.crashPending {
		return // the writer already died mid-access; nothing more lands
	}
	wtag := tag
	if a != nil && a.eng.faultsOn() {
		if act := a.eng.injectAt(a, FaultWrite, b.node, tag); act.Torn {
			keep := act.Keep
			if keep > len(tag)-1 {
				keep = len(tag) - 1
			}
			if keep < 0 {
				keep = 0
			}
			a.crashPending, a.crashHold = true, act.HoldLock
			a.eng.trace(a.index, EvTorn, b.node, tag[:keep])
			if keep == 0 {
				return // the write was lost entirely
			}
			wtag = tag[:keep]
		}
	}
	for _, s := range b.wb.signs {
		if s.Tag == wtag && s.Color.Equal(b.color) {
			return
		}
	}
	b.wb.signs = append(b.wb.signs, Sign{Color: b.color, Tag: wtag})
	b.wb.dirty = true
	if a != nil {
		a.eng.cfg.Telemetry.CountWrite(a.phase)
		a.eng.trace(a.index, EvWrite, b.node, wtag)
	}
}

// Erase removes the caller's sign with the tag, if present.
func (b *Board) Erase(tag string) {
	if b.agent != nil && b.agent.crashPending {
		return
	}
	for i, s := range b.wb.signs {
		if s.Tag == tag && s.Color.Equal(b.color) {
			b.wb.signs = append(b.wb.signs[:i], b.wb.signs[i+1:]...)
			b.wb.dirty = true
			if b.agent != nil {
				b.agent.eng.cfg.Telemetry.CountErase(b.agent.phase)
				b.agent.eng.trace(b.agent.index, EvErase, b.node, tag)
			}
			return
		}
	}
}

type whiteboard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	signs []Sign
	dirty bool // set by writes, used to broadcast waiters
	// abandoned marks the lock as held by a crashed agent; stallLeft is the
	// remaining sequence-point budget before a survivor breaks it. Both are
	// only touched when fault injection is on.
	abandoned bool
	stallLeft int
}

func newWhiteboard() *whiteboard {
	wb := &whiteboard{}
	wb.cond = sync.NewCond(&wb.mu)
	return wb
}

// ErrAborted is returned from agent operations after the engine deadline
// fires or the run is cancelled.
var ErrAborted = errors.New("sim: run aborted (deadline reached)")

// ErrCanceled is returned by Run when Config.Context is cancelled before
// the protocol completes. It deliberately does not wrap ErrAborted: the
// watchdog path (ErrAborted) is retriable under a fresh seed, an external
// cancellation is not.
var ErrCanceled = errors.New("sim: run canceled")

// Role is an agent's final protocol status.
type Role int

const (
	// RoleUnknown means the protocol ended without declaring a status.
	RoleUnknown Role = iota
	// RoleLeader marks the elected agent.
	RoleLeader
	// RoleDefeated marks an agent that accepted another agent as leader.
	RoleDefeated
	// RoleUnsolvable marks an agent that detected that election is
	// impossible for this input (the protocol is effectual, not universal).
	RoleUnsolvable
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleDefeated:
		return "defeated"
	case RoleUnsolvable:
		return "unsolvable"
	default:
		return "unknown"
	}
}

// Outcome is what a protocol reports for one agent.
type Outcome struct {
	Role Role
	// Leader is the color of the elected leader, when Role is RoleLeader
	// or RoleDefeated.
	Leader Color
}

// Protocol is the code run by every agent (all agents execute the same
// protocol — Section 1.2).
type Protocol func(a *Agent) (Outcome, error)

// Config describes one simulation run.
type Config struct {
	Graph *graph.Graph
	// Homes lists the home-base node of each agent (distinct nodes).
	Homes []int
	// Seed drives color assignment, symbol presentation shuffles, the
	// initial wake-up choice and the delay injection.
	Seed int64
	// MaxDelay bounds the random delay injected before each agent
	// operation; 0 injects only scheduling yields.
	MaxDelay time.Duration
	// WakeAll wakes every agent at start; otherwise a random nonempty
	// subset is woken and the rest sleep until a visiting agent wakes them
	// (or until the protocol ends — protocols must wake sleepers they rely
	// on, as MAP-DRAWING does).
	WakeAll bool
	// Timeout aborts the run (default 30s).
	Timeout time.Duration
	// Context, when set, cancels the run externally: cancellation unwinds
	// every agent through the abort machinery (exactly like the watchdog)
	// and Run returns an error wrapping ErrCanceled. Nil means the run can
	// only end by completing or hitting Timeout. Server request deadlines
	// and SIGTERM drains ride on this.
	Context context.Context
	// QuantitativeIDs, when set, lets agents call Agent.ID to obtain a
	// totally ordered integer identity — the quantitative model used by
	// the baseline protocol of Section 1.3. Qualitative protocols must
	// not use it.
	QuantitativeIDs bool
	// AllowSharedHomes permits several agents to start on one node — the
	// extension the paper claims in Section 1.2 ("all our results extend
	// to the case where more than one agent can occupy a single node").
	// Off by default so accidental duplicates in configurations fail fast.
	AllowSharedHomes bool
	// Tracer, when set, receives observer-side events (moves, sign writes,
	// wake-ups, outcomes). See trace.go.
	Tracer Tracer
	// Telemetry, when set, receives per-phase move/access/write/erase
	// counts and protocol spans (see Agent.SetPhase and Agent.Span). Nil
	// disables collection; the instrumented hot path then costs one nil
	// check per event and allocates nothing (guarded by an allocation
	// test).
	Telemetry *telemetry.Run
	// Scheduler, when set, replaces the timing adversary (random delays,
	// goroutine interleaving) with a deterministic serializing scheduler:
	// agents step one at a time and the strategy picks who goes next at
	// every sequence point. MaxDelay is ignored in this mode. See Strategy.
	Scheduler Strategy
	// Record, when set together with Scheduler, receives the grant sequence
	// of the run — a decision log that Replay can re-issue to reproduce the
	// execution exactly.
	Record *Schedule
	// Faults, when set (requires Scheduler), consults the injector at every
	// sequence point, whiteboard sign write, and Wait predicate check —
	// enabling deterministic crash-stop, torn-write, and read-staleness
	// injection. See FaultInjector and the internal/faults package.
	Faults FaultInjector
	// TakeoverAfter is the stall budget of an abandoned whiteboard lock:
	// how many sequence points surviving agents collectively burn against a
	// dead agent's lock before breaking it and taking over (default 3).
	// Only meaningful together with Faults.
	TakeoverAfter int
	// ColorSeed, when nonzero, re-seeds only the color-palette shuffle,
	// leaving every other seed-derived choice (wake set, presentation
	// orders, per-agent RNGs) exactly as under Seed. It is the seam the
	// relabeling-invariance property tests twist: a correct qualitative
	// protocol cannot observe the difference.
	ColorSeed int64
	// SymbolSeed, when nonzero, re-seeds only the per-(agent, node) port
	// symbol presentation shuffles, leaving everything else as under Seed.
	SymbolSeed int64
	// PortLabels, when set, attaches an edge labeling to the run and lets
	// agents resolve any port symbol to its integer label via
	// Agent.PortLabel. This is the quantitative-world seam the
	// internal/runtime backends use to align the sim's opaque symbols with
	// the labeled ports of the message-passing backends; qualitative
	// protocols must leave it unset (labels are a total order on ports,
	// which the qualitative model forbids).
	PortLabels graph.EdgeLabeling
}

// TagHome marks home-bases: the engine writes this sign, colored by the
// resident agent, on every home whiteboard before the run starts
// ("the home-base of a is marked with a sign of color c(a)").
const TagHome = "home"

// TagWake wakes a sleeping agent when written on its home whiteboard.
const TagWake = "wake"

// Agent is the handle protocol code uses to act on the network. Methods are
// only valid from the protocol goroutine the agent was handed to.
type Agent struct {
	eng   *engine
	index int // agent index (engine-internal)
	color Color
	node  int    // current node (engine-internal; never exposed)
	entry Symbol // symbol of the port we arrived through (zero at home)
	rng   *rand.Rand

	moves    int64
	accesses int64

	// phase is the protocol phase the agent last declared via SetPhase.
	// Written and read only from the agent's own goroutine (trace and the
	// telemetry counters run on it too), so no synchronization is needed.
	phase telemetry.Phase
	// board is scratch space reused across Access calls so granting a
	// whiteboard access does not allocate (Board is invalid outside the
	// Access callback, so reuse is safe).
	board Board

	// fseq counts past injection points per operation class (see
	// FaultPoint.Index); crashPending/crashHold carry a torn write's
	// crash-during-write decision from Board.Write to the end of the
	// enclosing Access. All are agent-goroutine-local.
	fseq         [numFaultOps]int
	crashPending bool
	crashHold    bool

	id int // quantitative identity, only via ID()
}

// SetPhase declares the protocol phase the agent is entering. Subsequent
// trace events and telemetry counts are attributed to it. Calling it with
// telemetry disabled is free; protocols that never call it report
// everything under PhaseNone.
func (a *Agent) SetPhase(p telemetry.Phase) { a.phase = p }

// Phase returns the agent's currently declared protocol phase.
func (a *Agent) Phase() telemetry.Phase { return a.phase }

// TelemetryEnabled reports whether the run collects telemetry. Protocol
// code can gate span-name formatting behind it so the disabled path
// stays allocation-free.
func (a *Agent) TelemetryEnabled() bool { return a.eng.cfg.Telemetry != nil }

// Span opens a telemetry span on this agent's track, tagged with the
// current phase. The returned span is a no-op when telemetry is
// disabled; call End when the interval completes.
func (a *Agent) Span(name string) telemetry.ActiveSpan {
	return a.eng.cfg.Telemetry.StartSpan(a.index, name, a.phase)
}

// Color returns the agent's own color.
func (a *Agent) Color() Color { return a.color }

// ID returns the agent's totally ordered integer identity. It panics unless
// the run was configured with QuantitativeIDs — calling it from a
// qualitative protocol is a model violation.
func (a *Agent) ID() int {
	if !a.eng.cfg.QuantitativeIDs {
		panic("sim: Agent.ID called in the qualitative model")
	}
	return a.id
}

// Deg returns the degree of the current node.
func (a *Agent) Deg() int { return a.eng.cfg.Graph.Deg(a.node) }

// PortLabeled reports whether the run carries an edge labeling
// (Config.PortLabels), i.e. whether PortLabel may be called.
func (a *Agent) PortLabeled() bool { return a.eng.cfg.PortLabels != nil }

// PortLabel resolves a port symbol to its integer edge label under the
// run's Config.PortLabels. It panics when the run carries no labeling or
// when s is the zero Symbol — calling it from a qualitative protocol is a
// model violation, exactly like Agent.ID.
func (a *Agent) PortLabel(s Symbol) int {
	if !a.PortLabeled() {
		panic("sim: Agent.PortLabel called without Config.PortLabels")
	}
	if !s.ok {
		panic("sim: Agent.PortLabel called with the zero Symbol")
	}
	return a.eng.cfg.PortLabels[s.node][s.port]
}

// Symbols returns the port symbols of the current node, in this agent's own
// presentation order (stable per agent and node across visits, but different
// agents see different orders — "its own encoding of the symbols").
func (a *Agent) Symbols() []Symbol {
	d := a.eng.cfg.Graph.Deg(a.node)
	perm := a.eng.presentation(a.index, a.node, d)
	out := make([]Symbol, d)
	for i, p := range perm {
		out[i] = Symbol{node: a.node, port: p, ok: true}
	}
	return out
}

// Entry returns the symbol of the port through which the agent entered the
// current node (zero at its home-base before any move).
func (a *Agent) Entry() Symbol { return a.entry }

// Move traverses the port with the given symbol (which must be a symbol of
// the current node) and returns the entry symbol at the destination.
func (a *Agent) Move(s Symbol) (Symbol, error) {
	if err := a.eng.delay(a); err != nil {
		return Symbol{}, err
	}
	if s.node != a.node || !s.ok {
		return Symbol{}, fmt.Errorf("sim: symbol is not a port of the current node")
	}
	h := a.eng.cfg.Graph.Port(a.node, s.port)
	a.node = h.To
	a.entry = Symbol{node: h.To, port: h.Twin, ok: true}
	atomic.AddInt64(&a.moves, 1)
	a.eng.cfg.Telemetry.CountMove(a.phase)
	a.eng.trace(a.index, EvMove, a.node, "")
	return a.entry, nil
}

// Access grants exclusive access to the current node's whiteboard for the
// duration of f (the model's mutual-exclusion whiteboard access). The Board
// is invalid outside f.
func (a *Agent) Access(f func(b *Board)) error {
	if err := a.eng.delay(a); err != nil {
		return err
	}
	wb := a.eng.boards[a.node]
	if err := a.eng.passAbandoned(a, wb); err != nil {
		return err
	}
	wb.mu.Lock()
	defer wb.mu.Unlock()
	atomic.AddInt64(&a.accesses, 1)
	a.eng.cfg.Telemetry.CountAccess(a.phase)
	a.board = Board{wb: wb, color: a.color, agent: a, node: a.node}
	f(&a.board)
	a.board = Board{} // a retained *Board fails fast instead of racing
	var crashErr error
	if a.crashPending {
		// A torn write inside f crash-stops the writer as its access ends;
		// with HoldLock the board's lock is left abandoned for survivors to
		// break (see passAbandoned).
		a.crashPending = false
		a.eng.crashed[a.index] = true
		if a.crashHold {
			a.crashHold = false
			a.eng.abandonLocked(wb)
		}
		a.eng.trace(a.index, EvCrash, a.node, "torn-write")
		crashErr = ErrCrashed
	}
	if wb.dirty {
		wb.dirty = false
		wb.cond.Broadcast()
		if a.eng.ts != nil {
			// Ready the agents parked on this board while the writer still
			// holds its turn, so the next scheduling decision already sees
			// them (keeps the ready set — and thus replay — deterministic).
			a.eng.ts.notifyBoard(a.node)
		}
	}
	return crashErr
}

// Wait blocks until the current node's whiteboard satisfies pred (checked
// under the board lock, re-checked after every write to this board). The
// agent must stay at the node; returning signs are a snapshot.
func (a *Agent) Wait(pred func(Signs) bool) (Signs, error) {
	if err := a.eng.delay(a); err != nil {
		return nil, err
	}
	wb := a.eng.boards[a.node]
	if ts := a.eng.ts; ts != nil {
		// Turnstile mode: the agent holds the turn here, so the board cannot
		// change between the predicate check and block — no lost wakeups.
		// Blocking hands the turn back; a write readies the agent, and it
		// re-checks once the strategy grants it again.
		atomic.AddInt64(&a.accesses, 1)
		a.eng.cfg.Telemetry.CountAccess(a.phase)
		for {
			// Each predicate check is a read injection point: the injector
			// may crash the agent here or stall its view of the board for a
			// bounded number of extra sequence points.
			if err := a.eng.faultRead(a); err != nil {
				return nil, err
			}
			if err := a.eng.passAbandoned(a, wb); err != nil {
				return nil, err
			}
			wb.mu.Lock()
			snapshot := make(Signs, len(wb.signs))
			copy(snapshot, wb.signs)
			wb.mu.Unlock()
			if pred(snapshot) {
				return snapshot, nil
			}
			if err := ts.block(a.index, a.node); err != nil {
				return nil, err
			}
		}
	}
	wb.mu.Lock()
	defer wb.mu.Unlock()
	atomic.AddInt64(&a.accesses, 1)
	a.eng.cfg.Telemetry.CountAccess(a.phase)
	for {
		snapshot := make(Signs, len(wb.signs))
		copy(snapshot, wb.signs)
		if pred(snapshot) {
			return snapshot, nil
		}
		if atomic.LoadInt32(&a.eng.aborted) != 0 {
			return nil, ErrAborted
		}
		wb.cond.Wait()
	}
}

// Moves returns the number of moves the agent has performed so far.
func (a *Agent) Moves() int64 { return atomic.LoadInt64(&a.moves) }

// Accesses returns the number of whiteboard accesses so far.
func (a *Agent) Accesses() int64 { return atomic.LoadInt64(&a.accesses) }

// Rand returns the agent's private PRNG (for tie-breaking inside protocol
// implementations that allow randomized exploration order; the protocols in
// this repository are deterministic and do not use it, but examples may).
func (a *Agent) Rand() *rand.Rand { return a.rng }

// Result collects the outcome of a run.
type Result struct {
	// Outcomes[i] is agent i's reported outcome (order matches cfg.Homes).
	Outcomes []Outcome
	// Errors[i] is agent i's protocol error, if any.
	Errors []error
	// Moves and Accesses are per-agent counters.
	Moves    []int64
	Accesses []int64
	// Colors[i] is agent i's color (for test-side bookkeeping; tests may
	// map colors back to indices, protocols may not).
	Colors []Color
	// Crashed[i] reports whether agent i was crash-stopped by an injected
	// fault (its error is ErrCrashed). Nil on fault-free runs fabricated by
	// tests; all-false on fault-free engine runs.
	Crashed []bool
	// Takeovers counts abandoned-lock recoveries performed by surviving
	// agents (see Config.TakeoverAfter).
	Takeovers int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// TotalMoves sums the per-agent move counters.
func (r *Result) TotalMoves() int64 {
	var t int64
	for _, m := range r.Moves {
		t += m
	}
	return t
}

// TotalAccesses sums the per-agent whiteboard-access counters.
func (r *Result) TotalAccesses() int64 {
	var t int64
	for _, m := range r.Accesses {
		t += m
	}
	return t
}

// LeaderCount returns how many agents ended in RoleLeader.
func (r *Result) LeaderCount() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Role == RoleLeader {
			n++
		}
	}
	return n
}

// AgreedLeader reports whether exactly one agent is leader, all others are
// defeated, and all agree on the leader's color.
func (r *Result) AgreedLeader() bool {
	var leader Color
	count := 0
	for i, o := range r.Outcomes {
		if o.Role == RoleLeader {
			count++
			leader = r.Colors[i]
			if !o.Leader.Equal(leader) {
				return false
			}
		}
	}
	if count != 1 {
		return false
	}
	for _, o := range r.Outcomes {
		if o.Role == RoleDefeated && !o.Leader.Equal(leader) {
			return false
		}
		if o.Role != RoleLeader && o.Role != RoleDefeated {
			return false
		}
	}
	return true
}

// CrashedCount returns how many agents were crash-stopped by injected
// faults (0 on fault-free runs).
func (r *Result) CrashedCount() int {
	n := 0
	for _, c := range r.Crashed {
		if c {
			n++
		}
	}
	return n
}

// Survived reports whether agent i was not crash-stopped (true for every
// agent of a fault-free run).
func (r *Result) Survived(i int) bool {
	return i >= len(r.Crashed) || !r.Crashed[i]
}

// AllUnsolvable reports whether every agent declared the input unsolvable.
func (r *Result) AllUnsolvable() bool {
	for _, o := range r.Outcomes {
		if o.Role != RoleUnsolvable {
			return false
		}
	}
	return len(r.Outcomes) > 0
}

type engine struct {
	cfg     Config
	boards  []*whiteboard
	agents  []*Agent
	ts      *turnstile // non-nil when cfg.Scheduler drives the run
	aborted int32
	started time.Time

	// Fault-plane state: crashed[i] is written only from agent i's own
	// goroutine and read after the run barrier; takeovers is the
	// abandoned-lock recovery counter; takeoverAfter the per-lock stall
	// budget (defaulted from cfg).
	crashed       []bool
	takeovers     atomic.Int64
	takeoverAfter int

	presMu sync.Mutex
	pres   map[[2]int][]int // (agent, node) -> presentation permutation
	seedLo int64
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mixer, so two
// distinct inputs never collide and close inputs map to unrelated outputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// presentationSeed derives the RNG seed of the (agent, node) symbol
// presentation. Chained splitmix rounds keep distinct (agent, node) pairs on
// distinct seed streams — the earlier xor-of-prime-multiples scheme collided
// (e.g. agent·7919 ^ node·104729 is 0 for both (0,0) and (104729, 7919)),
// silently giving two pairs the same shuffle. Regression-tested in
// mix_test.go.
func presentationSeed(seedLo int64, agent, node int) int64 {
	h := mix64(uint64(seedLo))
	h = mix64(h ^ uint64(uint32(agent)))
	h = mix64(h ^ uint64(uint32(node)))
	return int64(h)
}

func (e *engine) presentation(agent, node, deg int) []int {
	e.presMu.Lock()
	defer e.presMu.Unlock()
	key := [2]int{agent, node}
	if p, ok := e.pres[key]; ok {
		return p
	}
	rng := rand.New(rand.NewSource(presentationSeed(e.seedLo, agent, node)))
	p := rng.Perm(deg)
	e.pres[key] = p
	return p
}

// delay injects the adversarial asynchrony before each operation: a seeded
// random sleep (or a bare yield) in the default mode, or a turnstile step
// when a scheduling strategy drives the run.
func (e *engine) delay(a *Agent) error {
	if atomic.LoadInt32(&e.aborted) != 0 {
		return ErrAborted
	}
	if e.ts != nil {
		if err := e.ts.step(a.index); err != nil {
			return err
		}
		if e.faultsOn() {
			// Every granted sequence point is a crash injection point.
			if act := e.injectAt(a, FaultStep, a.node, ""); act.Crash {
				return e.crash(a, act.HoldLock)
			}
		}
		return nil
	}
	if e.cfg.MaxDelay > 0 {
		d := time.Duration(a.rng.Int63n(int64(e.cfg.MaxDelay) + 1))
		time.Sleep(d)
	} else {
		runtime.Gosched()
	}
	if atomic.LoadInt32(&e.aborted) != 0 {
		return ErrAborted
	}
	return nil
}

// Run executes the protocol with one goroutine per agent and returns the
// collected outcomes. It validates the configuration (connected graph,
// distinct in-range home-bases, at least one agent).
func Run(cfg Config, protocol Protocol) (*Result, error) {
	if cfg.Graph == nil || cfg.Graph.N() == 0 {
		return nil, errors.New("sim: empty graph")
	}
	if !cfg.Graph.IsConnected() {
		return nil, errors.New("sim: graph must be connected")
	}
	if len(cfg.Homes) == 0 {
		return nil, errors.New("sim: need at least one agent")
	}
	seen := make(map[int]bool)
	for _, h := range cfg.Homes {
		if h < 0 || h >= cfg.Graph.N() {
			return nil, fmt.Errorf("sim: home-base %d out of range", h)
		}
		if seen[h] && !cfg.AllowSharedHomes {
			return nil, fmt.Errorf("sim: duplicate home-base %d (set AllowSharedHomes to permit co-located agents)", h)
		}
		seen[h] = true
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Faults != nil && cfg.Scheduler == nil {
		return nil, errors.New("sim: fault injection requires the deterministic Scheduler")
	}
	if cfg.PortLabels != nil {
		if err := cfg.PortLabels.Validate(cfg.Graph); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	if cfg.TakeoverAfter <= 0 {
		cfg.TakeoverAfter = 3
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// The rng consumption order below is part of the repository's
	// determinism contract: seedLo, then the palette, then per-agent RNGs,
	// then the wake set. The ColorSeed/SymbolSeed seams override a single
	// draw's value without skipping the draw, so setting them perturbs
	// nothing else.
	seedLo := rng.Int63()
	if cfg.SymbolSeed != 0 {
		seedLo = cfg.SymbolSeed
	}
	e := &engine{
		cfg:           cfg,
		boards:        make([]*whiteboard, cfg.Graph.N()),
		pres:          make(map[[2]int][]int),
		seedLo:        seedLo,
		crashed:       make([]bool, len(cfg.Homes)),
		takeoverAfter: cfg.TakeoverAfter,
	}
	if cfg.Scheduler != nil {
		e.ts = newTurnstile(len(cfg.Homes), cfg.Scheduler, cfg.Record)
	}
	for i := range e.boards {
		e.boards[i] = newWhiteboard()
	}

	// Seed-shuffled palette: agent i's color id is palette[i]+1, so color
	// ids carry no information about agent indices.
	palette := rng.Perm(len(cfg.Homes))
	if cfg.ColorSeed != 0 {
		palette = rand.New(rand.NewSource(cfg.ColorSeed)).Perm(len(cfg.Homes))
	}
	e.agents = make([]*Agent, len(cfg.Homes))
	for i, h := range cfg.Homes {
		e.agents[i] = &Agent{
			eng:   e,
			index: i,
			color: Color{id: palette[i] + 1},
			node:  h,
			rng:   rand.New(rand.NewSource(rng.Int63())),
			id:    i + 1,
		}
	}

	// Label telemetry tracks so timeline exports name each agent's row.
	if cfg.Telemetry != nil {
		for i := range e.agents {
			cfg.Telemetry.SetTrackName(i, "agent "+strconv.Itoa(i))
		}
	}

	// Pre-mark home-bases.
	for i, h := range cfg.Homes {
		e.boards[h].signs = append(e.boards[h].signs, Sign{Color: e.agents[i].color, Tag: TagHome})
	}

	// Wake the initial set.
	wake := map[int]bool{}
	if cfg.WakeAll {
		for i := range cfg.Homes {
			wake[i] = true
		}
	} else {
		k := 1 + rng.Intn(len(cfg.Homes))
		for _, i := range rng.Perm(len(cfg.Homes))[:k] {
			wake[i] = true
		}
	}
	var wakeList []int
	for i := range wake {
		wakeList = append(wakeList, i)
	}
	sort.Ints(wakeList)
	for _, i := range wakeList {
		h := cfg.Homes[i]
		e.boards[h].signs = append(e.boards[h].signs, Sign{Color: e.agents[i].color, Tag: TagWake})
	}

	res := &Result{
		Outcomes: make([]Outcome, len(cfg.Homes)),
		Errors:   make([]error, len(cfg.Homes)),
		Moves:    make([]int64, len(cfg.Homes)),
		Accesses: make([]int64, len(cfg.Homes)),
		Colors:   make([]Color, len(cfg.Homes)),
	}
	for i := range e.agents {
		res.Colors[i] = e.agents[i].color
	}

	start := time.Now()
	e.started = start
	var wg sync.WaitGroup
	for i := range e.agents {
		wg.Add(1)
		go func(a *Agent, i int) {
			defer wg.Done()
			if e.ts != nil {
				// Retiring through the turnstile passes the turn on every
				// exit path, including protocol errors.
				defer e.ts.exit(i)
			}
			// Sleep until woken: a sleeping agent's first action is to wait
			// for a wake sign on its home whiteboard.
			_, err := a.Wait(func(ss Signs) bool { return ss.Has(TagWake) })
			if err != nil {
				res.Errors[i] = err
				return
			}
			e.trace(i, EvWake, a.node, "")
			out, err := protocol(a)
			res.Outcomes[i] = out
			res.Errors[i] = err
			e.trace(i, EvOutcome, a.node, out.Role.String())
		}(e.agents[i], i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	var runErr error
	// abort unwinds every agent: flag the engine, release the turnstile,
	// and broadcast on all whiteboards until the pool drains so no waiter
	// sleeps through the flag.
	abort := func(cause error) {
		atomic.StoreInt32(&e.aborted, 1)
		if e.ts != nil {
			e.ts.abort()
		}
		for {
			for _, wb := range e.boards {
				wb.mu.Lock()
				wb.cond.Broadcast()
				wb.mu.Unlock()
			}
			select {
			case <-done:
				runErr = cause
			case <-time.After(10 * time.Millisecond):
				continue
			}
			break
		}
	}
	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}
	select {
	case <-done:
	case <-ctxDone:
		abort(fmt.Errorf("%w: %v", ErrCanceled, cfg.Context.Err()))
	case <-time.After(cfg.Timeout):
		abort(fmt.Errorf("sim: %w after %v", ErrAborted, cfg.Timeout))
	}
	res.Elapsed = time.Since(start)
	for i := range e.agents {
		res.Moves[i] = e.agents[i].Moves()
		res.Accesses[i] = e.agents[i].Accesses()
	}
	res.Crashed = e.crashed
	res.Takeovers = e.takeovers.Load()
	if e.ts != nil && e.ts.deadlocked() && runErr == nil {
		runErr = ErrDeadlock
	}
	for i, err := range res.Errors {
		// An injected crash is an environment event, not a protocol
		// failure: the crashed agent's ErrCrashed stays per-agent and the
		// survivors' outcomes remain checkable.
		if err != nil && runErr == nil && !errors.Is(err, ErrCrashed) {
			runErr = fmt.Errorf("sim: agent %d: %w", i, err)
		}
	}
	return res, runErr
}
