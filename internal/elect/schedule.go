package elect

// This file computes, from the ordered class sizes alone, the deterministic
// structure of Protocol ELECT's reduction phases: which classes are consumed
// in which order, how many rounds each AGENT-REDUCE / NODE-REDUCE performs,
// and the searcher/waiter (or agent/node) counts of every round. Every agent
// derives the identical schedule from its own map, which is what lets the
// distributed protocol synchronize by counting colored signs.

type phaseKind int

const (
	phaseAgent phaseKind = iota // AGENT-REDUCE (stage agent-agent)
	phaseNode                   // NODE-REDUCE (stage agent-node)
)

// roundPlan fixes the deterministic counts of one reduction round.
type roundPlan struct {
	// AGENT-REDUCE: s searchers, w waiters at round start; swap reports
	// whether roles swap after this round (w-s < s).
	s, w int
	swap bool
	// NODE-REDUCE: alpha agents, beta selected nodes at round start; case1
	// is the α > β branch; q is the per-node (case 1) or per-agent (case 2)
	// acquisition quota.
	alpha, beta int
	case1       bool
	q           int
}

// phasePlan fixes one reduction phase.
type phasePlan struct {
	kind     phaseKind
	classIdx int // index (protocol order) of the class consumed
	dIn      int // |D| entering the phase
	dOut     int // |D| leaving the phase = gcd(dIn, |C_classIdx|)
	// dSearches (agent phases) reports whether the incumbent set D takes
	// the searcher role in round 0 (|D| < |C|).
	dSearches bool
	rounds    []roundPlan
	// candidates lists the class indices whose home-bases can host
	// participants of this phase: class 0, the classes consumed by earlier
	// (non-skipped) agent phases, and this phase's own class. Searchers
	// only resolve resident statuses at these homes.
	candidates []int
}

// schedule is the full deterministic plan of an ELECT run.
type schedule struct {
	sizes    []int // ordered class sizes
	numBlack int
	phases   []phasePlan
	finalD   int // gcd(|C_1|, …, |C_k|) reached by the reduction
}

// computeSchedule derives the plan from the ordered class sizes (black
// classes first) as the Figure 3 loops would execute it, with one cost
// refinement the paper's Theorem 3.1 accounting implicitly relies on
// ("active agents perform a traversal to synchronize only if the number of
// active agents has been modified"): a phase whose class size is a multiple
// of the current d cannot change |D| — gcd(d, |C_i|) = d — so it is skipped
// outright. Every phase that does run strictly reduces d, so at most
// log2(r) phases run and the total move count stays O(r·|E|).
func computeSchedule(sizes []int, numBlack int) *schedule {
	return computeScheduleOpt(sizes, numBlack, false)
}

// computeScheduleOpt exposes the no-skip ablation: with noSkip, phases that
// cannot reduce |D| are still executed (the literal Figure 3 loops). The
// ablation experiment measures the resulting Θ(k·d·|E|) blowup on cycles;
// protocol correctness is unaffected.
func computeScheduleOpt(sizes []int, numBlack int, noSkip bool) *schedule {
	sc := &schedule{sizes: sizes, numBlack: numBlack}
	d := sizes[0]
	consumed := []int{0} // classes whose agents may belong to D
	// Stage agent-agent.
	i := 1
	for ; i < numBlack && d > 1; i++ {
		c := sizes[i]
		if c%d == 0 && !noSkip {
			continue // gcd(d, c) == d: the phase cannot reduce |D|
		}
		p := phasePlan{kind: phaseAgent, classIdx: i, dIn: d}
		p.candidates = append(append([]int{}, consumed...), i)
		s, w := d, c
		p.dSearches = d <= c
		if !p.dSearches {
			s, w = c, d
		}
		for s < w {
			r := roundPlan{s: s, w: w, swap: w-s < s}
			p.rounds = append(p.rounds, r)
			if r.swap {
				s, w = w-s, s
			} else {
				w = w - s
			}
		}
		p.dOut = s
		d = s
		consumed = append(consumed, i)
		sc.phases = append(sc.phases, p)
	}
	// Stage agent-node.
	for i = max(i, numBlack); i < len(sizes) && d > 1; i++ {
		if sizes[i]%d == 0 && !noSkip {
			continue
		}
		p := phasePlan{kind: phaseNode, classIdx: i, dIn: d}
		p.candidates = append([]int{}, consumed...)
		alpha, beta := d, sizes[i]
		for alpha != beta {
			r := roundPlan{alpha: alpha, beta: beta, case1: alpha > beta}
			if r.case1 {
				r.q = (alpha - 1) / beta
				alpha = alpha - r.q*beta
			} else {
				r.q = (beta - 1) / alpha
				beta = beta - r.q*alpha
			}
			p.rounds = append(p.rounds, r)
		}
		p.dOut = alpha
		d = alpha
		sc.phases = append(sc.phases, p)
	}
	sc.finalD = d
	return sc
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
