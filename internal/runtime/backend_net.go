package runtime

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/faults"
)

// The spawn modes of the Networked backend.
const (
	// SpawnPipe runs each worker as a goroutine serving one end of a
	// net.Pipe — the full bus protocol without process boundaries (fast;
	// used by tests and the campaign backend axis).
	SpawnPipe = "pipe"
	// SpawnProcess re-execs the current binary once per shard with
	// WorkerEnv set, connecting over the configured transport. The binary
	// must call MaybeWorker early in main.
	SpawnProcess = "process"
)

// Networked is backend (d): a real message bus. The coordinator owns the
// schedule, the agent messages in flight, and the wire-fault plane; one
// worker per node shard owns its nodes' whiteboards and executes protocol
// steps, talking length-prefixed JSON frames over unix sockets, TCP, or
// in-process pipes. Activations are serialized by the coordinator, so runs
// are deterministic per (Config, Protocol, WireFaults) — which is what
// makes recorded wire-fault plans replayable frame for frame.
//
// Wire faults apply to the agent-message layer (the Figure 1 "a message is
// an agent" channel), not to the coordinator-worker control frames: a
// dropped agent message is lost on the wire and retransmitted by the bus's
// at-least-once delivery after a bounded timeout; delays hold a message
// for a bounded number of scheduler rounds; duplicates deliver an agent
// twice; reorders let a message overtake the receiver's queue.
type Networked struct {
	// Workers is the number of node shards (node v lives on shard
	// v mod Workers); default 2, clamped to the node count.
	Workers int
	// Transport is the socket family of SpawnProcess workers: "unix"
	// (default, socket in a temp dir) or "tcp" (127.0.0.1).
	Transport string
	// Spawn selects SpawnPipe (default) or SpawnProcess.
	Spawn string
	// WireFaults, when set, is consulted on every agent-message send; its
	// recorded plan (WireInjector.Plan) makes the run replayable with
	// faults.ReplayWire.
	WireFaults faults.WireInjector
	// FrameLog, when set, receives one line per control frame
	// (">shard payload" sent, "<shard payload" received) — the replay
	// artifact the wire-fault round-trip test compares bit for bit.
	FrameLog io.Writer
}

// Name returns "networked".
func (*Networked) Name() string { return "networked" }

// netWorker is the coordinator's handle on one worker.
type netWorker struct {
	rw    io.ReadWriter
	close func()
}

// delayedMsg is an agent message held off the inbox by a drop (awaiting
// retransmission) or delay fault.
type delayedMsg struct {
	due int // steps clock value at which the message is (re)delivered
	to  int
	m   netMsg
}

// Run executes the protocol on the message bus.
func (nw *Networked) Run(cfg Config, p Protocol) (*Result, error) {
	labels, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if _, err := FromSpec(p.Spec()); err != nil {
		return nil, fmt.Errorf("runtime: networked backend needs a registered protocol: %w", err)
	}
	n := cfg.Graph.N()
	w := nw.Workers
	if w <= 0 {
		w = 2
	}
	if w > n {
		w = n
	}
	workers, err := nw.spawn(w)
	if err != nil {
		return nil, err
	}
	defer func() {
		for shard, wk := range workers {
			if wk.rw != nil {
				_, _ = nw.send(workers, shard, &frame{T: FrameDone})
			}
			wk.close()
		}
	}()

	// Ship each worker its shard and collect the acks.
	for shard := 0; shard < w; shard++ {
		init := &frame{T: FrameInit, Shard: shard, Spec: p.Spec(), Agents: len(cfg.Homes)}
		for v := 0; v < n; v++ {
			if v%w != shard {
				continue
			}
			ni := nodeInit{V: v, Labels: append([]int(nil), labels[v]...)}
			for i, h := range cfg.Homes {
				if h == v {
					ni.Homes = append(ni.Homes, i)
				}
			}
			init.Nodes = append(init.Nodes, ni)
		}
		if err := nw.sendRecvInit(workers, shard, init); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Outcomes: make([]string, len(cfg.Homes)),
		Moves:    make([]int64, len(cfg.Homes)),
		Backend:  nw.Name(),
	}
	inbox := make([][]netMsg, n)
	park := make([][]parkedMsg, n)
	rev := make([]int, n)
	var delayed []delayedMsg
	halted := 0
	sends := 0
	rng := rand.New(rand.NewSource(cfg.Seed))

	// deliver routes one agent message through the wire-fault plane.
	deliver := func(from, to int, m netMsg) {
		var act faults.WireAction
		if nw.WireFaults != nil {
			act = nw.WireFaults.Inject(faults.WireOp{Index: sends, Agent: m.agent, From: from, To: to})
		}
		sends++
		if !act.Fault {
			inbox[to] = append(inbox[to], m)
			return
		}
		switch act.Kind {
		case faults.WireDrop, faults.WireDelay:
			// Lost (and retransmitted by the bus) or held on the wire:
			// either way the message surfaces after Arg+1 rounds.
			delayed = append(delayed, delayedMsg{due: res.Steps + 1 + act.Arg, to: to, m: m})
		case faults.WireDup:
			inbox[to] = append(inbox[to], m, m)
		case faults.WireReorder:
			inbox[to] = append([]netMsg{m}, inbox[to]...)
		}
	}

	// The fictitious initial deliveries at the home processors (these are
	// wake-ups, not wire sends — no fault point).
	for i, h := range cfg.Homes {
		inbox[h] = append(inbox[h], netMsg{agent: i, memory: p.Init(i + 1), entry: -1})
	}

	for res.Steps < cfg.MaxSteps && halted < len(cfg.Homes) {
		// Surface due retransmissions and delayed deliveries.
		kept := delayed[:0]
		for _, d := range delayed {
			if d.due <= res.Steps {
				inbox[d.to] = append(inbox[d.to], d.m)
			} else {
				kept = append(kept, d)
			}
		}
		delayed = kept

		var busy []int
		for v := 0; v < n; v++ {
			if len(inbox[v]) > 0 {
				busy = append(busy, v)
				continue
			}
			for _, pk := range park[v] {
				if pk.seenRev != rev[v] {
					busy = append(busy, v)
					break
				}
			}
		}
		if len(busy) == 0 {
			if len(delayed) == 0 {
				break
			}
			// Everything in flight is held on the wire: advance the clock
			// to the earliest due delivery.
			next := delayed[0].due
			for _, d := range delayed[1:] {
				if d.due < next {
					next = d.due
				}
			}
			res.Steps = next
			continue
		}
		v := busy[rng.Intn(len(busy))]
		res.Steps++
		var m netMsg
		if len(inbox[v]) > 0 {
			m = inbox[v][0]
			inbox[v] = inbox[v][1:]
		} else {
			found := false
			for idx, pk := range park[v] {
				if pk.seenRev != rev[v] {
					m = pk.netMsg
					park[v] = append(park[v][:idx], park[v][idx+1:]...)
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		r, err := nw.exec(workers, v%w, &frame{T: FrameExec, Node: v, Agent: m.agent, Mem: m.memory, Entry: m.entry})
		if err != nil {
			return res, err
		}
		rev[v] = r.Rev
		switch {
		case r.Halt != "":
			// First halt wins: a duplicated agent's second copy halting
			// again must not double-count.
			if res.Outcomes[m.agent] == "" {
				res.Outcomes[m.agent] = r.Halt
				halted++
			}
		case r.Move >= 0:
			moved := false
			for port, h := range cfg.Graph.Ports(v) {
				if labels[v][port] == r.Move {
					res.Moves[m.agent]++
					deliver(v, h.To, netMsg{agent: m.agent, memory: r.Mem, entry: labels[h.To][h.Twin]})
					moved = true
					break
				}
			}
			if !moved {
				return res, fmt.Errorf("runtime: networked: no port labeled %d at node %d", r.Move, v)
			}
		default:
			park[v] = append(park[v], parkedMsg{netMsg: netMsg{agent: m.agent, memory: r.Mem, entry: m.entry}, seenRev: r.Rev})
		}
	}
	if halted < len(cfg.Homes) {
		return res, errors.New("runtime: networked run ended with unhalted agents (deadlock, lost agent, or step budget)")
	}
	return res, nil
}

// send writes one control frame to a worker, logging it.
func (nw *Networked) send(workers []netWorker, shard int, f *frame) ([]byte, error) {
	payload, err := writeFrame(workers[shard].rw, f)
	if err != nil {
		return nil, fmt.Errorf("runtime: worker %d: %w", shard, err)
	}
	if nw.FrameLog != nil {
		fmt.Fprintf(nw.FrameLog, ">%d %s\n", shard, payload)
	}
	return payload, nil
}

// recv reads one control frame from a worker, logging it.
func (nw *Networked) recv(workers []netWorker, shard int) (*frame, error) {
	f, payload, err := readFrame(workers[shard].rw)
	if err != nil {
		return nil, fmt.Errorf("runtime: worker %d: %w", shard, err)
	}
	if nw.FrameLog != nil {
		fmt.Fprintf(nw.FrameLog, "<%d %s\n", shard, payload)
	}
	return f, nil
}

// sendRecvInit ships an init frame and validates the ack.
func (nw *Networked) sendRecvInit(workers []netWorker, shard int, init *frame) error {
	if _, err := nw.send(workers, shard, init); err != nil {
		return err
	}
	ack, err := nw.recv(workers, shard)
	if err != nil {
		return err
	}
	if ack.T != FrameOK || ack.Err != "" {
		return fmt.Errorf("runtime: worker %d rejected init: %s", shard, ack.Err)
	}
	return nil
}

// exec ships an exec frame and validates the result.
func (nw *Networked) exec(workers []netWorker, shard int, ef *frame) (*frame, error) {
	if _, err := nw.send(workers, shard, ef); err != nil {
		return nil, err
	}
	r, err := nw.recv(workers, shard)
	if err != nil {
		return nil, err
	}
	if r.T != FrameResult {
		return nil, fmt.Errorf("runtime: worker %d answered %q to exec", shard, r.T)
	}
	if r.Err != "" {
		return nil, fmt.Errorf("runtime: worker %d: %s", shard, r.Err)
	}
	return r, nil
}

// spawn brings up the worker set in the configured mode.
func (nw *Networked) spawn(w int) ([]netWorker, error) {
	switch nw.Spawn {
	case "", SpawnPipe:
		workers := make([]netWorker, w)
		for i := range workers {
			c, s := net.Pipe()
			go func() {
				_ = ServeWorker(s) // errors surface as coordinator-side frame errors
			}()
			workers[i] = netWorker{rw: c, close: func() { c.Close(); s.Close() }}
		}
		return workers, nil
	case SpawnProcess:
		return nw.spawnProcesses(w)
	default:
		return nil, fmt.Errorf("runtime: unknown spawn mode %q", nw.Spawn)
	}
}

// spawnProcesses re-execs the current binary once per shard and collects
// the dialed-in connections by hello shard.
func (nw *Networked) spawnProcesses(w int) ([]netWorker, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	network, addr := "unix", ""
	var tmp string
	switch nw.Transport {
	case "", "unix":
		tmp, err = os.MkdirTemp("", "electbus")
		if err != nil {
			return nil, err
		}
		addr = filepath.Join(tmp, "bus.sock")
	case "tcp":
		network, addr = "tcp", "127.0.0.1:0"
	default:
		return nil, fmt.Errorf("runtime: unknown transport %q", nw.Transport)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		if tmp != "" {
			os.RemoveAll(tmp)
		}
		return nil, err
	}
	cleanupAll := func(cmds []*exec.Cmd, conns []net.Conn) {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		}
		ln.Close()
		if tmp != "" {
			os.RemoveAll(tmp)
		}
	}
	cmds := make([]*exec.Cmd, w)
	for shard := 0; shard < w; shard++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%s|%s|%d", WorkerEnv, network, ln.Addr().String(), shard))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			cleanupAll(cmds, nil)
			return nil, fmt.Errorf("runtime: spawn worker %d: %w", shard, err)
		}
		cmds[shard] = cmd
	}
	conns := make([]net.Conn, w)
	for i := 0; i < w; i++ {
		conn, err := acceptTimeout(ln, 30*time.Second)
		if err != nil {
			cleanupAll(cmds, conns)
			return nil, fmt.Errorf("runtime: accept worker: %w", err)
		}
		hello, _, err := readFrame(conn)
		if err != nil || hello.T != FrameHello || hello.Shard < 0 || hello.Shard >= w || conns[hello.Shard] != nil {
			conn.Close()
			cleanupAll(cmds, conns)
			return nil, fmt.Errorf("runtime: bad worker hello (err=%v)", err)
		}
		conns[hello.Shard] = conn
	}
	workers := make([]netWorker, w)
	for shard := range workers {
		shard := shard
		conn := conns[shard]
		cmd := cmds[shard]
		workers[shard] = netWorker{rw: conn, close: func() {
			conn.Close()
			_ = cmd.Wait()
			if shard == 0 {
				ln.Close()
				if tmp != "" {
					os.RemoveAll(tmp)
				}
			}
		}}
	}
	return workers, nil
}

// acceptTimeout accepts one connection or fails after d.
func acceptTimeout(ln net.Listener, d time.Duration) (net.Conn, error) {
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	select {
	case r := <-ch:
		return r.c, r.err
	case <-time.After(d):
		return nil, errors.New("runtime: timed out waiting for a worker to dial in")
	}
}
