package elect

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/sim"
)

// runMapDraw runs MAP-DRAWING for every agent and returns the drawn maps.
func runMapDraw(t *testing.T, g *graph.Graph, homes []int, seed int64) []*Map {
	t.Helper()
	maps := make([]*Map, len(homes))
	var proto sim.Protocol = func(a *sim.Agent) (sim.Outcome, error) {
		m, err := MapDraw(a)
		if err != nil {
			return sim.Outcome{}, err
		}
		// Collect (color, map) pairs; after the run, colors are matched
		// against Result.Colors to recover agent indices (test-side only —
		// protocols cannot do this).
		collectMu.Lock()
		collected = append(collected, collectedMap{a.Color(), m})
		collectMu.Unlock()
		return sim.Outcome{}, nil
	}
	collectMu.Lock()
	collected = nil
	collectMu.Unlock()
	res, err := sim.Run(sim.Config{
		Graph: g, Homes: homes, Seed: seed, WakeAll: false,
		Timeout: 20 * time.Second,
	}, proto)
	if err != nil {
		t.Fatalf("map draw run: %v", err)
	}
	collectMu.Lock()
	defer collectMu.Unlock()
	for _, cm := range collected {
		for i := range homes {
			if res.Colors[i].Equal(cm.color) {
				maps[i] = cm.m
			}
		}
	}
	for i, m := range maps {
		if m == nil {
			t.Fatalf("agent %d produced no map", i)
		}
	}
	return maps
}

type collectedMap struct {
	color sim.Color
	m     *Map
}

var (
	collectMu sync.Mutex
	collected []collectedMap
)

func TestMapDrawReconstructsGraph(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		homes []int
	}{
		{"path5", graph.Path(5), []int{2}},
		{"cycle6", graph.Cycle(6), []int{0, 3}},
		{"petersen", graph.Petersen(), []int{0, 1}},
		{"Q3", graph.Hypercube(3), []int{0, 7}},
		{"star4", graph.Star(4), []int{1, 2, 3}},
		{"fig2c", graph.Fig2c(), []int{0}},
		{"random", graph.RandomConnected(9, 5, 17), []int{1, 4, 7}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			maps := runMapDraw(t, c.g, c.homes, 7)
			want := iso.FromGraph(c.g, BlackColors(c.g.N(), c.homes))
			for i, m := range maps {
				if m.G.N() != c.g.N() || m.G.M() != c.g.M() {
					t.Fatalf("agent %d: map has n=%d m=%d, want %d %d",
						i, m.G.N(), m.G.M(), c.g.N(), c.g.M())
				}
				got := iso.FromGraph(m.G, m.Colors())
				if !iso.Isomorphic(got, want) {
					t.Fatalf("agent %d: drawn map not isomorphic to network", i)
				}
				if m.Home != 0 || !m.Black[0] {
					t.Fatalf("agent %d: home must be local node 0 and black", i)
				}
				if m.R() != len(c.homes) {
					t.Fatalf("agent %d: found %d home-bases, want %d", i, m.R(), len(c.homes))
				}
				if len(m.HomeColors[0]) != 1 || m.HomeColors[0][0].IsZero() {
					t.Fatalf("agent %d: own home color missing", i)
				}
			}
			// Distinct agents record distinct home colors.
			if len(maps) >= 2 {
				c0 := maps[0].HomeColor(maps[0].Home)
				c1 := maps[1].HomeColor(maps[1].Home)
				if c0.Equal(c1) {
					t.Fatal("two agents share a home color")
				}
			}
		})
	}
}

func TestMapDrawMovesLinearInEdges(t *testing.T) {
	// MAP-DRAWING should cost at most ~4|E| moves (DFS with backtracking
	// plus known-node probes).
	for _, g := range []*graph.Graph{graph.Cycle(12), graph.Hypercube(4), graph.Petersen()} {
		res, err := sim.Run(sim.Config{
			Graph: g, Homes: []int{0}, Seed: 3, WakeAll: true,
		}, func(a *sim.Agent) (sim.Outcome, error) {
			_, err := MapDraw(a)
			return sim.Outcome{}, err
		})
		if err != nil {
			t.Fatal(err)
		}
		bound := int64(4 * g.M())
		if res.Moves[0] > bound {
			t.Errorf("%v: map-drawing took %d moves, bound %d", g, res.Moves[0], bound)
		}
	}
}

func TestMapDrawEndsAtHome(t *testing.T) {
	g := graph.Petersen()
	_, err := sim.Run(sim.Config{Graph: g, Homes: []int{4}, Seed: 5, WakeAll: true},
		func(a *sim.Agent) (sim.Outcome, error) {
			if _, err := MapDraw(a); err != nil {
				return sim.Outcome{}, err
			}
			var home bool
			err := a.Access(func(b *sim.Board) {
				home = b.Signs().HasBy(a.Color(), sim.TagHome)
			})
			if err != nil {
				return sim.Outcome{}, err
			}
			if !home {
				return sim.Outcome{}, errors.New("agent not at home after map-drawing")
			}
			return sim.Outcome{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapDrawWakesSleepers(t *testing.T) {
	// With WakeAll=false only a random subset starts; map-drawing must wake
	// the rest (they complete the protocol too, proven by Run returning
	// without timeout).
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Cycle(8)
		res, err := sim.Run(sim.Config{
			Graph: g, Homes: []int{0, 2, 5}, Seed: seed, WakeAll: false,
			Timeout: 20 * time.Second,
		}, func(a *sim.Agent) (sim.Outcome, error) {
			m, err := MapDraw(a)
			if err != nil {
				return sim.Outcome{}, err
			}
			if m.R() != 3 {
				return sim.Outcome{}, fmt.Errorf("saw %d home-bases", m.R())
			}
			return sim.Outcome{Role: sim.RoleDefeated}, nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, o := range res.Outcomes {
			if o.Role != sim.RoleDefeated {
				t.Fatalf("seed %d: agent %d never completed", seed, i)
			}
		}
	}
}

func TestFromTwinsRejectsBadWiring(t *testing.T) {
	// Self-twin.
	if _, err := graph.FromTwins([][][2]int{{{0, 0}}}); err == nil {
		t.Error("self-twin accepted")
	}
	// Non-involution.
	if _, err := graph.FromTwins([][][2]int{{{1, 0}}, {{0, 0}, {0, 0}}}); err == nil {
		t.Error("non-involution accepted")
	}
	// Valid K2.
	g, err := graph.FromTwins([][][2]int{{{1, 0}}, {{0, 0}}})
	if err != nil || g.N() != 2 || g.M() != 1 {
		t.Errorf("K2 wiring rejected: %v", err)
	}
	// Valid loop.
	g, err = graph.FromTwins([][][2]int{{{0, 1}, {0, 0}}})
	if err != nil || g.M() != 1 || g.Deg(0) != 2 {
		t.Errorf("loop wiring rejected: %v", err)
	}
}
