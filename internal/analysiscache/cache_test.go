package analysiscache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/elect"
	"repro/internal/graph"
)

// TestCoalescing is the load-bearing singleflight proof: N concurrent
// requests for one instance trigger exactly one analyze call, with the
// joiners counted as coalesced.
func TestCoalescing(t *testing.T) {
	const n = 32
	var calls atomic.Int64
	gate := make(chan struct{})
	c := New(Config{
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			calls.Add(1)
			<-gate
			return &elect.Analysis{Sizes: []int{1}, GCD: 1}, nil
		},
	})
	g := graph.Cycle(12)
	homes := []int{0, 4, 8}

	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			an, _, err := c.Get(context.Background(), g, homes)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if an.GCD != 1 {
				t.Errorf("wrong analysis: %+v", an)
			}
			served.Add(1)
		}()
	}
	// Let every goroutine reach the cache before releasing the one compute.
	for c.Stats().Misses+c.Stats().Coalesced < n {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("analyze ran %d times for %d concurrent requests, want exactly 1", got, n)
	}
	if served.Load() != n {
		t.Fatalf("served %d of %d", served.Load(), n)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != n-1 {
		t.Fatalf("stats misses=%d coalesced=%d, want 1 and %d", s.Misses, s.Coalesced, n-1)
	}
}

func TestHitAfterCompletion(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			calls.Add(1)
			return &elect.Analysis{Sizes: []int{2, 2}, GCD: 2}, nil
		},
	})
	g := graph.Cycle(6)
	if _, hit, err := c.Get(context.Background(), g, []int{0, 3}); err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v", hit, err)
	}
	an, hit, err := c.Get(context.Background(), g, []int{3, 0}) // order-insensitive key
	if err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v", hit, err)
	}
	if an.GCD != 2 || calls.Load() != 1 {
		t.Fatalf("an=%+v calls=%d", an, calls.Load())
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestErrorsAreCached(t *testing.T) {
	var calls atomic.Int64
	wantErr := fmt.Errorf("analysis exploded")
	c := New(Config{
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			calls.Add(1)
			return nil, wantErr
		},
	})
	g := graph.Path(3)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Get(context.Background(), g, []int{0}); err != wantErr {
			t.Fatalf("Get %d: err=%v", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("error recomputed: %d calls", calls.Load())
	}
}

// TestEviction fills a tiny cache with distinct instances on one shard and
// checks the LRU keeps memory bounded and re-computes evicted entries.
func TestEviction(t *testing.T) {
	var calls atomic.Int64
	c := New(Config{
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			calls.Add(1)
			return &elect.Analysis{Sizes: []int{g.N()}, GCD: g.N()}, nil
		},
		MaxBytes: 2048,
		Shards:   1,
	})
	for n := 3; n < 40; n++ {
		if _, _, err := c.Get(context.Background(), graph.Cycle(n), []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions across 37 inserts into a 2KiB cache: %+v", s)
	}
	if s.SizeBytes > 2048 {
		t.Fatalf("resident size %d exceeds the byte budget", s.SizeBytes)
	}
	// The oldest instance was evicted; re-getting it recomputes.
	before := calls.Load()
	if _, hit, err := c.Get(context.Background(), graph.Cycle(3), []int{0}); err != nil || hit {
		t.Fatalf("evicted entry served as hit=%v err=%v", hit, err)
	}
	if calls.Load() != before+1 {
		t.Fatal("evicted entry did not recompute")
	}
}

func TestUnboundedWhenNegative(t *testing.T) {
	c := New(Config{
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			return &elect.Analysis{GCD: 1}, nil
		},
		MaxBytes: -1,
		Shards:   1,
	})
	for n := 3; n < 60; n++ {
		if _, _, err := c.Get(context.Background(), graph.Cycle(n), []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Evictions != 0 || s.Entries != 57 {
		t.Fatalf("negative MaxBytes must disable eviction: %+v", s)
	}
}

// TestWaiterCancellation: a coalesced waiter whose context dies returns
// promptly while the computation still completes for everyone else.
func TestWaiterCancellation(t *testing.T) {
	gate := make(chan struct{})
	c := New(Config{
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			<-gate
			return &elect.Analysis{GCD: 1}, nil
		},
	})
	g := graph.Cycle(9)
	go c.Get(context.Background(), g, []int{0}) // the computing caller
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Get(ctx, g, []int{0}); err != context.Canceled {
		t.Fatalf("canceled waiter got err=%v", err)
	}
	close(gate)
	// The result is still available to later callers.
	an, hit, err := c.Get(context.Background(), g, []int{0})
	if err != nil || an.GCD != 1 {
		t.Fatalf("post-cancel Get: an=%+v hit=%v err=%v", an, hit, err)
	}
}

func TestStructuralKey(t *testing.T) {
	a, b := graph.Cycle(6), graph.Cycle(6)
	if StructuralKey(a, []int{0, 2}) != StructuralKey(b, []int{2, 0}) {
		t.Fatal("same structure and homes must share a key")
	}
	if StructuralKey(a, []int{0, 2}) == StructuralKey(a, []int{0, 3}) {
		t.Fatal("different homes must not share a key")
	}
	if StructuralKey(a, []int{0, 2}) == StructuralKey(graph.Cycle(7), []int{0, 2}) {
		t.Fatal("different graphs must not share a key")
	}
	if StructuralKey(a, []int{0, 0, 2}) == StructuralKey(a, []int{0, 2}) {
		t.Fatal("home multiplicity must be part of the key")
	}
}

// TestCanonicalKeyIsomorphism: renumbered copies of one instance share a
// canonical key (the daemon's coalescing unit) while genuinely different
// placements do not.
func TestCanonicalKeyIsomorphism(t *testing.T) {
	g := graph.Cycle(8)
	// Rotate the cycle by 3: an isomorphism carrying homes {0,4} to {3,7}.
	perm := make([]int, 8)
	for i := range perm {
		perm[i] = (i + 3) % 8
	}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalKey(g, []int{0, 4}) != CanonicalKey(h, []int{3, 7}) {
		t.Fatal("isomorphic instances must share a canonical key")
	}
	if StructuralKey(g, []int{0, 4}) == StructuralKey(h, []int{3, 7}) {
		t.Fatal("sanity: the structural key is numbering-sensitive here")
	}
	if CanonicalKey(g, []int{0, 4}) == CanonicalKey(g, []int{0, 3}) {
		t.Fatal("antipodal vs adjacent homes must not share a canonical key")
	}
}

// TestRealAnalyzeDefault exercises the zero-config path against the real
// oracle: C6 with antipodal homes has gcd 2 (unsolvable).
func TestRealAnalyzeDefault(t *testing.T) {
	c := New(Config{})
	an, _, err := c.Get(context.Background(), graph.Cycle(6), []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if an.GCD != 2 {
		t.Fatalf("C6 antipodal gcd = %d, want 2", an.GCD)
	}
}

// TestAllWaitersCancelStopsCompute: when every waiter of an in-flight entry
// cancels, the computation's own context must be canceled, the entry
// dropped, and a later Get must recompute from scratch.
func TestAllWaitersCancelStopsCompute(t *testing.T) {
	var calls atomic.Int64
	computeCanceled := make(chan struct{})
	c := New(Config{
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // block until the cache cancels this compute
				close(computeCanceled)
				return nil, ctx.Err()
			}
			return &elect.Analysis{GCD: 7}, nil
		},
	})
	g := graph.Cycle(10)
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, g, []int{0})
		errs <- err
	}()
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errs; err != context.Canceled {
		t.Fatalf("sole waiter got err=%v, want context.Canceled", err)
	}
	select {
	case <-computeCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context was not canceled after the last waiter left")
	}
	// The canceled entry must not poison the key: a fresh Get recomputes.
	an, hit, err := c.Get(context.Background(), g, []int{0})
	if err != nil || hit || an.GCD != 7 {
		t.Fatalf("post-cancel recompute: an=%+v hit=%v err=%v", an, hit, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("analyze calls = %d, want 2 (canceled + recomputed)", got)
	}
}

// TestEntryCostTracksBackingArrays: the accounted size must charge the
// capacity of the Sizes backing array, not its length.
func TestEntryCostTracksBackingArrays(t *testing.T) {
	sizes := make([]int, 4, 1024)
	small := entryCost("k", &elect.Analysis{Sizes: sizes[:4:4]})
	big := entryCost("k", &elect.Analysis{Sizes: sizes})
	if big-small != 8*(1024-4) {
		t.Fatalf("cost delta = %d, want %d (cap-based accounting)", big-small, 8*(1024-4))
	}
}
