package faults

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// The built-in fault strategy names, in sweep order. Each is a
// deterministic function of its seed and the run's injection-point
// sequence, so the same (instance, schedule strategy, seed, fault strategy)
// always injects the same plan.
const (
	// FaultCrashFrontrunner crash-stops the agent that has consumed the
	// most sequence points so far — the one leading the race — once the run
	// is warm. Seed parity decides whether the lock is abandoned.
	FaultCrashFrontrunner = "crash-frontrunner"
	// FaultCrashNodeReduce crash-stops an agent at a seed-chosen sequence
	// point inside the NODE-REDUCE phase, the stage whose exact-count races
	// are most sensitive to a participant vanishing.
	FaultCrashNodeReduce = "crash-node-reduce"
	// FaultCrashLockholder crash-stops a seed-chosen agent early, always
	// abandoning its node lock — the dedicated probe for the stall-and-
	// takeover recovery path.
	FaultCrashLockholder = "crash-lockholder"
	// FaultTornHomebase tears a seed-chosen sign write landing on a
	// home-base whiteboard, crash-stopping the writer mid-access.
	FaultTornHomebase = "torn-homebase"
	// FaultStaleReads injects bounded read staleness on a seed-chosen
	// subset of Wait predicate checks; no agent crashes.
	FaultStaleReads = "stale-reads"
)

// maker builds the decision function of a named strategy.
type maker func(seed int64, r int, homes []int) func(sim.FaultPoint) sim.FaultAction

var registry = map[string]maker{
	FaultCrashFrontrunner: crashFrontrunner,
	FaultCrashNodeReduce:  crashNodeReduce,
	FaultCrashLockholder:  crashLockholder,
	FaultTornHomebase:     tornHomebase,
	FaultStaleReads:       staleReads,
}

// Strategies returns the built-in fault strategy names in sweep order.
func Strategies() []string {
	return []string{
		FaultCrashFrontrunner, FaultCrashNodeReduce, FaultCrashLockholder,
		FaultTornHomebase, FaultStaleReads,
	}
}

// New builds a recording injector for the named strategy. r is the agent
// count and homes the home-base nodes of the instance (strategies that do
// not target homes ignore them). Unknown names list the registry.
func New(name string, seed int64, r int, homes []int) (*Injector, error) {
	mk, ok := registry[name]
	if !ok {
		known := Strategies()
		sort.Strings(known)
		return nil, fmt.Errorf("faults: unknown fault strategy %q (have %v)", name, known)
	}
	if r <= 0 {
		r = 1
	}
	return &Injector{name: name, decide: mk(seed, r, homes)}, nil
}

// ParseNames expands a comma-free list of fault strategy names, with "all"
// meaning every built-in. Validation happens in New.
func ParseNames(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n == "all" {
			out = append(out, Strategies()...)
			continue
		}
		out = append(out, n)
	}
	return out
}

// split64 folds a seed into small deterministic knobs without pulling in
// math/rand (one fault per run needs no stream).
func split64(seed int64) uint64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// crashFrontrunner waits until warmupPoints sequence points have elapsed
// globally, then kills the first stepping agent that is (one of) the
// busiest so far.
func crashFrontrunner(seed int64, r int, _ []int) func(sim.FaultPoint) sim.FaultAction {
	h := split64(seed)
	warmup := 16 + int(h%48)
	hold := h&1 == 1
	counts := make([]int, r)
	total, done := 0, false
	return func(p sim.FaultPoint) sim.FaultAction {
		if done || p.Op != sim.FaultStep || p.Agent >= r {
			return sim.FaultAction{}
		}
		counts[p.Agent]++
		total++
		if total < warmup {
			return sim.FaultAction{}
		}
		for _, c := range counts {
			if c > counts[p.Agent] {
				return sim.FaultAction{} // someone else is further ahead
			}
		}
		done = true
		return sim.FaultAction{Crash: true, HoldLock: hold}
	}
}

// crashNodeReduce kills the agent hitting the k-th sequence point whose
// declared phase is NODE-REDUCE. Instances that never reach the phase (the
// gcd drops to 1 earlier, or the run fails before) inject nothing — an
// empty plan is a valid manifest.
func crashNodeReduce(seed int64, _ int, _ []int) func(sim.FaultPoint) sim.FaultAction {
	h := split64(seed)
	k := int(h % 24)
	hold := (h>>8)&1 == 1
	seen, done := 0, false
	return func(p sim.FaultPoint) sim.FaultAction {
		if done || p.Op != sim.FaultStep || p.Phase != telemetry.PhaseNodeReduce {
			return sim.FaultAction{}
		}
		seen++
		if seen <= k {
			return sim.FaultAction{}
		}
		done = true
		return sim.FaultAction{Crash: true, HoldLock: hold}
	}
}

// crashLockholder kills a fixed agent at a fixed (seed-chosen) early point
// of its own, always abandoning the lock.
func crashLockholder(seed int64, r int, _ []int) func(sim.FaultPoint) sim.FaultAction {
	h := split64(seed)
	victim := int(h % uint64(r))
	at := 2 + int((h>>16)%12)
	done := false
	return func(p sim.FaultPoint) sim.FaultAction {
		if done || p.Op != sim.FaultStep || p.Agent != victim || p.Index < at {
			return sim.FaultAction{}
		}
		done = true
		return sim.FaultAction{Crash: true, HoldLock: true}
	}
}

// tornHomebase tears the k-th sign write landing on any home-base
// whiteboard, keeping roughly half the tag.
func tornHomebase(seed int64, _ int, homes []int) func(sim.FaultPoint) sim.FaultAction {
	h := split64(seed)
	k := int(h % 12)
	hold := (h>>4)&1 == 1
	home := make(map[int]bool, len(homes))
	for _, n := range homes {
		home[n] = true
	}
	seen, done := 0, false
	return func(p sim.FaultPoint) sim.FaultAction {
		if done || p.Op != sim.FaultWrite || !home[p.Node] {
			return sim.FaultAction{}
		}
		seen++
		if seen <= k {
			return sim.FaultAction{}
		}
		done = true
		return sim.FaultAction{Torn: true, Keep: len(p.Tag) / 2, HoldLock: hold}
	}
}

// staleReads stalls every stride-th Wait predicate check by a small
// seed-chosen number of sequence points, capped so plans stay bounded.
func staleReads(seed int64, _ int, _ []int) func(sim.FaultPoint) sim.FaultAction {
	h := split64(seed)
	stride := 3 + int(h%5)
	stall := 1 + int((h>>8)%3)
	const capEvents = 32
	seen, injected := 0, 0
	return func(p sim.FaultPoint) sim.FaultAction {
		if p.Op != sim.FaultRead || injected >= capEvents {
			return sim.FaultAction{}
		}
		seen++
		if seen%stride != 0 {
			return sim.FaultAction{}
		}
		injected++
		return sim.FaultAction{StallReads: stall}
	}
}
