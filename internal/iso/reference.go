package iso

// This file freezes the repo's original (pre-optimization) canonical
// labeling engine: map/string/fmt-based equitable refinement and a
// backtracking search without best-word prefix pruning, with the original
// quadratic stabilizer-orbit pruning. It exists for two reasons:
//
//   - differential testing: the optimized engine's canonical words are
//     cross-checked against this one (see reference_test.go), and
//   - the perf trajectory: cmd/benchiso measures the optimized engine's
//     speedup against it and records both in BENCH_iso.json.
//
// The only change from the original is that leaf words use the shared
// word serialization (the growing-principal-submatrix layout of
// Colored.word), so the two engines' words are directly comparable. The
// serialization is a negligible fraction of the original engine's runtime —
// its cost is dominated by the fmt/map/string refinement — so reference
// timings remain honest pre-optimization timings.
//
// Both engines order the subcells of a refinement split by vertex
// signature; the original compares signatures as formatted decimal strings
// while the optimized engine compares them numerically. The two orders
// coincide whenever every signature count has a single decimal digit
// (counts are bounded by vertex degrees), which covers every graph in this
// repository's workloads; on such graphs the engines produce identical
// canonical words.

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/perm"
)

// refPartition is an ordered partition of the vertex set into cells.
type refPartition struct {
	cells [][]int
}

func (p *refPartition) clone() *refPartition {
	q := &refPartition{cells: make([][]int, len(p.cells))}
	for i, c := range p.cells {
		q.cells[i] = append([]int(nil), c...)
	}
	return q
}

func (p *refPartition) discrete() bool {
	for _, c := range p.cells {
		if len(c) > 1 {
			return false
		}
	}
	return true
}

// refInitialPartition groups vertices by color, cells ordered by color value.
func refInitialPartition(c *Colored) *refPartition {
	byColor := make(map[int][]int)
	var colors []int
	for v := 0; v < c.N; v++ {
		if _, ok := byColor[c.Color[v]]; !ok {
			colors = append(colors, c.Color[v])
		}
		byColor[c.Color[v]] = append(byColor[c.Color[v]], v)
	}
	sort.Ints(colors)
	p := &refPartition{}
	for _, col := range colors {
		p.cells = append(p.cells, byColor[col])
	}
	return p
}

// refRefine is the original equitable refinement: repeatedly split cells by
// the vector, over all current cells, of (out-multiplicity into the cell,
// in-multiplicity from the cell), with signatures built by fmt into strings
// and subcells ordered by string sort.
func refRefine(c *Colored, p *refPartition) *refPartition {
	cur := p.clone()
	for {
		// Compute, for each vertex, its signature relative to cur.
		sig := make(map[int]string, c.N)
		var buf bytes.Buffer
		for _, cell := range cur.cells {
			for _, v := range cell {
				buf.Reset()
				for _, other := range cur.cells {
					out, in := 0, 0
					for _, u := range other {
						out += c.Adj[v][u]
						in += c.Adj[u][v]
					}
					fmt.Fprintf(&buf, "%d,%d;", out, in)
				}
				sig[v] = buf.String()
			}
		}
		next := &refPartition{}
		split := false
		for _, cell := range cur.cells {
			groups := make(map[string][]int)
			var keys []string
			for _, v := range cell {
				s := sig[v]
				if _, ok := groups[s]; !ok {
					keys = append(keys, s)
				}
				groups[s] = append(groups[s], v)
			}
			if len(keys) > 1 {
				split = true
			}
			sort.Strings(keys)
			for _, k := range keys {
				next.cells = append(next.cells, groups[k])
			}
		}
		cur = next
		if !split {
			return cur
		}
	}
}

// refIndividualize returns the partition with v pulled out of its cell as a
// preceding singleton.
func refIndividualize(p *refPartition, v int) *refPartition {
	q := &refPartition{}
	for _, cell := range p.cells {
		idx := -1
		for i, u := range cell {
			if u == v {
				idx = i
				break
			}
		}
		if idx < 0 {
			q.cells = append(q.cells, append([]int(nil), cell...))
			continue
		}
		q.cells = append(q.cells, []int{v})
		rest := make([]int, 0, len(cell)-1)
		rest = append(rest, cell[:idx]...)
		rest = append(rest, cell[idx+1:]...)
		if len(rest) > 0 {
			q.cells = append(q.cells, rest)
		}
	}
	return q
}

// refPermFromDiscrete converts a discrete partition to the permutation
// sending each vertex to its cell position.
func refPermFromDiscrete(p *refPartition, n int) perm.Perm {
	out := make(perm.Perm, n)
	for pos, cell := range p.cells {
		out[cell[0]] = pos
	}
	return out
}

type refCanonState struct {
	c     *Colored
	best  []byte
	bperm perm.Perm
	autos []perm.Perm
	// base is the stack of individualized vertices on the current path.
	base []int
}

// referenceCanonical is the frozen original engine behind Canonical; see
// the file comment. ReferenceCanonical is its exported face.
func referenceCanonical(c *Colored) *Result {
	if c.N == 0 {
		return &Result{Perm: perm.Perm{}, Word: []byte{}}
	}
	st := &refCanonState{c: c}
	st.search(refRefine(c, refInitialPartition(c)))
	return &Result{Perm: st.bperm, Word: st.best, AutoGens: st.autos}
}

// ReferenceCanonical computes a canonical form of c with the frozen
// pre-optimization engine. Differential tests and the perf-trajectory
// benchmarks (cmd/benchiso, BENCH_iso.json) compare it against Canonical.
func ReferenceCanonical(c *Colored) *Result { return referenceCanonical(c) }

func (st *refCanonState) search(p *refPartition) {
	if p.discrete() {
		cand := refPermFromDiscrete(p, st.c.N)
		w := st.c.word(cand)
		switch {
		case st.best == nil || bytes.Compare(w, st.best) < 0:
			st.best = w
			st.bperm = cand
		case bytes.Equal(w, st.best):
			// cand and bperm induce the same canonical graph, so
			// bperm⁻¹∘cand is an automorphism of c.
			a := cand.Compose(st.bperm.Inverse())
			if !a.IsIdentity() && st.c.IsAutomorphism(a) {
				st.autos = append(st.autos, a)
			}
		}
		return
	}
	// Branch on the first smallest non-singleton cell.
	target := -1
	for i, cell := range p.cells {
		if len(cell) > 1 {
			if target == -1 || len(cell) < len(p.cells[target]) {
				target = i
			}
		}
	}
	cell := p.cells[target]

	// Orbit pruning: among the automorphisms discovered so far, keep the
	// ones fixing every vertex of the current base pointwise; two cell
	// vertices in the same orbit of that stabilizer lead to identical
	// subtrees, so explore one representative per orbit.
	tried := make([]int, 0, len(cell))
	for _, v := range cell {
		if st.inStabOrbitOfTried(v, tried) {
			continue
		}
		tried = append(tried, v)
		st.base = append(st.base, v)
		st.search(refRefine(st.c, refIndividualize(p, v)))
		st.base = st.base[:len(st.base)-1]
	}
}

// inStabOrbitOfTried reports whether some already-tried vertex maps to v
// under the subgroup of discovered automorphisms that fix the current base.
func (st *refCanonState) inStabOrbitOfTried(v int, tried []int) bool {
	if len(tried) == 0 || len(st.autos) == 0 {
		return false
	}
	var stab []perm.Perm
	for _, a := range st.autos {
		ok := true
		for _, b := range st.base {
			if a[b] != b {
				ok = false
				break
			}
		}
		if ok {
			stab = append(stab, a)
		}
	}
	if len(stab) == 0 {
		return false
	}
	// BFS the orbit of v under stab (and inverses).
	seen := map[int]bool{v: true}
	queue := []int{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, t := range tried {
			if x == t {
				return true
			}
		}
		for _, a := range stab {
			for _, y := range []int{a[x], a.Inverse()[x]} {
				if !seen[y] {
					seen[y] = true
					queue = append(queue, y)
				}
			}
		}
	}
	return false
}
