package elect

import (
	"testing"

	"repro/internal/graph"
)

func TestGatherOnSolvableInstances(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		homes []int
	}{
		{"C6-dist2", graph.Cycle(6), []int{0, 2}},
		{"star-3leaves", graph.Star(4), []int{1, 2, 3}},
		{"Q3-three", graph.Hypercube(3), []int{0, 1, 3}},
		{"wheel-rim", graph.Wheel(5), []int{1, 3}},
		{"path5-single", graph.Path(5), []int{2}},
		{"random", graph.RandomConnected(9, 5, 21), []int{0, 4, 7}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				res := run(t, c.g, c.homes, seed, false, Gather(Options{}))
				// Success of the run means every agent reached the
				// rendezvous node and saw all r gathered stamps (the
				// protocol blocks until then); the roles must still form
				// a valid election outcome.
				if !res.AgreedLeader() {
					t.Fatalf("seed %d: gathering without agreed leader: %+v", seed, res.Outcomes)
				}
			}
		})
	}
}

func TestGatherReportsUnsolvable(t *testing.T) {
	res := run(t, graph.Cycle(6), []int{0, 3}, 5, false, Gather(Options{}))
	if !res.AllUnsolvable() {
		t.Fatalf("expected unsolvable, got %+v", res.Outcomes)
	}
	res = run(t, graph.Path(2), []int{0, 1}, 5, false, Gather(Options{}))
	if !res.AllUnsolvable() {
		t.Fatalf("K2: expected unsolvable, got %+v", res.Outcomes)
	}
}

func TestGatherMovesBounded(t *testing.T) {
	// Gathering adds at most one diameter walk per agent on top of ELECT.
	g := graph.Cycle(12)
	homes := []int{0, 3}
	resElect := run(t, g, homes, 2, false, Elect(Options{}))
	resGather := run(t, g, homes, 2, false, Gather(Options{}))
	extra := resGather.TotalMoves() - resElect.TotalMoves()
	bound := int64(len(homes) * 2 * g.N())
	if extra < 0 || extra > bound {
		t.Errorf("gathering overhead %d moves, want 0..%d", extra, bound)
	}
}
