package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Strategy is a pluggable scheduling adversary. When sim.Config.Scheduler is
// set, the engine serializes the run: agents execute one at a time between
// sequence points (a move, a whiteboard access, a wait re-check), and the
// strategy picks which ready agent steps next. Because exactly one agent runs
// between picks, the whole simulation becomes a deterministic function of
// (Config.Seed, grant sequence) — which is what makes recorded schedules
// replayable (see Replay) and lets internal/adversary search the schedule
// space for invariant violations.
//
// The ready slice is sorted ascending, non-empty, and freshly allocated per
// call (strategies may retain it). Next must return one of its elements; an
// out-of-set pick is corrected to ready[0] by the engine (and counted as a
// divergence by Replay), so a buggy or fuzz-mutated strategy degrades to a
// legal schedule instead of wedging the run.
type Strategy interface {
	// Next picks the agent to grant the next step. step is the number of
	// grants issued so far in this run (0 for the first decision).
	Next(ready []int, step int) int
}

// StrategyFunc adapts a plain function to the Strategy interface.
type StrategyFunc func(ready []int, step int) int

// Next calls f.
func (f StrategyFunc) Next(ready []int, step int) int { return f(ready, step) }

// Schedule is the decision log of a strategy-driven run: the sequence of
// agent indices in grant order. Together with the run's Config (graph, homes,
// seed, protocol) it pins down the entire execution, so a violating run found
// by the adversary explorer can be replayed deterministically.
type Schedule struct {
	// Grants[i] is the agent granted the i-th step.
	Grants []int32
}

// Len returns the number of recorded grants.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Grants)
}

// Encode serializes the log compactly: one uvarint per grant. Small agent
// indices (the common case) cost one byte per decision.
func (s *Schedule) Encode() []byte {
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, s.Len()+8)
	for _, g := range s.Grants {
		n := binary.PutUvarint(buf[:], uint64(g))
		out = append(out, buf[:n]...)
	}
	return out
}

// DecodeSchedule parses an Encode-format decision log. It accepts any
// well-formed uvarint stream (fuzz-mutated logs decode to some schedule or
// fail cleanly) but rejects grants that cannot be agent indices.
func DecodeSchedule(data []byte) (*Schedule, error) {
	s := &Schedule{}
	for len(data) > 0 {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errors.New("sim: truncated schedule encoding")
		}
		if v > 1<<30 {
			return nil, fmt.Errorf("sim: implausible agent index %d in schedule", v)
		}
		s.Grants = append(s.Grants, int32(v))
		data = data[n:]
	}
	return s, nil
}

// ReplayStrategy re-issues a recorded grant sequence. As long as the run it
// drives has the same configuration as the recording (graph, homes, seed,
// protocol, options), every wanted agent is ready when its turn comes and the
// replayed run is step-for-step identical to the recorded one (the replay
// round-trip test asserts identical event streams). When the log diverges —
// a mutated log, or a different binary — the wanted agent may not be ready;
// the strategy then skips that entry, falls back to the lowest ready agent,
// and counts the divergence. An exhausted log also falls back to lowest-ready.
type ReplayStrategy struct {
	log         []int32
	pos         int
	divergences int
}

// Replay returns a strategy that re-issues the recorded schedule.
func Replay(s *Schedule) *ReplayStrategy {
	if s == nil {
		return &ReplayStrategy{}
	}
	return &ReplayStrategy{log: s.Grants}
}

// Next implements Strategy.
func (r *ReplayStrategy) Next(ready []int, step int) int {
	for r.pos < len(r.log) {
		want := int(r.log[r.pos])
		r.pos++
		for _, a := range ready {
			if a == want {
				return a
			}
		}
		r.divergences++
	}
	return ready[0]
}

// Divergences reports how many log entries named an agent that was not ready
// (0 for a faithful replay of an unmodified recording).
func (r *ReplayStrategy) Divergences() int { return r.divergences }

// ErrDeadlock is returned by Run when a strategy-driven schedule reaches a
// state where every live agent is blocked in Wait — no grant can make
// progress. A correct protocol never deadlocks on a legal input, so this is
// itself a reportable protocol violation, not an adversary artifact:
// strategies only choose among ready agents and cannot manufacture one.
var ErrDeadlock = errors.New("sim: schedule deadlock (every live agent is blocked)")

// Per-agent turnstile states.
const (
	agStarting = iota // goroutine launched, not yet at its first sequence point
	agReady           // requested a step, awaiting grant
	agRunning         // granted; executing up to its next sequence point
	agBlocked         // parked in Wait on an unsatisfied predicate
	agDone            // protocol returned
)

// turnstile serializes a strategy-driven run. Exactly one agent is agRunning
// at any time; it keeps the turn from its grant until its next call into the
// turnstile (step, block, or exit), at which point the strategy picks the
// next agent from the ready set. Grants are issued only after every agent has
// reached its first sequence point (the startup barrier), so the first
// decision's ready set does not depend on goroutine startup timing.
type turnstile struct {
	mu       sync.Mutex
	cond     *sync.Cond
	strategy Strategy
	rec      *Schedule

	state     []int
	blockedOn []int // node an agBlocked agent is parked on
	nsteps    int
	aborted   bool
	deadlock  bool
}

func newTurnstile(n int, strategy Strategy, rec *Schedule) *turnstile {
	ts := &turnstile{
		strategy:  strategy,
		rec:       rec,
		state:     make([]int, n),
		blockedOn: make([]int, n),
	}
	ts.cond = sync.NewCond(&ts.mu)
	for i := range ts.state {
		ts.state[i] = agStarting
	}
	return ts
}

// step is the sequence point: the agent gives up its current turn (if any),
// declares itself ready, and waits to be granted the next one.
func (ts *turnstile) step(agent int) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.aborted {
		return ErrAborted
	}
	ts.state[agent] = agReady
	ts.scheduleLocked()
	for ts.state[agent] != agRunning {
		if ts.aborted {
			return ErrAborted
		}
		ts.cond.Wait()
	}
	return nil
}

// block parks the agent on a board whose wait predicate is unsatisfied. It
// returns once the agent is re-granted a turn after a write dirtied that
// board (the caller re-checks the predicate), or fails on abort/deadlock.
func (ts *turnstile) block(agent, node int) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.aborted {
		return ErrAborted
	}
	ts.state[agent] = agBlocked
	ts.blockedOn[agent] = node
	ts.scheduleLocked()
	for ts.state[agent] != agRunning {
		if ts.aborted {
			return ErrAborted
		}
		ts.cond.Wait()
	}
	return nil
}

// exit retires the agent (protocol returned or errored) and passes the turn.
func (ts *turnstile) exit(agent int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.state[agent] = agDone
	ts.scheduleLocked()
}

// notifyBoard readies every agent blocked on the node. Called by the running
// agent (under the board lock) when a write dirties the board; the readied
// agents re-check their predicates when the strategy next grants them.
func (ts *turnstile) notifyBoard(node int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for a, st := range ts.state {
		if st == agBlocked && ts.blockedOn[a] == node {
			ts.state[a] = agReady
		}
	}
}

// abort releases every parked agent; they observe ErrAborted.
func (ts *turnstile) abort() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.aborted = true
	ts.cond.Broadcast()
}

func (ts *turnstile) deadlocked() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.deadlock
}

// scheduleLocked issues the next grant if no agent is running and the
// startup barrier has cleared. Called with ts.mu held at every turn end.
func (ts *turnstile) scheduleLocked() {
	if ts.aborted {
		ts.cond.Broadcast()
		return
	}
	var ready []int
	blocked := 0
	for a, st := range ts.state {
		switch st {
		case agStarting, agRunning:
			return // barrier not cleared, or a turn is still outstanding
		case agReady:
			ready = append(ready, a)
		case agBlocked:
			blocked++
		}
	}
	if len(ready) == 0 {
		if blocked > 0 {
			// Nobody can be granted and nobody running will ever wake the
			// blocked agents: the schedule is wedged.
			ts.deadlock = true
			ts.aborted = true
		}
		ts.cond.Broadcast()
		return
	}
	pick := ts.strategy.Next(ready, ts.nsteps)
	ok := false
	for _, a := range ready {
		if a == pick {
			ok = true
			break
		}
	}
	if !ok {
		pick = ready[0]
	}
	ts.state[pick] = agRunning
	ts.nsteps++
	if ts.rec != nil {
		ts.rec.Grants = append(ts.rec.Grants, int32(pick))
	}
	ts.cond.Broadcast()
}
