package order

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/iso"
)

func blackCols(n int, idx ...int) []int {
	c := make([]int, n)
	for _, i := range idx {
		c[i] = 1
	}
	return c
}

func TestSurroundingBasics(t *testing.T) {
	// P3 from the middle: arcs point outward from node 1.
	g := graph.Path(3)
	s := Surrounding(g, nil, 1)
	if s.Adj[1][0] != 1 || s.Adj[1][2] != 1 {
		t.Error("middle node should have outward arcs")
	}
	if s.Adj[0][1] != 0 || s.Adj[2][1] != 0 {
		t.Error("no inward arcs expected at the root")
	}
	// From an end: chain of arcs.
	s = Surrounding(g, nil, 0)
	if s.Adj[0][1] != 1 || s.Adj[1][2] != 1 || s.Adj[1][0] != 0 || s.Adj[2][1] != 0 {
		t.Error("surrounding from end should be a directed path")
	}
}

func TestSurroundingRootUniqueInDegreeZero(t *testing.T) {
	gs := []*graph.Graph{
		graph.Cycle(6), graph.Petersen(), graph.Hypercube(3),
		graph.Star(4), graph.RandomConnected(10, 6, 21),
	}
	for _, g := range gs {
		for u := 0; u < g.N(); u++ {
			s := Surrounding(g, nil, u)
			for v := 0; v < g.N(); v++ {
				in := 0
				for x := 0; x < g.N(); x++ {
					if x != v {
						in += s.Adj[x][v]
					}
				}
				if (in == 0) != (v == u) {
					t.Fatalf("%v: node %d has in-degree %d in S(%d)", g, v, in, u)
				}
			}
		}
	}
}

func TestSurroundingEquidistantEdgesBidirectional(t *testing.T) {
	// C4 from node 0: nodes 1 and 3 are at distance 1; node 2 at distance
	// 2. Edge {1,2}: d(0,1)=1 < d(0,2)=2, arc 1->2 only.
	g := graph.Cycle(4)
	s := Surrounding(g, nil, 0)
	if s.Adj[1][2] != 1 || s.Adj[2][1] != 0 {
		t.Error("edge {1,2} should be directed 1->2")
	}
	// C5 from 0: nodes 2,3 both at distance 2, edge {2,3} bidirectional.
	g = graph.Cycle(5)
	s = Surrounding(g, nil, 0)
	if s.Adj[2][3] != 1 || s.Adj[3][2] != 1 {
		t.Error("equidistant edge {2,3} should be bidirectional")
	}
}

func TestLemma31EquivalenceViaSurroundings(t *testing.T) {
	// u ~ v (automorphism orbit) iff S(u) ≅ S(v) — the two computations of
	// the classes must agree.
	type tc struct {
		g      *graph.Graph
		colors []int
	}
	cases := []tc{
		{graph.Cycle(6), blackCols(6, 0, 3)},
		{graph.Cycle(6), blackCols(6, 0, 2)},
		{graph.Petersen(), blackCols(10, 0, 1)},
		{graph.Path(5), blackCols(5, 0)},
		{graph.Star(4), blackCols(5, 1)},
		{graph.Hypercube(3), blackCols(8, 0, 7)},
		{graph.RandomConnected(9, 4, 33), blackCols(9, 2, 5)},
	}
	for ci, c := range cases {
		orbits := iso.Orbits(iso.FromGraph(c.g, c.colors))
		classOf := make([]int, c.g.N())
		for i, o := range orbits {
			for _, v := range o {
				classOf[v] = i
			}
		}
		words := make([][]byte, c.g.N())
		for v := 0; v < c.g.N(); v++ {
			words[v] = iso.CanonicalWord(Surrounding(c.g, c.colors, v))
		}
		for u := 0; u < c.g.N(); u++ {
			for v := u + 1; v < c.g.N(); v++ {
				same := string(words[u]) == string(words[v])
				if same != (classOf[u] == classOf[v]) {
					t.Errorf("case %d: nodes %d,%d: surroundings equal=%v, orbits equal=%v",
						ci, u, v, same, classOf[u] == classOf[v])
				}
			}
		}
	}
}

func TestComputeAndOrderCycleAntipodal(t *testing.T) {
	colors := blackCols(6, 0, 3)
	for _, ord := range []Ordering{Direct, Hairs} {
		o := ComputeAndOrder(graph.Cycle(6), colors, ord)
		// Classes: blacks {0,3}, then whites {1,2,4,5} (all equivalent).
		if len(o.Classes) != 2 {
			t.Fatalf("ordering %v: classes %v", ord, o.Classes)
		}
		if o.NumBlack != 1 {
			t.Fatalf("ordering %v: NumBlack=%d, want 1", ord, o.NumBlack)
		}
		if len(o.Classes[0]) != 2 || len(o.Classes[1]) != 4 {
			t.Fatalf("ordering %v: sizes %v", ord, o.Sizes())
		}
		if o.GCD() != 2 {
			t.Fatalf("ordering %v: gcd %d, want 2", ord, o.GCD())
		}
		if o.Tied {
			t.Fatalf("ordering %v: unexpected tie", ord)
		}
	}
}

func TestComputeAndOrderPetersen(t *testing.T) {
	colors := blackCols(10, 0, 1)
	o := ComputeAndOrder(graph.Petersen(), colors, Direct)
	if len(o.Classes) != 3 || o.NumBlack != 1 {
		t.Fatalf("classes %v NumBlack=%d", o.Classes, o.NumBlack)
	}
	if len(o.Classes[0]) != 2 {
		t.Fatalf("black class %v", o.Classes[0])
	}
	if o.GCD() != 2 {
		t.Fatalf("gcd %d, want 2 (the Figure 5 counterexample)", o.GCD())
	}
}

func TestOrderIsIsomorphismInvariant(t *testing.T) {
	// Relabeling the graph must not change the ordered class structure
	// (sizes, keys) — this is what lets every agent agree on ≺ from its
	// own map.
	rng := rand.New(rand.NewSource(41))
	g := graph.Petersen()
	colors := blackCols(10, 0, 1)
	for _, ord := range []Ordering{Direct, Hairs} {
		base := ComputeAndOrder(g, colors, ord)
		for trial := 0; trial < 3; trial++ {
			p := rng.Perm(10)
			h, err := g.Relabel(p)
			if err != nil {
				t.Fatal(err)
			}
			ncols := make([]int, 10)
			for v, c := range colors {
				ncols[p[v]] = c
			}
			o := ComputeAndOrder(h, ncols, ord)
			if len(o.Classes) != len(base.Classes) {
				t.Fatalf("ordering %v: class count changed", ord)
			}
			for i := range o.Classes {
				if len(o.Classes[i]) != len(base.Classes[i]) {
					t.Errorf("ordering %v: class %d size changed", ord, i)
				}
				if base.Keys[i].Compare(o.Keys[i]) != 0 {
					t.Errorf("ordering %v: class %d key changed under relabeling", ord, i)
				}
				// The class as a physical set must be the p-image.
				want := map[int]bool{}
				for _, v := range base.Classes[i] {
					want[p[v]] = true
				}
				for _, v := range o.Classes[i] {
					if !want[v] {
						t.Errorf("ordering %v: class %d not the relabeled image", ord, i)
					}
				}
			}
		}
	}
}

func TestNoTiesForEquivalenceClasses(t *testing.T) {
	// Lemma 3.1: distinct equivalence classes always get distinct keys.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(6)
		g := graph.RandomConnected(n, rng.Intn(5), rng.Int63())
		colors := make([]int, n)
		for k := 0; k < 1+rng.Intn(3); k++ {
			colors[rng.Intn(n)] = 1
		}
		for _, ord := range []Ordering{Direct, Hairs} {
			o := ComputeAndOrder(g, colors, ord)
			if o.Tied {
				t.Errorf("trial %d ordering %v: tie between distinct equivalence classes (classes %v)",
					trial, ord, o.Classes)
			}
		}
	}
}

func TestOrderClassesDetectsTies(t *testing.T) {
	// The Section 4 corner: C4 with adjacent blacks, singleton translation
	// classes {0},{1},{2},{3}. Nodes 0,1 are equivalent, so their keys tie.
	g := graph.Cycle(4)
	colors := blackCols(4, 0, 1)
	classes := [][]int{{0}, {1}, {2}, {3}}
	o := OrderClasses(g, colors, classes, Direct)
	if !o.Tied {
		t.Fatal("expected tie between singleton classes {0} and {1}")
	}
	if o.NumBlack != 2 {
		t.Fatalf("NumBlack=%d, want 2", o.NumBlack)
	}
}

func TestHairLength(t *testing.T) {
	// A path P4 as a symmetric digraph has hairs of length 3 from both
	// ends... each endpoint walk: 0-1-2-3 is maximal with interior degree
	// 2, so max hair length is 3.
	g := graph.Path(4)
	c := iso.FromGraph(g, nil)
	if got := maxHairLength(c); got != 3 {
		t.Errorf("P4 hair length %d, want 3", got)
	}
	// A cycle has no degree-1 node: hair length 0.
	if got := maxHairLength(iso.FromGraph(graph.Cycle(5), nil)); got != 0 {
		t.Errorf("C5 hair length %d, want 0", got)
	}
	// A star K_{1,3}: hairs of length 1.
	if got := maxHairLength(iso.FromGraph(graph.Star(3), nil)); got != 1 {
		t.Errorf("star hair length %d, want 1", got)
	}
}

func TestHatTransformDistinguishesColorings(t *testing.T) {
	// Two different bicolorings of C6 must hat-transform to non-isomorphic
	// uni-colored digraphs.
	g := graph.Cycle(6)
	a := iso.FromGraph(g, blackCols(6, 0, 3))
	b := iso.FromGraph(g, blackCols(6, 0, 2))
	ka := SurroundingKey(a, Hairs)
	kb := SurroundingKey(b, Hairs)
	if ka.Compare(kb) == 0 {
		t.Error("hair keys fail to distinguish different bicolorings")
	}
	// And isomorphic bicolorings must agree.
	c := iso.FromGraph(g, blackCols(6, 1, 4)) // rotation of {0,3}
	kc := SurroundingKey(c, Hairs)
	if ka.Compare(kc) != 0 {
		t.Error("hair keys differ on isomorphic bicolorings")
	}
}

func TestKeyCompareTotalOrder(t *testing.T) {
	ks := []Key{
		{N: 3, Hair: 0, Word: []byte{1}},
		{N: 3, Hair: 1, Word: []byte{0}},
		{N: 4, Hair: 0, Word: []byte{0}},
		{N: 3, Hair: 0, Word: []byte{2}},
	}
	for i := range ks {
		for j := range ks {
			cij, cji := ks[i].Compare(ks[j]), ks[j].Compare(ks[i])
			if cij != -cji {
				t.Fatalf("antisymmetry violated at %d,%d", i, j)
			}
			if i == j && cij != 0 {
				t.Fatalf("reflexivity violated at %d", i)
			}
		}
	}
	// Transitivity spot check on a sorted chain.
	if !(ks[0].Compare(ks[3]) < 0 && ks[3].Compare(ks[1]) < 0 && ks[1].Compare(ks[2]) < 0) {
		t.Fatal("expected chain order (3,0,w1) < (3,0,w2) < (3,1,*) < (4,*,*)")
	}
}

func TestGCDHelper(t *testing.T) {
	o := &Ordered{Classes: [][]int{{0, 1}, {2, 3, 4, 5}, {6, 7}}}
	if o.GCD() != 2 {
		t.Fatalf("gcd %d", o.GCD())
	}
	o = &Ordered{Classes: [][]int{{0, 1, 2}, {3, 4}}}
	if o.GCD() != 1 {
		t.Fatalf("gcd %d", o.GCD())
	}
}
