package elect

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestNavigatorPrimitives(t *testing.T) {
	g := graph.Petersen()
	res, err := sim.Run(sim.Config{
		Graph: g, Homes: []int{0, 5}, Seed: 21, WakeAll: true,
	}, func(a *sim.Agent) (sim.Outcome, error) {
		m, err := MapDraw(a)
		if err != nil {
			return sim.Outcome{}, err
		}
		nav := NewNavigator(a, m)
		if nav.At() != m.Home {
			return sim.Outcome{}, errors.New("navigator does not start at home")
		}
		// Write everywhere, then verify via a second tour that every board
		// carries our sign.
		if err := nav.WriteEverywhere("nav-mark"); err != nil {
			return sim.Outcome{}, err
		}
		missing := 0
		if err := nav.TourAll(func(local int, b *sim.Board) {
			if !b.Signs().HasBy(a.Color(), "nav-mark") {
				missing++
			}
		}); err != nil {
			return sim.Outcome{}, err
		}
		if missing > 0 {
			return sim.Outcome{}, errors.New("marks missing after WriteEverywhere")
		}
		// MoveTo a far node and back.
		far := m.G.N() - 1
		if err := nav.MoveTo(far); err != nil {
			return sim.Outcome{}, err
		}
		if nav.At() != far {
			return sim.Outcome{}, errors.New("MoveTo landed elsewhere")
		}
		if err := nav.AccessHome(func(b *sim.Board) { b.Write("back") }); err != nil {
			return sim.Outcome{}, err
		}
		if nav.At() != m.Home {
			return sim.Outcome{}, errors.New("AccessHome did not return home")
		}
		// WaitHome sees the other agent's mark eventually (both agents mark
		// everywhere, including each other's homes).
		if _, err := nav.WaitHome(func(ss sim.Signs) bool {
			return len(ss.Colors("nav-mark")) >= 2
		}); err != nil {
			return sim.Outcome{}, err
		}
		return sim.Outcome{Role: sim.RoleDefeated}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errors {
		if e != nil {
			t.Fatalf("agent %d: %v", i, e)
		}
	}
}
