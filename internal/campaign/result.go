package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/elect"
	"repro/internal/iso"
	"repro/internal/telemetry"
)

// RunResult is the per-run record of a campaign, one JSONL line per run.
// Every field except ElapsedMS is deterministic per (spec, seed); the
// determinism test zeroes ElapsedMS and diffs the sorted records.
type RunResult struct {
	// Index is the run's position in the expanded work list.
	Index    int    `json:"index"`
	Instance string `json:"instance"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	R        int    `json:"r"`
	Seed     int64  `json:"seed"`
	// Strategy is the adversary scheduling strategy that drove the run
	// (empty for free-running simulation).
	Strategy string `json:"strategy,omitempty"`
	// Fault names the injected fault strategy (empty for fault-free runs).
	Fault string `json:"fault,omitempty"`
	// Backend names the runtime backend that executed the run (empty for
	// the classic simulator path; see internal/runtime).
	Backend string `json:"backend,omitempty"`
	// Attempts counts executions including watchdog retries (1 = no retry).
	Attempts int `json:"attempts"`
	// Outcome is "leader", "unsolvable", "mixed", or "error".
	Outcome  string `json:"outcome"`
	Moves    int64  `json:"moves"`
	Accesses int64  `json:"accesses"`
	// Ratio is Moves / (r·|E|), the Theorem 3.1 quantity.
	Ratio float64 `json:"ratio"`
	// Analysis fields (from the shared cache): ordered class sizes, gcd,
	// and whether this run's analysis was served from cache.
	Sizes    []int `json:"sizes,omitempty"`
	GCD      int   `json:"gcd,omitempty"`
	CacheHit bool  `json:"cache_hit"`
	// Expected is the oracle-predicted outcome ("" when the oracle does not
	// apply to the protocol); OK reports Outcome == Expected.
	Expected string `json:"expected,omitempty"`
	OK       bool   `json:"ok"`
	// Violations lists protocol-invariant breaches found by
	// elect.CheckInvariants (strategy-scheduled runs only; empty = clean).
	// Fault runs are checked against the fault-aware contract.
	Violations []elect.Violation `json:"violations,omitempty"`
	// Fault manifest of the final attempt: crashed agents, abandoned-lock
	// takeovers, injected events, and the base64 fault plan
	// (faults.DecodePlanString) for deterministic replay.
	Crashed     int    `json:"crashed,omitempty"`
	Takeovers   int64  `json:"takeovers,omitempty"`
	FaultEvents int    `json:"fault_events,omitempty"`
	FaultPlan   string `json:"fault_plan,omitempty"`
	// ElapsedMS is the run's wall-clock time (nondeterministic).
	ElapsedMS float64 `json:"elapsed_ms"`
	Err       string  `json:"err,omitempty"`
	// Aborted reports that the final attempt still hit the watchdog.
	Aborted bool `json:"aborted,omitempty"`
	// Per-phase counters of the final attempt, keyed by phase name, with
	// zero phases omitted (present when Options.Telemetry; deterministic
	// per seed, like Moves).
	PhaseMoves    map[string]int64 `json:"phase_moves,omitempty"`
	PhaseAccesses map[string]int64 `json:"phase_accesses,omitempty"`
	PhaseWrites   map[string]int64 `json:"phase_writes,omitempty"`
	PhaseErases   map[string]int64 `json:"phase_erases,omitempty"`
	// TraceDropped counts simulation events the buffered tracer discarded
	// on a full buffer (with Options.TraceSink; nondeterministic).
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// RequestID is the originating HTTP request's ID when the campaign ran
	// inside a traced daemon request (telemetry.WithRequestID), so JSONL
	// records and streamed campaign lines correlate with access logs.
	RequestID string `json:"request_id,omitempty"`
}

// phaseMap converts a per-phase counter array to its name-keyed JSON
// form, omitting zero phases (nil when all are zero).
func phaseMap(a [telemetry.NumPhases]int64) map[string]int64 {
	var out map[string]int64
	for p, v := range a {
		if v != 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[telemetry.Phase(p).String()] = v
		}
	}
	return out
}

// Summary aggregates a campaign.
type Summary struct {
	Runs     int            `json:"runs"`
	Workers  int            `json:"workers"`
	Outcomes map[string]int `json:"outcomes"`
	// Mismatches counts runs whose outcome contradicts the oracle
	// prediction; Errors counts runs that exhausted retries with an error.
	Mismatches int `json:"mismatches"`
	Errors     int `json:"errors"`
	// Retries counts extra attempts beyond the first, across all runs;
	// Aborted counts runs whose final attempt still hit the watchdog.
	Retries int `json:"retries"`
	Aborted int `json:"aborted"`
	// Canceled counts runs stopped (or never started) by context
	// cancellation — a dropped server request or an expired drain. They are
	// reported separately from Errors: cancellation is an environment
	// decision, not a protocol failure.
	Canceled int `json:"canceled,omitempty"`
	// InvariantViolations counts strategy-scheduled runs with at least one
	// protocol-invariant breach (see RunResult.Violations).
	InvariantViolations int `json:"invariant_violations"`
	// Fault-plane aggregates over the runs that had a fault strategy:
	// run count, total crashed agents, total lock takeovers, total injected
	// events, and percentiles of per-run crash counts.
	FaultRuns     int   `json:"fault_runs,omitempty"`
	CrashedAgents int   `json:"crashed_agents,omitempty"`
	Takeovers     int64 `json:"takeovers,omitempty"`
	FaultEvents   int   `json:"fault_events,omitempty"`
	CrashedP50    int64 `json:"crashed_p50,omitempty"`
	CrashedP90    int64 `json:"crashed_p90,omitempty"`
	// FaultErrors counts fault runs that ended in a run error (typically a
	// crash-induced schedule deadlock). With faults injected these are
	// expected liveness losses, reported separately and excluded from
	// Errors — only invariant violations fail a fault run.
	FaultErrors int `json:"fault_errors,omitempty"`
	// Move statistics and the Theorem 3.1 ratio envelope.
	MovesP50 int64 `json:"moves_p50"`
	MovesP90 int64 `json:"moves_p90"`
	MovesP99 int64 `json:"moves_p99"`
	// AccessP50/90/99 are whiteboard-access percentiles.
	AccessP50 int64   `json:"accesses_p50"`
	AccessP90 int64   `json:"accesses_p90"`
	AccessP99 int64   `json:"accesses_p99"`
	RatioP50  float64 `json:"ratio_p50"`
	RatioP90  float64 `json:"ratio_p90"`
	RatioMax  float64 `json:"ratio_max"`
	// RatioBound is the constant c the campaign asserts moves ≤ c·r·|E|
	// against; BoundViolations counts runs exceeding it.
	RatioBound      float64 `json:"ratio_bound"`
	BoundViolations int     `json:"bound_violations"`
	// Analysis cache effectiveness. AnalysisMS is the total wall-clock time
	// spent inside elect.Analyze across cache misses (nondeterministic).
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	AnalysisMS   float64 `json:"analysis_ms"`
	// WallMS is the campaign's wall-clock time; SerialMS sums the per-run
	// times (what one worker would have paid); SpeedupEst is their ratio.
	WallMS     float64 `json:"wall_ms"`
	SerialMS   float64 `json:"serial_ms"`
	SpeedupEst float64 `json:"speedup_est"`
	// Phases aggregates the per-phase counters across non-error runs,
	// keyed by phase name (present when Options.Telemetry).
	Phases map[string]PhaseStat `json:"phases,omitempty"`
	// IsoSearch is the delta of the process-global canonical-search
	// counters over the campaign (present when Options.Telemetry;
	// concurrent non-campaign iso work in the same process would be
	// included).
	IsoSearch *iso.SearchStats `json:"iso_search,omitempty"`
	// TraceDropped sums the per-run buffered-tracer drop counts.
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// Streamed reports that the summary was aggregated through mergeable
	// per-worker sketches (internal/telemetry/sketch) instead of buffered
	// per-run results: Report.Results is nil, a bounded failure sample
	// replaces it, and every percentile above carries at most SketchRelErr
	// relative error. Counters (runs, outcomes, errors, violations, cache
	// stats) are exact in both modes.
	Streamed bool `json:"streamed,omitempty"`
	// SketchRelErr is the documented worst-case relative error of the
	// streamed percentiles (sketch.RelativeError; 0 when buffered/exact).
	SketchRelErr float64 `json:"sketch_rel_err,omitempty"`
	// TopViolations ranks invariant-violation signatures
	// ("code|instance|strategy") by their count-min estimated frequency,
	// highest first. Estimates never undercount; the candidate list is
	// bounded, so an unlisted signature is still included in
	// InvariantViolations.
	TopViolations []ViolationCount `json:"top_violations,omitempty"`
}

// PhaseStat aggregates one protocol phase across a campaign: counter
// totals over all non-error runs, and move percentiles over the runs
// that entered the phase.
type PhaseStat struct {
	Moves    int64 `json:"moves"`
	Accesses int64 `json:"accesses"`
	Writes   int64 `json:"writes"`
	Erases   int64 `json:"erases"`
	MovesP50 int64 `json:"moves_p50"`
	MovesP90 int64 `json:"moves_p90"`
}

// Report is the full outcome of a campaign: per-run results in work-list
// order plus the aggregate summary. Streamed campaigns
// (Summary.Streamed) carry no per-run results — a bounded failure sample
// stands in.
type Report struct {
	Results []RunResult `json:"results,omitempty"`
	Summary Summary     `json:"summary"`
	// FailureSample is the bounded (first maxFailureSample, completion
	// order) sample of failing runs a streamed campaign retains instead of
	// Results. Nil on buffered campaigns — use Failures there.
	FailureSample []RunResult `json:"failure_sample,omitempty"`
}

// Failures returns the results that errored, contradicted the oracle, or
// broke a protocol invariant. Fault-injected runs are judged by the
// fault-aware invariants alone: a crash-induced run error (deadlock,
// no verdict among survivors) is an expected liveness loss, not a failure.
// On a streamed campaign (no buffered results) it returns the bounded
// failure sample; Summary.Errors/Mismatches/InvariantViolations carry the
// exact counts either way.
func (r *Report) Failures() []RunResult {
	if r.Results == nil {
		return r.FailureSample
	}
	var out []RunResult
	for _, res := range r.Results {
		if isFailure(res) {
			out = append(out, res)
		}
	}
	return out
}

// jsonlWriter streams one JSON record per line, serialized across workers.
// Records are written in completion order; consumers needing work-list
// order sort by the index field.
type jsonlWriter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	err error
}

func newJSONLWriter(w io.Writer) *jsonlWriter {
	if w == nil {
		return nil
	}
	return &jsonlWriter{w: w, enc: json.NewEncoder(w)}
}

func (jw *jsonlWriter) write(r RunResult) {
	if jw == nil {
		return
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err == nil {
		jw.err = jw.enc.Encode(r)
	}
}

func pctInt(xs []int64, p int) int64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]int64(nil), xs...)
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	return ys[pctIndex(len(ys), p)]
}

func pctFloat(xs []float64, p int) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[pctIndex(len(ys), p)]
}

// pctIndex is the nearest-rank percentile index.
func pctIndex(n, p int) int {
	i := (n*p + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > n {
		i = n
	}
	return i - 1
}

// Render prints the summary as a human-readable block.
func (s Summary) Render() string {
	out := fmt.Sprintf("campaign: %d runs, %d workers, wall %.0fms (serial %.0fms, ≈%.1fx)\n",
		s.Runs, s.Workers, s.WallMS, s.SerialMS, s.SpeedupEst)
	keys := make([]string, 0, len(s.Outcomes))
	for k := range s.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out += "  outcomes:"
	for _, k := range keys {
		out += fmt.Sprintf(" %s=%d", k, s.Outcomes[k])
	}
	out += fmt.Sprintf("\n  oracle mismatches: %d, errors: %d, retries: %d, watchdog-aborted: %d\n",
		s.Mismatches, s.Errors, s.Retries, s.Aborted)
	if s.Canceled > 0 {
		out += fmt.Sprintf("  canceled: %d runs\n", s.Canceled)
	}
	if s.InvariantViolations > 0 {
		out += fmt.Sprintf("  INVARIANT VIOLATIONS: %d runs\n", s.InvariantViolations)
	}
	for _, v := range s.TopViolations {
		out += fmt.Sprintf("    %s ≈%d\n", v.Signature, v.Count)
	}
	if s.Streamed {
		out += fmt.Sprintf("  streamed aggregation: sketch percentiles (rel err ≤ %.1f%%), per-run results not buffered\n",
			100*s.SketchRelErr)
	}
	if s.FaultRuns > 0 {
		out += fmt.Sprintf("  fault plane: %d fault runs, %d events injected, %d agents crashed (p50 %d, p90 %d), %d lock takeovers, %d crash-induced run errors\n",
			s.FaultRuns, s.FaultEvents, s.CrashedAgents, s.CrashedP50, s.CrashedP90, s.Takeovers, s.FaultErrors)
	}
	out += fmt.Sprintf("  moves p50/p90/p99: %d/%d/%d, accesses p50/p90/p99: %d/%d/%d\n",
		s.MovesP50, s.MovesP90, s.MovesP99, s.AccessP50, s.AccessP90, s.AccessP99)
	out += fmt.Sprintf("  moves/(r·|E|) p50/p90/max: %.1f/%.1f/%.1f (bound %.0f, violations %d)\n",
		s.RatioP50, s.RatioP90, s.RatioMax, s.RatioBound, s.BoundViolations)
	out += fmt.Sprintf("  analysis cache: %d hits / %d misses (hit rate %.1f%%), %.0fms analyzing\n",
		s.CacheHits, s.CacheMisses, 100*s.CacheHitRate, s.AnalysisMS)
	if len(s.Phases) > 0 {
		// Phase taxonomy order (the order the protocol runs them), not
		// alphabetical.
		for _, name := range telemetry.PhaseNames() {
			st, ok := s.Phases[name]
			if !ok {
				continue
			}
			out += fmt.Sprintf("  phase %-12s moves=%d (p50 %d, p90 %d) accesses=%d writes=%d erases=%d\n",
				name, st.Moves, st.MovesP50, st.MovesP90, st.Accesses, st.Writes, st.Erases)
		}
	}
	if s.IsoSearch != nil {
		out += fmt.Sprintf("  iso search: %d searches, %d nodes, %d leaves, prunes orbit=%d prefix=%d, budget exhaustions=%d\n",
			s.IsoSearch.Searches, s.IsoSearch.Nodes, s.IsoSearch.Leaves,
			s.IsoSearch.OrbitPrunes, s.IsoSearch.PrefixPrunes, s.IsoSearch.BudgetExhaustions)
	}
	if s.TraceDropped > 0 {
		out += fmt.Sprintf("  trace events dropped: %d\n", s.TraceDropped)
	}
	return out
}
