package view

import (
	"testing"

	"repro/internal/graph"
)

func TestCycleAllSameView(t *testing.T) {
	// A cycle with the orientation labeling (1 clockwise, 2 counter-
	// clockwise) has a single view class: σ_ℓ = n.
	for _, n := range []int{3, 5, 8} {
		g := graph.Cycle(n)
		l := orientedCycleLabeling(n)
		cl, err := ComputeClasses(g, l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Count() != 1 {
			t.Errorf("C%d oriented: %d view classes, want 1", n, cl.Count())
		}
		if s, ok := cl.Symmetricity(); !ok || s != n {
			t.Errorf("C%d oriented: σ=%d ok=%v, want %d", n, s, ok, n)
		}
	}
}

// orientedCycleLabeling labels every node's clockwise port 1 and counter-
// clockwise port 2. With graph.Cycle's construction, node i has port 0 to
// i+1 (clockwise) except node 0 whose port 0 goes to 1 and port 1 to n-1;
// interior ordering varies, so derive ports from the structure.
func orientedCycleLabeling(n int) graph.EdgeLabeling {
	g := graph.Cycle(n)
	l := make(graph.EdgeLabeling, n)
	for v := 0; v < n; v++ {
		l[v] = make([]int, g.Deg(v))
		for p, h := range g.Ports(v) {
			if h.To == (v+1)%n {
				l[v][p] = 1
			} else {
				l[v][p] = 2
			}
		}
	}
	return l
}

func TestCycleWithBlackNodeBreaksSymmetry(t *testing.T) {
	n := 6
	g := graph.Cycle(n)
	l := orientedCycleLabeling(n)
	colors := make([]int, n)
	colors[0] = 1
	cl, err := ComputeClasses(g, l, colors)
	if err != nil {
		t.Fatal(err)
	}
	// One black node + orientation makes all views distinct.
	if cl.Count() != n {
		t.Errorf("views: %d classes, want %d", cl.Count(), n)
	}
	if s, ok := cl.Symmetricity(); !ok || s != 1 {
		t.Errorf("σ=%d ok=%v, want 1", s, ok)
	}
}

func TestAntipodalBlacksKeepSymmetry(t *testing.T) {
	// C6 with blacks at 0 and 3, oriented labeling: rotation by 3 is a
	// label- and color-preserving automorphism, so every class has size 2.
	g := graph.Cycle(6)
	l := orientedCycleLabeling(6)
	colors := []int{1, 0, 0, 1, 0, 0}
	cl, err := ComputeClasses(g, l, colors)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := cl.Symmetricity(); !ok || s != 2 {
		t.Errorf("σ=%d ok=%v, want 2 (sizes %v)", s, ok, cl.Sizes())
	}
}

func TestPathViewsQuantitative(t *testing.T) {
	// Figure 2(a): path x-y-z with ℓx(xy)=1, ℓy(xy)=1, ℓy(yz)=2, ℓz(yz)=1.
	// All three views are different.
	g := graph.Path(3)
	// Ports: x(0): p0->y. y(1): p0->x, p1->z. z(2): p0->y.
	l := graph.EdgeLabeling{{1}, {1, 2}, {1}}
	cl, err := ComputeClasses(g, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Count() != 3 {
		t.Errorf("Figure 2(a): %d view classes, want 3 (all distinct)", cl.Count())
	}
}

func TestFig2cAllViewsEqualDespiteRigidity(t *testing.T) {
	// Figure 2(c): the 3-node multigraph where all nodes have the same view
	// although no nontrivial label-preserving automorphism exists.
	g := graph.Fig2c()
	l := Fig2cLabeling()
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	cl, err := ComputeClasses(g, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Count() != 1 {
		t.Fatalf("Figure 2(c): %d view classes %v, want 1", cl.Count(), cl.Members)
	}
	// Cross-check with explicit trees to a healthy depth.
	tx := BuildTree(g, l, nil, 0, 5)
	ty := BuildTree(g, l, nil, 1, 5)
	tz := BuildTree(g, l, nil, 2, 5)
	if !tx.Equal(ty) || !ty.Equal(tz) {
		t.Error("explicit depth-5 views differ, refinement said equal")
	}
}

// Fig2cLabeling returns the paper's Figure 2(c) port labels for graph.Fig2c:
// ring edges labeled 1 clockwise / 2 counterclockwise, mess edges
// ℓx(e1)=ℓy(e2)=3, ℓx(e2)=ℓy(e1)=4, loop extremities 3 and 4.
func Fig2cLabeling() graph.EdgeLabeling {
	return graph.EdgeLabeling{
		{1, 2, 3, 4}, // x: ring->y, ring->z, e1, e2
		{2, 1, 4, 3}, // y: ring->x, ring->z, e1, e2
		{2, 1, 3, 4}, // z: ring->y, ring->x, loop, loop
	}
}

func TestNorrisDepthSufficient(t *testing.T) {
	// Classes at depth n-1 must equal the stable classes, and must be
	// strictly coarser at depth 0 for graphs with asymmetry.
	cases := []struct {
		g *graph.Graph
		l graph.EdgeLabeling
	}{
		{graph.Path(5), graph.PortLabeling(graph.Path(5))},
		{graph.Cycle(7), orientedCycleLabeling(7)},
		{graph.Petersen(), graph.PortLabeling(graph.Petersen())},
		{graph.Hypercube(3), graph.PortLabeling(graph.Hypercube(3))},
		{graph.RandomConnected(10, 5, 99), graph.PortLabeling(graph.RandomConnected(10, 5, 99))},
	}
	for i, c := range cases {
		stable, err := ComputeClasses(c.g, c.l, nil)
		if err != nil {
			t.Fatal(err)
		}
		atN1, err := ClassesAtDepth(c.g, c.l, nil, c.g.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		if stable.Count() != atN1.Count() {
			t.Errorf("case %d: depth n-1 classes %d != stable %d", i, atN1.Count(), stable.Count())
		}
		for v := range stable.Class {
			if stable.Class[v] != atN1.Class[v] {
				t.Errorf("case %d: node %d classed differently", i, v)
				break
			}
		}
	}
}

func TestTreeMatchesRefinement(t *testing.T) {
	// On small graphs, depth-(n-1) explicit trees must induce the same
	// partition as refinement.
	gs := []*graph.Graph{graph.Path(4), graph.Cycle(5), graph.Star(3), graph.Complete(4)}
	for gi, g := range gs {
		l := graph.PortLabeling(g)
		colors := make([]int, g.N())
		colors[0] = 1
		cl, err := ComputeClasses(g, l, colors)
		if err != nil {
			t.Fatal(err)
		}
		depth := g.N() - 1
		render := make([]string, g.N())
		for v := 0; v < g.N(); v++ {
			render[v] = BuildTree(g, l, colors, v, depth).String()
		}
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if (render[u] == render[v]) != cl.SameView(u, v) {
					t.Errorf("graph %d: nodes %d,%d tree-equal=%v refinement=%v",
						gi, u, v, render[u] == render[v], cl.SameView(u, v))
				}
			}
		}
	}
}

func TestSymmetricityMaxK2AndPath(t *testing.T) {
	// K2: both labelings give σ = 2 (the two nodes always look alike).
	k2 := graph.Path(2)
	s, _, err := SymmetricityMax(k2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != 2 {
		t.Errorf("σ(K2) = %d, want 2", s)
	}
	// P3: middle node always distinguishable; σ = max is 2 when the two
	// end ports of y get... in fact ends can look alike, so σ(P3)=2? The
	// ends have degree 1, the middle degree 2; ends can share a view.
	s, _, err = SymmetricityMax(graph.Path(3), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		// σ_ℓ is the COMMON class size; since the middle is always alone,
		// every labeling has classes of unequal sizes unless ends also
		// split. Symmetricity is only well-defined when all classes have
		// equal size; Yamashita-Kameda guarantee equal sizes, so for P3
		// all classes must be singletons and σ = 1.
		t.Errorf("σ(P3) = %d, want 1", s)
	}
	// C4: fully symmetric labeling exists, σ = 4? The oriented labeling
	// gives one class of size 4.
	s, l, err := SymmetricityMax(graph.Cycle(4), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != 4 {
		t.Errorf("σ(C4) = %d, want 4 (witness %v)", s, l)
	}
}

func TestSymmetricityWithBlackNodes(t *testing.T) {
	// C4 with one black node: no labeling can make the black node look
	// like a white one, and the two neighbors of black can look alike,
	// but classes would then have sizes (1,2,1) — unequal — so σ = 1.
	colors := []int{1, 0, 0, 0}
	s, _, err := SymmetricityMax(graph.Cycle(4), colors, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("σ(C4, one black) = %d, want 1", s)
	}
	// C4 with two antipodal blacks: the rotation by 2 can be label-
	// preserving, σ = 2.
	colors = []int{1, 0, 1, 0}
	s, _, err = SymmetricityMax(graph.Cycle(4), colors, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != 2 {
		t.Errorf("σ(C4, antipodal blacks) = %d, want 2", s)
	}
}

func TestSymmetricityLimitError(t *testing.T) {
	if _, _, err := SymmetricityMax(graph.Complete(6), nil, 1000); err == nil {
		t.Error("expected limit error for K6 labeling space")
	}
}

func TestClassesAtDepthZero(t *testing.T) {
	// Depth 0 groups by (color, degree) only.
	g := graph.Star(3)
	cl, err := ClassesAtDepth(g, graph.PortLabeling(g), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Count() != 2 {
		t.Errorf("depth-0 classes %d, want 2 (center vs leaves)", cl.Count())
	}
}

func TestNorrisDepthCanBeNecessary(t *testing.T) {
	// Views can genuinely require deep truncations: on a long path with the
	// port labeling, the two central nodes are only distinguished from
	// their outer neighbors after the wave from the endpoints has had time
	// to reach them — depth-1 classes are strictly coarser than the stable
	// classes, and refinement takes Θ(n) rounds in the worst case.
	n := 12
	g := graph.Path(n)
	l := graph.PortLabeling(g)
	shallow, err := ClassesAtDepth(g, l, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := ComputeClasses(g, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Count() >= stable.Count() {
		t.Fatalf("depth-1 classes (%d) should be strictly coarser than stable (%d)",
			shallow.Count(), stable.Count())
	}
	// Find the first depth at which the partition stabilizes; it must be
	// at most n-1 (Norris) and, for the path, grow with n.
	stabilized := -1
	for k := 0; k < n; k++ {
		atK, err := ClassesAtDepth(g, l, nil, k)
		if err != nil {
			t.Fatal(err)
		}
		if atK.Count() == stable.Count() {
			stabilized = k
			break
		}
	}
	if stabilized < 0 || stabilized > n-1 {
		t.Fatalf("stabilization depth %d out of the Norris bound", stabilized)
	}
	if stabilized < n/2-1 {
		t.Fatalf("stabilization depth %d suspiciously small for P%d", stabilized, n)
	}
}

func TestBoldiVignaDiameterDepth(t *testing.T) {
	// The paper cites Boldi–Vigna: views need only be compared to the
	// diameter. Check on the suite that classes at depth diam(G) already
	// equal the stable classes.
	cases := []*graph.Graph{
		graph.Cycle(8), graph.Petersen(), graph.Hypercube(3), graph.Path(7),
		graph.Grid(3, 3), graph.RandomConnected(11, 5, 77),
	}
	for _, g := range cases {
		l := graph.PortLabeling(g)
		stable, err := ComputeClasses(g, l, nil)
		if err != nil {
			t.Fatal(err)
		}
		atDiam, err := ClassesAtDepth(g, l, nil, g.Diameter())
		if err != nil {
			t.Fatal(err)
		}
		if stable.Count() != atDiam.Count() {
			t.Errorf("%v: depth-diameter classes %d != stable %d",
				g, atDiam.Count(), stable.Count())
		}
	}
}
