package group

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/iso"
)

func TestCycleCayleyMatchesGraph(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		c := CycleCayley(n)
		if !iso.Isomorphic(iso.FromGraph(c.G, nil), iso.FromGraph(graph.Cycle(n), nil)) {
			t.Errorf("CycleCayley(%d) not isomorphic to Cycle(%d)", n, n)
		}
	}
}

func TestHypercubeCayleyMatchesGraph(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		c := HypercubeCayley(d)
		if !iso.Isomorphic(iso.FromGraph(c.G, nil), iso.FromGraph(graph.Hypercube(d), nil)) {
			t.Errorf("HypercubeCayley(%d) mismatch", d)
		}
		if c.Degree() != d {
			t.Errorf("HypercubeCayley(%d) degree %d", d, c.Degree())
		}
	}
}

func TestTorusCayleyMatchesGraph(t *testing.T) {
	c, err := TorusCayley(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !iso.Isomorphic(iso.FromGraph(c.G, nil), iso.FromGraph(graph.Torus(3, 4), nil)) {
		t.Error("TorusCayley(3,4) mismatch")
	}
}

func TestCompleteCayleyMatchesGraph(t *testing.T) {
	c := CompleteCayley(5)
	if !iso.Isomorphic(iso.FromGraph(c.G, nil), iso.FromGraph(graph.Complete(5), nil)) {
		t.Error("CompleteCayley(5) mismatch")
	}
}

func TestCirculantCayley(t *testing.T) {
	c, err := CirculantCayley(8, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !iso.Isomorphic(iso.FromGraph(c.G, nil), iso.FromGraph(graph.Circulant(8, []int{1, 2}), nil)) {
		t.Error("CirculantCayley(8,{1,2}) mismatch")
	}
}

func TestNewCayleyValidation(t *testing.T) {
	g := Cyclic(6)
	if _, err := NewCayley(g, []int{0}); err == nil {
		t.Error("identity generator accepted")
	}
	if _, err := NewCayley(g, []int{1}); err == nil {
		t.Error("non-symmetric generating set accepted")
	}
	if _, err := NewCayley(g, []int{2, 4}); err == nil {
		t.Error("non-generating set accepted (disconnected graph)")
	}
	// {3} is symmetric (3 is an involution) but generates only {0,3}.
	if _, err := NewCayley(g, []int{3}); err == nil {
		t.Error("non-generating involution accepted")
	}
	// A genuine involution generator: Z2 with {1} gives K2.
	if c, err := NewCayley(Cyclic(2), []int{1}); err != nil {
		t.Errorf("K2 as Cay(Z2,{1}) rejected: %v", err)
	} else if c.G.N() != 2 || c.G.M() != 1 {
		t.Errorf("Cay(Z2,{1}) has n=%d m=%d, want 2,1", c.G.N(), c.G.M())
	}
}

func TestNaturalLabelingConsistency(t *testing.T) {
	// Port p of vertex v labeled s must lead to v*s, and the twin port must
	// be labeled s⁻¹ — the labeling from Theorem 4.1's proof.
	cays := []*Cayley{CycleCayley(7), HypercubeCayley(3), CompleteCayley(4)}
	if c, err := TorusCayley(3, 3); err == nil {
		cays = append(cays, c)
	}
	for _, c := range cays {
		for v := 0; v < c.G.N(); v++ {
			seen := make(map[int]bool)
			for p, h := range c.G.Ports(v) {
				s := c.PortGen[v][p]
				if seen[s] {
					t.Fatalf("%s: duplicate generator label %d at vertex %d", c.Group.Name(), s, v)
				}
				seen[s] = true
				if c.Group.Mul(v, s) != h.To {
					t.Fatalf("%s: port (%d,%d) labeled %d leads to %d, want %d",
						c.Group.Name(), v, p, s, h.To, c.Group.Mul(v, s))
				}
				twinLabel := c.PortGen[h.To][h.Twin]
				if twinLabel != c.Group.Inv(s) {
					t.Fatalf("%s: twin label %d, want inverse %d", c.Group.Name(), twinLabel, c.Group.Inv(s))
				}
			}
		}
	}
}

func TestTranslationsPreserveGraphAndLabels(t *testing.T) {
	c := HypercubeCayley(3)
	for gamma := 0; gamma < c.Group.Order(); gamma++ {
		tr := c.Translation(gamma)
		for v := 0; v < c.G.N(); v++ {
			for p, h := range c.G.Ports(v) {
				// Edge {v, h.To} labeled s at v must map to an edge
				// {tr[v], tr[h.To]} labeled s at tr[v].
				s := c.PortGen[v][p]
				found := false
				for q, h2 := range c.G.Ports(tr[v]) {
					if h2.To == tr[h.To] && c.PortGen[tr[v]][q] == s {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("translation %d does not preserve labeled edge (%d->%d, s=%d)",
						gamma, v, h.To, s)
				}
			}
		}
	}
}

func TestTranslationClassesCycle(t *testing.T) {
	// C6 with blacks at 0 and 3: the translation +3 preserves the black
	// set, so classes have size 2 and the gcd criterion says impossible.
	c := CycleCayley(6)
	black := make([]bool, 6)
	black[0], black[3] = true, true
	classes, h := c.TranslationClasses(black)
	if h != 2 {
		t.Fatalf("|H| = %d, want 2", h)
	}
	for _, cl := range classes {
		if len(cl) != 2 {
			t.Fatalf("class sizes %v, want all 2", classes)
		}
	}
	// C6 with blacks at 0 and 2: only identity preserves blacks.
	black = make([]bool, 6)
	black[0], black[2] = true, true
	classes, h = c.TranslationClasses(black)
	if h != 1 {
		t.Fatalf("|H| = %d, want 1", h)
	}
	if len(classes) != 6 {
		t.Fatalf("expected 6 singleton classes, got %v", classes)
	}
}

func TestTranslationClassesVsEquivalenceClasses(t *testing.T) {
	// The paper (Section 4) notes nodes 1 and n/2-1 of an even cycle with
	// antipodal agents are equivalent but NOT translation-equivalent.
	c := CycleCayley(8)
	black := make([]bool, 8)
	black[0], black[4] = true, true
	classes, _ := c.TranslationClasses(black)
	// Classes under translations: {0,4},{1,5},{2,6},{3,7}.
	if len(classes) != 4 {
		t.Fatalf("translation classes %v, want 4 classes", classes)
	}
	sameClass := func(a, b int) bool {
		for _, cl := range classes {
			ina, inb := false, false
			for _, v := range cl {
				ina = ina || v == a
				inb = inb || v == b
			}
			if ina {
				return inb
			}
		}
		return false
	}
	if sameClass(1, 3) {
		t.Error("1 and 3 (= n/2 - 1) must not be translation-equivalent")
	}
	// But they ARE equivalent under reflection (a plain automorphism).
	cols := []int{1, 0, 0, 0, 1, 0, 0, 0}
	orbits := iso.Orbits(iso.FromGraph(c.G, cols))
	same := false
	for _, o := range orbits {
		has1, has3 := false, false
		for _, v := range o {
			has1 = has1 || v == 1
			has3 = has3 || v == 3
		}
		same = same || (has1 && has3)
	}
	if !same {
		t.Error("1 and 3 should be equivalent under color-preserving automorphism")
	}
}

func TestRecognizeCayleyFamilies(t *testing.T) {
	positive := map[string]*graph.Graph{
		"C5":      graph.Cycle(5),
		"C6":      graph.Cycle(6),
		"K4":      graph.Complete(4),
		"Q3":      graph.Hypercube(3),
		"K33":     graph.CompleteBipartite(3, 3),
		"prism3":  graph.Prism(3),
		"circ8":   graph.Circulant(8, []int{1, 2}),
		"torus33": graph.Torus(3, 3),
	}
	for name, g := range positive {
		rec, err := Recognize(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rec.IsCayley {
			t.Errorf("%s: should be recognized as Cayley", name)
			continue
		}
		// The reconstructed group must be a genuine group of order n whose
		// Cayley graph is the input (identity vertex correspondence).
		if rec.Group.Order() != g.N() {
			t.Errorf("%s: group order %d, want %d", name, rec.Group.Order(), g.N())
		}
		cay, err := rec.RecognizedCayley(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Check the natural labeling property on the recognized structure.
		for v := 0; v < g.N(); v++ {
			for p, h := range g.Ports(v) {
				s := cay.PortGen[v][p]
				if cay.Group.Mul(v, s) != h.To {
					t.Fatalf("%s: recognized labeling inconsistent at (%d,%d)", name, v, p)
				}
			}
		}
	}

	negative := map[string]*graph.Graph{
		"petersen": graph.Petersen(),              // vertex-transitive, not Cayley
		"path4":    graph.Path(4),                 // not regular
		"star3":    graph.Star(3),                 // not regular
		"wheel5":   graph.Wheel(5),                // not regular
		"K23":      graph.CompleteBipartite(2, 3), // not regular
	}
	for name, g := range negative {
		rec, err := Recognize(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.IsCayley {
			t.Errorf("%s: wrongly recognized as Cayley", name)
		}
	}
}

func TestRecognizeDeterministic(t *testing.T) {
	g := graph.Hypercube(3)
	r1, err1 := Recognize(g, 0)
	r2, err2 := Recognize(g, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for v := range r1.Regular {
		if !r1.Regular[v].Equal(r2.Regular[v]) {
			t.Fatal("recognition not deterministic")
		}
	}
}

func TestRecognizeUndecidedOnHugeAut(t *testing.T) {
	// K8 has |Aut| = 40320 > 1000 cap.
	_, err := Recognize(graph.Complete(8), 1000)
	if err != ErrUndecided {
		t.Fatalf("expected ErrUndecided, got %v", err)
	}
}
