package elect

import (
	"strconv"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// phaseSpan opens a span named "<base> p<idx>" on the agent's track. The
// name is only formatted when telemetry is enabled, so the disabled path
// stays allocation-free.
func phaseSpan(a *sim.Agent, base string, idx int) telemetry.ActiveSpan {
	if !a.TelemetryEnabled() {
		return telemetry.ActiveSpan{}
	}
	return a.Span(base + " p" + strconv.Itoa(idx))
}
