package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sim"
)

// acceptanceSpec is the ISSUE acceptance campaign: cycles and hypercubes ×
// 25 seeds ≥ 200 runs, mixing solvable (adjacent placements, gcd 1) and
// unsolvable (evenly spread placements, gcd r) instances.
func acceptanceSpec() Spec {
	return Spec{
		Families: []FamilySpec{
			{Family: "cycle", Sizes: []int{6, 9, 12, 15, 18, 24}, Placement: "spread", R: 3},
			{Family: "cycle", Sizes: []int{9, 15}, Placement: "adjacent", R: 3},
			{Family: "hypercube", Sizes: []int{3, 4}, Placement: "spread", R: 2},
		},
		Seeds:    SeedRange{From: 1, To: 25},
		Protocol: ProtoElect,
	}
}

const acceptanceRuns = 250 // 10 instances × 25 seeds

func TestSpecExpand(t *testing.T) {
	spec := acceptanceSpec()
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != acceptanceRuns {
		t.Fatalf("expanded to %d runs, want %d", len(runs), acceptanceRuns)
	}
	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if runs[i].Instance != again[i].Instance || runs[i].Seed != again[i].Seed {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, runs[i], again[i])
		}
	}
	// Same (family, size) shares one graph value across seeds.
	if runs[0].G != runs[1].G {
		t.Error("seeds of one instance should share the graph value")
	}
}

func TestCampaignAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var jsonl bytes.Buffer
	rep, err := Execute(acceptanceSpec(), Options{JSONL: &jsonl})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Runs != acceptanceRuns {
		t.Fatalf("runs: %d, want %d", s.Runs, acceptanceRuns)
	}
	if s.Errors != 0 || s.Mismatches != 0 {
		t.Fatalf("errors=%d mismatches=%d; failures: %+v", s.Errors, s.Mismatches, rep.Failures())
	}
	// Theorem 3.1: every run's moves stay within c·r·|E|.
	if s.BoundViolations != 0 || s.RatioMax > s.RatioBound {
		t.Fatalf("move bound violated: max ratio %.1f, %d violations", s.RatioMax, s.BoundViolations)
	}
	// 10 instances, 250 runs: the analysis cache must serve 240 hits.
	if s.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate %.2f, want > 0", s.CacheHitRate)
	}
	if s.CacheMisses != 10 {
		t.Errorf("cache misses: %d, want 10 (one per instance)", s.CacheMisses)
	}
	// Both verdicts must occur across the sweep (gcd 1 and gcd > 1 inputs).
	if s.Outcomes["leader"] == 0 || s.Outcomes["unsolvable"] == 0 {
		t.Errorf("outcome mix missing a verdict: %v", s.Outcomes)
	}
	if n := strings.Count(jsonl.String(), "\n"); n != acceptanceRuns {
		t.Errorf("jsonl lines: %d, want %d", n, acceptanceRuns)
	}
}

// canonicalJSONL parses, de-times, and sorts a JSONL stream for the
// determinism diff.
func canonicalJSONL(t *testing.T, raw []byte) []RunResult {
	t.Helper()
	var out []RunResult
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r RunResult
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad jsonl line %q: %v", line, err)
		}
		r.ElapsedMS = 0
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// TestCampaignDeterminism runs the same spec twice — under different worker
// counts — and diffs the sorted JSONL records: execution must be
// deterministic per (spec, seed) modulo worker interleaving.
func TestCampaignDeterminism(t *testing.T) {
	spec := Spec{
		Families: []FamilySpec{
			{Family: "cycle", Sizes: []int{9, 12}, Placement: "spread", R: 3},
			{Family: "hypercube", Sizes: []int{3}, Placement: "spread", R: 2},
		},
		Seeds:    SeedRange{From: 1, To: 10},
		Protocol: ProtoElect,
	}
	var a, b bytes.Buffer
	if _, err := Execute(spec, Options{Workers: 4, JSONL: &a}); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(spec, Options{Workers: 2, JSONL: &b}); err != nil {
		t.Fatal(err)
	}
	ra, rb := canonicalJSONL(t, a.Bytes()), canonicalJSONL(t, b.Bytes())
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !reflect.DeepEqual(ra[i], rb[i]) {
			t.Fatalf("record %d differs between runs:\n  %+v\n  %+v", i, ra[i], rb[i])
		}
	}
}

// TestCampaignSpeedup checks the pool actually parallelizes: a
// delay-injected campaign must finish at least 2x faster with a real pool
// than with one worker. Runs block on the adversary's seeded sleeps, so
// pooled runs overlap even on a single-core runner; on multi-core hardware
// the CPU-bound protocol work parallelizes on top of that.
func TestCampaignSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := Spec{
		Families: []FamilySpec{
			{Family: "cycle", Sizes: []int{6, 9}, Placement: "spread", R: 2},
		},
		Seeds:    SeedRange{From: 1, To: 30},
		Protocol: ProtoElect,
	}
	delay := 300 * time.Microsecond
	workers := max(4, runtime.GOMAXPROCS(0))
	t0 := time.Now()
	if _, err := Execute(spec, Options{Workers: 1, MaxDelay: delay}); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(t0)
	t0 = time.Now()
	if _, err := Execute(spec, Options{Workers: workers, MaxDelay: delay}); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(t0)
	if speedup := float64(serial) / float64(parallel); speedup < 2 {
		t.Errorf("pool speedup %.2fx over -workers=1 with %d workers, want >= 2x (serial %v, parallel %v)",
			speedup, workers, serial, parallel)
	}
}

// TestWatchdogRetry exercises the watchdog + reseeded-retry path: the first
// attempt deadlocks (an agent waits for a sign nobody writes), the retry
// runs the real protocol and succeeds.
func TestWatchdogRetry(t *testing.T) {
	deadlock := func(a *sim.Agent) (sim.Outcome, error) {
		_, err := a.Wait(func(sim.Signs) bool { return false })
		return sim.Outcome{}, err
	}
	real := elect.Elect(elect.Options{})
	g := graph.Cycle(6)
	runs := []Run{{Instance: "cycle6[0 2]", G: g, Homes: []int{0, 2}, Seed: 1, Protocol: ProtoElect}}
	rep, err := ExecuteRuns(runs, Options{
		Workers:    1,
		RunTimeout: 150 * time.Millisecond,
		MaxRetries: 2,
		testProtocol: func(_ Run, attempt int) sim.Protocol {
			if attempt == 1 {
				return deadlock
			}
			return real
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Attempts != 2 {
		t.Errorf("attempts: %d, want 2", r.Attempts)
	}
	if r.Outcome != "leader" || r.Err != "" {
		t.Errorf("retried run: outcome %q err %q, want recovered leader", r.Outcome, r.Err)
	}
	if rep.Summary.Retries != 1 || rep.Summary.Aborted != 0 {
		t.Errorf("summary retries=%d aborted=%d, want 1/0", rep.Summary.Retries, rep.Summary.Aborted)
	}
}

// TestWatchdogExhausted verifies that a run that keeps hitting the watchdog
// surfaces as an aborted error after MaxRetries reseeded attempts.
func TestWatchdogExhausted(t *testing.T) {
	deadlock := func(a *sim.Agent) (sim.Outcome, error) {
		_, err := a.Wait(func(sim.Signs) bool { return false })
		return sim.Outcome{}, err
	}
	g := graph.Cycle(5)
	runs := []Run{{Instance: "cycle5[0]", G: g, Homes: []int{0}, Seed: 3, Protocol: ProtoElect}}
	rep, err := ExecuteRuns(runs, Options{
		Workers:      1,
		RunTimeout:   50 * time.Millisecond,
		MaxRetries:   1,
		testProtocol: func(Run, int) sim.Protocol { return deadlock },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Outcome != "error" || !r.Aborted {
		t.Errorf("outcome %q aborted=%v, want watchdog error", r.Outcome, r.Aborted)
	}
	if r.Attempts != 2 {
		t.Errorf("attempts: %d, want 2 (1 + MaxRetries)", r.Attempts)
	}
	if rep.Summary.Aborted != 1 || rep.Summary.Errors != 1 {
		t.Errorf("summary aborted=%d errors=%d, want 1/1", rep.Summary.Aborted, rep.Summary.Errors)
	}
}

// TestSharedCacheAcrossCampaigns: two campaigns given one
// analysiscache.Cache pay for each instance's analysis once total — the
// extraction that lets the daemon share a cache across requests.
func TestSharedCacheAcrossCampaigns(t *testing.T) {
	shared := analysiscache.New(analysiscache.Config{})
	g := graph.Cycle(6)
	runs := []Run{{Instance: "cycle6[0 2]", G: g, Homes: []int{0, 2}, Seed: 1, Protocol: ProtoElect}}
	opt := Options{Workers: 1, Cache: shared}
	if _, err := ExecuteRuns(runs, opt); err != nil {
		t.Fatal(err)
	}
	rep, err := ExecuteRuns(runs, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The second campaign's only analysis is a hit on the first's entry.
	if rep.Summary.CacheHits != 1 || rep.Summary.CacheMisses != 0 {
		t.Errorf("second campaign hits/misses = %d/%d, want 1/0 via the shared cache",
			rep.Summary.CacheHits, rep.Summary.CacheMisses)
	}
	if s := shared.Stats(); s.Misses != 1 {
		t.Errorf("shared cache computed %d analyses across two campaigns, want 1", s.Misses)
	}
	if !rep.Results[0].CacheHit {
		t.Error("run record should mark the analysis as cached")
	}
}

// TestExecuteRunsContextCancel: cancelling mid-campaign aborts in-flight
// simulations and marks never-started runs canceled, keeping the report
// index-complete.
func TestExecuteRunsContextCancel(t *testing.T) {
	stuck := func(a *sim.Agent) (sim.Outcome, error) {
		_, err := a.Wait(func(sim.Signs) bool { return false })
		return sim.Outcome{}, err
	}
	g := graph.Cycle(5)
	var runs []Run
	for seed := int64(1); seed <= 8; seed++ {
		runs = append(runs, Run{Instance: "cycle5[0]", G: g, Homes: []int{0}, Seed: seed, Protocol: ProtoElect})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := ExecuteRunsContext(ctx, runs, Options{
		Workers:      2,
		RunTimeout:   time.Minute, // far past the cancel: only ctx can stop the stuck runs
		MaxRetries:   -1,
		testProtocol: func(Run, int) sim.Protocol { return stuck },
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; in-flight runs did not abort", elapsed)
	}
	if rep == nil || len(rep.Results) != len(runs) {
		t.Fatalf("report must stay index-complete: %+v", rep)
	}
	if rep.Summary.Canceled == 0 {
		t.Errorf("summary should count canceled runs: %+v", rep.Summary)
	}
	for i, r := range rep.Results {
		if r.Outcome != "canceled" {
			t.Errorf("run %d outcome %q err %q, want canceled", i, r.Outcome, r.Err)
		}
	}
	if n := len(rep.Failures()); n != 0 {
		t.Errorf("canceled runs are not failures, got %d", n)
	}
}

func TestAnalyzeBatch(t *testing.T) {
	insts := []Instance{
		{"C6a", graph.Cycle(6), []int{0, 2}},
		{"C6b", graph.Cycle(6), []int{0, 3}},
		{"Q3", graph.Hypercube(3), []int{0, 7}},
		{"C6a-dup", graph.Cycle(6), []int{0, 2}},
	}
	got, err := AnalyzeBatch(insts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range insts {
		want, err := elect.Analyze(in.G, in.Homes, order.Direct)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].GCD != want.GCD || !reflect.DeepEqual(got[i].Sizes, want.Sizes) {
			t.Errorf("%s: batch %v/%d vs direct %v/%d", in.Name, got[i].Sizes, got[i].GCD, want.Sizes, want.GCD)
		}
	}
	if got[0] != got[3] {
		t.Error("duplicate instances should share one cached analysis")
	}
}

func TestMixedProtocolRuns(t *testing.T) {
	g := graph.Cycle(6)
	runs := []Run{
		{Instance: "qual", G: g, Homes: []int{0, 2}, Seed: 1, Protocol: ProtoElect},
		{Instance: "quant", G: g, Homes: []int{0, 2}, Seed: 1, Protocol: ProtoQuantitative},
		{Instance: "quant-antipodal", G: g, Homes: []int{0, 3}, Seed: 1, Protocol: ProtoQuantitative},
		{Instance: "qual-antipodal", G: g, Homes: []int{0, 3}, Seed: 1, Protocol: ProtoElect},
	}
	rep, err := ExecuteRuns(runs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"leader", "leader", "leader", "unsolvable"}
	for i, want := range wants {
		if rep.Results[i].Outcome != want {
			t.Errorf("run %d (%s): outcome %q, want %q", i, runs[i].Instance, rep.Results[i].Outcome, want)
		}
		if !rep.Results[i].OK {
			t.Errorf("run %d: oracle mismatch: %+v", i, rep.Results[i])
		}
	}
	// Two distinct instances, four runs: both protocols share the cache.
	if rep.Summary.CacheMisses != 2 || rep.Summary.CacheHits != 2 {
		t.Errorf("cache hits/misses: %d/%d, want 2/2", rep.Summary.CacheHits, rep.Summary.CacheMisses)
	}
}

func TestParseFamilies(t *testing.T) {
	fams, err := ParseFamilies("cycle:9,12 ; hypercube:3;petersen", "spread", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("families: %d, want 3", len(fams))
	}
	if fams[0].Family != "cycle" || !reflect.DeepEqual(fams[0].Sizes, []int{9, 12}) {
		t.Errorf("cycle spec wrong: %+v", fams[0])
	}
	if fams[2].Family != "petersen" || len(fams[2].Sizes) != 0 {
		t.Errorf("petersen spec wrong: %+v", fams[2])
	}
	if _, err := ParseFamilies("cycle:x", "spread", 2); err == nil {
		t.Error("bad size should fail")
	}
}

func TestParseSeedRange(t *testing.T) {
	r, err := ParseSeedRange("1..25")
	if err != nil || r.From != 1 || r.To != 25 || r.Count() != 25 {
		t.Fatalf("range: %+v err=%v", r, err)
	}
	r, err = ParseSeedRange("7")
	if err != nil || r.From != 7 || r.To != 7 || r.Count() != 1 {
		t.Fatalf("single: %+v err=%v", r, err)
	}
	if _, err := ParseSeedRange("a..b"); err == nil {
		t.Error("bad range should fail")
	}
}

func TestExpandPlacements(t *testing.T) {
	cases := []struct {
		strategy string
		r, n     int
		want     [][]int
	}{
		{"spread", 3, 12, [][]int{{0, 4, 8}}},
		{"spread", 2, 16, [][]int{{0, 8}}},
		{"adjacent", 3, 6, [][]int{{0, 1, 2}}},
		{"antipodal", 2, 10, [][]int{{0, 5}}},
		{"single", 1, 5, [][]int{{0}}},
	}
	for _, c := range cases {
		got, err := expandPlacement(c.strategy, c.r, c.n)
		if err != nil {
			t.Errorf("%s: %v", c.strategy, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s(r=%d,n=%d): %v, want %v", c.strategy, c.r, c.n, got, c.want)
		}
	}
	if _, err := expandPlacement("spread", 10, 5); err == nil {
		t.Error("r > n should fail")
	}
	if _, err := expandPlacement("bogus", 2, 5); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestExpandErrors(t *testing.T) {
	if _, err := (Spec{
		Families: []FamilySpec{{Family: "nosuch", Sizes: []int{4}}},
		Seeds:    SeedRange{From: 1, To: 1},
	}).Expand(); err == nil {
		t.Error("unknown family should fail")
	}
	if _, err := (Spec{
		Families: []FamilySpec{{Family: "cycle", Sizes: []int{6}}},
		Seeds:    SeedRange{From: 5, To: 1},
	}).Expand(); err == nil {
		t.Error("empty seed range should fail")
	}
	if _, err := (Spec{
		Families: []FamilySpec{{Family: "cycle", Sizes: []int{6}, Homes: [][]int{{0, 9}}}},
		Seeds:    SeedRange{From: 1, To: 1},
	}).Expand(); err == nil {
		t.Error("out-of-range home should fail")
	}
}

// TestStrategyAxis crosses a small campaign with adversary scheduling
// strategies: every run executes under the serializing scheduler, invariants
// are checked per run, and the seed instances stay clean.
func TestStrategyAxis(t *testing.T) {
	spec := Spec{
		Families: []FamilySpec{
			{Family: "cycle", Sizes: []int{6}, Placement: "spread", R: 2},
			{Family: "path", Sizes: []int{5}, Placement: "adjacent", R: 2},
		},
		Seeds:      SeedRange{From: 1, To: 2},
		Protocol:   ProtoElect,
		Strategies: []string{"round-robin", "same-class", "starve"},
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 3; len(runs) != want {
		t.Fatalf("expanded to %d runs, want %d", len(runs), want)
	}
	var jsonl bytes.Buffer
	rep, err := ExecuteRuns(runs, Options{JSONL: &jsonl})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.InvariantViolations != 0 {
		t.Fatalf("violations on seed instances:\n%s", rep.Summary.Render())
	}
	for _, r := range rep.Results {
		if r.Strategy == "" {
			t.Fatalf("run %d lost its strategy", r.Index)
		}
		if !r.OK || r.Err != "" {
			t.Fatalf("run %+v not clean", r)
		}
	}
	// The strategy must round-trip through the JSONL stream.
	var rec RunResult
	if err := json.Unmarshal(jsonl.Bytes()[:bytes.IndexByte(jsonl.Bytes(), '\n')], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Strategy == "" {
		t.Fatal("JSONL record lost the strategy field")
	}
}

// TestStrategyAxisCatchesViolations drives the broken test protocol through
// the strategy axis and expects the per-run invariant checker to flag it.
func TestStrategyAxisCatchesViolations(t *testing.T) {
	spec := Spec{
		Families:   []FamilySpec{{Family: "cycle", Sizes: []int{6}, Placement: "spread", R: 2}},
		Seeds:      SeedRange{From: 1, To: 2},
		Protocol:   ProtoElect,
		Strategies: []string{"round-robin"},
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		testProtocol: func(Run, int) sim.Protocol {
			return func(a *sim.Agent) (sim.Outcome, error) {
				return sim.Outcome{Role: sim.RoleLeader, Leader: a.Color()}, nil
			}
		},
	}
	rep, err := ExecuteRuns(runs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.InvariantViolations != len(runs) {
		t.Fatalf("want %d violating runs, got %d", len(runs), rep.Summary.InvariantViolations)
	}
	if len(rep.Failures()) != len(runs) {
		t.Fatalf("Failures() missed violating runs: %d", len(rep.Failures()))
	}
	if !strings.Contains(rep.Summary.Render(), "INVARIANT VIOLATIONS") {
		t.Fatal("summary does not surface the violations")
	}
}

// TestExpandRejectsUnknownStrategy keeps CLI typos at expansion time.
func TestExpandRejectsUnknownStrategy(t *testing.T) {
	spec := Spec{
		Families:   []FamilySpec{{Family: "cycle", Sizes: []int{6}}},
		Seeds:      SeedRange{From: 1, To: 1},
		Strategies: []string{"nope"},
	}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

// TestParseStrategies covers the CLI syntax.
func TestParseStrategies(t *testing.T) {
	if got, err := ParseStrategies(""); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	got, err := ParseStrategies("all")
	if err != nil || len(got) < 5 {
		t.Fatalf("all: %v %v", got, err)
	}
	if got, err := ParseStrategies("random, lockstep"); err != nil || len(got) != 2 {
		t.Fatalf("pair: %v %v", got, err)
	}
	if _, err := ParseStrategies("random,bogus"); err == nil {
		t.Fatal("want error for bogus strategy")
	}
}

// TestFaultAxis crosses the campaign with fault strategies: the expansion
// defaults to the random scheduler (fault injection needs the turnstile),
// every fault run carries its manifest through the JSONL stream, the
// fault-aware invariants stay clean, and the summary aggregates the plane.
func TestFaultAxis(t *testing.T) {
	spec := Spec{
		Families: []FamilySpec{
			{Family: "star", Sizes: []int{4}, Homes: [][]int{{1, 2}}},
			{Family: "cycle", Sizes: []int{6}, Placement: "spread", R: 3},
		},
		Seeds:    SeedRange{From: 1, To: 3},
		Protocol: ProtoElect,
		Faults:   []string{"crash-frontrunner", "stale-reads"},
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 3; len(runs) != want {
		t.Fatalf("expanded to %d runs, want %d", len(runs), want)
	}
	for _, r := range runs {
		if r.Strategy != "random" {
			t.Fatalf("fault run did not default to the random scheduler: %+v", r)
		}
		if r.Fault == "" {
			t.Fatalf("run lost its fault strategy: %+v", r)
		}
	}
	var jsonl bytes.Buffer
	rep, err := ExecuteRuns(runs, Options{JSONL: &jsonl})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.InvariantViolations != 0 {
		t.Fatalf("fault sweep broke safety:\n%s", rep.Summary.Render())
	}
	if rep.Summary.FaultRuns != len(runs) {
		t.Fatalf("FaultRuns = %d, want %d", rep.Summary.FaultRuns, len(runs))
	}
	if rep.Summary.CrashedAgents == 0 {
		t.Fatal("no crashes across the whole fault sweep — injection not wired")
	}
	for _, r := range rep.Results {
		if r.Fault != "" && r.FaultPlan == "" {
			t.Fatalf("run %d (%s) lost its fault plan", r.Index, r.Fault)
		}
	}
	if !strings.Contains(rep.Summary.Render(), "fault plane:") {
		t.Fatal("summary does not surface the fault plane")
	}
	// The manifest must round-trip through JSONL.
	var rec RunResult
	if err := json.Unmarshal(jsonl.Bytes()[:bytes.IndexByte(jsonl.Bytes(), '\n')], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Fault == "" {
		t.Fatal("JSONL record lost the fault field")
	}
}

// TestExpandRejectsUnknownFault keeps CLI typos at expansion time.
func TestExpandRejectsUnknownFault(t *testing.T) {
	spec := Spec{
		Families: []FamilySpec{{Family: "cycle", Sizes: []int{6}}},
		Seeds:    SeedRange{From: 1, To: 1},
		Faults:   []string{"meteor-strike"},
	}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("want error for unknown fault strategy")
	}
}

// TestParseFaults covers the CLI fault syntax.
func TestParseFaults(t *testing.T) {
	if got, err := ParseFaults(""); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	got, err := ParseFaults("all")
	if err != nil || len(got) != 5 {
		t.Fatalf("all: %v %v", got, err)
	}
	if got, err := ParseFaults("stale-reads, crash-lockholder"); err != nil || len(got) != 2 {
		t.Fatalf("pair: %v %v", got, err)
	}
	if _, err := ParseFaults("crash-frontrunner,bogus"); err == nil {
		t.Fatal("want error for bogus fault")
	}
}
