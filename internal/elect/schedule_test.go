package elect

import "testing"

// TestScheduleSingleClass: with only one class the reduction has nothing to
// consume — no phases, and the final d is that class's size (so gcd > 1
// instances are reported unsolvable without any reduction work).
func TestScheduleSingleClass(t *testing.T) {
	for _, tc := range []struct {
		size     int
		numBlack int
	}{
		{1, 1}, // one lone black agent: already elected
		{4, 1}, // one black class of 4
		{5, 0}, // degenerate: no black classes at all
	} {
		sizes := []int{tc.size}
		sc := computeScheduleOpt(sizes, tc.numBlack, false)
		if len(sc.phases) != 0 {
			t.Errorf("sizes=%v numBlack=%d: got %d phases, want 0", sizes, tc.numBlack, len(sc.phases))
		}
		if sc.finalD != tc.size {
			t.Errorf("sizes=%v numBlack=%d: finalD=%d, want %d", sizes, tc.numBlack, sc.finalD, tc.size)
		}
	}
}

// TestScheduleAllMultiplesSkipped: when every later class size is a multiple
// of the running d, gcd(d, |C_i|) = d for all of them — every phase is
// skipped, finalD stays sizes[0], yet the no-skip ablation still executes
// one phase per class with dOut == dIn.
func TestScheduleAllMultiplesSkipped(t *testing.T) {
	sizes := []int{4, 8, 12, 16}
	for _, numBlack := range []int{1, 2, 4} {
		sc := computeScheduleOpt(sizes, numBlack, false)
		if len(sc.phases) != 0 {
			t.Errorf("numBlack=%d: got %d phases, want all skipped", numBlack, len(sc.phases))
		}
		if sc.finalD != 4 {
			t.Errorf("numBlack=%d: finalD=%d, want 4", numBlack, sc.finalD)
		}

		noSkip := computeScheduleOpt(sizes, numBlack, true)
		if len(noSkip.phases) != len(sizes)-1 {
			t.Errorf("numBlack=%d noSkip: got %d phases, want %d", numBlack, len(noSkip.phases), len(sizes)-1)
		}
		for _, p := range noSkip.phases {
			if p.dOut != p.dIn {
				t.Errorf("numBlack=%d noSkip class %d: dIn=%d dOut=%d, a no-op phase must keep d",
					numBlack, p.classIdx, p.dIn, p.dOut)
			}
		}
		if noSkip.finalD != 4 {
			t.Errorf("numBlack=%d noSkip: finalD=%d, want 4", numBlack, noSkip.finalD)
		}
	}
}

// TestScheduleGCDChainInvariant: with and without the skip, every executed
// phase must realize dOut = gcd(dIn, |C_classIdx|), phases must chain
// (dOut feeds the next phase's dIn), and both variants end at the same
// finalD = gcd of all class sizes — the skip is a pure cost optimization.
func TestScheduleGCDChainInvariant(t *testing.T) {
	cases := []struct {
		sizes    []int
		numBlack int
	}{
		{[]int{4, 6}, 2},
		{[]int{4, 6}, 1},
		{[]int{6, 10, 15}, 3},
		{[]int{6, 10, 15}, 2},
		{[]int{6, 10, 15}, 0},
		{[]int{9, 12, 30, 8}, 2},
		{[]int{5, 8}, 2},
		{[]int{12, 18, 8, 27}, 4},
		{[]int{2, 2, 2, 2}, 2},
		{[]int{7, 7, 7}, 1},
	}
	for _, tc := range cases {
		for _, noSkip := range []bool{false, true} {
			sc := computeScheduleOpt(tc.sizes, tc.numBlack, noSkip)
			d := tc.sizes[0]
			for _, p := range sc.phases {
				if p.dIn != d {
					t.Errorf("sizes=%v black=%d noSkip=%v class %d: dIn=%d, want chained %d",
						tc.sizes, tc.numBlack, noSkip, p.classIdx, p.dIn, d)
				}
				if want := gcdInt(p.dIn, tc.sizes[p.classIdx]); p.dOut != want {
					t.Errorf("sizes=%v black=%d noSkip=%v class %d: dOut=%d, want gcd(%d,%d)=%d",
						tc.sizes, tc.numBlack, noSkip, p.classIdx, p.dOut, p.dIn, tc.sizes[p.classIdx], want)
				}
				d = p.dOut
			}
			if sc.finalD != d {
				t.Errorf("sizes=%v black=%d noSkip=%v: finalD=%d, want chain end %d",
					tc.sizes, tc.numBlack, noSkip, sc.finalD, d)
			}
		}
		// Both variants converge to the same d; with skip it is the full gcd
		// chain unless it bottomed out at 1 early.
		withSkip := computeScheduleOpt(tc.sizes, tc.numBlack, false)
		noSkip := computeScheduleOpt(tc.sizes, tc.numBlack, true)
		if withSkip.finalD != noSkip.finalD {
			t.Errorf("sizes=%v black=%d: skip finalD=%d, noSkip finalD=%d",
				tc.sizes, tc.numBlack, withSkip.finalD, noSkip.finalD)
		}
		want := tc.sizes[0]
		for _, s := range tc.sizes {
			want = gcdInt(want, s)
		}
		if withSkip.finalD != want {
			t.Errorf("sizes=%v black=%d: finalD=%d, want gcd of all sizes %d",
				tc.sizes, tc.numBlack, withSkip.finalD, want)
		}
	}
}
