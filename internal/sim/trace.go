package sim

import (
	"time"

	"repro/internal/telemetry"
)

// EventKind classifies a trace event.
type EventKind int

const (
	// EvMove is a traversal of one edge.
	EvMove EventKind = iota
	// EvWrite is a sign written on a whiteboard.
	EvWrite
	// EvErase is a sign removed from a whiteboard.
	EvErase
	// EvWake is the moment an agent leaves its initial sleep.
	EvWake
	// EvOutcome is the agent's final protocol outcome.
	EvOutcome
	// EvCrash is an injected crash-stop (tag "holding-lock" when the agent
	// died inside an exclusive access, abandoning the node's lock; tag
	// "torn-write" when the crash was coupled to a partial write).
	EvCrash
	// EvRecover is a surviving agent breaking an abandoned lock after its
	// stall budget ran out (tag "lock-takeover").
	EvRecover
	// EvTorn is a partial (torn) whiteboard write; the tag holds the prefix
	// that actually landed (possibly empty: the write was lost).
	EvTorn
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvMove:
		return "move"
	case EvWrite:
		return "write"
	case EvErase:
		return "erase"
	case EvWake:
		return "wake"
	case EvOutcome:
		return "outcome"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvTorn:
		return "torn"
	default:
		return "unknown"
	}
}

// Event is one observer-side trace record. Unlike protocol code, the
// observer sees global identities: the agent index and physical node ids.
// Events are emitted synchronously from inside the runtime (whiteboard
// events under the board lock), so tracers must be fast and must not call
// back into the simulation.
type Event struct {
	At    time.Duration // since the run started
	Agent int           // agent index (matches Result slices)
	Kind  EventKind
	Node  int    // physical node where the event happened (destination for moves)
	Tag   string // sign tag for EvWrite/EvErase; role string for EvOutcome
	// Phase is the protocol phase the emitting agent had declared via
	// Agent.SetPhase at the time of the event (PhaseNone before the first
	// declaration and for protocols that declare none).
	Phase telemetry.Phase
}

// Tracer receives trace events. Nil disables tracing.
type Tracer func(Event)

func (e *engine) trace(agent int, kind EventKind, node int, tag string) {
	if e.cfg.Tracer == nil {
		return
	}
	// Reading the agent's phase without synchronization is safe: every
	// event kind is emitted from the owning agent's goroutine (moves and
	// whiteboard events from protocol calls, wake/outcome from the agent's
	// run loop), the same goroutine that calls SetPhase.
	e.cfg.Tracer(Event{
		At:    time.Since(e.started),
		Agent: agent,
		Kind:  kind,
		Node:  node,
		Tag:   tag,
		Phase: e.agents[agent].phase,
	})
}
