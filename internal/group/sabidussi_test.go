package group

import (
	"testing"

	"repro/internal/graph"
)

func TestSabidussiQuotientReproducesGraph(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		aut  int // expected |Aut|
	}{
		{"C5", graph.Cycle(5), 10},
		{"C6", graph.Cycle(6), 12},
		{"K4", graph.Complete(4), 24},
		{"Q3", graph.Hypercube(3), 48},
		{"petersen", graph.Petersen(), 120},
		{"prism3", graph.Prism(3), 12},
		{"K33", graph.CompleteBipartite(3, 3), 72},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := SabidussiQuotient(c.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if s.CayleyOrder() != c.aut {
				t.Errorf("|Aut| = %d, want %d", s.CayleyOrder(), c.aut)
			}
			if s.CayleyOrder() != c.g.N()*s.StabilizerOrder() {
				t.Errorf("orbit-stabilizer violated: %d != %d * %d",
					s.CayleyOrder(), c.g.N(), s.StabilizerOrder())
			}
			if !s.QuotientIsomorphicToInput(c.g) {
				t.Errorf("quotient not isomorphic to input (quotient: %v)", s.Quotient)
			}
		})
	}
}

func TestSabidussiPetersenDestroysTranslations(t *testing.T) {
	// The Section 4 closing remark: Petersen = Cay(Aut, S)/H with |H| = 12;
	// the quotient identifies 12 covering vertices per node, which is what
	// invalidates a Theorem 4.1-style argument — Petersen itself has no
	// regular subgroup (it is not Cayley) although its cover trivially does.
	g := graph.Petersen()
	s, err := SabidussiQuotient(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.StabilizerOrder() != 12 {
		t.Errorf("stabilizer order %d, want 120/10 = 12", s.StabilizerOrder())
	}
	rec, err := Recognize(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.IsCayley {
		t.Error("Petersen must not be Cayley")
	}
}

func TestSabidussiRejectsNonTransitive(t *testing.T) {
	if _, err := SabidussiQuotient(graph.Path(4), 0); err == nil {
		t.Error("path accepted (not vertex-transitive)")
	}
	if _, err := SabidussiQuotient(graph.Star(3), 0); err == nil {
		t.Error("star accepted")
	}
}
