package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestStreamHandlerFraming is a golden test for the SSE wire format: two
// events with ascending ids, each exactly "id:/event:/data:" lines and a
// blank separator, with the data line decoding to the registry snapshot.
func TestStreamHandlerFraming(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(42)
	r.Gauge("inflight").Set(3)
	r.Histogram("moves", ExpBuckets(10, 4, 3)).Observe(25)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/metrics/stream?n=2&interval_ms=100", nil)
	r.StreamHandler().ServeHTTP(rec, req)

	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("Cache-Control = %q, want no-cache", cc)
	}

	events := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n\n")
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2:\n%s", len(events), rec.Body.String())
	}
	for i, ev := range events {
		lines := strings.Split(ev, "\n")
		if len(lines) != 3 {
			t.Fatalf("event %d has %d lines, want 3 (id/event/data):\n%s", i, len(lines), ev)
		}
		if want := "id: " + string(rune('1'+i)); lines[0] != want {
			t.Errorf("event %d id line = %q, want %q", i, lines[0], want)
		}
		if lines[1] != "event: metrics" {
			t.Errorf("event %d type line = %q, want %q", i, lines[1], "event: metrics")
		}
		data, ok := strings.CutPrefix(lines[2], "data: ")
		if !ok {
			t.Fatalf("event %d data line = %q, want data: prefix", i, lines[2])
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			t.Fatalf("event %d data is not JSON: %v", i, err)
		}
		if snap.Counters["runs_total"] != 42 || snap.Gauges["inflight"] != 3 {
			t.Errorf("event %d snapshot = %+v, want runs_total=42 inflight=3", i, snap)
		}
		if h := snap.Histograms["moves"]; h.Count != 1 || h.Sum != 25 {
			t.Errorf("event %d histogram = %+v, want count=1 sum=25", i, h)
		}
	}
}

func TestStreamHandlerBadParams(t *testing.T) {
	r := NewRegistry()
	for _, q := range []string{"?interval_ms=abc", "?n=-1", "?n=x"} {
		rec := httptest.NewRecorder()
		r.StreamHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/stream"+q, nil))
		if rec.Code != 400 {
			t.Errorf("query %q: status = %d, want 400", q, rec.Code)
		}
	}
}

func TestStreamHandlerNilRegistry(t *testing.T) {
	var r *Registry
	rec := httptest.NewRecorder()
	r.StreamHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/stream?n=1", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"counters":{}`) {
		t.Fatalf("nil registry should stream empty snapshot, got:\n%s", rec.Body.String())
	}
}

func TestDashboardHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	DashboardHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/live", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q, want text/html", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"EventSource", "/debug/metrics/stream", "histograms"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}
	if strings.Contains(body, "http://") || strings.Contains(body, "https://") {
		t.Error("dashboard must be self-contained: found an external URL")
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gone")
	r.Gauge("stays").Set(7)
	if !r.Unregister("gone") {
		t.Fatal("Unregister(existing) = false")
	}
	if r.Unregister("gone") {
		t.Fatal("Unregister(absent) = true")
	}
	c.Inc() // orphan handle must not panic or resurrect the metric
	snap := r.Snapshot()
	if _, ok := snap.Counters["gone"]; ok {
		t.Fatal("unregistered counter still in snapshot")
	}
	if snap.Gauges["stays"] != 7 {
		t.Fatal("Unregister removed an unrelated metric")
	}
	if v := r.Counter("gone").Value(); v != 0 {
		t.Fatalf("re-created counter = %d, want fresh 0", v)
	}
	var nilReg *Registry
	if nilReg.Unregister("x") {
		t.Fatal("nil registry Unregister = true")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", ExpBuckets(10, 10, 2))
	r.Counter("reqs").Add(100)
	r.Gauge("depth").Set(5)
	h.Observe(5)
	before := r.Snapshot()

	r.Counter("reqs").Add(23)
	r.Counter("fresh").Add(9) // registered mid-window
	r.Gauge("depth").Set(2)
	h.Observe(500)
	d := r.Snapshot().Delta(before)

	if d.Counters["reqs"] != 23 {
		t.Errorf("delta reqs = %d, want 23", d.Counters["reqs"])
	}
	if d.Counters["fresh"] != 9 {
		t.Errorf("delta fresh = %d, want full value 9", d.Counters["fresh"])
	}
	if d.Gauges["depth"] != 2 {
		t.Errorf("delta gauge = %d, want current level 2", d.Gauges["depth"])
	}
	dh := d.Histograms["lat"]
	if dh.Count != 1 || dh.Sum != 500 {
		t.Errorf("delta histogram = count %d sum %d, want 1/500", dh.Count, dh.Sum)
	}
	if dh.Buckets[0].Count != 0 || !dh.Buckets[len(dh.Buckets)-1].Overflow || dh.Buckets[len(dh.Buckets)-1].Count != 1 {
		t.Errorf("delta buckets = %+v, want only the overflow bucket incremented", dh.Buckets)
	}
}

// TestConcurrentScrape is the Unregister/Snapshot regression test: one
// goroutine scrapes continuously while others register, update and
// unregister the same names. Run under -race; correctness here is "no
// race, no panic, snapshots internally consistent".
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"shared", "churn"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				n := names[i%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n + "_g").Set(int64(i))
				r.Histogram(n+"_h", ExpBuckets(1, 2, 4)).Observe(int64(i % 10))
				if i%7 == 0 {
					r.Unregister(n)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
			t.Fatal("snapshot with nil maps")
		}
		rec := httptest.NewRecorder()
		r.StreamHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/s?n=1", nil))
		if rec.Code != 200 {
			t.Fatalf("scrape %d: status %d", i, rec.Code)
		}
	}
	close(done)
	wg.Wait()
}
