// Package group implements finite groups and Cayley graphs: construction of
// Cay(Γ, S) with its natural generator edge-labeling (Definition 1.2 and the
// labeling used in the proof of Theorem 4.1), recognition of Cayley graphs
// via Sabidussi's criterion (a graph is Cayley iff its automorphism group
// contains a regular subgroup), and the translation machinery that the
// effectual protocol of Section 4 relies on.
package group

import (
	"errors"
	"fmt"
)

// Group is a finite group given by its multiplication table.
// Elements are integers 0..n-1; element 0 is always the identity.
type Group struct {
	name string
	mul  [][]int
	inv  []int
	elem []string // display names
}

// FromTable builds a group from a multiplication table (mul[a][b] = a*b).
// It validates closure, identity at index 0, inverses and associativity.
// names is optional (nil for default numeric names).
func FromTable(name string, mul [][]int, names []string) (*Group, error) {
	n := len(mul)
	for a := 0; a < n; a++ {
		if len(mul[a]) != n {
			return nil, errors.New("group: table not square")
		}
		for b := 0; b < n; b++ {
			if mul[a][b] < 0 || mul[a][b] >= n {
				return nil, errors.New("group: table entry out of range")
			}
		}
	}
	for a := 0; a < n; a++ {
		if mul[0][a] != a || mul[a][0] != a {
			return nil, errors.New("group: element 0 is not the identity")
		}
	}
	inv := make([]int, n)
	for a := 0; a < n; a++ {
		found := false
		for b := 0; b < n; b++ {
			if mul[a][b] == 0 && mul[b][a] == 0 {
				inv[a] = b
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("group: element %d has no inverse", a)
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for c := 0; c < n; c++ {
				if mul[mul[a][b]][c] != mul[a][mul[b][c]] {
					return nil, fmt.Errorf("group: associativity fails at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
	g := &Group{name: name, mul: mul, inv: inv, elem: names}
	if g.elem == nil {
		g.elem = make([]string, n)
		for i := range g.elem {
			g.elem[i] = fmt.Sprintf("g%d", i)
		}
	}
	return g, nil
}

// mustFromTable panics on invalid tables; for the package's own constructors.
func mustFromTable(name string, mul [][]int, names []string) *Group {
	g, err := FromTable(name, mul, names)
	if err != nil {
		panic("group: internal constructor built an invalid table: " + err.Error())
	}
	return g
}

// Order returns |Γ|.
func (g *Group) Order() int { return len(g.mul) }

// Name returns the group's display name, e.g. "Z6".
func (g *Group) Name() string { return g.name }

// Mul returns a*b.
func (g *Group) Mul(a, b int) int { return g.mul[a][b] }

// Inv returns a⁻¹.
func (g *Group) Inv(a int) int { return g.inv[a] }

// Identity returns the identity element (always 0).
func (g *Group) Identity() int { return 0 }

// ElemName returns the display name of element a.
func (g *Group) ElemName(a int) string { return g.elem[a] }

// ElemOrder returns the multiplicative order of a.
func (g *Group) ElemOrder(a int) int {
	k, x := 1, a
	for x != 0 {
		x = g.mul[x][a]
		k++
	}
	return k
}

// IsAbelian reports whether the group is commutative.
func (g *Group) IsAbelian() bool {
	n := g.Order()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if g.mul[a][b] != g.mul[b][a] {
				return false
			}
		}
	}
	return true
}

// Generates reports whether the set gens generates the whole group.
func (g *Group) Generates(gens []int) bool {
	reached := map[int]bool{0: true}
	frontier := []int{0}
	for len(frontier) > 0 {
		var next []int
		for _, x := range frontier {
			for _, s := range gens {
				y := g.mul[x][s]
				if !reached[y] {
					reached[y] = true
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	return len(reached) == g.Order()
}

// Cyclic returns Z_n with addition modulo n.
func Cyclic(n int) *Group {
	if n < 1 {
		panic("group: Cyclic needs n >= 1")
	}
	mul := make([][]int, n)
	names := make([]string, n)
	for a := 0; a < n; a++ {
		mul[a] = make([]int, n)
		for b := 0; b < n; b++ {
			mul[a][b] = (a + b) % n
		}
		names[a] = fmt.Sprintf("%d", a)
	}
	return mustFromTable(fmt.Sprintf("Z%d", n), mul, names)
}

// Direct returns the direct product a × b.
func Direct(a, b *Group) *Group {
	na, nb := a.Order(), b.Order()
	n := na * nb
	// Element (x, y) is encoded x*nb + y, so identity (0,0) stays 0.
	mul := make([][]int, n)
	names := make([]string, n)
	for x1 := 0; x1 < na; x1++ {
		for y1 := 0; y1 < nb; y1++ {
			i := x1*nb + y1
			mul[i] = make([]int, n)
			names[i] = fmt.Sprintf("(%s,%s)", a.ElemName(x1), b.ElemName(y1))
			for x2 := 0; x2 < na; x2++ {
				for y2 := 0; y2 < nb; y2++ {
					j := x2*nb + y2
					mul[i][j] = a.Mul(x1, x2)*nb + b.Mul(y1, y2)
				}
			}
		}
	}
	return mustFromTable(a.Name()+"x"+b.Name(), mul, names)
}

// ElementaryAbelian2 returns Z_2^d, the group of the d-dimensional
// hypercube, with bitwise-xor multiplication.
func ElementaryAbelian2(d int) *Group {
	n := 1 << uint(d)
	mul := make([][]int, n)
	names := make([]string, n)
	for a := 0; a < n; a++ {
		mul[a] = make([]int, n)
		names[a] = fmt.Sprintf("%0*b", d, a)
		for b := 0; b < n; b++ {
			mul[a][b] = a ^ b
		}
	}
	return mustFromTable(fmt.Sprintf("Z2^%d", d), mul, names)
}

// Dihedral returns D_n of order 2n: rotations r^k (encoded k) and
// reflections s·r^k (encoded n+k), with s·r·s = r⁻¹.
func Dihedral(n int) *Group {
	if n < 1 {
		panic("group: Dihedral needs n >= 1")
	}
	size := 2 * n
	mul := make([][]int, size)
	names := make([]string, size)
	enc := func(flip, rot int) int {
		if flip == 0 {
			return rot
		}
		return n + rot
	}
	for f1 := 0; f1 < 2; f1++ {
		for r1 := 0; r1 < n; r1++ {
			i := enc(f1, r1)
			mul[i] = make([]int, size)
			if f1 == 0 {
				names[i] = fmt.Sprintf("r%d", r1)
			} else {
				names[i] = fmt.Sprintf("sr%d", r1)
			}
			for f2 := 0; f2 < 2; f2++ {
				for r2 := 0; r2 < n; r2++ {
					j := enc(f2, r2)
					// (f1, r1) * (f2, r2): with s r s = r^{-1}:
					// r^{r1} * s^{f2} r^{r2} = s^{f2} r^{±r1+r2}.
					var rot int
					if f2 == 0 {
						rot = (r1 + r2) % n
					} else {
						rot = ((r2-r1)%n + n) % n
					}
					mul[i][j] = enc(f1^f2, rot)
				}
			}
		}
	}
	return mustFromTable(fmt.Sprintf("D%d", n), mul, names)
}

// Symmetric returns the symmetric group S_k (order k!), elements being
// permutations of {0..k-1} in lexicographic rank order (identity first).
func Symmetric(k int) *Group {
	if k < 1 || k > 6 {
		panic("group: Symmetric supports 1 <= k <= 6")
	}
	// Enumerate permutations in lexicographic order.
	var perms [][]int
	cur := make([]int, k)
	for i := range cur {
		cur[i] = i
	}
	used := make([]bool, k)
	var gen func(pos int, acc []int)
	gen = func(pos int, acc []int) {
		if pos == k {
			perms = append(perms, append([]int(nil), acc...))
			return
		}
		for v := 0; v < k; v++ {
			if !used[v] {
				used[v] = true
				gen(pos+1, append(acc, v))
				used[v] = false
			}
		}
	}
	gen(0, nil)
	index := make(map[string]int, len(perms))
	key := func(p []int) string {
		b := make([]byte, len(p))
		for i, v := range p {
			b[i] = byte(v)
		}
		return string(b)
	}
	for i, p := range perms {
		index[key(p)] = i
	}
	n := len(perms)
	mul := make([][]int, n)
	names := make([]string, n)
	for i, p := range perms {
		mul[i] = make([]int, n)
		names[i] = fmt.Sprintf("%v", p)
		for j, q := range perms {
			// Product p*q acts as first q then p (function composition),
			// matching the convention (p*q)(x) = p(q(x)).
			r := make([]int, k)
			for x := 0; x < k; x++ {
				r[x] = p[q[x]]
			}
			mul[i][j] = index[key(r)]
		}
	}
	return mustFromTable(fmt.Sprintf("S%d", k), mul, names)
}

// Quaternion returns the quaternion group Q8 = {±1, ±i, ±j, ±k},
// encoded 1=0, -1=1, i=2, -i=3, j=4, -j=5, k=6, -k=7.
func Quaternion() *Group {
	// Represent elements as pairs (sign, axis) with axis in {1, i, j, k}.
	type q struct{ sign, axis int }
	dec := func(e int) q { return q{e & 1, e >> 1} }
	enc := func(v q) int { return v.axis<<1 | v.sign }
	// axis multiplication table with result sign: i*j=k, j*k=i, k*i=j, x*x=-1.
	axMul := [4][4]struct{ ax, sg int }{
		{{0, 0}, {1, 0}, {2, 0}, {3, 0}},
		{{1, 0}, {0, 1}, {3, 0}, {2, 1}},
		{{2, 0}, {3, 1}, {0, 1}, {1, 0}},
		{{3, 0}, {2, 0}, {1, 1}, {0, 1}},
	}
	names := []string{"1", "-1", "i", "-i", "j", "-j", "k", "-k"}
	mul := make([][]int, 8)
	for a := 0; a < 8; a++ {
		mul[a] = make([]int, 8)
		for b := 0; b < 8; b++ {
			qa, qb := dec(a), dec(b)
			r := axMul[qa.axis][qb.axis]
			mul[a][b] = enc(q{sign: qa.sign ^ qb.sign ^ r.sg, axis: r.ax})
		}
	}
	return mustFromTable("Q8", mul, names)
}
