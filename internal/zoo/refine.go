package zoo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// mapArc is one directed port of the reconstructed map: the edge label on
// this side, the label on the far side, and the far endpoint.
type mapArc struct {
	lab, far, to int
}

// mapData is the decision-facing form of an instance: the port-labeled
// (multi)graph plus the home-base occupancy of every node. Agents build it
// from their traversal records (walkState.reconstruct); the central oracle
// builds it from the true instance (mapFromGraph). Both feed the same pure
// decision functions, and every decision depends on mapData only through
// numbering-invariant quantities (canonical view classes), so the walker's
// discovery numbering and the true node numbering decide identically.
type mapData struct {
	n     int
	arcs  [][]mapArc
	homes []int
}

// sortArcs orders every node's arcs by label (labels are distinct per
// node), the canonical presentation both constructions normalize to.
func (m *mapData) sortArcs() {
	for v := range m.arcs {
		arcs := m.arcs[v]
		sort.Slice(arcs, func(i, j int) bool { return arcs[i].lab < arcs[j].lab })
	}
}

// mapFromGraph builds mapData from the true instance.
func mapFromGraph(g *graph.Graph, labels graph.EdgeLabeling, homes []int) mapData {
	n := g.N()
	m := mapData{n: n, arcs: make([][]mapArc, n), homes: make([]int, n)}
	for _, h := range homes {
		m.homes[h]++
	}
	for v := 0; v < n; v++ {
		for p := 0; p < g.Deg(v); p++ {
			h := g.Port(v, p)
			m.arcs[v] = append(m.arcs[v], mapArc{
				lab: labels[v][p],
				far: labels[h.To][h.Twin],
				to:  h.To,
			})
		}
	}
	m.sortArcs()
	return m
}

// refineClasses computes the view-equivalence classes of the map's nodes:
// the coarsest partition equitable with respect to (degree, home count) and
// the labeled arc structure — two nodes land in one class iff their infinite
// port-labeled views (with home-base coloring) are equal. The returned class
// ids are canonical: they depend only on the isomorphism type of the map,
// never on its node numbering, so every agent's reconstruction and the
// central oracle rank classes identically.
func refineClasses(m mapData) []int {
	keys := make([]string, m.n)
	for v := range keys {
		keys[v] = fmt.Sprintf("%d.%d", len(m.arcs[v]), m.homes[v])
	}
	class := rankKeys(keys)
	for round := 0; round < m.n; round++ {
		next := make([]string, m.n)
		for v := 0; v < m.n; v++ {
			parts := make([]string, len(m.arcs[v]))
			for i, a := range m.arcs[v] {
				parts[i] = fmt.Sprintf("%d.%d.%d", a.lab, a.far, class[a.to])
			}
			sort.Strings(parts)
			next[v] = fmt.Sprintf("%d~%s", class[v], strings.Join(parts, "~"))
		}
		nc := rankKeys(next)
		if samePartition(class, nc) {
			return nc
		}
		class = nc
	}
	return class
}

// rankKeys maps each key string to the rank of its value among the sorted
// distinct keys — equal keys get equal ids, and the ids depend only on the
// multiset of keys.
func rankKeys(keys []string) []int {
	uniq := append([]string(nil), keys...)
	sort.Strings(uniq)
	uniq = uniq[:uniqCompact(uniq)]
	rank := make(map[string]int, len(uniq))
	for i, k := range uniq {
		rank[k] = i
	}
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = rank[k]
	}
	return out
}

// uniqCompact deduplicates a sorted slice in place, returning the new length.
func uniqCompact(xs []string) int {
	w := 0
	for i, x := range xs {
		if i == 0 || x != xs[w-1] {
			xs[w] = x
			w++
		}
	}
	return w
}

// samePartition reports whether two class assignments induce the same
// partition (ids may differ).
func samePartition(a, b []int) bool {
	fwd, bwd := map[int]int{}, map[int]int{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]], bwd[b[i]] = b[i], a[i]
	}
	return true
}

// classSizes counts members per class id.
func classSizes(class []int) map[int]int {
	size := make(map[int]int)
	for _, c := range class {
		size[c]++
	}
	return size
}

// singletonHomeWinner returns the node holding exactly one home-base whose
// view class is a singleton, taking the minimal class id when several
// qualify; -1 when none does. This is the shared solvability rule of the
// Dereniowski–Pelc and weak-election kinds: a singleton view class is a
// node every agent can point to unambiguously, so its resident wins.
func singletonHomeWinner(m mapData, class []int) int {
	size := classSizes(class)
	best := -1
	for v := 0; v < m.n; v++ {
		if m.homes[v] != 1 || size[class[v]] != 1 {
			continue
		}
		if best < 0 || class[v] < class[best] {
			best = v
		}
	}
	return best
}

// allSingleton reports whether every view class is a singleton — full
// topology recognition: each node of the map is uniquely identifiable.
func allSingleton(class []int, n int) bool {
	return len(classSizes(class)) == n
}

// canonicalSink runs the canonical greedy dismantling: repeatedly remove
// every dominated vertex of the minimal view class (v is dominated when some
// other live vertex's closed neighborhood contains v's, restricted to live
// vertices). On a dismantlable graph with enough asymmetry this eliminates
// all vertices but one — the sink; otherwise (no dominated vertex, or a
// symmetric final class that would remove everything) it reports failure.
func canonicalSink(m mapData, class []int) (int, bool) {
	adj := make([]map[int]bool, m.n)
	for v := 0; v < m.n; v++ {
		adj[v] = map[int]bool{v: true}
		for _, a := range m.arcs[v] {
			adj[v][a.to] = true
		}
	}
	alive := make([]bool, m.n)
	for i := range alive {
		alive[i] = true
	}
	count := m.n
	for count > 1 {
		var dom []int
		for v := 0; v < m.n; v++ {
			if !alive[v] {
				continue
			}
			for u := range adj[v] {
				if u == v || !alive[u] {
					continue
				}
				contained := true
				for w := range adj[v] {
					if alive[w] && !adj[u][w] {
						contained = false
						break
					}
				}
				if contained {
					dom = append(dom, v)
					break
				}
			}
		}
		if len(dom) == 0 {
			return -1, false
		}
		minC := class[dom[0]]
		for _, v := range dom[1:] {
			if class[v] < minC {
				minC = class[v]
			}
		}
		removing := 0
		for _, v := range dom {
			if class[v] == minC {
				removing++
			}
		}
		if removing == count {
			return -1, false
		}
		for _, v := range dom {
			if class[v] == minC {
				alive[v] = false
			}
		}
		count -= removing
	}
	for v := 0; v < m.n; v++ {
		if alive[v] {
			return v, true
		}
	}
	return -1, false
}

// bfsDist returns the hop distances from src over the map.
func bfsDist(m mapData, src int) []int {
	dist := make([]int, m.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range m.arcs[v] {
			if dist[a.to] < 0 {
				dist[a.to] = dist[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return dist
}

// nearestHome returns the single-resident home node canonically nearest the
// sink — minimal (BFS distance, view class id) — or -1 on a tie.
func nearestHome(m mapData, class []int, sink int) int {
	dist := bfsDist(m, sink)
	best := -1
	tie := false
	for v := 0; v < m.n; v++ {
		if m.homes[v] != 1 {
			continue
		}
		if best < 0 {
			best = v
			continue
		}
		switch {
		case dist[v] < dist[best], dist[v] == dist[best] && class[v] < class[best]:
			best, tie = v, false
		case dist[v] == dist[best] && class[v] == class[best]:
			tie = true
		}
	}
	if tie {
		return -1
	}
	return best
}

// decision is the outcome of a kind's pure solvability rule on a map.
type decision struct {
	solvable bool
	// winner is the winning node (in the map's numbering) when solvable;
	// -1 when the quantitative fallback names the winner by identity.
	winner int
	// fallback marks selection's quantitative max-identity tie-break.
	fallback bool
}

// decide applies kind k's solvability rule to the map. It is pure and
// numbering-invariant: every agent's reconstruction and the central oracle
// reach the same verdict and the same physical winner.
func decide(k kind, m mapData) decision {
	class := refineClasses(m)
	switch k {
	case kindDP, kindShadesWeak:
		if w := singletonHomeWinner(m, class); w >= 0 {
			return decision{solvable: true, winner: w}
		}
	case kindShadesStrong:
		if allSingleton(class, m.n) {
			if w := singletonHomeWinner(m, class); w >= 0 {
				return decision{solvable: true, winner: w}
			}
		}
	case kindShadesSelection:
		if w := singletonHomeWinner(m, class); w >= 0 {
			return decision{solvable: true, winner: w}
		}
		return decision{solvable: true, winner: -1, fallback: true}
	case kindUSO:
		if s, ok := canonicalSink(m, class); ok {
			if w := nearestHome(m, class, s); w >= 0 {
				return decision{solvable: true, winner: w}
			}
		}
	}
	return decision{winner: -1}
}
