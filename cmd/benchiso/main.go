// Command benchiso records the canonical-engine perf trajectory: it runs the
// shared benchmark kernels of internal/isobench through testing.Benchmark and
// writes BENCH_iso.json — per-kernel ns/op, allocs/op and bytes/op, plus the
// headline speedup of the optimized engine over the frozen pre-optimization
// reference on Analyze(C32), against the documented ≥5× target.
//
// Usage:
//
//	benchiso [-o BENCH_iso.json] [-benchtime 1s] [-smoke] [-quick] [-gate 5]
//
// -smoke runs every kernel once (CI uses it under -race so the artifact step
// stays fast); single-iteration timings are noisy, so a smoke report is
// flagged as such and never enforces the speedup target. -quick skips the
// large-family kernels (isobench.LargeCases — the 10³–10⁵-node sparse-engine
// workloads) for fast local iteration. -gate sets the required Analyze(C32)
// speedup of the optimized engine over the frozen reference; a full run
// exits nonzero when the measured speedup falls below it (CI enforces 15).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/isobench"
)

// benchResult is one kernel's measurement.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the BENCH_iso.json schema.
type report struct {
	// Speedup compares the reference vs optimized Analyze(C32) kernels —
	// the documented perf-trajectory headline (DESIGN.md §8).
	Speedup struct {
		Kernel        string  `json:"kernel"`
		ReferenceNsOp float64 `json:"reference_ns_per_op"`
		OptimizedNsOp float64 `json:"optimized_ns_per_op"`
		Speedup       float64 `json:"speedup"`
		Target        float64 `json:"target"`
		MeetsTarget   bool    `json:"meets_target"`
	} `json:"speedup"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Large holds the seq-vs-parallel pairs of the large-family kernels.
	// Interpret parallel speedups against gomaxprocs: with one schedulable
	// core the pool's speculative sibling exploration costs wall-clock
	// rather than saving it, and the honest pair shows < 1.
	Large      []largePair `json:"large,omitempty"`
	Smoke      bool        `json:"smoke,omitempty"`
	GoMaxProcs int         `json:"gomaxprocs"`
}

// largePair compares a sequential large kernel with its 4-worker variant.
type largePair struct {
	Kernel          string  `json:"kernel"`
	SequentialNsOp  float64 `json:"sequential_ns_per_op"`
	ParallelNsOp    float64 `json:"parallel_ns_per_op"`
	ParallelWorkers int     `json:"parallel_workers"`
	Speedup         float64 `json:"speedup"`
}

func main() {
	out := flag.String("o", "BENCH_iso.json", "output file")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per kernel")
	smoke := flag.Bool("smoke", false, "single iteration per kernel (fast CI smoke; timings are noisy)")
	quick := flag.Bool("quick", false, "skip the large-family kernels (fast local iteration)")
	gate := flag.Float64("gate", 5.0, "required Analyze(C32) speedup over the reference engine")
	testing.Init() // register test.* flags so test.benchtime is settable
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fail(err)
	}

	var rep report
	rep.Smoke = *smoke
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	cases := isobench.Cases()
	if !*quick {
		cases = append(cases, isobench.LargeCases()...)
	}
	byName := map[string]benchResult{}
	for _, c := range cases {
		r := measure(c, *smoke)
		rep.Benchmarks = append(rep.Benchmarks, r)
		byName[c.Name] = r
		fmt.Printf("%-30s %12.0f ns/op %8d B/op %6d allocs/op (%d iters)\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Iterations)
	}
	for _, p := range []struct{ kernel, seq, par string }{
		{"CanonicalSparse(C4096)", "CanonicalSparseC4096", "CanonicalSparseC4096Par4"},
		{"CanonicalSparse(TwinBlowup 32x4 doubled)", "CanonicalSparseTwinBlowup", "CanonicalSparseTwinBlowupPar4"},
	} {
		seq, okS := byName[p.seq]
		par, okP := byName[p.par]
		if !okS || !okP {
			continue
		}
		lp := largePair{Kernel: p.kernel, SequentialNsOp: seq.NsPerOp, ParallelNsOp: par.NsPerOp, ParallelWorkers: 4}
		if par.NsPerOp > 0 {
			lp.Speedup = seq.NsPerOp / par.NsPerOp
		}
		rep.Large = append(rep.Large, lp)
		fmt.Printf("parallel pair %s: %.2fx at 4 workers (gomaxprocs %d)\n",
			p.kernel, lp.Speedup, rep.GoMaxProcs)
	}

	ref, opt := byName["AnalyzeC32Reference"], byName["AnalyzeC32"]
	rep.Speedup.Kernel = "Analyze(C32, homes 0/8/16/24)"
	rep.Speedup.ReferenceNsOp = ref.NsPerOp
	rep.Speedup.OptimizedNsOp = opt.NsPerOp
	rep.Speedup.Target = *gate
	if opt.NsPerOp > 0 {
		rep.Speedup.Speedup = ref.NsPerOp / opt.NsPerOp
	}
	rep.Speedup.MeetsTarget = rep.Speedup.Speedup >= rep.Speedup.Target
	note := ""
	if *smoke {
		note = " [smoke run: noisy]"
	}
	fmt.Printf("speedup on %s: %.1fx (target %.0fx)%s\n",
		rep.Speedup.Kernel, rep.Speedup.Speedup, rep.Speedup.Target, note)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("written to %s\n", *out)
	if !*smoke && !rep.Speedup.MeetsTarget {
		fmt.Fprintf(os.Stderr, "benchiso: speedup %.1fx below the %.0fx target\n",
			rep.Speedup.Speedup, rep.Speedup.Target)
		os.Exit(1)
	}
}

func measure(c isobench.Case, smoke bool) benchResult {
	if smoke {
		// One hand-timed iteration; testing.Benchmark always calibrates
		// toward benchtime, which a -race CI smoke cannot afford.
		start := time.Now()
		c.Run(&testing.B{N: 1})
		return benchResult{Name: c.Name, Iterations: 1, NsPerOp: float64(time.Since(start))}
	}
	res := testing.Benchmark(c.Run)
	return benchResult{
		Name:        c.Name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchiso:", err)
	os.Exit(1)
}
