// Package campaign executes multi-seed election campaigns: a declarative
// spec (graph families × sizes × home placements × seed ranges × protocol)
// is expanded into a deterministic work list and driven through a bounded
// worker pool with per-run watchdog timeouts, bounded retry of aborted runs
// under a fresh seed offset, and a memoized analysis cache keyed by the
// canonical (graph, homes) form — so the expensive centralized analysis
// (class ordering, Cayley recognition, the Theorem 2.1 oracle) is computed
// once per instance instead of once per seed.
//
// Results stream to JSONL as runs complete, and an aggregate Summary
// reports outcome counts, move/access percentiles against the Theorem 3.1
// r·|E| bound, oracle mismatches, retry/watchdog counts, cache hit rate and
// wall-clock vs serial time. The experiment harness (internal/exp), the
// root benchmarks and cmd/campaign all execute through this engine.
//
// Execution is deterministic per (spec, seed) modulo worker interleaving:
// the work list order is fixed by the spec, each run's simulation is fully
// seeded, and per-run records carry their work-list index so sorted JSONL
// output is reproducible run-to-run.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/analysiscache"
	"repro/internal/elect"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/order"
	rtbackend "repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/zoo"
)

// Options tunes campaign execution. The zero value is usable: GOMAXPROCS
// workers, a 60s watchdog, 2 retries of watchdog-aborted runs, ratio bound
// 40.
type Options struct {
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// RunTimeout is the per-run watchdog: a simulation that exceeds it is
	// aborted (default 60s).
	RunTimeout time.Duration
	// MaxRetries bounds how many times an aborted run is re-executed under
	// a fresh seed offset (default 2; negative disables retries).
	MaxRetries int
	// RetrySeedOffset is added to the run seed per retry attempt so a stuck
	// adversary schedule is not replayed verbatim (default 1000003).
	RetrySeedOffset int64
	// MaxDelay, WakeAll, UseHairOrdering and AllowSharedHomes are passed
	// through to the simulation (see sim.Config / repro.RunConfig).
	MaxDelay         time.Duration
	WakeAll          bool
	UseHairOrdering  bool
	AllowSharedHomes bool
	// CayleyFallback sets CayleyOptions.FallbackToElect for ProtoCayley.
	CayleyFallback bool
	// RatioBound is the constant c the summary asserts moves ≤ c·r·|E|
	// against (default 40, matching the experiment suite).
	RatioBound float64
	// NoAnalysis skips the centralized analysis entirely: no cache, no
	// oracle prediction, every run trivially OK. Used by benchmarks that
	// measure pure protocol runtime.
	NoAnalysis bool
	// Cache, when set, is the shared analysis cache to memoize through —
	// the election daemon passes its process-wide cache here so campaign
	// requests coalesce with everything else the server analyzes. Nil
	// builds a private bounded cache for this campaign.
	Cache *analysiscache.Cache
	// CacheMaxBytes bounds the private cache built when Cache is nil
	// (0 = analysiscache.DefaultMaxBytes; negative = unbounded).
	CacheMaxBytes int64
	// JSONL, when set, receives one JSON record per completed run.
	JSONL io.Writer
	// Stream selects the summary-aggregation path: StreamAuto (default)
	// buffers per-run results below StreamThreshold and folds into
	// mergeable per-worker sketches at or above it; StreamOn / StreamOff
	// force one path. Streamed campaigns hold O(1) aggregation memory —
	// Report.Results is nil, a bounded failure sample stands in, and
	// summary percentiles carry at most sketch.RelativeError relative
	// error (Summary.Streamed / Summary.SketchRelErr).
	Stream StreamMode
	// StreamThreshold is the StreamAuto cutover work-list size
	// (default DefaultStreamThreshold = 100000).
	StreamThreshold int

	// Telemetry enables per-run collection: each run gets a telemetry.Run,
	// its per-phase move/access/write/erase totals land in RunResult, the
	// Summary aggregates phase percentiles and the campaign's iso
	// search-tree counter delta. Setting Metrics or Timeline implies it.
	Telemetry bool
	// Metrics, when set, receives live campaign counters (runs, outcomes,
	// retries, per-phase totals, a run-moves histogram) — serve it at
	// /debug/metrics for a live view of a long campaign.
	Metrics *telemetry.Registry
	// Timeline, when set, receives the campaign's worker-span timeline as
	// Chrome trace_event JSON (one track per worker, one span per run)
	// after the campaign completes; open it in Perfetto.
	Timeline io.Writer
	// TraceSink, when set, receives every run's simulation events through
	// a per-run buffered tracer (see sim.BufferedTracer); events dropped
	// on a full buffer are counted in RunResult.TraceDropped.
	TraceSink sim.Tracer
	// TraceBuffer sizes the per-run trace buffer (default
	// sim.DefaultTraceBuffer).
	TraceBuffer int

	// testProtocol, when set (tests only), overrides the protocol for each
	// attempt — used to exercise the watchdog/retry path deterministically.
	testProtocol func(run Run, attempt int) sim.Protocol
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 60 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetrySeedOffset == 0 {
		o.RetrySeedOffset = 1_000_003
	}
	if o.RatioBound == 0 {
		o.RatioBound = 40
	}
	if o.Metrics != nil || o.Timeline != nil {
		o.Telemetry = true
	}
	if o.StreamThreshold <= 0 {
		o.StreamThreshold = DefaultStreamThreshold
	}
	return o
}

// streamed decides the aggregation path for a work list of n runs.
func (o Options) streamed(n int) bool {
	switch o.Stream {
	case StreamOn:
		return true
	case StreamOff:
		return false
	default:
		return n >= o.StreamThreshold
	}
}

// protoInfo is a constructed protocol plus its model requirements.
type protoInfo struct {
	p     sim.Protocol
	quant bool
}

// protocolFor constructs the protocol for a kind. Protocols returned by the
// elect package are stateless closures, safe to share across concurrent
// runs.
func protocolFor(kind ProtocolKind, opt Options) (protoInfo, error) {
	ord := order.Direct
	if opt.UseHairOrdering {
		ord = order.Hairs
	}
	switch kind {
	case ProtoElect:
		return protoInfo{p: elect.Elect(elect.Options{Ordering: ord})}, nil
	case ProtoCayley:
		return protoInfo{p: elect.CayleyElect(elect.CayleyOptions{
			Ordering: ord, FallbackToElect: opt.CayleyFallback})}, nil
	case ProtoQuantitative:
		return protoInfo{p: elect.QuantitativeElect(), quant: true}, nil
	case ProtoPetersen:
		return protoInfo{p: elect.PetersenElect()}, nil
	case ProtoGather:
		return protoInfo{p: elect.Gather(elect.Options{Ordering: ord})}, nil
	default:
		return protoInfo{}, fmt.Errorf("campaign: unknown protocol %q", kind)
	}
}

// expectedOutcome predicts a run's outcome from the centralized analysis
// (Theorems 3.1 and 4.1), or "" when the oracle does not apply.
func expectedOutcome(kind ProtocolKind, an *elect.Analysis, cayleyFallback bool) string {
	if an == nil {
		return ""
	}
	gcdRule := "unsolvable"
	if an.GCD == 1 {
		gcdRule = "leader"
	}
	switch kind {
	case ProtoElect, ProtoGather:
		return gcdRule
	case ProtoCayley:
		if an.Cayley {
			return gcdRule
		}
		if cayleyFallback {
			return gcdRule
		}
		return "" // non-Cayley without fallback: the protocol errs by contract
	case ProtoQuantitative:
		return "leader" // universal (Section 1.3)
	default:
		return "" // petersen ad hoc: only specified for its one instance
	}
}

// Execute expands the spec and runs it. See ExecuteRuns.
func Execute(spec Spec, opt Options) (*Report, error) {
	return ExecuteContext(context.Background(), spec, opt)
}

// ExecuteContext expands the spec and runs it under ctx: cancellation
// stops feeding the pool, aborts in-flight simulations through
// sim.Config.Context, and marks never-started runs as canceled.
func ExecuteContext(ctx context.Context, spec Spec, opt Options) (*Report, error) {
	runs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return ExecuteRunsContext(ctx, runs, opt)
}

// ExecuteRuns drives an explicit work list through the pool. Results come
// back in work-list order regardless of completion order; the JSONL stream
// (when configured) is in completion order with indices for re-sorting.
func ExecuteRuns(runs []Run, opt Options) (*Report, error) {
	return ExecuteRunsContext(context.Background(), runs, opt)
}

// ExecuteRunsContext is ExecuteRuns under a context: when ctx is canceled
// (a server request dropped, a SIGTERM drain expired) the worker pool
// stops picking up work, every in-flight simulation is aborted through the
// engine's cancellation path, and the report comes back with the completed
// prefix summarized, the rest marked canceled, and ctx's error.
func ExecuteRunsContext(ctx context.Context, runs []Run, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if len(runs) == 0 {
		return nil, errors.New("campaign: empty work list")
	}
	protos := make(map[ProtocolKind]protoInfo)
	simProtos := make(map[string]protoInfo)
	for _, r := range runs {
		if r.ProtoSpec != "" {
			// Protocol-axis runs execute a registry protocol; the sim path
			// adapts it once per spec (the adapter is stateless and shared).
			if _, ok := simProtos[r.ProtoSpec]; !ok {
				cp, err := rtbackend.FromSpec(r.ProtoSpec)
				if err != nil {
					return nil, err
				}
				simProtos[r.ProtoSpec] = protoInfo{p: rtbackend.AsSimProtocol(cp), quant: true}
			}
			continue
		}
		kind := r.Protocol
		if kind == "" {
			kind = ProtoElect
		}
		if _, ok := protos[kind]; ok {
			continue
		}
		pi, err := protocolFor(kind, opt)
		if err != nil {
			return nil, err
		}
		protos[kind] = pi
	}

	cache := opt.Cache
	if cache == nil {
		cache = analysiscache.New(analysiscache.Config{MaxBytes: opt.CacheMaxBytes})
	}
	cacheBefore := cache.Stats()
	jw := newJSONLWriter(opt.JSONL)
	// Streamed campaigns never allocate the per-run result slice: each
	// worker folds results into a private sketch aggregator and discards
	// them, merging into the shared total every liveFoldEvery runs (which
	// also refreshes the live quantile gauges) and once at exit.
	streaming := opt.streamed(len(runs))
	var results []RunResult
	if !streaming {
		results = make([]RunResult, len(runs))
	}
	var liveMu sync.Mutex
	total := newAggregator(!streaming, opt.RatioBound)
	flush := func(agg *aggregator) {
		liveMu.Lock()
		total.merge(agg)
		publishLive(opt.Metrics, total)
		liveMu.Unlock()
		agg.reset()
	}
	idx := make(chan int)
	var wg sync.WaitGroup

	// Campaign-level telemetry: the iso counter delta over the whole
	// campaign, and (for the timeline) one span track per worker.
	var isoBefore iso.SearchStats
	if opt.Telemetry {
		isoBefore = iso.Stats()
	}
	var camRun *telemetry.Run // nil-safe: no-op without a timeline
	if opt.Timeline != nil {
		camRun = telemetry.NewRun()
	}

	start := time.Now()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			agg := newAggregator(!streaming, opt.RatioBound)
			defer flush(agg)
			camRun.SetTrackName(w, "worker "+strconv.Itoa(w))
			n := 0
			for i := range idx {
				var res RunResult
				if ctx.Err() != nil {
					res = canceledResult(i, runs[i])
				} else {
					kind := runs[i].Protocol
					if kind == "" {
						kind = ProtoElect
					}
					pi := protos[kind]
					if runs[i].ProtoSpec != "" {
						pi = simProtos[runs[i].ProtoSpec]
					}
					opt.Metrics.Gauge("campaign_inflight").Add(1)
					sp := camRun.StartSpan(w, runs[i].Instance, telemetry.PhaseNone)
					res = executeOne(ctx, i, runs[i], kind, pi, opt, cache)
					sp.End()
					opt.Metrics.Gauge("campaign_inflight").Add(-1)
				}
				if results != nil {
					results[i] = res
				}
				jw.write(res)
				agg.add(res)
				if n++; n%liveFoldEvery == 0 {
					flush(agg)
				}
			}
		}(w)
	}
feed:
	for i := range runs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Never-fed runs get canceled records so the report stays
			// index-complete; workers drain what is already queued (each
			// checks ctx before executing, so nothing new actually runs).
			liveMu.Lock()
			for j := i; j < len(runs); j++ {
				res := canceledResult(j, runs[j])
				if results != nil {
					results[j] = res
				}
				jw.write(res)
				total.add(res)
			}
			liveMu.Unlock()
			break feed
		}
	}
	close(idx)
	wg.Wait()

	cd := cache.Stats()
	hits := (cd.Hits + cd.Coalesced) - (cacheBefore.Hits + cacheBefore.Coalesced)
	misses := cd.Misses - cacheBefore.Misses
	analysisMS := cd.AnalysisMS - cacheBefore.AnalysisMS
	wallMS := float64(time.Since(start)) / float64(time.Millisecond)
	rep := &Report{
		Results: results,
		Summary: total.summary(opt.Workers, wallMS, hits, misses, analysisMS),
	}
	if streaming {
		rep.FailureSample = total.failures
	}
	if opt.Telemetry {
		d := iso.Stats().Sub(isoBefore)
		rep.Summary.IsoSearch = &d
	}
	if jw != nil && jw.err != nil {
		return rep, fmt.Errorf("campaign: jsonl write: %w", jw.err)
	}
	if opt.Timeline != nil {
		if err := telemetry.WriteChromeTrace(opt.Timeline, camRun); err != nil {
			return rep, fmt.Errorf("campaign: timeline write: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("campaign: %w", err)
	}
	return rep, nil
}

// canceledResult records a run the canceled campaign never executed (or
// refused to start): index-complete reports survive a drain.
func canceledResult(index int, run Run) RunResult {
	protoName := string(run.Protocol)
	if run.ProtoSpec != "" {
		protoName = run.ProtoSpec
	}
	return RunResult{
		Index: index, Instance: run.Instance, Protocol: protoName,
		N: run.G.N(), M: run.G.M(), R: len(run.Homes), Seed: run.Seed,
		Strategy: run.Strategy, Fault: run.Fault, Backend: run.Backend,
		Outcome: "canceled", Err: "campaign: canceled before run started",
	}
}

// moveBuckets shapes the campaign_run_moves histogram: exponential from
// 16 to ~260k moves per run.
var moveBuckets = telemetry.ExpBuckets(16, 4, 8)

// publishLive refreshes the live quantile gauges from the shared
// aggregate — the sketch-derived mid-campaign view that /debug/metrics,
// the /debug/metrics/stream SSE feed, and the /debug/live dashboard
// read. Called under the campaign's live mutex; nil registry is a no-op.
func publishLive(reg *telemetry.Registry, a *aggregator) {
	if reg == nil {
		return
	}
	reg.Gauge("campaign_runs_aggregated").Set(int64(a.runs))
	reg.Gauge("campaign_moves_p50").Set(a.moves.Quantile(0.50))
	reg.Gauge("campaign_moves_p90").Set(a.moves.Quantile(0.90))
	reg.Gauge("campaign_moves_p99").Set(a.moves.Quantile(0.99))
	reg.Gauge("campaign_accesses_p50").Set(a.accesses.Quantile(0.50))
	reg.Gauge("campaign_accesses_p90").Set(a.accesses.Quantile(0.90))
	reg.Gauge("campaign_accesses_p99").Set(a.accesses.Quantile(0.99))
	reg.Gauge("campaign_ratio_p90_milli").Set(a.ratio.Quantile(0.90) * 1000 / ratioScale)
	reg.Gauge("campaign_bound_violations").Set(int64(a.boundViolations))
	reg.Gauge("campaign_invariant_violation_runs").Set(int64(a.invariantViolations))
}

// executeOne runs one unit of work: cached analysis, then the simulation
// under the watchdog with bounded reseeded retries. ctx cancellation
// aborts the in-flight simulation (sim.ErrCanceled, never retried).
// Backend-axis runs short-circuit into executeBackendRun.
func executeOne(ctx context.Context, index int, run Run, kind ProtocolKind, pi protoInfo, opt Options, cache *analysiscache.Cache) (res RunResult) {
	if run.Backend != "" {
		return executeBackendRun(ctx, index, run, kind, opt, cache)
	}
	res = RunResult{
		Index: index, Instance: run.Instance, Protocol: string(kind),
		N: run.G.N(), M: run.G.M(), R: len(run.Homes), Seed: run.Seed,
		Strategy: run.Strategy, Fault: run.Fault,
		RequestID: telemetry.RequestIDFrom(ctx),
	}
	// Protocol-axis runs record the registry spec as the protocol name and
	// are judged under the protocol's own central oracle and verdict mode
	// (zoo.Predict); a spec the oracle does not know runs with no
	// prediction, strong mode, and only the generic safety invariants.
	mode := elect.ModeStrong
	if run.ProtoSpec != "" {
		res.Protocol = run.ProtoSpec
		mode = zoo.ModeOf(run.ProtoSpec)
		if !opt.NoAnalysis {
			if pred, err := zoo.Predict(run.ProtoSpec, run.G, nil, run.Homes); err == nil {
				if pred.Solvable {
					res.Expected = "leader"
				} else {
					res.Expected = "unsolvable"
				}
			}
		}
	}
	// Strategy runs are serialized through the adversary turnstile; the
	// class map is schedule-independent, so compute it once per run.
	var classOf []int
	if run.Strategy != "" {
		classOf = adversary.AgentClasses(run.G, run.Homes)
	}
	// tRun collects the final attempt's per-phase counters (fresh per
	// attempt so a retried run does not double-count); the deferred block
	// folds them into the result and the live metrics on every exit path.
	var tRun *telemetry.Run
	defer func() {
		if tRun != nil {
			tot := tRun.Totals()
			res.PhaseMoves = phaseMap(tot.Moves)
			res.PhaseAccesses = phaseMap(tot.Accesses)
			res.PhaseWrites = phaseMap(tot.Writes)
			res.PhaseErases = phaseMap(tot.Erases)
			for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
				if v := tot.Moves[p]; v != 0 {
					opt.Metrics.Counter("campaign_phase_moves_" + p.String()).Add(v)
				}
				if v := tot.Accesses[p]; v != 0 {
					opt.Metrics.Counter("campaign_phase_accesses_" + p.String()).Add(v)
				}
			}
		}
		opt.Metrics.Counter("campaign_runs_total").Inc()
		opt.Metrics.Counter("campaign_outcome_" + res.Outcome).Inc()
		opt.Metrics.Counter("campaign_retries_total").Add(int64(res.Attempts - 1))
		opt.Metrics.Counter("campaign_trace_dropped_total").Add(res.TraceDropped)
		if len(res.Violations) > 0 {
			opt.Metrics.Counter("campaign_invariant_violations_total").Inc()
		}
		if res.Err == "" {
			opt.Metrics.Histogram("campaign_run_moves", moveBuckets).Observe(res.Moves)
		}
	}()
	if !opt.NoAnalysis {
		an, hit, err := cache.Get(ctx, run.G, run.Homes)
		if err == nil {
			res.Sizes = an.Sizes
			res.GCD = an.GCD
			res.CacheHit = hit
		} else {
			an = nil
		}
		if run.ProtoSpec == "" {
			res.Expected = expectedOutcome(kind, an, opt.CayleyFallback)
		}
	}

	start := time.Now()
	var simRes *sim.Result
	var runErr error
	var injector *faults.Injector
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		p := pi.p
		if opt.testProtocol != nil {
			p = opt.testProtocol(run, attempt)
		}
		if opt.Telemetry {
			tRun = telemetry.NewRun()
		}
		var bt *sim.BufferedTracer
		var tracer sim.Tracer
		if opt.TraceSink != nil {
			bt = sim.NewBufferedTracer(opt.TraceSink, opt.TraceBuffer)
			tracer = bt.Trace
		}
		seed := run.Seed + int64(attempt-1)*opt.RetrySeedOffset
		var scheduler sim.Strategy
		if run.Strategy != "" {
			scheduler, runErr = adversary.NewStrategy(run.Strategy, seed, classOf)
			if runErr != nil {
				break
			}
		}
		injector = nil
		if run.Fault != "" {
			// A fresh injector per attempt: a retried run re-derives its fault
			// plan from the retry seed, like the scheduler.
			injector, runErr = faults.New(run.Fault, seed, len(run.Homes), run.Homes)
			if runErr != nil {
				break
			}
		}
		simCfg := sim.Config{
			Graph: run.G, Homes: run.Homes,
			Context:          ctx,
			Seed:             seed,
			MaxDelay:         opt.MaxDelay,
			WakeAll:          opt.WakeAll,
			Timeout:          opt.RunTimeout,
			QuantitativeIDs:  pi.quant,
			AllowSharedHomes: opt.AllowSharedHomes,
			Tracer:           tracer,
			Telemetry:        tRun,
			Scheduler:        scheduler,
		}
		if run.ProtoSpec != "" {
			// Contract protocols run under the runtime backends' semantics:
			// everyone wakes, and ports carry the instance's shared trivial
			// labeling so the run matches the central oracle and the
			// message-passing backends exactly.
			simCfg.WakeAll = true
			simCfg.PortLabels = graph.PortLabeling(run.G)
		}
		if injector != nil {
			simCfg.Faults = injector
		}
		simRes, runErr = sim.Run(simCfg, p)
		if bt != nil {
			bt.Close()
			res.TraceDropped = bt.Dropped()
		}
		if runErr == nil || !errors.Is(runErr, sim.ErrAborted) || attempt > opt.MaxRetries {
			break
		}
	}
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)

	// The per-run fault manifest: what the plan actually injected, plus the
	// base64 plan bytes for replay (recorded even on error — crash-induced
	// deadlocks are the interesting runs).
	if injector != nil {
		res.FaultEvents = len(injector.Recorded().Events)
		res.FaultPlan = injector.Recorded().EncodeString()
	}
	if simRes != nil {
		res.Crashed = simRes.CrashedCount()
		res.Takeovers = simRes.Takeovers
	}

	// Strategy-scheduled runs are held to the protocol invariants — the
	// campaign doubles as a coarse adversary sweep (see internal/adversary
	// for the focused explorer). Fault runs use the relaxed fault-aware
	// contract: failing is allowed, electing wrongly is not. Protocol-axis
	// runs are always checked, under the protocol's own verdict mode.
	if run.Strategy != "" || run.ProtoSpec != "" {
		res.Violations = elect.CheckInvariants(simRes, runErr, elect.InvariantSpec{
			Expected: res.Expected, Mode: mode, M: res.M, RatioBound: opt.RatioBound,
			FaultsInjected: run.Fault != "",
		})
	}

	if runErr != nil {
		res.Outcome = "error"
		if errors.Is(runErr, sim.ErrCanceled) {
			res.Outcome = "canceled"
		}
		res.Err = runErr.Error()
		res.Aborted = errors.Is(runErr, sim.ErrAborted)
		// Under injected faults a run error (crash-induced deadlock) is an
		// expected liveness loss: the run still passes if the survivor-scoped
		// invariants held. Fault-free runs never pass on error.
		res.OK = run.Fault != "" && len(res.Violations) == 0
		return res
	}
	res.Moves = simRes.TotalMoves()
	res.Accesses = simRes.TotalAccesses()
	if res.R*res.M > 0 {
		res.Ratio = float64(res.Moves) / float64(res.R*res.M)
	}
	switch {
	case elect.Elected(simRes, mode):
		res.Outcome = "leader"
	case simRes.AllUnsolvable():
		res.Outcome = "unsolvable"
	default:
		res.Outcome = "mixed"
	}
	switch {
	case run.Fault != "", run.ProtoSpec != "":
		// Under injected faults the oracle verdict is not owed (survivors may
		// legitimately fail); a fault run is OK iff safety held. Protocol-axis
		// runs fold their mode-aware verdict check into the violations too.
		res.OK = len(res.Violations) == 0
	default:
		res.OK = res.Expected == "" || res.Outcome == res.Expected
	}
	return res
}

// executeBackendRun runs one backend-axis unit: a contract protocol on the
// named internal/runtime backend. Without a protocol axis that is the
// contract election (runtime.DFSElection) under the quantitative
// universality oracle — the run is OK iff a unique leader emerged and it is
// the maximum identity. Protocol-axis runs execute the run's registry spec
// instead, judged against its own central oracle (zoo.Predict: verdict,
// unique leader, winner identity).
func executeBackendRun(ctx context.Context, index int, run Run, kind ProtocolKind, opt Options, cache *analysiscache.Cache) (res RunResult) {
	spec := run.ProtoSpec
	protoName := string(kind)
	if spec == "" {
		spec = "dfs-election"
	} else {
		protoName = spec
	}
	res = RunResult{
		Index: index, Instance: run.Instance, Protocol: protoName,
		N: run.G.N(), M: run.G.M(), R: len(run.Homes), Seed: run.Seed,
		Backend:   run.Backend,
		Attempts:  1,
		RequestID: telemetry.RequestIDFrom(ctx),
	}
	defer func() {
		opt.Metrics.Counter("campaign_runs_total").Inc()
		opt.Metrics.Counter("campaign_outcome_" + res.Outcome).Inc()
		opt.Metrics.Counter("campaign_backend_runs_" + run.Backend).Inc()
		if res.Err == "" {
			opt.Metrics.Histogram("campaign_run_moves", moveBuckets).Observe(res.Moves)
		}
	}()
	p, err := rtbackend.FromSpec(spec)
	if err != nil {
		res.Outcome, res.Err = "error", err.Error()
		return res
	}
	pred, err := zoo.Predict(spec, run.G, nil, run.Homes)
	if err != nil {
		res.Outcome, res.Err = "error", err.Error()
		return res
	}
	if pred.Solvable {
		res.Expected = "leader"
	} else {
		res.Expected = "unsolvable"
	}
	if !opt.NoAnalysis {
		if an, hit, err := cache.Get(ctx, run.G, run.Homes); err == nil {
			res.Sizes = an.Sizes
			res.GCD = an.GCD
			res.CacheHit = hit
		}
	}
	rt, err := rtbackend.New(run.Backend)
	if err != nil {
		res.Outcome, res.Err = "error", err.Error()
		return res
	}
	start := time.Now()
	rres, err := rt.Run(rtbackend.Config{
		Graph: run.G, Homes: run.Homes, Seed: run.Seed,
		AllowSharedHomes: opt.AllowSharedHomes,
	}, p)
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		res.Outcome, res.Err = "error", err.Error()
		return res
	}
	res.Moves = rres.TotalMoves()
	res.Accesses = int64(rres.Steps)
	if res.R*res.M > 0 {
		res.Ratio = float64(res.Moves) / float64(res.R*res.M)
	}
	res.Outcome = zoo.Verdict(rres)
	res.Violations = zoo.Check(rres, pred)
	res.OK = len(res.Violations) == 0
	return res
}

// Instance is a named (graph, homes) input for analysis-only batches.
type Instance struct {
	Name  string
	G     *graph.Graph
	Homes []int
}

// AnalyzeBatch computes the centralized analysis of every instance through
// a bounded pool sharing one analysis cache — the engine behind the
// experiment suite's decision sweeps. Results come back in input order;
// the first analysis error aborts with the instance's name attached.
func AnalyzeBatch(insts []Instance, workers int) ([]*elect.Analysis, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := analysiscache.New(analysiscache.Config{})
	out := make([]*elect.Analysis, len(insts))
	errs := make([]error, len(insts))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				an, _, err := cache.Get(context.Background(), insts[i].G, insts[i].Homes)
				out[i], errs[i] = an, err
			}
		}()
	}
	for i := range insts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: analyze %s %v: %w", insts[i].Name, insts[i].Homes, err)
		}
	}
	return out, nil
}
