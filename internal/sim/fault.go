package sim

import (
	"errors"

	"repro/internal/telemetry"
)

// ErrCrashed is the terminal error of an agent that was crash-stopped by an
// injected fault. It is recorded in Result.Errors for the crashed agent but
// is never promoted to the run-level error: a crash is an injected event, not
// a protocol failure, and the surviving agents' outcomes remain checkable.
var ErrCrashed = errors.New("sim: agent crash-stopped (injected fault)")

// FaultOp classifies the kind of operation at which a fault injector is
// consulted. The three operation classes each carry their own per-agent
// index counter, so a fault plan can name an injection point exactly
// ("agent 2's 17th sequence point") and a replay of the same schedule hits
// the same point again.
type FaultOp uint8

// The injection-point operation classes.
const (
	// FaultStep is a scheduler sequence point: the top of every Move,
	// Access and Wait (and of every injected staleness stall).
	FaultStep FaultOp = iota
	// FaultWrite is a whiteboard sign write about to land.
	FaultWrite
	// FaultRead is a whiteboard predicate check inside Wait, just before
	// the signs are snapshotted.
	FaultRead

	numFaultOps
)

// String names the operation class.
func (op FaultOp) String() string {
	switch op {
	case FaultStep:
		return "step"
	case FaultWrite:
		return "write"
	case FaultRead:
		return "read"
	default:
		return "unknown"
	}
}

// FaultPoint identifies one injection opportunity presented to a
// FaultInjector. Points are observer-side: they expose global agent indices
// and physical node ids, like trace events.
type FaultPoint struct {
	// Op is the operation class of this point.
	Op FaultOp
	// Agent is the acting agent's index.
	Agent int
	// Index is the 0-based count of this agent's previous points of the
	// same operation class. Under the deterministic Scheduler the pair
	// (Op, Agent, Index) names the point reproducibly across replays,
	// which is what makes fault plans byte-replayable.
	Index int
	// Node is the agent's current node (the written node for FaultWrite).
	Node int
	// Tag is the sign tag being written (FaultWrite points only).
	Tag string
	// Phase is the protocol phase the agent had declared via SetPhase when
	// it hit this point — phase-targeted strategies (crash during
	// NODE-REDUCE) key on it.
	Phase telemetry.Phase
}

// FaultAction is an injector's decision at a point. The zero value injects
// nothing and is the common case.
type FaultAction struct {
	// Crash crash-stops the agent at this point: its protocol unwinds with
	// ErrCrashed, it performs no further operations, and it retires through
	// the turnstile so scheduling continues among the survivors.
	Crash bool
	// HoldLock, together with Crash (or Torn), additionally abandons the
	// current node's whiteboard lock — the crash happened inside the
	// agent's exclusive access. Surviving agents that try to use that
	// board stall for Config.TakeoverAfter of their own sequence points,
	// then break the lock and take over (counted in Result.Takeovers).
	HoldLock bool
	// Torn, at a FaultWrite point, makes the write partial: only the first
	// Keep bytes of the tag land on the board, and the writer crash-stops
	// as soon as its current access ends (crash-during-write semantics —
	// a torn sign is only ever left behind by a dead agent). Keep is
	// clamped to [0, len(tag)-1]; Keep 0 loses the write entirely.
	Torn bool
	// Keep is the prefix length kept by a torn write.
	Keep int
	// StallReads, at a FaultRead point, injects bounded transient read
	// staleness: the agent consumes that many extra sequence points before
	// its predicate sees the board, so its view lags the writes other
	// agents performed in between. In the asynchronous model this is
	// indistinguishable from the agent being slow, so it can never break
	// safety — it probes liveness under delayed visibility.
	StallReads int
}

// FaultInjector decides, deterministically, what fault (if any) to inject at
// each point. Implementations must be pure functions of the point sequence
// (plus their own seed): the engine consults the injector from agent
// goroutines one at a time under the serializing Scheduler, which Config
// validation requires whenever Faults is set.
type FaultInjector interface {
	// Inject is called once per injection point, in schedule order.
	Inject(p FaultPoint) FaultAction
}

// faultsOn reports whether this run injects faults.
func (e *engine) faultsOn() bool { return e.cfg.Faults != nil }

// injectAt consults the injector at a point of the given class and advances
// the agent's per-class counter.
func (e *engine) injectAt(a *Agent, op FaultOp, node int, tag string) FaultAction {
	act := e.cfg.Faults.Inject(FaultPoint{
		Op:    op,
		Agent: a.index,
		Index: a.fseq[op],
		Node:  node,
		Tag:   tag,
		Phase: a.phase,
	})
	a.fseq[op]++
	return act
}

// crash retires the agent as crash-stopped; with holdLock it also abandons
// the agent's current board (must not be called while holding that board's
// mutex — Access handles its in-access case inline).
func (e *engine) crash(a *Agent, holdLock bool) error {
	e.crashed[a.index] = true
	detail := ""
	if holdLock {
		wb := e.boards[a.node]
		wb.mu.Lock()
		e.abandonLocked(wb)
		wb.mu.Unlock()
		detail = "holding-lock"
	}
	e.trace(a.index, EvCrash, a.node, detail)
	return ErrCrashed
}

// abandonLocked marks the board's lock abandoned. Caller holds wb.mu.
func (e *engine) abandonLocked(wb *whiteboard) {
	wb.abandoned = true
	wb.stallLeft = e.takeoverAfter
}

// passAbandoned makes the agent negotiate an abandoned lock on the board:
// each attempt burns one sequence point and decrements the stall budget;
// when the budget is gone the agent breaks the lock and takes over. The
// stall consumes real scheduler steps, so recovery is deterministic and
// shows up in the decision log like any other work.
func (e *engine) passAbandoned(a *Agent, wb *whiteboard) error {
	if !e.faultsOn() {
		return nil
	}
	for {
		wb.mu.Lock()
		if !wb.abandoned {
			wb.mu.Unlock()
			return nil
		}
		if wb.stallLeft <= 0 {
			wb.abandoned = false
			wb.mu.Unlock()
			e.takeovers.Add(1)
			e.trace(a.index, EvRecover, a.node, "lock-takeover")
			return nil
		}
		wb.stallLeft--
		wb.mu.Unlock()
		if err := e.delay(a); err != nil {
			return err
		}
	}
}

// faultRead runs the FaultRead injection point before a Wait predicate
// check: it may crash the agent or stall it for a bounded number of extra
// sequence points (each stall step is itself a FaultStep point, so crashes
// can land inside a stall too).
func (e *engine) faultRead(a *Agent) error {
	if !e.faultsOn() {
		return nil
	}
	act := e.injectAt(a, FaultRead, a.node, "")
	if act.Crash {
		return e.crash(a, act.HoldLock)
	}
	for i := 0; i < act.StallReads; i++ {
		if err := e.delay(a); err != nil {
			return err
		}
	}
	return nil
}
