package zoo_test

import (
	"strings"
	"testing"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/zoo"
)

// TestPredictPins pins the central oracle on hand-checkable instances, one
// per feasibility regime:
//
//   - path2 — K2 is view-symmetric, so everything but selection's
//     quantitative fallback (and the quantitative dfs-election) fails;
//   - cycle6 homes {0,3} — the comparability dividend: the trivial port
//     labeling is rigid, so every map-based protocol elects even though the
//     qualitative gcd oracle (gcd = 2) says unsolvable;
//   - twin-double — genuinely indistinguishable whiteboards: only the
//     quantitative protocols solve it, selection via its fallback;
//   - star4 homes {1,2} — rigid and dismantlable, every model agrees.
func TestPredictPins(t *testing.T) {
	star4 := zooInstance{"star4", graph.Star(4), []int{1, 2}}
	cases := []struct {
		inst zooInstance
		spec string
		want zoo.Prediction
	}{
		{zooInstance{"path2", graph.Path(2), []int{0, 1}}, "zoo-dp",
			zoo.Prediction{Solvable: false, Winner: -1, Mode: elect.ModeStrong, Applicable: true}},
		{zooInstance{"path2", graph.Path(2), []int{0, 1}}, "zoo-shades:selection",
			zoo.Prediction{Solvable: true, Winner: 1, Mode: elect.ModeSelection, Fallback: true, Applicable: true}},
		{zooInstance{"path2", graph.Path(2), []int{0, 1}}, "zoo-uso",
			zoo.Prediction{Solvable: false, Winner: -1, Mode: elect.ModeWeak, Applicable: false}},
		{zooInstance{"cycle6", graph.Cycle(6), []int{0, 3}}, "zoo-dp",
			zoo.Prediction{Solvable: true, Winner: 0, Mode: elect.ModeStrong, Applicable: true}},
		{zooInstance{"cycle6", graph.Cycle(6), []int{0, 3}}, "zoo-shades:weak",
			zoo.Prediction{Solvable: true, Winner: 0, Mode: elect.ModeWeak, Applicable: true}},
		{zooInstance{"cycle6", graph.Cycle(6), []int{0, 3}}, "zoo-uso",
			zoo.Prediction{Solvable: false, Winner: -1, Mode: elect.ModeWeak, Applicable: false}},
		{star4, "zoo-shades:strong",
			zoo.Prediction{Solvable: true, Winner: 0, Mode: elect.ModeStrong, Applicable: true}},
		{star4, "zoo-uso",
			zoo.Prediction{Solvable: true, Winner: 0, Mode: elect.ModeWeak, Applicable: true}},
		{star4, "dfs-election",
			zoo.Prediction{Solvable: true, Winner: 1, Mode: elect.ModeStrong, Applicable: true}},
	}
	for _, tc := range cases {
		t.Run(tc.inst.name+"/"+tc.spec, func(t *testing.T) {
			got, err := zoo.Predict(tc.spec, tc.inst.g, nil, tc.inst.homes)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Predict = %+v, want %+v", got, tc.want)
			}
		})
	}

	// Quantitative fallback on the whiteboard-indistinguishable twins.
	td := twinDouble(t)
	for spec, wantSolvable := range map[string]bool{
		"zoo-dp": false, "zoo-shades:strong": false, "zoo-shades:weak": false,
		"zoo-shades:selection": true,
	} {
		got, err := zoo.Predict(spec, td, nil, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Solvable != wantSolvable {
			t.Fatalf("twin-double %s: solvable=%v, want %v", spec, got.Solvable, wantSolvable)
		}
	}

	// The dividend pin: cycle6 {0,3} is solvable for the map-based zoo but
	// unsolvable for the source paper's qualitative oracle.
	an, err := zoo.Analyze(graph.Cycle(6), []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if an.GCD != 2 || zoo.GCDVerdict(an) != "unsolvable" {
		t.Fatalf("gcd oracle on cycle6 {0,3}: gcd=%d verdict=%q, want 2/unsolvable", an.GCD, zoo.GCDVerdict(an))
	}
	if zoo.GCDVerdict(nil) != "unsolvable" {
		t.Fatal("a missing analysis must read unsolvable")
	}
}

// TestPredictErrors keeps malformed specs out of the oracle.
func TestPredictErrors(t *testing.T) {
	g := graph.Path(4)
	for _, spec := range []string{"zoo-nope", "zoo-shades", "zoo-shades:mauve", "zoo-dp:extra", "zoo-uso:x"} {
		if _, err := zoo.Predict(spec, g, nil, []int{0, 1}); err == nil ||
			!strings.Contains(err.Error(), "unknown protocol spec") {
			t.Fatalf("Predict(%q): err=%v, want unknown-spec error", spec, err)
		}
		if _, err := zoo.New(spec); err == nil {
			t.Fatalf("New(%q) accepted a bad spec", spec)
		}
	}
}

// TestModeOf pins the spec → verdict-mode map the campaign's protocol axis
// judges runs with.
func TestModeOf(t *testing.T) {
	cases := map[string]elect.VerdictMode{
		"zoo-dp":               elect.ModeStrong,
		"zoo-shades:strong":    elect.ModeStrong,
		"zoo-shades:weak":      elect.ModeWeak,
		"zoo-shades:selection": elect.ModeSelection,
		"zoo-uso":              elect.ModeWeak,
		"dfs-election":         elect.ModeStrong,
		"zoo-nope":             elect.ModeStrong,
	}
	for spec, want := range cases {
		if got := zoo.ModeOf(spec); got != want {
			t.Fatalf("ModeOf(%q) = %q, want %q", spec, got, want)
		}
	}
}
