package sketch

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestBucketRoundTrip: every value's bucket upper bound is >= the value
// and within the documented relative error.
func TestBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1 << 62}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}
	for _, v := range vals {
		u := bucketUpper(bucketIndex(v))
		if u < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, u)
		}
		if float64(u) > float64(v)*(1+RelativeError)+1 {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d exceeds relative error bound", v, u)
		}
	}
	if bucketIndex(1<<62) >= maxBuckets {
		t.Fatalf("bucketIndex(1<<62) = %d out of maxBuckets %d", bucketIndex(1<<62), maxBuckets)
	}
}

// TestQuantileErrorBound: sketch quantiles vs exact nearest-rank
// percentiles over random data stay within RelativeError.
func TestQuantileErrorBound(t *testing.T) {
	for _, dist := range []string{"uniform", "exp", "small"} {
		rng := rand.New(rand.NewSource(7))
		var h Hist
		exact := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			var v int64
			switch dist {
			case "uniform":
				v = rng.Int63n(1_000_000)
			case "exp":
				v = int64(1) << uint(rng.Intn(40))
			case "small":
				v = rng.Int63n(20)
			}
			h.Observe(v)
			exact = append(exact, v)
		}
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q * float64(len(exact)))
			if rank < 1 {
				rank = 1
			}
			want := exact[rank-1]
			got := h.Quantile(q)
			if got < want || float64(got) > float64(want)*(1+RelativeError)+1 {
				t.Errorf("%s q=%v: sketch %d vs exact %d outside error bound", dist, q, got, want)
			}
		}
		if h.Min() != exact[0] || h.Max() != exact[len(exact)-1] {
			t.Errorf("%s: min/max %d/%d vs exact %d/%d", dist, h.Min(), h.Max(), exact[0], exact[len(exact)-1])
		}
	}
}

// TestMergeEqualsSingle is the property the campaign sharding relies on:
// random shards merged in random order are identical — field for field —
// to the single sketch that observed every value.
func TestMergeEqualsSingle(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nShards := 1 + rng.Intn(8)
		shards := make([]*Hist, nShards)
		for i := range shards {
			shards[i] = &Hist{}
		}
		var single Hist
		for i := 0; i < 5000; i++ {
			v := rng.Int63n(1 << uint(1+rng.Intn(40)))
			single.Observe(v)
			shards[rng.Intn(nShards)].Observe(v)
		}
		// Merge in a random order.
		merged := &Hist{}
		for _, i := range rng.Perm(nShards) {
			merged.Merge(shards[i])
		}
		if merged.Count() != single.Count() || merged.Sum() != single.Sum() ||
			merged.Min() != single.Min() || merged.Max() != single.Max() {
			t.Fatalf("trial %d: merged (%d,%d,%d,%d) != single (%d,%d,%d,%d)",
				trial, merged.Count(), merged.Sum(), merged.Min(), merged.Max(),
				single.Count(), single.Sum(), single.Min(), single.Max())
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if merged.Quantile(q) != single.Quantile(q) {
				t.Fatalf("trial %d: q=%v merged %d != single %d", trial, q, merged.Quantile(q), single.Quantile(q))
			}
		}
	}
}

// TestMergeAssociativeCommutative: (a⊕b)⊕c == a⊕(b⊕c) == c⊕(b⊕a),
// compared by deep equality of the full state.
func TestMergeAssociativeCommutative(t *testing.T) {
	build := func(seed int64, n int) *Hist {
		rng := rand.New(rand.NewSource(seed))
		h := &Hist{}
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(1 << 30))
		}
		return h
	}
	a, b, c := build(1, 100), build(2, 5000), build(3, 17)
	left := &Hist{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	rightInner := b.Clone()
	rightInner.Merge(c)
	right := a.Clone()
	right.Merge(rightInner)
	rev := &Hist{}
	rev.Merge(c)
	rev.Merge(b)
	rev.Merge(a)
	norm := func(h *Hist) *Hist {
		// Trailing-zero bucket tails depend on merge order; trim before
		// comparing.
		n := h.Clone()
		for len(n.counts) > 0 && n.counts[len(n.counts)-1] == 0 {
			n.counts = n.counts[:len(n.counts)-1]
		}
		return n
	}
	if !reflect.DeepEqual(norm(left), norm(right)) {
		t.Fatal("merge is not associative")
	}
	if !reflect.DeepEqual(norm(left), norm(rev)) {
		t.Fatal("merge is not commutative")
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should read as zero")
	}
	h.Observe(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative clamp: min=%d max=%d count=%d", h.Min(), h.Max(), h.Count())
	}
	h.Add(100, 0) // no-op
	if h.Count() != 1 {
		t.Fatal("Add with n<=0 must not count")
	}
	h.Merge(nil) // no-op
	h.Reset()
	if h.Count() != 0 || h.Quantile(1) != 0 {
		t.Fatal("reset did not empty the histogram")
	}
	h.Observe(42)
	if got := h.Quantile(1); got != 42 {
		t.Fatalf("single observation quantile = %d, want 42 (clamped to max)", got)
	}
}

// TestCountMinNeverUnderestimates: estimates are >= true counts, and the
// over-estimate respects the width bound for a skewed key distribution.
func TestCountMinNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cm := NewCountMin(0, 0) // defaults
	truth := map[string]int64{}
	keys := []string{"one-leader", "agreement", "gcd-verdict", "move-bound"}
	for i := 0; i < 200; i++ {
		keys = append(keys, "sig-"+string(rune('a'+rng.Intn(26)))+string(rune('a'+rng.Intn(26))))
	}
	for i := 0; i < 50000; i++ {
		k := keys[rng.Intn(len(keys))]
		truth[k]++
		cm.Add(k, 1)
	}
	if cm.Total() != 50000 {
		t.Fatalf("total = %d, want 50000", cm.Total())
	}
	for k, want := range truth {
		got := cm.Estimate(k)
		if got < want {
			t.Fatalf("key %q: estimate %d < true %d (count-min must never under-estimate)", k, got, want)
		}
		if got > want+4*cm.Total()/DefaultWidth {
			t.Errorf("key %q: estimate %d overshoots true %d beyond the width bound", k, got, want)
		}
	}
	if cm.Estimate("never-added") > 4*cm.Total()/DefaultWidth {
		t.Errorf("absent key estimate %d too large", cm.Estimate("never-added"))
	}
}

// TestCountMinMerge: sharded adds merged in random order equal the
// single-sketch counts exactly (the rows add linearly).
func TestCountMinMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	single := NewCountMin(64, 3)
	shards := make([]*CountMin, 5)
	for i := range shards {
		shards[i] = NewCountMin(64, 3)
	}
	for i := 0; i < 10000; i++ {
		k := "k" + string(rune('a'+rng.Intn(40)))
		single.Add(k, 1)
		shards[rng.Intn(len(shards))].Add(k, 1)
	}
	merged := NewCountMin(64, 3)
	for _, i := range rng.Perm(len(shards)) {
		if err := merged.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(merged, single) {
		t.Fatal("merged shards differ from the single sketch")
	}
	other := NewCountMin(8, 2)
	other.Add("x", 1)
	if err := merged.Merge(other); err == nil {
		t.Fatal("merge of mismatched dimensions must error")
	}
	if err := merged.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	cl := merged.Clone()
	cl.Reset()
	if cl.Total() != 0 || merged.Total() == 0 {
		t.Fatal("Reset must empty the clone and leave the original intact")
	}
}
