package elect

import (
	"context"
	"errors"

	"repro/internal/graph"
	"repro/internal/group"
	"repro/internal/labeling"
	"repro/internal/order"
)

// Analysis is the centralized solvability analysis of an election input
// (G, p) — the oracle the distributed protocols are validated against.
type Analysis struct {
	// Sizes are the ordered automorphism-equivalence class sizes and GCD
	// their gcd: Protocol ELECT elects iff GCD == 1 (Theorem 3.1).
	Sizes []int
	GCD   int

	// Cayley reports whether G is a Cayley graph; when it is, TranslationD
	// is d, the number of home-base-preserving translations of the
	// canonical recognized representation. Since translation classes refine
	// automorphism classes, d divides GCD; the Section 4 protocol reports
	// impossible when d > 1 and otherwise reduces over the automorphism
	// classes, so it elects iff Cayley && GCD == 1.
	Cayley       bool
	TranslationD int

	// Thm21Checked reports whether the Theorem 2.1 condition could be
	// decided (simple graphs within the automorphism cap); when true,
	// Impossible21 reports that some edge-labeling admits label-equivalence
	// classes of size > 1, in which case election is impossible.
	Thm21Checked bool
	Impossible21 bool
}

// BlackColors converts a home-base list to a node weighting: the number of
// agents based at each node (0/1 in the paper's main setting; larger under
// the shared-home extension, where homes may repeat).
func BlackColors(n int, homes []int) []int {
	out := make([]int, n)
	for _, h := range homes {
		out[h]++
	}
	return out
}

// Analyze computes the full solvability analysis of (g, homes).
func Analyze(g *graph.Graph, homes []int, ord order.Ordering) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), g, homes, ord)
}

// AnalyzeCtx is Analyze under a context: cancellation propagates through
// COMPUTE & ORDER into every canonical search it runs (including the
// parallel sparse search workers on the large-graph path) and surfaces as
// ctx.Err(). This is the hook by which a canceled /v1/analyze request stops
// its analysis mid-computation.
//
// Graphs with at least order.LargeThreshold nodes take the scaled path: the
// class structure comes from one sparse whole-graph canonicalization, and
// the Cayley-recognition and Theorem 2.1 side analyses — whose group/SAT
// machinery is superlinear in ways the sparse engine does not fix — are
// skipped, leaving their fields unset exactly as an undecidable small
// instance would.
func AnalyzeCtx(ctx context.Context, g *graph.Graph, homes []int, ord order.Ordering) (*Analysis, error) {
	colors := BlackColors(g.N(), homes)
	o, err := order.ComputeAndOrderCtx(ctx, g, colors, ord)
	if err != nil {
		return nil, err
	}
	// Class sizes are node counts of the WEIGHTED classes (weights are the
	// node colors). Under the shared-home extension, co-located agents are
	// first reduced by a local whiteboard race, so the reduction arithmetic
	// operates on node counts regardless of weights.
	a := &Analysis{Sizes: o.Sizes(), GCD: o.GCD()}
	if g.N() >= order.LargeThreshold {
		return a, nil
	}

	isCayley, d, err := CayleyTranslationCount(g, colors, 0)
	switch {
	case err == nil:
		a.Cayley = isCayley
		a.TranslationD = d
	case errors.Is(err, group.ErrUndecided):
		// Leave the Cayley fields unset; the gcd analysis still stands.
	default:
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g.IsSimple() {
		w, err := labeling.ExistsSymmetricLabeling(g, colors, 0)
		if err == nil {
			a.Thm21Checked = true
			a.Impossible21 = w != nil
		}
	}
	return a, nil
}

// ElectSucceeds predicts the outcome of Protocol ELECT (Theorem 3.1).
func (a *Analysis) ElectSucceeds() bool { return a.GCD == 1 }

// CayleyElectSucceeds predicts the outcome of the Section 4 protocol
// (see CayleyElect: d > 1 short-circuits to impossible, and d divides GCD,
// so the decision reduces to the gcd criterion).
func (a *Analysis) CayleyElectSucceeds() bool {
	return a.Cayley && a.GCD == 1
}
