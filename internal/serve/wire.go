package serve

import (
	"errors"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/graph"
)

// InstanceSpec is the wire form of one (graph, homes) election instance.
// The graph comes either from a named generator family ("family" + "size",
// the registry shared with cmd/campaign) or as an explicit edge list
// ("n" + "edges"); "homes" lists the agents' home-base nodes either way.
type InstanceSpec struct {
	// Family + Size select a generator instance (cycle, hypercube, torus,
	// petersen, ...). Mutually exclusive with N/Edges.
	Family string `json:"family,omitempty"`
	Size   int    `json:"size,omitempty"`
	// N + Edges give an explicit multigraph: node count and undirected
	// endpoint pairs (self-loops rejected, parallel edges allowed).
	N     int      `json:"n,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`
	// Homes are the agents' home-base nodes (one agent per entry).
	Homes []int `json:"homes"`
}

// Build materializes the spec into a graph plus a display name.
func (in InstanceSpec) Build() (*graph.Graph, string, error) {
	if len(in.Homes) == 0 {
		return nil, "", errors.New("instance: homes must be non-empty")
	}
	var g *graph.Graph
	var name string
	switch {
	case in.Family != "" && len(in.Edges) == 0:
		var err error
		g, err = campaign.BuildGraph(in.Family, in.Size)
		if err != nil {
			return nil, "", err
		}
		name = fmt.Sprintf("%s%d%v", in.Family, in.Size, in.Homes)
	case in.Family == "" && len(in.Edges) > 0:
		if in.N <= 0 {
			return nil, "", errors.New("instance: explicit edges need n > 0")
		}
		b := graph.NewBuilder(in.N)
		for _, e := range in.Edges {
			u, v := e[0], e[1]
			if u < 0 || u >= in.N || v < 0 || v >= in.N {
				return nil, "", fmt.Errorf("instance: edge [%d %d] out of range [0,%d)", u, v, in.N)
			}
			if u == v {
				return nil, "", fmt.Errorf("instance: self-loop at node %d not supported", u)
			}
			b.AddEdge(u, v)
		}
		g = b.Graph()
		name = fmt.Sprintf("explicit-n%d-m%d%v", in.N, len(in.Edges), in.Homes)
	case in.Family != "" && len(in.Edges) > 0:
		return nil, "", errors.New("instance: family and edges are mutually exclusive")
	default:
		return nil, "", errors.New("instance: need family or edges")
	}
	if !g.IsConnected() {
		return nil, "", errors.New("instance: graph must be connected")
	}
	for _, h := range in.Homes {
		if h < 0 || h >= g.N() {
			return nil, "", fmt.Errorf("instance: home %d out of range [0,%d)", h, g.N())
		}
	}
	return g, name, nil
}

// AnalyzeResponse is the verdict of POST /v1/analyze: the centralized
// solvability analysis of the instance (Theorems 2.1/3.1 and the Cayley
// recognition of Section 4), plus whether the cache served it.
type AnalyzeResponse struct {
	Instance string `json:"instance"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	R        int    `json:"r"`
	// Sizes are the ordered automorphism-class sizes, GCD their gcd, and
	// Solvable the Theorem 3.1 verdict (GCD == 1).
	Sizes    []int `json:"sizes"`
	GCD      int   `json:"gcd"`
	Solvable bool  `json:"solvable"`
	// Cayley recognition (Section 4) and the Theorem 2.1 impossibility
	// check, when decidable.
	Cayley       bool `json:"cayley"`
	TranslationD int  `json:"translation_d,omitempty"`
	Thm21Checked bool `json:"thm21_checked"`
	Impossible21 bool `json:"impossible21,omitempty"`
	// Cached reports the analysis was served without computing (a cache
	// hit or a coalesced join of an in-flight computation).
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ElectRequest asks for one simulated election run.
type ElectRequest struct {
	InstanceSpec
	// Seed drives the run's nondeterminism (color palette, wake set,
	// presentation shuffles, scheduling).
	Seed int64 `json:"seed"`
	// Protocol is elect (default), cayley, quantitative, petersen, gather.
	Protocol string `json:"protocol,omitempty"`
	// Strategy, when set, drives the run under the named adversary
	// scheduling strategy on the serializing scheduler; Fault additionally
	// injects the named fault plan (crash-stop, torn-write, stale-read).
	Strategy string `json:"strategy,omitempty"`
	Fault    string `json:"fault,omitempty"`
	// WakeAll wakes every agent at start instead of a seeded subset.
	WakeAll bool `json:"wake_all,omitempty"`
}

// ElectResponse is the run manifest of POST /v1/elect: the same per-run
// record a campaign's JSONL stream carries, plus the replay artifact
// handle.
type ElectResponse struct {
	Result campaign.RunResult `json:"result"`
	// ArtifactID names the stored replay bundle; fetch it at ArtifactURL.
	ArtifactID  string `json:"artifact_id"`
	ArtifactURL string `json:"artifact_url"`
}

// CampaignRequest asks for a full multi-seed campaign, streamed back as
// chunked JSONL (one CampaignLine per completed run, then a trailing
// summary line).
type CampaignRequest struct {
	// Families crosses generator instances with placements, exactly like
	// the cmd/campaign spec.
	Families []FamilyWire `json:"families"`
	// SeedFrom..SeedTo is the inclusive seed range.
	SeedFrom int64  `json:"seed_from"`
	SeedTo   int64  `json:"seed_to"`
	Protocol string `json:"protocol,omitempty"`
	// Strategies / Faults cross every run with adversary scheduling and
	// fault-injection strategies ("all" is not expanded here — name them).
	Strategies []string `json:"strategies,omitempty"`
	Faults     []string `json:"faults,omitempty"`
	WakeAll    bool     `json:"wake_all,omitempty"`
}

// FamilyWire is the JSON form of one campaign family axis.
type FamilyWire struct {
	Family    string  `json:"family"`
	Sizes     []int   `json:"sizes,omitempty"`
	Placement string  `json:"placement,omitempty"`
	R         int     `json:"r,omitempty"`
	Homes     [][]int `json:"homes,omitempty"`
}

// Spec converts the request into a campaign spec.
func (cr CampaignRequest) Spec() campaign.Spec {
	fams := make([]campaign.FamilySpec, len(cr.Families))
	for i, f := range cr.Families {
		fams[i] = campaign.FamilySpec{
			Family: f.Family, Sizes: f.Sizes,
			Placement: f.Placement, R: f.R, Homes: f.Homes,
		}
	}
	return campaign.Spec{
		Families:   fams,
		Seeds:      campaign.SeedRange{From: cr.SeedFrom, To: cr.SeedTo},
		Protocol:   campaign.ProtocolKind(cr.Protocol),
		Strategies: cr.Strategies,
		Faults:     cr.Faults,
	}
}

// CampaignLine is one line of the /v1/campaign JSONL stream: exactly one
// of Run (per completed run, completion order), Summary (the trailing
// aggregate), or Error (the campaign stopped early).
type CampaignLine struct {
	Run     *campaign.RunResult `json:"run,omitempty"`
	Summary *campaign.Summary   `json:"summary,omitempty"`
	Error   string              `json:"error,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status   string  `json:"status"`
	UptimeMS float64 `json:"uptime_ms"`
	Inflight int64   `json:"inflight"`
	Draining bool    `json:"draining"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}
