// Hypercube: the Section 4 effectual protocol on a Cayley network.
//
// The 3-cube is Cay(Z2³, {e1,e2,e3}). Agents recognize the Cayley structure
// from their drawn maps and decide election via translations: a placement
// preserved by a nontrivial translation (xor) is impossible; otherwise the
// ELECT reduction elects. The example sweeps all 2-agent placements up to
// the choice of the first node and reports the verdict for each distance.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.Hypercube(3)
	fmt.Println("Q3 = Cay(Z2^3, {001, 010, 100}): two-agent placements")
	fmt.Println("other   d  gcd  verdict      distributed outcome")
	for other := 1; other < 8; other++ {
		homes := []int{0, other}
		an, err := repro.Analyze(g, homes)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.RunCayleyElect(g, homes, repro.RunConfig{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "elects"
		if !an.CayleyElectSucceeds() {
			verdict = "impossible"
		}
		outcome := "unsolvable"
		if res.AgreedLeader() {
			outcome = "leader"
		}
		fmt.Printf("%03b     %d  %d    %-11s  %s\n",
			other, an.TranslationD, an.GCD, verdict, outcome)
	}
	fmt.Println()
	fmt.Println("Every 2-agent placement on Q3 is preserved by the translation")
	fmt.Println("xor(u,v), so d = 2 everywhere: two agents can never elect on a")
	fmt.Println("hypercube in the qualitative model. With three agents the xor")
	fmt.Println("argument breaks and election usually becomes possible:")
	for _, homes := range [][]int{{0, 1, 2}, {0, 1, 3}, {0, 3, 5}, {0, 1, 7}} {
		an, err := repro.Analyze(g, homes)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.RunCayleyElect(g, homes, repro.RunConfig{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		outcome := "unsolvable"
		if res.AgreedLeader() {
			outcome = "leader elected"
		}
		fmt.Printf("homes %v: d=%d gcd=%d -> %s\n", homes, an.TranslationD, an.GCD, outcome)
	}
}
