package order

// Determinism of the parallel class-key computation: COMPUTE & ORDER must
// produce the same class order and keys regardless of how many workers the
// bounded pool runs (Protocol ELECT requires every agent, on any machine,
// to derive the identical order).

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/graph"
)

func sameOrdered(a, b *Ordered) bool {
	if len(a.Classes) != len(b.Classes) || a.NumBlack != b.NumBlack || a.Tied != b.Tied {
		return false
	}
	for i := range a.Classes {
		if len(a.Classes[i]) != len(b.Classes[i]) {
			return false
		}
		for j := range a.Classes[i] {
			if a.Classes[i][j] != b.Classes[i][j] {
				return false
			}
		}
		if a.Keys[i].N != b.Keys[i].N || a.Keys[i].Hair != b.Keys[i].Hair ||
			!bytes.Equal(a.Keys[i].Word, b.Keys[i].Word) {
			return false
		}
	}
	for i := range a.ClassOf {
		if a.ClassOf[i] != b.ClassOf[i] {
			return false
		}
	}
	return true
}

// TestParallelClassesDeterministic runs ComputeAndOrder under GOMAXPROCS=1
// (serial path) and GOMAXPROCS=8 (parallel pool) and requires identical
// results: same classes in the same order, same keys, same ClassOf map.
func TestParallelClassesDeterministic(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		colors []int
	}{
		{"c12-blacks", graph.Cycle(12), blacks(12, 0, 4, 8)},
		{"petersen", graph.Petersen(), blacks(10, 0)},
		{"q4", graph.Hypercube(4), nil},
		{"torus3x4", graph.Torus(3, 4), blacks(12, 0, 6)},
		{"star6", graph.Star(6), blacks(7, 1, 2)},
	}
	for _, ord := range []Ordering{Direct, Hairs} {
		for _, tc := range cases {
			prev := runtime.GOMAXPROCS(1)
			serial := ComputeAndOrder(tc.g, tc.colors, ord)
			runtime.GOMAXPROCS(8)
			par := ComputeAndOrder(tc.g, tc.colors, ord)
			runtime.GOMAXPROCS(prev)
			if !sameOrdered(serial, par) {
				t.Errorf("%s ord=%d: GOMAXPROCS=1 and GOMAXPROCS=8 orders differ", tc.name, ord)
			}
		}
	}
}

// TestNodeKeysMatchClassKeys: every node's key equals its class
// representative's key, under both worker regimes.
func TestNodeKeysMatchClassKeys(t *testing.T) {
	g := graph.Torus(3, 4)
	colors := blacks(12, 0, 6)
	classes := Classes(g, colors)
	prev := runtime.GOMAXPROCS(8)
	keys := NodeKeys(g, colors, classes, Direct)
	runtime.GOMAXPROCS(prev)
	if len(keys) != g.N() {
		t.Fatalf("NodeKeys returned %d keys for %d nodes", len(keys), g.N())
	}
	for _, cl := range classes {
		want := SurroundingKey(Surrounding(g, colors, cl[0]), Direct)
		for _, v := range cl {
			if keys[v].Compare(want) != 0 {
				t.Fatalf("node %d key differs from its class representative's", v)
			}
		}
	}
}

func blacks(n int, idx ...int) []int {
	cols := make([]int, n)
	for _, i := range idx {
		cols[i] = 1
	}
	return cols
}
