// Package telemetry is the repository's observability layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), a per-run collector of phase-scoped counters and protocol
// spans, and a Chrome trace_event exporter so a run's timeline opens in
// Perfetto (ui.perfetto.dev).
//
// The package is deliberately at the bottom of the dependency graph — it
// imports nothing from the repository — so every layer (sim, elect, iso,
// campaign, the CLIs) can report into it. Two disciplines keep it out of
// the hot paths it observes:
//
//   - Every collection entry point is nil-safe: methods on a nil *Run or
//     nil *Registry (and on the nil metric handles they return) are no-ops
//     that allocate nothing. Instrumented code holds a possibly-nil
//     collector and calls it unconditionally; disabled telemetry costs one
//     predictable branch per event and zero bytes (the sim package guards
//     this with an allocation test).
//   - Enabled counters are single atomic adds into fixed arrays indexed by
//     Phase — no maps, no strings, no formatting on the event path. Spans
//     and instants buffer under a mutex; they are opened at phase
//     granularity, not per event.
package telemetry

// Phase identifies the protocol phase a simulation event or span belongs
// to. The taxonomy follows Protocol ELECT's structure (Section 3 of the
// paper; Theorem 3.1 accounts its O(r·|E|) cost phase by phase):
// map-drawing DFS, surrounding-order computation (COMPUTE & ORDER), the
// AGENT-REDUCE and NODE-REDUCE loops, and the final announcement tour.
type Phase uint8

const (
	// PhaseNone tags events outside any declared phase (engine wake-ups,
	// protocols that do not declare phases).
	PhaseNone Phase = iota
	// PhaseMapDraw is the whiteboard DFS of MAP-DRAWING (Section 3.2).
	PhaseMapDraw
	// PhaseOrder is COMPUTE & ORDER: equivalence classes and the ≺ order.
	PhaseOrder
	// PhaseAgentReduce is the AGENT-REDUCE stage of the gcd reduction.
	PhaseAgentReduce
	// PhaseNodeReduce is the NODE-REDUCE stage of the gcd reduction.
	PhaseNodeReduce
	// PhaseAnnounce is the final announcement (leader/failure tour and the
	// wait for it).
	PhaseAnnounce
	// NumPhases bounds the Phase values; counter arrays are indexed [0,
	// NumPhases).
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseNone:        "none",
	PhaseMapDraw:     "mapdraw",
	PhaseOrder:       "order",
	PhaseAgentReduce: "agent-reduce",
	PhaseNodeReduce:  "node-reduce",
	PhaseAnnounce:    "announce",
}

// String names the phase (a fixed, JSON-friendly lowercase identifier).
func (p Phase) String() string {
	if p >= NumPhases {
		return "invalid"
	}
	return phaseNames[p]
}

// PhaseNames returns the names of all phases in Phase order.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	copy(out, phaseNames[:])
	return out
}
