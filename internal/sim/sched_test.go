package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// tourProtocol exercises every scheduler sequence point: each agent writes a
// start sign at home, tours the whole ring writing visit signs, then waits at
// home until every color's visit sign has arrived.
func tourProtocol(a *Agent) (Outcome, error) {
	if err := a.Access(func(b *Board) { b.Write("start") }); err != nil {
		return Outcome{}, err
	}
	entry := Symbol{}
	n := 0
	for {
		// Leave through a port that is not the one we entered by (on a cycle
		// this walks consistently around the ring).
		var out Symbol
		for _, s := range a.Symbols() {
			if !s.IsZero() && s != entry {
				out = s
			}
		}
		var err error
		entry, err = a.Move(out)
		if err != nil {
			return Outcome{}, err
		}
		n++
		if err := a.Access(func(b *Board) { b.Write("visit") }); err != nil {
			return Outcome{}, err
		}
		if n == 6 { // full tour of the 6-cycle, back home
			break
		}
	}
	_, err := a.Wait(func(ss Signs) bool { return ss.CountColors("visit") >= 2 })
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Role: RoleUnsolvable}, nil
}

// eventRecorder collects the deterministic projection of a trace (everything
// but the wall-clock timestamps).
type eventRecorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *eventRecorder) trace(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.At = 0
	r.events = append(r.events, e)
}

func runScheduled(t *testing.T, strat Strategy, rec *Schedule) []Event {
	t.Helper()
	er := &eventRecorder{}
	res, err := Run(Config{
		Graph:     graph.Cycle(6),
		Homes:     []int{0, 3},
		Seed:      7,
		WakeAll:   true,
		Timeout:   30 * time.Second,
		Scheduler: strat,
		Record:    rec,
		Tracer:    er.trace,
	}, tourProtocol)
	if err != nil {
		t.Fatalf("scheduled run failed: %v", err)
	}
	if !res.AllUnsolvable() {
		t.Fatalf("unexpected outcomes: %+v", res.Outcomes)
	}
	return er.events
}

// TestScheduleRecordReplay is the record → replay → identical-event-stream
// round trip: a run under a seeded random strategy is replayed from its
// decision log and must reproduce the exact same global event sequence.
func TestScheduleRecordReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	random := StrategyFunc(func(ready []int, step int) int {
		return ready[rng.Intn(len(ready))]
	})
	var rec Schedule
	recorded := runScheduled(t, random, &rec)
	if rec.Len() == 0 {
		t.Fatal("no grants recorded")
	}

	rp := Replay(&rec)
	var rec2 Schedule
	replayed := runScheduled(t, rp, &rec2)
	if rp.Divergences() != 0 {
		t.Fatalf("faithful replay diverged %d times", rp.Divergences())
	}
	if !reflect.DeepEqual(recorded, replayed) {
		t.Fatalf("replayed event stream differs:\nrecorded %d events\nreplayed %d events",
			len(recorded), len(replayed))
	}
	if !reflect.DeepEqual(rec.Grants, rec2.Grants) {
		t.Fatal("replaying did not reproduce the decision log")
	}
}

// TestScheduleEncodeRoundTrip checks the compact wire form.
func TestScheduleEncodeRoundTrip(t *testing.T) {
	s := &Schedule{Grants: []int32{0, 1, 127, 128, 300, 0, 2}}
	dec, err := DecodeSchedule(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Grants, dec.Grants) {
		t.Fatalf("round trip mismatch: %v != %v", dec.Grants, s.Grants)
	}
	if _, err := DecodeSchedule([]byte{0x80}); err == nil {
		t.Fatal("truncated uvarint accepted")
	}
	if got, err := DecodeSchedule(nil); err != nil || got.Len() != 0 {
		t.Fatalf("empty log should decode to empty schedule, got %v, %v", got, err)
	}
}

// TestReplayMutatedLogStillTerminates feeds a garbage decision log through
// Replay: the run must complete (falling back past divergences), never hang.
func TestReplayMutatedLogStillTerminates(t *testing.T) {
	junk := &Schedule{Grants: []int32{5, 5, 1, 9, 0, 0, 0, 1, 7}}
	rp := Replay(junk)
	runScheduled(t, rp, nil)
	if rp.Divergences() == 0 {
		t.Fatal("expected divergences replaying a foreign log")
	}
}

// TestScheduleDeadlockDetected: an agent waiting for a sign nobody will write
// must be reported as a schedule deadlock, not hang until the timeout.
func TestScheduleDeadlockDetected(t *testing.T) {
	start := time.Now()
	_, err := Run(Config{
		Graph:     graph.Cycle(4),
		Homes:     []int{0, 2},
		Seed:      1,
		WakeAll:   true,
		Timeout:   30 * time.Second,
		Scheduler: StrategyFunc(func(ready []int, step int) int { return ready[0] }),
	}, func(a *Agent) (Outcome, error) {
		_, err := a.Wait(func(ss Signs) bool { return ss.Has("never-written") })
		return Outcome{}, err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("deadlock detection waited for the timeout")
	}
}

// TestScheduledDeterminism: two runs under the same deterministic strategy
// produce identical event streams without any log in between.
func TestScheduledDeterminism(t *testing.T) {
	rr := func() Strategy {
		last := -1
		return StrategyFunc(func(ready []int, step int) int {
			for _, a := range ready {
				if a > last {
					last = a
					return a
				}
			}
			last = ready[0]
			return ready[0]
		})
	}
	a := runScheduled(t, rr(), nil)
	b := runScheduled(t, rr(), nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same strategy, same seed, different event streams")
	}
}
