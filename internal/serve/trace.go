package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Request tracing defaults: how slow a successful request must be to
// land in the /debug/requests ring, and how many traces the ring keeps.
const (
	DefaultSlowRequest = 500 * time.Millisecond
	DefaultTraceRing   = 256
	// maxRequestIDLen bounds client-supplied X-Request-ID values; longer
	// (or non-printable) IDs are replaced with a generated one.
	maxRequestIDLen = 64
	// errBodyMax bounds how much of an error response body a trace keeps.
	errBodyMax = 256
)

// RequestTrace is one completed request as recorded by the trace ring
// and served at GET /debug/requests. Every request gets a span; only
// slow, failed and canceled ones are retained.
type RequestTrace struct {
	ID          string  `json:"id"`
	Method      string  `json:"method"`
	Path        string  `json:"path"`
	Remote      string  `json:"remote,omitempty"`
	Start       string  `json:"start"` // RFC3339Nano
	Status      int     `json:"status"`
	Outcome     string  `json:"outcome"` // ok | shed | error | canceled
	Slow        bool    `json:"slow,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	DeadlineMS  float64 `json:"deadline_ms,omitempty"`
	DurationMS  float64 `json:"duration_ms"`
	Err         string  `json:"err,omitempty"`
}

// span is the mutable in-flight form of a RequestTrace, carried in the
// request context so acquire/runCtx/shed can annotate it. It is only
// touched from the request goroutine.
type span struct {
	id          string
	start       time.Time
	queueWaitMS float64
	deadlineMS  float64
	shed        bool
}

type spanKey struct{}

func spanFrom(ctx context.Context) *span {
	sp, _ := ctx.Value(spanKey{}).(*span)
	return sp
}

// requestID returns the client's X-Request-ID when it is sane (short,
// printable ASCII) and a generated 16-hex-digit ID otherwise, so a
// malicious header cannot pollute logs or traces.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id != "" && len(id) <= maxRequestIDLen {
		ok := true
		for i := 0; i < len(id); i++ {
			if id[i] <= ' ' || id[i] > '~' {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-unidentified"
	}
	return hex.EncodeToString(b[:])
}

// traceRing is a bounded ring of recent noteworthy requests. Concurrent
// writers append under one mutex; readers copy newest-first.
type traceRing struct {
	mu    sync.Mutex
	buf   []RequestTrace
	next  int
	total int64
}

func newTraceRing(n int) *traceRing {
	return &traceRing{buf: make([]RequestTrace, 0, n)}
}

func (tr *traceRing) add(t RequestTrace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.total++
	if len(tr.buf) < cap(tr.buf) {
		tr.buf = append(tr.buf, t)
		return
	}
	tr.buf[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.buf)
}

// recent returns the retained traces newest-first, plus the all-time
// count of noteworthy requests (retained or already overwritten).
func (tr *traceRing) recent() ([]RequestTrace, int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]RequestTrace, 0, len(tr.buf))
	for i := 1; i <= len(tr.buf); i++ {
		out = append(out, tr.buf[(tr.next+len(tr.buf)-i)%len(tr.buf)])
	}
	return out, tr.total
}

// requestsResponse is the GET /debug/requests body.
type requestsResponse struct {
	Capacity int            `json:"capacity"`
	Recorded int64          `json:"recorded"`
	Requests []RequestTrace `json:"requests"`
}

func (s *Server) handleRequests(w http.ResponseWriter, _ *http.Request) {
	recent, total := s.traces.recent()
	writeJSON(w, http.StatusOK, requestsResponse{
		Capacity: cap(s.traces.buf),
		Recorded: total,
		Requests: recent,
	})
}

// statusRecorder wraps the ResponseWriter to observe the final status
// and capture the head of error bodies for traces, while passing Flush
// through so the JSONL/SSE streaming paths keep flushing per line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	errBuf []byte
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	if sr.status >= 400 && len(sr.errBuf) < errBodyMax {
		n := errBodyMax - len(sr.errBuf)
		if n > len(p) {
			n = len(p)
		}
		sr.errBuf = append(sr.errBuf, p[:n]...)
	}
	return sr.ResponseWriter.Write(p)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// finishTrace closes out a request span: classifies the outcome, updates
// the slow/canceled counters, retains noteworthy traces in the ring, and
// emits the structured access log line.
func (s *Server) finishTrace(r *http.Request, sp *span, rec *statusRecorder, dur time.Duration) {
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	slow := dur >= s.cfg.SlowRequest
	outcome := "ok"
	switch {
	case sp.shed:
		outcome = "shed"
	case r.Context().Err() == context.Canceled:
		outcome = "canceled"
		s.metrics.Counter("serve_canceled_total").Inc()
	case status >= 400:
		outcome = "error"
	}
	if slow {
		s.metrics.Counter("serve_slow_requests_total").Inc()
	}
	if slow || outcome != "ok" {
		s.traces.add(RequestTrace{
			ID:          sp.id,
			Method:      r.Method,
			Path:        r.URL.Path,
			Remote:      r.RemoteAddr,
			Start:       sp.start.UTC().Format(time.RFC3339Nano),
			Status:      status,
			Outcome:     outcome,
			Slow:        slow,
			QueueWaitMS: sp.queueWaitMS,
			DeadlineMS:  sp.deadlineMS,
			DurationMS:  float64(dur) / float64(time.Millisecond),
			Err:         string(rec.errBuf),
		})
	}
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", sp.id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.String("outcome", outcome),
			slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
			slog.Float64("queue_ms", sp.queueWaitMS),
			slog.String("remote", r.RemoteAddr),
		)
	}
}
