// Package zoo implements related-work election protocols on the unified
// runtime.Protocol contract — the "protocol zoo" of the reproduction.
//
// The source paper (Barrière–Flocchini–Fraigniaud–Santoro, SPAA 2003)
// characterizes election feasibility in the qualitative model by the gcd of
// the automorphism-class sizes. The related papers retrieved alongside it
// solve election in neighboring models with different characterizations,
// and each lands here as a protocol written once against the
// runtime.Protocol{Spec/Init/Step} step contract, so all four backends
// (goroutine, scheduled, transformed, networked) run it unmodified:
//
//   - zoo-dp — Dereniowski–Pelc–style election for asynchronous mobile
//     agents in arbitrary networks (arXiv:1205.6249): agents reconstruct
//     the port-labeled map by whiteboard DFS and elect the agent whose
//     home-base has a unique view; solvable iff some home-base's
//     view-equivalence class is a singleton.
//   - zoo-shades:strong|weak|selection — the Gorain–Miller–Pelc "Four
//     Shades" split (arXiv:2009.06149) adapted to mobile agents: strong
//     election (every agent must name the leader, which here requires full
//     topology recognition — every view class a singleton — and costs a
//     physical naming walk to the winner's home-base), weak election (a
//     unique leader must emerge but non-leaders learn nothing more;
//     solvable iff some home view class is a singleton), and selection
//     (exactly one agent is distinguished; universally solvable because
//     the quantitative max-identity rule breaks residual symmetry, the
//     Section 1.3 row of the source paper's Table 1).
//   - zoo-uso — a unique-sink-orientation election in the style of
//     Chalopin–Kokkou (arXiv:2511.19208) for dismantlable graphs: a
//     canonical greedy dismantling (repeatedly eliminating dominated
//     vertices in view-class order) leaves a unique sink, and the agent
//     whose home-base is canonically nearest the sink wins. On inputs
//     outside the model (non-dismantlable graphs, or a symmetric core or
//     tie) the protocol reports unsolvable.
//
// Every protocol shares one schedule-independent skeleton (mapwalk.go):
// depth-first map reconstruction using only the agent's own whiteboard
// number marks and the engine's home pre-marks, a barrier at the home-base
// until all r agents have stamped it, then a pure decision over the
// reconstructed map. Decisions depend only on the map, the agent's own
// home, and (for selection's quantitative tie-break) its identity — never
// on scheduling — so outcome vectors and exact per-agent move counts agree
// across all four backends, which is what the differential conformance
// suite pins.
//
// Predict evaluates each protocol's solvability rule centrally on the true
// instance; the cross-protocol feasibility-and-cost matrix (matrix.go,
// cmd/zoo) compares every protocol's distributed verdict against it and
// against the source paper's gcd oracle — Table 1 regenerated across three
// papers' models.
package zoo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/runtime"
)

// kind enumerates the zoo protocol family members.
type kind int

const (
	kindDP kind = iota
	kindShadesStrong
	kindShadesWeak
	kindShadesSelection
	kindUSO
)

// specDP, specShades and specUSO are the runtime-registry spec names.
const (
	specDP     = "zoo-dp"
	specShades = "zoo-shades"
	specUSO    = "zoo-uso"
)

func init() {
	runtime.Register(specDP, func(args string) (runtime.Protocol, error) {
		if args != "" {
			return nil, fmt.Errorf("zoo: %s takes no args, got %q", specDP, args)
		}
		return protocol{kind: kindDP}, nil
	})
	runtime.Register(specShades, func(args string) (runtime.Protocol, error) {
		switch args {
		case "strong":
			return protocol{kind: kindShadesStrong}, nil
		case "weak":
			return protocol{kind: kindShadesWeak}, nil
		case "selection":
			return protocol{kind: kindShadesSelection}, nil
		}
		return nil, fmt.Errorf("zoo: %s wants strong, weak, or selection, got %q", specShades, args)
	})
	runtime.Register(specUSO, func(args string) (runtime.Protocol, error) {
		if args != "" {
			return nil, fmt.Errorf("zoo: %s takes no args, got %q", specUSO, args)
		}
		return protocol{kind: kindUSO}, nil
	})
}

// Specs returns the registry spec strings of every zoo protocol, in the
// canonical matrix order.
func Specs() []string {
	return []string{
		specDP,
		specShades + ":strong",
		specShades + ":weak",
		specShades + ":selection",
		specUSO,
	}
}

// New constructs a zoo protocol from its registry spec ("zoo-dp",
// "zoo-shades:strong|weak|selection", "zoo-uso"). It is a typed convenience
// over runtime.FromSpec restricted to this package's protocols.
func New(spec string) (runtime.Protocol, error) {
	k, err := kindOf(spec)
	if err != nil {
		return nil, err
	}
	return protocol{kind: k}, nil
}

// kindOf parses a zoo spec string to its kind.
func kindOf(spec string) (kind, error) {
	name, args, _ := strings.Cut(spec, ":")
	switch name {
	case specDP:
		if args == "" {
			return kindDP, nil
		}
	case specShades:
		switch args {
		case "strong":
			return kindShadesStrong, nil
		case "weak":
			return kindShadesWeak, nil
		case "selection":
			return kindShadesSelection, nil
		}
	case specUSO:
		if args == "" {
			return kindUSO, nil
		}
	}
	return 0, fmt.Errorf("zoo: unknown protocol spec %q (have %s)", spec, strings.Join(Specs(), ", "))
}

// modeOf maps a kind to the agreement contract its verdicts are held to.
func modeOf(k kind) elect.VerdictMode {
	switch k {
	case kindDP, kindShadesStrong:
		return elect.ModeStrong
	case kindShadesSelection:
		return elect.ModeSelection
	default:
		return elect.ModeWeak
	}
}

// ModeOf maps a registry spec to the agreement contract its verdicts are
// held to, without evaluating any instance (the campaign's protocol axis
// needs the mode even when analysis is disabled). Unknown specs — including
// "dfs-election" — report the strong contract.
func ModeOf(spec string) elect.VerdictMode {
	k, err := kindOf(spec)
	if err != nil {
		return elect.ModeStrong
	}
	return modeOf(k)
}

// strongNaming reports whether the kind performs the physical naming walk
// (defeated agents travel to the winner's home-base to learn its identity).
func strongNaming(k kind) bool {
	return k == kindDP || k == kindShadesStrong
}

// Prediction is the central oracle's evaluation of one zoo protocol on one
// instance: the same solvability rule the distributed protocol applies to
// its reconstructed map, evaluated on the true graph. It validates the
// distributed execution (traversal, map reconstruction, cross-backend
// transport), not the rule itself; the independent gcd oracle
// (elect.Analyze) supplies the source paper's verdict alongside.
type Prediction struct {
	// Solvable is the protocol's feasibility verdict on the instance.
	Solvable bool
	// Winner is the agent index the protocol must elect when Solvable
	// (-1 otherwise).
	Winner int
	// Mode is the agreement contract of the protocol's verdicts
	// (elect.ModeStrong / ModeWeak / ModeSelection).
	Mode elect.VerdictMode
	// Fallback reports that selection's quantitative max-identity
	// tie-break decided the winner (no view class singled out a home).
	Fallback bool
	// Applicable reports whether the instance is inside the protocol's
	// model (false only for zoo-uso on non-dismantlable graphs); an
	// inapplicable protocol still runs and must report unsolvable.
	Applicable bool
}

// Predict evaluates spec's solvability rule centrally: it builds the
// port-labeled map from the true instance (nil labels defaults to the
// trivial labeling) and applies the same pure decision the agents apply to
// their reconstructed maps. The spec "dfs-election" is accepted too and
// yields the quantitative universality prediction (always solvable, the
// maximum identity wins), so the campaign's protocol axis is uniform.
func Predict(spec string, g *graph.Graph, labels graph.EdgeLabeling, homes []int) (Prediction, error) {
	if spec == "dfs-election" {
		return Prediction{Solvable: true, Winner: len(homes) - 1, Mode: elect.ModeStrong, Applicable: true}, nil
	}
	k, err := kindOf(spec)
	if err != nil {
		return Prediction{}, err
	}
	if labels == nil {
		labels = graph.PortLabeling(g)
	}
	m := mapFromGraph(g, labels, homes)
	d := decide(k, m)
	p := Prediction{Solvable: d.solvable, Winner: -1, Mode: modeOf(k), Fallback: d.fallback, Applicable: true}
	if k == kindUSO {
		_, ok := canonicalSink(m, refineClasses(m))
		p.Applicable = ok
	}
	if !d.solvable {
		return p, nil
	}
	if d.fallback {
		p.Winner = len(homes) - 1
		return p, nil
	}
	for i, h := range homes {
		if h == d.winner {
			p.Winner = i
			return p, nil
		}
	}
	return Prediction{}, fmt.Errorf("zoo: %s winner node %d is not a home-base", spec, d.winner)
}

// Verdict classifies a completed contract run: "leader" when a unique
// leader emerged, "unsolvable" when every agent reported unsolvable, and
// "mixed" otherwise.
func Verdict(res *runtime.Result) string {
	unsolvable := 0
	for _, o := range res.Outcomes {
		if o == runtime.HaltUnsolvable {
			unsolvable++
		}
	}
	if unsolvable == len(res.Outcomes) {
		return "unsolvable"
	}
	if res.Leader() >= 0 {
		leaders, defeated := 0, 0
		for _, o := range res.Outcomes {
			switch o {
			case runtime.HaltLeader:
				leaders++
			case runtime.HaltDefeated:
				defeated++
			}
		}
		if leaders == 1 && leaders+defeated == len(res.Outcomes) {
			return "leader"
		}
	}
	return "mixed"
}

// Check compares a completed contract run against the central prediction
// and returns the invariant violations: verdict vs the predicted
// solvability, uniqueness of the leader, and the predicted winner's
// identity. It is the runtime.Result counterpart of elect.CheckInvariants
// for zoo protocols (the sim-facing mode-aware predicates live there).
func Check(res *runtime.Result, pred Prediction) []elect.Violation {
	var out []elect.Violation
	leaders := 0
	for _, o := range res.Outcomes {
		if o == runtime.HaltLeader {
			leaders++
		}
	}
	if leaders > 1 {
		out = append(out, elect.Violation{
			Code:   elect.VioMultipleLeaders,
			Detail: fmt.Sprintf("%d agents halted leader", leaders),
		})
	}
	verdict := Verdict(res)
	switch {
	case pred.Solvable && verdict != "leader":
		out = append(out, elect.Violation{
			Code:   elect.VioWrongVerdict,
			Detail: fmt.Sprintf("instance is solvable in this model but the run ended %q", verdict),
		})
	case !pred.Solvable && verdict != "unsolvable":
		out = append(out, elect.Violation{
			Code:   elect.VioWrongVerdict,
			Detail: fmt.Sprintf("instance is unsolvable in this model but the run ended %q", verdict),
		})
	case pred.Solvable && res.Leader() != pred.Winner:
		out = append(out, elect.Violation{
			Code:   elect.VioWrongVerdict,
			Detail: fmt.Sprintf("agent %d won but the model's rule elects agent %d", res.Leader(), pred.Winner),
		})
	}
	return out
}

// GCDVerdict renders the source paper's oracle for an instance: "leader"
// when gcd(|C_1|,…,|C_k|) = 1, "unsolvable" otherwise.
func GCDVerdict(an *elect.Analysis) string {
	if an != nil && an.GCD == 1 {
		return "leader"
	}
	return "unsolvable"
}

// Analyze runs the source paper's centralized analysis on an instance (the
// gcd oracle column of the matrix).
func Analyze(g *graph.Graph, homes []int) (*elect.Analysis, error) {
	return elect.Analyze(g, homes, order.Direct)
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
