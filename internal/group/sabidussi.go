package group

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/perm"
)

// This file implements Sabidussi's characterization, which the paper's
// Section 4 invokes to explain why the Petersen counterexample does not
// contradict Theorem 4.1: every vertex-transitive graph G is a quotient of
// a Cayley graph, G ≅ Cay(Γ, S)/H with Γ = Aut(G), H = stab(u₀) and
// S = {φ ∈ Γ : d(φ(u₀), u₀) = 1}. "The quotient operation seems therefore
// enough to destroy some of the properties of translations in Cayley
// graphs" — constructing the quotient makes that destruction inspectable.

// Sabidussi is the coset construction for a vertex-transitive graph.
type Sabidussi struct {
	// Aut is the full automorphism group of the input.
	Aut *perm.Group
	// Stabilizer is H = stab(u₀) (u₀ = vertex 0).
	Stabilizer []perm.Perm
	// Cosets[v] lists the elements of the left coset {φ : φ(u₀) = v};
	// coset v corresponds to vertex v of the input graph.
	Cosets [][]perm.Perm
	// Quotient is the coset graph Cay(Γ, S)/H: vertices are the cosets,
	// with an edge {C, C'} iff some a ∈ C, b ∈ C' satisfy a⁻¹b ∈ S.
	Quotient *graph.Graph
}

// SabidussiQuotient computes the coset construction for a connected
// vertex-transitive graph and returns it together with the quotient graph,
// which is guaranteed (and verified by the tests) to be isomorphic to the
// input. autCap bounds the automorphism enumeration (0 = 2^17).
func SabidussiQuotient(g *graph.Graph, autCap int) (*Sabidussi, error) {
	if g.N() == 0 {
		return nil, errors.New("group: empty graph")
	}
	if !g.IsConnected() {
		return nil, errors.New("group: graph must be connected")
	}
	if autCap <= 0 {
		autCap = 1 << 17
	}
	gens := iso.AutomorphismGens(iso.FromGraph(g, nil))
	aut, err := perm.Closure(g.N(), gens, autCap)
	if err != nil {
		return nil, err
	}
	if !aut.IsTransitive() {
		return nil, errors.New("group: graph is not vertex-transitive")
	}
	n := g.N()
	s := &Sabidussi{Aut: aut, Cosets: make([][]perm.Perm, n)}
	// Partition Γ into left cosets of H by the image of u₀ = 0.
	for _, p := range aut.Elements() {
		s.Cosets[p[0]] = append(s.Cosets[p[0]], p)
	}
	s.Stabilizer = s.Cosets[0]
	// Orbit-stabilizer: every coset has size |H|.
	h := len(s.Stabilizer)
	for v, c := range s.Cosets {
		if len(c) != h {
			return nil, fmt.Errorf("group: coset %d has size %d, want %d", v, len(c), h)
		}
	}
	// S = {σ : d(σ(u₀), u₀) = 1} — the automorphisms carrying u₀ to a
	// neighbor. Membership test via a set of keys.
	inS := make(map[string]bool)
	for _, nb := range g.NeighborSet(0) {
		for _, p := range s.Cosets[nb] {
			inS[p.Key()] = true
		}
	}
	// Quotient edges: {v, w} iff some a in coset v, b in coset w have
	// a⁻¹b ∈ S. (Equivalently b = a·σ for σ ∈ S.)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			if cosetAdjacent(s.Cosets[v], s.Cosets[w], inS) {
				b.AddEdge(v, w)
			}
		}
	}
	s.Quotient = b.Graph()
	return s, nil
}

func cosetAdjacent(cv, cw []perm.Perm, inS map[string]bool) bool {
	for _, a := range cv {
		ai := a.Inverse()
		for _, b := range cw {
			// a⁻¹∘b (apply b, then a⁻¹): carries u₀ to a⁻¹(w); the edge
			// exists iff that lands on a neighbor of u₀, i.e. a⁻¹∘b ∈ S.
			if inS[b.Compose(ai).Key()] {
				return true
			}
		}
	}
	return false
}

// QuotientIsomorphicToInput reports whether the quotient reproduces the
// input graph (Sabidussi's theorem says it always does; exposed so tests
// and demos can verify it on each instance).
func (s *Sabidussi) QuotientIsomorphicToInput(g *graph.Graph) bool {
	return iso.Isomorphic(iso.FromGraph(s.Quotient, nil), iso.FromGraph(g, nil))
}

// CayleyOrder returns |Γ|, the order of the covering Cayley graph
// Cay(Aut(G), S) whose quotient the graph is.
func (s *Sabidussi) CayleyOrder() int { return s.Aut.Order() }

// StabilizerOrder returns |H|; the quotient identifies |H| vertices of the
// covering Cayley graph into one, which is what destroys the translation
// structure (Section 4's closing observation).
func (s *Sabidussi) StabilizerOrder() int { return len(s.Stabilizer) }
