package runtime_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// TestMain lets this test binary serve as a networked-backend worker when
// the coordinator re-execs it (the SpawnProcess tests).
func TestMain(m *testing.M) {
	runtime.MaybeWorker()
	os.Exit(m.Run())
}

// conformanceInstance is one (graph, homes) input of the model-conformance
// corpus.
type conformanceInstance struct {
	name  string
	g     *graph.Graph
	homes []int
}

// twinDouble is a 2-node multigraph with a doubled edge — exercises parallel
// edges, which only the port wiring (not the adjacency relation) can
// distinguish.
func twinDouble(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromTwins([][][2]int{
		{{1, 0}, {1, 1}},
		{{0, 0}, {0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twinTriangle is a triangle with the 0–1 edge doubled.
func twinTriangle(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromTwins([][][2]int{
		{{1, 0}, {1, 1}, {2, 0}},
		{{0, 0}, {0, 1}, {2, 1}},
		{{0, 2}, {1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// conformanceCorpus is the ~20-instance sweep of the cross-backend
// conformance test: rings, hypercubes, the Petersen graph, grids, stars,
// complete and bipartite graphs, prisms, and twin-bearing multigraphs.
func conformanceCorpus(t *testing.T) []conformanceInstance {
	t.Helper()
	return []conformanceInstance{
		{"cycle3", graph.Cycle(3), []int{0, 1}},
		{"cycle5", graph.Cycle(5), []int{0, 2}},
		{"cycle6", graph.Cycle(6), []int{0, 2, 3}},
		{"cycle8", graph.Cycle(8), []int{0, 3, 5}},
		{"cycle12", graph.Cycle(12), []int{0, 4, 8}},
		{"path4", graph.Path(4), []int{0, 1}},
		{"path6", graph.Path(6), []int{0, 3, 5}},
		{"hypercube2", graph.Hypercube(2), []int{0, 3}},
		{"hypercube3", graph.Hypercube(3), []int{0, 5, 6}},
		{"petersen", graph.Petersen(), []int{0, 1}},
		{"petersen-far", graph.Petersen(), []int{0, 7, 8}},
		{"complete4", graph.Complete(4), []int{0, 2}},
		{"star4", graph.Star(4), []int{1, 2}},
		{"star5-center", graph.Star(5), []int{0, 1}},
		{"grid23", graph.Grid(2, 3), []int{0, 5}},
		{"grid33", graph.Grid(3, 3), []int{0, 4, 8}},
		{"prism3", graph.Prism(3), []int{0, 4}},
		{"wheel5", graph.Wheel(5), []int{0, 2}},
		{"bipartite23", graph.CompleteBipartite(2, 3), []int{0, 2}},
		{"twin-double", twinDouble(t), []int{0, 1}},
		{"twin-triangle", twinTriangle(t), []int{0, 2}},
	}
}

// allBackends returns the four runtimes in canonical order (networked in
// its fast in-process spawn mode).
func allBackends() []runtime.Runtime {
	return []runtime.Runtime{
		runtime.Goroutine{},
		&runtime.Scheduled{},
		runtime.Transformed{},
		&runtime.Networked{Workers: 2},
	}
}

// checkInstance runs one corpus instance on all four backends and returns
// an error on any divergence: leader identity, outcome vectors, and exact
// per-agent move counts must agree (DFSElection's trajectory depends only
// on its own marks and the shared edge labeling, so fault-free move counts
// are schedule-independent). The common leader is then cross-checked
// against the max-identity rule, the automorphism-class oracle, and the
// qualitative ELECT-vs-gcd verdict.
func checkInstance(inst conformanceInstance, p runtime.Protocol, seed int64, backends []runtime.Runtime) error {
	cfg := runtime.Config{Graph: inst.g, Homes: inst.homes, Seed: seed}
	var base *runtime.Result
	for _, rt := range backends {
		res, err := rt.Run(cfg, p)
		if err != nil {
			return fmt.Errorf("%s: %v", rt.Name(), err)
		}
		if res.Leader() < 0 {
			return fmt.Errorf("%s: no unique leader (outcomes %v)", rt.Name(), res.Outcomes)
		}
		if base == nil {
			base = res
			continue
		}
		for i := range base.Outcomes {
			if base.Outcomes[i] != res.Outcomes[i] {
				return fmt.Errorf("agent %d: %s %q vs %s %q",
					i, base.Backend, base.Outcomes[i], res.Backend, res.Outcomes[i])
			}
			if base.Moves[i] != res.Moves[i] {
				return fmt.Errorf("agent %d: %s made %d moves vs %s %d",
					i, base.Backend, base.Moves[i], res.Backend, res.Moves[i])
			}
		}
	}
	leader := base.Leader()
	// The quantitative rule itself: DFSElection crowns the maximum
	// identity, and IDs are the 1-based agent indexes, so the winner must
	// be the last agent. An independent oracle — a min-wins bug cannot
	// pass it (the canary below proves the harness can fail).
	if want := len(inst.homes) - 1; leader != want {
		return fmt.Errorf("leader %d is not the maximum identity %d", leader, want)
	}
	// Leader class: the winner's home-base lives where the bicolored
	// instance's automorphism classes say a distinguished agent can live.
	classes := order.Classes(inst.g, elect.BlackColors(inst.g.N(), inst.homes))
	nodeClass := make([]int, inst.g.N())
	for ci, nodes := range classes {
		for _, v := range nodes {
			nodeClass[v] = ci
		}
	}
	_ = nodeClass[inst.homes[leader]] // the class exists; symmetric homes share it
	// The qualitative-model verdict matches the gcd oracle on the same
	// instance (ELECT in internal/sim, which the quantitative backends
	// above cannot see).
	an, err := elect.Analyze(inst.g, inst.homes, order.Direct)
	if err != nil {
		return fmt.Errorf("analyze: %v", err)
	}
	electRes, err := sim.Run(sim.Config{
		Graph: inst.g, Homes: inst.homes, Seed: seed, WakeAll: true,
	}, elect.Elect(elect.Options{}))
	if err != nil {
		return fmt.Errorf("sim elect: %v", err)
	}
	if want := an.GCD == 1; electRes.AgreedLeader() != want {
		return fmt.Errorf("ELECT verdict %v contradicts gcd %d", electRes.AgreedLeader(), an.GCD)
	}
	return nil
}

// TestCrossBackendConformance is the differential sweep of the runtime
// contract: on every corpus instance the one DFSElection implementation
// runs on all four backends, which must agree on the leader, the outcome
// vector, and the exact per-agent move counts; the result is cross-checked
// against the max-identity rule and the qualitative gcd oracle.
func TestCrossBackendConformance(t *testing.T) {
	p := runtime.DFSElection()
	for _, inst := range conformanceCorpus(t) {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				if err := checkInstance(inst, p, seed, allBackends()); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// minWins wraps DFSElection but crowns the MINIMUM identity — the planted
// bug of the conformance canary.
type minWins struct{ runtime.Protocol }

func (m minWins) Step(memory string, v runtime.View) (string, runtime.Effect) {
	mem, eff := m.Protocol.Step(memory, v)
	if eff.Halt != "" {
		eff.Halt = runtime.HaltDefeated
		if v.ID == 1 {
			eff.Halt = runtime.HaltLeader
		}
	}
	return mem, eff
}

// TestConformanceCanary plants the min-wins bug and requires the harness to
// catch it — a harness that cannot fail proves nothing. The networked
// backend is exercised separately: it reconstructs the protocol from its
// spec, so it runs the real (max-wins) election and must diverge from the
// buggy in-process backends.
func TestConformanceCanary(t *testing.T) {
	inst := conformanceInstance{"cycle6", graph.Cycle(6), []int{0, 2}}
	buggy := minWins{runtime.DFSElection()}
	inProcess := []runtime.Runtime{runtime.Goroutine{}, runtime.Transformed{}}
	if err := checkInstance(inst, buggy, 1, inProcess); err == nil {
		t.Fatal("conformance harness accepted a min-wins election")
	} else {
		t.Logf("canary caught as expected: %v", err)
	}
	mixed := []runtime.Runtime{runtime.Transformed{}, &runtime.Networked{Workers: 2}}
	if err := checkInstance(inst, buggy, 1, mixed); err == nil {
		t.Fatal("networked backend silently agreed with a protocol its spec contradicts")
	} else {
		t.Logf("cross-backend canary caught as expected: %v", err)
	}
}
