package exp

import (
	"fmt"
	"strings"

	"repro/internal/elect"
	"repro/internal/graph"
)

// RunAnonymousExperiment regenerates the Section 1.3 impossibility argument
// (E7): a deterministic anonymous protocol run in lockstep on (C3, one
// agent) and on (C6, two antipodal agents) under the oriented labeling. The
// local traces coincide round for round, so the protocol elects a unique
// leader on C3 and two "leaders" on C6 — no effectual anonymous protocol
// exists.
func RunAnonymousExperiment() (string, error) {
	proto := func(obs elect.AnonObs) (string, elect.AnonAction) {
		if obs.State == "" {
			return "walk", elect.AnonAction{Write: "pebble", MoveLabel: 1}
		}
		if len(obs.Board) > 0 {
			return "done", elect.AnonAction{Declare: "leader"}
		}
		return "walk", elect.AnonAction{MoveLabel: 1}
	}
	c3, err := elect.RunAnonymous(elect.AnonConfig{
		G: graph.Cycle(3), Labels: elect.OrientedCycleLabeling(3), Homes: []int{0}, Rounds: 8,
	}, proto)
	if err != nil {
		return "", err
	}
	c6, err := elect.RunAnonymous(elect.AnonConfig{
		G: graph.Cycle(6), Labels: elect.OrientedCycleLabeling(6), Homes: []int{0, 3}, Rounds: 8,
	}, proto)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section 1.3 — anonymous agents cannot be elected effectually\n")
	fmt.Fprintf(&b, "protocol: drop a pebble at home, walk clockwise, declare leader on the first pebble seen\n\n")
	rows := [][]string{}
	maxLen := len(c6.Traces[0])
	for i := 0; i < maxLen; i++ {
		c3t := ""
		if i < len(c3.Traces[0]) {
			c3t = c3.Traces[0][i]
		}
		rows = append(rows, []string{
			fmt.Sprint(i), shorten(c3t), shorten(c6.Traces[0][i]), shorten(c6.Traces[1][i]),
		})
	}
	b.WriteString(Table([]string{"round", "C3 agent", "C6 agent A", "C6 agent B"}, rows))
	fmt.Fprintf(&b, "\nC3 declaration: %q; C6 declarations: %q, %q\n",
		c3.Declared[0], c6.Declared[0], c6.Declared[1])
	identical := true
	for i := range c6.Traces[0] {
		if c6.Traces[0][i] != c6.Traces[1][i] {
			identical = false
		}
	}
	fmt.Fprintf(&b, "C6 traces identical: %v — both agents declare leader: the contradiction\n", identical)
	if !identical || c3.Declared[0] != "leader" ||
		c6.Declared[0] != "leader" || c6.Declared[1] != "leader" {
		return b.String(), fmt.Errorf("exp: anonymous demo expectations violated")
	}
	return b.String(), nil
}

func shorten(s string) string {
	if len(s) > 44 {
		return s[:41] + "..."
	}
	return s
}
