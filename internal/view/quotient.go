package view

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Quotient is the view-quotient of a labeled bicolored network: one node
// per view class, with the multiset of labeled arcs out of any class
// representative. In Yamashita–Kameda theory the network is a σ_ℓ-fold
// "fibration" of its quotient: every node of a class sees exactly the same
// labeled arc multiset, so the quotient captures everything an anonymous
// computation can depend on. Theorem 2.1's processor-network argument is a
// walk through this structure.
type Quotient struct {
	Classes *Classes
	// Arcs[c] lists the outgoing arcs of class c through each port of a
	// representative: (label here, label there, destination class),
	// sorted canonically.
	Arcs [][]QArc
}

// QArc is one labeled arc of the quotient.
type QArc struct {
	LabelHere  int
	LabelThere int
	To         int // destination class
}

// BuildQuotient computes the view-quotient of (g, l, colors).
func BuildQuotient(g *graph.Graph, l graph.EdgeLabeling, colors []int) (*Quotient, error) {
	cl, err := ComputeClasses(g, l, colors)
	if err != nil {
		return nil, err
	}
	q := &Quotient{Classes: cl, Arcs: make([][]QArc, cl.Count())}
	for c, members := range cl.Members {
		rep := members[0]
		var arcs []QArc
		for p, h := range g.Ports(rep) {
			arcs = append(arcs, QArc{
				LabelHere:  l[rep][p],
				LabelThere: l[h.To][h.Twin],
				To:         cl.Class[h.To],
			})
		}
		sort.Slice(arcs, func(i, j int) bool {
			a, b := arcs[i], arcs[j]
			if a.LabelHere != b.LabelHere {
				return a.LabelHere < b.LabelHere
			}
			if a.LabelThere != b.LabelThere {
				return a.LabelThere < b.LabelThere
			}
			return a.To < b.To
		})
		q.Arcs[c] = arcs
	}
	return q, nil
}

// WellDefined verifies the fibration property: every member of every class
// produces the identical canonical arc multiset. It returns an error naming
// the first violation (there should never be one — exposed as an executable
// sanity check of the view theory).
func (q *Quotient) WellDefined(g *graph.Graph, l graph.EdgeLabeling) error {
	for c, members := range q.Classes.Members {
		want := fmt.Sprint(q.Arcs[c])
		for _, v := range members {
			var arcs []QArc
			for p, h := range g.Ports(v) {
				arcs = append(arcs, QArc{
					LabelHere:  l[v][p],
					LabelThere: l[h.To][h.Twin],
					To:         q.Classes.Class[h.To],
				})
			}
			sort.Slice(arcs, func(i, j int) bool {
				a, b := arcs[i], arcs[j]
				if a.LabelHere != b.LabelHere {
					return a.LabelHere < b.LabelHere
				}
				if a.LabelThere != b.LabelThere {
					return a.LabelThere < b.LabelThere
				}
				return a.To < b.To
			})
			if fmt.Sprint(arcs) != want {
				return fmt.Errorf("view: node %d of class %d has arc multiset %v, class has %v",
					v, c, arcs, q.Arcs[c])
			}
		}
	}
	return nil
}

// NodeCount returns the number of quotient nodes (= view classes).
func (q *Quotient) NodeCount() int { return q.Classes.Count() }

// FoldDegree returns σ_ℓ — every class has this size — or 0 if the class
// sizes are unequal (impossible for connected inputs).
func (q *Quotient) FoldDegree() int {
	s, ok := q.Classes.Symmetricity()
	if !ok {
		return 0
	}
	return s
}
