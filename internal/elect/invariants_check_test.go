package elect

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// fakeResult fabricates an observer-side Result: roles[i] paired with the
// leader index each agent acknowledges (-1 for none).
func fakeResult(roles []sim.Role, acks []int, moves int64) *sim.Result {
	colors := sim.ColorPalette(len(roles))
	res := &sim.Result{
		Outcomes: make([]sim.Outcome, len(roles)),
		Colors:   colors,
		Moves:    make([]int64, len(roles)),
		Accesses: make([]int64, len(roles)),
	}
	for i, r := range roles {
		res.Outcomes[i] = sim.Outcome{Role: r}
		if acks[i] >= 0 {
			res.Outcomes[i].Leader = colors[acks[i]]
		}
		res.Moves[i] = moves
	}
	return res
}

func codes(vs []Violation) []ViolationCode {
	out := make([]ViolationCode, len(vs))
	for i, v := range vs {
		out[i] = v.Code
	}
	return out
}

func hasCode(vs []Violation, c ViolationCode) bool {
	for _, v := range vs {
		if v.Code == c {
			return true
		}
	}
	return false
}

// TestCheckInvariantsTable proves the checker fires on hand-crafted
// violating runs — including the two-leader trace it exists to catch — and
// stays silent on clean ones.
func TestCheckInvariantsTable(t *testing.T) {
	leaderSpec := InvariantSpec{Expected: "leader", M: 6, RatioBound: 40}
	failSpec := InvariantSpec{Expected: "unsolvable", M: 6, RatioBound: 40}
	cases := []struct {
		name string
		res  *sim.Result
		err  error
		spec InvariantSpec
		want []ViolationCode
	}{
		{
			name: "clean election",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleDefeated}, []int{0, 0, 0}, 10),
			spec: leaderSpec,
		},
		{
			name: "clean unanimous failure",
			res:  fakeResult([]sim.Role{sim.RoleUnsolvable, sim.RoleUnsolvable}, []int{-1, -1}, 10),
			spec: failSpec,
		},
		{
			name: "two leaders",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleLeader}, []int{0, 1}, 10),
			spec: leaderSpec,
			want: []ViolationCode{VioMultipleLeaders, VioNoAgreement, VioWrongVerdict},
		},
		{
			name: "split brain: leader plus failure reporters",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleUnsolvable}, []int{0, -1}, 10),
			spec: leaderSpec,
			want: []ViolationCode{VioNoAgreement, VioWrongVerdict},
		},
		{
			name: "defeated agents disagree on the leader color",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleDefeated}, []int{0, 0, 1}, 10),
			spec: leaderSpec,
			want: []ViolationCode{VioNoAgreement, VioWrongVerdict},
		},
		{
			name: "elected although gcd > 1",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated}, []int{0, 0}, 10),
			spec: failSpec,
			want: []ViolationCode{VioWrongVerdict},
		},
		{
			name: "reported failure although gcd = 1",
			res:  fakeResult([]sim.Role{sim.RoleUnsolvable, sim.RoleUnsolvable}, []int{-1, -1}, 10),
			spec: leaderSpec,
			want: []ViolationCode{VioWrongVerdict},
		},
		{
			name: "move bound blown",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated}, []int{0, 0}, 10_000),
			spec: leaderSpec,
			want: []ViolationCode{VioMoveBound},
		},
		{
			name: "run error trumps everything",
			res:  fakeResult([]sim.Role{sim.RoleUnknown, sim.RoleUnknown}, []int{-1, -1}, 0),
			err:  errors.New("sim: agent 0: boom"),
			spec: leaderSpec,
			want: []ViolationCode{VioRunError},
		},
		{
			name: "no oracle: safety only",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleLeader}, []int{0, 1}, 10),
			spec: InvariantSpec{},
			want: []ViolationCode{VioMultipleLeaders, VioNoAgreement},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CheckInvariants(tc.res, tc.err, tc.spec)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want codes %v", got, tc.want)
			}
			for _, w := range tc.want {
				if !hasCode(got, w) {
					t.Fatalf("missing %s in %v", w, codes(got))
				}
			}
		})
	}
}

// TestSpecFromAnalysis maps the gcd to the expected verdict.
func TestSpecFromAnalysis(t *testing.T) {
	if s := SpecFromAnalysis(&Analysis{GCD: 1}, 9, 40); s.Expected != "leader" || s.M != 9 {
		t.Fatalf("gcd 1: %+v", s)
	}
	if s := SpecFromAnalysis(&Analysis{GCD: 3}, 9, 40); s.Expected != "unsolvable" {
		t.Fatalf("gcd 3: %+v", s)
	}
	if s := SpecFromAnalysis(nil, 9, 40); s.Expected != "" {
		t.Fatalf("nil analysis: %+v", s)
	}
}
