// Command faults sweeps one election instance across fault strategies ×
// scheduling strategies × seeds, injecting crash-stops, torn whiteboard
// writes, and bounded read staleness into the deterministic simulator and
// checking the fault-aware invariants after every run: with agents crashed
// the protocol may fail (deadlock, no verdict among survivors), but it must
// never produce two leaders, never disagree on a named leader, and never
// elect on an instance whose class-size gcd exceeds 1.
//
// Usage:
//
//	faults -graph star -n 4 -homes 1,2 \
//	       [-faults all|name,name,...] [-strategies all|name,...] \
//	       [-seeds 1..8] [-wake-all] [-bound 40] [-run-timeout 60s] \
//	       [-workers N] [-report report.json] [-save dir] [-q]
//
// Every run records both its scheduling decision log and its fault plan;
// a violating run's replay file carries both, and cmd/elect -replay
// re-executes it bit-for-bit, faults included. The command exits nonzero if
// any run violates a fault-aware invariant.
//
// Graph families and the -homes syntax match cmd/elect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/campaign"
	"repro/internal/faults"
)

func main() {
	family := flag.String("graph", "star", "graph family: path, cycle, complete, star, hypercube, torus, grid, petersen, wheel, prism, ccc, random")
	n := flag.Int("n", 4, "size parameter (nodes, or dimension for hypercube/ccc, or side for torus/grid)")
	homesArg := flag.String("homes", "1,2", "comma-separated home-base nodes")
	faultsArg := flag.String("faults", "all", "comma-separated fault strategy names, or \"all\": "+strings.Join(faults.Strategies(), ", "))
	strategiesArg := flag.String("strategies", "random", "comma-separated scheduling strategy names, or \"all\": "+strings.Join(adversary.Strategies(), ", "))
	seedsArg := flag.String("seeds", "1..8", "inclusive seed range a..b (or a single seed) per combination")
	wakeAll := flag.Bool("wake-all", true, "wake all agents at start")
	bound := flag.Float64("bound", 40, "Theorem 3.1 ratio bound c, re-scoped to survivors: flag runs with survivor moves > c·r_surv·|E|")
	runTimeout := flag.Duration("run-timeout", 60*time.Second, "per-run watchdog timeout")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	reportPath := flag.String("report", "", "write the full sweep report as JSON to this file")
	saveDir := flag.String("save", "", "write each violating run's schedule + fault plan as a replay file into this directory")
	quiet := flag.Bool("q", false, "suppress the per-violation listing (summary only)")
	flag.Parse()

	g, err := campaign.BuildGraph(*family, *n)
	if err != nil {
		fail(err)
	}
	homes, err := parseHomes(*homesArg)
	if err != nil {
		fail(err)
	}
	strategies, err := campaign.ParseStrategies(*strategiesArg)
	if err != nil {
		fail(err)
	}
	faultNames, err := campaign.ParseFaults(*faultsArg)
	if err != nil {
		fail(err)
	}
	if len(faultNames) == 0 {
		fail(fmt.Errorf("no fault strategies selected (have %s)", strings.Join(faults.Strategies(), ", ")))
	}
	seedRange, err := campaign.ParseSeedRange(*seedsArg)
	if err != nil {
		fail(err)
	}
	var seeds []int64
	for s := seedRange.From; s <= seedRange.To; s++ {
		seeds = append(seeds, s)
	}

	rep, err := adversary.Explore(adversary.Config{
		Instance:   fmt.Sprintf("%s%d%v", *family, *n, homes),
		G:          g,
		Homes:      homes,
		Strategies: strategies,
		Faults:     faultNames,
		Seeds:      seeds,
		WakeAll:    *wakeAll,
		RatioBound: *bound,
		Timeout:    *runTimeout,
		Workers:    *workers,
	})
	if err != nil {
		fail(err)
	}
	if *quiet {
		fmt.Printf("faults: %s, %d runs, %d violating (%d deadlocks, %d crashed, %d takeovers)\n",
			rep.Instance, len(rep.Runs), rep.Violating, rep.Deadlocks, rep.CrashedAgents, rep.Takeovers)
	} else {
		fmt.Print(rep.Render())
	}

	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*reportPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}

	if *saveDir != "" && rep.Violating > 0 {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			fail(err)
		}
		for _, run := range rep.Violations() {
			sf := &adversary.ScheduleFile{
				Family: *family, Size: *n, Homes: homes,
				Seed: run.Seed, Protocol: "elect", WakeAll: *wakeAll,
				Strategy:  run.Strategy,
				Schedule:  run.Schedule,
				Fault:     run.Fault,
				FaultPlan: run.FaultPlan,
			}
			name := fmt.Sprintf("violation-%s-%s-seed%d.json", run.Strategy, run.Fault, run.Seed)
			path := filepath.Join(*saveDir, name)
			if err := sf.WriteFile(path); err != nil {
				fail(err)
			}
			fmt.Printf("violating run written to %s (replay: elect -replay %s)\n", path, path)
		}
	}

	if rep.Violating > 0 {
		os.Exit(1)
	}
}

func parseHomes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad home %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "faults:", err)
	os.Exit(1)
}
