package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace unmarshals WriteChromeTrace output back into generic
// records so tests can validate the trace_event shape Perfetto expects.
func decodeTrace(t *testing.T, buf []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRun()
	r.SetTrackName(0, "agent 0")
	r.SetTrackName(-1, "engine")
	sp := r.StartSpan(0, "map-drawing", PhaseMapDraw)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	r.Instant(0, "move", PhaseMapDraw, r.Since())
	r.Instant(-1, "wake", PhaseNone, r.Since())

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())

	var meta, complete, instant int
	names := map[string]bool{}
	for i, ev := range events {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			meta++
			if i >= 4 {
				t.Errorf("metadata event at index %d, want all metadata first", i)
			}
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		case "X":
			complete++
			if dur, _ := ev["dur"].(float64); dur <= 0 {
				t.Errorf("complete event %q has non-positive dur %v", ev["name"], ev["dur"])
			}
			if cat, _ := ev["cat"].(string); cat != "mapdraw" {
				t.Errorf("span category = %q, want mapdraw", cat)
			}
		case "i":
			instant++
			if s, _ := ev["s"].(string); s != "t" {
				t.Errorf("instant scope = %q, want t", ev["s"])
			}
		default:
			t.Errorf("unexpected ph %q in event %v", ph, ev)
		}
		if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
			t.Errorf("event %v has bad ts", ev)
		}
		if pid, _ := ev["pid"].(float64); pid != chromePid {
			t.Errorf("event %v has pid %v, want %d", ev["name"], ev["pid"], chromePid)
		}
	}
	if meta != 3 { // process_name + two thread_names
		t.Errorf("metadata events: %d, want 3", meta)
	}
	if complete != 1 || instant != 2 {
		t.Errorf("complete/instant events: %d/%d, want 1/2", complete, instant)
	}
	for _, want := range []string{"repro", "agent 0", "engine"} {
		if !names[want] {
			t.Errorf("missing metadata name %q (have %v)", want, names)
		}
	}
}

func TestWriteChromeTraceNilRun(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil): %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	if len(events) != 1 || events[0]["ph"] != "M" {
		t.Errorf("nil run should emit only process metadata, got %v", events)
	}
}
