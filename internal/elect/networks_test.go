package elect

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sim"
)

// TestElectOnInterconnectionNetworks runs the full distributed protocol on
// the 16–24-node structured networks the paper lists as Cayley graphs
// (CCC, wrapped butterfly, star graph, torus) and checks the outcome
// against the gcd oracle.
func TestElectOnInterconnectionNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		name  string
		g     *graph.Graph
		homes []int
	}{
		{"CCC3", graph.CCC(3), []int{0, 7}},
		{"CCC3-three", graph.CCC(3), []int{0, 7, 13}},
		{"ST4", graph.StarGraph(4), []int{0, 5}},
		{"WB3", graph.WrappedButterfly(3), []int{0, 10}},
		{"pancake4", graph.Pancake(4), []int{0, 9}},
		{"torus44", graph.Torus(4, 4), []int{0, 5}},
		{"torus34", graph.Torus(3, 4), []int{0, 5, 9}},
		{"Q4", graph.Hypercube(4), []int{0, 3}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			o := order.ComputeAndOrder(c.g, BlackColors(c.g.N(), c.homes), order.Direct)
			res, err := sim.Run(sim.Config{
				Graph: c.g, Homes: c.homes, Seed: 3, WakeAll: false,
				Timeout: 120 * time.Second,
			}, Elect(Options{}))
			if err != nil {
				t.Fatal(err)
			}
			if o.GCD() == 1 {
				if !res.AgreedLeader() {
					t.Fatalf("gcd=1 but no agreed leader: %+v", res.Outcomes)
				}
			} else if !res.AllUnsolvable() {
				t.Fatalf("gcd=%d but outcomes %+v", o.GCD(), res.Outcomes)
			}
			ratio := float64(res.TotalMoves()) / float64(len(c.homes)*c.g.M())
			if ratio > 40 {
				t.Errorf("move ratio %.1f exceeds bound", ratio)
			}
			t.Logf("n=%d gcd=%d moves=%d ratio=%.1f", c.g.N(), o.GCD(), res.TotalMoves(), ratio)
		})
	}
}

// TestElectChaos hammers two instances under heavy adversarial delays and
// partial wake-ups across many seeds — failure injection for the sign-based
// synchronization (deadlocks would surface as timeouts, mixed outcomes as
// contract violations).
func TestElectChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	solvable := struct {
		g     *graph.Graph
		homes []int
	}{graph.Wheel(5), []int{1, 3}}
	unsolvable := struct {
		g     *graph.Graph
		homes []int
	}{graph.Cycle(8), []int{0, 4}}
	for seed := int64(100); seed < 112; seed++ {
		res, err := sim.Run(sim.Config{
			Graph: solvable.g, Homes: solvable.homes, Seed: seed, WakeAll: seed%2 == 0,
			MaxDelay: 2 * time.Millisecond,
			Timeout:  120 * time.Second,
		}, Elect(Options{}))
		if err != nil {
			t.Fatalf("solvable seed %d: %v", seed, err)
		}
		if !res.AgreedLeader() {
			t.Fatalf("solvable seed %d: %+v", seed, res.Outcomes)
		}
		res, err = sim.Run(sim.Config{
			Graph: unsolvable.g, Homes: unsolvable.homes, Seed: seed, WakeAll: seed%2 == 1,
			MaxDelay: 2 * time.Millisecond,
			Timeout:  120 * time.Second,
		}, Elect(Options{}))
		if err != nil {
			t.Fatalf("unsolvable seed %d: %v", seed, err)
		}
		if !res.AllUnsolvable() {
			t.Fatalf("unsolvable seed %d: %+v", seed, res.Outcomes)
		}
	}
}

// TestElectDeepEuclidChains drives instances whose reductions perform many
// rounds — the regime where the matching/acquisition machinery, role swaps
// and synchronization interact hardest.
func TestElectDeepEuclidChains(t *testing.T) {
	// K(5,8) fully occupied: black classes of sizes 5 and 8 (the two sides
	// have different degrees). AGENT-REDUCE(5,8) runs the subtractive chain
	// (5,8)→(3,5)→(2,3)→(1,2)→(1,1): four rounds, three role swaps.
	g := graph.CompleteBipartite(5, 8)
	homes := make([]int, 13)
	for i := range homes {
		homes[i] = i
	}
	sc := computeSchedule([]int{5, 8}, 2)
	if len(sc.phases) != 1 || len(sc.phases[0].rounds) != 4 {
		t.Fatalf("expected 4 agent-reduce rounds, got %+v", sc.phases)
	}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := sim.Run(sim.Config{
			Graph: g, Homes: homes, Seed: seed, WakeAll: false,
			Timeout: 120 * time.Second,
		}, Elect(Options{}))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AgreedLeader() {
			t.Fatalf("seed %d: expected leader (gcd(5,8)=1), got %+v", seed, res.Outcomes)
		}
	}

	// Star(13) with 5 leaves occupied: NODE-REDUCE(5 agents, 8 white
	// leaves) runs (5,8)→(5,3)→(2,3)→(2,1)→(1,1): four rounds alternating
	// the two acquisition cases.
	star := graph.Star(13)
	sHomes := []int{1, 2, 3, 4, 5}
	o := order.ComputeAndOrder(star, BlackColors(star.N(), sHomes), order.Direct)
	if o.GCD() != 1 {
		t.Fatalf("star instance gcd %d, want 1 (sizes %v)", o.GCD(), o.Sizes())
	}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := sim.Run(sim.Config{
			Graph: star, Homes: sHomes, Seed: seed, WakeAll: false,
			Timeout: 120 * time.Second,
		}, Elect(Options{}))
		if err != nil {
			t.Fatalf("star seed %d: %v", seed, err)
		}
		if !res.AgreedLeader() {
			t.Fatalf("star seed %d: expected leader, got %+v", seed, res.Outcomes)
		}
	}
}
