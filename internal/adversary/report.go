package adversary

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/elect"
	"repro/internal/sim"
)

// RunRecord is the outcome of one (strategy, fault, seed) run of an
// exploration.
type RunRecord struct {
	Strategy string `json:"strategy"`
	// Fault names the fault strategy crossed into this run ("" for the
	// fault-free baseline).
	Fault string `json:"fault,omitempty"`
	Seed  int64  `json:"seed"`
	// Outcome is "leader", "unsolvable", or "mixed" ("" when the run
	// errored before producing outcomes).
	Outcome  string `json:"outcome,omitempty"`
	Moves    int64  `json:"moves"`
	Accesses int64  `json:"accesses"`
	// Decisions is the length of the run's decision log (scheduling grants).
	Decisions int `json:"decisions"`
	// Deadlock reports that the schedule wedged (a violation only when no
	// faults were injected; crash-induced deadlocks are expected losses).
	Deadlock bool `json:"deadlock,omitempty"`
	// Crashed counts agents crash-stopped by the fault plan; Takeovers
	// counts abandoned node locks broken by surviving agents.
	Crashed   int   `json:"crashed,omitempty"`
	Takeovers int64 `json:"takeovers,omitempty"`
	// Violations lists every invariant breach (empty for a clean run).
	Violations []elect.Violation `json:"violations,omitempty"`
	// Schedule is the base64 decision log, present for violating runs (or
	// all runs under Config.KeepSchedules) — feed it to sim.Replay via
	// DecodeScheduleString or cmd/elect -replay.
	Schedule string `json:"schedule,omitempty"`
	// FaultEvents counts the injected fault events; FaultPlan is the base64
	// fault plan (faults.DecodePlanString), carried by every fault run so a
	// violating run replays without re-deriving the strategy.
	FaultEvents int     `json:"fault_events,omitempty"`
	FaultPlan   string  `json:"fault_plan,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// Report aggregates one exploration sweep.
type Report struct {
	Instance string `json:"instance"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	R        int    `json:"r"`
	// Oracle facts: ordered class sizes, their gcd, and the verdict every
	// run is held to.
	Sizes    []int  `json:"sizes"`
	GCD      int    `json:"gcd"`
	Expected string `json:"expected"`
	// The swept axes. Faults is empty for a fault-free sweep.
	Strategies []string `json:"strategies"`
	Faults     []string `json:"faults,omitempty"`
	Seeds      []int64  `json:"seeds"`
	// Runs holds one record per (strategy, fault, seed), in sweep order.
	Runs []RunRecord `json:"runs"`
	// Violating counts runs with at least one violation; Deadlocks counts
	// wedged schedules; Decisions sums all decision-log lengths.
	Violating int   `json:"violating"`
	Deadlocks int   `json:"deadlocks"`
	Decisions int64 `json:"decisions"`
	// CrashedAgents and Takeovers aggregate the fault plane across all runs:
	// total crash-stopped agents and total abandoned-lock takeovers.
	CrashedAgents int   `json:"crashed_agents,omitempty"`
	Takeovers     int64 `json:"takeovers,omitempty"`
}

// Violations returns the violating run records.
func (r *Report) Violations() []RunRecord {
	var out []RunRecord
	for _, run := range r.Runs {
		if len(run.Violations) > 0 {
			out = append(out, run)
		}
	}
	return out
}

// Render prints the report as a human-readable block.
func (r *Report) Render() string {
	out := fmt.Sprintf("adversary: %s (n=%d |E|=%d r=%d), classes %v gcd %d, expected %s\n",
		r.Instance, r.N, r.M, r.R, r.Sizes, r.GCD, r.Expected)
	if len(r.Faults) > 0 {
		out += fmt.Sprintf("  %d runs (%d strategies × %d faults × %d seeds), %d scheduling decisions\n",
			len(r.Runs), len(r.Strategies), len(r.Faults), len(r.Seeds), r.Decisions)
		out += fmt.Sprintf("  fault plane: %v — %d agents crashed, %d lock takeovers\n",
			r.Faults, r.CrashedAgents, r.Takeovers)
	} else {
		out += fmt.Sprintf("  %d runs (%d strategies × %d seeds), %d scheduling decisions\n",
			len(r.Runs), len(r.Strategies), len(r.Seeds), r.Decisions)
	}
	perStrategy := map[string]int{}
	for _, run := range r.Runs {
		if len(run.Violations) > 0 {
			perStrategy[run.Strategy]++
		}
	}
	if r.Violating == 0 {
		out += "  invariants: all hold (zero violations)\n"
		return out
	}
	out += fmt.Sprintf("  INVARIANT VIOLATIONS: %d runs (%d deadlocks)\n", r.Violating, r.Deadlocks)
	names := make([]string, 0, len(perStrategy))
	for s := range perStrategy {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		out += fmt.Sprintf("    %-12s %d violating runs\n", s, perStrategy[s])
	}
	for _, run := range r.Violations() {
		tag := run.Strategy
		if run.Fault != "" {
			tag += "+" + run.Fault
		}
		for _, v := range run.Violations {
			out += fmt.Sprintf("    [%s seed %d] %s\n", tag, run.Seed, v)
		}
	}
	return out
}

// EncodeScheduleString renders a decision log as base64 (the JSON-friendly
// form of Schedule.Encode).
func EncodeScheduleString(s *sim.Schedule) string {
	return base64.StdEncoding.EncodeToString(s.Encode())
}

// DecodeScheduleString parses EncodeScheduleString output.
func DecodeScheduleString(s string) (*sim.Schedule, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("adversary: bad schedule base64: %w", err)
	}
	return sim.DecodeSchedule(raw)
}

// ScheduleFile is a self-contained replay artifact: everything needed to
// re-execute one recorded run deterministically. cmd/adversary writes one
// per violating run; cmd/elect -replay consumes them.
type ScheduleFile struct {
	// Family and Size name the graph generator (campaign.BuildGraph
	// vocabulary) so the replayer can reconstruct the instance.
	Family string `json:"family"`
	Size   int    `json:"size"`
	Homes  []int  `json:"homes"`
	// Seed is the simulation seed of the recorded run (colors,
	// presentations, wake set); Protocol names the protocol that ran.
	Seed     int64  `json:"seed"`
	Protocol string `json:"protocol"`
	// WakeAll records the wake-up mode of the run (the wake set is part of
	// the execution, so replay must match it).
	WakeAll bool `json:"wake_all,omitempty"`
	// Strategy names the strategy that produced the log (informational).
	Strategy string `json:"strategy"`
	// Schedule is the base64 decision log.
	Schedule string `json:"schedule"`
	// Fault names the fault strategy of the recorded run and FaultPlan
	// carries its base64 fault plan (faults.DecodePlanString); both empty
	// for fault-free runs. Replays must re-inject the plan to match.
	Fault     string `json:"fault,omitempty"`
	FaultPlan string `json:"fault_plan,omitempty"`
}

// Decode returns the decision log carried by the file.
func (f *ScheduleFile) Decode() (*sim.Schedule, error) {
	return DecodeScheduleString(f.Schedule)
}

// WriteFile saves the artifact as indented JSON.
func (f *ScheduleFile) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadScheduleFile reads a ScheduleFile written by WriteFile.
func LoadScheduleFile(path string) (*ScheduleFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ScheduleFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("adversary: %s: %w", path, err)
	}
	return &f, nil
}
