package labeling

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/group"
)

// Thm41Trace records one execution of the constructive refinement from the
// proof of Theorem 4.1: repeatedly take two pseudo label-equivalence classes
// C, C' of different sizes joined by edges of some generator s, mark the
// s-edges between C and Cs, and thereby split C' into Cs and C' \ Cs, until
// all classes share one size. Two invariants hold throughout (and are
// checked here at every step):
//
//  1. |Cs| = |C| — the split replaces (C, C') by (C, Cs, C'\Cs);
//  2. the gcd of all class sizes stays d (Euclid: gcd(a, b) = gcd(a, b−a)).
//
// A finding worth recording (see the tests): starting — as this
// implementation does, and as the proof's initial partition is most
// naturally read — from the translation-equivalence classes, the loop is
// provably vacuous: translations act freely, so every translation class
// already has size exactly d and no split is ever needed. The splitting
// machinery is the proof's device for coarser intermediate partitions; the
// executable content at this start is the endpoint identity, which the
// tests verify independently: the final pseudo-classes coincide with the
// label-equivalence classes of the natural generator labeling, all of size
// d — so for d > 1 Theorem 2.1 forbids election, exactly as Theorem 4.1
// concludes.
type Thm41Trace struct {
	// D is the number of black-preserving translations (= the common final
	// class size).
	D int
	// Steps records each split as (|C|, |C'| before, generator index).
	Steps []Thm41Step
	// Final lists the final pseudo-class sizes (all equal to D).
	Final [][]int
}

// Thm41Step is one marking/splitting iteration.
type Thm41Step struct {
	SizeC, SizeCPrime int
	Generator         int
}

// Thm41Refine executes the proof's refinement on a bicolored Cayley graph
// and verifies its invariants, returning the trace. It errors if any
// invariant fails — which would falsify the proof on this instance.
func Thm41Refine(c *group.Cayley, black []bool) (*Thm41Trace, error) {
	classes, d := c.TranslationClasses(black)
	tr := &Thm41Trace{D: d}

	// Work on copies, as sorted int sets.
	cur := make([][]int, len(classes))
	for i, cl := range classes {
		cur[i] = append([]int(nil), cl...)
		sort.Ints(cur[i])
	}
	classOf := make([]int, c.G.N())
	rebuild := func() {
		for i, cl := range cur {
			for _, v := range cl {
				classOf[v] = i
			}
		}
	}
	rebuild()

	gcdAll := func() int {
		g := 0
		for _, cl := range cur {
			g = gcd(g, len(cl))
		}
		return g
	}
	if gcdAll() != d {
		return nil, fmt.Errorf("labeling: initial gcd %d != d %d", gcdAll(), d)
	}

	for iter := 0; ; iter++ {
		if iter > 4*c.G.N() {
			return nil, errors.New("labeling: refinement failed to terminate")
		}
		// All classes the same size?
		same := true
		for _, cl := range cur {
			if len(cl) != len(cur[0]) {
				same = false
				break
			}
		}
		if same {
			break
		}
		// Find classes C (smaller) and C' (bigger) joined by a generator:
		// an s with Cs ⊆ some class of different size.
		ci, cj, gen := -1, -1, -1
		for i := 0; i < len(cur) && ci == -1; i++ {
			for _, s := range c.Gens {
				img := classOf[c.Group.Mul(cur[i][0], s)]
				if img == i || len(cur[img]) == len(cur[i]) {
					continue
				}
				if len(cur[i]) < len(cur[img]) {
					ci, cj, gen = i, img, s
					break
				}
			}
		}
		if ci == -1 {
			return nil, errors.New("labeling: no splittable class pair found (connectivity argument broken)")
		}
		// By the proof's translation argument, the s-image of EVERY member
		// of C lands in C' — verify rather than assume.
		Cs := make([]int, 0, len(cur[ci]))
		for _, x := range cur[ci] {
			y := c.Group.Mul(x, gen)
			if classOf[y] != cj {
				return nil, fmt.Errorf("labeling: s-image of class %d leaks outside class %d", ci, cj)
			}
			Cs = append(Cs, y)
		}
		sort.Ints(Cs)
		if len(Cs) != len(cur[ci]) {
			return nil, errors.New("labeling: |Cs| != |C| (translations should act freely)")
		}
		// Split C' into Cs and C' \ Cs.
		inCs := make(map[int]bool, len(Cs))
		for _, v := range Cs {
			inCs[v] = true
		}
		var rest []int
		for _, v := range cur[cj] {
			if !inCs[v] {
				rest = append(rest, v)
			}
		}
		if len(rest) == 0 {
			return nil, errors.New("labeling: split produced an empty remainder")
		}
		tr.Steps = append(tr.Steps, Thm41Step{
			SizeC: len(cur[ci]), SizeCPrime: len(cur[cj]), Generator: gen,
		})
		cur[cj] = Cs
		cur = append(cur, rest)
		rebuild()
		// Invariant 2: the gcd is preserved at every step.
		if g := gcdAll(); g != d {
			return nil, fmt.Errorf("labeling: gcd drifted to %d after step %d (want %d)", g, len(tr.Steps), d)
		}
	}
	// Termination: every class has size exactly d.
	for _, cl := range cur {
		if len(cl) != d {
			return nil, fmt.Errorf("labeling: final class size %d != d %d", len(cl), d)
		}
	}
	tr.Final = cur
	return tr, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
