// Package exp is the experiment harness of the reproduction: one function
// per table or figure of the paper, each regenerating the corresponding
// result as a rendered text table plus structured data that the tests and
// benchmarks assert on. The experiment index lives in DESIGN.md §4 and the
// measured outcomes in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/view"
)

// Table renders rows of cells with aligned columns.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	all := append([][]string{header}, rows...)
	for _, r := range all {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Instance is one election input.
type Instance struct {
	Name  string
	G     *graph.Graph
	Homes []int
}

// runCfg builds the common simulation configuration of the experiments.
func runCfg(g *graph.Graph, homes []int, seed int64, quant bool) sim.Config {
	return sim.Config{
		Graph: g, Homes: homes, Seed: seed, WakeAll: false,
		MaxDelay: 50 * time.Microsecond, Timeout: 120 * time.Second,
		QuantitativeIDs: quant,
	}
}

// outcomeString summarizes a run result.
func outcomeString(res *sim.Result) string {
	switch {
	case res.AgreedLeader():
		return "leader"
	case res.AllUnsolvable():
		return "unsolvable"
	default:
		return "MIXED"
	}
}

// ---------------------------------------------------------------------------
// E1 — Table 1: election feasibility per agent model.
// ---------------------------------------------------------------------------

// Table1Row is one empirical cell bundle of Table 1.
type Table1Row struct {
	Model              string
	Universal          string
	EffectualArbitrary string
	EffectualCayley    string
}

// Table1 regenerates the paper's Table 1 empirically:
//
//   - anonymous agents: the lockstep C3/C6 construction shows even the
//     effectual goals unreachable (No everywhere);
//   - qualitative agents: K2 refutes universality; ELECT mis-declares the
//     solvable Petersen instance (so plain ELECT is not effectual on
//     arbitrary graphs — the paper leaves existence open, resolved
//     positively by Chalopin 2006); on the Cayley sweep the Section 4
//     decision matches the exact Theorem 2.1 oracle on every instance (Yes);
//   - quantitative agents: the baseline elects on every instance of the
//     suite, including all qualitatively impossible ones (Yes everywhere).
func Table1(seed int64) (string, []Table1Row, error) {
	// Anonymous: reproduce the §1.3 contradiction.
	anonContradiction, err := anonymousDoubleElection()
	if err != nil {
		return "", nil, err
	}
	anon := "No"
	if !anonContradiction {
		anon = "ERROR: contradiction not reproduced"
	}

	// Qualitative / universal: K2 must come back unsolvable.
	k2, err := sim.Run(runCfg(graph.Path(2), []int{0, 1}, seed, false),
		elect.Elect(elect.Options{}))
	if err != nil {
		return "", nil, err
	}
	qualUniversal := "No"
	if !k2.AllUnsolvable() {
		qualUniversal = "ERROR: K2 elected"
	}

	// Qualitative / effectual-arbitrary: Petersen Fig.5 is solvable (ad hoc
	// protocol elects; Theorem 2.1 finds no symmetric labeling) yet ELECT
	// declares it unsolvable.
	pAn, err := elect.Analyze(graph.Petersen(), []int{0, 1}, order.Direct)
	if err != nil {
		return "", nil, err
	}
	pElect, err := sim.Run(runCfg(graph.Petersen(), []int{0, 1}, seed, false),
		elect.Elect(elect.Options{}))
	if err != nil {
		return "", nil, err
	}
	pAdhoc, err := sim.Run(runCfg(graph.Petersen(), []int{0, 1}, seed, false),
		elect.PetersenElect())
	if err != nil {
		return "", nil, err
	}
	qualArbitrary := "? (ELECT: no)"
	if pAn.Impossible21 || !pElect.AllUnsolvable() || !pAdhoc.AgreedLeader() {
		qualArbitrary = "ERROR: Petersen evidence failed"
	}

	// Qualitative / effectual-Cayley: sweep decision vs oracle.
	agree, total, err := CayleySweepAgreement()
	if err != nil {
		return "", nil, err
	}
	qualCayley := fmt.Sprintf("Yes (%d/%d oracle-matched)", agree, total)
	if agree != total {
		qualCayley = fmt.Sprintf("ERROR: %d/%d mismatched", total-agree, total)
	}

	// Quantitative: baseline elects on every instance, including impossible
	// qualitative ones.
	quantOK := true
	for _, inst := range QuantSuite() {
		res, err := sim.Run(runCfg(inst.G, inst.Homes, seed, true), elect.QuantitativeElect())
		if err != nil {
			return "", nil, err
		}
		if !res.AgreedLeader() {
			quantOK = false
		}
	}
	quant := "Yes"
	if !quantOK {
		quant = "ERROR"
	}

	rows := []Table1Row{
		{"Anonymous", anon, anon, anon},
		{"Qualitative", qualUniversal, qualArbitrary, qualCayley},
		{"Quantitative", quant, quant, quant},
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Model, r.Universal, r.EffectualArbitrary, r.EffectualCayley})
	}
	return Table(
		[]string{"Agents", "Universal", "Effectual(arbitrary)", "Effectual(Cayley)"},
		cells), rows, nil
}

// QuantSuite returns the instances used for the quantitative row —
// deliberately including every qualitative counterexample.
func QuantSuite() []Instance {
	return []Instance{
		{"K2", graph.Path(2), []int{0, 1}},
		{"C6-antipodal", graph.Cycle(6), []int{0, 3}},
		{"petersen-fig5", graph.Petersen(), []int{0, 1}},
		{"Q3-antipodal", graph.Hypercube(3), []int{0, 7}},
		{"K4-full", graph.Complete(4), []int{0, 1, 2, 3}},
		{"star-leaves", graph.Star(4), []int{1, 2, 3, 4}},
	}
}

// anonymousDoubleElection reruns the §1.3 lockstep argument and reports
// whether the double election (the contradiction) occurred on C6 while the
// lone agent elected on C3.
func anonymousDoubleElection() (bool, error) {
	proto := func(obs elect.AnonObs) (string, elect.AnonAction) {
		if obs.State == "" {
			return "walk", elect.AnonAction{Write: "pebble", MoveLabel: 1}
		}
		if len(obs.Board) > 0 {
			return "done", elect.AnonAction{Declare: "leader"}
		}
		return "walk", elect.AnonAction{MoveLabel: 1}
	}
	c3, err := elect.RunAnonymous(elect.AnonConfig{
		G: graph.Cycle(3), Labels: elect.OrientedCycleLabeling(3), Homes: []int{0}, Rounds: 8,
	}, proto)
	if err != nil {
		return false, err
	}
	c6, err := elect.RunAnonymous(elect.AnonConfig{
		G: graph.Cycle(6), Labels: elect.OrientedCycleLabeling(6), Homes: []int{0, 3}, Rounds: 8,
	}, proto)
	if err != nil {
		return false, err
	}
	return c3.Declared[0] == "leader" &&
		c6.Declared[0] == "leader" && c6.Declared[1] == "leader", nil
}

// ---------------------------------------------------------------------------
// E2 — Figure 2(a,b): quantitative vs qualitative labelings of the path.
// ---------------------------------------------------------------------------

// FirstSeenCoding renames a symbol sequence by order of first appearance —
// the paper's "code i the i-th symbol met so far" rule an agent can apply
// to incomparable symbols.
func FirstSeenCoding(seq []string) []int {
	code := map[string]int{}
	out := make([]int, len(seq))
	for i, s := range seq {
		if _, ok := code[s]; !ok {
			code[s] = len(code) + 1
		}
		out[i] = code[s]
	}
	return out
}

// Fig2AB regenerates Figure 2(a,b): under the quantitative labeling the
// three views of the path are pairwise distinct and totally ordered; under
// the qualitative labeling the first-seen codings of the two end-to-end
// walks collide (both 1,2,3,1), so views cannot be ordered by coding.
func Fig2AB() (string, error) {
	g := graph.Path(3)
	lq := labeling.Fig2aLabeling()
	cl, err := view.ComputeClasses(g, lq, nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(a) — quantitative path x-y-z, labels l_x(xy)=1 l_y(xy)=1 l_y(yz)=2 l_z(yz)=1\n")
	fmt.Fprintf(&b, "  view classes: %d (all distinct: %v)\n", cl.Count(), cl.Count() == 3)
	views := make([]string, 3)
	for v := 0; v < 3; v++ {
		views[v] = view.BuildTree(g, lq, nil, v, 2).String()
	}
	ordered := append([]string(nil), views...)
	sort.Strings(ordered)
	fmt.Fprintf(&b, "  canonical order of integer-labeled views: %q\n", ordered)

	// Figure 2(b): the qualitative labeling *, o, ., * — walk both ways.
	seqFromX := []string{"*", "o", ".", "*"}
	seqFromZ := []string{"*", ".", "o", "*"}
	cx, cz := FirstSeenCoding(seqFromX), FirstSeenCoding(seqFromZ)
	fmt.Fprintf(&b, "Figure 2(b) — qualitative path, symbols *, o, . (incomparable)\n")
	fmt.Fprintf(&b, "  agent from x sees %v -> coding %v\n", seqFromX, cx)
	fmt.Fprintf(&b, "  agent from z sees %v -> coding %v\n", seqFromZ, cz)
	same := fmt.Sprint(cx) == fmt.Sprint(cz)
	fmt.Fprintf(&b, "  codings collide: %v (so the two end agents cannot order their views)\n", same)
	if !same || cl.Count() != 3 {
		return b.String(), fmt.Errorf("exp: Figure 2(a,b) expectations violated")
	}
	return b.String(), nil
}

// Fig2C regenerates Figure 2(c): the 3-node multigraph whose nodes all have
// the same view under the figure's labeling although every label-equivalence
// class is a singleton — the converse of Equation (1) fails.
func Fig2C() (string, error) {
	g := graph.Fig2c()
	l := labeling.Fig2cLabeling()
	cl, err := view.ComputeClasses(g, l, nil)
	if err != nil {
		return "", err
	}
	classes, err := labeling.LabClasses(g, l, nil, 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(c) — triangle + double edge + loop, the paper's labeling\n")
	fmt.Fprintf(&b, "  view classes: %d (all three nodes share one view: %v)\n",
		cl.Count(), cl.Count() == 1)
	fmt.Fprintf(&b, "  label-equivalence classes: %v (all singletons: %v)\n",
		classes, len(classes) == 3)
	if cl.Count() != 1 || len(classes) != 3 {
		return b.String(), fmt.Errorf("exp: Figure 2(c) expectations violated")
	}
	return b.String(), nil
}
