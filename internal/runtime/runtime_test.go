package runtime

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestConfigValidation(t *testing.T) {
	good := graph.Cycle(4)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"empty graph", Config{}, "empty graph"},
		{"disconnected", Config{Graph: mustDisconnected(t), Homes: []int{0}}, "connected"},
		{"no agents", Config{Graph: good}, "at least one agent"},
		{"home out of range", Config{Graph: good, Homes: []int{9}}, "out of range"},
		{"duplicate home", Config{Graph: good, Homes: []int{1, 1}}, "AllowSharedHomes"},
		{"bad labeling", Config{Graph: good, Homes: []int{0}, Labels: graph.EdgeLabeling{{0}}}, "label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, rt := range []Runtime{Goroutine{}, &Scheduled{}, Transformed{}, &Networked{}} {
				cfg := tc.cfg
				_, err := rt.Run(cfg, DFSElection())
				if err == nil || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("%s: got %v, want mention of %q", rt.Name(), err, tc.want)
				}
			}
		})
	}
}

func mustDisconnected(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromTwins([][][2]int{
		{{1, 0}}, {{0, 0}},
		{{3, 0}}, {{2, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSharedHomes(t *testing.T) {
	cfg := Config{
		Graph:            graph.Cycle(5),
		Homes:            []int{0, 0, 3, 3},
		Seed:             2,
		AllowSharedHomes: true,
	}
	for _, rt := range []Runtime{Goroutine{}, Transformed{}, &Networked{Workers: 2}} {
		res, err := rt.Run(cfg, DFSElection())
		if err != nil {
			t.Fatalf("%s: %v", rt.Name(), err)
		}
		if got := res.Leader(); got != 3 {
			t.Fatalf("%s: leader %d, want the maximum identity 3 (outcomes %v)",
				rt.Name(), got, res.Outcomes)
		}
	}
}

func TestNewAndBackends(t *testing.T) {
	for _, name := range Backends() {
		rt, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, rt.Name())
		}
	}
	if _, err := New("carrier-pigeon"); err == nil {
		t.Fatal("New accepted an unknown backend")
	}
}

func TestRegistry(t *testing.T) {
	if _, err := FromSpec("dfs-election"); err != nil {
		t.Fatal(err)
	}
	if _, err := FromSpec("dfs-election:extra"); err == nil {
		t.Fatal("dfs-election accepted args")
	}
	p, err := FromSpec("walker:1,3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec() != "walker:1,3" {
		t.Fatalf("spec round trip: %q", p.Spec())
	}
	for _, bad := range []string{"", "nope", "walker", "walker:x,y", "walker:1"} {
		if _, err := FromSpec(bad); err == nil {
			t.Fatalf("FromSpec(%q) succeeded", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("dfs-election", nil)
}

func TestWalkerAcrossBackends(t *testing.T) {
	cfg := Config{Graph: graph.Cycle(4), Homes: []int{0, 2}, Seed: 1}
	for _, rt := range []Runtime{Goroutine{}, &Scheduled{}, Transformed{}, &Networked{}} {
		res, err := rt.Run(cfg, Walker(1, 5))
		if err != nil {
			t.Fatalf("%s: %v", rt.Name(), err)
		}
		for i, o := range res.Outcomes {
			if o != "done" {
				t.Fatalf("%s: agent %d halted %q", rt.Name(), i, o)
			}
			if res.Moves[i] != 5 {
				t.Fatalf("%s: agent %d made %d moves", rt.Name(), i, res.Moves[i])
			}
		}
		if res.Steps == 0 || res.Backend != rt.Name() {
			t.Fatalf("%s: result metadata %+v", rt.Name(), res)
		}
	}
}

// sitter parks forever — the deadlock probe.
type sitter struct{}

func (sitter) Spec() string    { return "test-sitter" }
func (sitter) Init(int) string { return "" }
func (sitter) Step(m string, _ View) (string, Effect) {
	return m, Effect{Move: -1}
}

func TestDeadlockDetection(t *testing.T) {
	cfg := Config{Graph: graph.Cycle(3), Homes: []int{0}, Seed: 1}
	if _, err := (Transformed{}).Run(cfg, sitter{}); err == nil {
		t.Fatal("transformed backend did not flag an eternal sitter")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Outcomes: []string{HaltDefeated, HaltLeader}, Moves: []int64{3, 4}}
	if r.Leader() != 1 || r.TotalMoves() != 7 {
		t.Fatalf("helpers: leader %d, total %d", r.Leader(), r.TotalMoves())
	}
	two := &Result{Outcomes: []string{HaltLeader, HaltLeader}}
	if two.Leader() != -1 {
		t.Fatal("two leaders must report none")
	}
	none := &Result{Outcomes: []string{HaltDefeated}}
	if none.Leader() != -1 {
		t.Fatal("no leader must report none")
	}
}

func TestBoardSetDedup(t *testing.T) {
	b := &boardSet{}
	if !b.write(0, "x") || b.write(0, "x") {
		t.Fatal("per-writer dedup broken")
	}
	if !b.write(1, "x") {
		t.Fatal("a second writer must land the same text")
	}
	if got := b.view(); len(got) != 2 || got[0] != "x" || got[1] != "x" {
		t.Fatalf("view %v", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &frame{T: FrameExec, Node: 3, Agent: 1, Mem: "F|2|1", Entry: 0, Move: -1}
	if _, err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, _, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
	// Oversized and truncated frames are rejected.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 9, 'x'})); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestServeWorkerErrors drives the worker loop over an in-memory pipe
// through its failure branches: exec before init, a node outside the
// shard, a bad protocol spec, and an unexpected frame type.
func TestServeWorkerErrors(t *testing.T) {
	start := func() (net.Conn, chan error) {
		c, s := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- ServeWorker(s) }()
		return c, done
	}

	c, done := start()
	if _, err := writeFrame(c, &frame{T: FrameExec, Node: 0}); err != nil {
		t.Fatal(err)
	}
	res, _, err := readFrame(c)
	if err != nil || !strings.Contains(res.Err, "before init") {
		t.Fatalf("exec before init: %v %+v", err, res)
	}

	if _, err := writeFrame(c, &frame{T: FrameInit, Spec: "no-such"}); err != nil {
		t.Fatal(err)
	}
	ack, _, err := readFrame(c)
	if err != nil || ack.Err == "" {
		t.Fatalf("bad spec must be refused: %v %+v", err, ack)
	}

	if _, err := writeFrame(c, &frame{T: FrameInit, Spec: "walker:1,1",
		Nodes: []nodeInit{{V: 0, Labels: []int{0, 1}, Homes: []int{0}}}}); err != nil {
		t.Fatal(err)
	}
	if ack, _, err = readFrame(c); err != nil || ack.Err != "" {
		t.Fatalf("good init refused: %v %+v", err, ack)
	}
	if _, err := writeFrame(c, &frame{T: FrameExec, Node: 5}); err != nil {
		t.Fatal(err)
	}
	if res, _, err = readFrame(c); err != nil || !strings.Contains(res.Err, "not in this shard") {
		t.Fatalf("foreign node accepted: %v %+v", err, res)
	}
	if _, err := writeFrame(c, &frame{T: FrameDone}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c.Close()

	c, done = start()
	if _, err := writeFrame(c, &frame{T: "mystery"}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("unexpected frame type accepted")
	}
	c.Close()

	c, done = start()
	c.Close() // EOF is a clean shutdown
	if err := <-done; err != nil {
		t.Fatalf("EOF must end the worker cleanly: %v", err)
	}
}

func TestRunWorkerBadSpecs(t *testing.T) {
	for _, spec := range []string{"", "unix|/none", "unix|/none|x", "bad-network|addr|0"} {
		if err := RunWorker(spec); err == nil {
			t.Fatalf("RunWorker(%q) succeeded", spec)
		}
	}
}

func TestNetworkedBadConfig(t *testing.T) {
	cfg := Config{Graph: graph.Cycle(3), Homes: []int{0}, Seed: 1}
	if _, err := (&Networked{Spawn: "teleport"}).Run(cfg, DFSElection()); err == nil {
		t.Fatal("unknown spawn mode accepted")
	}
	if _, err := (&Networked{Spawn: SpawnProcess, Transport: "carrier"}).Run(cfg, DFSElection()); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
