package elect

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// crashSome marks the given agents crashed on a fabricated Result.
func crashSome(res *sim.Result, crashed ...int) *sim.Result {
	res.Crashed = make([]bool, len(res.Outcomes))
	for _, i := range crashed {
		res.Crashed[i] = true
		res.Outcomes[i] = sim.Outcome{} // a crashed agent reports nothing
	}
	return res
}

// TestMoveBoundUsesInitialAgentCount is the regression pin for the bound's
// inputs: the FAULT-FREE checker must derive r from the initial agent count
// (len(Outcomes)), and the fault-aware re-scope to survivors must not
// loosen it. With 3 agents, M=10, c=2 the fault-free limit is exactly
// 2·3·10 = 60 total moves.
func TestMoveBoundUsesInitialAgentCount(t *testing.T) {
	spec := InvariantSpec{Expected: "leader", M: 10, RatioBound: 2}

	// 20 moves per agent → 60 total: exactly at the limit, no violation.
	at := fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleDefeated}, []int{0, 0, 0}, 20)
	if vs := CheckInvariants(at, nil, spec); hasCode(vs, VioMoveBound) {
		t.Fatalf("at-limit run flagged: %v", vs)
	}
	// 21 moves per agent → 63 total: over. If the checker ever switched to
	// a survivor count or dropped an agent, 63 ≤ 2·r'·10 for r' ≥ 4 would
	// hide this; equally a smaller r' would false-positive the case above.
	over := fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleDefeated}, []int{0, 0, 0}, 21)
	if vs := CheckInvariants(over, nil, spec); !hasCode(vs, VioMoveBound) {
		t.Fatalf("over-limit run not flagged: %v", vs)
	}
}

// TestFaultAwareMoveBoundScopesToSurvivors: with one of three agents
// crashed, the envelope is c·r_surv·|E| = 2·2·10 = 40 over the SURVIVORS'
// moves only — the dead agent's moves are not charged against the theorem.
func TestFaultAwareMoveBoundScopesToSurvivors(t *testing.T) {
	spec := InvariantSpec{Expected: "leader", M: 10, RatioBound: 2, FaultsInjected: true}

	res := crashSome(fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleUnknown}, []int{0, 0, -1}, 20), 2)
	res.Moves[2] = 1000 // the crashed agent's moves must not count
	if vs := CheckInvariants(res, nil, spec); hasCode(vs, VioMoveBound) {
		t.Fatalf("survivors within bound flagged: %v", vs)
	}

	res = crashSome(fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleUnknown}, []int{0, 0, -1}, 21), 2)
	if vs := CheckInvariants(res, nil, spec); !hasCode(vs, VioMoveBound) {
		t.Fatalf("survivors over re-scoped bound not flagged: %v", vs)
	}
}

// TestFaultAwareSafety spells out the relaxed contract: failure is allowed,
// wrong answers are not.
func TestFaultAwareSafety(t *testing.T) {
	spec := func(expected string) InvariantSpec {
		return InvariantSpec{Expected: expected, M: 6, RatioBound: 40, FaultsInjected: true}
	}
	cases := []struct {
		name string
		res  *sim.Result
		err  error
		exp  string
		want []ViolationCode
	}{
		{
			name: "crash-induced deadlock is not a violation",
			res:  crashSome(fakeResult([]sim.Role{sim.RoleUnknown, sim.RoleUnknown, sim.RoleUnknown}, []int{-1, -1, -1}, 1), 0),
			err:  sim.ErrDeadlock,
			exp:  "leader",
			want: nil,
		},
		{
			name: "survivors electing without the crashed agent is fine",
			res:  crashSome(fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleUnknown}, []int{0, 0, -1}, 1), 2),
			exp:  "leader",
			want: nil,
		},
		{
			name: "two surviving leaders is still fatal",
			res:  crashSome(fakeResult([]sim.Role{sim.RoleLeader, sim.RoleLeader, sim.RoleUnknown}, []int{0, 1, -1}, 1), 2),
			exp:  "leader",
			want: []ViolationCode{VioMultipleLeaders, VioNoAgreement},
		},
		{
			name: "survivors naming different leaders is fatal",
			res:  crashSome(fakeResult([]sim.Role{sim.RoleDefeated, sim.RoleDefeated, sim.RoleUnknown}, []int{0, 1, -1}, 1), 2),
			exp:  "",
			want: []ViolationCode{VioNoAgreement},
		},
		{
			name: "mixed election and failure among survivors is fatal",
			res:  fakeResult([]sim.Role{sim.RoleLeader, sim.RoleUnsolvable, sim.RoleDefeated}, []int{0, -1, 0}, 1),
			exp:  "",
			want: []ViolationCode{VioNoAgreement},
		},
		{
			name: "named leader that itself reported defeat is fatal",
			res:  fakeResult([]sim.Role{sim.RoleDefeated, sim.RoleDefeated, sim.RoleDefeated}, []int{0, 0, 0}, 1),
			exp:  "",
			want: []ViolationCode{VioNoAgreement},
		},
		{
			name: "electing on an unsolvable instance is fatal even with crashes",
			res:  crashSome(fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleUnknown}, []int{0, 0, -1}, 1), 2),
			err:  nil,
			exp:  "unsolvable",
			want: []ViolationCode{VioWrongVerdict},
		},
		{
			name: "unanimous failure among survivors on unsolvable is fine",
			res:  crashSome(fakeResult([]sim.Role{sim.RoleUnsolvable, sim.RoleUnsolvable, sim.RoleUnknown}, []int{-1, -1, -1}, 1), 2),
			exp:  "unsolvable",
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CheckInvariants(tc.res, tc.err, spec(tc.exp))
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want codes %v", got, tc.want)
			}
			for i, w := range tc.want {
				if got[i].Code != w {
					t.Fatalf("violation %d: got %v, want %v (all: %v)", i, got[i].Code, w, got)
				}
			}
		})
	}
}

// TestFaultAwareNilResult: a run that produced no Result at all is still a
// run error, faults or not.
func TestFaultAwareNilResult(t *testing.T) {
	spec := InvariantSpec{FaultsInjected: true}
	vs := CheckInvariants(nil, errors.New("config rejected"), spec)
	if !hasCode(vs, VioRunError) {
		t.Fatalf("nil result not reported: %v", vs)
	}
	vs = CheckInvariants(nil, nil, spec)
	if !hasCode(vs, VioRunError) {
		t.Fatalf("nil result with nil error not reported: %v", vs)
	}
}
