package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/faults"
	rtbackend "repro/internal/runtime"
	"repro/internal/zoo"
)

// allProtoSpecs is the protocol axis "all" expansion: every zoo protocol
// plus the contract election.
func allProtoSpecs() []string {
	return append(zoo.Specs(), "dfs-election")
}

// TestProtocolAxisSimCampaign crosses a small campaign with every contract
// protocol spec on the simulator path: each run must match its own
// protocol's central oracle under the protocol's verdict mode, and the
// JSONL records must carry the spec as the protocol name.
func TestProtocolAxisSimCampaign(t *testing.T) {
	spec := Spec{
		Families:  []FamilySpec{{Family: "path", Sizes: []int{6}, Homes: [][]int{{0, 3, 5}}}},
		Seeds:     SeedRange{From: 1, To: 2},
		Protocols: allProtoSpecs(),
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := len(allProtoSpecs()) * 2
	if len(runs) != wantRuns {
		t.Fatalf("expanded %d runs, want %d", len(runs), wantRuns)
	}

	var jsonl bytes.Buffer
	rep, err := Execute(spec, Options{JSONL: &jsonl})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Runs != wantRuns {
		t.Fatalf("summary runs=%d, want %d", rep.Summary.Runs, wantRuns)
	}
	if fails := rep.Failures(); len(fails) > 0 {
		t.Fatalf("failures: %+v", fails)
	}

	seen := map[string]int{}
	dec := json.NewDecoder(&jsonl)
	for dec.More() {
		var r RunResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		if !r.OK || r.Err != "" {
			t.Fatalf("run %d %q: ok=%v outcome=%q err=%q violations=%v",
				r.Index, r.Protocol, r.OK, r.Outcome, r.Err, r.Violations)
		}
		if r.Expected == "" || r.Outcome != r.Expected {
			t.Fatalf("run %d %q: outcome %q, oracle expected %q", r.Index, r.Protocol, r.Outcome, r.Expected)
		}
		seen[r.Protocol]++
	}
	for _, ps := range allProtoSpecs() {
		if seen[ps] != 2 {
			t.Fatalf("protocol %q ran %d times, want 2 (seen=%v)", ps, seen[ps], seen)
		}
	}
}

// TestProtocolAxisBackendCampaign crosses the protocol axis with a runtime
// backend: the backend axis no longer demands -protocol quantitative when
// every run names its own contract protocol.
func TestProtocolAxisBackendCampaign(t *testing.T) {
	spec := Spec{
		Families:  []FamilySpec{{Family: "path", Sizes: []int{4}, Homes: [][]int{{0, 1}}}},
		Seeds:     SeedRange{From: 1, To: 1},
		Protocols: []string{"zoo-dp", "zoo-shades:weak", "dfs-election"},
		Backends:  []string{"transformed"},
	}
	rep, err := Execute(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fails := rep.Failures(); len(fails) > 0 {
		t.Fatalf("failures: %+v", fails)
	}
	for _, r := range rep.Results {
		if r.Backend != "transformed" || !r.OK || r.Outcome != "leader" {
			t.Fatalf("run %d %q: backend=%q ok=%v outcome=%q err=%q", r.Index, r.Protocol, r.Backend, r.OK, r.Outcome, r.Err)
		}
	}
}

// TestProtocolAxisStrategyCampaign composes the protocol axis with the
// adversary scheduling axis: contract protocols are schedule-independent,
// so the serializing scheduler must reach the same oracle-approved verdict.
func TestProtocolAxisStrategyCampaign(t *testing.T) {
	spec := Spec{
		Families:   []FamilySpec{{Family: "star", Sizes: []int{4}, Homes: [][]int{{1, 2}}}},
		Seeds:      SeedRange{From: 1, To: 2},
		Protocols:  []string{"zoo-dp", "zoo-uso", "zoo-shades:selection"},
		Strategies: []string{"round-robin", "random"},
	}
	rep, err := Execute(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fails := rep.Failures(); len(fails) > 0 {
		t.Fatalf("failures: %+v", fails)
	}
	if want := 3 * 2 * 2; rep.Summary.Runs != want {
		t.Fatalf("summary runs=%d, want %d", rep.Summary.Runs, want)
	}
}

// TestProtocolAxisValidation keeps bad protocol-axis campaigns at expansion
// time.
func TestProtocolAxisValidation(t *testing.T) {
	base := Spec{
		Families: []FamilySpec{{Family: "cycle", Sizes: []int{6}}},
		Seeds:    SeedRange{From: 1, To: 1},
	}

	unknown := base
	unknown.Protocols = []string{"zoo-nope"}
	if _, err := unknown.Expand(); err == nil || !strings.Contains(err.Error(), "unknown protocol spec") {
		t.Fatalf("unknown protocol spec: err=%v", err)
	}

	badArgs := base
	badArgs.Protocols = []string{"zoo-shades:fuchsia"}
	if _, err := badArgs.Expand(); err == nil {
		t.Fatal("bad protocol args should fail expansion")
	}

	// The backend axis still rejects the scheduler axes even with protocols.
	mixed := base
	mixed.Protocols = []string{"zoo-dp"}
	mixed.Backends = []string{"transformed"}
	mixed.Strategies = []string{"round-robin"}
	if _, err := mixed.Expand(); err == nil {
		t.Fatal("backend axis combined with strategies should fail even with a protocol axis")
	}

	// Without protocols the backend axis still demands the quantitative kind.
	classic := base
	classic.Backends = []string{"transformed"}
	if _, err := classic.Expand(); err == nil || !strings.Contains(err.Error(), "quantitative") {
		t.Fatalf("backend axis without protocols: err=%v", err)
	}
}

// TestParseAxis is the table-driven contract of the shared axis parser
// behind ParseStrategies, ParseFaults, ParseBackends and ParseProtocols:
// empty means no axis, "all" expands the axis's full list, tokens are
// validated, duplicates collapse.
func TestParseAxis(t *testing.T) {
	cases := []struct {
		name    string
		parse   func(string) ([]string, error)
		in      string
		want    []string
		wantErr bool
	}{
		{"strategies/empty", ParseStrategies, "", nil, false},
		{"strategies/all", ParseStrategies, "all", adversary.Strategies(), false},
		{"strategies/pair", ParseStrategies, "round-robin, random", []string{"round-robin", "random"}, false},
		{"strategies/dup", ParseStrategies, "round-robin,round-robin,random", []string{"round-robin", "random"}, false},
		{"strategies/unknown", ParseStrategies, "round-robin,nope", nil, true},
		{"faults/empty", ParseFaults, "", nil, false},
		{"faults/all", ParseFaults, "all", faults.Strategies(), false},
		{"faults/unknown", ParseFaults, "crash,teleport", nil, true},
		{"backends/empty", ParseBackends, "", nil, false},
		{"backends/all", ParseBackends, "all", rtbackend.Backends(), false},
		{"backends/pair", ParseBackends, "goroutine, networked", []string{"goroutine", "networked"}, false},
		{"backends/unknown", ParseBackends, "goroutine,carrier-pigeon", nil, true},
		{"protocols/empty", ParseProtocols, "", nil, false},
		{"protocols/all", ParseProtocols, "all", allProtoSpecs(), false},
		{"protocols/pair", ParseProtocols, "zoo-dp, dfs-election", []string{"zoo-dp", "dfs-election"}, false},
		{"protocols/all-dedups", ParseProtocols, "zoo-dp,all", allProtoSpecs(), false},
		{"protocols/unknown", ParseProtocols, "zoo-dp,zoo-nope", nil, true},
		{"protocols/bad-args", ParseProtocols, "zoo-shades:mauve", nil, true},
		{"protocols/whitespace-only", ParseProtocols, " , ,", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.parse(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parse(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse(%q): %v", tc.in, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parse(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}
