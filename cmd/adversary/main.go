// Command adversary sweeps one election instance across adversarial
// scheduling strategies and seeds, checking the protocol invariants of
// Theorem 3.1 after every run: at most one leader, all agents agree on the
// leader or unanimously report failure, verdict equal to the independently
// computed gcd of the class sizes, and moves within the O(r·|E|) envelope.
//
// Usage:
//
//	adversary -graph cycle -n 12 -homes 0,4,8 \
//	          [-strategies all|name,name,...] [-seeds 1..8] [-wake-all] \
//	          [-bound 40] [-run-timeout 60s] [-workers N] \
//	          [-report report.json] [-save dir] [-q]
//
// Every run executes under the deterministic serializing scheduler, so each
// run's decision log pins its execution down exactly. The command exits
// nonzero if any run violates an invariant; with -save each violating run's
// schedule is written as a self-contained replay file that cmd/elect
// -replay re-executes bit-for-bit (add -timeline there to inspect the
// violating execution in Perfetto).
//
// Graph families and the -homes syntax match cmd/elect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/campaign"
)

func main() {
	family := flag.String("graph", "cycle", "graph family: path, cycle, complete, star, hypercube, torus, grid, petersen, wheel, prism, ccc, random")
	n := flag.Int("n", 6, "size parameter (nodes, or dimension for hypercube/ccc, or side for torus/grid)")
	homesArg := flag.String("homes", "0", "comma-separated home-base nodes")
	strategiesArg := flag.String("strategies", "all", "comma-separated strategy names, or \"all\": "+strings.Join(adversary.Strategies(), ", "))
	seedsArg := flag.String("seeds", "1..4", "inclusive seed range a..b (or a single seed) per strategy")
	wakeAll := flag.Bool("wake-all", false, "wake all agents at start (default: a seed-driven random nonempty subset)")
	bound := flag.Float64("bound", 40, "Theorem 3.1 ratio bound c: flag runs with moves > c·r·|E|")
	runTimeout := flag.Duration("run-timeout", 60*time.Second, "per-run watchdog timeout")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	reportPath := flag.String("report", "", "write the full sweep report as JSON to this file")
	saveDir := flag.String("save", "", "write each violating run's schedule as a replay file into this directory")
	keep := flag.Bool("keep-schedules", false, "retain every run's decision log in the report (default: violating runs only)")
	quiet := flag.Bool("q", false, "suppress the per-violation listing (summary only)")
	flag.Parse()

	g, err := campaign.BuildGraph(*family, *n)
	if err != nil {
		fail(err)
	}
	homes, err := parseHomes(*homesArg)
	if err != nil {
		fail(err)
	}
	strategies, err := campaign.ParseStrategies(*strategiesArg)
	if err != nil {
		fail(err)
	}
	seedRange, err := campaign.ParseSeedRange(*seedsArg)
	if err != nil {
		fail(err)
	}
	var seeds []int64
	for s := seedRange.From; s <= seedRange.To; s++ {
		seeds = append(seeds, s)
	}

	rep, err := adversary.Explore(adversary.Config{
		Instance:      fmt.Sprintf("%s%d%v", *family, *n, homes),
		G:             g,
		Homes:         homes,
		Strategies:    strategies,
		Seeds:         seeds,
		WakeAll:       *wakeAll,
		RatioBound:    *bound,
		Timeout:       *runTimeout,
		Workers:       *workers,
		KeepSchedules: *keep,
	})
	if err != nil {
		fail(err)
	}
	if *quiet {
		fmt.Printf("adversary: %s, %d runs, %d violating (%d deadlocks)\n",
			rep.Instance, len(rep.Runs), rep.Violating, rep.Deadlocks)
	} else {
		fmt.Print(rep.Render())
	}

	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*reportPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}

	if *saveDir != "" && rep.Violating > 0 {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			fail(err)
		}
		for _, run := range rep.Violations() {
			sf := &adversary.ScheduleFile{
				Family: *family, Size: *n, Homes: homes,
				Seed: run.Seed, Protocol: "elect", WakeAll: *wakeAll,
				Strategy: run.Strategy,
				Schedule: run.Schedule,
			}
			name := fmt.Sprintf("violation-%s-seed%d.json", run.Strategy, run.Seed)
			path := filepath.Join(*saveDir, name)
			if err := sf.WriteFile(path); err != nil {
				fail(err)
			}
			fmt.Printf("violating schedule written to %s (replay: elect -replay %s)\n", path, path)
		}
	}

	if rep.Violating > 0 {
		os.Exit(1)
	}
}

func parseHomes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad home %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "adversary:", err)
	os.Exit(1)
}
