// Package iso implements isomorphism machinery for vertex-colored directed
// multigraphs: equitable partition refinement, canonical labeling by
// refinement-guided backtracking (a miniature nauty), isomorphism testing,
// and automorphism-group generators and orbits.
//
// This is the engine behind the paper's Lemma 3.1 (a deterministic total
// order on bi-colored digraphs via a canonical word) and Definition 2.1
// (node equivalence via color-preserving automorphisms). The paper defines
// its canonical word as the minimum of w(π(M)) over all n! permutations π;
// computing that exact minimum is factorial in the worst case, so Canonical
// instead minimizes over the refinement-consistent orderings explored by a
// nauty-style backtracking search. The result is still a canonical form —
// equal words exactly characterize color-isomorphism — and hence still
// induces the deterministic total order on isomorphism classes that
// Lemma 3.1 requires (the protocol only needs all agents to agree on one
// such order, as DESIGN.md §5 and §6 record). BruteCanonicalWord retains
// the paper's exact min-word definition as a small-instance oracle.
package iso

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/perm"
)

// Colored is a vertex-colored directed multigraph given by an adjacency
// multiplicity matrix. Undirected graphs are represented symmetrically
// (a loop contributes 2 to its diagonal entry, matching
// graph.AdjacencyMatrix). Colors are small non-negative integers whose
// values are meaningful across graphs (e.g. 0 = white, 1 = black/home-base):
// two Colored values are isomorphic only under color-preserving bijections.
type Colored struct {
	N     int
	Color []int
	Adj   [][]int // Adj[u][v] = number of arcs u -> v
}

// FromGraph builds the symmetric Colored form of an undirected multigraph.
// colors may be nil (all vertices colored 0) or have length g.N().
func FromGraph(g *graph.Graph, colors []int) *Colored {
	n := g.N()
	c := &Colored{N: n, Color: make([]int, n), Adj: g.AdjacencyMatrix()}
	if colors != nil {
		if len(colors) != n {
			panic("iso: color slice length mismatch")
		}
		copy(c.Color, colors)
	}
	return c
}

// NewDigraph builds a Colored digraph on n vertices from arc list (u, v)
// pairs; parallel arcs accumulate multiplicity. colors may be nil.
func NewDigraph(n int, arcs [][2]int, colors []int) *Colored {
	c := &Colored{N: n, Color: make([]int, n), Adj: make([][]int, n)}
	for i := range c.Adj {
		c.Adj[i] = make([]int, n)
	}
	for _, a := range arcs {
		c.Adj[a[0]][a[1]]++
	}
	if colors != nil {
		if len(colors) != n {
			panic("iso: color slice length mismatch")
		}
		copy(c.Color, colors)
	}
	return c
}

// Clone returns a deep copy.
func (c *Colored) Clone() *Colored {
	d := &Colored{N: c.N, Color: append([]int(nil), c.Color...), Adj: make([][]int, c.N)}
	for i := range d.Adj {
		d.Adj[i] = append([]int(nil), c.Adj[i]...)
	}
	return d
}

// Permuted returns the graph with vertex v renamed p[v].
func (c *Colored) Permuted(p perm.Perm) *Colored {
	d := &Colored{N: c.N, Color: make([]int, c.N), Adj: make([][]int, c.N)}
	for i := range d.Adj {
		d.Adj[i] = make([]int, c.N)
	}
	for v := 0; v < c.N; v++ {
		d.Color[p[v]] = c.Color[v]
		for w := 0; w < c.N; w++ {
			d.Adj[p[v]][p[w]] = c.Adj[v][w]
		}
	}
	return d
}

// word serializes the graph relabeled by p (vertex v goes to position p[v])
// as the byte string: colors in position order, then adjacency rows in
// position order. Two Colored values have equal words for some relabelings
// iff they are isomorphic.
func (c *Colored) word(p perm.Perm) []byte {
	n := c.N
	inv := p.Inverse() // inv[pos] = original vertex at pos
	out := make([]byte, 0, n+n*n)
	for pos := 0; pos < n; pos++ {
		out = append(out, byte(c.Color[inv[pos]]))
	}
	for i := 0; i < n; i++ {
		vi := inv[i]
		for j := 0; j < n; j++ {
			out = append(out, byte(c.Adj[vi][inv[j]]))
		}
	}
	return out
}

// IsAutomorphism reports whether p is a color-preserving automorphism of c.
func (c *Colored) IsAutomorphism(p perm.Perm) bool {
	if len(p) != c.N {
		return false
	}
	for v := 0; v < c.N; v++ {
		if c.Color[p[v]] != c.Color[v] {
			return false
		}
		for w := 0; w < c.N; w++ {
			if c.Adj[p[v]][p[w]] != c.Adj[v][w] {
				return false
			}
		}
	}
	return true
}

// partition is an ordered partition of the vertex set into cells.
type partition struct {
	cells [][]int
}

func (p *partition) clone() *partition {
	q := &partition{cells: make([][]int, len(p.cells))}
	for i, c := range p.cells {
		q.cells[i] = append([]int(nil), c...)
	}
	return q
}

func (p *partition) discrete() bool {
	for _, c := range p.cells {
		if len(c) > 1 {
			return false
		}
	}
	return true
}

// initialPartition groups vertices by color, cells ordered by color value.
func initialPartition(c *Colored) *partition {
	byColor := make(map[int][]int)
	var colors []int
	for v := 0; v < c.N; v++ {
		if _, ok := byColor[c.Color[v]]; !ok {
			colors = append(colors, c.Color[v])
		}
		byColor[c.Color[v]] = append(byColor[c.Color[v]], v)
	}
	sort.Ints(colors)
	p := &partition{}
	for _, col := range colors {
		p.cells = append(p.cells, byColor[col])
	}
	return p
}

// refine performs equitable refinement: repeatedly split cells by the
// vector, over all current cells, of (out-multiplicity into the cell,
// in-multiplicity from the cell). Subcell order is determined by the
// signature vectors, so the refined partition is isomorphism-invariant.
func refine(c *Colored, p *partition) *partition {
	cur := p.clone()
	for {
		// Compute, for each vertex, its signature relative to cur.
		sig := make(map[int]string, c.N)
		var buf bytes.Buffer
		for _, cell := range cur.cells {
			for _, v := range cell {
				buf.Reset()
				for _, other := range cur.cells {
					out, in := 0, 0
					for _, u := range other {
						out += c.Adj[v][u]
						in += c.Adj[u][v]
					}
					fmt.Fprintf(&buf, "%d,%d;", out, in)
				}
				sig[v] = buf.String()
			}
		}
		next := &partition{}
		split := false
		for _, cell := range cur.cells {
			groups := make(map[string][]int)
			var keys []string
			for _, v := range cell {
				s := sig[v]
				if _, ok := groups[s]; !ok {
					keys = append(keys, s)
				}
				groups[s] = append(groups[s], v)
			}
			if len(keys) > 1 {
				split = true
			}
			sort.Strings(keys)
			for _, k := range keys {
				next.cells = append(next.cells, groups[k])
			}
		}
		cur = next
		if !split {
			return cur
		}
	}
}

// individualize returns the partition with v pulled out of its cell as a
// preceding singleton.
func individualize(p *partition, v int) *partition {
	q := &partition{}
	for _, cell := range p.cells {
		idx := -1
		for i, u := range cell {
			if u == v {
				idx = i
				break
			}
		}
		if idx < 0 {
			q.cells = append(q.cells, append([]int(nil), cell...))
			continue
		}
		q.cells = append(q.cells, []int{v})
		rest := make([]int, 0, len(cell)-1)
		rest = append(rest, cell[:idx]...)
		rest = append(rest, cell[idx+1:]...)
		if len(rest) > 0 {
			q.cells = append(q.cells, rest)
		}
	}
	return q
}

// permFromDiscrete converts a discrete partition to the permutation sending
// each vertex to its cell position.
func permFromDiscrete(p *partition, n int) perm.Perm {
	out := make(perm.Perm, n)
	for pos, cell := range p.cells {
		out[cell[0]] = pos
	}
	return out
}

// Result is the outcome of a canonical labeling computation.
type Result struct {
	// Perm maps each original vertex to its canonical position.
	Perm perm.Perm
	// Word is the canonical byte string: two Colored values are
	// color-isomorphic iff their Words are equal.
	Word []byte
	// AutoGens generates the color-preserving automorphism group
	// (it may be empty for rigid graphs; the identity is never included).
	AutoGens []perm.Perm
}

type canonState struct {
	c     *Colored
	best  []byte
	bperm perm.Perm
	autos []perm.Perm
	// base is the stack of individualized vertices on the current path.
	base []int
	// leafCount guards against pathological blowup.
	leaves int
}

// Canonical computes a canonical form of c: the minimum serialized word
// over the refinement-consistent vertex orderings explored by the search.
// Words are equal iff the graphs are color-isomorphic, which is the property
// Lemma 3.1's total order needs (see the package comment).
func Canonical(c *Colored) *Result {
	if c.N == 0 {
		return &Result{Perm: perm.Perm{}, Word: []byte{}}
	}
	st := &canonState{c: c}
	st.search(refine(c, initialPartition(c)))
	return &Result{Perm: st.bperm, Word: st.best, AutoGens: st.autos}
}

func (st *canonState) search(p *partition) {
	if p.discrete() {
		st.leaves++
		cand := permFromDiscrete(p, st.c.N)
		w := st.c.word(cand)
		switch {
		case st.best == nil || bytes.Compare(w, st.best) < 0:
			st.best = w
			st.bperm = cand
		case bytes.Equal(w, st.best):
			// cand and bperm induce the same canonical graph, so
			// bperm⁻¹∘cand is an automorphism of c.
			a := cand.Compose(st.bperm.Inverse())
			if !a.IsIdentity() && st.c.IsAutomorphism(a) {
				st.autos = append(st.autos, a)
			}
		}
		return
	}
	// Branch on the first smallest non-singleton cell.
	target := -1
	for i, cell := range p.cells {
		if len(cell) > 1 {
			if target == -1 || len(cell) < len(p.cells[target]) {
				target = i
			}
		}
	}
	cell := p.cells[target]

	// Orbit pruning: among the automorphisms discovered so far, keep the
	// ones fixing every vertex of the current base pointwise; two cell
	// vertices in the same orbit of that stabilizer lead to identical
	// subtrees, so explore one representative per orbit.
	tried := make([]int, 0, len(cell))
	for _, v := range cell {
		if st.inStabOrbitOfTried(v, tried) {
			continue
		}
		tried = append(tried, v)
		st.base = append(st.base, v)
		st.search(refine(st.c, individualize(p, v)))
		st.base = st.base[:len(st.base)-1]
	}
}

// inStabOrbitOfTried reports whether some already-tried vertex maps to v
// under the subgroup of discovered automorphisms that fix the current base.
func (st *canonState) inStabOrbitOfTried(v int, tried []int) bool {
	if len(tried) == 0 || len(st.autos) == 0 {
		return false
	}
	var stab []perm.Perm
	for _, a := range st.autos {
		ok := true
		for _, b := range st.base {
			if a[b] != b {
				ok = false
				break
			}
		}
		if ok {
			stab = append(stab, a)
		}
	}
	if len(stab) == 0 {
		return false
	}
	// BFS the orbit of v under stab (and inverses).
	seen := map[int]bool{v: true}
	queue := []int{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, t := range tried {
			if x == t {
				return true
			}
		}
		for _, a := range stab {
			for _, y := range []int{a[x], a.Inverse()[x]} {
				if !seen[y] {
					seen[y] = true
					queue = append(queue, y)
				}
			}
		}
	}
	return false
}

// CanonicalWord is a convenience wrapper returning only the canonical word.
func CanonicalWord(c *Colored) []byte { return Canonical(c).Word }

// Isomorphic reports whether a and b are color-isomorphic.
func Isomorphic(a, b *Colored) bool {
	if a.N != b.N {
		return false
	}
	return bytes.Equal(CanonicalWord(a), CanonicalWord(b))
}

// IsomorphismBetween returns a color-preserving isomorphism a→b (as the
// permutation sending vertex v of a to IsomorphismBetween(a,b)[v] of b),
// or nil if none exists.
func IsomorphismBetween(a, b *Colored) perm.Perm {
	if a.N != b.N {
		return nil
	}
	ra, rb := Canonical(a), Canonical(b)
	if !bytes.Equal(ra.Word, rb.Word) {
		return nil
	}
	// v --ra--> canonical pos --rb⁻¹--> vertex of b.
	return ra.Perm.Compose(rb.Perm.Inverse())
}

// AutomorphismGens returns generators of the color-preserving automorphism
// group of c, never including the identity. For rigid graphs the slice is
// empty. The generators come from the canonical search plus, to make orbit
// computations complete, one extra canonical run per vertex orbit candidate
// is avoided by the theory: orbits of the generated group already equal the
// true automorphism orbits because the search visits every minimal leaf.
func AutomorphismGens(c *Colored) []perm.Perm {
	return automorphismGensComplete(c)
}

// automorphismGensComplete computes generators whose generated group has the
// true automorphism orbits. The canonical-search generators alone are not
// guaranteed complete (orbit pruning can suppress leaves), so we verify and
// repair by the transporter method: vertices u, v are in the same orbit iff
// the graphs with u (resp. v) individualized are isomorphic, and the
// transporter isomorphism is an automorphism mapping u to v.
func automorphismGensComplete(c *Colored) []perm.Perm {
	gens := Canonical(c).AutoGens
	n := c.N
	// Union-find over current generators.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, g := range gens {
		for i, v := range g {
			union(i, v)
		}
	}
	// For every pair of distinct current roots with equal color, test
	// whether an automorphism merges them.
	for u := 0; u < n; u++ {
		if find(u) != u {
			continue
		}
		for v := u + 1; v < n; v++ {
			if find(v) == find(u) || c.Color[v] != c.Color[u] {
				continue
			}
			if a := transporter(c, u, v); a != nil {
				gens = append(gens, a)
				for i, w := range a {
					union(i, w)
				}
			}
		}
	}
	return gens
}

// transporter returns an automorphism of c mapping u to v, or nil.
func transporter(c *Colored, u, v int) perm.Perm {
	cu := c.Clone()
	cv := c.Clone()
	// Individualize by a fresh color not otherwise used.
	fresh := 0
	for _, col := range c.Color {
		if col >= fresh {
			fresh = col + 1
		}
	}
	cu.Color[u] = fresh
	cv.Color[v] = fresh
	return IsomorphismBetween(cu, cv)
}

// Orbits returns the orbits of the color-preserving automorphism group of c,
// each sorted ascending, ordered by smallest element.
func Orbits(c *Colored) [][]int {
	return perm.OrbitsOf(c.N, AutomorphismGens(c))
}

// BruteCanonicalWord computes the canonical word by trying all n!
// permutations; a correctness oracle for tests (n must be at most 8).
func BruteCanonicalWord(c *Colored) []byte {
	if c.N > 8 {
		panic("iso: BruteCanonicalWord limited to n <= 8")
	}
	var best []byte
	p := perm.Identity(c.N)
	var rec func(k int)
	rec = func(k int) {
		if k == c.N {
			w := c.word(p)
			if best == nil || bytes.Compare(w, best) < 0 {
				best = append([]byte(nil), w...)
			}
			return
		}
		for i := k; i < c.N; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	return best
}
