package sim

import (
	"sync"
	"sync/atomic"
)

// BufferedTracer decouples a slow trace sink from the simulation runtime.
// Whiteboard events are emitted under the board lock (see Event), so a
// tracer that formats and prints inline serializes every agent on I/O. The
// buffered tracer hands events to a channel instead: a drain goroutine
// calls the sink outside the lock, and when the buffer is full the event is
// counted as dropped rather than stalling the simulation.
//
// Usage:
//
//	bt := sim.NewBufferedTracer(sink, 0)
//	defer bt.Close()
//	cfg.Tracer = bt.Trace
//
// Close flushes everything still buffered, so after sim.Run + Close the
// sink has seen every non-dropped event exactly once, in emission order.
type BufferedTracer struct {
	ch      chan Event
	quit    chan struct{}
	done    chan struct{}
	closed  atomic.Bool
	dropped atomic.Int64
	once    sync.Once
}

// DefaultTraceBuffer is the buffer capacity used when NewBufferedTracer is
// given a non-positive size.
const DefaultTraceBuffer = 4096

// NewBufferedTracer starts a drain goroutine feeding sink from a channel of
// the given capacity (DefaultTraceBuffer if size <= 0). The caller must
// Close it to flush and stop the goroutine.
func NewBufferedTracer(sink Tracer, size int) *BufferedTracer {
	if size <= 0 {
		size = DefaultTraceBuffer
	}
	bt := &BufferedTracer{
		ch:   make(chan Event, size),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(bt.done)
		for {
			select {
			case e := <-bt.ch:
				sink(e)
			case <-bt.quit:
				for {
					select {
					case e := <-bt.ch:
						sink(e)
					default:
						return
					}
				}
			}
		}
	}()
	return bt
}

// Trace is the Tracer to install as Config.Tracer. It never blocks: a full
// buffer (or a closed tracer) increments the drop counter instead.
func (bt *BufferedTracer) Trace(e Event) {
	if bt.closed.Load() {
		bt.dropped.Add(1)
		return
	}
	select {
	case bt.ch <- e:
	default:
		bt.dropped.Add(1)
	}
}

// Close flushes buffered events to the sink and stops the drain goroutine.
// It is idempotent; call it after the simulation returns. Events traced
// after Close count as dropped.
func (bt *BufferedTracer) Close() {
	bt.once.Do(func() {
		bt.closed.Store(true)
		close(bt.quit)
		<-bt.done
	})
}

// Dropped reports how many events were discarded because the buffer was
// full (or the tracer closed).
func (bt *BufferedTracer) Dropped() int64 {
	return bt.dropped.Load()
}
