// Command campaign runs a multi-seed election campaign: a declarative spec
// (graph families × sizes × home placements × seed ranges × protocol) is
// expanded into a deterministic work list and executed by a bounded worker
// pool with per-run watchdog timeouts, bounded retry of aborted runs, and a
// shared analysis cache (see internal/campaign).
//
// Usage:
//
//	campaign -families "cycle:9,12,15;hypercube:3" -placement spread -r 3 \
//	         -seeds 1..25 [-protocol elect|cayley|quantitative|petersen|gather] \
//	         [-strategies all|name,name,...] [-faults all|name,name,...] \
//	         [-backends all|name,name,...] \
//	         [-workers N] [-run-timeout 60s] [-retries 2] [-max-delay 0] \
//	         [-wake-all] [-hairs] [-bound 40] \
//	         [-jsonl runs.jsonl] [-summary summary.json] [-q] \
//	         [-telemetry] [-timeline timeline.json] [-listen :8080]
//
// With -strategies every (instance, seed) additionally runs once per named
// adversary scheduling strategy (internal/adversary) under the serializing
// scheduler, with protocol invariants checked per run; violations fail the
// campaign. Use cmd/adversary for a focused sweep of one instance.
//
// With -backends every (instance, seed) runs the contract election
// (runtime.DFSElection) once per named runtime backend — goroutine,
// scheduled, transformed, networked (see internal/runtime and DESIGN.md
// §15). The backend axis requires -protocol quantitative (or a -protocols
// axis) and excludes the strategy and fault axes; per-run records carry the
// backend name. Use cmd/electnode for a focused single-instance backend run.
//
// With -protocols every run executes the named contract protocol specs from
// the runtime registry — the related-work zoo (zoo-dp,
// zoo-shades:strong|weak|selection, zoo-uso; see internal/zoo) plus
// dfs-election; "all" expands to exactly that list. Protocol-axis runs are
// judged against each protocol's own central oracle under its verdict mode
// (strong / weak / selection). They execute on the named -backends, or —
// without a backend axis — through the simulator adapter, where they
// compose with -strategies and -faults. Use cmd/zoo for the cross-protocol
// feasibility matrix.
//
// With -faults every run additionally injects a fault plan (internal/faults:
// crash-stops, torn writes, read staleness) and is checked against the
// fault-aware survivor-scoped invariants; per-run fault manifests land in
// the JSONL stream and crash percentiles in the summary. Use cmd/faults for
// a focused fault sweep of one instance.
//
// Per-run results stream to the -jsonl file as they complete; the aggregate
// summary prints to stdout and, with -summary, is written as JSON (the CI
// perf artifact BENCH_campaign.json). The command exits nonzero when any
// run errors, contradicts the gcd/Cayley oracle, or exceeds the Theorem 3.1
// move bound.
//
// Observability: -telemetry collects per-run phase counters into the
// per-run records and the summary's phase table; -timeline exports the
// worker-pool schedule as Chrome trace_event JSON for Perfetto; -listen
// serves live campaign counters as JSON at /debug/metrics, a server-sent
// metrics stream at /debug/metrics/stream, the live operator dashboard at
// /debug/live, and the standard pprof profiles under /debug/pprof/ while
// the campaign runs.
//
// Aggregation: -stream on folds per-run results into mergeable sketches
// (O(1) memory, percentiles within the documented ~3% sketch error)
// instead of buffering every RunResult; -stream auto (default) switches
// to sketches at -stream-threshold runs (default 100000); -stream off
// always buffers exactly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/prof"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	// A networked-backend coordinator may re-exec this binary as a bus
	// worker; the env check routes those children into the worker loop.
	runtime.MaybeWorker()
	families := flag.String("families", "cycle:6,9,12", "semicolon-separated family:size1,size2 specs")
	placement := flag.String("placement", "spread", "home placement strategy: spread, adjacent, antipodal, single")
	r := flag.Int("r", 2, "number of agents for the placement strategy")
	seeds := flag.String("seeds", "1..10", "inclusive seed range a..b (or a single seed)")
	strategies := flag.String("strategies", "", "comma-separated adversary scheduling strategies to cross with every run (\"all\" = every built-in; empty = free-running)")
	faultsArg := flag.String("faults", "", "comma-separated fault strategies to cross with every run (\"all\" = every built-in; implies -strategies random if none set)")
	backendsArg := flag.String("backends", "", "comma-separated runtime backends to cross with every run (\"all\" = goroutine,scheduled,transformed,networked; needs -protocol quantitative or -protocols)")
	protocolsArg := flag.String("protocols", "", "comma-separated contract protocol specs to cross with every run (\"all\" = every zoo protocol plus dfs-election; empty = the classic -protocol kind)")
	protocol := flag.String("protocol", "elect", "protocol: elect, cayley, quantitative, petersen, gather")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 60*time.Second, "per-run watchdog timeout")
	retries := flag.Int("retries", 2, "max retries of watchdog-aborted runs (reseeded); -1 disables")
	maxDelay := flag.Duration("max-delay", 0, "adversarial per-operation delay bound (0 = yields only)")
	wakeAll := flag.Bool("wake-all", false, "wake all agents at start")
	hairs := flag.Bool("hairs", false, "use the paper's hair ordering for ≺ (Lemma 3.1)")
	fallback := flag.Bool("cayley-fallback", false, "cayley protocol falls back to ELECT on non-Cayley maps")
	bound := flag.Float64("bound", 40, "Theorem 3.1 ratio bound c: fail if moves > c·r·|E|")
	jsonlPath := flag.String("jsonl", "", "write per-run JSONL records to this file")
	summaryPath := flag.String("summary", "", "write the aggregate summary JSON to this file")
	quiet := flag.Bool("q", false, "suppress the per-failure listing")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	telemetryOn := flag.Bool("telemetry", false, "collect per-run phase counters and iso search stats (implied by -timeline and -listen)")
	timelinePath := flag.String("timeline", "", "write the worker-pool timeline as Chrome trace_event JSON (open in Perfetto) to this file")
	listen := flag.String("listen", "", "serve live metrics at /debug/metrics and pprof under /debug/pprof/ on this address")
	stream := flag.String("stream", "auto", "streaming aggregation: auto (sketches at >= stream-threshold runs), on, off")
	streamThreshold := flag.Int("stream-threshold", campaign.DefaultStreamThreshold, "run count at which -stream auto switches to sketch aggregation")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintln(out, "Usage: campaign [flags]")
		fmt.Fprintln(out, "Runs a multi-seed election campaign (see internal/campaign).")
		fmt.Fprintln(out)
		flag.PrintDefaults()
		fmt.Fprintln(out, `
With -listen ADDR the campaign serves its operator endpoints while running:
  /debug/metrics         live campaign counters and gauges as JSON
  /debug/metrics/stream  server-sent events (SSE) metrics feed
  /debug/live            live operator dashboard (HTML)
  /debug/pprof/          pprof index (cmdline, profile, symbol, trace)`)
	}
	flag.Parse()

	stopProf := prof.Start(*cpuprofile, *memprofile)
	defer stopProf()

	fams, err := campaign.ParseFamilies(*families, *placement, *r)
	if err != nil {
		fail(err)
	}
	seedRange, err := campaign.ParseSeedRange(*seeds)
	if err != nil {
		fail(err)
	}
	strats, err := campaign.ParseStrategies(*strategies)
	if err != nil {
		fail(err)
	}
	faultNames, err := campaign.ParseFaults(*faultsArg)
	if err != nil {
		fail(err)
	}
	backendNames, err := campaign.ParseBackends(*backendsArg)
	if err != nil {
		fail(err)
	}
	protoSpecs, err := campaign.ParseProtocols(*protocolsArg)
	if err != nil {
		fail(err)
	}
	streamMode, err := campaign.ParseStreamMode(*stream)
	if err != nil {
		fail(err)
	}
	spec := campaign.Spec{
		Families:   fams,
		Seeds:      seedRange,
		Protocol:   campaign.ProtocolKind(*protocol),
		Strategies: strats,
		Faults:     faultNames,
		Backends:   backendNames,
		Protocols:  protoSpecs,
	}
	opt := campaign.Options{
		Workers:         *workers,
		RunTimeout:      *runTimeout,
		MaxRetries:      *retries,
		MaxDelay:        *maxDelay,
		WakeAll:         *wakeAll,
		UseHairOrdering: *hairs,
		CayleyFallback:  *fallback,
		RatioBound:      *bound,
		Telemetry:       *telemetryOn,
		Stream:          streamMode,
		StreamThreshold: *streamThreshold,
	}
	var metricsSrv *serve.HTTPServer
	if *listen != "" {
		// pprof handlers are registered explicitly so the default mux (and
		// anything else registered on it) is not exposed. The lifecycle
		// helper propagates serve errors (the bare `go http.Serve` it
		// replaces silently lost them) and shuts the listener down once the
		// campaign is done instead of leaking it until process exit.
		reg := telemetry.NewRegistry()
		opt.Metrics = reg
		mux := http.NewServeMux()
		mux.Handle("/debug/metrics", reg)
		mux.Handle("/debug/metrics/stream", reg.StreamHandler())
		mux.Handle("/debug/live", telemetry.DashboardHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		var err error
		metricsSrv, err = serve.Listen(*listen, mux, nil)
		if err != nil {
			fail(err)
		}
		metricsSrv.Start()
		fmt.Printf("serving metrics on http://%s/debug/metrics (live dashboard at /debug/live, SSE at /debug/metrics/stream, pprof under /debug/pprof/)\n", metricsSrv.Addr())
	}
	if *timelinePath != "" {
		f, err := os.Create(*timelinePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opt.Timeline = f
	}
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opt.JSONL = f
	}

	runs, err := spec.Expand()
	if err != nil {
		fail(err)
	}
	fmt.Printf("campaign: %d runs (%s, seeds %d..%d)\n",
		len(runs), *families, seedRange.From, seedRange.To)

	rep, err := campaign.ExecuteRuns(runs, opt)
	if err != nil {
		fail(err)
	}
	if metricsSrv != nil {
		// Surface a listener that died mid-campaign, then release the port.
		select {
		case serr := <-metricsSrv.Err():
			if serr != nil {
				fmt.Fprintln(os.Stderr, "campaign: metrics server:", serr)
			}
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := metricsSrv.Shutdown(ctx); err != nil {
			metricsSrv.Close() //nolint:errcheck // exiting anyway
		}
		cancel()
	}
	fmt.Print(rep.Summary.Render())
	if *timelinePath != "" {
		fmt.Printf("timeline written to %s (open in Perfetto or chrome://tracing)\n", *timelinePath)
	}

	if *summaryPath != "" {
		data, err := json.MarshalIndent(rep.Summary, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*summaryPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("summary written to %s\n", *summaryPath)
	}

	failures := rep.Failures()
	bad := len(failures) > 0 || rep.Summary.BoundViolations > 0
	if bad {
		if !*quiet {
			for _, f := range failures {
				line := fmt.Sprintf("FAIL run %d %s seed %d: outcome %s (expected %s) err=%q",
					f.Index, f.Instance, f.Seed, f.Outcome, f.Expected, f.Err)
				if f.Strategy != "" {
					line += " strategy=" + f.Strategy
				}
				for _, v := range f.Violations {
					line += fmt.Sprintf(" [%s]", v)
				}
				fmt.Fprintln(os.Stderr, line)
			}
			if rep.Summary.BoundViolations > 0 {
				fmt.Fprintf(os.Stderr, "FAIL: %d runs exceed the moves ≤ %.0f·r·|E| bound (max ratio %.1f)\n",
					rep.Summary.BoundViolations, rep.Summary.RatioBound, rep.Summary.RatioMax)
			}
		}
		stopProf() // os.Exit skips defers; flush profiles first
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
