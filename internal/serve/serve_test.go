package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/elect"
	"repro/internal/graph"
)

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(h http.Handler, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func TestHealthzAndDrainFlip(t *testing.T) {
	s := New(Config{})
	w := getPath(s, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}
	var h Health
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Fatalf("health: %+v", h)
	}
	s.StartDrain()
	if w := getPath(s, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz should answer 503, got %d", w.Code)
	}
}

func TestAnalyzeVerdicts(t *testing.T) {
	s := New(Config{})
	// C6 with antipodal homes: two classes of 3, gcd 2, unsolvable.
	w := postJSON(t, s, "/v1/analyze", InstanceSpec{Family: "cycle", Size: 6, Homes: []int{0, 3}})
	if w.Code != http.StatusOK {
		t.Fatalf("analyze: %d %s", w.Code, w.Body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.GCD != 2 || resp.Solvable {
		t.Fatalf("C6 antipodal: %+v", resp)
	}
	if !resp.Cayley {
		t.Fatalf("C6 is a Cayley graph: %+v", resp)
	}
	// Asymmetric placement breaks every color-preserving automorphism:
	// singleton classes, gcd 1, solvable.
	w = postJSON(t, s, "/v1/analyze", InstanceSpec{Family: "cycle", Size: 6, Homes: []int{0, 1, 3}})
	json.Unmarshal(w.Body.Bytes(), &resp) //nolint:errcheck
	if !resp.Solvable {
		t.Fatalf("C6 {0,1,3} should be solvable: %+v", resp)
	}
}

func TestAnalyzeExplicitEdges(t *testing.T) {
	s := New(Config{})
	// A path 0-1-2 given explicitly.
	w := postJSON(t, s, "/v1/analyze", InstanceSpec{
		N: 3, Edges: [][2]int{{0, 1}, {1, 2}}, Homes: []int{0, 2},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("explicit analyze: %d %s", w.Code, w.Body)
	}
	var resp AnalyzeResponse
	json.Unmarshal(w.Body.Bytes(), &resp) //nolint:errcheck
	if resp.N != 3 || resp.M != 2 || resp.GCD != 1 {
		t.Fatalf("path3 endpoints: %+v", resp)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		body any
	}{
		{"no homes", InstanceSpec{Family: "cycle", Size: 6}},
		{"unknown family", InstanceSpec{Family: "klein-bottle", Size: 4, Homes: []int{0}}},
		{"home out of range", InstanceSpec{Family: "cycle", Size: 6, Homes: []int{9}}},
		{"family and edges", InstanceSpec{Family: "cycle", Size: 3, N: 3, Edges: [][2]int{{0, 1}}, Homes: []int{0}}},
		{"disconnected", InstanceSpec{N: 4, Edges: [][2]int{{0, 1}, {2, 3}}, Homes: []int{0}}},
		{"self loop", InstanceSpec{N: 2, Edges: [][2]int{{0, 0}, {0, 1}}, Homes: []int{0}}},
		{"edge out of range", InstanceSpec{N: 2, Edges: [][2]int{{0, 5}}, Homes: []int{0}}},
	}
	for _, tc := range cases {
		if w := postJSON(t, s, "/v1/analyze", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (%s)", tc.name, w.Code, w.Body)
		}
	}
	// Malformed JSON and unknown fields are 400 too.
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"family": `))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: got %d", w.Code)
	}
	req = httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"familee":"cycle"}`))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown field: got %d", w.Code)
	}
}

// TestAnalyzeCoalescing is the acceptance-critical test: N concurrent
// requests for isomorphic (renumbered!) instances trigger exactly one
// analysis. The injected analyze function gates until every request has
// either started the computation or joined it.
func TestAnalyzeCoalescing(t *testing.T) {
	const n = 12
	var calls atomic.Int64
	gate := make(chan struct{})
	s := New(Config{
		Workers: n, // every request gets a slot; coalescing, not the pool, must serialize
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			calls.Add(1)
			<-gate
			return &elect.Analysis{Sizes: []int{1, 1}, GCD: 1}, nil
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Renumbered copies of (C8, homes {0,4}): rotate the cycle by k and
	// carry the homes along. Structurally different JSON, one canonical key.
	bodies := make([][]byte, n)
	for k := 0; k < n; k++ {
		rot := k % 8
		edges := make([][2]int, 8)
		for i := 0; i < 8; i++ {
			edges[i] = [2]int{(i + rot) % 8, (i + 1 + rot) % 8}
		}
		body, _ := json.Marshal(InstanceSpec{
			N: 8, Edges: edges, Homes: []int{rot % 8, (4 + rot) % 8},
		})
		bodies[k] = body
	}

	var wg sync.WaitGroup
	codes := make([]int, n)
	cached := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(bodies[i]))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var ar AnalyzeResponse
			json.NewDecoder(resp.Body).Decode(&ar) //nolint:errcheck
			cached[i] = ar.Cached
		}(i)
	}
	// Wait until all requests are inside the cache (1 computing, n-1
	// coalesced), then release the single computation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Cache().Stats()
		if st.Misses+st.Coalesced >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %+v (calls=%d)", st, calls.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent isomorphic requests ran %d analyses, want exactly 1", n, got)
	}
	nCached := 0
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if cached[i] {
			nCached++
		}
	}
	if nCached != n-1 {
		t.Fatalf("%d of %d responses marked cached, want %d", nCached, n, n-1)
	}
}

func TestElectRunAndArtifact(t *testing.T) {
	s := New(Config{})
	w := postJSON(t, s, "/v1/elect", ElectRequest{
		InstanceSpec: InstanceSpec{Family: "path", Size: 5, Homes: []int{0, 1}},
		Seed:         7,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("elect: %d %s", w.Code, w.Body)
	}
	var resp ElectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Outcome != "leader" || !resp.Result.OK {
		t.Fatalf("path5 solvable run: %+v", resp.Result)
	}
	if resp.Result.GCD != 1 || resp.Result.Expected != "leader" {
		t.Fatalf("oracle fields missing from manifest: %+v", resp.Result)
	}
	// The replay artifact is downloadable and pins the request.
	aw := getPath(s, resp.ArtifactURL)
	if aw.Code != http.StatusOK {
		t.Fatalf("artifact: %d %s", aw.Code, aw.Body)
	}
	var art Artifact
	if err := json.Unmarshal(aw.Body.Bytes(), &art); err != nil {
		t.Fatal(err)
	}
	if art.Request.Seed != 7 || art.Result.Outcome != "leader" {
		t.Fatalf("artifact bundle: %+v", art)
	}
	if w := getPath(s, "/v1/artifacts/run-99999999"); w.Code != http.StatusNotFound {
		t.Fatalf("missing artifact: %d", w.Code)
	}
}

func TestElectWithStrategyAndFault(t *testing.T) {
	s := New(Config{})
	w := postJSON(t, s, "/v1/elect", ElectRequest{
		InstanceSpec: InstanceSpec{Family: "star", Size: 4, Homes: []int{1, 2}},
		Seed:         3,
		Strategy:     "round-robin",
		Fault:        "crash-frontrunner",
	})
	if w.Code != http.StatusOK {
		t.Fatalf("fault elect: %d %s", w.Code, w.Body)
	}
	var resp ElectResponse
	json.Unmarshal(w.Body.Bytes(), &resp) //nolint:errcheck
	if resp.Result.Fault != "crash-frontrunner" || resp.Result.Strategy != "round-robin" {
		t.Fatalf("axes not recorded: %+v", resp.Result)
	}
	if !resp.Result.OK {
		t.Fatalf("fault run violated survivor invariants: %+v", resp.Result)
	}
	// Unknown protocol: 400, not a crash.
	w = postJSON(t, s, "/v1/elect", ElectRequest{
		InstanceSpec: InstanceSpec{Family: "cycle", Size: 6, Homes: []int{0}},
		Protocol:     "raft",
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown protocol: %d %s", w.Code, w.Body)
	}
}

// TestCampaignStreamRoundTrip drives a small campaign through the chunked
// JSONL endpoint and re-assembles runs + summary on the client side.
func TestCampaignStreamRoundTrip(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := CampaignRequest{
		Families: []FamilyWire{
			{Family: "cycle", Sizes: []int{6, 9}, Placement: "adjacent", R: 2},
		},
		SeedFrom: 1, SeedTo: 5,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type %q", ct)
	}

	var runs []campaign.RunResult
	var summary *campaign.Summary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line CampaignLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Run != nil:
			if summary != nil {
				t.Fatal("run line after the summary trailer")
			}
			runs = append(runs, *line.Run)
		case line.Summary != nil:
			summary = line.Summary
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 2 instances × 5 seeds = 10 runs, then the summary.
	if len(runs) != 10 {
		t.Fatalf("streamed %d runs, want 10", len(runs))
	}
	if summary == nil || summary.Runs != 10 {
		t.Fatalf("summary: %+v", summary)
	}
	seen := map[int]bool{}
	for _, r := range runs {
		if !r.OK || r.Outcome != r.Expected {
			t.Fatalf("run contradicts the oracle: %+v", r)
		}
		seen[r.Index] = true
	}
	if len(seen) != 10 {
		t.Fatalf("indices not unique: %v", seen)
	}
	// The second campaign over the same instances is all cache hits.
	resp2, err := http.Post(ts.URL+"/v1/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	var summary2 *campaign.Summary
	for sc2.Scan() {
		var line CampaignLine
		json.Unmarshal(sc2.Bytes(), &line) //nolint:errcheck
		if line.Summary != nil {
			summary2 = line.Summary
		}
	}
	if summary2 == nil || summary2.CacheMisses != 0 || summary2.CacheHits != 10 {
		t.Fatalf("second campaign should be served from the shared cache: %+v", summary2)
	}
}

func TestCampaignValidation(t *testing.T) {
	s := New(Config{MaxCampaignRuns: 5})
	w := postJSON(t, s, "/v1/campaign", CampaignRequest{
		Families: []FamilyWire{{Family: "cycle", Sizes: []int{6}, Placement: "spread", R: 2}},
		SeedFrom: 1, SeedTo: 100,
	})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized campaign: %d %s", w.Code, w.Body)
	}
	w = postJSON(t, s, "/v1/campaign", CampaignRequest{
		Families: []FamilyWire{{Family: "nope", Sizes: []int{6}}},
		SeedFrom: 1, SeedTo: 2,
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad family: %d %s", w.Code, w.Body)
	}
}

// TestPoolSheds: with one slot held by a gated analysis, a second request
// for a different instance is shed with 503 + Retry-After after the queue
// timeout.
func TestPoolSheds(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s := New(Config{
		Workers:      1,
		QueueTimeout: 30 * time.Millisecond,
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			started <- struct{}{}
			<-gate
			return &elect.Analysis{GCD: 1}, nil
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(gate)

	go func() {
		body, _ := json.Marshal(InstanceSpec{Family: "cycle", Size: 6, Homes: []int{0}})
		http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body)) //nolint:errcheck
	}()
	<-started // the slot is now held inside the analysis

	body, _ := json.Marshal(InstanceSpec{Family: "cycle", Size: 9, Homes: []int{0}})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 should carry Retry-After")
	}
	if s.Metrics().Counter("serve_shed_total").Value() == 0 {
		t.Fatal("shed not counted")
	}
}

// TestRequestDeadline: an analysis slower than the request timeout
// returns 504 without wedging the server.
func TestRequestDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := New(Config{
		RequestTimeout: 50 * time.Millisecond,
		Analyze: func(ctx context.Context, g *graph.Graph, homes []int) (*elect.Analysis, error) {
			<-gate
			return &elect.Analysis{GCD: 1}, nil
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body, _ := json.Marshal(InstanceSpec{Family: "cycle", Size: 6, Homes: []int{0}})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow analysis: %d, want 504", resp.StatusCode)
	}
}

// TestDrainCancelsRuns: a drain whose grace expires aborts in-flight work
// through the run-context hammer and still terminates cleanly.
func TestDrainCancelsRuns(t *testing.T) {
	s := New(Config{
		RequestTimeout:  time.Minute,
		CampaignTimeout: time.Minute,
		RunTimeout:      time.Minute,
	})
	hs, err := Listen("127.0.0.1:0", s, nil)
	if err != nil {
		t.Fatal(err)
	}
	hs.Start()

	// A campaign of watchdog-proof runs: gcd 3 spread placement on C9 is
	// quick, so use many seeds to keep it busy; drain hits mid-flight.
	req := CampaignRequest{
		Families: []FamilyWire{{Family: "cycle", Sizes: []int{24}, Placement: "spread", R: 3}},
		SeedFrom: 1, SeedTo: 400,
	}
	body, _ := json.Marshal(req)
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+hs.Addr()+"/v1/campaign", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		done <- sc.Err()
	}()

	// Wait until the campaign is actually executing.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Counter("campaign_runs_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	if err := Drain(hs, s, 50*time.Millisecond, 10*time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client never saw the stream end")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	postJSON(t, s, "/v1/analyze", InstanceSpec{Family: "cycle", Size: 6, Homes: []int{0, 3}})
	w := getPath(s, "/debug/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve_analyze_total"] != 1 {
		t.Fatalf("analyze counter: %+v", snap.Counters)
	}
	if snap.Gauges["serve_cache_misses"] != 1 {
		t.Fatalf("cache gauges not published: %+v", snap.Gauges)
	}
}

func TestInstanceSpecNames(t *testing.T) {
	g, name, err := InstanceSpec{Family: "cycle", Size: 6, Homes: []int{0, 3}}.Build()
	if err != nil || g.N() != 6 {
		t.Fatalf("build: %v", err)
	}
	if name != fmt.Sprintf("cycle6%v", []int{0, 3}) {
		t.Fatalf("name %q", name)
	}
}
