package view

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestQuotientOrientedCycleCollapsesToPoint(t *testing.T) {
	// All nodes of the oriented cycle share one view: the quotient is a
	// single node with a 1/2 arc and a 2/1 arc to itself, fold degree n.
	for _, n := range []int{4, 7} {
		q, err := BuildQuotient(graph.Cycle(n), orientedCycleLabeling(n), nil)
		if err != nil {
			t.Fatal(err)
		}
		if q.NodeCount() != 1 {
			t.Fatalf("C%d oriented: quotient has %d nodes, want 1", n, q.NodeCount())
		}
		if q.FoldDegree() != n {
			t.Fatalf("C%d: fold degree %d, want %d", n, q.FoldDegree(), n)
		}
		if len(q.Arcs[0]) != 2 || q.Arcs[0][0].To != 0 || q.Arcs[0][1].To != 0 {
			t.Fatalf("C%d: quotient arcs %v", n, q.Arcs[0])
		}
		if err := q.WellDefined(graph.Cycle(n), orientedCycleLabeling(n)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuotientRigidGraphIsIdentity(t *testing.T) {
	// A rigid labeled graph (one black node on an oriented cycle) has all
	// singleton classes: the quotient is the graph itself, fold degree 1.
	n := 6
	colors := make([]int, n)
	colors[0] = 1
	q, err := BuildQuotient(graph.Cycle(n), orientedCycleLabeling(n), colors)
	if err != nil {
		t.Fatal(err)
	}
	if q.NodeCount() != n || q.FoldDegree() != 1 {
		t.Fatalf("quotient nodes %d fold %d, want %d and 1", q.NodeCount(), q.FoldDegree(), n)
	}
}

func TestQuotientWellDefinedOnRandomInputs(t *testing.T) {
	// The fibration property must hold for arbitrary labelings of arbitrary
	// graphs — this is the executable core of the view theory.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		g := graph.RandomConnected(n, rng.Intn(6), rng.Int63())
		l := graph.RandomLabeling(g, rng.Int63())
		colors := make([]int, n)
		if rng.Intn(2) == 0 {
			colors[rng.Intn(n)] = 1
		}
		q, err := BuildQuotient(g, l, colors)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.WellDefined(g, l); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// n = fold × quotient size.
		if q.FoldDegree()*q.NodeCount() != n {
			t.Fatalf("trial %d: fold %d × classes %d != n %d",
				trial, q.FoldDegree(), q.NodeCount(), n)
		}
	}
}

func TestQuotientFig2c(t *testing.T) {
	// Figure 2(c): all three nodes one class; the quotient is one node with
	// four arcs (the four ports), fold degree 3.
	g := graph.Fig2c()
	q, err := BuildQuotient(g, Fig2cLabeling(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NodeCount() != 1 || q.FoldDegree() != 3 {
		t.Fatalf("nodes %d fold %d, want 1 and 3", q.NodeCount(), q.FoldDegree())
	}
	if len(q.Arcs[0]) != 4 {
		t.Fatalf("arcs %v, want 4 of them", q.Arcs[0])
	}
	if err := q.WellDefined(g, Fig2cLabeling()); err != nil {
		t.Fatal(err)
	}
}
