package order

// Tests of the large-graph COMPUTE & ORDER path (one sparse
// canonicalization + positional keys), forced onto small instances by
// lowering LargeThreshold.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
)

// withLowThreshold runs f with LargeThreshold lowered so every test graph
// takes the large path.
func withLowThreshold(t *testing.T, f func()) {
	t.Helper()
	old := LargeThreshold
	LargeThreshold = 1
	defer func() { LargeThreshold = old }()
	f()
}

func largeFamilies() map[string]struct {
	g     *graph.Graph
	homes []int
} {
	return map[string]struct {
		g     *graph.Graph
		homes []int
	}{
		"c32":      {graph.Cycle(32), []int{0, 8, 16, 24}},
		"torus4x6": {graph.Torus(4, 6), []int{0, 12}},
		"petersen": {graph.Petersen(), []int{0}},
		"q4":       {graph.Hypercube(4), []int{0, 3}},
		"prism8":   {graph.Prism(8), []int{1, 9}},
		"wheel6":   {graph.Wheel(6), nil},
		"blowup":   {graph.BlowupCycle(4, 3), []int{0}},
	}
}

func blackColors(n int, homes []int) []int {
	out := make([]int, n)
	for _, h := range homes {
		out[h]++
	}
	return out
}

// canonPartition sorts a class list into a comparable canonical form.
func canonPartition(classes [][]int) [][]int {
	out := make([][]int, len(classes))
	for i, c := range classes {
		out[i] = append([]int(nil), c...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// TestLargePathMatchesSmallPath: the large path must produce the same class
// partition, black-class count, size multiset and GCD as the per-class
// surrounding path. (The order within a color group may differ — positional
// keys are a different ≺ — but everything Protocol ELECT consumes must
// agree.)
func TestLargePathMatchesSmallPath(t *testing.T) {
	for name, tc := range largeFamilies() {
		colors := blackColors(tc.g.N(), tc.homes)
		small := ComputeAndOrder(tc.g, colors, Direct)
		var large *Ordered
		withLowThreshold(t, func() {
			large = ComputeAndOrder(tc.g, colors, Direct)
		})
		if !reflect.DeepEqual(canonPartition(large.Classes), canonPartition(small.Classes)) {
			t.Fatalf("%s: large path computed a different class partition", name)
		}
		if large.NumBlack != small.NumBlack {
			t.Fatalf("%s: NumBlack %d != %d", name, large.NumBlack, small.NumBlack)
		}
		ls, ss := large.Sizes(), small.Sizes()
		sort.Ints(ls)
		sort.Ints(ss)
		if !reflect.DeepEqual(ls, ss) {
			t.Fatalf("%s: size multiset %v != %v", name, ls, ss)
		}
		if large.GCD() != small.GCD() {
			t.Fatalf("%s: GCD %d != %d", name, large.GCD(), small.GCD())
		}
		if large.Tied {
			t.Fatalf("%s: positional keys tied — they must be distinct per class", name)
		}
	}
}

// TestLargePathRelabelingInvariant: the class *sequence* produced by the
// large path must be invariant under relabeling — every agent computes the
// same protocol order from its own map. Class i of the relabeled graph must
// be exactly the image of class i of the original.
func TestLargePathRelabelingInvariant(t *testing.T) {
	withLowThreshold(t, func() {
		for name, tc := range largeFamilies() {
			n := tc.g.N()
			colors := blackColors(n, tc.homes)
			base := ComputeAndOrder(tc.g, colors, Direct)
			p := rand.New(rand.NewSource(int64(n))).Perm(n)
			h, err := tc.g.Relabel(p)
			if err != nil {
				t.Fatal(err)
			}
			hcolors := make([]int, n)
			for v, c := range colors {
				hcolors[p[v]] = c
			}
			got := ComputeAndOrder(h, hcolors, Direct)
			if len(got.Classes) != len(base.Classes) {
				t.Fatalf("%s: class count changed under relabeling", name)
			}
			for i := range base.Classes {
				img := make([]int, 0, len(base.Classes[i]))
				for _, v := range base.Classes[i] {
					img = append(img, p[v])
				}
				sort.Ints(img)
				want := append([]int(nil), got.Classes[i]...)
				sort.Ints(want)
				if !reflect.DeepEqual(img, want) {
					t.Fatalf("%s: class %d is not the relabeled image — order not invariant", name, i)
				}
			}
		}
	})
}

// TestComputeAndOrderCtxCancel: a pre-canceled context must surface
// context.Canceled on both the small and the large path.
func TestComputeAndOrderCtxCancel(t *testing.T) {
	g := graph.Torus(4, 6)
	colors := blackColors(24, []int{0, 12})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeAndOrderCtx(ctx, g, colors, Direct); !errors.Is(err, context.Canceled) {
		t.Fatalf("small path: got err=%v, want context.Canceled", err)
	}
	withLowThreshold(t, func() {
		if _, err := ComputeAndOrderCtx(ctx, g, colors, Direct); !errors.Is(err, context.Canceled) {
			t.Fatalf("large path: got err=%v, want context.Canceled", err)
		}
	})
}

// TestSurroundingSparseMatchesDense: SurroundingSparse must encode exactly
// the arc multiset of the dense Surrounding.
func TestSurroundingSparseMatchesDense(t *testing.T) {
	for name, tc := range largeFamilies() {
		colors := blackColors(tc.g.N(), tc.homes)
		for _, u := range []int{0, tc.g.N() / 2} {
			dense := Surrounding(tc.g, colors, u)
			sp := SurroundingSparse(tc.g, colors, u)
			for x := 0; x < dense.N; x++ {
				for y := 0; y < dense.N; y++ {
					if got := sp.OutMult(x, y); got != dense.Adj[x][y] {
						t.Fatalf("%s u=%d: mult(%d,%d) = %d, want %d", name, u, x, y, got, dense.Adj[x][y])
					}
				}
			}
		}
	}
}
