// Package prof wires the standard -cpuprofile / -memprofile flags into the
// repo's commands. Profiles feed `go tool pprof` when chasing regressions in
// the canonical engine (DESIGN.md §8) or the campaign runner.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath if it is non-empty and returns a
// stop function that must run before the heap profile is written. The stop
// function also writes an allocation-site heap profile to memPath if that is
// non-empty. Typical use:
//
//	defer prof.Start(*cpuprofile, *memprofile)()
func Start(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done { // idempotent: callers may both defer and call before os.Exit
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "prof:", err)
	os.Exit(1)
}
