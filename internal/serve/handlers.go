package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/campaign"
)

// maxBodyBytes bounds request bodies: explicit edge lists for graphs in
// the thousands of nodes fit comfortably, abusive payloads do not.
const maxBodyBytes = 8 << 20

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a failed response write has no recovery
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes the request body into v with a size bound.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// statusForRunError maps an execution error to an HTTP status: deadline
// and drain cancellations are the server's fault (or decision), the rest
// of the campaign path's errors are bad requests (unknown protocol,
// malformed strategy, invalid placement).
func statusForRunError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.started)) / float64(time.Millisecond),
		Inflight: s.inflight.Load(),
		Draining: s.draining.Load(),
	}
	status := http.StatusOK
	if h.Draining {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("serve_analyze_total").Inc()
	var req InstanceSpec
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "analyze: %v", err)
		return
	}
	g, name, err := req.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "analyze: %v", err)
		return
	}
	ctx, cancel := s.runCtx(r, s.cfg.RequestTimeout)
	defer cancel()
	if !s.acquire(ctx) {
		s.shed(w, r, "analyze")
		return
	}
	defer s.release()

	start := time.Now()
	an, cached, err := s.cache.Get(ctx, g, req.Homes)
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		writeError(w, statusForRunError(err), "analyze: %v", err)
		return
	}
	s.publishCacheStats()
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Instance: name, N: g.N(), M: g.M(), R: len(req.Homes),
		Sizes: an.Sizes, GCD: an.GCD, Solvable: an.GCD == 1,
		Cayley: an.Cayley, TranslationD: an.TranslationD,
		Thm21Checked: an.Thm21Checked, Impossible21: an.Impossible21,
		Cached:    cached,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleElect(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("serve_elect_total").Inc()
	var req ElectRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "elect: %v", err)
		return
	}
	g, name, err := req.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "elect: %v", err)
		return
	}
	proto := campaign.ProtocolKind(req.Protocol)
	if proto == "" {
		proto = campaign.ProtoElect
	}
	run := campaign.Run{
		Instance: name, G: g, Homes: req.Homes, Seed: req.Seed,
		Protocol: proto, Strategy: req.Strategy, Fault: req.Fault,
	}
	if run.Fault != "" && run.Strategy == "" {
		// Fault injection rides on the serializing scheduler, mirroring the
		// campaign spec's default.
		run.Strategy = "random"
	}
	ctx, cancel := s.runCtx(r, s.cfg.RequestTimeout)
	defer cancel()
	if !s.acquire(ctx) {
		s.shed(w, r, "elect")
		return
	}
	defer s.release()

	rep, err := campaign.ExecuteRunsContext(ctx, []campaign.Run{run}, campaign.Options{
		Workers:    1,
		RunTimeout: s.cfg.RunTimeout,
		WakeAll:    req.WakeAll,
		Cache:      s.cache,
		Metrics:    s.metrics,
	})
	if err != nil {
		writeError(w, statusForRunError(err), "elect: %v", err)
		return
	}
	s.publishCacheStats()
	res := rep.Results[0]
	id := s.artifacts.put(req, res)
	writeJSON(w, http.StatusOK, ElectResponse{
		Result:      res,
		ArtifactID:  id,
		ArtifactURL: "/v1/artifacts/" + id,
	})
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	s.metrics.Counter("serve_campaign_total").Inc()
	var req CampaignRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "campaign: %v", err)
		return
	}
	runs, err := req.Spec().Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "campaign: %v", err)
		return
	}
	if len(runs) > s.cfg.MaxCampaignRuns {
		writeError(w, http.StatusRequestEntityTooLarge,
			"campaign: spec expands to %d runs, limit %d", len(runs), s.cfg.MaxCampaignRuns)
		return
	}
	ctx, cancel := s.runCtx(r, s.cfg.CampaignTimeout)
	defer cancel()
	if !s.acquire(ctx) {
		s.shed(w, r, "campaign")
		return
	}
	defer s.release()

	// Stream: JSONL over chunked transfer, one line per completed run in
	// completion order, flushed eagerly so slow campaigns report progress,
	// then one trailing summary (or error) line.
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	stream := &lineStream{w: w}

	rep, err := campaign.ExecuteRunsContext(ctx, runs, campaign.Options{
		Workers:    s.cfg.Workers,
		RunTimeout: s.cfg.RunTimeout,
		WakeAll:    req.WakeAll,
		Cache:      s.cache,
		Metrics:    s.metrics,
		JSONL:      stream,
	})
	s.publishCacheStats()
	switch {
	case err != nil && rep == nil:
		stream.writeLine(CampaignLine{Error: err.Error()})
	case err != nil:
		// Partial campaign (drain or disconnect): the per-run lines already
		// streamed; close with the error so clients know it is incomplete.
		stream.writeLine(CampaignLine{Error: err.Error()})
	default:
		stream.writeLine(CampaignLine{Summary: &rep.Summary})
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	art, ok := s.artifacts.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "artifact %q not found (evicted or never created)", id)
		return
	}
	writeJSON(w, http.StatusOK, art)
}

// shed rejects a request the pool had no slot for within QueueTimeout.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, endpoint string) {
	if sp := spanFrom(r.Context()); sp != nil {
		sp.shed = true
	}
	s.metrics.Counter("serve_shed_total").Inc()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "%s: server saturated, retry later", endpoint)
}

// lineStream adapts the campaign JSONL stream onto the response: raw
// RunResult lines from the campaign encoder are wrapped into CampaignLine
// envelopes ({"run": ...}) and flushed per line. Writes arrive serialized
// (the campaign JSONL writer holds a mutex), but chunk boundaries are not
// guaranteed to be line boundaries, so a partial-line buffer reassembles
// them.
type lineStream struct {
	w   http.ResponseWriter
	buf bytes.Buffer
}

// Write implements io.Writer for campaign.Options.JSONL.
func (ls *lineStream) Write(p []byte) (int, error) {
	ls.buf.Write(p)
	for {
		line, err := ls.buf.ReadBytes('\n')
		if err != nil {
			// Partial line: keep it buffered for the next write.
			ls.buf.Write(line)
			break
		}
		ls.w.Write([]byte(`{"run":`)) //nolint:errcheck
		ls.w.Write(bytes.TrimRight(line, "\n"))
		ls.w.Write([]byte("}\n"))
	}
	if f, ok := ls.w.(http.Flusher); ok {
		f.Flush()
	}
	return len(p), nil
}

// writeLine emits one envelope line directly (summary / error trailers).
func (ls *lineStream) writeLine(line CampaignLine) {
	data, err := json.Marshal(line)
	if err != nil {
		return
	}
	ls.w.Write(append(data, '\n')) //nolint:errcheck
	if f, ok := ls.w.(http.Flusher); ok {
		f.Flush()
	}
}
