package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestColorsDistinctAndIncomparable(t *testing.T) {
	cfg := Config{Graph: graph.Cycle(5), Homes: []int{0, 2, 4}, Seed: 1, WakeAll: true}
	res, err := Run(cfg, func(a *Agent) (Outcome, error) {
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Colors {
		if res.Colors[i].IsZero() {
			t.Fatal("agent got zero color")
		}
		for j := i + 1; j < len(res.Colors); j++ {
			if res.Colors[i].Equal(res.Colors[j]) {
				t.Fatal("two agents share a color")
			}
		}
	}
}

func TestMoveFollowsTwins(t *testing.T) {
	// Walk around a cycle: n moves must return home. Recognize "home" via
	// the home sign of our own color.
	n := 6
	cfg := Config{Graph: graph.Cycle(n), Homes: []int{3}, Seed: 2, WakeAll: true}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		// Pick a consistent direction: always leave through the port that
		// is not the one we came in through.
		var came Symbol
		for step := 0; step < n; step++ {
			var out Symbol
			for _, s := range a.Symbols() {
				if s != came {
					out = s
					break
				}
			}
			entry, err := a.Move(out)
			if err != nil {
				return Outcome{}, err
			}
			came = entry
		}
		// After n steps in a fixed direction we are home again.
		var home bool
		err := a.Access(func(b *Board) {
			home = b.Signs().HasBy(a.Color(), TagHome)
		})
		if err != nil {
			return Outcome{}, err
		}
		if !home {
			return Outcome{}, errors.New("did not return home after n steps")
		}
		return Outcome{Role: RoleLeader, Leader: a.Color()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoveCountsAndInvalidSymbol(t *testing.T) {
	cfg := Config{Graph: graph.Path(3), Homes: []int{0}, Seed: 3, WakeAll: true}
	res, err := Run(cfg, func(a *Agent) (Outcome, error) {
		s := a.Symbols()[0]
		if _, err := a.Move(s); err != nil {
			return Outcome{}, err
		}
		// The old symbol belongs to the previous node now.
		if _, err := a.Move(s); err == nil {
			return Outcome{}, errors.New("stale symbol accepted")
		}
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves[0] != 1 {
		t.Fatalf("moves = %d, want 1", res.Moves[0])
	}
}

func TestSymbolsStablePerAgentPerNode(t *testing.T) {
	cfg := Config{Graph: graph.Star(4), Homes: []int{0}, Seed: 4, WakeAll: true}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		first := a.Symbols()
		// Leave and come back; presentation must be identical.
		entry, err := a.Move(first[0])
		if err != nil {
			return Outcome{}, err
		}
		if _, err := a.Move(entry); err != nil {
			return Outcome{}, err
		}
		second := a.Symbols()
		if len(first) != len(second) {
			return Outcome{}, errors.New("degree changed")
		}
		for i := range first {
			if first[i] != second[i] {
				return Outcome{}, errors.New("presentation order changed across visits")
			}
		}
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWhiteboardMutualExclusion(t *testing.T) {
	// All agents race to write "first" on the shared central whiteboard;
	// exactly one must win. This is the star-network election of §1.3.
	g := graph.Star(6)
	homes := []int{1, 2, 3, 4, 5, 6}
	cfg := Config{Graph: g, Homes: homes, Seed: 5, WakeAll: true, MaxDelay: time.Millisecond}
	var winners int64
	res, err := Run(cfg, func(a *Agent) (Outcome, error) {
		// Move to the center (the only neighbor).
		if _, err := a.Move(a.Symbols()[0]); err != nil {
			return Outcome{}, err
		}
		won := false
		err := a.Access(func(b *Board) {
			if !b.Signs().Has("first") {
				b.Write("first")
				won = true
			}
		})
		if err != nil {
			return Outcome{}, err
		}
		if won {
			atomic.AddInt64(&winners, 1)
			return Outcome{Role: RoleLeader, Leader: a.Color()}, nil
		}
		var leader Color
		err = a.Access(func(b *Board) {
			cs := b.Signs().Colors("first")
			if len(cs) == 1 {
				leader = cs[0]
			}
		})
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Role: RoleDefeated, Leader: leader}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
	if !res.AgreedLeader() {
		t.Fatal("agents did not agree on the leader")
	}
}

func TestWaitWakesOnWrite(t *testing.T) {
	// Agent 0 waits for a "go" sign; agent 1 walks over and writes it.
	g := graph.Path(2)
	cfg := Config{Graph: g, Homes: []int{0, 1}, Seed: 6, WakeAll: true}
	res, err := Run(cfg, func(a *Agent) (Outcome, error) {
		// Both agents walk to the other node, write "go" there, walk back,
		// and wait for the other's "go" at home — exercising Wait's wake-up
		// on a concurrent write.
		if _, err := a.Move(a.Symbols()[0]); err != nil {
			return Outcome{}, err
		}
		if err := a.Access(func(b *Board) { b.Write("go") }); err != nil {
			return Outcome{}, err
		}
		if _, err := a.Move(a.Symbols()[0]); err != nil {
			return Outcome{}, err
		}
		if _, err := a.Wait(func(ss Signs) bool { return ss.Has("go") }); err != nil {
			return Outcome{}, err
		}
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errors {
		if e != nil {
			t.Fatalf("agent %d: %v", i, e)
		}
	}
}

func TestSleepingAgentWokenByVisitor(t *testing.T) {
	// Only agent 0 starts awake (WakeAll=false with seed choosing...); to
	// make it deterministic we wake a sleeper explicitly: agent 0 walks the
	// cycle writing wake signs at home-bases.
	g := graph.Cycle(4)
	cfg := Config{Graph: g, Homes: []int{0, 2}, Seed: 8, WakeAll: false}
	res, err := Run(cfg, func(a *Agent) (Outcome, error) {
		// Every awake agent tours the cycle writing TagWake on every board,
		// then declares done. Sleeping agents do the same once woken.
		var came Symbol
		for step := 0; step < 4; step++ {
			if err := a.Access(func(b *Board) { b.Write(TagWake) }); err != nil {
				return Outcome{}, err
			}
			var out Symbol
			for _, s := range a.Symbols() {
				if s != came {
					out = s
					break
				}
			}
			entry, err := a.Move(out)
			if err != nil {
				return Outcome{}, err
			}
			came = entry
		}
		return Outcome{Role: RoleDefeated, Leader: a.Color()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Role != RoleDefeated {
			t.Fatalf("agent %d never ran (role %v)", i, o.Role)
		}
	}
}

func TestTimeoutAbortsDeadlock(t *testing.T) {
	cfg := Config{
		Graph:   graph.Path(2),
		Homes:   []int{0},
		Seed:    9,
		WakeAll: true,
		Timeout: 100 * time.Millisecond,
	}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		_, err := a.Wait(func(ss Signs) bool { return ss.Has("never") })
		return Outcome{}, err
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestContextCancelAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Graph:   graph.Path(2),
		Homes:   []int{0},
		Seed:    9,
		WakeAll: true,
		Timeout: 30 * time.Second,
		Context: ctx,
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		_, err := a.Wait(func(ss Signs) bool { return ss.Has("never") })
		return Outcome{}, err
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if errors.Is(err, ErrAborted) {
		t.Fatal("cancellation must not look like a retriable watchdog abort")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v, run did not unwind promptly", elapsed)
	}
}

func TestContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Graph:   graph.Path(2),
		Homes:   []int{0},
		Seed:    11,
		WakeAll: true,
		Context: ctx,
	}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		_, err := a.Wait(func(ss Signs) bool { return ss.Has("never") })
		return Outcome{}, err
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestQuantitativeIDGating(t *testing.T) {
	cfg := Config{Graph: graph.Path(2), Homes: []int{0}, Seed: 10, WakeAll: true}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		defer func() {
			if recover() == nil {
				panic("ID() must panic in the qualitative model")
			}
		}()
		_ = a.ID()
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.QuantitativeIDs = true
	_, err = Run(cfg, func(a *Agent) (Outcome, error) {
		if a.ID() <= 0 {
			return Outcome{}, errors.New("bad id")
		}
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Graph: graph.Path(3), Homes: nil}, nil); err == nil {
		t.Error("no agents accepted")
	}
	if _, err := Run(Config{Graph: graph.Path(3), Homes: []int{0, 0}}, nil); err == nil {
		t.Error("duplicate home accepted")
	}
	if _, err := Run(Config{Graph: graph.Path(3), Homes: []int{7}}, nil); err == nil {
		t.Error("out-of-range home accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := Run(Config{Graph: b.Graph(), Homes: []int{0}}, nil); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSignsHelpers(t *testing.T) {
	c1, c2 := Color{id: 1}, Color{id: 2}
	ss := Signs{{c1, "a"}, {c2, "a"}, {c1, "b:x"}, {c1, "b:y"}}
	if !ss.Has("a") || ss.Has("c") {
		t.Error("Has broken")
	}
	if !ss.HasBy(c1, "a") || ss.HasBy(c2, "b:x") {
		t.Error("HasBy broken")
	}
	if ss.CountColors("a") != 2 || ss.CountColors("b:x") != 1 {
		t.Error("CountColors broken")
	}
	if got := len(ss.WithPrefix("b:")); got != 2 {
		t.Errorf("WithPrefix returned %d signs", got)
	}
}

func TestHomeSignsPreMarked(t *testing.T) {
	cfg := Config{Graph: graph.Cycle(3), Homes: []int{0, 1}, Seed: 11, WakeAll: true}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		var homes int
		err := a.Access(func(b *Board) {
			homes = len(b.Signs().Colors(TagHome))
		})
		if err != nil {
			return Outcome{}, err
		}
		if homes != 1 {
			return Outcome{}, errors.New("home board should carry exactly one home sign")
		}
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteIdempotentEraseWorks(t *testing.T) {
	cfg := Config{Graph: graph.Path(2), Homes: []int{0}, Seed: 12, WakeAll: true}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		err := a.Access(func(b *Board) {
			b.Write("x")
			b.Write("x")
			if n := len(b.Signs().WithPrefix("x")); n != 1 {
				panic("duplicate sign written")
			}
			b.Erase("x")
			if b.Signs().Has("x") {
				panic("erase failed")
			}
		})
		return Outcome{}, err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	cfg := Config{
		Graph: graph.Cycle(4), Homes: []int{0, 2}, Seed: 13, WakeAll: true,
		Tracer: func(e Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	}
	res, err := Run(cfg, func(a *Agent) (Outcome, error) {
		if _, err := a.Move(a.Symbols()[0]); err != nil {
			return Outcome{}, err
		}
		if err := a.Access(func(b *Board) { b.Write("x"); b.Erase("x") }); err != nil {
			return Outcome{}, err
		}
		return Outcome{Role: RoleDefeated}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	counts := map[EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
		if e.Agent < 0 || e.Agent >= 2 {
			t.Fatalf("bad agent index %d", e.Agent)
		}
	}
	if int64(counts[EvMove]) != res.TotalMoves() {
		t.Errorf("move events %d, counter %d", counts[EvMove], res.TotalMoves())
	}
	if counts[EvWake] != 2 || counts[EvOutcome] != 2 {
		t.Errorf("wake/outcome events %d/%d, want 2/2", counts[EvWake], counts[EvOutcome])
	}
	if counts[EvWrite] != 2 || counts[EvErase] != 2 {
		t.Errorf("write/erase events %d/%d, want 2/2", counts[EvWrite], counts[EvErase])
	}
}
