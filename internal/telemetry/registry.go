package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; a nil *Counter (as returned by a nil *Registry) is a
// no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric. The zero value is ready to use; a nil
// *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket int64 histogram: observations are counted
// into the first bucket whose upper bound is >= the value, with an
// implicit overflow bucket past the last bound. Bounds are fixed at
// construction, so Observe is an atomic add with a small linear scan — no
// allocation, no locking.
type Histogram struct {
	bounds []int64        // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramBucket is one bucket of a snapshot: the count of observations
// with value <= Le. The overflow bucket has Overflow set and Le 0.
type HistogramBucket struct {
	Le       int64 `json:"le"`
	Count    int64 `json:"count"`
	Overflow bool  `json:"overflow,omitempty"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]HistogramBucket, len(h.counts)),
	}
	for i := range h.counts {
		b := HistogramBucket{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.Le = h.bounds[i]
		} else {
			b.Overflow = true
		}
		s.Buckets[i] = b
	}
	return s
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor (at least +1 per step), e.g. ExpBuckets(10, 4, 6) =
// [10 40 160 640 2560 10240] — the default shape for move/access counts.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor < 2 {
		factor = 2
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		next := v * factor
		if next <= v {
			next = v + 1
		}
		v = next
	}
	return out
}

// Registry is a named collection of metrics, safe for concurrent use.
// Handles are created on first lookup and stable thereafter. A nil
// *Registry hands out nil handles, so disabled metrics cost one nil check
// per lookup and nothing per update.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Unregister removes the named metric (counter, gauge or histogram) from
// the registry so it no longer appears in snapshots. Handles already held
// by callers keep working — they just update an orphan — and a later
// lookup of the same name creates a fresh zeroed metric. Returns whether
// anything was removed. Unregistering on a nil registry is a no-op.
func (r *Registry) Unregister(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.hists, name)
	return c || g || h
}

// Snapshot is the JSON form of a registry: expvar-style maps keyed by
// metric name, names sorted by encoding/json for stable output.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Delta returns the change from prev to s: counters and histogram
// counts/sums/buckets are subtracted (metrics absent from prev count from
// zero, so a metric registered mid-window reports its full value), while
// gauges keep their current value — a gauge is a level, not a flow. Use
// it to report per-window activity from two scrapes of a long-lived
// process without resetting the registry under concurrent writers.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistogramSnapshot{
			Count:   h.Count - p.Count,
			Sum:     h.Sum - p.Sum,
			Buckets: make([]HistogramBucket, len(h.Buckets)),
		}
		for i, b := range h.Buckets {
			if i < len(p.Buckets) && p.Buckets[i].Le == b.Le && p.Buckets[i].Overflow == b.Overflow {
				b.Count -= p.Buckets[i].Count
			}
			dh.Buckets[i] = b
		}
		d.Histograms[name] = dh
	}
	return d
}

// Snapshot copies the registry's current state. Safe to call from any
// goroutine; the copy shares nothing with the live metrics.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry's current state as indented JSON with
// metric names sorted (encoding/json sorts map keys), expvar-style.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ServeHTTP serves the registry as JSON — mount it at /debug/metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := r.WriteJSON(w); err != nil {
		http.Error(w, fmt.Sprintf("telemetry: %v", err), http.StatusInternalServerError)
	}
}

// Names returns the sorted names of all registered metrics (counters,
// gauges and histograms merged), for diagnostics and tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
