package elect

import (
	"fmt"

	"repro/internal/sim"
)

// ViolationCode classifies a protocol-invariant violation found by
// CheckInvariants. The first three are safety violations that Theorem 3.1
// rules out on every asynchronous execution; the move bound is the theorem's
// cost claim; run-error covers executions that did not complete at all
// (including schedule deadlocks, which a correct protocol never reaches).
type ViolationCode string

// The invariant-violation codes.
const (
	// VioMultipleLeaders: more than one agent ended in RoleLeader.
	VioMultipleLeaders ViolationCode = "multiple-leaders"
	// VioNoAgreement: the run is neither a clean election (one leader,
	// everyone else defeated and naming the same leader color) nor a
	// unanimous failure report.
	VioNoAgreement ViolationCode = "no-agreement"
	// VioWrongVerdict: the collective verdict contradicts the oracle —
	// the protocol elected although gcd(|C_1|,…,|C_k|) > 1, or reported
	// failure although the gcd is 1.
	VioWrongVerdict ViolationCode = "wrong-verdict"
	// VioMoveBound: total moves exceed the O(r·|E|) envelope of
	// Theorem 3.1 (moves > c·r·|E| for the configured constant c).
	VioMoveBound ViolationCode = "move-bound"
	// VioRunError: the run ended with an error (protocol failure, watchdog
	// abort, or a scheduling deadlock).
	VioRunError ViolationCode = "run-error"
)

// Violation is one invariant breach, with a human-readable detail line.
type Violation struct {
	Code   ViolationCode `json:"code"`
	Detail string        `json:"detail"`
}

// String renders the violation as "code: detail".
func (v Violation) String() string { return string(v.Code) + ": " + v.Detail }

// VerdictMode selects the agreement predicate a protocol's terminal
// configuration is held to. The source paper's Protocol ELECT and the
// related-work zoo protocols promise different amounts of knowledge to the
// defeated agents, so "did the run succeed" is protocol-dependent:
//
//   - ModeStrong (the default, ""): a clean election means one leader and
//     every defeated agent naming that leader — the original contract.
//   - ModeWeak: one leader must emerge and everyone else must concede, but
//     defeated agents need not (and typically cannot) name the winner.
//   - ModeSelection: same terminal shape as weak, but a unanimous
//     "unsolvable" report is never acceptable — selection is universally
//     solvable in the quantitative model (Section 1.3 of the source
//     paper), so a correct selection protocol always distinguishes
//     exactly one agent.
type VerdictMode string

// The verdict modes.
const (
	// ModeStrong is the original strong-election contract.
	ModeStrong VerdictMode = ""
	// ModeWeak accepts a conceding defeated agent that cannot name the
	// leader.
	ModeWeak VerdictMode = "weak"
	// ModeSelection is weak agreement with unanimous failure outlawed.
	ModeSelection VerdictMode = "selection"
)

// InvariantSpec parameterizes CheckInvariants with what the oracle knows
// about the instance.
type InvariantSpec struct {
	// Expected is the oracle verdict: "leader", "unsolvable", or "" when no
	// prediction applies (then only the schedule-independent safety
	// invariants are checked).
	Expected string
	// Mode selects the agreement predicate (strong election by default;
	// weak election and selection accept defeated agents that cannot name
	// the winner, and selection additionally rejects unanimous failure).
	Mode VerdictMode
	// M is the instance's edge count |E|; RatioBound is the constant c of
	// the moves ≤ c·r·|E| assertion. Either being 0 disables the bound.
	M          int
	RatioBound float64
	// FaultsInjected relaxes the contract to the fault-aware spec: with
	// crash-stopped agents the run may legitimately fail (deadlock, abort,
	// no unanimous verdict among survivors), but safety must still hold —
	// never two leaders, never disagreement among surviving committed
	// agents, never an election on an unsolvable instance — and the
	// Theorem 3.1 move bound is re-scoped to the surviving agents.
	FaultsInjected bool
}

// SpecFromAnalysis builds the InvariantSpec for Protocol ELECT from the
// centralized analysis (Theorem 3.1: elect iff the class-size gcd is 1).
func SpecFromAnalysis(an *Analysis, m int, ratioBound float64) InvariantSpec {
	spec := InvariantSpec{M: m, RatioBound: ratioBound}
	if an != nil {
		if an.GCD == 1 {
			spec.Expected = "leader"
		} else {
			spec.Expected = "unsolvable"
		}
	}
	return spec
}

// CheckInvariants validates a completed run against the protocol's contract:
// at most one leader, all-agree-on-the-leader-or-all-report-failure, verdict
// matching the independently computed gcd, and the Theorem 3.1 move bound.
// It returns nil when every invariant holds. The checks are pure observer
// logic over the Result — they never look inside the protocol — so they
// apply equally to live runs, adversary-scheduled runs, and replays.
func CheckInvariants(res *sim.Result, runErr error, spec InvariantSpec) []Violation {
	if spec.FaultsInjected {
		return checkFaultAware(res, runErr, spec)
	}
	if runErr != nil {
		return []Violation{{Code: VioRunError, Detail: runErr.Error()}}
	}
	var out []Violation
	if n := res.LeaderCount(); n > 1 {
		out = append(out, Violation{
			Code:   VioMultipleLeaders,
			Detail: fmt.Sprintf("%d agents ended in RoleLeader", n),
		})
	}
	agreed, failed := Elected(res, spec.Mode), res.AllUnsolvable()
	if spec.Mode == ModeSelection {
		failed = false
	}
	if !agreed && !failed {
		out = append(out, Violation{
			Code:   VioNoAgreement,
			Detail: fmt.Sprintf("outcomes are neither a clean election nor a unanimous failure: %s", describeOutcomes(res)),
		})
	}
	switch spec.Expected {
	case "leader":
		if !agreed {
			out = append(out, Violation{
				Code:   VioWrongVerdict,
				Detail: "gcd of class sizes is 1 but no agreed leader emerged",
			})
		}
	case "unsolvable":
		if !failed {
			out = append(out, Violation{
				Code:   VioWrongVerdict,
				Detail: "gcd of class sizes is > 1 but the protocol did not report failure unanimously",
			})
		}
	}
	// Fault-free runs bound the moves by the INITIAL agent count: r is
	// len(res.Outcomes), never a survivor count — the fault-aware re-scope
	// below must not loosen this case (pinned by a regression test).
	r := len(res.Outcomes)
	if spec.M > 0 && spec.RatioBound > 0 {
		if limit := spec.RatioBound * float64(r*spec.M); float64(res.TotalMoves()) > limit {
			out = append(out, Violation{
				Code: VioMoveBound,
				Detail: fmt.Sprintf("total moves %d exceed %.0f·r·|E| = %.0f",
					res.TotalMoves(), spec.RatioBound, limit),
			})
		}
	}
	return out
}

// checkFaultAware is the relaxed contract for runs with injected faults.
// Liveness is forfeit — a crash may stall the protocol into deadlock or
// leave survivors without a verdict, and a run error is not by itself a
// violation — but safety is not: among the agents that survived, there must
// never be two leaders, never two different named leaders, never a mix of
// "elected" and "unsolvable" verdicts, and never an election on an instance
// the oracle calls unsolvable (crash-stops cannot turn a gcd > 1 into 1).
// The Theorem 3.1 move envelope is re-scoped to the survivors: the moves of
// the agents that lived to the end must fit c·r_surv·|E|.
func checkFaultAware(res *sim.Result, runErr error, spec InvariantSpec) []Violation {
	if res == nil {
		if runErr != nil {
			return []Violation{{Code: VioRunError, Detail: runErr.Error()}}
		}
		return []Violation{{Code: VioRunError, Detail: "no result"}}
	}
	var out []Violation
	var named []sim.Color
	addNamed := func(c sim.Color) {
		if c.IsZero() {
			return
		}
		for _, d := range named {
			if d.Equal(c) {
				return
			}
		}
		named = append(named, c)
	}
	leaders, unsolvable, survivors := 0, 0, 0
	var survMoves int64
	for i, o := range res.Outcomes {
		if !res.Survived(i) {
			continue
		}
		survivors++
		if i < len(res.Moves) {
			survMoves += res.Moves[i]
		}
		switch o.Role {
		case sim.RoleLeader:
			leaders++
			if i < len(res.Colors) {
				addNamed(res.Colors[i])
			}
			addNamed(o.Leader)
		case sim.RoleDefeated:
			addNamed(o.Leader)
		case sim.RoleUnsolvable:
			unsolvable++
		}
	}
	if leaders > 1 {
		out = append(out, Violation{
			Code:   VioMultipleLeaders,
			Detail: fmt.Sprintf("%d surviving agents ended in RoleLeader", leaders),
		})
	}
	if len(named) > 1 {
		out = append(out, Violation{
			Code:   VioNoAgreement,
			Detail: fmt.Sprintf("surviving agents name %d different leaders: %s", len(named), describeOutcomes(res)),
		})
	}
	if leaders > 0 && unsolvable > 0 {
		out = append(out, Violation{
			Code:   VioNoAgreement,
			Detail: fmt.Sprintf("survivors mix election and failure verdicts: %s", describeOutcomes(res)),
		})
	}
	if len(named) == 1 {
		// A surviving agent whose color is the named leader must not have
		// denied the crown itself.
		for i, o := range res.Outcomes {
			if !res.Survived(i) || i >= len(res.Colors) || !res.Colors[i].Equal(named[0]) {
				continue
			}
			if o.Role == sim.RoleDefeated || o.Role == sim.RoleUnsolvable {
				out = append(out, Violation{
					Code:   VioNoAgreement,
					Detail: fmt.Sprintf("named leader is a survivor that reported %s", o.Role),
				})
			}
		}
	}
	if spec.Expected == "unsolvable" && len(named) > 0 {
		out = append(out, Violation{
			Code:   VioWrongVerdict,
			Detail: "a leader emerged although gcd of class sizes is > 1 (crashes cannot make election solvable)",
		})
	}
	if spec.M > 0 && spec.RatioBound > 0 && survivors > 0 {
		if limit := spec.RatioBound * float64(survivors*spec.M); float64(survMoves) > limit {
			out = append(out, Violation{
				Code: VioMoveBound,
				Detail: fmt.Sprintf("survivor moves %d exceed %.0f·r_surv·|E| = %.0f (r_surv=%d)",
					survMoves, spec.RatioBound, limit, survivors),
			})
		}
	}
	return out
}

// Elected reports whether a completed run satisfies mode's success
// predicate: ModeStrong is sim.Result.AgreedLeader (every defeated agent
// names the winner); ModeWeak and ModeSelection accept defeated agents
// that concede without naming anyone. Callers classifying outcomes for a
// mode-aware protocol (the campaign's protocol axis) share this predicate
// with CheckInvariants.
func Elected(res *sim.Result, mode VerdictMode) bool {
	if mode == ModeStrong {
		return res.AgreedLeader()
	}
	return weakElected(res)
}

// weakElected is the weak-election/selection success predicate: exactly one
// agent ended leader, every other agent conceded (defeated), and any
// defeated agent that did name a leader named the right one. Unlike
// AgreedLeader, a defeated agent with no named leader is acceptable — weak
// election promises the losers nothing beyond their own defeat.
func weakElected(res *sim.Result) bool {
	if res.LeaderCount() != 1 {
		return false
	}
	var crown sim.Color
	for i, o := range res.Outcomes {
		if o.Role == sim.RoleLeader && i < len(res.Colors) {
			crown = res.Colors[i]
		}
	}
	for _, o := range res.Outcomes {
		switch o.Role {
		case sim.RoleLeader:
		case sim.RoleDefeated:
			if !o.Leader.IsZero() && !o.Leader.Equal(crown) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func describeOutcomes(res *sim.Result) string {
	counts := map[sim.Role]int{}
	for _, o := range res.Outcomes {
		counts[o.Role]++
	}
	return fmt.Sprintf("leader=%d defeated=%d unsolvable=%d unknown=%d",
		counts[sim.RoleLeader], counts[sim.RoleDefeated],
		counts[sim.RoleUnsolvable], counts[sim.RoleUnknown])
}
