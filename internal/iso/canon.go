package iso

import (
	"bytes"

	"repro/internal/perm"
)

// canonState drives one canonical labeling search. All scratch (partition
// levels, refinement worklists, the path's word prefix, orbit union-finds)
// is owned here and reused across the whole backtracking tree, so the search
// allocates O(depth) level structures and otherwise runs allocation-free.
//
// One state serves both engines: the dense engine (c != nil) serializes the
// n+n² growing-principal-submatrix word of DESIGN.md §8, the sparse engine
// (sparse == true) the O(n+m) varint word of DESIGN.md §13. A state may run
// standalone (sh == nil, the sequential engine) or as one worker of a
// parallel search sharing a best-word bound and automorphism pool (sh !=
// nil, parallel.go).
type canonState struct {
	c      *Colored // dense input (nil in sparse mode)
	colors []int    // vertex colors (c.Color or the Sparse's colors)
	g      *csr
	n      int
	sparse bool

	// Search outcome.
	best     []byte      // minimum leaf word so far (full serialization)
	bperm    perm.Perm   // ordering that produced best (vertex -> position)
	bpermInv []int       // position -> vertex, maintained with bperm
	autos    []perm.Perm // discovered automorphisms (see leaf handling)
	bestGen  int         // bumped every time best is replaced

	// prefix is the serialized word of the current path, valid up to the
	// bytes determined by the path's leading singleton cells. prefix[0:n]
	// (dense mode: the color bytes; sparse mode: the color varints) is
	// constant across the entire tree: initial cells are monochromatic and
	// occupy fixed position ranges that refinement and individualization
	// only subdivide.
	prefix []byte

	// base is the stack of individualized vertices on the current path;
	// the orbit pruning at each node is relative to it.
	base []int

	levels []*level

	// leaves counts visited leaves; when maxLeaves > 0 and the count would
	// exceed it, budgetHit aborts the search (CanonicalBudget returns
	// ErrLeafBudget — an explicit failure, never a truncated word).
	leaves    int
	maxLeaves int
	budgetHit bool

	// done, when non-nil, is a cancellation signal (a context's Done
	// channel) polled once per search node; stopped records that it fired
	// and the search result is void.
	done    <-chan struct{}
	stopped bool

	// sh, when non-nil, couples this state to a parallel search: best/
	// bpermInv/bestGen mirror the shared snapshot (synced per node), leaves
	// and automorphisms are accounted globally, and leaf handling publishes
	// through the shared bound instead of installing locally. sharedSnap is
	// the last snapshot this state synced against.
	sh         *sharedSearch
	sharedSnap *bestSnap

	// Search-shape counters, flushed to the package stats once per search
	// (plain ints: each state runs on one goroutine).
	nodes        int
	orbitPrunes  int
	prefixPrunes int

	// Worklist-refinement scratch (refine.go). Cells are identified by
	// start position during a refine: cellEnd[s] ends the cell starting at
	// s, cellOf[v] is the start of v's cell, cnt* accumulate one splitter
	// fragment's arc counts, and the remaining slices/bitsets carry the
	// per-pass key and split-parent bookkeeping.
	cellOf       []int32
	cellEnd      []int32
	cntOut       []int32
	cntIn        []int32
	touched      []int32
	affCells     []int32
	fragBounds   []int32
	fragList     []int32
	fragParent   []int32
	splitParents []int32
	passEnd      []int32
	keysA        []int32
	keysB        []int32
	cellMark     bitset
	isFrag       bitset
	parentMark   bitset
	sortTmp      []int
	colorCounts  []int32

	// Sparse-word scratch: posOf[v] is v's position when v is placed on the
	// current determined prefix (-1 otherwise); blk* accumulate one word
	// block's per-position multiplicities.
	posOf  []int32
	blkOut []int32
	blkIn  []int32
	blkIdx []int32
}

func newCanonState(c *Colored, maxLeaves int) *canonState {
	st := &canonState{c: c, colors: c.Color, g: buildCSR(c)}
	st.init(c.N, maxLeaves, c.N+c.N*c.N)
	return st
}

func newSparseCanonState(sp *Sparse, maxLeaves int) *canonState {
	st := &canonState{colors: sp.Color, g: sp.g, sparse: true}
	st.init(sp.N, maxLeaves, 0)
	st.posOf = make([]int32, sp.N)
	for i := range st.posOf {
		st.posOf[i] = -1
	}
	st.blkOut = make([]int32, sp.N)
	st.blkIn = make([]int32, sp.N)
	st.blkIdx = make([]int32, 0, sp.N)
	return st
}

// init allocates the mode-independent scratch for an n-vertex search.
func (st *canonState) init(n, maxLeaves, prefixCap int) {
	st.n = n
	st.maxLeaves = maxLeaves
	st.prefix = make([]byte, 0, prefixCap)
	st.base = make([]int, 0, n)
	st.cellOf = make([]int32, n)
	st.cellEnd = make([]int32, n+1)
	st.cntOut = make([]int32, n)
	st.cntIn = make([]int32, n)
	st.touched = make([]int32, 0, n)
	st.affCells = make([]int32, 0, n)
	st.fragBounds = make([]int32, 0, n)
	st.fragList = make([]int32, 0, n)
	st.fragParent = make([]int32, n)
	st.splitParents = make([]int32, 0, n)
	st.passEnd = make([]int32, n+1)
	st.keysA = make([]int32, 0, 2*n)
	st.keysB = make([]int32, 0, 2*n)
	st.cellMark = newBitset(n + 1)
	st.isFrag = newBitset(n + 1)
	st.parentMark = newBitset(n + 1)
	st.sortTmp = make([]int, n)
}

// level returns the pooled partition state for the given search depth,
// allocating it on first use.
func (st *canonState) level(depth int) *level {
	for len(st.levels) <= depth {
		lv := &level{
			lab:       make([]int, st.n),
			cellStart: make([]int32, 0, st.n+1),
			uf:        make([]int32, st.n),
			ufGen:     -1,
		}
		lv.tried = make([]int, 0, st.n)
		st.levels = append(st.levels, lv)
	}
	return st.levels[depth]
}

// halted reports whether this state must stop searching: its leaf budget is
// spent, its cancellation signal fired, or (parallel mode) the shared search
// was halted by any worker.
func (st *canonState) halted() bool {
	if st.budgetHit || st.stopped {
		return true
	}
	if st.sh != nil && st.sh.halted.Load() {
		st.stopped = true
		return true
	}
	if st.done != nil {
		select {
		case <-st.done:
			st.stopped = true
			return true
		default:
		}
	}
	return false
}

func (st *canonState) run() {
	lv := st.level(0)
	st.initialPartition(lv)
	st.prepareRootPrefix(lv)
	st.search(0, 0, -1, -1)
}

// prepareRootPrefix emits the constant color section of the word.
func (st *canonState) prepareRootPrefix(lv *level) {
	st.prefix = st.prefix[:0]
	if st.sparse {
		for _, v := range lv.lab {
			st.prefix = appendUvarint(st.prefix, uint64(st.colors[v]))
		}
	} else {
		for _, v := range lv.lab {
			st.prefix = append(st.prefix, byte(st.colors[v]))
		}
	}
}

// search explores the subtree rooted at level depth, whose partition has
// been individualized but not yet refined. fixed is the number of leading
// singleton cells of the parent (whose word bytes are already in prefix).
// cmp is the relation of the path's determined word bytes to best:
// -1 strictly smaller (or best unset), 0 equal so far. Subtrees whose
// determined bytes exceed best are pruned before reaching a leaf. hint >= 0
// names the cell just individualized, seeding the worklist refinement with
// only that singleton (see refineSingle); the root passes -1.
func (st *canonState) search(depth, fixed, cmp, hint int) {
	if st.halted() {
		return
	}
	st.nodes++
	lv := st.levels[depth]
	if hint >= 0 {
		st.refineSingle(lv, hint)
	} else {
		st.refine(lv)
	}

	// Extend the determined prefix over the new leading singleton cells
	// and compare incrementally against best.
	pl0 := len(st.prefix)
	k := fixed
	for k < lv.ncells && lv.cellStart[k+1]-lv.cellStart[k] == 1 {
		k++
	}
	if st.sparse {
		for i := fixed; i < k; i++ {
			st.posOf[lv.lab[i]] = int32(i)
		}
		for i := fixed; i < k; i++ {
			st.appendSparseBlock(i, lv.lab[i])
		}
	} else {
		for i := fixed; i < k; i++ {
			st.prefix = appendBlock(st.prefix, st.c, lv.lab, i, lv.lab[i])
		}
	}
	if st.sh != nil {
		cmp = st.syncShared(cmp)
	}
	if cmp == 0 {
		cmp = st.compareNewBytes(pl0)
	}
	if cmp > 0 {
		st.prefixPrunes++
		st.retreat(lv, fixed, k, pl0)
		return // partial word already exceeds best: prune
	}

	if lv.discrete(st.n) {
		st.leaf(lv, cmp)
		st.retreat(lv, fixed, k, pl0)
		return
	}

	// Branch on the first smallest non-singleton cell.
	target, targetLen := -1, st.n+1
	for t := 0; t < lv.ncells; t++ {
		if l := int(lv.cellStart[t+1] - lv.cellStart[t]); l > 1 && l < targetLen {
			target, targetLen = t, l
		}
	}
	s, e := int(lv.cellStart[target]), int(lv.cellStart[target+1])
	lv.tried = lv.tried[:0]
	for ci := s; ci < e; ci++ {
		v := lv.lab[ci]
		// Orbit pruning: vertices of the cell in one orbit of the
		// base-pointwise stabilizer of the discovered automorphism group
		// lead to identical subtrees; explore one per orbit.
		if st.inOrbitOfTried(lv, v) {
			st.orbitPrunes++
			continue
		}
		lv.tried = append(lv.tried, v)
		child := st.level(depth + 1)
		child.copyFrom(lv)
		child.individualize(target, v)
		st.base = append(st.base, v)
		gen := st.bestGen
		st.search(depth+1, k, cmp, target)
		st.base = st.base[:len(st.base)-1]
		if st.halted() {
			break
		}
		if st.bestGen != gen {
			if st.sh == nil {
				// best was replaced by a leaf of the subtree just explored,
				// so this node's determined prefix is a prefix of (hence
				// equal to) the new best's.
				cmp = 0
			} else {
				// Parallel mode: best may have been replaced by any worker;
				// re-derive the relation (and prune the remaining branches
				// if the new best already beats this node's prefix).
				cmp = st.comparePrefixToBest()
				if cmp > 0 {
					st.prefixPrunes++
					break
				}
			}
		}
	}
	st.retreat(lv, fixed, k, pl0)
}

// retreat undoes a node's prefix extension (and, sparse mode, its position
// placements) on the way back up.
func (st *canonState) retreat(lv *level, fixed, k, pl0 int) {
	st.prefix = st.prefix[:pl0]
	if st.sparse {
		for i := fixed; i < k; i++ {
			st.posOf[lv.lab[i]] = -1
		}
	}
}

// compareNewBytes compares the prefix bytes appended by the current node
// (prefix[pl0:]) against best. In sparse mode words vary in length; a
// candidate that runs past best's end with all bytes equal is strictly
// greater (best is a proper prefix of it), matching bytes.Compare.
func (st *canonState) compareNewBytes(pl0 int) int {
	p, b := st.prefix, st.best
	for i := pl0; i < len(p); i++ {
		if i >= len(b) {
			return 1
		}
		if p[i] != b[i] {
			if p[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// comparePrefixToBest relates the whole determined prefix to best with
// bytes.Compare length semantics on the determined range.
func (st *canonState) comparePrefixToBest() int {
	if st.best == nil {
		return -1
	}
	p, b := st.prefix, st.best
	m := len(p)
	if len(b) < m {
		m = len(b)
	}
	for i := 0; i < m; i++ {
		if p[i] != b[i] {
			if p[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	if len(p) > len(b) {
		return 1
	}
	return 0
}

// appendSparseBlock appends position i's block of the sparse word: the
// varint count of placed positions j <= i adjacent to v_i, then for each
// such j ascending the triple (j, mult v_i->v_j, mult v_j->v_i) as varints.
// Together with the color section this reconstructs the adjacency among the
// placed prefix, so the full word is an injective serialization, and block
// i depends only on positions 0..i — the property incremental prefix
// pruning needs.
func (st *canonState) appendSparseBlock(i, vi int) {
	g := st.g
	idx := st.blkIdx[:0]
	for a := g.outStart[vi]; a < g.outStart[vi+1]; a++ {
		j := st.posOf[g.outDst[a]]
		if j >= 0 && int(j) <= i {
			if st.blkOut[j] == 0 && st.blkIn[j] == 0 {
				idx = append(idx, j)
			}
			st.blkOut[j] += g.outMult[a]
		}
	}
	for a := g.inStart[vi]; a < g.inStart[vi+1]; a++ {
		j := st.posOf[g.inDst[a]]
		if j >= 0 && int(j) <= i {
			if st.blkOut[j] == 0 && st.blkIn[j] == 0 {
				idx = append(idx, j)
			}
			st.blkIn[j] += g.inMult[a]
		}
	}
	sortInt32s(idx)
	st.prefix = appendUvarint(st.prefix, uint64(len(idx)))
	for _, j := range idx {
		st.prefix = appendUvarint(st.prefix, uint64(j))
		st.prefix = appendUvarint(st.prefix, uint64(st.blkOut[j]))
		st.prefix = appendUvarint(st.prefix, uint64(st.blkIn[j]))
		st.blkOut[j], st.blkIn[j] = 0, 0
	}
	st.blkIdx = idx[:0]
}

// isAutomorphism dispatches the automorphism check to the input
// representation.
func (st *canonState) isAutomorphism(a perm.Perm) bool {
	if st.c != nil {
		return st.c.IsAutomorphism(a)
	}
	return csrIsAutomorphism(st.g, st.colors, a)
}

// leaf handles a discrete partition: prefix now holds the full leaf word.
func (st *canonState) leaf(lv *level, cmp int) {
	st.leaves++
	if st.sh != nil {
		st.sharedLeaf(lv)
		return
	}
	if st.maxLeaves > 0 && st.leaves > st.maxLeaves {
		st.budgetHit = true
		return
	}
	if cmp == 0 && len(st.prefix) != len(st.best) {
		// Sparse words vary in length: all determined bytes equal but the
		// candidate ended first means it is strictly smaller (the longer
		// case was pruned during compareNewBytes).
		cmp = -1
	}
	switch cmp {
	case -1:
		// Strictly smaller than best at some determined byte (or best
		// unset): install as the new best.
		st.best = append(st.best[:0], st.prefix...)
		if st.bperm == nil {
			st.bperm = make(perm.Perm, st.n)
			st.bpermInv = make([]int, st.n)
		}
		for pos, v := range lv.lab {
			st.bperm[v] = pos
			st.bpermInv[pos] = v
		}
		st.bestGen++
	case 0:
		// Equal to best: lab and bperm induce the same canonical graph,
		// so bperm⁻¹∘cand is an automorphism of c.
		a := make(perm.Perm, st.n)
		for pos, v := range lv.lab {
			a[v] = st.bpermInv[pos]
		}
		if !a.IsIdentity() && st.isAutomorphism(a) {
			st.autos = append(st.autos, a)
		}
	}
}

// sharedLeaf is the parallel-mode leaf: the candidate word is re-verified
// against the current shared snapshot (the per-node cmp may be stale — any
// worker can improve best at any time — so correctness never rests on it),
// then published or recorded as an automorphism. See parallel.go for the
// shared-bound protocol and DESIGN.md §13 for the determinism argument.
func (st *canonState) sharedLeaf(lv *level) {
	sh := st.sh
	if n := sh.leaves.Add(1); sh.maxLeaves > 0 && n > sh.maxLeaves {
		sh.haltBudget()
		st.budgetHit = true
		return
	}
	sn := sh.snap.Load()
	c := -1
	if sn != nil {
		c = bytes.Compare(st.prefix, sn.word)
	}
	switch {
	case c < 0:
		sh.publish(st, lv)
	case c == 0:
		a := make(perm.Perm, st.n)
		for pos, v := range lv.lab {
			a[v] = sn.inv[pos]
		}
		if !a.IsIdentity() && st.isAutomorphism(a) {
			st.autos = sh.addAuto(a)
		}
	}
}

// syncShared refreshes this worker's automorphism mirror and best-word view
// from the shared search. If the shared best changed since the last sync,
// the passed cmp is stale and the relation is recomputed from the full
// determined prefix.
func (st *canonState) syncShared(cmp int) int {
	sh := st.sh
	if int(sh.autoLen.Load()) > len(st.autos) {
		sh.autosMu.Lock()
		st.autos = sh.autos
		sh.autosMu.Unlock()
	}
	sn := sh.snap.Load()
	if sn == nil {
		return -1
	}
	if sn == st.sharedSnap {
		return cmp
	}
	st.sharedSnap = sn
	st.best = sn.word
	st.bpermInv = sn.inv
	st.bestGen = sn.gen
	return st.comparePrefixToBest()
}

// inOrbitOfTried reports whether some already-tried branch vertex maps to v
// under the subgroup of discovered automorphisms fixing the current base
// pointwise. The orbit partition is a union-find over the stabilizer's
// generators, cached on the level and rebuilt only when new automorphisms
// have been discovered since — no stabilizer recomputation and no
// permutation inversions in the loop (inverses are not needed at all:
// union(i, a[i]) over generators already yields the generated group's
// orbits).
func (st *canonState) inOrbitOfTried(lv *level, v int) bool {
	if len(lv.tried) == 0 || len(st.autos) == 0 {
		return false
	}
	if lv.ufGen != len(st.autos) {
		for i := range lv.uf {
			lv.uf[i] = int32(i)
		}
		for _, a := range st.autos {
			fixesBase := true
			for _, b := range st.base {
				if a[b] != b {
					fixesBase = false
					break
				}
			}
			if !fixesBase {
				continue
			}
			for i, ai := range a {
				ufUnion(lv.uf, int32(i), int32(ai))
			}
		}
		lv.ufGen = len(st.autos)
	}
	r := ufFind(lv.uf, int32(v))
	for _, t := range lv.tried {
		if ufFind(lv.uf, int32(t)) == r {
			return true
		}
	}
	return false
}

func ufFind(uf []int32, x int32) int32 {
	for uf[x] != x {
		uf[x] = uf[uf[x]]
		x = uf[x]
	}
	return x
}

func ufUnion(uf []int32, a, b int32) {
	ra, rb := ufFind(uf, a), ufFind(uf, b)
	if ra != rb {
		uf[ra] = rb
	}
}
