package sim

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// bounceSymbols returns the two precomputed symbols for a home<->neighbor
// round trip: sOut (a port of home) and sBack (the entry port at the
// neighbor, which leads back through the same edge). Precomputing keeps
// Symbols() — which allocates — out of measured loops.
func bounceSymbols(t testing.TB, a *Agent) (sOut, sBack Symbol) {
	t.Helper()
	sOut = a.Symbols()[0]
	sBack, err := a.Move(sOut)
	if err != nil {
		t.Fatalf("warm-up move: %v", err)
	}
	if _, err := a.Move(sBack); err != nil {
		t.Fatalf("warm-up move back: %v", err)
	}
	return sOut, sBack
}

// TestTelemetryDisabledHotPathAllocationFree guards the tentpole
// guarantee of the telemetry layer: with Config.Telemetry nil, an
// instrumented Move/Access/Write/Erase cycle allocates zero bytes. It
// mirrors iso's TestRefineHotPathAllocationFree. The measurement runs
// inside the protocol goroutine; a single agent with MaxDelay 0 (yields
// only) keeps other goroutines quiet during the window.
func TestTelemetryDisabledHotPathAllocationFree(t *testing.T) {
	cfg := Config{Graph: graph.Cycle(3), Homes: []int{0}, Seed: 7, WakeAll: true}
	var allocs float64
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		sOut, sBack := bounceSymbols(t, a)
		// Warm the sign slice's capacity so measured appends reuse it.
		if err := a.Access(func(b *Board) { b.Write("t"); b.Erase("t") }); err != nil {
			return Outcome{}, err
		}
		allocs = testing.AllocsPerRun(100, func() {
			if _, err := a.Move(sOut); err != nil {
				t.Error(err)
			}
			if _, err := a.Move(sBack); err != nil {
				t.Error(err)
			}
			if err := a.Access(func(b *Board) { b.Write("t"); b.Erase("t") }); err != nil {
				t.Error(err)
			}
			a.SetPhase(telemetry.PhaseMapDraw)
			sp := a.Span("noop") // no-op span: telemetry disabled
			sp.End()
			a.SetPhase(telemetry.PhaseNone)
		})
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("instrumented hot path allocated %.1f times per cycle with telemetry disabled, want 0", allocs)
	}
}

// TestTelemetryPhaseAttribution checks that counters and trace events
// land in the phase the agent declared at the time of the operation.
func TestTelemetryPhaseAttribution(t *testing.T) {
	run := telemetry.NewRun()
	var events []Event
	cfg := Config{
		Graph: graph.Cycle(4), Homes: []int{0}, Seed: 3, WakeAll: true,
		Telemetry: run,
		Tracer:    func(e Event) { events = append(events, e) },
	}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		a.SetPhase(telemetry.PhaseMapDraw)
		sp := a.Span("draw")
		sOut, sBack := bounceSymbols(t, a)
		sp.End()
		a.SetPhase(telemetry.PhaseOrder)
		if err := a.Access(func(b *Board) { b.Write("k") }); err != nil {
			return Outcome{}, err
		}
		a.SetPhase(telemetry.PhaseAnnounce)
		if _, err := a.Move(sOut); err != nil {
			return Outcome{}, err
		}
		if _, err := a.Move(sBack); err != nil {
			return Outcome{}, err
		}
		if err := a.Access(func(b *Board) { b.Erase("k") }); err != nil {
			return Outcome{}, err
		}
		return Outcome{Role: RoleLeader, Leader: a.Color()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := run.Totals()
	if tot.Moves[telemetry.PhaseMapDraw] != 2 || tot.Moves[telemetry.PhaseAnnounce] != 2 {
		t.Errorf("move attribution wrong: %+v", tot.Moves)
	}
	if tot.Writes[telemetry.PhaseOrder] != 1 || tot.Erases[telemetry.PhaseAnnounce] != 1 {
		t.Errorf("write/erase attribution wrong: writes %+v erases %+v", tot.Writes, tot.Erases)
	}
	if tot.Accesses[telemetry.PhaseOrder] != 1 {
		t.Errorf("access attribution wrong: %+v", tot.Accesses)
	}
	spans := run.Spans()
	if len(spans) != 1 || spans[0].Name != "draw" || spans[0].Phase != telemetry.PhaseMapDraw {
		t.Errorf("spans wrong: %+v", spans)
	}
	phaseOf := map[EventKind]telemetry.Phase{}
	for _, e := range events {
		phaseOf[e.Kind] = e.Phase
	}
	if phaseOf[EvWake] != telemetry.PhaseNone {
		t.Errorf("wake event phase = %v, want none", phaseOf[EvWake])
	}
	if phaseOf[EvWrite] != telemetry.PhaseOrder {
		t.Errorf("write event phase = %v, want order", phaseOf[EvWrite])
	}
	if phaseOf[EvErase] != telemetry.PhaseAnnounce {
		t.Errorf("erase event phase = %v, want announce", phaseOf[EvErase])
	}
	if phaseOf[EvOutcome] != telemetry.PhaseAnnounce {
		t.Errorf("outcome event phase = %v, want announce", phaseOf[EvOutcome])
	}
}

// benchBounce measures a move round trip plus one whiteboard access with
// the given telemetry collector (nil = disabled overhead baseline).
func benchBounce(b *testing.B, run *telemetry.Run) {
	cfg := Config{
		Graph: graph.Cycle(3), Homes: []int{0}, Seed: 7, WakeAll: true,
		Timeout: 5 * time.Minute, Telemetry: run,
	}
	_, err := Run(cfg, func(a *Agent) (Outcome, error) {
		sOut, sBack := bounceSymbols(b, a)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Move(sOut); err != nil {
				return Outcome{}, err
			}
			if _, err := a.Move(sBack); err != nil {
				return Outcome{}, err
			}
			if err := a.Access(func(bd *Board) { bd.Write("t"); bd.Erase("t") }); err != nil {
				return Outcome{}, err
			}
		}
		b.StopTimer()
		return Outcome{}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTelemetryDisabled(b *testing.B) { benchBounce(b, nil) }

func BenchmarkTelemetryEnabled(b *testing.B) { benchBounce(b, telemetry.NewRun()) }
