package sim

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/graph"
)

// scriptInjector is a minimal FaultInjector for engine-level tests: it
// returns the scripted action for exact (op, agent, index) coordinates and
// records every point it was consulted at.
type scriptInjector struct {
	mu     sync.Mutex
	script map[[3]int]FaultAction // (op, agent, index) -> action
	points []FaultPoint
}

func (si *scriptInjector) Inject(p FaultPoint) FaultAction {
	si.mu.Lock()
	defer si.mu.Unlock()
	si.points = append(si.points, p)
	return si.script[[3]int{int(p.Op), p.Agent, p.Index}]
}

// pingPong: agent writes "ready" at home, then waits until both colors
// wrote it, then writes a long sign and finishes.
func pingPongProtocol(a *Agent) (Outcome, error) {
	if err := a.Access(func(b *Board) { b.Write("ready") }); err != nil {
		return Outcome{}, err
	}
	if _, err := a.Wait(func(ss Signs) bool { return ss.CountColors("ready") >= 1 }); err != nil {
		return Outcome{}, err
	}
	if err := a.Access(func(b *Board) { b.Write("long-sign-tag") }); err != nil {
		return Outcome{}, err
	}
	return Outcome{Role: RoleUnsolvable}, nil
}

func faultCfg(t *testing.T, inj FaultInjector, homes []int) Config {
	t.Helper()
	return Config{
		Graph:     graph.Cycle(6),
		Homes:     homes,
		Seed:      7,
		WakeAll:   true,
		Scheduler: StrategyFunc(func(ready []int, step int) int { return ready[0] }),
		Faults:    inj,
	}
}

func TestFaultsRequireScheduler(t *testing.T) {
	_, err := Run(Config{
		Graph:   graph.Cycle(4),
		Homes:   []int{0},
		WakeAll: true,
		Faults:  &scriptInjector{},
	}, pingPongProtocol)
	if err == nil {
		t.Fatal("Faults without Scheduler must be rejected")
	}
}

func TestCrashAtSequencePoint(t *testing.T) {
	inj := &scriptInjector{script: map[[3]int]FaultAction{
		{int(FaultStep), 0, 1}: {Crash: true},
	}}
	res, err := Run(faultCfg(t, inj, []int{0, 3}), pingPongProtocol)
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if !res.Crashed[0] || res.Crashed[1] {
		t.Fatalf("Crashed = %v, want agent 0 only", res.Crashed)
	}
	if !errors.Is(res.Errors[0], ErrCrashed) {
		t.Fatalf("agent 0 error = %v, want ErrCrashed", res.Errors[0])
	}
	if res.Errors[1] != nil || res.Outcomes[1].Role != RoleUnsolvable {
		t.Fatalf("survivor did not finish cleanly: err=%v role=%v", res.Errors[1], res.Outcomes[1].Role)
	}
	if res.CrashedCount() != 1 || res.Survived(0) || !res.Survived(1) {
		t.Fatalf("CrashedCount/Survived inconsistent: %v", res.Crashed)
	}
}

func TestCrashHoldingLockIsTakenOver(t *testing.T) {
	// Agent 0 lives at node 0; agent 1 at node 3 walks over to node 0 and
	// accesses its board. Agent 0 crashes holding the node-0 lock; agent 1
	// must stall for the takeover budget and then recover, not deadlock.
	visitor := func(a *Agent) (Outcome, error) {
		if err := a.Access(func(b *Board) { b.Write("start") }); err != nil {
			return Outcome{}, err
		}
		entry := Symbol{}
		for i := 0; i < 3; i++ { // walk 3 edges of the 6-cycle: node 3 -> 0 or 6->3->... either way a fixed walk
			var out Symbol
			for _, s := range a.Symbols() {
				if !s.IsZero() && s != entry {
					out = s
				}
			}
			var err error
			entry, err = a.Move(out)
			if err != nil {
				return Outcome{}, err
			}
		}
		if err := a.Access(func(b *Board) { b.Write("visited") }); err != nil {
			return Outcome{}, err
		}
		return Outcome{Role: RoleUnsolvable}, nil
	}
	inj := &scriptInjector{script: map[[3]int]FaultAction{
		{int(FaultStep), 0, 0}: {Crash: true, HoldLock: true},
	}}
	cfg := faultCfg(t, inj, []int{0, 3})
	cfg.TakeoverAfter = 2
	res, err := Run(cfg, visitor)
	if err != nil {
		t.Fatalf("run error (deadlock means takeover failed): %v", err)
	}
	if !res.Crashed[0] {
		t.Fatal("agent 0 did not crash")
	}
	if res.Takeovers < 1 {
		t.Fatalf("Takeovers = %d, want >= 1 (agent 1 must break the abandoned lock)", res.Takeovers)
	}
	if res.Errors[1] != nil {
		t.Fatalf("survivor error: %v", res.Errors[1])
	}
}

func TestTornWriteCrashesWriterAndLandsPrefix(t *testing.T) {
	var events []Event
	inj := &scriptInjector{script: map[[3]int]FaultAction{
		// Tear agent 0's second write ("long-sign-tag"), keep 4 bytes.
		{int(FaultWrite), 0, 1}: {Torn: true, Keep: 4},
	}}
	cfg := faultCfg(t, inj, []int{0, 3})
	cfg.Tracer = func(e Event) { events = append(events, e) }
	res, err := Run(cfg, pingPongProtocol)
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if !res.Crashed[0] {
		t.Fatal("torn write must crash-stop the writer")
	}
	var torn, crash bool
	for _, e := range events {
		if e.Agent == 0 && e.Kind == EvTorn && e.Tag == "long" {
			torn = true
		}
		if e.Agent == 0 && e.Kind == EvCrash && e.Tag == "torn-write" {
			crash = true
		}
		if e.Agent == 0 && e.Kind == EvWrite && e.Tag == "long-sign-tag" {
			t.Fatal("full tag landed despite the tear")
		}
	}
	if !torn || !crash {
		t.Fatalf("missing torn/crash trace events (torn=%v crash=%v)", torn, crash)
	}
}

func TestTornKeepIsClampedBelowFullTag(t *testing.T) {
	var events []Event
	inj := &scriptInjector{script: map[[3]int]FaultAction{
		{int(FaultWrite), 0, 0}: {Torn: true, Keep: 999},
	}}
	cfg := faultCfg(t, inj, []int{0, 3})
	cfg.Tracer = func(e Event) { events = append(events, e) }
	if _, err := Run(cfg, pingPongProtocol); err != nil {
		t.Fatalf("run error: %v", err)
	}
	for _, e := range events {
		if e.Agent == 0 && e.Kind == EvWrite && e.Tag == "ready" {
			t.Fatal("a torn write must never land the full tag")
		}
		if e.Agent == 0 && e.Kind == EvTorn && e.Tag != "read" {
			t.Fatalf("clamp kept %q, want %q", e.Tag, "read")
		}
	}
}

func TestStaleReadsOnlyDelay(t *testing.T) {
	inj := &scriptInjector{script: map[[3]int]FaultAction{
		{int(FaultRead), 1, 0}: {StallReads: 3},
	}}
	res, err := Run(faultCfg(t, inj, []int{0, 3}), pingPongProtocol)
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	if res.CrashedCount() != 0 {
		t.Fatal("staleness must not crash anyone")
	}
	for i, e := range res.Errors {
		if e != nil {
			t.Fatalf("agent %d error: %v", i, e)
		}
	}
}

func TestFaultPointIndicesArePerAgentPerOp(t *testing.T) {
	inj := &scriptInjector{}
	if _, err := Run(faultCfg(t, inj, []int{0, 3}), pingPongProtocol); err != nil {
		t.Fatalf("run error: %v", err)
	}
	next := map[[2]int]int{} // (op, agent) -> expected next index
	for _, p := range inj.points {
		k := [2]int{int(p.Op), p.Agent}
		if p.Index != next[k] {
			t.Fatalf("point %v: index %d, want %d", p, p.Index, next[k])
		}
		next[k]++
	}
	if len(inj.points) == 0 {
		t.Fatal("no injection points consulted")
	}
}
