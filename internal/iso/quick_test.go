package iso

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/perm"
)

func randomColored(rng *rand.Rand) (*Colored, *graph.Graph, []int) {
	n := 2 + rng.Intn(8)
	g := graph.RandomConnected(n, rng.Intn(n), rng.Int63())
	cols := make([]int, n)
	for i := range cols {
		cols[i] = rng.Intn(3)
	}
	return FromGraph(g, cols), g, cols
}

// Canonical invariance: the canonical word of a colored graph is unchanged
// by arbitrary relabelings — the property that lets every agent compute the
// same class order from its own map.
func TestQuickCanonicalInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, g, cols := randomColored(rng)
		w := CanonicalWord(c)
		p := rng.Perm(g.N())
		h, err := g.Relabel(p)
		if err != nil {
			return false
		}
		ncols := make([]int, g.N())
		for v, col := range cols {
			ncols[p[v]] = col
		}
		return bytes.Equal(w, CanonicalWord(FromGraph(h, ncols)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Automorphism generators are genuine automorphisms, and their orbits
// refine color classes.
func TestQuickAutomorphismsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _, _ := randomColored(rng)
		gens := AutomorphismGens(c)
		for _, a := range gens {
			if !c.IsAutomorphism(a) {
				return false
			}
		}
		for _, orbit := range perm.OrbitsOf(c.N, gens) {
			col := c.Color[orbit[0]]
			for _, v := range orbit {
				if c.Color[v] != col {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The isomorphism witness, whenever returned, really is one.
func TestQuickIsomorphismWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, g, cols := randomColored(rng)
		p := rng.Perm(g.N())
		h, err := g.Relabel(p)
		if err != nil {
			return false
		}
		ncols := make([]int, g.N())
		for v, col := range cols {
			ncols[p[v]] = col
		}
		d := FromGraph(h, ncols)
		phi := IsomorphismBetween(c, d)
		if phi == nil {
			return false
		}
		for u := 0; u < c.N; u++ {
			if d.Color[phi[u]] != c.Color[u] {
				return false
			}
			for v := 0; v < c.N; v++ {
				if c.Adj[u][v] != d.Adj[phi[u]][phi[v]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
