package runtime_test

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// TestWireFaultsPreserveElection runs DFSElection on the networked backend
// under every wire-fault strategy and requires the leader to survive: the
// bus's at-least-once delivery makes drops retransmissions, delays and
// reorders only perturb the schedule, and duplicates are absorbed by the
// per-writer board dedup and first-halt-wins accounting.
func TestWireFaultsPreserveElection(t *testing.T) {
	g := graph.Petersen()
	cfg := runtime.Config{Graph: g, Homes: []int{0, 3, 7}, Seed: 11}
	clean, err := (&runtime.Networked{Workers: 2}).Run(cfg, runtime.DFSElection())
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Leader()
	if want != len(cfg.Homes)-1 {
		t.Fatalf("fault-free leader %d is not the maximum identity", want)
	}
	for _, strat := range faults.WireStrategies() {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				inj, err := faults.NewWire(strat, seed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := (&runtime.Networked{Workers: 2, WireFaults: inj}).Run(cfg, runtime.DFSElection())
				if err != nil {
					t.Fatalf("seed %d (%s): %v", seed, inj.Plan().Summary(), err)
				}
				if got := res.Leader(); got != want {
					t.Fatalf("seed %d: leader %d under %s faults, want %d (%s)",
						seed, got, strat, want, inj.Plan().Summary())
				}
			}
		})
	}
}

// TestWireFaultReplayRoundTrip is the record/replay contract of backend
// (d): a networked run records its wire-fault plan and frame log; replaying
// the plan with faults.ReplayWire against the same (Config, Protocol) must
// reproduce the run frame for frame — the two logs are compared bit for
// bit — and the plan must survive its own encoding.
func TestWireFaultReplayRoundTrip(t *testing.T) {
	g := graph.Hypercube(3)
	cfg := runtime.Config{Graph: g, Homes: []int{0, 5, 6}, Seed: 7}
	rec, err := faults.NewWire("mixed", 3)
	if err != nil {
		t.Fatal(err)
	}
	var recLog bytes.Buffer
	recRes, err := (&runtime.Networked{Workers: 3, WireFaults: rec, FrameLog: &recLog}).
		Run(cfg, runtime.DFSElection())
	if err != nil {
		t.Fatal(err)
	}
	plan := rec.Plan()
	if len(plan.Events) == 0 {
		t.Fatal("recording run injected no wire faults; the round trip proves nothing")
	}

	// The plan survives its wire encoding.
	decoded, err := faults.DecodeWirePlanString(plan.EncodeString())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Events) != len(plan.Events) {
		t.Fatalf("decoded %d events, recorded %d", len(decoded.Events), len(plan.Events))
	}

	var repLog bytes.Buffer
	replay := faults.ReplayWire(decoded)
	repRes, err := (&runtime.Networked{Workers: 3, WireFaults: replay, FrameLog: &repLog}).
		Run(cfg, runtime.DFSElection())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recLog.Bytes(), repLog.Bytes()) {
		t.Fatalf("replay frame log diverged from the recording:\nrecorded %d bytes, replayed %d bytes",
			recLog.Len(), repLog.Len())
	}
	if recRes.Leader() != repRes.Leader() {
		t.Fatalf("replay elected %d, recording elected %d", repRes.Leader(), recRes.Leader())
	}
	if got := replay.Plan(); len(got.Events) != len(plan.Events) {
		t.Fatalf("replay re-issued %d events, recorded %d", len(got.Events), len(plan.Events))
	}
}
