package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/zoo"
)

// ProtocolKind selects the protocol a campaign runs.
type ProtocolKind string

// The protocol kinds a campaign can execute (matching cmd/elect).
const (
	ProtoElect        ProtocolKind = "elect"
	ProtoCayley       ProtocolKind = "cayley"
	ProtoQuantitative ProtocolKind = "quantitative"
	ProtoPetersen     ProtocolKind = "petersen"
	ProtoGather       ProtocolKind = "gather"
)

// SeedRange is an inclusive range of adversary seeds.
type SeedRange struct {
	From, To int64
}

// Count returns the number of seeds in the range (0 when empty).
func (r SeedRange) Count() int {
	if r.To < r.From {
		return 0
	}
	return int(r.To - r.From + 1)
}

// FamilySpec describes one graph family of a campaign: the family name, the
// size parameters to instantiate, and the home placements to enumerate on
// each instance — either a strategy expanded against the built graph or an
// explicit list.
type FamilySpec struct {
	// Family is a generator name: path, cycle, complete, star, hypercube
	// (size = dimension), torus (size = side), grid (size = side), petersen
	// (size ignored), wheel, prism, ccc (size = dimension), random.
	Family string
	// Sizes lists the size parameters; families with a fixed size (petersen)
	// may leave it empty.
	Sizes []int
	// Placement names the home-placement strategy: "spread" (R agents evenly
	// spaced), "adjacent" (nodes 0..R-1), "antipodal" (0 and n/2, R forced
	// to 2), "single" (node 0). Ignored when Homes is set.
	Placement string
	// R is the number of agents for the placement strategy.
	R int
	// Homes, when non-empty, lists explicit placements (one run set per
	// entry) and overrides Placement/R.
	Homes [][]int
}

// Spec is a declarative campaign: families × sizes × placements × seeds
// (× adversary strategies), executed under one protocol. Expansion is
// deterministic — the same spec always yields the same work list in the
// same order.
type Spec struct {
	Families []FamilySpec
	Seeds    SeedRange
	Protocol ProtocolKind
	// Strategies, when non-empty, crosses every run with the named adversary
	// scheduling strategies (see internal/adversary): each (instance, seed)
	// pair executes once per strategy under the serializing scheduler, with
	// protocol invariants checked after each run. Empty means one free-running
	// (goroutine-timing) run per seed, the classic campaign.
	Strategies []string
	// Faults, when non-empty, further crosses every run with the named fault
	// strategies (see internal/faults). Fault injection needs the serializing
	// scheduler, so an empty Strategies list defaults to ["random"] when
	// Faults is set. Fault runs are checked against the fault-aware invariant
	// spec and carry their fault manifest in the JSONL record.
	Faults []string
	// Backends, when non-empty, crosses every run with the named runtime
	// backends (see internal/runtime: goroutine, scheduled, transformed,
	// networked) instead of the classic simulator path. Without a Protocols
	// axis the backend axis runs the contract election
	// (runtime.DFSElection) and therefore requires
	// Protocol == ProtoQuantitative; with one it runs the named contract
	// protocols. It cannot be combined with the Strategies or Faults axes,
	// which are simulator-scheduler machinery (use runtime.Scheduled
	// directly for that).
	Backends []string
	// Protocols, when non-empty, crosses every run with the named contract
	// protocol specs from the runtime registry (the internal/zoo protocols
	// plus "dfs-election"), replacing the classic Protocol kind. Each cell
	// runs either on the named Backends or — when Backends is empty — on
	// the simulator through runtime.AsSimProtocol, where it composes with
	// the Strategies and Faults axes. Runs are checked against the
	// protocol's own central oracle (zoo.Predict) under its verdict mode.
	Protocols []string
}

// Run is one unit of campaign work: a named instance plus an adversary seed
// and, optionally, an adversary scheduling strategy.
type Run struct {
	// Instance names the (graph, homes) pair, e.g. "cycle12[0 4 8]".
	Instance string
	G        *graph.Graph
	Homes    []int
	Seed     int64
	Protocol ProtocolKind
	// Strategy names the adversary scheduling strategy driving the run
	// ("" = free-running simulator).
	Strategy string
	// Fault names the fault strategy injected into the run ("" = fault-free).
	Fault string
	// Backend names the runtime backend executing the run ("" = the classic
	// simulator path; otherwise one of runtime.Backends()).
	Backend string
	// ProtoSpec names the contract protocol spec executing the run ("" =
	// the classic Protocol kind; otherwise a runtime-registry spec such as
	// "zoo-dp" or "dfs-election", run on Backend or through the simulator
	// adapter).
	ProtoSpec string
}

// Expand turns the spec into its deterministic work list. Each (family,
// size) pair builds its graph exactly once, so every seed of an instance
// shares the same *graph.Graph value (and therefore the same analysis-cache
// entry).
func (s Spec) Expand() ([]Run, error) {
	if s.Seeds.Count() == 0 {
		return nil, fmt.Errorf("campaign: empty seed range [%d, %d]", s.Seeds.From, s.Seeds.To)
	}
	proto := s.Protocol
	if proto == "" {
		proto = ProtoElect
	}
	if _, err := protocolFor(proto, Options{}); err != nil {
		return nil, err
	}
	strategies := s.Strategies
	if len(strategies) == 0 {
		if len(s.Faults) > 0 {
			// Fault injection rides on the serializing scheduler; give fault
			// sweeps a deterministic default rather than rejecting them.
			strategies = []string{"random"}
		} else {
			strategies = []string{""}
		}
	}
	for _, st := range strategies {
		if st == "" {
			continue
		}
		if _, err := adversary.NewStrategy(st, 0, nil); err != nil {
			return nil, err
		}
	}
	faultAxis := s.Faults
	if len(faultAxis) == 0 {
		faultAxis = []string{""}
	}
	for _, fs := range faultAxis {
		if fs == "" {
			continue
		}
		if _, err := faults.New(fs, 0, 1, nil); err != nil {
			return nil, err
		}
	}
	protoAxis := s.Protocols
	if len(protoAxis) == 0 {
		protoAxis = []string{""}
	} else {
		for _, ps := range protoAxis {
			if _, err := runtime.FromSpec(ps); err != nil {
				return nil, err
			}
		}
	}
	backendAxis := s.Backends
	if len(backendAxis) == 0 {
		backendAxis = []string{""}
	} else {
		if len(s.Protocols) == 0 && proto != ProtoQuantitative {
			return nil, fmt.Errorf("campaign: the backend axis runs the contract election and needs -protocol quantitative (or a -protocols axis), not %q", proto)
		}
		if len(s.Strategies) > 0 || len(s.Faults) > 0 {
			return nil, fmt.Errorf("campaign: the backend axis cannot be combined with strategy or fault axes")
		}
		for _, b := range backendAxis {
			if _, err := runtime.New(b); err != nil {
				return nil, err
			}
		}
	}
	var runs []Run
	for _, f := range s.Families {
		sizes := f.Sizes
		if len(sizes) == 0 {
			sizes = []int{0}
		}
		for _, size := range sizes {
			g, err := BuildGraph(f.Family, size)
			if err != nil {
				return nil, err
			}
			placements := f.Homes
			if len(placements) == 0 {
				placements, err = expandPlacement(f.Placement, f.R, g.N())
				if err != nil {
					return nil, fmt.Errorf("campaign: %s%d: %w", f.Family, size, err)
				}
			}
			for _, homes := range placements {
				for _, h := range homes {
					if h < 0 || h >= g.N() {
						return nil, fmt.Errorf("campaign: %s%d: home %d out of range", f.Family, size, h)
					}
				}
				name := instanceName(f.Family, size, homes)
				for _, strat := range strategies {
					for _, fs := range faultAxis {
						for _, ps := range protoAxis {
							for _, backend := range backendAxis {
								for seed := s.Seeds.From; seed <= s.Seeds.To; seed++ {
									runs = append(runs, Run{
										Instance: name, G: g, Homes: homes, Seed: seed,
										Protocol: proto, Strategy: strat, Fault: fs,
										Backend: backend, ProtoSpec: ps,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("campaign: spec expands to no runs")
	}
	return runs, nil
}

func instanceName(family string, size int, homes []int) string {
	if family == "petersen" {
		return fmt.Sprintf("petersen%v", homes)
	}
	return fmt.Sprintf("%s%d%v", family, size, homes)
}

// expandPlacement resolves a placement strategy against a graph of n nodes.
func expandPlacement(strategy string, r, n int) ([][]int, error) {
	if r <= 0 {
		r = 1
	}
	switch strategy {
	case "", "spread":
		if r > n {
			return nil, fmt.Errorf("placement spread: r=%d exceeds n=%d", r, n)
		}
		homes := make([]int, r)
		for i := range homes {
			homes[i] = i * n / r
		}
		return [][]int{homes}, nil
	case "adjacent":
		if r > n {
			return nil, fmt.Errorf("placement adjacent: r=%d exceeds n=%d", r, n)
		}
		homes := make([]int, r)
		for i := range homes {
			homes[i] = i
		}
		return [][]int{homes}, nil
	case "antipodal":
		if n < 2 {
			return nil, fmt.Errorf("placement antipodal: need n >= 2, have %d", n)
		}
		return [][]int{{0, n / 2}}, nil
	case "single":
		return [][]int{{0}}, nil
	default:
		return nil, fmt.Errorf("unknown placement strategy %q", strategy)
	}
}

// BuildGraph instantiates a named graph family (the registry shared by the
// campaign spec and the CLIs).
func BuildGraph(family string, size int) (*graph.Graph, error) {
	switch family {
	case "path":
		return graph.Path(size), nil
	case "cycle":
		return graph.Cycle(size), nil
	case "complete":
		return graph.Complete(size), nil
	case "star":
		return graph.Star(size), nil
	case "hypercube":
		return graph.Hypercube(size), nil
	case "torus":
		return graph.Torus(size, size), nil
	case "grid":
		return graph.Grid(size, size), nil
	case "petersen":
		return graph.Petersen(), nil
	case "wheel":
		return graph.Wheel(size), nil
	case "prism":
		return graph.Prism(size), nil
	case "ccc":
		return graph.CCC(size), nil
	case "random":
		return graph.RandomConnected(size, size/2, 42), nil
	default:
		return nil, fmt.Errorf("campaign: unknown graph family %q", family)
	}
}

// ParseFamilies parses the CLI family syntax: semicolon-separated
// "family:size1,size2,..." entries, e.g. "cycle:9,12,15;hypercube:3,4".
// Families without sizes ("petersen") omit the colon part.
func ParseFamilies(s string, placement string, r int) ([]FamilySpec, error) {
	var out []FamilySpec
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, sizesPart, hasSizes := strings.Cut(entry, ":")
		f := FamilySpec{Family: strings.TrimSpace(name), Placement: placement, R: r}
		if hasSizes {
			for _, tok := range strings.Split(sizesPart, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil {
					return nil, fmt.Errorf("campaign: bad size %q in %q: %w", tok, entry, err)
				}
				f.Sizes = append(f.Sizes, v)
			}
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: no families in %q", s)
	}
	return out, nil
}

// parseAxis parses one comma-separated campaign axis: "" means the axis is
// absent (nil, nil), the token "all" expands through the axis's full list,
// every other token is validated by check, and duplicates collapse to their
// first occurrence. All the CLI axis parsers (strategies, faults, backends,
// protocols) are this one function with the axis's own expansion and
// validation plugged in.
func parseAxis(s string, all func() []string, check func(string) error) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []string
	seen := make(map[string]bool)
	add := func(name string) error {
		if seen[name] {
			return nil
		}
		if err := check(name); err != nil {
			return err
		}
		seen[name] = true
		out = append(out, name)
		return nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if tok == "all" {
			for _, name := range all() {
				if err := add(name); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := add(tok); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ParseStrategies parses the CLI strategy syntax: comma-separated adversary
// strategy names, with "all" expanding to every built-in and "" meaning no
// strategy axis (free-running runs).
func ParseStrategies(s string) ([]string, error) {
	return parseAxis(s, adversary.Strategies, func(name string) error {
		_, err := adversary.NewStrategy(name, 0, nil)
		return err
	})
}

// ParseFaults parses the CLI fault syntax: comma-separated fault strategy
// names (see internal/faults), with "all" expanding to every built-in and ""
// meaning no fault axis.
func ParseFaults(s string) ([]string, error) {
	return parseAxis(s, faults.Strategies, func(name string) error {
		_, err := faults.New(name, 0, 1, nil)
		return err
	})
}

// ParseBackends parses the CLI backend syntax: comma-separated runtime
// backend names (see internal/runtime), with "all" expanding to every
// backend and "" meaning no backend axis (the classic simulator path).
func ParseBackends(s string) ([]string, error) {
	return parseAxis(s, runtime.Backends, func(name string) error {
		_, err := runtime.New(name)
		return err
	})
}

// ParseProtocols parses the CLI protocol-spec syntax: comma-separated
// runtime-registry specs (see internal/zoo and runtime.FromSpec), with
// "all" expanding to every zoo protocol plus the contract election and ""
// meaning no protocol axis (the classic Protocol kind).
func ParseProtocols(s string) ([]string, error) {
	return parseAxis(s, func() []string {
		return append(zoo.Specs(), "dfs-election")
	}, func(name string) error {
		_, err := runtime.FromSpec(name)
		return err
	})
}

// ParseSeedRange parses "a..b" (inclusive) or a single seed "a".
func ParseSeedRange(s string) (SeedRange, error) {
	s = strings.TrimSpace(s)
	lo, hi, isRange := strings.Cut(s, "..")
	from, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return SeedRange{}, fmt.Errorf("campaign: bad seed %q: %w", lo, err)
	}
	if !isRange {
		return SeedRange{From: from, To: from}, nil
	}
	to, err := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
	if err != nil {
		return SeedRange{}, fmt.Errorf("campaign: bad seed %q: %w", hi, err)
	}
	return SeedRange{From: from, To: to}, nil
}
