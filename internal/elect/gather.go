package elect

import (
	"errors"

	"repro/internal/sim"
)

// tagGathered is written by each agent on the rendezvous node's whiteboard.
const tagGathered = "gathered"

// Gather returns the rendezvous protocol built on Protocol ELECT, realizing
// the paper's footnote 2: "Once a leader is elected, many other
// computational tasks become straightforward. Such is the case for the
// gathering or rendezvous problem."
//
// Every agent runs ELECT; if a leader emerges, the defeated agents look up
// the leader's home-base on their own maps (they know the leader's color
// from the announcement, and MAP-DRAWING recorded which home-base carries
// which color), walk there, and stamp the board. All agents — leader
// included — wait until all r stamps are present, so when the protocol
// returns successfully every agent is physically at the rendezvous node and
// knows the gathering is complete. If ELECT determines election (and hence
// this gathering strategy) impossible, every agent reports unsolvable.
func Gather(opt Options) sim.Protocol {
	return func(a *sim.Agent) (sim.Outcome, error) {
		m, err := MapDraw(a)
		if err != nil {
			return sim.Outcome{}, err
		}
		k := newKnowledge(a, m, opt.Ordering)
		out, err := runReduction(k)
		if err != nil || out.Role == sim.RoleUnsolvable {
			return out, err
		}
		r := m.R()
		var target int
		switch out.Role {
		case sim.RoleLeader:
			target = m.Home
		case sim.RoleDefeated:
			target = -1
			for v, cs := range m.HomeColors {
				for _, c := range cs {
					if c.Equal(out.Leader) {
						target = v
						break
					}
				}
				if target != -1 {
					break
				}
			}
			if target == -1 {
				return sim.Outcome{}, errors.New("elect: leader's home-base not on the map")
			}
		default:
			return sim.Outcome{}, errors.New("elect: reduction ended in an unexpected role")
		}
		if err := k.moveTo(target); err != nil {
			return sim.Outcome{}, err
		}
		if err := k.a.Access(func(b *sim.Board) { b.Write(tagGathered) }); err != nil {
			return sim.Outcome{}, err
		}
		if _, err := k.a.Wait(func(ss sim.Signs) bool {
			return ss.CountColors(tagGathered) >= r
		}); err != nil {
			return sim.Outcome{}, err
		}
		return out, nil
	}
}
