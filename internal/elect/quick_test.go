package elect

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestScheduleProperties checks the deterministic reduction plan against
// the arithmetic it implements, over random class-size vectors:
//
//   - the final |D| equals gcd of all sizes whenever the gcd is reached
//     before classes run out (it always is, since every class is offered),
//     or 1 if the chain hits 1 early;
//   - every executed phase strictly reduces d;
//   - agent-phase rounds follow subtractive Euclid (s <= w throughout,
//     ending equal); node-phase rounds keep quotas consistent with the
//     positive-remainder decomposition.
func TestScheduleProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(7)
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(12)
		}
		numBlack := 1 + rng.Intn(k)
		sc := computeSchedule(sizes, numBlack)

		want := sizes[0]
		for _, s := range sizes[1:] {
			want = gcdInt(want, s)
		}
		if sc.finalD != want {
			// The chain visits every class, so the final d is the full gcd.
			return false
		}
		d := sizes[0]
		for _, p := range sc.phases {
			if p.dOut >= p.dIn {
				return false // executed phases must strictly reduce d
			}
			if p.dIn != d {
				return false
			}
			if p.kind == phaseAgent {
				s, w := p.dIn, sizes[p.classIdx]
				if !p.dSearches {
					s, w = w, s
				}
				for _, r := range p.rounds {
					if r.s != s || r.w != w || s >= w {
						return false
					}
					if r.swap != (w-s < s) {
						return false
					}
					if r.swap {
						s, w = w-s, s
					} else {
						w -= s
					}
				}
				if s != w || s != p.dOut {
					return false
				}
			} else {
				alpha, beta := p.dIn, sizes[p.classIdx]
				for _, r := range p.rounds {
					if r.alpha != alpha || r.beta != beta {
						return false
					}
					if r.case1 != (alpha > beta) {
						return false
					}
					if r.case1 {
						rho := alpha - r.q*beta
						if rho <= 0 || rho > beta {
							return false
						}
						alpha = rho
					} else {
						rho := beta - r.q*alpha
						if rho <= 0 || rho > alpha {
							return false
						}
						beta = rho
					}
				}
				if alpha != beta || alpha != p.dOut {
					return false
				}
			}
			d = p.dOut
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestScheduleSkipsOnlyNoOps: every class the plan skips would indeed have
// left |D| unchanged, and every class it runs changes it.
func TestScheduleSkipsOnlyNoOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(10)
		}
		numBlack := 1 + rng.Intn(k)
		sc := computeSchedule(sizes, numBlack)
		ran := map[int]bool{}
		for _, p := range sc.phases {
			ran[p.classIdx] = true
			if gcdInt(p.dIn, sizes[p.classIdx]) == p.dIn {
				return false // ran a no-op phase
			}
		}
		// Walk the chain and confirm skipped classes are no-ops.
		d := sizes[0]
		for i := 1; i < k && d > 1; i++ {
			if ran[i] {
				d = gcdInt(d, sizes[i])
				continue
			}
			if gcdInt(d, sizes[i]) != d {
				return false // skipped a class that would have reduced d
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
