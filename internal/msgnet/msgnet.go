// Package msgnet implements the paper's Figure 1: the generic transformation
// of a mobile-agent protocol into a distributed protocol for an anonymous
// processor network. "A message is an agent": each processor's memory is its
// whiteboard; upon receiving a message (P, M) the processor executes the
// agent program P with memory M against its whiteboard, and if the execution
// leads to a move through the edge labeled i, it sends (P, M') through that
// edge.
//
// The transformation is what lets Theorem 2.1 import Yamashita–Kameda's
// processor-network impossibility results into the mobile world. To make it
// executable, agent programs are modeled as serializable state machines
// (Machine): a pure step function from (memory string, local view) to (new
// memory, action). The same machine can then be run two ways:
//
//   - RunMobile: agents walk the graph carrying their memory (the mobile
//     world of the rest of this repository, in miniature);
//   - RunTransformed: processors exchange (program, memory) messages per
//     Figure 1 — the agent IS the message.
//
// Both runners draw scheduling decisions from the same seeded source, and
// the tests verify the executions produce identical outcomes — the
// executable content of the transformation's correctness.
package msgnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// View is what a machine observes when it executes at a node.
type View struct {
	// Degree of the current node.
	Degree int
	// Labels[p] is the label of port p under the network's edge-labeling.
	Labels []int
	// Entry is the label of the port the agent arrived through (-1 at the
	// home-base before any move).
	Entry int
	// Board is the sorted multiset of marks on the node's whiteboard.
	Board []string
	// ID is the agent's integer identity (the quantitative world — this
	// package exists for the Figure 1 transformation, which the paper
	// applies to arbitrary protocols; identities make demo machines easy).
	ID int
}

// Action is what a machine decides after a step.
type Action struct {
	// Write lists marks to add to the current whiteboard (before moving).
	Write []string
	// MoveLabel, when >= 0, moves the agent through the port with that
	// label. -1 means stay parked at the node; a parked agent is re-stepped
	// whenever the node's whiteboard changes.
	MoveLabel int
	// Halt, when non-empty, ends the agent with this outcome.
	Halt string
}

// Machine is a serializable agent program: a pure function of the carried
// memory and the local view. It must be deterministic.
type Machine func(memory string, v View) (newMemory string, act Action)

// Config describes a run.
type Config struct {
	G      *graph.Graph
	Labels graph.EdgeLabeling
	Homes  []int
	Seed   int64
	// MaxSteps bounds total machine steps (default 100k) — runaway guard.
	MaxSteps int
}

// Result reports the outcomes (by agent index) and step count.
type Result struct {
	Outcomes []string
	Steps    int
}

func (c *Config) validate() error {
	if c.G == nil || c.G.N() == 0 {
		return errors.New("msgnet: empty graph")
	}
	if err := c.Labels.Validate(c.G); err != nil {
		return err
	}
	if len(c.Homes) == 0 {
		return errors.New("msgnet: no agents")
	}
	for _, h := range c.Homes {
		if h < 0 || h >= c.G.N() {
			return fmt.Errorf("msgnet: home %d out of range", h)
		}
	}
	return nil
}

// agentCore is the shared execution state of one agent in either runner.
type agentCore struct {
	memory string
	node   int
	entry  int // label of entry port, -1 initially
	halted string
	// parkedSeen is the board revision the agent last observed while
	// parked; it is re-stepped only after a change.
	parkedSeen int
}

type world struct {
	cfg    Config
	boards [][]string
	rev    []int // board revision counters
	agents []*agentCore
	steps  int
	rng    *rand.Rand
}

func newWorld(cfg Config) (*world, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 100_000
	}
	w := &world{
		cfg:    cfg,
		boards: make([][]string, cfg.G.N()),
		rev:    make([]int, cfg.G.N()),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, h := range cfg.Homes {
		w.agents = append(w.agents, &agentCore{node: h, entry: -1, parkedSeen: -1})
		_ = i
	}
	return w, nil
}

func (w *world) view(a *agentCore, id int) View {
	v := View{
		Degree: w.cfg.G.Deg(a.node),
		Labels: append([]int(nil), w.cfg.Labels[a.node]...),
		Entry:  a.entry,
		Board:  append([]string(nil), w.boards[a.node]...),
		ID:     id,
	}
	sort.Strings(v.Board)
	return v
}

// stepAgent executes one machine step for agent i; reports whether the
// agent made progress (acted or halted) so schedulers can avoid busy loops.
func (w *world) stepAgent(m Machine, i int) (bool, error) {
	a := w.agents[i]
	if a.halted != "" {
		return false, nil
	}
	// A parked agent only re-steps after its board changed.
	if a.parkedSeen == w.rev[a.node] {
		return false, nil
	}
	w.steps++
	mem, act := m(a.memory, w.view(a, i+1))
	a.memory = mem
	for _, mark := range act.Write {
		w.boards[a.node] = append(w.boards[a.node], mark)
		w.rev[a.node]++
	}
	if act.Halt != "" {
		a.halted = act.Halt
		return true, nil
	}
	if act.MoveLabel >= 0 {
		moved := false
		for p, h := range w.cfg.G.Ports(a.node) {
			if w.cfg.Labels[a.node][p] == act.MoveLabel {
				a.entry = w.cfg.Labels[h.To][h.Twin]
				a.node = h.To
				a.parkedSeen = -1
				moved = true
				break
			}
		}
		if !moved {
			return false, fmt.Errorf("msgnet: agent %d: no port labeled %d", i, act.MoveLabel)
		}
		return true, nil
	}
	// Stay parked: remember the board revision we decided on.
	a.parkedSeen = w.rev[a.node]
	return true, nil
}

// run drives the world with a seeded random scheduler until every agent
// halts, nothing can make progress (deadlock), or MaxSteps is exhausted.
// Both runners share this loop — the transformation changes the MEANING of
// an activation (an agent walking vs. a message being consumed), not the
// schedule structure, which is the point of the equivalence tests.
func (w *world) run(m Machine) (*Result, error) {
	for w.steps < w.cfg.MaxSteps {
		// Collect runnable agents: not halted and not parked-on-seen-board.
		var runnable []int
		for i, a := range w.agents {
			if a.halted == "" && a.parkedSeen != w.rev[a.node] {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) == 0 {
			break
		}
		i := runnable[w.rng.Intn(len(runnable))]
		if _, err := w.stepAgent(m, i); err != nil {
			return nil, err
		}
	}
	res := &Result{Steps: w.steps, Outcomes: make([]string, len(w.agents))}
	allHalted := true
	for i, a := range w.agents {
		res.Outcomes[i] = a.halted
		if a.halted == "" {
			allHalted = false
		}
	}
	if !allHalted {
		return res, errors.New("msgnet: run ended with unhalted agents (deadlock or step budget)")
	}
	return res, nil
}

// RunMobile executes the machine in the mobile world: agents physically
// walk the network carrying their memory.
func RunMobile(cfg Config, m Machine) (*Result, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	return w.run(m)
}

// message is an agent in transit or in an inbox: "a message is an agent,
// and is of the form (P, M) where P is the program of the agent and M is
// the memory content of the agent" (Figure 1). P is the machine shared by
// all processors; agent carries the index for outcome bookkeeping only.
type message struct {
	agent  int
	memory string
	entry  int // label, at the receiving processor, of the arrival port
}

// parked is an agent whose last execution neither moved nor halted: it
// waits at the processor until the whiteboard changes.
type parked struct {
	agent   int
	memory  string
	entry   int
	seenRev int
}

// RunTransformed executes the machine through the Figure 1 transformation:
// a network of processors, each owning a whiteboard (its memory) and an
// inbox of (program, memory) messages. Processing a message means running
// the agent program against the local whiteboard; a move becomes a send, a
// stay becomes parking the message until the whiteboard changes, and the
// initial wake-up is the fictitious first delivery at the home processor
// ("the processor starts executing the program from the second instruction,
// as if it would have received a message").
//
// The scheduler picks a random busy processor each round, so schedules are
// NOT step-for-step identical to RunMobile's — the equivalence the tests
// assert is the protocol-level one the paper needs: the same machine elects
// the same leader (and produces the same outcome multiset) in both worlds.
func RunTransformed(cfg Config, m Machine) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 100_000
	}
	n := cfg.G.N()
	boards := make([][]string, n)
	rev := make([]int, n)
	inbox := make([][]message, n)
	park := make([][]parked, n)
	outcomes := make([]string, len(cfg.Homes))
	halted := 0
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initial deliveries at the home processors.
	for i, h := range cfg.Homes {
		inbox[h] = append(inbox[h], message{agent: i, memory: "", entry: -1})
	}

	viewAt := func(v int, entry, id int) View {
		out := View{
			Degree: cfg.G.Deg(v),
			Labels: append([]int(nil), cfg.Labels[v]...),
			Entry:  entry,
			Board:  append([]string(nil), boards[v]...),
			ID:     id,
		}
		sort.Strings(out.Board)
		return out
	}
	// execute runs one Figure 1 activation at processor v and returns an
	// error for malformed moves.
	execute := func(v int, agent int, memory string, entry int) error {
		mem, act := m(memory, viewAt(v, entry, agent+1))
		for _, mark := range act.Write {
			boards[v] = append(boards[v], mark)
			rev[v]++
		}
		if act.Halt != "" {
			outcomes[agent] = act.Halt
			halted++
			return nil
		}
		if act.MoveLabel >= 0 {
			for p, h := range cfg.G.Ports(v) {
				if cfg.Labels[v][p] == act.MoveLabel {
					inbox[h.To] = append(inbox[h.To], message{
						agent:  agent,
						memory: mem,
						entry:  cfg.Labels[h.To][h.Twin],
					})
					return nil
				}
			}
			return fmt.Errorf("msgnet: no port labeled %d at processor %d", act.MoveLabel, v)
		}
		park[v] = append(park[v], parked{agent: agent, memory: mem, entry: entry, seenRev: rev[v]})
		return nil
	}

	steps := 0
	for steps < cfg.MaxSteps && halted < len(cfg.Homes) {
		// Busy processors: nonempty inbox, or a parked agent whose board
		// has changed since it parked.
		var busy []int
		for v := 0; v < n; v++ {
			if len(inbox[v]) > 0 {
				busy = append(busy, v)
				continue
			}
			for _, pk := range park[v] {
				if pk.seenRev != rev[v] {
					busy = append(busy, v)
					break
				}
			}
		}
		if len(busy) == 0 {
			break
		}
		v := busy[rng.Intn(len(busy))]
		steps++
		if len(inbox[v]) > 0 {
			// FIFO delivery.
			msg := inbox[v][0]
			inbox[v] = inbox[v][1:]
			if err := execute(v, msg.agent, msg.memory, msg.entry); err != nil {
				return nil, err
			}
			continue
		}
		// Re-step the first re-steppable parked agent.
		for idx, pk := range park[v] {
			if pk.seenRev != rev[v] {
				park[v] = append(park[v][:idx], park[v][idx+1:]...)
				if err := execute(v, pk.agent, pk.memory, pk.entry); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	res := &Result{Steps: steps, Outcomes: outcomes}
	if halted < len(cfg.Homes) {
		return res, errors.New("msgnet: transformed run ended with unhalted agents")
	}
	return res, nil
}
