package elect

import (
	"testing"

	"repro/internal/sim"
)

// TestCheckInvariantsModes proves the verdict-mode split of InvariantSpec:
// the same terminal configurations that fail the strong contract (a
// defeated agent that cannot name the winner) satisfy weak election and
// selection, and a unanimous failure report — fine under strong and weak —
// is outlawed under selection.
func TestCheckInvariantsModes(t *testing.T) {
	// One leader; one defeated agent acknowledges it, one concedes without
	// naming anyone — the terminal shape of a weak-election protocol.
	conceded := fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated, sim.RoleDefeated}, []int{0, 0, -1}, 10)
	// One leader, but a defeated agent names somebody else entirely.
	wrongAck := fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated}, []int{0, 1}, 10)
	// Everybody reports failure.
	failure := fakeResult([]sim.Role{sim.RoleUnsolvable, sim.RoleUnsolvable}, []int{-1, -1}, 10)
	// Two leaders stay illegal in every mode.
	twoLeaders := fakeResult([]sim.Role{sim.RoleLeader, sim.RoleLeader}, []int{0, 1}, 10)

	cases := []struct {
		name string
		res  *sim.Result
		spec InvariantSpec
		want []ViolationCode
	}{
		{
			name: "strong rejects an unnamed concession",
			res:  conceded,
			spec: InvariantSpec{Expected: "leader", Mode: ModeStrong},
			want: []ViolationCode{VioNoAgreement, VioWrongVerdict},
		},
		{
			name: "weak accepts an unnamed concession",
			res:  conceded,
			spec: InvariantSpec{Expected: "leader", Mode: ModeWeak},
		},
		{
			name: "selection accepts an unnamed concession",
			res:  conceded,
			spec: InvariantSpec{Expected: "leader", Mode: ModeSelection},
		},
		{
			name: "weak still rejects a wrong acknowledgment",
			res:  wrongAck,
			spec: InvariantSpec{Expected: "leader", Mode: ModeWeak},
			want: []ViolationCode{VioNoAgreement, VioWrongVerdict},
		},
		{
			name: "weak accepts a unanimous failure",
			res:  failure,
			spec: InvariantSpec{Expected: "unsolvable", Mode: ModeWeak},
		},
		{
			name: "selection outlaws a unanimous failure",
			res:  failure,
			spec: InvariantSpec{Expected: "leader", Mode: ModeSelection},
			want: []ViolationCode{VioNoAgreement, VioWrongVerdict},
		},
		{
			name: "selection outlaws failure even without an oracle",
			res:  failure,
			spec: InvariantSpec{Mode: ModeSelection},
			want: []ViolationCode{VioNoAgreement},
		},
		{
			name: "weak still rejects two leaders",
			res:  twoLeaders,
			spec: InvariantSpec{Expected: "leader", Mode: ModeWeak},
			want: []ViolationCode{VioMultipleLeaders, VioNoAgreement, VioWrongVerdict},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CheckInvariants(tc.res, nil, tc.spec)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want codes %v", got, tc.want)
			}
			for _, w := range tc.want {
				if !hasCode(got, w) {
					t.Fatalf("missing %s in %v", w, codes(got))
				}
			}
		})
	}
}

// TestElected pins the exported mode-aware success predicate the campaign's
// protocol axis classifies outcomes with.
func TestElected(t *testing.T) {
	conceded := fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated}, []int{0, -1}, 10)
	if Elected(conceded, ModeStrong) {
		t.Fatal("strong accepted a defeated agent that named nobody")
	}
	if !Elected(conceded, ModeWeak) || !Elected(conceded, ModeSelection) {
		t.Fatal("weak/selection rejected a clean concession")
	}
	named := fakeResult([]sim.Role{sim.RoleLeader, sim.RoleDefeated}, []int{0, 0}, 10)
	if !Elected(named, ModeStrong) || !Elected(named, ModeWeak) {
		t.Fatal("a fully named election should satisfy every mode")
	}
	failure := fakeResult([]sim.Role{sim.RoleUnsolvable, sim.RoleUnsolvable}, []int{-1, -1}, 10)
	for _, m := range []VerdictMode{ModeStrong, ModeWeak, ModeSelection} {
		if Elected(failure, m) {
			t.Fatalf("mode %q elected a unanimous failure", m)
		}
	}
}
