package exp

import (
	"fmt"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/msgnet"
)

// RunFig1Experiment (E12) exercises the paper's Figure 1 — the generic
// transformation of a mobile-agent protocol into a protocol for an
// anonymous processor network ("a message is an agent"). The Chang–Roberts
// ring election machine is run both as walking agents and as (program,
// memory) messages between processors; across sizes and schedules both
// worlds elect the same leader with identical per-agent outcomes.
func RunFig1Experiment(seed int64) (string, error) {
	var cells [][]string
	for _, n := range []int{3, 5, 8, 12, 16} {
		homes := make([]int, n)
		for i := range homes {
			homes[i] = i
		}
		cfg := msgnet.Config{
			G:      graph.Cycle(n),
			Labels: elect.OrientedCycleLabeling(n),
			Homes:  homes,
			Seed:   seed,
		}
		mobile, err := msgnet.RunMobile(cfg, msgnet.ChangRoberts(1))
		if err != nil {
			return "", fmt.Errorf("mobile n=%d: %w", n, err)
		}
		cfg.Seed = seed * 101
		transformed, err := msgnet.RunTransformed(cfg, msgnet.ChangRoberts(1))
		if err != nil {
			return "", fmt.Errorf("transformed n=%d: %w", n, err)
		}
		same := true
		leader := -1
		for i := range mobile.Outcomes {
			if mobile.Outcomes[i] != transformed.Outcomes[i] {
				same = false
			}
			if mobile.Outcomes[i] == "leader" {
				leader = i
			}
		}
		if !same || leader != n-1 {
			return "", fmt.Errorf("n=%d: equivalence broken (leader %d, same %v)", n, leader, same)
		}
		cells = append(cells, []string{
			fmt.Sprintf("C%d (r=%d)", n, n),
			fmt.Sprintf("agent %d (max id)", leader),
			fmt.Sprint(mobile.Steps), fmt.Sprint(transformed.Steps),
			"identical",
		})
	}
	out := Table(
		[]string{"ring", "elected", "mobile steps", "message steps", "outcomes"},
		cells)
	out += "\nThe same agent program (Chang-Roberts) elects the same leader whether agents\nwalk or travel as messages — Figure 1's transformation, executed.\n"
	return out, nil
}
