package campaign

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/telemetry/sketch"
)

// syntheticResults builds n plausible run records spanning the summary's
// aggregation branches: successes across a wide move range, errors,
// fault runs with crashes, strategy runs with violations, canceled runs.
func syntheticResults(n int, seed int64) []RunResult {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RunResult, n)
	for i := range out {
		r := RunResult{
			Index: i, Instance: "cycle12[0 4 8]", Protocol: "elect",
			N: 12, M: 12, R: 3, Seed: int64(i), Attempts: 1 + rng.Intn(2),
			ElapsedMS: rng.Float64() * 3,
		}
		switch k := rng.Intn(20); {
		case k == 0:
			r.Outcome, r.Err = "error", "sim: aborted"
			r.Aborted = true
		case k == 1:
			r.Outcome = "canceled"
			r.Err = "campaign: canceled before run started"
			r.Attempts = 0
		case k == 2:
			r.Outcome, r.Fault = "leader", "crash-frontrunner"
			r.Crashed = rng.Intn(3)
			r.Takeovers = int64(rng.Intn(2))
			r.FaultEvents = r.Crashed
			r.OK = true
			r.Moves = int64(100 + rng.Intn(100000))
		case k == 3:
			r.Outcome, r.Strategy = "leader", "starve"
			r.Violations = []elect.Violation{{Code: elect.ViolationCode("move-bound"), Detail: "x"}}
			r.OK = false
			r.Moves = int64(100 + rng.Intn(100000))
		default:
			r.Outcome = "leader"
			r.OK = true
			r.Moves = int64(50 + rng.Intn(1_000_000))
		}
		if r.Outcome != "canceled" && r.Err == "" {
			r.Accesses = r.Moves * int64(2+rng.Intn(3))
			r.Ratio = float64(r.Moves) / float64(r.R*r.M)
			r.PhaseMoves = map[string]int64{"mapdraw": r.Moves / 2, "order": r.Moves / 4}
			r.PhaseAccesses = map[string]int64{"mapdraw": r.Accesses / 2}
		}
		out[i] = r
	}
	return out
}

// foldShards folds results into nShards sketch aggregators and merges
// them in a seeded random order.
func foldShards(results []RunResult, nShards int, seed int64, bound float64) *aggregator {
	rng := rand.New(rand.NewSource(seed))
	shards := make([]*aggregator, nShards)
	for i := range shards {
		shards[i] = newAggregator(false, bound)
	}
	for _, r := range results {
		shards[rng.Intn(nShards)].add(r)
	}
	total := newAggregator(false, bound)
	for _, i := range rng.Perm(nShards) {
		total.merge(shards[i])
	}
	return total
}

// withinSketchError asserts the streamed percentile is within the
// documented bucket error of the exact one.
func withinSketchError(t *testing.T, name string, got, want int64) {
	t.Helper()
	if got < want || float64(got) > float64(want)*(1+sketch.RelativeError)+1 {
		t.Errorf("%s: streamed %d vs exact %d outside the documented sketch error", name, got, want)
	}
}

// TestStreamedSummaryDifferential is the acceptance differential: 10⁴
// synthetic runs folded through randomly-ordered sketch shards must
// reproduce the buffered exact summary — counters bit for bit,
// percentiles within sketch.RelativeError.
func TestStreamedSummaryDifferential(t *testing.T) {
	const n = 10_000
	results := syntheticResults(n, 42)

	exactAgg := newAggregator(true, 40)
	for _, r := range results {
		exactAgg.add(r)
	}
	exact := exactAgg.summary(4, 100, 7, 3, 5)

	for _, shards := range []int{1, 3, 8} {
		streamed := foldShards(results, shards, int64(shards), 40).summary(4, 100, 7, 3, 5)

		// Everything that is not a percentile must agree exactly.
		if streamed.Runs != exact.Runs || streamed.Errors != exact.Errors ||
			streamed.Canceled != exact.Canceled || streamed.Retries != exact.Retries ||
			streamed.Aborted != exact.Aborted || streamed.Mismatches != exact.Mismatches ||
			streamed.InvariantViolations != exact.InvariantViolations ||
			streamed.FaultRuns != exact.FaultRuns || streamed.CrashedAgents != exact.CrashedAgents ||
			streamed.FaultErrors != exact.FaultErrors || streamed.FaultEvents != exact.FaultEvents ||
			streamed.Takeovers != exact.Takeovers ||
			streamed.BoundViolations != exact.BoundViolations ||
			streamed.RatioMax != exact.RatioMax {
			t.Fatalf("shards=%d: streamed counters diverge from exact:\nstreamed %+v\nexact %+v", shards, streamed, exact)
		}
		for k, v := range exact.Outcomes {
			if streamed.Outcomes[k] != v {
				t.Fatalf("shards=%d: outcome %q: %d vs %d", shards, k, streamed.Outcomes[k], v)
			}
		}

		withinSketchError(t, "moves_p50", streamed.MovesP50, exact.MovesP50)
		withinSketchError(t, "moves_p90", streamed.MovesP90, exact.MovesP90)
		withinSketchError(t, "moves_p99", streamed.MovesP99, exact.MovesP99)
		withinSketchError(t, "accesses_p50", streamed.AccessP50, exact.AccessP50)
		withinSketchError(t, "accesses_p90", streamed.AccessP90, exact.AccessP90)
		withinSketchError(t, "accesses_p99", streamed.AccessP99, exact.AccessP99)
		withinSketchError(t, "crashed_p50", streamed.CrashedP50, exact.CrashedP50)
		withinSketchError(t, "crashed_p90", streamed.CrashedP90, exact.CrashedP90)
		// Ratio rides the fixed-point scale: allow sketch error plus one
		// quantization step.
		for _, pair := range [][2]float64{{streamed.RatioP50, exact.RatioP50}, {streamed.RatioP90, exact.RatioP90}} {
			if pair[0] < pair[1]-1.0/ratioScale || pair[0] > pair[1]*(1+sketch.RelativeError)+1.0/ratioScale {
				t.Errorf("shards=%d: ratio percentile %v vs exact %v outside bound", shards, pair[0], pair[1])
			}
		}
		for name, est := range streamed.Phases {
			if est.Moves != exact.Phases[name].Moves || est.Accesses != exact.Phases[name].Accesses {
				t.Errorf("phase %s totals diverge: %+v vs %+v", name, est, exact.Phases[name])
			}
			withinSketchError(t, "phase "+name+" moves_p50", est.MovesP50, exact.Phases[name].MovesP50)
		}

		if !streamed.Streamed || streamed.SketchRelErr != sketch.RelativeError {
			t.Fatalf("streamed summary must document its error: %+v", streamed)
		}
		if exact.Streamed || exact.SketchRelErr != 0 {
			t.Fatalf("exact summary must not claim streaming: %+v", exact)
		}
		// Violation sketch: every recorded signature is counted (count-min
		// never under-estimates).
		if len(streamed.TopViolations) == 0 {
			t.Fatal("streamed summary lost the violation signatures")
		}
		for _, v := range streamed.TopViolations {
			if !strings.HasPrefix(v.Signature, "move-bound|") || v.Count < int64(exact.InvariantViolations) {
				t.Errorf("violation %+v under-counts the %d violating runs", v, exact.InvariantViolations)
			}
		}
	}
}

// TestStreamingCampaignEndToEnd runs a real (small) campaign both ways:
// StreamOn must discard per-run results, keep counters identical to the
// buffered run, and stay within sketch error on percentiles.
func TestStreamingCampaignEndToEnd(t *testing.T) {
	spec := Spec{
		Families: []FamilySpec{{Family: "cycle", Sizes: []int{6, 9}, Placement: "spread", R: 3}},
		Seeds:    SeedRange{From: 1, To: 10},
	}
	buffered, err := Execute(spec, Options{Workers: 4, Stream: StreamOff})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Execute(spec, Options{Workers: 4, Stream: StreamOn})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Results != nil {
		t.Fatalf("streamed campaign buffered %d results", len(streamed.Results))
	}
	if !streamed.Summary.Streamed || buffered.Summary.Streamed {
		t.Fatal("Streamed flag wrong way around")
	}
	if streamed.Summary.Runs != buffered.Summary.Runs ||
		streamed.Summary.Errors != buffered.Summary.Errors ||
		streamed.Summary.Mismatches != buffered.Summary.Mismatches {
		t.Fatalf("streamed counters diverge: %+v vs %+v", streamed.Summary, buffered.Summary)
	}
	// Runs are seeded identically, so the underlying move distributions
	// match; only sketch quantization may differ.
	withinSketchError(t, "moves_p50", streamed.Summary.MovesP50, buffered.Summary.MovesP50)
	withinSketchError(t, "moves_p99", streamed.Summary.MovesP99, buffered.Summary.MovesP99)
	if got := streamed.Failures(); len(got) != 0 {
		t.Fatalf("clean campaign reported failures: %+v", got)
	}
}

// TestStreamingFailureSample: failing runs on a streamed campaign land
// in the bounded failure sample that stands in for Results. Half the
// runs deadlock deterministically (watchdog error, retries disabled).
func TestStreamingFailureSample(t *testing.T) {
	deadlock := func(a *sim.Agent) (sim.Outcome, error) {
		_, err := a.Wait(func(sim.Signs) bool { return false })
		return sim.Outcome{}, err
	}
	real := elect.Elect(elect.Options{})
	g := graph.Cycle(6)
	runs := make([]Run, 8)
	for i := range runs {
		runs[i] = Run{Instance: "cycle6[0 2]", G: g, Homes: []int{0, 2}, Seed: int64(i + 1), Protocol: ProtoElect}
	}
	rep, err := ExecuteRuns(runs, Options{
		Workers:    2,
		Stream:     StreamOn,
		RunTimeout: 50 * time.Millisecond,
		MaxRetries: -1,
		testProtocol: func(r Run, _ int) sim.Protocol {
			if r.Seed%2 == 0 {
				return deadlock
			}
			return real
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Runs != len(runs) {
		t.Fatalf("runs = %d, want %d", rep.Summary.Runs, len(runs))
	}
	if rep.Results != nil {
		t.Fatal("streamed campaign must not buffer results")
	}
	if rep.Summary.Errors != 4 {
		t.Fatalf("errors = %d, want the 4 deadlocked runs", rep.Summary.Errors)
	}
	fails := rep.Failures()
	if len(fails) != 4 || len(rep.FailureSample) != 4 {
		t.Fatalf("failure sample %d / Failures() %d, want 4", len(rep.FailureSample), len(fails))
	}
	for _, f := range fails {
		if f.Err == "" || f.Seed%2 != 0 {
			t.Fatalf("sampled failure %+v is not one of the deadlocked runs", f)
		}
	}
}

// TestAggregatorMillionRuns exercises the O(1)-memory claim at the
// acceptance scale: folding 10⁶ results through sharded aggregators
// allocates sketch buckets, not per-run records, and the merged counters
// stay exact.
func TestAggregatorMillionRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("million-fold smoke skipped in -short")
	}
	const n = 1_000_000
	rng := rand.New(rand.NewSource(9))
	shards := make([]*aggregator, 8)
	for i := range shards {
		shards[i] = newAggregator(false, 40)
	}
	var r RunResult
	r.Outcome, r.OK = "leader", true
	r.Attempts = 1
	for i := 0; i < n; i++ {
		r.Moves = rng.Int63n(1 << 22)
		r.Accesses = r.Moves * 2
		r.Ratio = float64(r.Moves) / (3 * 12)
		shards[i&7].add(r)
	}
	total := newAggregator(false, 40)
	for _, s := range shards {
		total.merge(s)
	}
	sum := total.summary(8, 1000, 0, 0, 0)
	if sum.Runs != n {
		t.Fatalf("runs = %d, want %d", sum.Runs, n)
	}
	// Uniform distribution: p50 near the midpoint, within sketch error
	// plus sampling noise.
	mid := int64(1 << 21)
	if sum.MovesP50 < mid*95/100 || sum.MovesP50 > mid*106/100 {
		t.Fatalf("moves_p50 = %d, expected ≈%d", sum.MovesP50, mid)
	}
}
