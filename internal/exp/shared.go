package exp

import (
	"fmt"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/order"
	"repro/internal/sim"
)

// RunSharedHomesExperiment (E10) validates the Section 1.2 extension —
// several agents per starting node — in two parts:
//
//  1. a sweep over weighted placements of small graphs comparing the
//     implementation's decision rule (gcd of the weighted-class node counts,
//     after the local-championship reduction) with the exact Theorem 2.1
//     oracle run on the weighted coloring;
//  2. full distributed runs on representative instances, including the
//     placements where the weight asymmetry makes an otherwise-impossible
//     support placement solvable (e.g. C4 with 2+1 antipodal agents).
func RunSharedHomesExperiment(seed int64) (string, error) {
	// Part 1: decision sweep.
	graphs := []Instance{
		{"C4", graph.Cycle(4), nil},
		{"C5", graph.Cycle(5), nil},
		{"C6", graph.Cycle(6), nil},
		{"K4", graph.Complete(4), nil},
		{"Q3", graph.Hypercube(3), nil},
		{"P4", graph.Path(4), nil},
		{"star3", graph.Star(3), nil},
	}
	agree, total := 0, 0
	for _, inst := range graphs {
		n := inst.G.N()
		for _, placement := range weightedPlacements(n) {
			colors := elect.BlackColors(n, placement)
			o := order.ComputeAndOrder(inst.G, colors, order.Direct)
			w, err := labeling.ExistsSymmetricLabeling(inst.G, colors, 0)
			if err != nil {
				return "", fmt.Errorf("%s %v: %w", inst.Name, placement, err)
			}
			total++
			if (o.GCD() == 1) == (w == nil) {
				agree++
			}
		}
	}

	// Part 2: distributed runs.
	reps := []struct {
		name    string
		g       *graph.Graph
		homes   []int
		succeed bool
	}{
		{"K2 2 co-located", graph.Path(2), []int{0, 0}, true},
		{"C5 pair", graph.Cycle(5), []int{0, 0}, true},
		{"C4 2+2 antipodal", graph.Cycle(4), []int{0, 0, 2, 2}, false},
		{"C4 2+1 antipodal", graph.Cycle(4), []int{0, 0, 2}, true},
		{"C6 2+2 antipodal", graph.Cycle(6), []int{0, 0, 3, 3}, false},
		{"Q3 2+1 antipodal", graph.Hypercube(3), []int{0, 0, 7}, true},
	}
	var cells [][]string
	for _, rp := range reps {
		cfg := runCfg(rp.g, rp.homes, seed, false)
		cfg.AllowSharedHomes = true
		res, err := sim.Run(cfg, elect.Elect(elect.Options{}))
		if err != nil {
			return "", fmt.Errorf("%s: %w", rp.name, err)
		}
		colors := elect.BlackColors(rp.g.N(), rp.homes)
		o := order.ComputeAndOrder(rp.g, colors, order.Direct)
		got := outcomeString(res)
		want := "unsolvable"
		if rp.succeed {
			want = "leader"
		}
		if got != want {
			return "", fmt.Errorf("%s: outcome %s, want %s", rp.name, got, want)
		}
		cells = append(cells, []string{
			rp.name, fmt.Sprint(weightsOf(colors)), fmt.Sprint(o.GCD()), got,
		})
	}
	out := Table([]string{"instance", "weights", "gcd", "distributed outcome"}, cells)
	out += fmt.Sprintf("\nDecision sweep: gcd rule matches the Theorem 2.1 oracle on %d/%d weighted placements\n",
		agree, total)
	if agree != total {
		return out, fmt.Errorf("exp: %d mismatches in the shared-home sweep", total-agree)
	}
	return out, nil
}

// weightedPlacements enumerates small weighted placements: all single pairs
// (two agents on one node), pair+single combinations, and double pairs.
func weightedPlacements(n int) [][]int {
	var out [][]int
	for a := 0; a < n; a++ {
		out = append(out, []int{a, a}) // one co-located pair
		for b := 0; b < n; b++ {
			if b == a {
				continue
			}
			out = append(out, []int{a, a, b}) // pair + single
			if b > a {
				out = append(out, []int{a, a, b, b}) // two pairs
			}
		}
	}
	return out
}

func weightsOf(colors []int) []int {
	var out []int
	for _, c := range colors {
		if c > 0 {
			out = append(out, c)
		}
	}
	return out
}
