package analysiscache

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/iso"
)

// StructuralKey serializes the (graph, homes) pair as node count, sorted
// edge multiset, and sorted home multiset. Two instances share a key
// exactly when they present the same adjacency structure and agent
// placement under the same numbering — isomorphic but differently numbered
// instances hash apart. O(|E| log |E|) and allocation-light: the right
// trade for a campaign, where every seed of an instance shares one
// *graph.Graph value anyway.
func StructuralKey(g *graph.Graph, homes []int) string {
	edges := g.EdgeEndpoints()
	es := make([][2]int, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		es[i] = [2]int{u, v}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	hs := append([]int(nil), homes...)
	sort.Ints(hs)
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d;e=", g.N())
	for _, e := range es {
		fmt.Fprintf(&b, "%d-%d,", e[0], e[1])
	}
	fmt.Fprintf(&b, ";h=%v", hs)
	return b.String()
}

// CanonicalKey keys the instance by the canonical word of the
// home-weighted colored graph: two instances share a key exactly when a
// graph isomorphism maps one onto the other carrying home multiplicities
// along. This is the daemon's key — N clients submitting renumbered copies
// of one instance coalesce onto a single analysis — and costs one
// canonical-labeling search per lookup, far cheaper than the full analysis
// (Cayley recognition, labeling enumeration) it saves.
func CanonicalKey(g *graph.Graph, homes []int) string {
	colors := elect.BlackColors(g.N(), homes)
	return string(iso.CanonicalWord(iso.FromGraph(g, colors)))
}
