package repro

// Perf trajectory of the canonical-labeling engine (DESIGN.md §8). These
// wrap the shared kernels of internal/isobench so `go test -bench BenchmarkIso`
// and the BENCH_iso.json generator (cmd/benchiso, `make bench-iso`) measure
// identical work. BenchmarkIsoAnalyzeC32Reference vs BenchmarkIsoAnalyzeC32
// is the documented ≥5× speedup pair.

import (
	"testing"

	"repro/internal/isobench"
)

func BenchmarkIso(b *testing.B) {
	for _, c := range isobench.Cases() {
		b.Run(c.Name, c.Run)
	}
}
