package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// Regenerate the golden files with: go test ./cmd/elect -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files from current output")

// wallClock matches the only nondeterministic token of the output — the
// elapsed-time figure on the totals line.
var wallClock = regexp.MustCompile(`, [0-9][^,]* wall clock`)

func normalize(out string) string {
	return wallClock.ReplaceAllString(out, ", 0s wall clock")
}

// TestRunGolden pins the full human-facing output of cmd/elect for one
// elected, one unsolvable, and two fault-injected runs (one surviving, one
// crash-deadlocked). Everything except the wall-clock figure is
// deterministic under a serialized strategy, so any drift — outcome lines,
// cost counters, fault manifests, verdict phrasing — fails the diff.
func TestRunGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"cycle6-elected", []string{"-graph", "cycle", "-n", "6", "-homes", "0,2", "-wake-all", "-strategy", "random", "-seed", "1"}},
		{"cycle6-unsolvable", []string{"-graph", "cycle", "-n", "6", "-homes", "0,3", "-wake-all", "-strategy", "random", "-seed", "1"}},
		{"star4-stale-reads", []string{"-graph", "star", "-n", "4", "-homes", "1,2", "-wake-all", "-faults", "stale-reads", "-seed", "3"}},
		{"star4-crash-deadlock", []string{"-graph", "star", "-n", "4", "-homes", "1,2", "-wake-all", "-faults", "crash-frontrunner", "-seed", "2"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tc.args, &buf)
			got := normalize(buf.String())
			if err != nil {
				// The error text is part of the pinned behavior (the
				// crash-deadlock case must keep failing the same way).
				got += "error: " + err.Error() + "\n"
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s (regenerate with -update if intended)\n--- want ---\n%s--- got ---\n%s",
					path, want, got)
			}
		})
	}
}
