// Command electload is the open-loop load generator for electd: it fires a
// seeded mix of /v1/analyze and /v1/elect requests at a fixed request rate
// (arrivals are scheduled by the clock, not by completions, so a slow
// server accumulates in-flight requests instead of throttling the
// generator), measures per-request latency into a mergeable sketch
// histogram (O(1) memory at any sample count, percentiles within the
// documented ~3% sketch error), and watches the daemon's
// /debug/metrics/stream SSE feed over the run to report cache hit and
// coalesce rate deltas (falling back to polling /debug/metrics before
// and after when the stream is unavailable).
//
// Usage:
//
//	electload -addr localhost:8080 [-duration 10s] [-rate 200]
//	          [-seed 1] [-elect-frac 0.25] [-out BENCH_serve.json]
//
// The instance mix is deterministic in -seed: a pool of cycle, hypercube,
// and explicit-edge instances, where explicit instances are renumbered
// (isomorphic) copies of pool members — the daemon's iso-canonical cache
// key must coalesce them, and the reported hit+coalesce rate proves it.
//
// The output JSON (default BENCH_serve.json, the CI perf artifact) carries
// req/s achieved, error counts, latency p50/p90/p99, and the cache-rate
// delta. Exit is nonzero when any request errored or the server was
// unreachable.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/sketch"
)

type instance struct {
	Family string   `json:"family,omitempty"`
	Size   int      `json:"size,omitempty"`
	N      int      `json:"n,omitempty"`
	Edges  [][2]int `json:"edges,omitempty"`
	Homes  []int    `json:"homes"`
	Seed   int64    `json:"seed,omitempty"`
}

// mix builds the deterministic instance pool: named-family instances plus
// renumbered explicit-edge copies of the cycles, which are isomorphic to
// their originals and must land on the same canonical cache entry.
func mix(rng *rand.Rand) []instance {
	var pool []instance
	for _, n := range []int{6, 9, 12, 18, 24} {
		pool = append(pool, instance{Family: "cycle", Size: n, Homes: []int{0, 1, n / 2}})
	}
	for _, d := range []int{3, 4} {
		pool = append(pool, instance{Family: "hypercube", Size: d, Homes: []int{0, 1}})
	}
	// Renumbered cycle copies: rotate node labels by a seeded offset.
	for _, n := range []int{6, 9, 12, 18, 24} {
		rot := 1 + rng.Intn(n-1)
		edges := make([][2]int, n)
		for i := 0; i < n; i++ {
			edges[i] = [2]int{(i + rot) % n, (i + 1 + rot) % n}
		}
		pool = append(pool, instance{
			N: n, Edges: edges,
			Homes: []int{rot % n, (1 + rot) % n, (n/2 + rot) % n},
		})
	}
	return pool
}

type benchOut struct {
	Addr        string  `json:"addr"`
	DurationSec float64 `json:"duration_sec"`
	TargetRate  float64 `json:"target_rate"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P99MS       float64 `json:"p99_ms"`
	// LatencySketchErr is the relative error bound of the percentile
	// sketch the latencies were folded into.
	LatencySketchErr float64 `json:"latency_sketch_err"`
	// Cache-rate deltas over the run, read from the daemon's
	// serve_cache_* gauges. CacheSource says how: "stream" when derived
	// from the first and last /debug/metrics/stream SSE snapshots,
	// "poll" when from /debug/metrics GETs before and after the run.
	CacheSource     string  `json:"cache_source"`
	StreamSnapshots int     `json:"stream_snapshots,omitempty"`
	CacheHits       int64   `json:"cache_hits"`
	CacheCoalesced  int64   `json:"cache_coalesced"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	CoalesceRate    float64 `json:"coalesce_rate"`
}

// streamWatch tails /debug/metrics/stream for the duration of the load,
// keeping the first and last snapshots: their gauge difference is the
// run's cache-rate delta without the race a before/after poll has
// against still-draining requests.
type streamWatch struct {
	mu          sync.Mutex
	first, last telemetry.Snapshot
	n           int
}

// watch consumes SSE frames until ctx is canceled or the stream breaks.
// Best-effort by design: any error just leaves n at whatever was seen
// and the caller falls back to polling.
func (sw *streamWatch) watch(ctx context.Context, client *http.Client, base string) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/debug/metrics/stream?interval_ms=250", nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			continue
		}
		sw.mu.Lock()
		if sw.n == 0 {
			sw.first = snap
		}
		sw.last = snap
		sw.n++
		sw.mu.Unlock()
	}
}

// delta returns the gauge snapshots bracketing the run, when the stream
// yielded at least two.
func (sw *streamWatch) delta() (before, after map[string]int64, n int, ok bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.n < 2 {
		return nil, nil, sw.n, false
	}
	return sw.first.Gauges, sw.last.Gauges, sw.n, true
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:8080", "electd host:port")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		rate      = flag.Float64("rate", 200, "target requests per second (open loop)")
		seed      = flag.Int64("seed", 1, "instance-mix seed")
		electFrac = flag.Float64("elect-frac", 0.25, "fraction of requests that are /v1/elect (rest /v1/analyze)")
		out       = flag.String("out", "BENCH_serve.json", "output JSON path")
	)
	flag.Parse()

	base := "http://" + *addr
	client := &http.Client{Timeout: 60 * time.Second}
	if err := waitHealthy(client, base, 10*time.Second); err != nil {
		return err
	}
	before, err := cacheGauges(client, base)
	if err != nil {
		return fmt.Errorf("metrics before: %w", err)
	}
	// Tail the SSE stream for the run; its first/last snapshots supersede
	// the polled before/after when the stream works.
	sw := &streamWatch{}
	streamCtx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		sw.watch(streamCtx, &http.Client{}, base)
	}()

	rng := rand.New(rand.NewSource(*seed))
	pool := mix(rng)
	interval := time.Duration(float64(time.Second) / *rate)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies = &sketch.Hist{} // microseconds; mutex-guarded
		requests  atomic.Int64
		errors    atomic.Int64
		shed      atomic.Int64
	)
	fire := func(in instance, elect bool) {
		defer wg.Done()
		path := "/v1/analyze"
		var body any = in
		if elect {
			path = "/v1/elect"
			body = in // instance fields embed into ElectRequest; Seed rides along
		}
		data, _ := json.Marshal(body)
		start := time.Now()
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		elapsedUS := int64(time.Since(start) / time.Microsecond)
		requests.Add(1)
		if err != nil {
			errors.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			shed.Add(1) // load shedding is the server working as designed
		case resp.StatusCode != http.StatusOK:
			errors.Add(1)
			return
		}
		mu.Lock()
		latencies.Observe(elapsedUS)
		mu.Unlock()
	}

	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var electSeed int64
	for time.Since(start) < *duration {
		<-ticker.C
		in := pool[rng.Intn(len(pool))]
		isElect := rng.Float64() < *electFrac
		if isElect {
			electSeed++
			in.Seed = electSeed
		}
		wg.Add(1)
		go fire(in, isElect)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := cacheGauges(client, base)
	if err != nil {
		return fmt.Errorf("metrics after: %w", err)
	}
	// Give the stream one more frame past the last completion, then
	// prefer its bracketing snapshots over the polled pair.
	time.Sleep(300 * time.Millisecond)
	stopStream()
	<-streamDone
	source := "poll"
	var streamN int
	if b, a, n, ok := sw.delta(); ok {
		before, after, source, streamN = b, a, "stream", n
	}

	res := benchOut{
		Addr:             *addr,
		DurationSec:      elapsed.Seconds(),
		TargetRate:       *rate,
		Requests:         requests.Load(),
		Errors:           errors.Load(),
		Shed:             shed.Load(),
		ReqPerSec:        float64(requests.Load()) / elapsed.Seconds(),
		P50MS:            float64(latencies.Quantile(0.50)) / 1000,
		P90MS:            float64(latencies.Quantile(0.90)) / 1000,
		P99MS:            float64(latencies.Quantile(0.99)) / 1000,
		LatencySketchErr: sketch.RelativeError,
		CacheSource:      source,
		StreamSnapshots:  streamN,
	}
	res.CacheHits = after["serve_cache_hits"] - before["serve_cache_hits"]
	res.CacheCoalesced = after["serve_cache_coalesced"] - before["serve_cache_coalesced"]
	res.CacheMisses = after["serve_cache_misses"] - before["serve_cache_misses"]
	if total := res.CacheHits + res.CacheCoalesced + res.CacheMisses; total > 0 {
		res.CacheHitRate = float64(res.CacheHits+res.CacheCoalesced) / float64(total)
		res.CoalesceRate = float64(res.CacheCoalesced) / float64(total)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("electload: %d requests in %.1fs (%.1f req/s), p50 %.2fms p99 %.2fms (±%.1f%% sketch), "+
		"cache hit rate %.1f%% (coalesced %.1f%%, via %s), %d errors, %d shed → %s\n",
		res.Requests, res.DurationSec, res.ReqPerSec, res.P50MS, res.P99MS,
		100*sketch.RelativeError,
		100*res.CacheHitRate, 100*res.CoalesceRate, res.CacheSource, res.Errors, res.Shed, *out)
	if res.Errors > 0 {
		return fmt.Errorf("%d requests errored", res.Errors)
	}
	return nil
}

// waitHealthy polls /healthz until the daemon answers 200 or the budget
// runs out — electd may still be binding when the generator starts (CI
// starts both back to back).
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()              //nolint:errcheck
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server never became healthy: %w", err)
			}
			return fmt.Errorf("server never became healthy (last status %d)", resp.StatusCode)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// cacheGauges reads the serve_cache_* gauges from /debug/metrics.
func cacheGauges(client *http.Client, base string) (map[string]int64, error) {
	resp, err := client.Get(base + "/debug/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	if snap.Gauges == nil {
		snap.Gauges = map[string]int64{}
	}
	return snap.Gauges, nil
}
