package zoo_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/zoo"
)

// TestMain lets this test binary serve as a networked-backend worker when
// the coordinator re-execs it.
func TestMain(m *testing.M) {
	runtime.MaybeWorker()
	os.Exit(m.Run())
}

// zooInstance is one (graph, homes) input of the differential corpus — the
// same 21 instances the runtime conformance suite sweeps.
type zooInstance struct {
	name  string
	g     *graph.Graph
	homes []int
}

func twinDouble(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromTwins([][][2]int{
		{{1, 0}, {1, 1}},
		{{0, 0}, {0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func twinTriangle(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromTwins([][][2]int{
		{{1, 0}, {1, 1}, {2, 0}},
		{{0, 0}, {0, 1}, {2, 1}},
		{{0, 2}, {1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// zooCorpus returns the differential corpus.
func zooCorpus(t *testing.T) []zooInstance {
	t.Helper()
	return []zooInstance{
		{"cycle3", graph.Cycle(3), []int{0, 1}},
		{"cycle5", graph.Cycle(5), []int{0, 2}},
		{"cycle6", graph.Cycle(6), []int{0, 2, 3}},
		{"cycle8", graph.Cycle(8), []int{0, 3, 5}},
		{"cycle12", graph.Cycle(12), []int{0, 4, 8}},
		{"path4", graph.Path(4), []int{0, 1}},
		{"path6", graph.Path(6), []int{0, 3, 5}},
		{"hypercube2", graph.Hypercube(2), []int{0, 3}},
		{"hypercube3", graph.Hypercube(3), []int{0, 5, 6}},
		{"petersen", graph.Petersen(), []int{0, 1}},
		{"petersen-far", graph.Petersen(), []int{0, 7, 8}},
		{"complete4", graph.Complete(4), []int{0, 2}},
		{"star4", graph.Star(4), []int{1, 2}},
		{"star5-center", graph.Star(5), []int{0, 1}},
		{"grid23", graph.Grid(2, 3), []int{0, 5}},
		{"grid33", graph.Grid(3, 3), []int{0, 4, 8}},
		{"prism3", graph.Prism(3), []int{0, 4}},
		{"wheel5", graph.Wheel(5), []int{0, 2}},
		{"bipartite23", graph.CompleteBipartite(2, 3), []int{0, 2}},
		{"twin-double", twinDouble(t), []int{0, 1}},
		{"twin-triangle", twinTriangle(t), []int{0, 2}},
	}
}

// zooBackends returns the four runtimes in canonical order (networked in
// its fast in-process spawn mode).
func zooBackends() []runtime.Runtime {
	return []runtime.Runtime{
		runtime.Goroutine{},
		&runtime.Scheduled{},
		runtime.Transformed{},
		&runtime.Networked{Workers: 2},
	}
}

// checkZooInstance runs one (protocol, instance, seed) cell on the given
// backends and returns an error on any cross-backend divergence (outcome
// vectors and exact per-agent move counts) or any violation of the central
// prediction (verdict, unique leader, winner identity).
func checkZooInstance(inst zooInstance, p runtime.Protocol, seed int64, backends []runtime.Runtime) error {
	pred, err := zoo.Predict(p.Spec(), inst.g, nil, inst.homes)
	if err != nil {
		return err
	}
	cfg := runtime.Config{Graph: inst.g, Homes: inst.homes, Seed: seed}
	var base *runtime.Result
	for _, rt := range backends {
		res, err := rt.Run(cfg, p)
		if err != nil {
			return fmt.Errorf("%s: %v", rt.Name(), err)
		}
		if base == nil {
			base = res
		} else {
			for i := range base.Outcomes {
				if base.Outcomes[i] != res.Outcomes[i] {
					return fmt.Errorf("agent %d: %s %q vs %s %q",
						i, base.Backend, base.Outcomes[i], res.Backend, res.Outcomes[i])
				}
				if base.Moves[i] != res.Moves[i] {
					return fmt.Errorf("agent %d: %s made %d moves vs %s %d",
						i, base.Backend, base.Moves[i], res.Backend, res.Moves[i])
				}
			}
		}
		if vios := zoo.Check(res, pred); len(vios) > 0 {
			return fmt.Errorf("%s: %v", rt.Name(), vios)
		}
	}
	return nil
}

// TestZooCrossBackendConformance is the protocol-parameterized differential
// sweep: every zoo protocol × every corpus instance × 3 seeds runs on all
// four backends, which must agree on the outcome vector and the exact
// per-agent move counts, and every backend's result must match the central
// per-protocol prediction (verdict and winner).
func TestZooCrossBackendConformance(t *testing.T) {
	for _, spec := range zoo.Specs() {
		p, err := zoo.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range zooCorpus(t) {
			p, inst := p, inst
			t.Run(spec+"/"+inst.name, func(t *testing.T) {
				t.Parallel()
				for seed := int64(1); seed <= 3; seed++ {
					if err := checkZooInstance(inst, p, seed, zooBackends()); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

// wrongWins wraps a zoo protocol but crowns a fixed wrong agent whenever
// the inner protocol reaches any verdict — the planted bug of the
// per-protocol canary. Its Spec still names the correct protocol, so the
// networked backend (which reconstructs from the spec) runs the real rule
// and must diverge.
type wrongWins struct {
	runtime.Protocol
	crown int // the 1-based identity the bug crowns
}

func (f wrongWins) Step(memory string, v runtime.View) (string, runtime.Effect) {
	mem, eff := f.Protocol.Step(memory, v)
	if eff.Halt != "" {
		eff.Halt = runtime.HaltDefeated
		eff.LeaderMark = ""
		if v.ID == f.crown {
			eff.Halt = runtime.HaltLeader
		}
	}
	return mem, eff
}

// TestZooConformanceCanary plants a wrong-winner bug in every zoo protocol
// and requires the differential harness to catch it, both against the
// central prediction (in-process backends) and by cross-backend divergence
// (the networked backend runs the real protocol its spec names).
func TestZooConformanceCanary(t *testing.T) {
	inst := zooInstance{"path6", graph.Path(6), []int{0, 3, 5}}
	for _, spec := range zoo.Specs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			inner, err := zoo.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := zoo.Predict(spec, inst.g, nil, inst.homes)
			if err != nil {
				t.Fatal(err)
			}
			// Crown an agent the real rule provably does not crown.
			crown := 1
			if pred.Solvable && pred.Winner == 0 {
				crown = 2
			}
			buggy := wrongWins{Protocol: inner, crown: crown}
			inProcess := []runtime.Runtime{runtime.Goroutine{}, runtime.Transformed{}}
			if err := checkZooInstance(inst, buggy, 1, inProcess); err == nil {
				t.Fatalf("%s harness accepted a first-wins election", spec)
			} else {
				t.Logf("canary caught as expected: %v", err)
			}
			mixed := []runtime.Runtime{runtime.Transformed{}, &runtime.Networked{Workers: 2}}
			if err := checkZooInstance(inst, buggy, 1, mixed); err == nil {
				t.Fatalf("%s networked backend silently agreed with a protocol its spec contradicts", spec)
			}
		})
	}
}
