package graph

import (
	"fmt"
	"math/rand"
)

// EdgeLabeling assigns a label to every port: L[v][p] is the label, at v, of
// the edge behind port p of node v. The qualitative model requires only that
// labels at a single node be pairwise distinct (Section 1.2); values are
// plain ints here because protocols never see them directly — the simulator
// hands agents opaque symbols instead.
type EdgeLabeling [][]int

// PortLabeling returns the trivial labeling ℓ_v(p) = p (each node labels its
// ports 1..deg in port order — the traditional quantitative convention).
func PortLabeling(g *Graph) EdgeLabeling {
	l := make(EdgeLabeling, g.N())
	for v := range l {
		l[v] = make([]int, g.Deg(v))
		for p := range l[v] {
			l[v][p] = p
		}
	}
	return l
}

// RandomLabeling returns a labeling where each node permutes its port labels
// randomly (deterministic per seed) — an adversarial relabeling of ports.
func RandomLabeling(g *Graph, seed int64) EdgeLabeling {
	rng := rand.New(rand.NewSource(seed))
	l := make(EdgeLabeling, g.N())
	for v := range l {
		l[v] = rng.Perm(g.Deg(v))
	}
	return l
}

// Validate checks that l fits g and that labels are distinct at every node.
func (l EdgeLabeling) Validate(g *Graph) error {
	if len(l) != g.N() {
		return fmt.Errorf("graph: labeling covers %d nodes, graph has %d", len(l), g.N())
	}
	for v := range l {
		if len(l[v]) != g.Deg(v) {
			return fmt.Errorf("graph: node %d has %d labels for %d ports", v, len(l[v]), g.Deg(v))
		}
		seen := make(map[int]bool)
		for _, lab := range l[v] {
			if seen[lab] {
				return fmt.Errorf("graph: node %d repeats label %d", v, lab)
			}
			seen[lab] = true
		}
	}
	return nil
}

// Clone returns a deep copy of the labeling.
func (l EdgeLabeling) Clone() EdgeLabeling {
	out := make(EdgeLabeling, len(l))
	for v := range l {
		out[v] = append([]int(nil), l[v]...)
	}
	return out
}
