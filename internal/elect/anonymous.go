package elect

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// This file implements the synchronous lockstep world used by the paper's
// Section 1.3 impossibility argument for fully anonymous agents: a
// deterministic round-based interpreter in which identical agents at
// symmetric positions provably produce identical traces, so no protocol can
// elect on C6 with two antipodal agents while electing on C3 with one agent.

// AnonObs is what an anonymous agent observes at the start of a round.
type AnonObs struct {
	Degree int
	// Entry is the label (at this node) of the port it entered through in
	// the previous round, or -1 initially / after staying.
	Entry int
	// Board is the sorted multiset of marks on the node's whiteboard.
	Board []string
	// State is the agent's own state.
	State string
}

// AnonAction is what an anonymous agent does at the end of a round.
type AnonAction struct {
	// Write, if non-empty, adds this mark to the current whiteboard.
	Write string
	// MoveLabel, if >= 0, moves through the port with this label.
	MoveLabel int
	// Declare, if non-empty, ends the agent with this declaration
	// ("leader" or "defeated").
	Declare string
}

// AnonProtocol is a deterministic transition function: identical agents run
// identical functions — there are no identities of any kind.
type AnonProtocol func(obs AnonObs) (newState string, act AnonAction)

// AnonConfig is a synchronous anonymous run: a graph with an edge-labeling
// (the adversary's choice) and initial agent positions.
type AnonConfig struct {
	G      *graph.Graph
	Labels graph.EdgeLabeling
	Homes  []int
	Rounds int
}

// AnonResult records the outcome of a lockstep run.
type AnonResult struct {
	// Traces[i] is agent i's per-round observation/state trace, rendered
	// canonically (positions and identities do not appear — only what the
	// agent itself could see).
	Traces [][]string
	// Declared[i] is the agent's declaration ("" if none within Rounds).
	Declared []string
}

// RunAnonymous executes the protocol in lockstep: each round, all agents
// observe simultaneously, then all write, then all move. Whiteboard marks
// are anonymous strings (no colors — the agents have none).
func RunAnonymous(cfg AnonConfig, p AnonProtocol) (*AnonResult, error) {
	if err := cfg.Labels.Validate(cfg.G); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	boards := make([]map[string]int, n)
	for i := range boards {
		boards[i] = map[string]int{}
	}
	type agent struct {
		pos      int
		entry    int
		state    string
		declared string
	}
	agents := make([]*agent, len(cfg.Homes))
	for i, h := range cfg.Homes {
		agents[i] = &agent{pos: h, entry: -1}
	}
	res := &AnonResult{
		Traces:   make([][]string, len(agents)),
		Declared: make([]string, len(agents)),
	}
	renderBoard := func(v int) []string {
		var out []string
		for m, c := range boards[v] {
			for i := 0; i < c; i++ {
				out = append(out, m)
			}
		}
		sort.Strings(out)
		return out
	}
	for round := 0; round < cfg.Rounds; round++ {
		// Observe phase (simultaneous).
		obs := make([]AnonObs, len(agents))
		for i, ag := range agents {
			if ag.declared != "" {
				continue
			}
			obs[i] = AnonObs{
				Degree: cfg.G.Deg(ag.pos),
				Entry:  ag.entry,
				Board:  renderBoard(ag.pos),
				State:  ag.state,
			}
		}
		// Transition phase.
		acts := make([]AnonAction, len(agents))
		for i, ag := range agents {
			if ag.declared != "" {
				continue
			}
			ns, act := p(obs[i])
			res.Traces[i] = append(res.Traces[i],
				fmt.Sprintf("s=%s d=%d e=%d b=%v -> s=%s w=%q mv=%d dec=%q",
					obs[i].State, obs[i].Degree, obs[i].Entry, obs[i].Board,
					ns, act.Write, act.MoveLabel, act.Declare))
			ag.state = ns
			acts[i] = act
		}
		// Write phase (simultaneous).
		for i, ag := range agents {
			if ag.declared != "" {
				continue
			}
			if acts[i].Write != "" {
				boards[ag.pos][acts[i].Write]++
			}
		}
		// Move/declare phase (simultaneous).
		for i, ag := range agents {
			if ag.declared != "" {
				continue
			}
			if acts[i].Declare != "" {
				ag.declared = acts[i].Declare
				res.Declared[i] = acts[i].Declare
				continue
			}
			if acts[i].MoveLabel >= 0 {
				moved := false
				for pp, h := range cfg.G.Ports(ag.pos) {
					if cfg.Labels[ag.pos][pp] == acts[i].MoveLabel {
						ag.entry = cfg.Labels[h.To][h.Twin]
						ag.pos = h.To
						moved = true
						break
					}
				}
				if !moved {
					return nil, fmt.Errorf("elect: agent %d: no port labeled %d at its node", i, acts[i].MoveLabel)
				}
			} else {
				ag.entry = -1
			}
		}
	}
	return res, nil
}

// OrientedCycleLabeling labels every node of C_n with 1 on its clockwise
// port and 2 on its counterclockwise port — the symmetric adversarial
// labeling used by the Section 1.3 argument.
func OrientedCycleLabeling(n int) graph.EdgeLabeling {
	g := graph.Cycle(n)
	l := make(graph.EdgeLabeling, n)
	for v := 0; v < n; v++ {
		l[v] = make([]int, g.Deg(v))
		for p, h := range g.Ports(v) {
			if h.To == (v+1)%n {
				l[v][p] = 1
			} else {
				l[v][p] = 2
			}
		}
	}
	return l
}
