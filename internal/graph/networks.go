package graph

import "fmt"

// This file adds the structured interconnection networks the paper cites as
// Cayley graphs (Section 1.3: "complete graphs, cycles, hypercubes,
// multi-dimensional toroidal meshes, Cube-Connected-Cycles, wrapped
// Butterflies, Star-graphs, circulant graphs"). Each generator here has a
// matching algebraic construction in internal/group, and the tests check
// the two agree up to isomorphism.

// permutations enumerates the permutations of {0..k-1} in lexicographic
// order; index in this ordering is the vertex number used by StarGraph and
// Pancake (identity first), matching group.Symmetric's element order.
func permutations(k int) [][]int {
	var out [][]int
	used := make([]bool, k)
	cur := make([]int, 0, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v < k; v++ {
			if !used[v] {
				used[v] = true
				cur = append(cur, v)
				rec()
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
	}
	rec()
	return out
}

func permIndex(perms [][]int) map[string]int {
	idx := make(map[string]int, len(perms))
	for i, p := range perms {
		idx[permKeyOf(p)] = i
	}
	return idx
}

func permKeyOf(p []int) string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte(v)
	}
	return string(b)
}

// StarGraph returns the k-dimensional star graph ST(k) on k! vertices:
// vertices are permutations of {0..k-1}, adjacent iff they differ by a
// transposition of positions 0 and i (i = 1..k-1). ST(3) ≅ C6. It is the
// Cayley graph Cay(S_k, {(0 i)}).
func StarGraph(k int) *Graph {
	if k < 2 || k > 6 {
		panic("graph: StarGraph supports 2 <= k <= 6")
	}
	perms := permutations(k)
	idx := permIndex(perms)
	b := NewBuilder(len(perms))
	for v, p := range perms {
		for i := 1; i < k; i++ {
			q := append([]int(nil), p...)
			q[0], q[i] = q[i], q[0]
			w := idx[permKeyOf(q)]
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Graph()
}

// Pancake returns the k-dimensional pancake graph on k! vertices: vertices
// are permutations, adjacent iff one is obtained from the other by
// reversing a prefix of length 2..k. Cay(S_k, prefix reversals).
func Pancake(k int) *Graph {
	if k < 2 || k > 6 {
		panic("graph: Pancake supports 2 <= k <= 6")
	}
	perms := permutations(k)
	idx := permIndex(perms)
	b := NewBuilder(len(perms))
	for v, p := range perms {
		for l := 2; l <= k; l++ {
			q := append([]int(nil), p...)
			for i, j := 0, l-1; i < j; i, j = i+1, j-1 {
				q[i], q[j] = q[j], q[i]
			}
			w := idx[permKeyOf(q)]
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Graph()
}

// WrappedButterfly returns WB(d) on d·2^d vertices (d >= 3): vertex (w, i)
// with w a d-bit word and i a level, encoded w*d + i; edges go from level i
// to level i+1 mod d, straight ((w,i)-(w,i+1)) and cross
// ((w,i)-(w ⊕ 2^i, i+1)). Degree 4, Cayley graph of Z_2^d ⋊ Z_d.
func WrappedButterfly(d int) *Graph {
	if d < 3 {
		panic("graph: WrappedButterfly needs d >= 3 (smaller ones have parallel edges)")
	}
	n := d * (1 << uint(d))
	b := NewBuilder(n)
	id := func(w, i int) int { return w*d + i }
	for w := 0; w < 1<<uint(d); w++ {
		for i := 0; i < d; i++ {
			b.AddEdge(id(w, i), id(w, (i+1)%d))
			b.AddEdge(id(w, i), id(w^(1<<uint(i)), (i+1)%d))
		}
	}
	g := b.Graph()
	if reg, deg := g.IsRegular(); !reg || deg != 4 {
		panic(fmt.Sprintf("graph: WrappedButterfly(%d) degree invariant broken", d))
	}
	return g
}
