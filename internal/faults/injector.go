package faults

import "repro/internal/sim"

// Injector implements sim.FaultInjector by delegating each point to a
// decision function and recording every nonzero decision into a Plan. The
// engine serializes Inject calls (fault injection requires the serializing
// Scheduler), so no locking is needed.
type Injector struct {
	name    string
	decide  func(p sim.FaultPoint) sim.FaultAction
	plan    Plan
	pending int // replay events not yet re-issued
}

// Name returns the strategy name ("replay" for plan re-issuers).
func (in *Injector) Name() string { return in.name }

// Inject consults the decision function and records what was injected.
func (in *Injector) Inject(p sim.FaultPoint) sim.FaultAction {
	act := in.decide(p)
	switch {
	case act.Torn:
		kind := KindTorn
		if act.HoldLock {
			kind = KindTornHold
		}
		keep := act.Keep
		if keep > len(p.Tag)-1 {
			keep = len(p.Tag) - 1
		}
		if keep < 0 {
			keep = 0
		}
		in.plan.Events = append(in.plan.Events, Event{Kind: kind, Agent: p.Agent, Index: p.Index, Node: p.Node, Arg: keep})
	case act.Crash:
		kind := KindCrash
		if act.HoldLock {
			kind = KindCrashHold
		}
		in.plan.Events = append(in.plan.Events, Event{Kind: kind, Agent: p.Agent, Index: p.Index, Node: p.Node})
	case act.StallReads > 0:
		in.plan.Events = append(in.plan.Events, Event{Kind: KindStale, Agent: p.Agent, Index: p.Index, Node: p.Node, Arg: act.StallReads})
	}
	return act
}

// Recorded returns the plan of faults injected so far. For a Replay
// injector this re-records the events actually re-issued, so after a
// faithful replay Recorded equals the input plan byte for byte.
func (in *Injector) Recorded() *Plan {
	return &Plan{Events: in.plan.Events}
}

// Unapplied returns how many events of a replayed plan were never
// re-issued. A faithful replay — same protocol, same schedule, same plan —
// leaves it at 0; a nonzero count means the execution diverged from the one
// the plan was recorded against. Always 0 for strategy injectors.
func (in *Injector) Unapplied() int { return in.pending }

// replayKey addresses an injection point the way plans do.
type replayKey struct {
	op    sim.FaultOp
	agent int
	index int
}

// Replay returns an injector that re-issues exactly the plan's events, each
// at the injection point (operation class, agent, per-agent index) where it
// was recorded, and nothing anywhere else. Combined with sim.Replay of the
// matching schedule this reproduces a faulty run bit for bit.
func Replay(p *Plan) *Injector {
	byPoint := make(map[replayKey]Event, len(p.Events))
	for _, ev := range p.Events {
		byPoint[replayKey{ev.Kind.op(), ev.Agent, ev.Index}] = ev
	}
	in := &Injector{name: "replay", pending: len(byPoint)}
	in.decide = func(pt sim.FaultPoint) sim.FaultAction {
		ev, ok := byPoint[replayKey{pt.Op, pt.Agent, pt.Index}]
		if !ok {
			return sim.FaultAction{}
		}
		delete(byPoint, replayKey{pt.Op, pt.Agent, pt.Index})
		in.pending--
		switch ev.Kind {
		case KindCrash:
			return sim.FaultAction{Crash: true}
		case KindCrashHold:
			return sim.FaultAction{Crash: true, HoldLock: true}
		case KindTorn:
			return sim.FaultAction{Torn: true, Keep: ev.Arg}
		case KindTornHold:
			return sim.FaultAction{Torn: true, Keep: ev.Arg, HoldLock: true}
		case KindStale:
			return sim.FaultAction{StallReads: ev.Arg}
		}
		return sim.FaultAction{}
	}
	return in
}
