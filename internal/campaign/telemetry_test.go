package campaign

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestCampaignTelemetry runs a small telemetry-enabled campaign and
// checks the full per-phase chain: RunResult maps, Summary aggregation,
// live metrics, and the worker timeline.
func TestCampaignTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	var timeline bytes.Buffer
	runs := []Run{
		{Instance: "cycle6[0 2]", G: graph.Cycle(6), Homes: []int{0, 2}, Seed: 1, Protocol: ProtoElect},
		// Asymmetric spacing (2,3,4) so the placement is rigid and the
		// election succeeds.
		{Instance: "cycle9[0 2 5]", G: graph.Cycle(9), Homes: []int{0, 2, 5}, Seed: 2, Protocol: ProtoElect},
	}
	rep, err := ExecuteRuns(runs, Options{Workers: 2, Metrics: reg, Timeline: &timeline})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Err != "" {
			t.Fatalf("run %s errored: %s", r.Instance, r.Err)
		}
		if len(r.PhaseMoves) == 0 {
			t.Fatalf("run %s has no phase moves", r.Instance)
		}
		if r.PhaseMoves["mapdraw"] <= 0 {
			t.Errorf("run %s: mapdraw moves = %d, want > 0", r.Instance, r.PhaseMoves["mapdraw"])
		}
		// Phase counts must partition the run's totals exactly.
		var sumMoves, sumAcc int64
		for _, v := range r.PhaseMoves {
			sumMoves += v
		}
		for _, v := range r.PhaseAccesses {
			sumAcc += v
		}
		if sumMoves != r.Moves || sumAcc != r.Accesses {
			t.Errorf("run %s: phase sums %d/%d != totals %d/%d",
				r.Instance, sumMoves, sumAcc, r.Moves, r.Accesses)
		}
	}

	s := rep.Summary
	if len(s.Phases) == 0 || s.Phases["mapdraw"].Moves <= 0 {
		t.Errorf("summary phases missing mapdraw: %+v", s.Phases)
	}
	wantMapdraw := rep.Results[0].PhaseMoves["mapdraw"] + rep.Results[1].PhaseMoves["mapdraw"]
	if s.Phases["mapdraw"].Moves != wantMapdraw {
		t.Errorf("summary mapdraw moves = %d, want %d", s.Phases["mapdraw"].Moves, wantMapdraw)
	}
	if s.IsoSearch == nil || s.IsoSearch.Searches <= 0 {
		t.Errorf("summary iso search delta missing or empty: %+v", s.IsoSearch)
	}
	if !strings.Contains(s.Render(), "phase mapdraw") || !strings.Contains(s.Render(), "iso search:") {
		t.Errorf("Render lacks telemetry lines:\n%s", s.Render())
	}

	if got := reg.Counter("campaign_runs_total").Value(); got != 2 {
		t.Errorf("campaign_runs_total = %d, want 2", got)
	}
	if got := reg.Counter("campaign_outcome_leader").Value(); got != 2 {
		t.Errorf("campaign_outcome_leader = %d, want 2", got)
	}
	if reg.Counter("campaign_phase_moves_mapdraw").Value() != wantMapdraw {
		t.Errorf("metrics mapdraw moves = %d, want %d",
			reg.Counter("campaign_phase_moves_mapdraw").Value(), wantMapdraw)
	}
	if reg.Gauge("campaign_inflight").Value() != 0 {
		t.Errorf("campaign_inflight = %d after completion, want 0", reg.Gauge("campaign_inflight").Value())
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(timeline.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	var spans, workerNames int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "M":
			if args, ok := ev["args"].(map[string]any); ok {
				if n, _ := args["name"].(string); strings.HasPrefix(n, "worker ") {
					workerNames++
				}
			}
		}
	}
	if spans != 2 {
		t.Errorf("timeline has %d run spans, want 2", spans)
	}
	if workerNames != 2 {
		t.Errorf("timeline has %d worker tracks, want 2", workerNames)
	}
}

// TestCampaignForcedTraceDrops wires a tiny trace buffer to a slow sink
// so the buffered tracer must drop events, and checks the count surfaces
// in RunResult and the Summary.
func TestCampaignForcedTraceDrops(t *testing.T) {
	chatty := func(a *sim.Agent) (sim.Outcome, error) {
		// ~200 distinct-tag writes: each emits one trace event while the
		// 1-slot buffer drains at 1ms per event.
		err := a.Access(func(b *sim.Board) {
			for i := 0; i < 200; i++ {
				b.Write("tag" + strconv.Itoa(i))
			}
		})
		if err != nil {
			return sim.Outcome{}, err
		}
		return sim.Outcome{Role: sim.RoleLeader, Leader: a.Color()}, nil
	}
	runs := []Run{{Instance: "cycle3[0]", G: graph.Cycle(3), Homes: []int{0}, Seed: 1, Protocol: ProtoElect}}
	rep, err := ExecuteRuns(runs, Options{
		Workers:      1,
		NoAnalysis:   true,
		TraceSink:    func(sim.Event) { time.Sleep(time.Millisecond) },
		TraceBuffer:  1,
		testProtocol: func(Run, int) sim.Protocol { return chatty },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Err != "" {
		t.Fatalf("run errored: %s", r.Err)
	}
	if r.TraceDropped <= 0 {
		t.Errorf("TraceDropped = %d, want > 0 (1-slot buffer, 1ms sink, 200 events)", r.TraceDropped)
	}
	if rep.Summary.TraceDropped != r.TraceDropped {
		t.Errorf("summary dropped %d != run dropped %d", rep.Summary.TraceDropped, r.TraceDropped)
	}
	if !strings.Contains(rep.Summary.Render(), "trace events dropped:") {
		t.Errorf("Render lacks the dropped-events line:\n%s", rep.Summary.Render())
	}
}

func TestPctIndexEdgeCases(t *testing.T) {
	// Nearest-rank definition: index of ceil(n·p/100) clamped to [1, n],
	// zero-based. Documented edge cases: empty and single-element inputs.
	if got := pctInt(nil, 50); got != 0 {
		t.Errorf("pctInt(nil) = %d, want 0", got)
	}
	if got := pctFloat(nil, 90); got != 0 {
		t.Errorf("pctFloat(nil) = %v, want 0", got)
	}
	one := []int64{42}
	for _, p := range []int{0, 1, 50, 99, 100} {
		if got := pctInt(one, p); got != 42 {
			t.Errorf("pctInt([42], %d) = %d, want 42", p, got)
		}
	}
	two := []int64{10, 20}
	if got := pctInt(two, 50); got != 10 {
		t.Errorf("p50 of [10 20] = %d, want 10", got)
	}
	if got := pctInt(two, 90); got != 20 {
		t.Errorf("p90 of [10 20] = %d, want 20", got)
	}
	// p=0 clamps up to the minimum, p=100 is the maximum.
	ten := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := pctInt(ten, 0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := pctInt(ten, 100); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	if got := pctInt(ten, 50); got != 5 {
		t.Errorf("p50 of 1..10 = %d, want 5 (nearest rank)", got)
	}
	// Unsorted input must not matter.
	if got := pctInt([]int64{9, 1, 5}, 50); got != 5 {
		t.Errorf("p50 of unsorted = %d, want 5", got)
	}
}

// TestSummaryRenderGolden pins the exact Render format — both the base
// block and the telemetry lines — so downstream log scrapers don't break
// silently.
func TestSummaryRenderGolden(t *testing.T) {
	s := Summary{
		Runs: 4, Workers: 2,
		Outcomes:   map[string]int{"leader": 3, "unsolvable": 1},
		Mismatches: 0, Errors: 0, Retries: 1, Aborted: 0,
		MovesP50: 100, MovesP90: 200, MovesP99: 250,
		AccessP50: 50, AccessP90: 80, AccessP99: 90,
		RatioP50: 1.5, RatioP90: 2.5, RatioMax: 3.0,
		RatioBound: 40, BoundViolations: 0,
		CacheHits: 3, CacheMisses: 1, CacheHitRate: 0.75, AnalysisMS: 12,
		WallMS: 100, SerialMS: 180, SpeedupEst: 1.8,
		Phases: map[string]PhaseStat{
			"mapdraw":  {Moves: 300, Accesses: 120, Writes: 40, Erases: 0, MovesP50: 70, MovesP90: 90},
			"announce": {Moves: 100, Accesses: 44, Writes: 12, Erases: 2, MovesP50: 25, MovesP90: 30},
		},
		IsoSearch:    &iso.SearchStats{Searches: 8, Nodes: 120, Leaves: 30, OrbitPrunes: 5, PrefixPrunes: 9},
		TraceDropped: 7,
	}
	want := strings.Join([]string{
		"campaign: 4 runs, 2 workers, wall 100ms (serial 180ms, ≈1.8x)",
		"  outcomes: leader=3 unsolvable=1",
		"  oracle mismatches: 0, errors: 0, retries: 1, watchdog-aborted: 0",
		"  moves p50/p90/p99: 100/200/250, accesses p50/p90/p99: 50/80/90",
		"  moves/(r·|E|) p50/p90/max: 1.5/2.5/3.0 (bound 40, violations 0)",
		"  analysis cache: 3 hits / 1 misses (hit rate 75.0%), 12ms analyzing",
		"  phase mapdraw      moves=300 (p50 70, p90 90) accesses=120 writes=40 erases=0",
		"  phase announce     moves=100 (p50 25, p90 30) accesses=44 writes=12 erases=2",
		"  iso search: 8 searches, 120 nodes, 30 leaves, prunes orbit=5 prefix=9, budget exhaustions=0",
		"  trace events dropped: 7",
		"",
	}, "\n")
	if got := s.Render(); got != want {
		t.Errorf("Render drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunResultJSONLRoundTrip checks the per-phase fields survive the
// JSONL writer unchanged.
func TestRunResultJSONLRoundTrip(t *testing.T) {
	in := RunResult{
		Index: 3, Instance: "cycle6[0 2]", Protocol: "elect",
		N: 6, M: 6, R: 2, Seed: 9, Attempts: 1,
		Outcome: "leader", Moves: 120, Accesses: 60, Ratio: 10,
		OK: true,
		PhaseMoves: map[string]int64{
			"mapdraw": 80, "agent-reduce": 30, "announce": 10,
		},
		PhaseAccesses: map[string]int64{"mapdraw": 40, "announce": 20},
		PhaseWrites:   map[string]int64{"mapdraw": 12},
		PhaseErases:   map[string]int64{"agent-reduce": 2},
		TraceDropped:  5,
	}
	var buf bytes.Buffer
	jw := newJSONLWriter(&buf)
	jw.write(in)
	if jw.err != nil {
		t.Fatal(jw.err)
	}
	var out RunResult
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSONL line: %v\n%s", err, buf.String())
	}
	if out.Index != in.Index || out.Outcome != in.Outcome || out.TraceDropped != in.TraceDropped {
		t.Errorf("scalar fields drifted: %+v", out)
	}
	for name, v := range in.PhaseMoves {
		if out.PhaseMoves[name] != v {
			t.Errorf("phase_moves[%s] = %d, want %d", name, out.PhaseMoves[name], v)
		}
	}
	if len(out.PhaseMoves) != len(in.PhaseMoves) ||
		len(out.PhaseAccesses) != len(in.PhaseAccesses) ||
		len(out.PhaseWrites) != len(in.PhaseWrites) ||
		len(out.PhaseErases) != len(in.PhaseErases) {
		t.Errorf("phase map sizes drifted: %+v", out)
	}
}
