package adversary

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/elect"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// sweepInstances are the seed instances of the exploration tests: solvable
// and unsolvable, symmetric and asymmetric placements.
var sweepInstances = []struct {
	name  string
	g     *graph.Graph
	homes []int
}{
	{"path4-adjacent", graph.Path(4), []int{0, 1}},              // gcd 1 → leader
	{"path5-mirror", graph.Path(5), []int{0, 2, 4}},             // classes {2,1}, gcd 1 → leader
	{"cycle6-antipodal", graph.Cycle(6), []int{0, 3}},           // one class of 2 → unsolvable
	{"star4-leaves", graph.Star(4), []int{1, 2, 3}},             // one class of 3 → unsolvable
	{"complete4-pair", graph.Complete(4), []int{0, 1}},          // one class of 2 → unsolvable
	{"prism3-asym", graph.Prism(3), []int{0, 1, 2}},             // one triangle fully occupied
	{"grid23-corner", graph.Grid(2, 3), []int{0}},               // single agent → leader
	{"cycle5-adjacent", graph.Cycle(5), []int{0, 1}},            // reflection-symmetric pair
	{"bipartite23", graph.CompleteBipartite(2, 3), []int{0, 2}}, // sides differ, gcd 1
}

// TestExploreSeedInstancesClean is the acceptance sweep: every built-in
// strategy × several seeds over the seed instances, expecting zero invariant
// violations and outcomes matching the oracle on every single run.
func TestExploreSeedInstancesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full adversary sweep in -short mode")
	}
	for _, inst := range sweepInstances {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			t.Parallel()
			reg := telemetry.NewRegistry()
			rep, err := Explore(Config{
				Instance: inst.name,
				G:        inst.g,
				Homes:    inst.homes,
				Seeds:    []int64{1, 2, 3},
				Timeout:  30 * time.Second,
				Metrics:  reg,
			})
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			if want := len(Strategies()) * 3; len(rep.Runs) != want {
				t.Fatalf("got %d runs, want %d", len(rep.Runs), want)
			}
			if rep.Violating != 0 || rep.Deadlocks != 0 {
				t.Fatalf("violations on seed instance:\n%s", rep.Render())
			}
			for _, run := range rep.Runs {
				if run.Outcome != rep.Expected {
					t.Fatalf("[%s seed %d] outcome %q, oracle expects %q",
						run.Strategy, run.Seed, run.Outcome, rep.Expected)
				}
				if run.Decisions == 0 {
					t.Fatalf("[%s seed %d] empty decision log", run.Strategy, run.Seed)
				}
				if run.Schedule != "" {
					t.Fatalf("[%s seed %d] clean run kept its schedule", run.Strategy, run.Seed)
				}
			}
			if got := reg.Counter("adversary_runs_total").Value(); got != int64(len(rep.Runs)) {
				t.Fatalf("adversary_runs_total = %d, want %d", got, len(rep.Runs))
			}
		})
	}
}

// brokenElect is the deliberately broken variant: every agent crowns itself
// without any exploration. The checker must catch it on every schedule.
func brokenElect(a *sim.Agent) (sim.Outcome, error) {
	return sim.Outcome{Role: sim.RoleLeader, Leader: a.Color()}, nil
}

// TestExploreCatchesBrokenProtocol proves the invariant checker fires: the
// self-crowning protocol produces multiple-leaders (and no-agreement)
// violations on every run of the sweep, and each violating run carries a
// replayable schedule.
func TestExploreCatchesBrokenProtocol(t *testing.T) {
	rep, err := Explore(Config{
		Instance: "broken",
		G:        graph.Cycle(6),
		Homes:    []int{0, 3},
		Protocol: brokenElect,
		Seeds:    []int64{1, 2},
		WakeAll:  true,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if rep.Violating != len(rep.Runs) {
		t.Fatalf("want every run violating, got %d/%d:\n%s", rep.Violating, len(rep.Runs), rep.Render())
	}
	for _, run := range rep.Violations() {
		found := false
		for _, v := range run.Violations {
			if v.Code == elect.VioMultipleLeaders {
				found = true
			}
		}
		if !found {
			t.Fatalf("[%s seed %d] missing %s: %v", run.Strategy, run.Seed, elect.VioMultipleLeaders, run.Violations)
		}
		if run.Schedule == "" {
			t.Fatalf("[%s seed %d] violating run has no schedule", run.Strategy, run.Seed)
		}
		if _, err := DecodeScheduleString(run.Schedule); err != nil {
			t.Fatalf("[%s seed %d] undecodable schedule: %v", run.Strategy, run.Seed, err)
		}
	}
}

// TestExploreViolatingRunReplays closes the loop: take a violating run's
// schedule out of the report, replay it with sim.Replay, and observe the same
// violation again with zero scheduling divergences.
func TestExploreViolatingRunReplays(t *testing.T) {
	g, homes := graph.Cycle(6), []int{0, 3}
	rep, err := Explore(Config{
		G: g, Homes: homes,
		Protocol:   brokenElect,
		Strategies: []string{StratRandom},
		Seeds:      []int64{7},
		WakeAll:    true,
		Timeout:    30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Schedule == "" {
		t.Fatalf("unexpected report: %+v", rep.Runs)
	}
	sched, err := DecodeScheduleString(rep.Runs[0].Schedule)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	replay := sim.Replay(sched)
	res, runErr := sim.Run(sim.Config{
		Graph: g, Homes: homes, Seed: 7, WakeAll: true,
		Timeout: 30 * time.Second, Scheduler: replay,
	}, brokenElect)
	an, err := elect.Analyze(g, homes, order.Direct)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	vs := elect.CheckInvariants(res, runErr, elect.SpecFromAnalysis(an, g.M(), 40))
	if len(vs) == 0 {
		t.Fatalf("replayed run shows no violation")
	}
	if d := replay.Divergences(); d != 0 {
		t.Fatalf("replay diverged %d times", d)
	}
}

// TestScheduleFileRoundTrip covers the replay artifact serialization.
func TestScheduleFileRoundTrip(t *testing.T) {
	sched := &sim.Schedule{Grants: []int32{0, 1, 1, 0, 2}}
	f := &ScheduleFile{
		Family: "cycle", Size: 6, Homes: []int{0, 3},
		Seed: 7, Protocol: "elect", Strategy: StratRandom,
		Schedule: EncodeScheduleString(sched),
	}
	path := filepath.Join(t.TempDir(), "violation.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := LoadScheduleFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Family != f.Family || got.Size != f.Size || got.Seed != f.Seed ||
		got.Protocol != f.Protocol || got.Strategy != f.Strategy ||
		got.Schedule != f.Schedule || len(got.Homes) != len(f.Homes) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
	dec, err := got.Decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.Grants) != len(sched.Grants) {
		t.Fatalf("grants %v, want %v", dec.Grants, sched.Grants)
	}
	for i := range dec.Grants {
		if dec.Grants[i] != sched.Grants[i] {
			t.Fatalf("grants %v, want %v", dec.Grants, sched.Grants)
		}
	}
}

// TestNewStrategyUnknown checks the self-explanatory error path.
func TestNewStrategyUnknown(t *testing.T) {
	if _, err := NewStrategy("nope", 1, nil); err == nil {
		t.Fatal("want error for unknown strategy")
	}
	for _, name := range Strategies() {
		if _, err := NewStrategy(name, 1, []int{0, 0}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestExploreFaultAxis crosses scheduling strategies with fault strategies:
// the sweep must stay safety-clean (fault-aware spec), every fault run must
// carry its fault manifest, and at least one run must actually crash an
// agent so the axis is known to be live.
func TestExploreFaultAxis(t *testing.T) {
	rep, err := Explore(Config{
		Instance:   "star4-fault",
		G:          graph.Star(4),
		Homes:      []int{1, 2},
		Strategies: []string{"random", "same-class"},
		Faults:     []string{"crash-frontrunner", "crash-lockholder"},
		Seeds:      []int64{1, 2, 3},
		Timeout:    30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if want := 2 * 2 * 3; len(rep.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), want)
	}
	if rep.Violating != 0 {
		t.Fatalf("fault sweep violated safety:\n%s", rep.Render())
	}
	if rep.CrashedAgents == 0 {
		t.Fatal("no agent ever crashed — fault axis not wired through")
	}
	for _, run := range rep.Runs {
		if run.Fault == "" {
			t.Fatalf("[%s seed %d] missing fault name", run.Strategy, run.Seed)
		}
		if run.FaultPlan == "" {
			t.Fatalf("[%s+%s seed %d] missing fault plan", run.Strategy, run.Fault, run.Seed)
		}
		if run.Crashed != run.FaultEvents-countStale(t, run.FaultPlan) {
			t.Fatalf("[%s+%s seed %d] crashed=%d but plan has %d non-stale events",
				run.Strategy, run.Fault, run.Seed, run.Crashed, run.FaultEvents-countStale(t, run.FaultPlan))
		}
	}
}

// countStale decodes a manifest and counts its stale-read events (the only
// kind that does not crash its target).
func countStale(t *testing.T, planB64 string) int {
	t.Helper()
	p, err := faults.DecodePlanString(planB64)
	if err != nil {
		t.Fatalf("bad fault plan: %v", err)
	}
	n := 0
	for _, e := range p.Events {
		if e.Kind == faults.KindStale {
			n++
		}
	}
	return n
}
