// Package graph provides the undirected multigraph substrate used throughout
// the reproduction of "Can we elect if we cannot compare?" (SPAA 2003).
//
// Graphs are anonymous: nodes carry no labels. What a node does have is an
// ordered list of ports (half-edges). A port is identified by its index at
// the node, but protocol-level code never sees these indices directly: the
// simulator (internal/sim) wraps them in opaque, incomparable symbols, as the
// qualitative model demands. Multigraphs with parallel edges and loops are
// supported because the paper's Figure 2(c) counterexample needs them (a
// loop contributes two distinct ports at its node).
package graph

import (
	"errors"
	"fmt"
)

// Half is a half-edge (port) at some node.
type Half struct {
	Edge int // edge identifier, shared with the twin half-edge
	To   int // node at the other end (equal to the owner for loops)
	Twin int // port index of the twin half-edge at To
}

// Graph is an immutable undirected multigraph with loops.
// Construct one with a Builder or a generator from this package.
type Graph struct {
	halves [][]Half
	m      int
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	halves [][]Half
	m      int
}

// NewBuilder returns a Builder for a graph on n isolated nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{halves: make([][]Half, n)}
}

// AddEdge adds an undirected edge {u, v} (u == v adds a loop, which occupies
// two ports at u) and returns its edge identifier.
func (b *Builder) AddEdge(u, v int) int {
	n := len(b.halves)
	if u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
	}
	id := b.m
	b.m++
	pu := len(b.halves[u])
	if u == v {
		// A loop: two consecutive ports at u, twinned with each other.
		b.halves[u] = append(b.halves[u],
			Half{Edge: id, To: u, Twin: pu + 1},
			Half{Edge: id, To: u, Twin: pu})
		return id
	}
	pv := len(b.halves[v])
	b.halves[u] = append(b.halves[u], Half{Edge: id, To: v, Twin: pv})
	b.halves[v] = append(b.halves[v], Half{Edge: id, To: u, Twin: pu})
	return id
}

// Graph freezes the builder. The builder must not be used afterwards.
func (b *Builder) Graph() *Graph {
	g := &Graph{halves: b.halves, m: b.m}
	b.halves = nil
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.halves) }

// M returns the number of edges (a loop counts once).
func (g *Graph) M() int { return g.m }

// Deg returns the degree of v, i.e. its number of ports
// (a loop contributes 2).
func (g *Graph) Deg(v int) int { return len(g.halves[v]) }

// Port returns the half-edge at port index p of node v.
func (g *Graph) Port(v, p int) Half { return g.halves[v][p] }

// Ports returns the half-edges of v. The slice must not be modified.
func (g *Graph) Ports(v int) []Half { return g.halves[v] }

// NeighborSet returns the distinct neighbors of v (excluding v itself even
// if v has a loop), in increasing order.
func (g *Graph) NeighborSet(v int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, h := range g.halves[v] {
		if h.To != v && !seen[h.To] {
			seen[h.To] = true
			out = append(out, h.To)
		}
	}
	sortInts(out)
	return out
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	for _, h := range g.halves[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// EdgeEndpoints returns, for every edge id, its two endpoints (u <= v).
func (g *Graph) EdgeEndpoints() [][2]int {
	out := make([][2]int, g.m)
	for i := range out {
		out[i] = [2]int{-1, -1}
	}
	for v, hs := range g.halves {
		for _, h := range hs {
			e := out[h.Edge]
			if e[0] == -1 {
				out[h.Edge] = [2]int{v, h.To}
			}
		}
	}
	for i, e := range out {
		if e[0] > e[1] {
			out[i] = [2]int{e[1], e[0]}
		}
	}
	return out
}

// IsSimple reports whether g has no loops and no parallel edges.
func (g *Graph) IsSimple() bool {
	for v, hs := range g.halves {
		seen := make(map[int]bool)
		for _, h := range hs {
			if h.To == v || seen[h.To] {
				return false
			}
			seen[h.To] = true
		}
	}
	return true
}

// IsRegular reports whether all nodes have the same degree, and that degree.
func (g *Graph) IsRegular() (bool, int) {
	if g.N() == 0 {
		return true, 0
	}
	d := g.Deg(0)
	for v := 1; v < g.N(); v++ {
		if g.Deg(v) != d {
			return false, -1
		}
	}
	return true, d
}

// DegreeSequence returns the sorted (non-increasing) degree sequence.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, g.N())
	for v := range out {
		out[v] = g.Deg(v)
	}
	for i := 1; i < len(out); i++ { // insertion sort, descending
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BFSDist returns the array of hop distances from src (-1 if unreachable).
func (g *Graph) BFSDist(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.halves[v] {
			if dist[h.To] == -1 {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// IsConnected reports whether g is connected (the empty graph is connected).
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	for _, d := range g.BFSDist(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the diameter of g, or -1 if g is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	max := 0
	for v := 0; v < g.N(); v++ {
		for _, d := range g.BFSDist(v) {
			if d == -1 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AdjacencyMatrix returns the n×n matrix of edge multiplicities.
// A loop at v counts 2 in entry (v, v), the usual convention.
func (g *Graph) AdjacencyMatrix() [][]int {
	n := g.N()
	m := make([][]int, n)
	for v := range m {
		m[v] = make([]int, n)
	}
	for v, hs := range g.halves {
		for _, h := range hs {
			m[v][h.To]++
		}
	}
	return m
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := &Graph{halves: make([][]Half, g.N()), m: g.m}
	for v := range g.halves {
		h.halves[v] = append([]Half(nil), g.halves[v]...)
	}
	return h
}

// Relabel returns the graph obtained by renaming node v to perm[v].
// perm must be a permutation of 0..n-1. Port orders follow the original
// node's port order, so the port structure is preserved up to renaming.
func (g *Graph) Relabel(perm []int) (*Graph, error) {
	n := g.N()
	if len(perm) != n {
		return nil, errors.New("graph: permutation length mismatch")
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, errors.New("graph: not a permutation")
		}
		seen[p] = true
	}
	h := &Graph{halves: make([][]Half, n), m: g.m}
	for v := range g.halves {
		nv := perm[v]
		h.halves[nv] = make([]Half, len(g.halves[v]))
		for p, hf := range g.halves[v] {
			h.halves[nv][p] = Half{Edge: hf.Edge, To: perm[hf.To], Twin: hf.Twin}
		}
	}
	return h, nil
}

// String returns a compact description such as "graph(n=5, m=6)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
