package iso

// This file holds the word-packed primitives under the large-graph engine:
// a []uint64 bitset used by the worklist refinement to mark touched cells
// and split parents without clearing O(n) state per pass, a stable bottom-up
// merge sort over flat count arrays (the cell-splitting comparator never
// escapes to an interface or allocates), and varint append/compare helpers
// for the sparse O(n+m) canonical word. Everything here is allocation-free
// after warmup; see DESIGN.md §13.

// bitset is a packed bit vector. All methods take int32 indices because the
// refinement scratch is int32-indexed throughout.
type bitset []uint64

// newBitset returns a bitset with capacity for n bits.
func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) test(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }
func (b bitset) set(i int32)       { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }
func (b bitset) clear(i int32)     { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

// sortInt32s sorts a ascending in place (insertion sort: the inputs — split
// parents per pass, block positions per word block — are short and nearly
// sorted, and this keeps the hot path free of sort.Slice's closure
// allocation).
func sortInt32s(a []int32) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// appendUvarint appends v in unsigned LEB128 form. Values below 0x80 (the
// overwhelmingly common case: multiplicities and small positions) encode as
// a single byte, so the sparse word stays near its information-theoretic
// size and remains comparable bytewise.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// sortCellByCnt stably sorts one cell's vertices ascending by the flat count
// pair (cntOut[v], cntIn[v]). Small cells use binary-free insertion sort;
// larger cells a bottom-up merge sort over st.sortTmp, so splitting a cell
// of c vertices costs O(c log c) with no allocation and no per-comparison
// indirection.
func (st *canonState) sortCellByCnt(a []int) {
	cntOut, cntIn := st.cntOut, st.cntIn
	less := func(x, y int) bool {
		if cntOut[x] != cntOut[y] {
			return cntOut[x] < cntOut[y]
		}
		return cntIn[x] < cntIn[y]
	}
	if len(a) <= 24 {
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && less(x, a[j]) {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	tmp := st.sortTmp[:len(a)]
	// Bottom-up merge: runs double each round; ties take the left element,
	// preserving the pre-sort (previous-partition) order that the refinement
	// equivalence proof depends on.
	src, dst := a, tmp
	for width := 1; width < len(a); width <<= 1 {
		for lo := 0; lo < len(a); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(a) {
				mid = len(a)
			}
			if hi > len(a) {
				hi = len(a)
			}
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				if i < mid && (j >= hi || !less(src[j], src[i])) {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
