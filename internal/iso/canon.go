package iso

import "repro/internal/perm"

// canonState drives one canonical labeling search. All scratch (partition
// levels, signature buffers, the path's word prefix, orbit union-finds) is
// owned here and reused across the whole backtracking tree, so the search
// allocates O(depth) level structures and otherwise runs allocation-free.
type canonState struct {
	c *Colored
	g *csr
	n int

	// Search outcome.
	best     []byte      // minimum leaf word so far (full serialization)
	bperm    perm.Perm   // ordering that produced best (vertex -> position)
	bpermInv []int       // position -> vertex, maintained with bperm
	autos    []perm.Perm // discovered automorphisms (see leaf handling)
	bestGen  int         // bumped every time best is replaced

	// prefix is the serialized word of the current path, valid up to the
	// bytes determined by the path's leading singleton cells: length
	// n + k² when the first k cells are singletons. prefix[0:n] (the color
	// bytes) is constant across the entire tree: initial cells are
	// monochromatic and occupy fixed position ranges that refinement and
	// individualization only subdivide.
	prefix []byte

	// base is the stack of individualized vertices on the current path;
	// the orbit pruning at each node is relative to it.
	base []int

	levels []*level

	// leaves counts visited leaves; when maxLeaves > 0 and the count would
	// exceed it, budgetHit aborts the search (CanonicalBudget returns
	// ErrLeafBudget — an explicit failure, never a truncated word).
	leaves    int
	maxLeaves int
	budgetHit bool

	// Search-shape counters, flushed to the package stats once per search
	// (plain ints: the search runs on one goroutine).
	nodes        int
	orbitPrunes  int
	prefixPrunes int

	// Scratch reused by every refinement pass and leaf.
	cellOf       []int32
	sig          []int32
	startScratch []int32
	colorCounts  []int32
}

func newCanonState(c *Colored, maxLeaves int) *canonState {
	n := c.N
	return &canonState{
		c:            c,
		g:            buildCSR(c),
		n:            n,
		maxLeaves:    maxLeaves,
		prefix:       make([]byte, 0, n+n*n),
		base:         make([]int, 0, n),
		cellOf:       make([]int32, n),
		startScratch: make([]int32, 0, n+1),
	}
}

// level returns the pooled partition state for the given search depth,
// allocating it on first use.
func (st *canonState) level(depth int) *level {
	for len(st.levels) <= depth {
		lv := &level{
			lab:       make([]int, st.n),
			cellStart: make([]int32, 0, st.n+1),
			uf:        make([]int32, st.n),
			ufGen:     -1,
		}
		lv.tried = make([]int, 0, st.n)
		st.levels = append(st.levels, lv)
	}
	return st.levels[depth]
}

// sigScratch returns a zeroable signature buffer of at least size entries.
func (st *canonState) sigScratch(size int) []int32 {
	if cap(st.sig) < size {
		st.sig = make([]int32, size)
	}
	return st.sig[:size]
}

func (st *canonState) run() {
	lv := st.level(0)
	st.initialPartition(lv)
	st.prefix = st.prefix[:0]
	for _, v := range lv.lab {
		st.prefix = append(st.prefix, byte(st.c.Color[v]))
	}
	st.search(0, 0, -1)
}

// search explores the subtree rooted at level depth, whose partition has
// been individualized but not yet refined. fixed is the number of leading
// singleton cells of the parent (whose word bytes are already in prefix).
// cmp is the relation of the path's determined word bytes to best:
// -1 strictly smaller (or best unset), 0 equal so far. Subtrees whose
// determined bytes exceed best are pruned before reaching a leaf.
func (st *canonState) search(depth, fixed, cmp int) {
	if st.budgetHit {
		return
	}
	st.nodes++
	lv := st.levels[depth]
	st.refine(lv)

	// Extend the determined prefix over the new leading singleton cells
	// and compare incrementally against best.
	k := fixed
	for k < lv.ncells && lv.cellStart[k+1]-lv.cellStart[k] == 1 {
		k++
	}
	for i := fixed; i < k; i++ {
		st.prefix = appendBlock(st.prefix, st.c, lv.lab, i, lv.lab[i])
	}
	if cmp == 0 {
		lo, hi := st.n+fixed*fixed, st.n+k*k
		for i := lo; i < hi; i++ {
			if st.prefix[i] != st.best[i] {
				if st.prefix[i] < st.best[i] {
					cmp = -1
				} else {
					st.prefixPrunes++
					st.prefix = st.prefix[:st.n+fixed*fixed]
					return // partial word already exceeds best: prune
				}
				break
			}
		}
	}

	if lv.discrete(st.n) {
		st.leaf(lv, cmp)
		st.prefix = st.prefix[:st.n+fixed*fixed]
		return
	}

	// Branch on the first smallest non-singleton cell.
	target, targetLen := -1, st.n+1
	for t := 0; t < lv.ncells; t++ {
		if l := int(lv.cellStart[t+1] - lv.cellStart[t]); l > 1 && l < targetLen {
			target, targetLen = t, l
		}
	}
	s, e := int(lv.cellStart[target]), int(lv.cellStart[target+1])
	lv.tried = lv.tried[:0]
	for ci := s; ci < e; ci++ {
		v := lv.lab[ci]
		// Orbit pruning: vertices of the cell in one orbit of the
		// base-pointwise stabilizer of the discovered automorphism group
		// lead to identical subtrees; explore one per orbit.
		if st.inOrbitOfTried(lv, v) {
			st.orbitPrunes++
			continue
		}
		lv.tried = append(lv.tried, v)
		child := st.level(depth + 1)
		child.copyFrom(lv)
		child.individualize(target, v)
		st.base = append(st.base, v)
		gen := st.bestGen
		st.search(depth+1, k, cmp)
		st.base = st.base[:len(st.base)-1]
		if st.budgetHit {
			break
		}
		if st.bestGen != gen {
			// best was replaced by a leaf of the subtree just explored,
			// so this node's determined prefix is a prefix of (hence
			// equal to) the new best's.
			cmp = 0
		}
	}
	st.prefix = st.prefix[:st.n+fixed*fixed]
}

// leaf handles a discrete partition: prefix now holds the full leaf word.
func (st *canonState) leaf(lv *level, cmp int) {
	st.leaves++
	if st.maxLeaves > 0 && st.leaves > st.maxLeaves {
		st.budgetHit = true
		return
	}
	switch cmp {
	case -1:
		// Strictly smaller than best at some determined byte (or best
		// unset): install as the new best.
		st.best = append(st.best[:0], st.prefix...)
		if st.bperm == nil {
			st.bperm = make(perm.Perm, st.n)
			st.bpermInv = make([]int, st.n)
		}
		for pos, v := range lv.lab {
			st.bperm[v] = pos
			st.bpermInv[pos] = v
		}
		st.bestGen++
	case 0:
		// Equal to best: lab and bperm induce the same canonical graph,
		// so bperm⁻¹∘cand is an automorphism of c.
		a := make(perm.Perm, st.n)
		for pos, v := range lv.lab {
			a[v] = st.bpermInv[pos]
		}
		if !a.IsIdentity() && st.c.IsAutomorphism(a) {
			st.autos = append(st.autos, a)
		}
	}
}

// inOrbitOfTried reports whether some already-tried branch vertex maps to v
// under the subgroup of discovered automorphisms fixing the current base
// pointwise. The orbit partition is a union-find over the stabilizer's
// generators, cached on the level and rebuilt only when new automorphisms
// have been discovered since — no stabilizer recomputation and no
// permutation inversions in the loop (inverses are not needed at all:
// union(i, a[i]) over generators already yields the generated group's
// orbits).
func (st *canonState) inOrbitOfTried(lv *level, v int) bool {
	if len(lv.tried) == 0 || len(st.autos) == 0 {
		return false
	}
	if lv.ufGen != len(st.autos) {
		for i := range lv.uf {
			lv.uf[i] = int32(i)
		}
		for _, a := range st.autos {
			fixesBase := true
			for _, b := range st.base {
				if a[b] != b {
					fixesBase = false
					break
				}
			}
			if !fixesBase {
				continue
			}
			for i, ai := range a {
				ufUnion(lv.uf, int32(i), int32(ai))
			}
		}
		lv.ufGen = len(st.autos)
	}
	r := ufFind(lv.uf, int32(v))
	for _, t := range lv.tried {
		if ufFind(lv.uf, int32(t)) == r {
			return true
		}
	}
	return false
}

func ufFind(uf []int32, x int32) int32 {
	for uf[x] != x {
		uf[x] = uf[uf[x]]
		x = uf[x]
	}
	return x
}

func ufUnion(uf []int32, a, b int32) {
	ra, rb := ufFind(uf, a), ufFind(uf, b)
	if ra != rb {
		uf[ra] = rb
	}
}
