// Package lint holds repo-policy tests that gate on static analysis of the
// source tree rather than on runtime behavior.
package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// docPackages are the packages whose exported API must be fully documented
// (the CI revive step enforces the same rule; this test keeps the gate
// runnable offline with no tooling beyond the standard library).
var docPackages = []string{
	"../..",        // package repro (facade)
	"../sim",       // the runtime users program against
	"../elect",     // the protocol layer
	"../adversary", // the schedule explorer
	"../runtime",   // the unified Protocol/Runtime contract
	"../zoo",       // the related-work protocol zoo
}

// TestExportedSymbolsDocumented parses each gated package and fails on any
// exported declaration without a doc comment. Grouped specs inherit their
// group's comment (const blocks with one leading comment are fine).
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range docPackages {
		dir := dir
		t.Run(filepath.Clean(dir), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", dir, err)
			}
			for _, pkg := range pkgs {
				for path, file := range pkg.Files {
					checkFile(t, fset, path, file)
				}
			}
		})
	}
}

func checkFile(t *testing.T, fset *token.FileSet, path string, file *ast.File) {
	t.Helper()
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods count when the receiver type is exported.
			if d.Recv != nil && len(d.Recv.List) > 0 && !exportedRecv(d.Recv.List[0].Type) {
				continue
			}
			if d.Doc == nil {
				report(t, fset, d.Pos(), "func "+d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(t, fset, s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(t, fset, s.Pos(), "var/const "+name.Name)
						}
					}
				}
			}
		}
	}
}

func exportedRecv(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return exportedRecv(e.X)
	case *ast.IndexExpr: // generic receiver
		return exportedRecv(e.X)
	case *ast.Ident:
		return e.IsExported()
	}
	return false
}

func report(t *testing.T, fset *token.FileSet, pos token.Pos, what string) {
	t.Helper()
	t.Errorf("%s: exported %s has no doc comment", fset.Position(pos), what)
}
