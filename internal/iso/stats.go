package iso

import "sync/atomic"

// SearchStats is a snapshot of the canonical-search counters: how many
// searches ran, how big their backtracking trees were, and how often each
// pruning rule fired. The counters are process-global and monotonically
// increasing — callers wanting per-workload numbers take a snapshot
// before and after and Sub the two. The frozen reference engine
// (SetReferenceEngine) does not count.
type SearchStats struct {
	// Searches is the number of completed canonical searches.
	Searches int64 `json:"searches"`
	// Nodes is the number of search-tree nodes visited (refinement calls).
	Nodes int64 `json:"nodes"`
	// Leaves is the number of discrete partitions reached.
	Leaves int64 `json:"leaves"`
	// OrbitPrunes counts branches skipped because an already-tried vertex
	// of the cell maps to the candidate under a discovered automorphism.
	OrbitPrunes int64 `json:"orbit_prunes"`
	// PrefixPrunes counts subtrees cut because the path's determined word
	// bytes already exceed the best leaf word.
	PrefixPrunes int64 `json:"prefix_prunes"`
	// BudgetExhaustions counts searches aborted by ErrLeafBudget.
	BudgetExhaustions int64 `json:"budget_exhaustions"`
}

// Sub returns s minus t field by field — the delta between two snapshots.
func (s SearchStats) Sub(t SearchStats) SearchStats {
	return SearchStats{
		Searches:          s.Searches - t.Searches,
		Nodes:             s.Nodes - t.Nodes,
		Leaves:            s.Leaves - t.Leaves,
		OrbitPrunes:       s.OrbitPrunes - t.OrbitPrunes,
		PrefixPrunes:      s.PrefixPrunes - t.PrefixPrunes,
		BudgetExhaustions: s.BudgetExhaustions - t.BudgetExhaustions,
	}
}

// searchStats are the process-global accumulators. The search itself
// counts into plain ints on its canonState (the hot path stays
// non-atomic); each search flushes them here once, on completion.
var searchStats struct {
	searches, nodes, leaves   atomic.Int64
	orbitPrunes, prefixPrunes atomic.Int64
	budgetExhaustions         atomic.Int64
}

// Stats snapshots the process-global canonical-search counters.
func Stats() SearchStats {
	return SearchStats{
		Searches:          searchStats.searches.Load(),
		Nodes:             searchStats.nodes.Load(),
		Leaves:            searchStats.leaves.Load(),
		OrbitPrunes:       searchStats.orbitPrunes.Load(),
		PrefixPrunes:      searchStats.prefixPrunes.Load(),
		BudgetExhaustions: searchStats.budgetExhaustions.Load(),
	}
}

// flushStats adds one finished search's local counters to the globals.
func (st *canonState) flushStats() {
	searchStats.searches.Add(1)
	searchStats.nodes.Add(int64(st.nodes))
	searchStats.leaves.Add(int64(st.leaves))
	searchStats.orbitPrunes.Add(int64(st.orbitPrunes))
	searchStats.prefixPrunes.Add(int64(st.prefixPrunes))
	if st.budgetHit {
		searchStats.budgetExhaustions.Add(1)
	}
}
