package msgnet

import (
	"testing"

	"repro/internal/elect"
	"repro/internal/graph"
)

func ringConfig(n int, seed int64) Config {
	homes := make([]int, n)
	for i := range homes {
		homes[i] = i
	}
	return Config{
		G:      graph.Cycle(n),
		Labels: elect.OrientedCycleLabeling(n),
		Homes:  homes,
		Seed:   seed,
	}
}

func checkChangRoberts(t *testing.T, res *Result, n int) {
	t.Helper()
	leaders := 0
	for i, o := range res.Outcomes {
		switch o {
		case "leader":
			leaders++
			if i != n-1 {
				t.Fatalf("agent %d elected; the maximum identity (agent %d) must win", i, n-1)
			}
		case "defeated":
		default:
			t.Fatalf("agent %d has outcome %q", i, o)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
}

func TestChangRobertsMobile(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunMobile(ringConfig(7, seed), ChangRoberts(1))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkChangRoberts(t, res, 7)
	}
}

func TestChangRobertsTransformed(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunTransformed(ringConfig(7, seed), ChangRoberts(1))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkChangRoberts(t, res, 7)
	}
}

// TestFigure1Equivalence is the executable content of Figure 1: the same
// agent program elects the same leader whether run by walking agents or by
// processors exchanging (program, memory) messages, across sizes and
// adversarial schedules.
func TestFigure1Equivalence(t *testing.T) {
	for _, n := range []int{3, 5, 8, 12} {
		for seed := int64(1); seed <= 8; seed++ {
			mobile, err := RunMobile(ringConfig(n, seed), ChangRoberts(1))
			if err != nil {
				t.Fatalf("mobile n=%d seed %d: %v", n, seed, err)
			}
			msg, err := RunTransformed(ringConfig(n, seed*31), ChangRoberts(1))
			if err != nil {
				t.Fatalf("transformed n=%d seed %d: %v", n, seed, err)
			}
			for i := range mobile.Outcomes {
				if mobile.Outcomes[i] != msg.Outcomes[i] {
					t.Fatalf("n=%d seed %d: agent %d differs: mobile %q vs transformed %q",
						n, seed, i, mobile.Outcomes[i], msg.Outcomes[i])
				}
			}
		}
	}
}

func TestWalkerStepsAndReturn(t *testing.T) {
	// A walker doing n clockwise hops ends where it started; both runners
	// must complete it.
	cfg := ringConfig(6, 3)
	cfg.Homes = []int{2}
	for name, run := range map[string]func(Config, Machine) (*Result, error){
		"mobile":      RunMobile,
		"transformed": RunTransformed,
	} {
		res, err := run(cfg, Walker(1, 6))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Outcomes[0] != "done" {
			t.Fatalf("%s: outcome %q", name, res.Outcomes[0])
		}
		// 6 moves + final halt step = 7 activations.
		if res.Steps != 7 {
			t.Fatalf("%s: %d steps, want 7", name, res.Steps)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	cfg := ringConfig(4, 1)
	if _, err := RunMobile(cfg, Sitter()); err == nil {
		t.Error("mobile runner missed the deadlock")
	}
	if _, err := RunTransformed(cfg, Sitter()); err == nil {
		t.Error("transformed runner missed the deadlock")
	}
}

func TestParkedAgentWakesOnBoardChange(t *testing.T) {
	// Agent 0 sits at node 1 until a mark appears; agent 1 (based at node
	// 1 of a 2-ring... use P2 via labels) writes it. Use C3 with two
	// agents: A walks to B's home and waits for B's stamp, then halts.
	g := graph.Cycle(3)
	labels := elect.OrientedCycleLabeling(3)
	machine := func(memory string, v View) (string, Action) {
		switch memory {
		case "":
			if v.ID == 1 {
				// Agent 1: walk one step clockwise, then wait for a stamp.
				return "waiting", Action{MoveLabel: 1}
			}
			// Agent 2: stamp home after a while (the scheduler decides);
			// then halt.
			return "", Action{Write: []string{"stamp"}, Halt: "done"}
		case "waiting":
			for _, m := range v.Board {
				if m == "stamp" {
					return memory, Action{Halt: "done"}
				}
			}
			return memory, Action{MoveLabel: -1}
		}
		return memory, Action{Halt: "error"}
	}
	for seed := int64(1); seed <= 10; seed++ {
		for name, run := range map[string]func(Config, Machine) (*Result, error){
			"mobile":      RunMobile,
			"transformed": RunTransformed,
		} {
			res, err := run(Config{G: g, Labels: labels, Homes: []int{0, 1}, Seed: seed}, machine)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if res.Outcomes[0] != "done" || res.Outcomes[1] != "done" {
				t.Fatalf("%s seed %d: outcomes %v", name, seed, res.Outcomes)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunMobile(Config{}, Walker(1, 1)); err == nil {
		t.Error("empty config accepted")
	}
	g := graph.Cycle(3)
	if _, err := RunMobile(Config{G: g, Labels: elect.OrientedCycleLabeling(3)}, Walker(1, 1)); err == nil {
		t.Error("no agents accepted")
	}
	if _, err := RunMobile(Config{G: g, Labels: elect.OrientedCycleLabeling(3), Homes: []int{9}}, Walker(1, 1)); err == nil {
		t.Error("out-of-range home accepted")
	}
	// Bad move label surfaces as an error.
	bad := func(memory string, v View) (string, Action) {
		return memory, Action{MoveLabel: 99}
	}
	if _, err := RunMobile(Config{G: g, Labels: elect.OrientedCycleLabeling(3), Homes: []int{0}}, bad); err == nil {
		t.Error("bad move label accepted in mobile runner")
	}
	if _, err := RunTransformed(Config{G: g, Labels: elect.OrientedCycleLabeling(3), Homes: []int{0}}, bad); err == nil {
		t.Error("bad move label accepted in transformed runner")
	}
}
