package runtime

import (
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
)

// WorkerEnv is the environment variable that turns a process into a bus
// worker: its value is "network|address|shard" (e.g.
// "unix|/tmp/bus.sock|0"). Binaries that can serve as networked-backend
// workers call MaybeWorker first thing in main; the coordinator sets the
// variable when re-execing them.
const WorkerEnv = "REPRO_ELECTNODE_WORKER"

// MaybeWorker turns the current process into a bus worker when WorkerEnv
// is set: it dials the coordinator, serves its shard until the FrameDone
// handshake, and exits the process. When the variable is unset it returns
// immediately, so every participating binary can call it unconditionally.
func MaybeWorker() {
	spec := os.Getenv(WorkerEnv)
	if spec == "" {
		return
	}
	if err := RunWorker(spec); err != nil {
		fmt.Fprintln(os.Stderr, "electnode worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker dials the coordinator named by a WorkerEnv spec
// ("network|address|shard"), announces its shard, and serves activations
// until the coordinator sends FrameDone.
func RunWorker(spec string) error {
	parts := strings.Split(spec, "|")
	if len(parts) != 3 {
		return fmt.Errorf("runtime: bad worker spec %q (want network|address|shard)", spec)
	}
	shard, err := strconv.Atoi(parts[2])
	if err != nil {
		return fmt.Errorf("runtime: bad worker shard in %q", spec)
	}
	conn, err := net.Dial(parts[0], parts[1])
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := writeFrame(conn, &frame{T: FrameHello, Shard: shard}); err != nil {
		return err
	}
	return ServeWorker(conn)
}

// workerShard is the worker-side state: the boards, labels and revision
// counters of the nodes this worker owns, plus the protocol reconstructed
// from the init frame's spec.
type workerShard struct {
	proto  Protocol
	boards map[int]*boardSet
	rev    map[int]int
	labels map[int][]int
}

// ServeWorker runs the worker side of the bus protocol on an established
// connection: one FrameInit builds the shard, then every FrameExec is
// answered with a FrameResult until FrameDone (or EOF) ends the session.
// It serves net.Pipe ends and sockets alike — the in-process spawn mode
// and the re-exec'd worker processes share this loop.
func ServeWorker(conn io.ReadWriter) error {
	var sh *workerShard
	for {
		f, _, err := readFrame(conn)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch f.T {
		case FrameInit:
			sh = &workerShard{
				boards: make(map[int]*boardSet),
				rev:    make(map[int]int),
				labels: make(map[int][]int),
			}
			ack := &frame{T: FrameOK}
			p, err := FromSpec(f.Spec)
			if err != nil {
				ack.Err = err.Error()
			} else {
				sh.proto = p
				for _, ni := range f.Nodes {
					b := &boardSet{}
					for _, agent := range ni.Homes {
						b.write(agent, TagHome)
					}
					sh.boards[ni.V] = b
					sh.rev[ni.V] = 0
					sh.labels[ni.V] = append([]int(nil), ni.Labels...)
				}
			}
			if _, err := writeFrame(conn, ack); err != nil {
				return err
			}
		case FrameExec:
			res := &frame{T: FrameResult, Node: f.Node, Agent: f.Agent}
			if sh == nil || sh.proto == nil {
				res.Err = "runtime: exec before init"
			} else if b, ok := sh.boards[f.Node]; !ok {
				res.Err = fmt.Sprintf("runtime: node %d is not in this shard", f.Node)
			} else {
				mem, eff := sh.proto.Step(f.Mem, View{
					Degree: len(sh.labels[f.Node]),
					Labels: append([]int(nil), sh.labels[f.Node]...),
					Entry:  f.Entry,
					Board:  b.view(),
					ID:     f.Agent + 1,
				})
				for _, w := range eff.Write {
					if b.write(f.Agent, w) {
						sh.rev[f.Node]++
					}
				}
				res.Mem = mem
				res.Move = eff.Move
				res.Halt = eff.Halt
				res.Rev = sh.rev[f.Node]
				if eff.Halt != "" {
					res.Move = -1
				}
			}
			if _, err := writeFrame(conn, res); err != nil {
				return err
			}
		case FrameDone:
			return nil
		default:
			return fmt.Errorf("runtime: worker got unexpected frame %q", f.T)
		}
	}
}
