package group

import (
	"errors"
	"fmt"
)

// This file provides the algebraic counterparts of the interconnection
// networks in internal/graph: the wreath-like group Z_2^d ⋊ Z_d behind
// cube-connected-cycles and wrapped butterflies, and the symmetric-group
// Cayley constructions of star and pancake graphs.

// SemidirectZ2Zd returns Z_2^d ⋊ Z_d where Z_d acts on Z_2^d by cyclic
// left-rotation of coordinates: (x, i)·(y, j) = (x ⊕ rotₗ(y, i), i + j).
// Element (x, i) is encoded x*d + i (identity (0,0) encodes to 0).
func SemidirectZ2Zd(d int) *Group {
	if d < 1 || d > 10 {
		panic("group: SemidirectZ2Zd supports 1 <= d <= 10")
	}
	size := d * (1 << uint(d))
	rot := func(y, i int) int { // rotate the d-bit word y left by i
		i %= d
		mask := 1<<uint(d) - 1
		return ((y << uint(i)) | (y >> uint(d-i))) & mask
	}
	enc := func(x, i int) int { return x*d + i }
	mul := make([][]int, size)
	names := make([]string, size)
	for x := 0; x < 1<<uint(d); x++ {
		for i := 0; i < d; i++ {
			a := enc(x, i)
			mul[a] = make([]int, size)
			names[a] = fmt.Sprintf("(%0*b,%d)", d, x, i)
			for y := 0; y < 1<<uint(d); y++ {
				for j := 0; j < d; j++ {
					mul[a][enc(y, j)] = enc(x^rot(y, i), (i+j)%d)
				}
			}
		}
	}
	return mustFromTable(fmt.Sprintf("Z2^%d:Z%d", d, d), mul, names)
}

// CCCCayley returns the cube-connected-cycles network CCC(d) as the Cayley
// graph Cay(Z_2^d ⋊ Z_d, {(0,±1), (e_0,0)}): right multiplication by
// (0,±1) walks the local cycle and by (e_0,0) crosses the cube edge at the
// current level.
func CCCCayley(d int) (*Cayley, error) {
	if d < 3 {
		return nil, errors.New("group: CCCCayley needs d >= 3")
	}
	g := SemidirectZ2Zd(d)
	enc := func(x, i int) int { return x*d + i }
	gens := []int{enc(0, 1), enc(0, d-1), enc(1, 0)} // e_0 = word 1
	return NewCayley(g, gens)
}

// WrappedButterflyCayley returns WB(d) as the Cayley graph
// Cay(Z_2^d ⋊ Z_d, {(0,1), (e_0,1)} ∪ inverses).
func WrappedButterflyCayley(d int) (*Cayley, error) {
	if d < 3 {
		return nil, errors.New("group: WrappedButterflyCayley needs d >= 3")
	}
	g := SemidirectZ2Zd(d)
	enc := func(x, i int) int { return x*d + i }
	s1 := enc(0, 1)
	s2 := enc(1, 1)
	return NewCayley(g, []int{s1, g.Inv(s1), s2, g.Inv(s2)})
}

// StarCayley returns the star graph ST(k) as Cay(S_k, {(0 i) : 1 <= i < k}).
func StarCayley(k int) (*Cayley, error) {
	if k < 2 || k > 5 {
		return nil, errors.New("group: StarCayley supports 2 <= k <= 5")
	}
	g := Symmetric(k)
	gens, err := transpositionGens(g, k)
	if err != nil {
		return nil, err
	}
	return NewCayley(g, gens)
}

// transpositionGens finds the elements of S_k (in the Symmetric encoding)
// that are the transpositions (0 i), i = 1..k-1, by their action: the
// element whose permutation swaps 0 and i. Symmetric names elements by
// their permutation, so we search by order and fixed points.
func transpositionGens(g *Group, k int) ([]int, error) {
	// Reconstruct each element's permutation from the group's action on
	// the cosets is overkill; instead use the element names produced by
	// Symmetric, which are the permutation literals.
	var gens []int
	for i := 1; i < k; i++ {
		want := make([]int, k)
		for j := range want {
			want[j] = j
		}
		want[0], want[i] = want[i], want[0]
		name := fmt.Sprintf("%v", want)
		found := -1
		for e := 0; e < g.Order(); e++ {
			if g.ElemName(e) == name {
				found = e
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("group: transposition %v not found", want)
		}
		gens = append(gens, found)
	}
	return gens, nil
}

// PancakeCayley returns the pancake graph as Cay(S_k, prefix reversals).
func PancakeCayley(k int) (*Cayley, error) {
	if k < 2 || k > 5 {
		return nil, errors.New("group: PancakeCayley supports 2 <= k <= 5")
	}
	g := Symmetric(k)
	var gens []int
	for l := 2; l <= k; l++ {
		want := make([]int, k)
		for j := range want {
			want[j] = j
		}
		for i, j := 0, l-1; i < j; i, j = i+1, j-1 {
			want[i], want[j] = want[j], want[i]
		}
		name := fmt.Sprintf("%v", want)
		found := -1
		for e := 0; e < g.Order(); e++ {
			if g.ElemName(e) == name {
				found = e
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("group: prefix reversal of length %d not found", l)
		}
		gens = append(gens, found)
	}
	return NewCayley(g, gens)
}
