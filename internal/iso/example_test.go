package iso_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/iso"
)

// Canonical forms decide isomorphism: the Petersen graph drawn two ways.
func ExampleIsomorphic() {
	a := graph.Petersen()
	b, _ := a.Relabel([]int{3, 1, 4, 0, 5, 9, 2, 6, 8, 7})
	fmt.Println(iso.Isomorphic(iso.FromGraph(a, nil), iso.FromGraph(b, nil)))
	fmt.Println(iso.Isomorphic(iso.FromGraph(a, nil), iso.FromGraph(graph.Cycle(10), nil)))
	// Output:
	// true
	// false
}

// Orbits of the automorphism group are the equivalence classes of
// Definition 2.1: a star's center is alone, its leaves are interchangeable.
func ExampleOrbits() {
	fmt.Println(iso.Orbits(iso.FromGraph(graph.Star(3), nil)))
	// Output: [[0] [1 2 3]]
}
