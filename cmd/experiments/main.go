// Command experiments regenerates every table and figure of the paper plus
// the validation experiments of DESIGN.md §4: Table 1, Figures 1, 2(a,b),
// 2(c) and 5, the Theorem 3.1 correctness/cost/ablation tables, the
// Theorem 4.1 Cayley sweep, the shared-home extension sweep, and the
// Section 5 cost-degradation comparison (E1–E12).
//
// Usage:
//
//	experiments [-e all|table1|fig2ab|fig2c|elect|cayley|petersen|anonymous|cost|ablation|shared|degradation|fig1] [-seed N] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/iso"
	"repro/internal/order"
	"repro/internal/prof"
)

func main() {
	which := flag.String("e", "all", "experiment to run: all, table1, fig2ab, fig2c, elect, cayley, petersen, anonymous, cost, ablation, shared, degradation, fig1")
	seed := flag.Int64("seed", 1, "adversary seed for the simulated runs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	stats := flag.Bool("stats", false, "print canonical-search and class-key counters after the experiments")
	flag.Parse()

	stopProf := prof.Start(*cpuprofile, *memprofile)
	defer stopProf()
	isoBefore, keysBefore := iso.Stats(), order.KeysComputed()

	type experiment struct {
		id, title string
		run       func() (string, error)
	}
	experiments := []experiment{
		{"table1", "E1 — Table 1: election feasibility per agent model", func() (string, error) {
			out, _, err := exp.Table1(*seed)
			return out, err
		}},
		{"fig2ab", "E2 — Figure 2(a,b): quantitative vs qualitative labelings", exp.Fig2AB},
		{"fig2c", "E3 — Figure 2(c): equal views, singleton label classes", exp.Fig2C},
		{"elect", "E4 — Theorem 3.1: Protocol ELECT correctness and cost", func() (string, error) {
			out, _, err := exp.RunElectExperiment(*seed)
			return out, err
		}},
		{"cayley", "E5 — Theorem 4.1: effectual election on Cayley graphs", func() (string, error) {
			out, _, err := exp.RunCayleyExperiment(*seed)
			return out, err
		}},
		{"petersen", "E6 — Figure 5: the Petersen counterexample", func() (string, error) {
			return exp.RunPetersenExperiment(*seed)
		}},
		{"anonymous", "E7 — Section 1.3: anonymous agents cannot elect", exp.RunAnonymousExperiment},
		{"cost", "E8 — Theorem 3.1: moves scale as O(r·|E|)", func() (string, error) {
			out, _, err := exp.RunCostExperiment(*seed)
			return out, err
		}},
		{"ablation", "E9 — ablation: literal Figure 3 loops vs the no-op-phase skip", func() (string, error) {
			return exp.RunSkipAblation(*seed)
		}},
		{"shared", "E10 — extension: several agents per starting node (Section 1.2)", func() (string, error) {
			return exp.RunSharedHomesExperiment(*seed)
		}},
		{"degradation", "E11 — Section 5's question: qualitative vs quantitative cost", func() (string, error) {
			out, _, err := exp.RunDegradationExperiment(*seed)
			return out, err
		}},
		{"fig1", "E12 — Figure 1: agents as messages (mobile vs processor network)", func() (string, error) {
			return exp.RunFig1Experiment(*seed)
		}},
	}

	failed := false
	ran := false
	for _, e := range experiments {
		if *which != "all" && *which != e.id {
			continue
		}
		ran = true
		fmt.Printf("==== %s ====\n", e.title)
		out, err := e.run()
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s FAILED: %v\n", e.id, err)
			failed = true
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		stopProf()
		os.Exit(2)
	}
	if *stats {
		is := iso.Stats().Sub(isoBefore)
		fmt.Printf("iso search: %d searches, %d nodes, %d leaves, prunes orbit=%d prefix=%d, budget exhaustions=%d\n",
			is.Searches, is.Nodes, is.Leaves, is.OrbitPrunes, is.PrefixPrunes, is.BudgetExhaustions)
		fmt.Printf("order: %d class keys computed\n", order.KeysComputed()-keysBefore)
	}
	if failed {
		stopProf() // os.Exit skips defers; flush profiles first
		os.Exit(1)
	}
}
