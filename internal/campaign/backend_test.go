package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	rtbackend "repro/internal/runtime"
)

// TestBackendAxisCampaign crosses a small quantitative campaign with every
// runtime backend: the contract election (runtime.DFSElection) must crown
// the maximum identity on each of them, and the JSONL records must carry
// the backend name.
func TestBackendAxisCampaign(t *testing.T) {
	spec := Spec{
		Families: []FamilySpec{{Family: "cycle", Sizes: []int{6}, Placement: "spread", R: 2}},
		Seeds:    SeedRange{From: 1, To: 2},
		Protocol: ProtoQuantitative,
		Backends: rtbackend.Backends(),
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := 1 * 2 * len(rtbackend.Backends())
	if len(runs) != wantRuns {
		t.Fatalf("expanded %d runs, want %d", len(runs), wantRuns)
	}

	var jsonl bytes.Buffer
	rep, err := Execute(spec, Options{JSONL: &jsonl})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Runs != wantRuns {
		t.Fatalf("summary runs=%d, want %d", s.Runs, wantRuns)
	}
	if s.Errors != 0 || s.Mismatches != 0 {
		t.Fatalf("errors=%d mismatches=%d; failures: %+v", s.Errors, s.Mismatches, rep.Failures())
	}
	if s.Outcomes["leader"] != wantRuns {
		t.Fatalf("outcomes=%v, want %d leader runs", s.Outcomes, wantRuns)
	}

	// Every backend appears in the stream, and each record agrees with the
	// universality oracle the executor applied.
	seen := map[string]int{}
	dec := json.NewDecoder(&jsonl)
	for dec.More() {
		var r RunResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		if !r.OK || r.Outcome != "leader" {
			t.Fatalf("run %d on %q: ok=%v outcome=%q err=%q", r.Index, r.Backend, r.OK, r.Outcome, r.Err)
		}
		if r.Moves <= 0 || r.Accesses <= 0 {
			t.Fatalf("run %d on %q: moves=%d accesses=%d", r.Index, r.Backend, r.Moves, r.Accesses)
		}
		seen[r.Backend]++
	}
	for _, b := range rtbackend.Backends() {
		if seen[b] != 2 {
			t.Fatalf("backend %q ran %d times, want 2 (seen=%v)", b, seen[b], seen)
		}
	}
}

// TestBackendAxisValidation keeps bad backend campaigns at expansion time:
// the axis runs the contract election, so it needs the quantitative
// protocol, cannot mix with the adversary axes, and rejects unknown names.
func TestBackendAxisValidation(t *testing.T) {
	base := Spec{
		Families: []FamilySpec{{Family: "cycle", Sizes: []int{6}}},
		Seeds:    SeedRange{From: 1, To: 1},
	}

	nonQuant := base
	nonQuant.Protocol = ProtoElect
	nonQuant.Backends = []string{"transformed"}
	if _, err := nonQuant.Expand(); err == nil || !strings.Contains(err.Error(), "quantitative") {
		t.Fatalf("non-quantitative backend axis: err=%v", err)
	}

	withStrategy := base
	withStrategy.Protocol = ProtoQuantitative
	withStrategy.Backends = []string{"transformed"}
	withStrategy.Strategies = []string{"fifo"}
	if _, err := withStrategy.Expand(); err == nil {
		t.Fatal("backend axis combined with strategies should fail")
	}

	withFault := base
	withFault.Protocol = ProtoQuantitative
	withFault.Backends = []string{"transformed"}
	withFault.Faults = []string{"crash"}
	if _, err := withFault.Expand(); err == nil {
		t.Fatal("backend axis combined with faults should fail")
	}

	unknown := base
	unknown.Protocol = ProtoQuantitative
	unknown.Backends = []string{"carrier-pigeon"}
	if _, err := unknown.Expand(); err == nil {
		t.Fatal("unknown backend should fail")
	}
}

// TestParseBackends covers the CLI syntax.
func TestParseBackends(t *testing.T) {
	if got, err := ParseBackends(""); err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	if got, err := ParseBackends("all"); err != nil || !reflect.DeepEqual(got, rtbackend.Backends()) {
		t.Fatalf("all: %v %v", got, err)
	}
	got, err := ParseBackends("goroutine, networked")
	if err != nil || !reflect.DeepEqual(got, []string{"goroutine", "networked"}) {
		t.Fatalf("pair: %v %v", got, err)
	}
	if _, err := ParseBackends("goroutine,nope"); err == nil {
		t.Fatal("unknown backend should fail")
	}
}
