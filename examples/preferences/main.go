// Preferences: why agreeing that labels are comparable is not enough —
// agents must agree on HOW to compare them.
//
// The paper's Section 1.1 motivates the qualitative model with exactly this
// scenario: "input values are both distinct and comparable but there is no
// a priori agreement among the agents on the comparability criteria; e.g.,
// some agents might prefer the decreasing ordering while others the
// increasing one."
//
// This example runs three protocols on the same network:
//
//  1. the max-label protocol where every agent happens to use the same
//     ordering — elects correctly (the quantitative model);
//  2. the same protocol where agents apply their own private orderings
//     (odd-identity agents prefer the smallest label) — the agents finish,
//     each convinced of a different "leader": the election silently fails;
//  3. Protocol ELECT, which never compares labels at all and elects using
//     only the asymmetry of the network — immune to the disagreement.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/sim"
)

func main() {
	g := graph.Wheel(5) // asymmetric enough for ELECT: hub + rim
	homes := []int{1, 3, 4}

	fmt.Println("1) quantitative max-label protocol (shared ordering):")
	report(runIt(g, homes, true, elect.QuantitativeElect()))

	fmt.Println("\n2) same protocol, but agents disagree on the ordering")
	fmt.Println("   (odd ids prefer the smallest label):")
	report(runIt(g, homes, true, disagreeingElect()))

	fmt.Println("\n3) Protocol ELECT (qualitative: labels never compared):")
	report(runIt(g, homes, false, elect.Elect(elect.Options{})))
}

func runIt(g *graph.Graph, homes []int, quant bool, p sim.Protocol) *sim.Result {
	res, err := sim.Run(sim.Config{
		Graph: g, Homes: homes, Seed: 9, WakeAll: true, QuantitativeIDs: quant,
	}, p)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func report(res *sim.Result) {
	for i, o := range res.Outcomes {
		line := fmt.Sprintf("   agent %d: %v", i, o.Role)
		if o.Role == sim.RoleDefeated || o.Role == sim.RoleLeader {
			line += fmt.Sprintf(" (accepts %v)", o.Leader)
		}
		fmt.Println(line)
	}
	if res.AgreedLeader() {
		fmt.Println("   => consistent: one leader, unanimously acknowledged")
	} else {
		fmt.Println("   => INCONSISTENT: the agents do not agree on a leader")
	}
}

// disagreeingElect is the max-label protocol with private orderings: agents
// with even identity pick the largest label, odd ones the smallest — the
// paper's "no a priori agreement on the comparability criteria".
func disagreeingElect() sim.Protocol {
	return func(a *sim.Agent) (sim.Outcome, error) {
		m, err := elect.MapDraw(a)
		if err != nil {
			return sim.Outcome{}, err
		}
		k := elect.NewNavigator(a, m)
		myID := a.ID()
		if err := k.WriteEverywhere("id:" + strconv.Itoa(myID)); err != nil {
			return sim.Outcome{}, err
		}
		r := m.R()
		ss, err := k.WaitHome(func(ss sim.Signs) bool {
			return len(ss.WithPrefix("id:")) >= r
		})
		if err != nil {
			return sim.Outcome{}, err
		}
		best := -1
		var bestColor sim.Color
		for _, s := range ss.WithPrefix("id:") {
			n, err := strconv.Atoi(strings.TrimPrefix(s.Tag, "id:"))
			if err != nil {
				return sim.Outcome{}, err
			}
			better := n > best
			if myID%2 == 1 { // the private, disagreeing preference
				better = best == -1 || n < best
			}
			if better {
				best, bestColor = n, s.Color
			}
		}
		if best == myID {
			return sim.Outcome{Role: sim.RoleLeader, Leader: a.Color()}, nil
		}
		return sim.Outcome{Role: sim.RoleDefeated, Leader: bestColor}, nil
	}
}
