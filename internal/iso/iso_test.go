package iso

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
)

func colored(g *graph.Graph) *Colored { return FromGraph(g, nil) }

// TestCanonicalAgreesWithBruteForceOnIsomorphism checks the defining
// property of a canonical form against the paper's exact min-word oracle:
// two graphs have equal Canonical words iff they have equal brute-force
// min words (i.e. iff they are color-isomorphic).
func TestCanonicalAgreesWithBruteForceOnIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var cases []*Colored
	for _, g := range []*graph.Graph{
		graph.Path(4), graph.Cycle(5), graph.Complete(4), graph.Star(4), graph.Fig2c(),
	} {
		cases = append(cases, colored(g))
	}
	// Random colored graphs on <= 6 vertices, some with multi-edges and
	// loops, plus a random relabeling of each (guaranteeing isomorphic
	// pairs appear in the pool).
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(5)
		b := graph.NewBuilder(n)
		for e := 0; e < n+rng.Intn(n); e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Graph()
		cols := make([]int, n)
		for i := range cols {
			cols[i] = rng.Intn(2)
		}
		cases = append(cases, FromGraph(g, cols))
		p := rng.Perm(n)
		h, err := g.Relabel(p)
		if err != nil {
			t.Fatal(err)
		}
		ncols := make([]int, n)
		for v, c := range cols {
			ncols[p[v]] = c
		}
		cases = append(cases, FromGraph(h, ncols))
	}
	words := make([][]byte, len(cases))
	brute := make([][]byte, len(cases))
	for i, c := range cases {
		words[i] = CanonicalWord(c)
		brute[i] = BruteCanonicalWord(c)
	}
	for i := range cases {
		for j := i + 1; j < len(cases); j++ {
			if cases[i].N != cases[j].N {
				continue
			}
			canonEq := bytes.Equal(words[i], words[j])
			bruteEq := bytes.Equal(brute[i], brute[j])
			if canonEq != bruteEq {
				t.Errorf("cases %d,%d: Canonical says iso=%v, brute force says %v",
					i, j, canonEq, bruteEq)
			}
		}
	}
}

func TestCanonicalInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	graphs := []*graph.Graph{
		graph.Petersen(),
		graph.Hypercube(3),
		graph.Cycle(9),
		graph.Torus(3, 3),
		graph.CompleteBipartite(3, 4),
		graph.RandomConnected(11, 6, 5),
		graph.Fig2c(),
	}
	for gi, g := range graphs {
		cols := make([]int, g.N())
		cols[0] = 1
		cols[g.N()/2] = 1
		base := CanonicalWord(FromGraph(g, cols))
		for trial := 0; trial < 4; trial++ {
			p := rng.Perm(g.N())
			h, err := g.Relabel(p)
			if err != nil {
				t.Fatal(err)
			}
			ncols := make([]int, g.N())
			for v, c := range cols {
				ncols[p[v]] = c
			}
			if !bytes.Equal(base, CanonicalWord(FromGraph(h, ncols))) {
				t.Errorf("graph %d: canonical word not invariant under relabeling", gi)
			}
		}
	}
}

func TestIsomorphicDistinguishes(t *testing.T) {
	// C6 vs two triangles: same degree sequence, not isomorphic.
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e[0], e[1])
	}
	twoTriangles := b.Graph()
	if Isomorphic(colored(graph.Cycle(6)), colored(twoTriangles)) {
		t.Error("C6 and 2K3 reported isomorphic")
	}
	// K3,3 vs prism: both cubic on 6 vertices, not isomorphic.
	if Isomorphic(colored(graph.CompleteBipartite(3, 3)), colored(graph.Prism(3))) {
		t.Error("K33 and prism reported isomorphic")
	}
	// Same graph, different colorings.
	g := graph.Cycle(5)
	c1 := FromGraph(g, []int{1, 0, 0, 0, 0})
	c2 := FromGraph(g, []int{1, 1, 0, 0, 0})
	if Isomorphic(c1, c2) {
		t.Error("different black counts reported isomorphic")
	}
	// Colorings that differ by rotation are isomorphic.
	c3 := FromGraph(g, []int{0, 0, 1, 0, 0})
	if !Isomorphic(c1, c3) {
		t.Error("rotated coloring should be isomorphic")
	}
}

func TestIsomorphismBetweenIsWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Petersen()
	p := rng.Perm(g.N())
	h, _ := g.Relabel(p)
	a, b := colored(g), colored(h)
	phi := IsomorphismBetween(a, b)
	if phi == nil {
		t.Fatal("no isomorphism found between relabelings")
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if a.Adj[u][v] != b.Adj[phi[u]][phi[v]] {
				t.Fatalf("witness is not an isomorphism at (%d,%d)", u, v)
			}
		}
	}
	if IsomorphismBetween(colored(graph.Cycle(6)), colored(graph.Prism(3))) != nil {
		t.Error("isomorphism invented between C6 and prism")
	}
}

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		name string
		c    *Colored
		want int // automorphism group order
	}{
		{"path3", colored(graph.Path(3)), 2},
		{"cycle4", colored(graph.Cycle(4)), 8},
		{"cycle5", colored(graph.Cycle(5)), 10},
		{"K4", colored(graph.Complete(4)), 24},
		{"petersen", colored(graph.Petersen()), 120},
		{"Q3", colored(graph.Hypercube(3)), 48},
		{"star3", colored(graph.Star(3)), 6},
		{"K33", colored(graph.CompleteBipartite(3, 3)), 72},
	}
	for _, c := range cases {
		gens := AutomorphismGens(c.c)
		g, err := perm.Closure(c.c.N, gens, 1<<16)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if g.Order() != c.want {
			t.Errorf("%s: |Aut| = %d, want %d", c.name, g.Order(), c.want)
		}
		for _, a := range gens {
			if !c.c.IsAutomorphism(a) {
				t.Errorf("%s: generator %v is not an automorphism", c.name, a)
			}
		}
	}
}

func TestOrbitsVertexTransitive(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(7), graph.Petersen(), graph.Hypercube(3), graph.Complete(5),
		graph.Torus(3, 3), graph.Prism(4), graph.MoebiusKantor(),
	} {
		orbits := Orbits(colored(g))
		if len(orbits) != 1 || len(orbits[0]) != g.N() {
			t.Errorf("%v: expected vertex-transitive (1 orbit), got %d orbits", g, len(orbits))
		}
	}
}

func TestOrbitsAsymmetric(t *testing.T) {
	// A path of 4: orbits {0,3}, {1,2}.
	orbits := Orbits(colored(graph.Path(4)))
	if len(orbits) != 2 {
		t.Fatalf("P4 orbits = %v", orbits)
	}
	// Star: center alone, leaves together.
	orbits = Orbits(colored(graph.Star(5)))
	if len(orbits) != 2 || len(orbits[0]) != 1 || len(orbits[1]) != 5 {
		t.Fatalf("star orbits = %v", orbits)
	}
}

func TestOrbitsWithColors(t *testing.T) {
	// C6 with two antipodal black nodes: blacks {0,3}, their neighbors
	// {1,2,4,5} all equivalent.
	cols := []int{1, 0, 0, 1, 0, 0}
	orbits := Orbits(FromGraph(graph.Cycle(6), cols))
	if len(orbits) != 2 {
		t.Fatalf("orbits = %v", orbits)
	}
	if len(orbits[0]) != 2 || len(orbits[1]) != 4 {
		t.Fatalf("orbit sizes = %v", orbits)
	}
	// C6 with two adjacent black nodes: classes {0,1}, {2,5}, {3,4}.
	cols = []int{1, 1, 0, 0, 0, 0}
	orbits = Orbits(FromGraph(graph.Cycle(6), cols))
	if len(orbits) != 3 {
		t.Fatalf("adjacent-black orbits = %v", orbits)
	}
}

func TestDigraphCanonicalDirectionSensitive(t *testing.T) {
	// Directed triangle vs directed path: different.
	tri := NewDigraph(3, [][2]int{{0, 1}, {1, 2}, {2, 0}}, nil)
	pth := NewDigraph(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, nil)
	if Isomorphic(tri, pth) {
		t.Error("directed triangle and transitive tournament confused")
	}
	// Reversed triangle is isomorphic to the triangle (swap two vertices).
	rev := NewDigraph(3, [][2]int{{1, 0}, {2, 1}, {0, 2}}, nil)
	if !Isomorphic(tri, rev) {
		t.Error("reversed directed triangle should be isomorphic")
	}
}

func TestPermutedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := FromGraph(graph.RandomConnected(9, 5, 3), []int{1, 0, 0, 1, 0, 0, 0, 0, 0})
	p := perm.Perm(rng.Perm(9))
	d := c.Permuted(p)
	if !Isomorphic(c, d) {
		t.Fatal("Permuted produced non-isomorphic graph")
	}
	for v := 0; v < 9; v++ {
		if d.Color[p[v]] != c.Color[v] {
			t.Fatal("Permuted broke colors")
		}
	}
}

func TestLoopAndMultiEdgeSensitivity(t *testing.T) {
	// Triangle vs triangle with one doubled edge.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 1)
	doubled := b.Graph()
	if Isomorphic(colored(graph.Cycle(3)), colored(doubled)) {
		t.Error("multi-edge ignored by canonical form")
	}
	// Loop changes the graph.
	b2 := graph.NewBuilder(3)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	b2.AddEdge(2, 0)
	b2.AddEdge(0, 0)
	looped := b2.Graph()
	if Isomorphic(colored(graph.Cycle(3)), colored(looped)) {
		t.Error("loop ignored by canonical form")
	}
}

func TestAutomorphismGensRespectColors(t *testing.T) {
	cols := []int{1, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	c := FromGraph(graph.Petersen(), cols)
	gens := AutomorphismGens(c)
	g, err := perm.Closure(10, gens, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	// Stabilizer of a vertex in Petersen has order 120/10 = 12.
	if g.Order() != 12 {
		t.Errorf("colored Petersen aut order %d, want 12", g.Order())
	}
	for _, a := range g.Elements() {
		if a[0] != 0 {
			t.Fatal("automorphism moves the black node")
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := &Colored{N: 0, Color: nil, Adj: nil}
	if len(CanonicalWord(empty)) != 0 {
		t.Error("empty graph should have empty word")
	}
	single := FromGraph(graph.Path(1), nil)
	r := Canonical(single)
	if len(r.Perm) != 1 || r.Perm[0] != 0 {
		t.Error("singleton canonical perm wrong")
	}
}

func BenchmarkCanonicalPetersen(b *testing.B) {
	c := colored(graph.Petersen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalWord(c)
	}
}

func BenchmarkCanonicalQ4(b *testing.B) {
	c := colored(graph.Hypercube(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalWord(c)
	}
}
