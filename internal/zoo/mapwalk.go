package zoo

import (
	"fmt"
	"strconv"
	"strings"
)

// The walk phases. The zero memory ("") is the start phase; the state
// machine then moves through traversal, the home-base barrier, and (for the
// strong-naming kinds) the naming walk to the winner's home-base.
const (
	phaseStart    = ""
	phaseTraverse = "T"
	phaseWait     = "W"
	phaseName     = "N"
)

// nodeInfo is what the walker records about one discovered node: the number
// of "home" pre-marks on its whiteboard and the sorted edge labels of its
// ports. Both are engine-written or structural, never another agent's
// protocol state, which is what keeps the reconstruction
// schedule-independent.
type nodeInfo struct {
	homes  int
	labels []int
}

// edgeRec is one discovered edge: endpoints in the walker's own numbering
// with the edge label on each side. A self-loop is recorded once with u == v
// and its two distinct labels.
type edgeRec struct {
	u, lu, v, lv int
}

// walkState is the decoded memory of a zoo agent: a depth-first map
// reconstruction in progress. All fields serialize into the memory string
// (encodeWalk/decodeWalk) so the state machine rides through any backend,
// including across the networked bus.
type walkState struct {
	phase string
	// cur is the walker's position in its own numbering; next is the next
	// unused node number.
	cur, next int
	// pendFrom/pendLab describe an in-flight forward probe: the walker left
	// node pendFrom through the port labeled pendLab and has not yet
	// classified the arrival node (-1/-1 when no probe is pending).
	pendFrom, pendLab int
	// ret is the node the walker is returning to after a bounce or a
	// backtrack (-1 when not returning).
	ret int
	// stackNodes/stackEntries is the DFS stack: the nodes on the current
	// root path (excluding the root) and, per node, the entry label leading
	// back toward its parent.
	stackNodes, stackEntries []int
	nodes                    []nodeInfo
	edges                    []edgeRec
	// route is the remaining label sequence of the naming walk.
	route []int
}

// newWalkState returns the start-phase state.
func newWalkState() *walkState {
	return &walkState{phase: phaseStart, pendFrom: -1, pendLab: -1, ret: -1}
}

// encodeWalk serializes the state into the protocol memory string.
func encodeWalk(st *walkState) string {
	nodes := make([]string, len(st.nodes))
	for i, ni := range st.nodes {
		parts := make([]string, 0, len(ni.labels)+1)
		parts = append(parts, strconv.Itoa(ni.homes))
		for _, l := range ni.labels {
			parts = append(parts, strconv.Itoa(l))
		}
		nodes[i] = strings.Join(parts, ".")
	}
	edges := make([]string, len(st.edges))
	for i, e := range st.edges {
		edges[i] = fmt.Sprintf("%d.%d.%d.%d", e.u, e.lu, e.v, e.lv)
	}
	sections := []string{
		st.phase,
		strconv.Itoa(st.cur),
		strconv.Itoa(st.next),
		strconv.Itoa(st.pendFrom) + "," + strconv.Itoa(st.pendLab),
		strconv.Itoa(st.ret),
		intsJoin(st.stackNodes),
		intsJoin(st.stackEntries),
		strings.Join(nodes, ";"),
		strings.Join(edges, ";"),
		intsJoin(st.route),
	}
	return strings.Join(sections, "|")
}

// decodeWalk parses a protocol memory string back into a walk state. The
// empty memory decodes to the start phase.
func decodeWalk(mem string) (*walkState, error) {
	if mem == "" {
		return newWalkState(), nil
	}
	sections := strings.Split(mem, "|")
	if len(sections) != 10 {
		return nil, fmt.Errorf("zoo: memory has %d sections, want 10", len(sections))
	}
	st := &walkState{phase: sections[0]}
	var err error
	if st.cur, err = strconv.Atoi(sections[1]); err != nil {
		return nil, fmt.Errorf("zoo: bad cur: %w", err)
	}
	if st.next, err = strconv.Atoi(sections[2]); err != nil {
		return nil, fmt.Errorf("zoo: bad next: %w", err)
	}
	pf, pl, ok := strings.Cut(sections[3], ",")
	if !ok {
		return nil, fmt.Errorf("zoo: bad probe %q", sections[3])
	}
	if st.pendFrom, err = strconv.Atoi(pf); err != nil {
		return nil, fmt.Errorf("zoo: bad probe node: %w", err)
	}
	if st.pendLab, err = strconv.Atoi(pl); err != nil {
		return nil, fmt.Errorf("zoo: bad probe label: %w", err)
	}
	if st.ret, err = strconv.Atoi(sections[4]); err != nil {
		return nil, fmt.Errorf("zoo: bad return node: %w", err)
	}
	if st.stackNodes, err = intsSplit(sections[5]); err != nil {
		return nil, fmt.Errorf("zoo: bad stack nodes: %w", err)
	}
	if st.stackEntries, err = intsSplit(sections[6]); err != nil {
		return nil, fmt.Errorf("zoo: bad stack entries: %w", err)
	}
	if len(st.stackNodes) != len(st.stackEntries) {
		return nil, fmt.Errorf("zoo: stack nodes/entries length mismatch (%d vs %d)",
			len(st.stackNodes), len(st.stackEntries))
	}
	if sections[7] != "" {
		for _, enc := range strings.Split(sections[7], ";") {
			fields, err := intsSplitSep(enc, ".")
			if err != nil || len(fields) < 1 {
				return nil, fmt.Errorf("zoo: bad node record %q", enc)
			}
			st.nodes = append(st.nodes, nodeInfo{homes: fields[0], labels: fields[1:]})
		}
	}
	if sections[8] != "" {
		for _, enc := range strings.Split(sections[8], ";") {
			fields, err := intsSplitSep(enc, ".")
			if err != nil || len(fields) != 4 {
				return nil, fmt.Errorf("zoo: bad edge record %q", enc)
			}
			st.edges = append(st.edges, edgeRec{u: fields[0], lu: fields[1], v: fields[2], lv: fields[3]})
		}
	}
	if st.route, err = intsSplit(sections[9]); err != nil {
		return nil, fmt.Errorf("zoo: bad route: %w", err)
	}
	return st, nil
}

// intsJoin renders xs comma-separated ("" for empty).
func intsJoin(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// intsSplit parses a comma-separated int list ("" decodes to empty).
func intsSplit(s string) ([]int, error) { return intsSplitSep(s, ",") }

func intsSplitSep(s, sep string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, sep)
	out := make([]int, len(parts))
	for i, p := range parts {
		x, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// triedAt returns the set of edge labels at node x already covered by a
// recorded edge (both endpoints of every edge count).
func (st *walkState) triedAt(x int) map[int]bool {
	tried := make(map[int]bool)
	for _, e := range st.edges {
		if e.u == x {
			tried[e.lu] = true
		}
		if e.v == x {
			tried[e.lv] = true
		}
	}
	return tried
}

// addNode records the node the walker currently occupies (number st.next-1
// is NOT assumed — the caller numbers nodes) from its view: home pre-mark
// count and sorted port labels.
func (st *walkState) addNode(homes int, labels []int) {
	st.nodes = append(st.nodes, nodeInfo{homes: homes, labels: sortedCopy(labels)})
}

// totalHomes sums the home pre-marks over every discovered node; after a
// complete traversal this is r, the number of agents.
func (st *walkState) totalHomes() int {
	total := 0
	for _, ni := range st.nodes {
		total += ni.homes
	}
	return total
}

// reconstruct builds the decision-facing map from the recorded traversal.
func (st *walkState) reconstruct() mapData {
	n := len(st.nodes)
	m := mapData{n: n, arcs: make([][]mapArc, n), homes: make([]int, n)}
	for v, ni := range st.nodes {
		m.homes[v] = ni.homes
	}
	for _, e := range st.edges {
		m.arcs[e.u] = append(m.arcs[e.u], mapArc{lab: e.lu, far: e.lv, to: e.v})
		m.arcs[e.v] = append(m.arcs[e.v], mapArc{lab: e.lv, far: e.lu, to: e.u})
	}
	m.sortArcs()
	return m
}

// routeTo returns the label sequence of a canonical shortest walk from the
// walker's home (node 0) to node target: at every step take the
// smallest-label arc that decreases the BFS distance to the target.
func (st *walkState) routeTo(target int) []int {
	m := st.reconstruct()
	dist := bfsDist(m, target)
	var route []int
	for at := 0; at != target; {
		best, bestLab := -1, -1
		for _, a := range m.arcs[at] {
			if dist[a.to] == dist[at]-1 && (best < 0 || a.lab < bestLab) {
				best, bestLab = a.to, a.lab
			}
		}
		if best < 0 {
			return nil
		}
		route = append(route, bestLab)
		at = best
	}
	return route
}
