package telemetry

import "context"

// requestIDKey is the context key for the request ID. It lives in
// telemetry (not serve) so lower layers — campaign workers, the analysis
// cache — can read the ID without importing the HTTP plane.
type requestIDKey struct{}

// WithRequestID returns ctx carrying the request ID. Empty ids are
// stored as-is; RequestIDFrom treats them the same as absent.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "" when the
// context never passed through a traced request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
