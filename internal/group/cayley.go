package group

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/perm"
)

// Cayley is a Cayley graph Cay(Γ, S) together with the bookkeeping the
// Section 4 protocol needs: the underlying anonymous graph, the generator
// attached to every port (the natural edge-labeling ℓ_x({x,y}) = x⁻¹y of
// Theorem 4.1's proof), and the translation action.
//
// Vertices of the graph are the group elements; vertex v corresponds to
// element v, and the edge set is {x, xs} for x ∈ Γ, s ∈ S.
type Cayley struct {
	Group *Group
	// Gens is the generating set S (element indices), closed under
	// inversion, not containing the identity, sorted ascending.
	Gens []int
	// G is the underlying undirected graph.
	G *graph.Graph
	// PortGen[v][p] is the generator s such that port p of vertex v leads
	// to vertex v*s.
	PortGen [][]int
}

// NewCayley builds Cay(Γ, S). S must not contain the identity, must be
// closed under inversion (S = S⁻¹), and must generate Γ (so the graph is
// connected, as the paper assumes).
func NewCayley(g *Group, gens []int) (*Cayley, error) {
	n := g.Order()
	inS := make([]bool, n)
	var S []int
	for _, s := range gens {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("group: generator %d out of range", s)
		}
		if s == g.Identity() {
			return nil, errors.New("group: identity cannot be a generator")
		}
		if !inS[s] {
			inS[s] = true
			S = append(S, s)
		}
	}
	for _, s := range S {
		if !inS[g.Inv(s)] {
			return nil, fmt.Errorf("group: generating set not symmetric (misses inverse of %s)", g.ElemName(s))
		}
	}
	if !g.Generates(S) {
		return nil, errors.New("group: set does not generate the group (graph would be disconnected)")
	}
	sortInts(S)

	b := graph.NewBuilder(n)
	portGen := make([][]int, n)
	// Edges are added generator-pair by generator-pair so ports appear in a
	// deterministic order; record tracks the generator of each appended port.
	record := func(v, s int) { portGen[v] = append(portGen[v], s) }
	for _, s := range S {
		si := g.Inv(s)
		if si < s {
			continue // handled when si was processed
		}
		if si == s {
			// Involution: one edge {x, xs} per unordered pair.
			for x := 0; x < n; x++ {
				y := g.Mul(x, s)
				if x < y {
					b.AddEdge(x, y)
					record(x, s)
					record(y, s)
				}
			}
			continue
		}
		// Non-involution: edge {x, xs} added once per x; the port at x is
		// labeled s and the port at xs is labeled s⁻¹.
		for x := 0; x < n; x++ {
			y := g.Mul(x, s)
			b.AddEdge(x, y)
			record(x, s)
			record(y, si)
		}
	}
	return &Cayley{Group: g, Gens: S, G: b.Graph(), PortGen: portGen}, nil
}

// Degree returns |S|, the degree of every vertex.
func (c *Cayley) Degree() int { return len(c.Gens) }

// NaturalLabels returns, for every vertex, the generator label of each port
// (a copy of PortGen). This is the labeling ℓ_x({x, y}) = x⁻¹y used in the
// proof of Theorem 4.1; translations preserve it.
func (c *Cayley) NaturalLabels() [][]int {
	out := make([][]int, len(c.PortGen))
	for v := range out {
		out[v] = append([]int(nil), c.PortGen[v]...)
	}
	return out
}

// Translation returns the translation φ_γ : a ↦ γa as a vertex permutation.
func (c *Cayley) Translation(gamma int) perm.Perm {
	n := c.Group.Order()
	p := make(perm.Perm, n)
	for a := 0; a < n; a++ {
		p[a] = c.Group.Mul(gamma, a)
	}
	return p
}

// Translations returns all n translations, indexed by γ.
func (c *Cayley) Translations() []perm.Perm {
	out := make([]perm.Perm, c.Group.Order())
	for gamma := range out {
		out[gamma] = c.Translation(gamma)
	}
	return out
}

// TranslationClasses returns the translation-equivalence classes of the
// bicolored graph (G, p) where black[v] reports whether v is a home-base:
// the orbits, on vertices, of the subgroup of translations that preserve
// the black set. Because translations act freely, every class has size
// |H| where H is that subgroup, so gcd over class sizes equals |H|; the
// second return value is |H|.
func (c *Cayley) TranslationClasses(black []bool) ([][]int, int) {
	weight := make([]int, len(black))
	for v, b := range black {
		if b {
			weight[v] = 1
		}
	}
	return c.TranslationClassesWeighted(weight)
}

// TranslationClassesWeighted generalizes TranslationClasses to the
// shared-home extension: weight[v] is the number of agents based at v, and
// a translation preserves the placement iff it preserves every weight.
func (c *Cayley) TranslationClassesWeighted(weight []int) ([][]int, int) {
	n := c.Group.Order()
	if len(weight) != n {
		panic("group: weight slice length mismatch")
	}
	var preserving []perm.Perm
	for gamma := 0; gamma < n; gamma++ {
		t := c.Translation(gamma)
		ok := true
		for v := 0; v < n; v++ {
			if weight[t[v]] != weight[v] {
				ok = false
				break
			}
		}
		if ok {
			preserving = append(preserving, t)
		}
	}
	classes := perm.OrbitsOf(n, preserving)
	return classes, len(preserving)
}

// HypercubeCayley returns Cay(Z_2^d, {e_1,…,e_d}), isomorphic to
// graph.Hypercube(d).
func HypercubeCayley(d int) *Cayley {
	g := ElementaryAbelian2(d)
	gens := make([]int, d)
	for i := range gens {
		gens[i] = 1 << uint(i)
	}
	c, err := NewCayley(g, gens)
	if err != nil {
		panic("group: hypercube construction failed: " + err.Error())
	}
	return c
}

// CycleCayley returns Cay(Z_n, {+1, −1}).
func CycleCayley(n int) *Cayley {
	g := Cyclic(n)
	c, err := NewCayley(g, []int{1, n - 1})
	if err != nil {
		panic("group: cycle construction failed: " + err.Error())
	}
	return c
}

// CirculantCayley returns Cay(Z_n, jumps ∪ −jumps).
func CirculantCayley(n int, jumps []int) (*Cayley, error) {
	g := Cyclic(n)
	var gens []int
	for _, j := range jumps {
		jm := ((j % n) + n) % n
		if jm == 0 {
			return nil, errors.New("group: zero jump")
		}
		gens = append(gens, jm, n-jm)
	}
	return NewCayley(g, gens)
}

// TorusCayley returns Cay(Z_a × Z_b, {(±1,0), (0,±1)}).
func TorusCayley(a, b int) (*Cayley, error) {
	g := Direct(Cyclic(a), Cyclic(b))
	enc := func(x, y int) int { return x*b + y }
	gens := []int{enc(1, 0), enc(a-1, 0), enc(0, 1), enc(0, b-1)}
	return NewCayley(g, gens)
}

// CompleteCayley returns Cay(Z_n, Z_n \ {0}) ≅ K_n.
func CompleteCayley(n int) *Cayley {
	g := Cyclic(n)
	gens := make([]int, 0, n-1)
	for s := 1; s < n; s++ {
		gens = append(gens, s)
	}
	c, err := NewCayley(g, gens)
	if err != nil {
		panic("group: complete construction failed: " + err.Error())
	}
	return c
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
