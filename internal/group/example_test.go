package group_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/group"
)

// Recognize decides Sabidussi's criterion: C6 is a Cayley graph, the
// Petersen graph is not.
func ExampleRecognize() {
	rec, _ := group.Recognize(graph.Cycle(6), 0)
	fmt.Println(rec.IsCayley, rec.Group.Order())
	rec, _ = group.Recognize(graph.Petersen(), 0)
	fmt.Println(rec.IsCayley)
	// Output:
	// true 6
	// false
}

// TranslationClasses implements the Section 4 criterion: antipodal agents
// on an even ring are preserved by a nontrivial translation (d = 2), so
// election is impossible.
func ExampleCayley_TranslationClasses() {
	c := group.CycleCayley(6)
	black := make([]bool, 6)
	black[0], black[3] = true, true
	classes, d := c.TranslationClasses(black)
	fmt.Println(len(classes), d)
	// Output: 3 2
}
