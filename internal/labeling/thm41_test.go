package labeling

import (
	"testing"

	"repro/internal/group"
)

func blackSet(n int, idx ...int) []bool {
	out := make([]bool, n)
	for _, i := range idx {
		out[i] = true
	}
	return out
}

func TestThm41RefinementInvariants(t *testing.T) {
	torus, err := group.TorusCayley(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		c     *group.Cayley
		black []bool
		d     int
	}{
		{"C6-antipodal", group.CycleCayley(6), blackSet(6, 0, 3), 2},
		{"C6-thirds", group.CycleCayley(6), blackSet(6, 0, 2, 4), 3},
		{"C8-antipodal", group.CycleCayley(8), blackSet(8, 0, 4), 2},
		{"C8-quarters", group.CycleCayley(8), blackSet(8, 0, 2, 4, 6), 4},
		{"Q3-antipodal", group.HypercubeCayley(3), blackSet(8, 0, 7), 2},
		{"Q3-face", group.HypercubeCayley(3), blackSet(8, 0, 3, 5, 6), 4},
		{"K4-all", group.CompleteCayley(4), blackSet(4, 0, 1, 2, 3), 4},
		{"K4-pair", group.CompleteCayley(4), blackSet(4, 0, 1), 1},
		{"torus-diag", torus, blackSet(9, 0, 4, 8), 3},
		{"C6-dist2", group.CycleCayley(6), blackSet(6, 0, 2), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr, err := Thm41Refine(c.c, c.black)
			if err != nil {
				t.Fatal(err)
			}
			if tr.D != c.d {
				t.Fatalf("d = %d, want %d", tr.D, c.d)
			}
			for _, cl := range tr.Final {
				if len(cl) != c.d {
					t.Fatalf("final class of size %d, want %d", len(cl), c.d)
				}
			}
			// Cross-check: the proof says the final pseudo-classes are the
			// label-equivalence classes of the natural labeling. Compare as
			// partitions.
			cols := make([]int, len(c.black))
			for v, b := range c.black {
				if b {
					cols[v] = 1
				}
			}
			lab, err := LabClasses(c.c.G, CayleyNaturalLabeling(c.c), cols, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !samePartition(tr.Final, lab, c.c.G.N()) {
				t.Fatalf("refinement classes %v differ from ~lab classes %v", tr.Final, lab)
			}
		})
	}
}

func samePartition(a, b [][]int, n int) bool {
	ka := make([]int, n)
	kb := make([]int, n)
	for i, cl := range a {
		for _, v := range cl {
			ka[v] = i
		}
	}
	for i, cl := range b {
		for _, v := range cl {
			kb[v] = i
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (ka[u] == ka[v]) != (kb[u] == kb[v]) {
				return false
			}
		}
	}
	return true
}

func TestThm41StepCountBounded(t *testing.T) {
	// Each split adds one class; classes are bounded by n, so steps < n.
	c := group.CycleCayley(12)
	tr, err := Thm41Refine(c, blackSet(12, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) >= 12 {
		t.Fatalf("too many steps: %d", len(tr.Steps))
	}
	// Translation classes of the antipodal placement already all have size
	// d = 2, so the refinement may terminate without splits; the final
	// partition must still be the 6 antipodal pairs.
	if len(tr.Final) != 6 {
		t.Fatalf("final classes %d, want 6 of size 2", len(tr.Final))
	}
}

func TestThm41RefinementVacuousFromTranslationClasses(t *testing.T) {
	// Free actions give equal-size translation classes, so no case in the
	// suite should ever need a split — this pins down the observation in
	// Thm41Refine's doc comment.
	cases := []struct {
		c     *group.Cayley
		black []bool
	}{
		{group.CycleCayley(6), blackSet(6, 0, 3)},
		{group.CycleCayley(8), blackSet(8, 0, 2, 4, 6)},
		{group.HypercubeCayley(3), blackSet(8, 0, 7)},
		{group.CompleteCayley(4), blackSet(4, 0, 1, 2, 3)},
	}
	for _, c := range cases {
		tr, err := Thm41Refine(c.c, c.black)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Steps) != 0 {
			t.Fatalf("expected zero splits from translation classes, got %d", len(tr.Steps))
		}
	}
}
