package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Maker constructs a seeded scheduling strategy. classOf maps each agent
// index to the automorphism-equivalence class of its home node (the
// COMPUTE & ORDER classes); strategies that do not target symmetry ignore it.
type Maker func(seed int64, classOf []int) sim.Strategy

// The built-in strategy names, in sweep order.
const (
	StratRandom    = "random"
	StratRR        = "round-robin"
	StratStarve    = "starve"
	StratConvoy    = "convoy"
	StratLockstep  = "lockstep"
	StratSameClass = "same-class"
)

var registry = map[string]Maker{
	StratRandom: func(seed int64, _ []int) sim.Strategy { return Random(seed) },
	StratRR:     func(int64, []int) sim.Strategy { return RoundRobin() },
	StratStarve: func(seed int64, classOf []int) sim.Strategy {
		// Rotate the victim with the seed so a sweep starves each agent.
		r := len(classOf)
		if r == 0 {
			r = 1
		}
		return Starve(int(uint64(seed) % uint64(r)))
	},
	StratConvoy:    func(seed int64, _ []int) sim.Strategy { return Convoy(16, seed) },
	StratLockstep:  func(int64, []int) sim.Strategy { return Lockstep() },
	StratSameClass: func(_ int64, classOf []int) sim.Strategy { return SameClass(classOf) },
}

// Strategies returns the built-in strategy names in sweep order.
func Strategies() []string {
	return []string{StratRandom, StratRR, StratStarve, StratConvoy, StratLockstep, StratSameClass}
}

// NewStrategy builds a named strategy. Unknown names list the registry in
// the error so CLI typos are self-explanatory.
func NewStrategy(name string, seed int64, classOf []int) (sim.Strategy, error) {
	mk, ok := registry[name]
	if !ok {
		known := Strategies()
		sort.Strings(known)
		return nil, fmt.Errorf("adversary: unknown strategy %q (have %v)", name, known)
	}
	return mk(seed, classOf), nil
}

// Random picks uniformly among the ready agents — the baseline adversary,
// equivalent in distribution to the engine's default delay injection but
// with a recordable decision log.
func Random(seed int64) sim.Strategy {
	rng := rand.New(rand.NewSource(seed))
	return sim.StrategyFunc(func(ready []int, step int) int {
		return ready[rng.Intn(len(ready))]
	})
}

// RoundRobin cycles through the agents in index order, skipping the ones
// that are not ready — the maximally fair schedule.
func RoundRobin() sim.Strategy {
	last := -1
	return sim.StrategyFunc(func(ready []int, step int) int {
		for _, a := range ready {
			if a > last {
				last = a
				return a
			}
		}
		last = ready[0]
		return ready[0]
	})
}

// Starve lets every agent except the victim run whenever possible: the
// victim only steps when it is the sole ready agent. This is the legal
// worst case of the paper's adversary — starvation must not break safety,
// only delay the victim's progress (the engine never lets a strategy stall
// a run whose only ready agent is the victim).
func Starve(victim int) sim.Strategy {
	return sim.StrategyFunc(func(ready []int, step int) int {
		for _, a := range ready {
			if a != victim {
				return a
			}
		}
		return ready[0]
	})
}

// Convoy drives one agent in bursts: the chosen agent keeps the schedule
// for up to `burst` consecutive steps before the convoy moves (randomly) to
// another agent. Long exclusive bursts exercise the whiteboard protocols'
// tolerance to one agent racing far ahead of the others.
func Convoy(burst int, seed int64) sim.Strategy {
	if burst < 1 {
		burst = 1
	}
	rng := rand.New(rand.NewSource(seed))
	current, left := -1, 0
	return sim.StrategyFunc(func(ready []int, step int) int {
		if left > 0 {
			for _, a := range ready {
				if a == current {
					left--
					return a
				}
			}
		}
		current = ready[rng.Intn(len(ready))]
		left = burst - 1
		return current
	})
}

// Lockstep keeps all agents at the same execution depth: it always grants
// the ready agent with the fewest steps taken so far (ties to the lowest
// index). Symmetric agents therefore reach their symmetry-breaking
// operations as close to simultaneously as the serialized model allows.
func Lockstep() sim.Strategy {
	var steps []int
	return sim.StrategyFunc(func(ready []int, step int) int {
		pick := ready[0]
		for _, a := range ready {
			if a >= len(steps) {
				grown := make([]int, a+1)
				copy(grown, steps)
				steps = grown
			}
			if steps[a] < steps[pick] {
				pick = a
			}
		}
		steps[pick]++
		return pick
	})
}

// SameClass is the greedy symmetry attacker: among the ready agents it
// restricts to the automorphism class with the most ready members — the
// agents the protocol must separate by schedule-independent means — and
// runs that class in lockstep. AGENT-REDUCE and NODE-REDUCE break symmetry
// through whiteboard races; this strategy forces the racers to arrive
// together, maximizing same-class concurrency at the matching steps.
func SameClass(classOf []int) sim.Strategy {
	var steps []int
	class := func(a int) int {
		if a < len(classOf) {
			return classOf[a]
		}
		return 0
	}
	return sim.StrategyFunc(func(ready []int, step int) int {
		// Pick the class with the most ready members (ties to smallest id).
		members := map[int]int{}
		for _, a := range ready {
			members[class(a)]++
		}
		best, bestN := 0, -1
		for c, n := range members {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		pick := -1
		for _, a := range ready {
			if class(a) != best {
				continue
			}
			if a >= len(steps) {
				grown := make([]int, a+1)
				copy(grown, steps)
				steps = grown
			}
			if pick == -1 || steps[a] < steps[pick] {
				pick = a
			}
		}
		steps[pick]++
		return pick
	})
}
