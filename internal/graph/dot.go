package graph

import (
	"fmt"
	"strings"
)

// ToDOT renders the graph in Graphviz DOT format. colors, when non-nil,
// shade home-bases (weight >= 1) and annotate multi-occupied nodes with
// their weight — handy for inspecting election instances and agent maps.
func (g *Graph) ToDOT(name string, colors []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  node [shape=circle];\n", name)
	for v := 0; v < g.N(); v++ {
		attrs := ""
		if colors != nil && colors[v] > 0 {
			label := fmt.Sprintf("%d", v)
			if colors[v] > 1 {
				label = fmt.Sprintf("%d (x%d)", v, colors[v])
			}
			attrs = fmt.Sprintf(" [style=filled fillcolor=gray label=%q]", label)
		}
		fmt.Fprintf(&b, "  n%d%s;\n", v, attrs)
	}
	for _, e := range g.EdgeEndpoints() {
		fmt.Fprintf(&b, "  n%d -- n%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
