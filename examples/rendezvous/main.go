// Rendezvous: gathering rides on election (the paper's footnote 2: "once a
// leader is elected, many other computational tasks become straightforward;
// such is the case for the gathering or rendezvous problem").
//
// Three software agents are scattered over a 3-cube network and must all
// meet at one node without any shared naming of nodes or comparable
// identities. They run ELECT; the winner's home-base becomes the rendezvous
// point; the defeated agents look the leader's color up on their own maps
// and walk there. When RunGather returns successfully, every agent is
// physically at the rendezvous node and has seen all r arrival stamps.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.Hypercube(3)
	homes := []int{0, 1, 3}

	an, err := repro.Analyze(g, homes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q3 with agents at", homes)
	fmt.Printf("  election solvable: %v (class gcd %d)\n", an.GCD == 1, an.GCD)

	res, err := repro.RunGather(g, homes, repro.RunConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for i, o := range res.Outcomes {
		fmt.Printf("  agent %d: %v\n", i, o.Role)
	}
	fmt.Printf("  gathered at the leader's home-base in %d total moves\n", res.TotalMoves())

	// An impossible instance degrades gracefully: everyone reports it.
	res, err = repro.RunGather(g, []int{0, 7}, repro.RunConfig{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ3 with antipodal agents [0 7]:")
	fmt.Printf("  all agents report: %v (xor-translation symmetry, Theorem 2.1)\n",
		res.Outcomes[0].Role)
}
