# Reproduction of "Can we elect if we cannot compare?" (SPAA 2003).
# Stdlib only; everything runs offline.

GO ?= go

.PHONY: all build test race bench bench-iso campaign experiments examples vet fmt cover fuzz adversary

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Canonical-engine perf trajectory: regenerate BENCH_iso.json (DESIGN.md §8,
# EXPERIMENTS.md). Fails if the optimized engine falls below the documented
# 5x speedup over the frozen reference on Analyze(C32).
bench-iso:
	$(GO) run ./cmd/benchiso -o BENCH_iso.json

cover:
	$(GO) test -cover ./...

# The acceptance campaign: cycles + hypercubes across 25 seeds, all cores.
campaign:
	$(GO) run ./cmd/campaign \
		-families "cycle:6,9,12,15,18,24;hypercube:3,4" \
		-placement spread -r 3 -seeds 1..25 \
		-jsonl campaign_runs.jsonl -summary BENCH_campaign.json

# Native fuzzing smoke: 30s per target (same invocation as CI).
fuzz:
	$(GO) test -fuzz FuzzElectSchedule -fuzztime 30s -run '^$$' ./internal/adversary
	$(GO) test -fuzz FuzzCanonical -fuzztime 30s -run '^$$' ./internal/iso
	$(GO) test -fuzz FuzzFromTwins -fuzztime 30s -run '^$$' ./internal/graph

# Adversarial schedule sweep of a representative instance: every strategy
# across seeds, protocol invariants checked per run (see DESIGN.md §10).
adversary:
	$(GO) run ./cmd/adversary -graph cycle -n 12 -homes 0,4,8 \
		-seeds 1..8 -report adversary_report.json -save adversary_violations

# Regenerate every table and figure of the paper (E1-E12).
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/petersen
	$(GO) run ./examples/hypercube
	$(GO) run ./examples/babel
	$(GO) run ./examples/preferences
	$(GO) run ./examples/rendezvous
