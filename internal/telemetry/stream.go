package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Stream defaults and clamps: snapshots flow once per second unless the
// client asks otherwise with ?interval_ms, bounded so a hostile query
// can neither busy-loop the registry nor hold a silent connection.
const (
	DefaultStreamInterval = time.Second
	MinStreamInterval     = 100 * time.Millisecond
	MaxStreamInterval     = time.Minute
)

// StreamHandler serves the registry as a server-sent-event stream —
// mount it at /debug/metrics/stream. Each event is one registry snapshot
// in the same JSON shape /debug/metrics serves, compact-encoded on a
// single data: line:
//
//	id: <seq>
//	event: metrics
//	data: {"counters":{...},"gauges":{...},"histograms":{...}}
//
// The first event is written immediately (a dashboard paints without
// waiting an interval), then one event per interval until the client
// disconnects. Query parameters: interval_ms overrides the cadence
// (clamped to [MinStreamInterval, MaxStreamInterval]); n > 0 closes the
// stream after n events — curl-able for smoke tests and snapshots.
//
// A nil registry streams empty snapshots rather than panicking, matching
// the package's nil-safe discipline.
func (r *Registry) StreamHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "telemetry: streaming unsupported", http.StatusInternalServerError)
			return
		}
		interval := DefaultStreamInterval
		if ms := req.URL.Query().Get("interval_ms"); ms != "" {
			v, err := strconv.Atoi(ms)
			if err != nil {
				http.Error(w, "telemetry: bad interval_ms", http.StatusBadRequest)
				return
			}
			interval = time.Duration(v) * time.Millisecond
			if interval < MinStreamInterval {
				interval = MinStreamInterval
			}
			if interval > MaxStreamInterval {
				interval = MaxStreamInterval
			}
		}
		maxEvents := 0 // 0 = until disconnect
		if n := req.URL.Query().Get("n"); n != "" {
			v, err := strconv.Atoi(n)
			if err != nil || v < 0 {
				http.Error(w, "telemetry: bad n", http.StatusBadRequest)
				return
			}
			maxEvents = v
		}

		h := w.Header()
		h.Set("Content-Type", "text/event-stream; charset=utf-8")
		h.Set("Cache-Control", "no-cache")
		h.Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)

		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for seq := 1; ; seq++ {
			data, err := json.Marshal(r.Snapshot())
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: metrics\ndata: %s\n\n", seq, data); err != nil {
				return
			}
			flusher.Flush()
			if maxEvents > 0 && seq >= maxEvents {
				return
			}
			select {
			case <-req.Context().Done():
				return
			case <-ticker.C:
			}
		}
	})
}
