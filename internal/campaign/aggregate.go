package campaign

import (
	"fmt"
	"sort"

	"repro/internal/telemetry/sketch"
)

// StreamMode selects the campaign's summary-aggregation path.
type StreamMode int

// The aggregation modes. StreamAuto (the zero value) buffers per-run
// results below StreamThreshold and switches to mergeable sketches at or
// above it; StreamOn always streams (Report.Results is nil, percentiles
// carry the documented sketch error); StreamOff always buffers.
const (
	StreamAuto StreamMode = iota
	StreamOn
	StreamOff
)

// ParseStreamMode parses a -stream flag value: "auto" (or empty), "on",
// or "off".
func ParseStreamMode(s string) (StreamMode, error) {
	switch s {
	case "", "auto":
		return StreamAuto, nil
	case "on":
		return StreamOn, nil
	case "off":
		return StreamOff, nil
	}
	return StreamAuto, fmt.Errorf("campaign: unknown stream mode %q (want auto, on or off)", s)
}

const (
	// DefaultStreamThreshold is the work-list size at which StreamAuto
	// switches to sketch aggregation: beyond it the buffered []RunResult
	// dominates memory (~0.5 KiB/run ≈ 50 MiB at 10⁵ runs).
	DefaultStreamThreshold = 100_000
	// maxFailureSample bounds the failing-run sample a streamed campaign
	// retains in place of the full result list.
	maxFailureSample = 64
	// maxViolationKeys bounds the candidate signature list paired with the
	// count-min sketch (the sketch itself is unbounded-key).
	maxViolationKeys = 128
	// ratioScale is the fixed-point scale folding float ratios into the
	// integer sketch: three binary decimal places on top of the sketch's
	// own relative error.
	ratioScale = 1024
	// liveFoldEvery is how many runs a worker folds privately before
	// merging into the shared live aggregate (lock once per batch, not
	// once per run).
	liveFoldEvery = 256
	// maxTopViolations bounds Summary.TopViolations.
	maxTopViolations = 10
)

// ViolationCount is one entry of Summary.TopViolations: an
// invariant-violation signature ("code|instance|strategy") with its
// count-min estimated occurrence count (never an under-estimate).
type ViolationCount struct {
	Signature string `json:"signature"`
	Count     int64  `json:"count"`
}

// aggregator folds RunResults into a campaign summary. In exact mode it
// keeps per-run value slices and reproduces the historical buffered
// percentiles bit for bit; in sketch mode it folds into mergeable
// O(1)-memory sketches (internal/telemetry/sketch) whose quantiles are
// within sketch.RelativeError of exact. Aggregators merge associatively,
// so per-worker shards combine into one summary in any order.
//
// Not safe for concurrent use: one per worker, merged under the
// campaign's live mutex.
type aggregator struct {
	exact bool
	bound float64

	runs                int
	outcomes            map[string]int
	retries             int
	aborted             int
	canceled            int
	errors              int
	faultErrors         int
	mismatches          int
	invariantViolations int
	faultRuns           int
	crashedAgents       int
	faultEvents         int
	takeovers           int64
	traceDropped        int64
	boundViolations     int
	ratioMax            float64
	serialMS            float64
	phaseTotals         map[string]PhaseStat

	// Sketch mode: mergeable histograms for every percentile the summary
	// reports, a count-min over violation signatures, and a bounded
	// failure sample.
	moves      sketch.Hist
	accesses   sketch.Hist
	crashed    sketch.Hist
	ratio      sketch.Hist // fixed-point, ×ratioScale
	phaseMoves map[string]*sketch.Hist
	violations *sketch.CountMin
	vioKeys    []string
	vioSeen    map[string]bool
	failures   []RunResult

	// Exact mode: the buffered value slices percentiles are read from.
	movesS      []int64
	accessesS   []int64
	crashedS    []int64
	ratiosS     []float64
	phaseMovesS map[string][]int64
}

func newAggregator(exact bool, bound float64) *aggregator {
	return &aggregator{
		exact:       exact,
		bound:       bound,
		outcomes:    map[string]int{},
		phaseTotals: map[string]PhaseStat{},
		phaseMoves:  map[string]*sketch.Hist{},
		violations:  sketch.NewCountMin(0, 0),
		vioSeen:     map[string]bool{},
		phaseMovesS: map[string][]int64{},
	}
}

// violationSignature keys a violation for the count-min sketch: the
// invariant code plus the instance and strategy that broke it.
func violationSignature(r RunResult, code string) string {
	return code + "|" + r.Instance + "|" + r.Strategy
}

// isFailure mirrors Report.Failures' predicate on one result.
func isFailure(r RunResult) bool {
	if r.Outcome == "canceled" {
		return false
	}
	if r.Fault != "" {
		return !r.OK || len(r.Violations) > 0
	}
	return r.Err != "" || !r.OK || len(r.Violations) > 0
}

// add folds one run result.
func (a *aggregator) add(r RunResult) {
	a.runs++
	a.outcomes[r.Outcome]++
	if !a.exact && isFailure(r) && len(a.failures) < maxFailureSample {
		a.failures = append(a.failures, r)
	}
	for _, v := range r.Violations {
		sig := violationSignature(r, string(v.Code))
		a.violations.Add(sig, 1)
		if !a.vioSeen[sig] && len(a.vioKeys) < maxViolationKeys {
			a.vioSeen[sig] = true
			a.vioKeys = append(a.vioKeys, sig)
		}
	}
	if r.Outcome == "canceled" {
		// Cancellation is an environment decision: count it, keep it out
		// of the error/mismatch/percentile accounting (a never-started
		// run has Attempts 0, which would corrupt the retry count).
		a.canceled++
		a.serialMS += r.ElapsedMS
		return
	}
	a.retries += r.Attempts - 1
	a.serialMS += r.ElapsedMS
	a.traceDropped += r.TraceDropped
	if len(r.Violations) > 0 {
		a.invariantViolations++
	}
	if r.Fault != "" {
		a.faultRuns++
		a.crashedAgents += r.Crashed
		a.takeovers += r.Takeovers
		a.faultEvents += r.FaultEvents
		a.crashed.Observe(int64(r.Crashed))
		if a.exact {
			a.crashedS = append(a.crashedS, int64(r.Crashed))
		}
	}
	if r.Err != "" {
		if r.Fault != "" {
			a.faultErrors++
		} else {
			a.errors++
		}
		if r.Aborted {
			a.aborted++
		}
		return
	}
	if !r.OK {
		a.mismatches++
	}
	// The sketches are fed in both modes — they are what the live
	// /debug/metrics quantile gauges read mid-campaign; exact mode
	// additionally buffers the slices its summary percentiles come from.
	a.moves.Observe(r.Moves)
	a.accesses.Observe(r.Accesses)
	a.ratio.Observe(int64(r.Ratio * ratioScale))
	if a.exact {
		a.movesS = append(a.movesS, r.Moves)
		a.accessesS = append(a.accessesS, r.Accesses)
		a.ratiosS = append(a.ratiosS, r.Ratio)
	}
	if r.Ratio > a.ratioMax {
		a.ratioMax = r.Ratio
	}
	if r.Ratio > a.bound {
		a.boundViolations++
	}
	a.addPhase(r.PhaseMoves, func(st *PhaseStat) *int64 { return &st.Moves })
	a.addPhase(r.PhaseAccesses, func(st *PhaseStat) *int64 { return &st.Accesses })
	a.addPhase(r.PhaseWrites, func(st *PhaseStat) *int64 { return &st.Writes })
	a.addPhase(r.PhaseErases, func(st *PhaseStat) *int64 { return &st.Erases })
	for name, v := range r.PhaseMoves {
		if a.exact {
			a.phaseMovesS[name] = append(a.phaseMovesS[name], v)
		} else {
			h := a.phaseMoves[name]
			if h == nil {
				h = &sketch.Hist{}
				a.phaseMoves[name] = h
			}
			h.Observe(v)
		}
	}
}

func (a *aggregator) addPhase(m map[string]int64, pick func(*PhaseStat) *int64) {
	for name, v := range m {
		st := a.phaseTotals[name]
		*pick(&st) += v
		a.phaseTotals[name] = st
	}
}

// merge folds o into a (associative; o left intact). Shards must share
// the exact flag and bound.
func (a *aggregator) merge(o *aggregator) {
	a.runs += o.runs
	for k, v := range o.outcomes {
		a.outcomes[k] += v
	}
	a.retries += o.retries
	a.aborted += o.aborted
	a.canceled += o.canceled
	a.errors += o.errors
	a.faultErrors += o.faultErrors
	a.mismatches += o.mismatches
	a.invariantViolations += o.invariantViolations
	a.faultRuns += o.faultRuns
	a.crashedAgents += o.crashedAgents
	a.faultEvents += o.faultEvents
	a.takeovers += o.takeovers
	a.traceDropped += o.traceDropped
	a.boundViolations += o.boundViolations
	if o.ratioMax > a.ratioMax {
		a.ratioMax = o.ratioMax
	}
	a.serialMS += o.serialMS
	for name, st := range o.phaseTotals {
		cur := a.phaseTotals[name]
		cur.Moves += st.Moves
		cur.Accesses += st.Accesses
		cur.Writes += st.Writes
		cur.Erases += st.Erases
		a.phaseTotals[name] = cur
	}
	a.moves.Merge(&o.moves)
	a.accesses.Merge(&o.accesses)
	a.crashed.Merge(&o.crashed)
	a.ratio.Merge(&o.ratio)
	for name, h := range o.phaseMoves {
		mine := a.phaseMoves[name]
		if mine == nil {
			mine = &sketch.Hist{}
			a.phaseMoves[name] = mine
		}
		mine.Merge(h)
	}
	a.violations.Merge(o.violations) //nolint:errcheck // same constructor, same dims
	for _, sig := range o.vioKeys {
		if !a.vioSeen[sig] && len(a.vioKeys) < maxViolationKeys {
			a.vioSeen[sig] = true
			a.vioKeys = append(a.vioKeys, sig)
		}
	}
	for _, f := range o.failures {
		if len(a.failures) >= maxFailureSample {
			break
		}
		a.failures = append(a.failures, f)
	}
	a.movesS = append(a.movesS, o.movesS...)
	a.accessesS = append(a.accessesS, o.accessesS...)
	a.crashedS = append(a.crashedS, o.crashedS...)
	a.ratiosS = append(a.ratiosS, o.ratiosS...)
	for name, vs := range o.phaseMovesS {
		a.phaseMovesS[name] = append(a.phaseMovesS[name], vs...)
	}
}

// reset empties the aggregator for the next live-fold batch, reusing the
// sketch allocations.
func (a *aggregator) reset() {
	bound := a.bound
	exact := a.exact
	moves, accesses, crashed, ratio := a.moves, a.accesses, a.crashed, a.ratio
	vio := a.violations
	*a = *newAggregator(exact, bound)
	moves.Reset()
	accesses.Reset()
	crashed.Reset()
	ratio.Reset()
	vio.Reset()
	a.moves, a.accesses, a.crashed, a.ratio = moves, accesses, crashed, ratio
	a.violations = vio
}

// quantiles reads p50/p90/p99 from either the exact slice or the sketch.
func (a *aggregator) quantiles(slice []int64, h *sketch.Hist) (p50, p90, p99 int64) {
	if a.exact {
		return pctInt(slice, 50), pctInt(slice, 90), pctInt(slice, 99)
	}
	return h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
}

// summary renders the aggregate into the campaign Summary.
func (a *aggregator) summary(workers int, wallMS float64, hits, misses int64, analysisMS float64) Summary {
	s := Summary{
		Runs:                a.runs,
		Workers:             workers,
		Outcomes:            a.outcomes,
		Mismatches:          a.mismatches,
		Errors:              a.errors,
		Retries:             a.retries,
		Aborted:             a.aborted,
		Canceled:            a.canceled,
		InvariantViolations: a.invariantViolations,
		FaultRuns:           a.faultRuns,
		CrashedAgents:       a.crashedAgents,
		Takeovers:           a.takeovers,
		FaultEvents:         a.faultEvents,
		FaultErrors:         a.faultErrors,
		RatioMax:            a.ratioMax,
		RatioBound:          a.bound,
		BoundViolations:     a.boundViolations,
		CacheHits:           hits,
		CacheMisses:         misses,
		AnalysisMS:          analysisMS,
		WallMS:              wallMS,
		SerialMS:            a.serialMS,
		TraceDropped:        a.traceDropped,
		Streamed:            !a.exact,
	}
	if hits+misses > 0 {
		s.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	s.MovesP50, s.MovesP90, s.MovesP99 = a.quantiles(a.movesS, &a.moves)
	s.AccessP50, s.AccessP90, s.AccessP99 = a.quantiles(a.accessesS, &a.accesses)
	s.CrashedP50, s.CrashedP90, _ = a.quantiles(a.crashedS, &a.crashed)
	if a.exact {
		s.RatioP50, s.RatioP90 = pctFloat(a.ratiosS, 50), pctFloat(a.ratiosS, 90)
	} else {
		s.SketchRelErr = sketch.RelativeError
		s.RatioP50 = float64(a.ratio.Quantile(0.50)) / ratioScale
		s.RatioP90 = float64(a.ratio.Quantile(0.90)) / ratioScale
	}
	if len(a.phaseTotals) > 0 {
		s.Phases = make(map[string]PhaseStat, len(a.phaseTotals))
		for name, st := range a.phaseTotals {
			if a.exact {
				st.MovesP50 = pctInt(a.phaseMovesS[name], 50)
				st.MovesP90 = pctInt(a.phaseMovesS[name], 90)
			} else if h := a.phaseMoves[name]; h != nil {
				st.MovesP50 = h.Quantile(0.50)
				st.MovesP90 = h.Quantile(0.90)
			}
			s.Phases[name] = st
		}
	}
	if s.WallMS > 0 {
		s.SpeedupEst = s.SerialMS / s.WallMS
	}
	s.TopViolations = a.topViolations()
	return s
}

// topViolations ranks the tracked signatures by their count-min
// estimates, highest first, capped at maxTopViolations. Signatures past
// the candidate-list bound are still counted in the sketch but cannot be
// listed; the list is a sample, the InvariantViolations counter is the
// truth.
func (a *aggregator) topViolations() []ViolationCount {
	if len(a.vioKeys) == 0 {
		return nil
	}
	out := make([]ViolationCount, 0, len(a.vioKeys))
	for _, sig := range a.vioKeys {
		out = append(out, ViolationCount{Signature: sig, Count: a.violations.Estimate(sig)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Signature < out[j].Signature
	})
	if len(out) > maxTopViolations {
		out = out[:maxTopViolations]
	}
	return out
}
