// Command electnode runs one election on a chosen runtime backend — the
// focused single-instance entry point to the unified Protocol/Runtime
// contract (internal/runtime, DESIGN.md §15), and the worker binary of the
// networked backend's multi-process message bus.
//
// Usage:
//
//	electnode -graph cycle:9 -homes 0,3,6 [-backend networked] [-seed 1]
//	          [-protocol dfs-election] [-workers 2] [-transport unix|tcp]
//	          [-spawn pipe|process] [-wire-fault drop|delay|dup|reorder|mixed]
//	          [-wire-seed 1] [-wire-replay plan.b64] [-frame-log frames.log]
//	          [-max-steps 200000] [-listen :8080]
//
// The backend is one of goroutine, scheduled, transformed, networked. With
// -backend networked the election executes on a real message bus: one
// worker per node shard (-workers), spawned either as in-process pipes
// (-spawn pipe) or as re-exec'd OS processes (-spawn process) talking
// length-prefixed JSON frames over -transport unix or tcp. -wire-fault
// injects seeded wire faults on the agent-message layer and prints the
// recorded plan (replayable via -wire-replay); -frame-log writes the
// coordinator's frame transcript for byte-exact replay comparison.
//
// With -listen the command serves operator endpoints while running and
// stays up after the election finishes (until SIGTERM/SIGINT) so the
// result metrics can be scraped:
//
//	GET /debug/metrics         run counters and gauges as JSON
//	GET /debug/metrics/stream  server-sent events (SSE) metrics feed
//	GET /debug/live            live operator dashboard (HTML)
//
// When spawned with the REPRO_ELECTNODE_WORKER environment variable set,
// the process becomes a bus worker instead: it dials the coordinator,
// serves its node shard, and exits (see runtime.MaybeWorker).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/telemetry"

	// Register the related-work zoo protocols ("zoo-dp", "zoo-shades:*",
	// "zoo-uso") so -protocol accepts them alongside dfs-election.
	_ "repro/internal/zoo"
)

func main() {
	runtime.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphArg   = flag.String("graph", "cycle:6", "graph instance as family:size (see cmd/campaign families; petersen needs no size)")
		homesArg   = flag.String("homes", "0,3", "comma-separated home-base nodes (agent i gets ID i+1)")
		backend    = flag.String("backend", "networked", "runtime backend: goroutine, scheduled, transformed, networked")
		protocol   = flag.String("protocol", "dfs-election", "protocol spec from the runtime registry (\"name\" or \"name:args\")")
		seed       = flag.Int64("seed", 1, "scheduling seed (deterministic backends replay exactly per seed)")
		maxSteps   = flag.Int("max-steps", 0, "activation budget (0 = the runtime default)")
		workers    = flag.Int("workers", 2, "node shards of the networked backend")
		transport  = flag.String("transport", "unix", "networked process transport: unix or tcp")
		spawn      = flag.String("spawn", runtime.SpawnProcess, "networked worker mode: process (re-exec'd OS processes) or pipe (in-process)")
		wireFault  = flag.String("wire-fault", "", "wire-fault strategy on the networked bus: drop, delay, dup, reorder, mixed")
		wireSeed   = flag.Int64("wire-seed", 1, "wire-fault injection seed")
		wireReplay = flag.String("wire-replay", "", "replay a recorded base64 wire plan instead of seeded injection")
		frameLog   = flag.String("frame-log", "", "write the coordinator's frame transcript to this file")
		listen     = flag.String("listen", "", "serve /debug/metrics on this address and stay up after the run until SIGTERM")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintln(out, "Usage: electnode [flags]")
		fmt.Fprintln(out, "Runs one election on a runtime backend (internal/runtime).")
		fmt.Fprintln(out)
		flag.PrintDefaults()
		fmt.Fprintln(out, `
With -listen ADDR the command serves operator endpoints during and after
the run (it stays up until SIGTERM/SIGINT so metrics can be scraped):
  /debug/metrics         run counters and gauges as JSON
  /debug/metrics/stream  server-sent events (SSE) metrics feed
  /debug/live            live operator dashboard (HTML)`)
	}
	flag.Parse()

	g, err := parseGraph(*graphArg)
	if err != nil {
		return err
	}
	homes, err := parseHomes(*homesArg)
	if err != nil {
		return err
	}
	p, err := runtime.FromSpec(*protocol)
	if err != nil {
		return err
	}
	rt, err := runtime.New(*backend)
	if err != nil {
		return err
	}

	var injector faults.WireInjector
	if nw, ok := rt.(*runtime.Networked); ok {
		nw.Workers = *workers
		nw.Transport = *transport
		nw.Spawn = *spawn
		switch {
		case *wireReplay != "":
			plan, err := faults.DecodeWirePlanString(*wireReplay)
			if err != nil {
				return err
			}
			injector = faults.ReplayWire(plan)
		case *wireFault != "":
			injector, err = faults.NewWire(*wireFault, *wireSeed)
			if err != nil {
				return err
			}
		}
		nw.WireFaults = injector
		if *frameLog != "" {
			f, err := os.Create(*frameLog)
			if err != nil {
				return err
			}
			defer f.Close()
			nw.FrameLog = f
		}
	} else if *wireFault != "" || *wireReplay != "" || *frameLog != "" {
		return fmt.Errorf("wire faults and frame logs need -backend networked, not %q", *backend)
	}

	reg := telemetry.NewRegistry()
	var srv *serve.HTTPServer
	if *listen != "" {
		mux := http.NewServeMux()
		mux.Handle("/debug/metrics", reg)
		mux.Handle("/debug/metrics/stream", reg.StreamHandler())
		mux.Handle("/debug/live", telemetry.DashboardHandler())
		srv, err = serve.Listen(*listen, mux, nil)
		if err != nil {
			return err
		}
		srv.Start()
		fmt.Printf("serving metrics on http://%s/debug/metrics\n", srv.Addr())
	}

	cfg := runtime.Config{Graph: g, Homes: homes, Seed: *seed, MaxSteps: *maxSteps}
	start := time.Now()
	res, err := rt.Run(cfg, p)
	elapsed := time.Since(start)
	reg.Counter("electnode_runs_total").Inc()
	if err != nil {
		reg.Counter("electnode_errors_total").Inc()
		return err
	}
	reg.Gauge("electnode_leader").Set(int64(res.Leader()))
	reg.Gauge("electnode_moves_total").Set(res.TotalMoves())
	reg.Gauge("electnode_steps").Set(int64(res.Steps))

	fmt.Printf("backend %s: %d agents on %s (n=%d), seed %d\n",
		res.Backend, len(homes), *graphArg, g.N(), *seed)
	fmt.Printf("leader: agent %d\n", res.Leader())
	fmt.Printf("outcomes: %v\n", res.Outcomes)
	fmt.Printf("moves: %v (total %d), steps %d, elapsed %s\n",
		res.Moves, res.TotalMoves(), res.Steps, elapsed.Round(time.Millisecond))
	if injector != nil {
		plan := injector.Plan()
		reg.Gauge("electnode_wire_faults").Set(int64(len(plan.Events)))
		fmt.Printf("wire faults (%d): %s\n", len(plan.Events), plan.Summary())
		fmt.Printf("wire plan: %s\n", plan.EncodeString())
	}
	if *frameLog != "" {
		fmt.Printf("frame log written to %s\n", *frameLog)
	}

	if srv != nil {
		// Stay up for scrapers until the operator says otherwise.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close() //nolint:errcheck // exiting anyway
		}
	}
	return nil
}

// parseGraph builds a "family:size" instance through the campaign registry.
func parseGraph(s string) (g *graph.Graph, err error) {
	name, sizePart, hasSize := strings.Cut(s, ":")
	size := 0
	if hasSize {
		size, err = strconv.Atoi(strings.TrimSpace(sizePart))
		if err != nil {
			return nil, fmt.Errorf("bad graph size in %q: %w", s, err)
		}
	}
	return campaign.BuildGraph(strings.TrimSpace(name), size)
}

// parseHomes parses the comma-separated home list.
func parseHomes(s string) ([]int, error) {
	var homes []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad home %q: %w", tok, err)
		}
		homes = append(homes, v)
	}
	if len(homes) == 0 {
		return nil, fmt.Errorf("need at least one home in %q", s)
	}
	return homes, nil
}
