package campaign

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate with: go test ./internal/campaign -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestRunRecordGolden pins the exact JSONL record a fault-injected campaign
// run emits — field names, fault manifest encoding, violation shape, OK
// semantics. The record is the persistent interface other tooling parses,
// so schema drift must be a conscious, golden-updating change.
func TestRunRecordGolden(t *testing.T) {
	spec := Spec{
		Families:   []FamilySpec{{Family: "cycle", Sizes: []int{6}, Placement: "spread", R: 3}},
		Seeds:      SeedRange{From: 1, To: 1},
		Protocol:   ProtoElect,
		Strategies: []string{"random"},
		Faults:     []string{"crash-frontrunner"},
	}
	var jsonl bytes.Buffer
	if _, err := Execute(spec, Options{JSONL: &jsonl, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var rec RunResult
	if err := json.Unmarshal(jsonl.Bytes(), &rec); err != nil {
		t.Fatalf("campaign emitted unparsable JSONL: %v", err)
	}
	rec.ElapsedMS = 0 // the only wall-clock-dependent field
	got, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "fault-run-record.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSONL record drifted from %s (regenerate with -update if intended)\n--- want ---\n%s--- got ---\n%s",
			path, want, got)
	}
}
