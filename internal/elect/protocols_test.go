package elect

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/sim"
)

func fmtState(steps int) string { return fmt.Sprintf("walking:%d", steps) }

func fmtSscanf(s string, steps *int) (int, error) { return fmt.Sscanf(s, "walking:%d", steps) }

func run(t *testing.T, g *graph.Graph, homes []int, seed int64, quant bool, p sim.Protocol) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Graph: g, Homes: homes, Seed: seed, WakeAll: false,
		MaxDelay:        100 * time.Microsecond,
		Timeout:         60 * time.Second,
		QuantitativeIDs: quant,
	}, p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

func TestCayleyElectSuite(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		homes   []int
		succeed bool
	}{
		// d = 1, unique minimum: solvable.
		{"C6-dist2", graph.Cycle(6), []int{0, 2}, true},
		{"C7-two", graph.Cycle(7), []int{0, 2}, true},
		{"C5-single", graph.Cycle(5), []int{0}, true},
		{"Q3-three", graph.Hypercube(3), []int{0, 1, 3}, true},
		// d > 1: impossible.
		{"C6-antipodal", graph.Cycle(6), []int{0, 3}, false},
		{"K2", graph.Path(2), []int{0, 1}, false},
		{"Q3-antipodal", graph.Hypercube(3), []int{0, 7}, false},
		{"K4-all", graph.Complete(4), []int{0, 1, 2, 3}, false},
		// The under-specified corner: d = 1 for the Z4 representation but the
		// Klein representation has a black-preserving translation; the
		// automorphism-class gcd (2) catches it: unsolvable.
		{"C4-adjacent", graph.Cycle(4), []int{0, 1}, false},
		// C6 adjacent agents: d = 1 but gcd = 2; genuinely unsolvable
		// (the edge reflection supports a symmetric labeling).
		{"C6-adjacent", graph.Cycle(6), []int{0, 1}, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			// Cross-check expectation with the centralized analysis.
			an, err := Analyze(c.g, c.homes, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !an.Cayley {
				t.Fatalf("suite graph not recognized as Cayley")
			}
			if an.CayleyElectSucceeds() != c.succeed {
				t.Fatalf("oracle disagrees: d=%d gcd=%d, suite wants succeed=%v",
					an.TranslationD, an.GCD, c.succeed)
			}
			// And with the exact Theorem 2.1 impossibility criterion.
			if an.Thm21Checked && an.Impossible21 == c.succeed {
				t.Fatalf("Theorem 2.1 oracle says impossible=%v, suite wants succeed=%v",
					an.Impossible21, c.succeed)
			}
			for seed := int64(1); seed <= 2; seed++ {
				res := run(t, c.g, c.homes, seed, false, CayleyElect(CayleyOptions{}))
				if c.succeed && !res.AgreedLeader() {
					t.Fatalf("seed %d: expected leader, got %+v", seed, res.Outcomes)
				}
				if !c.succeed && !res.AllUnsolvable() {
					t.Fatalf("seed %d: expected unsolvable, got %+v", seed, res.Outcomes)
				}
			}
		})
	}
}

func TestCayleyElectRejectsNonCayley(t *testing.T) {
	_, err := sim.Run(sim.Config{
		Graph: graph.Petersen(), Homes: []int{0, 1}, Seed: 1, WakeAll: true,
		Timeout: 30 * time.Second,
	}, CayleyElect(CayleyOptions{}))
	if err == nil {
		t.Fatal("expected ErrNotCayley propagation")
	}
}

func TestCayleyElectFallback(t *testing.T) {
	// With the fallback, Petersen/Fig5 degrades to plain ELECT: gcd 2,
	// so all agents report unsolvable (the paper's non-effectualness).
	res := run(t, graph.Petersen(), []int{0, 1}, 1, false,
		CayleyElect(CayleyOptions{FallbackToElect: true}))
	if !res.AllUnsolvable() {
		t.Fatalf("expected unsolvable under fallback, got %+v", res.Outcomes)
	}
}

func TestQuantitativeElectUniversal(t *testing.T) {
	// The quantitative baseline elects everywhere — including on instances
	// that are impossible in the qualitative model (Table 1, row 3).
	cases := []struct {
		g     *graph.Graph
		homes []int
	}{
		{graph.Path(2), []int{0, 1}},           // K2!
		{graph.Cycle(6), []int{0, 3}},          // antipodal
		{graph.Petersen(), []int{0, 1}},        // Fig. 5
		{graph.Hypercube(3), []int{0, 7}},      // antipodal cube
		{graph.Complete(4), []int{0, 1, 2, 3}}, // fully occupied
		{graph.Cycle(5), []int{0}},             // single agent
		{graph.Star(4), []int{1, 2, 3, 4}},     // leaves
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 2; seed++ {
			res := run(t, c.g, c.homes, seed, true, QuantitativeElect())
			if !res.AgreedLeader() {
				t.Fatalf("%v homes %v seed %d: %+v", c.g, c.homes, seed, res.Outcomes)
			}
		}
	}
}

func TestQuantitativeElectMaxWins(t *testing.T) {
	// The winner must be the agent with the maximum integer identity
	// (ids are assigned 1..r in home order by the sim engine).
	g := graph.Cycle(6)
	homes := []int{0, 3}
	res := run(t, g, homes, 3, true, QuantitativeElect())
	if res.Outcomes[1].Role != sim.RoleLeader {
		t.Fatalf("agent with max id (index 1) should win, got %+v", res.Outcomes)
	}
	if res.Outcomes[0].Role != sim.RoleDefeated || !res.Outcomes[0].Leader.Equal(res.Colors[1]) {
		t.Fatalf("loser should acknowledge the winner, got %+v", res.Outcomes[0])
	}
}

func TestPetersenAdHocElects(t *testing.T) {
	// Figure 5: ELECT fails on this instance but the bespoke protocol
	// elects — over many seeds and schedules.
	for seed := int64(1); seed <= 10; seed++ {
		res := run(t, graph.Petersen(), []int{0, 1}, seed, false, PetersenElect())
		if !res.AgreedLeader() {
			t.Fatalf("seed %d: expected leader, got %+v", seed, res.Outcomes)
		}
	}
	// Works from any adjacent pair (vertex-transitivity).
	for _, homes := range [][]int{{2, 3}, {5, 7}, {4, 9}, {0, 5}} {
		res := run(t, graph.Petersen(), homes, 2, false, PetersenElect())
		if !res.AgreedLeader() {
			t.Fatalf("homes %v: expected leader, got %+v", homes, res.Outcomes)
		}
	}
}

func TestPetersenAdHocValidatesInput(t *testing.T) {
	if _, err := sim.Run(sim.Config{
		Graph: graph.Cycle(10), Homes: []int{0, 1}, Seed: 1, WakeAll: true,
		Timeout: 30 * time.Second,
	}, PetersenElect()); err == nil {
		t.Error("C10 accepted by PetersenElect")
	}
	if _, err := sim.Run(sim.Config{
		Graph: graph.Petersen(), Homes: []int{0, 2}, Seed: 1, WakeAll: true,
		Timeout: 30 * time.Second,
	}, PetersenElect()); err == nil {
		t.Error("non-adjacent home-bases accepted")
	}
}

func TestAnalyzeTable1Consistency(t *testing.T) {
	// Wherever the Theorem 2.1 oracle is decisive, it must be consistent
	// with both protocol predictions: a protocol can only succeed on
	// possible instances, and on Cayley graphs the Section 4 protocol must
	// succeed exactly on the possible ones (effectualness).
	cases := []struct {
		g     *graph.Graph
		homes []int
	}{
		{graph.Cycle(4), []int{0, 1}},
		{graph.Cycle(4), []int{0, 2}},
		{graph.Cycle(5), []int{0, 1}},
		{graph.Cycle(6), []int{0, 1}},
		{graph.Cycle(6), []int{0, 2}},
		{graph.Cycle(6), []int{0, 3}},
		{graph.Cycle(6), []int{0, 1, 2}},
		{graph.Cycle(6), []int{0, 2, 4}},
		{graph.Hypercube(3), []int{0, 1}},
		{graph.Hypercube(3), []int{0, 3}},
		{graph.Hypercube(3), []int{0, 7}},
		{graph.Hypercube(3), []int{0, 1, 2}},
		{graph.Complete(4), []int{0, 1}},
		{graph.Complete(4), []int{0, 1, 2, 3}},
		{graph.Prism(3), []int{0, 1}},
		{graph.Prism(3), []int{0, 3}},
		{graph.Petersen(), []int{0, 1}},
		{graph.Petersen(), []int{0, 2}},
		{graph.Path(5), []int{0, 4}},
		{graph.Star(4), []int{1, 2}},
	}
	for _, c := range cases {
		an, err := Analyze(c.g, c.homes, 0)
		if err != nil {
			t.Fatalf("%v %v: %v", c.g, c.homes, err)
		}
		if !an.Thm21Checked {
			t.Fatalf("%v %v: Theorem 2.1 oracle undecided", c.g, c.homes)
		}
		if an.ElectSucceeds() && an.Impossible21 {
			t.Errorf("%v %v: ELECT succeeds but instance impossible — soundness broken",
				c.g, c.homes)
		}
		if an.Cayley {
			if an.CayleyElectSucceeds() == an.Impossible21 {
				t.Errorf("%v %v: CayleyElect effectualness violated: succeeds=%v impossible=%v (d=%d gcd=%d)",
					c.g, c.homes, an.CayleyElectSucceeds(), an.Impossible21, an.TranslationD, an.GCD)
			}
		}
	}
}

func TestAnonymousImpossibilityDemo(t *testing.T) {
	// Section 1.3: any deterministic anonymous protocol behaves identically
	// on (C3, one agent) and (C6, two antipodal agents) under the oriented
	// labeling and a synchronous scheduler — so it cannot be effectual.
	// We exhibit the argument on a protocol that genuinely tries: walk the
	// ring, count your own marks, declare leader when the board shows your
	// mark again (works alone; double-elects with a twin).
	proto := func(obs AnonObs) (string, AnonAction) {
		switch obs.State {
		case "":
			return "walking:0", AnonAction{Write: "pebble", MoveLabel: 1}
		default:
			var steps int
			if _, err := fmtSscanf(obs.State, &steps); err != nil {
				return "stuck", AnonAction{}
			}
			if len(obs.Board) > 0 {
				// Found a pebble: in a lone-agent world it must be mine.
				return "done", AnonAction{Declare: "leader"}
			}
			return fmtState(steps + 1), AnonAction{MoveLabel: 1}
		}
	}

	resC3, err := RunAnonymous(AnonConfig{
		G: graph.Cycle(3), Labels: OrientedCycleLabeling(3),
		Homes: []int{0}, Rounds: 10,
	}, proto)
	if err != nil {
		t.Fatal(err)
	}
	resC6, err := RunAnonymous(AnonConfig{
		G: graph.Cycle(6), Labels: OrientedCycleLabeling(6),
		Homes: []int{0, 3}, Rounds: 10,
	}, proto)
	if err != nil {
		t.Fatal(err)
	}
	// The lone agent elects itself on C3.
	if resC3.Declared[0] != "leader" {
		t.Fatalf("C3: lone agent failed to elect itself: %v", resC3.Declared)
	}
	// On C6, both agents produce the same trace and both declare leader —
	// the symmetry is unbreakable.
	if len(resC6.Traces[0]) != len(resC6.Traces[1]) {
		t.Fatalf("trace lengths differ: %d vs %d", len(resC6.Traces[0]), len(resC6.Traces[1]))
	}
	for i := range resC6.Traces[0] {
		if resC6.Traces[0][i] != resC6.Traces[1][i] {
			t.Fatalf("round %d: traces diverge:\n%s\n%s", i, resC6.Traces[0][i], resC6.Traces[1][i])
		}
	}
	if resC6.Declared[0] != resC6.Declared[1] {
		t.Fatalf("declarations differ: %v", resC6.Declared)
	}
	if resC6.Declared[0] == "leader" && resC6.Declared[1] == "leader" {
		// Exactly the contradiction the paper derives: two leaders.
		t.Log("both agents declared leader on C6 — the §1.3 contradiction")
	} else {
		t.Fatalf("expected the double-election contradiction, got %v", resC6.Declared)
	}
	// And the C3 trace prefix matches the C6 traces (same local world).
	for i := 0; i < len(resC3.Traces[0]) && i < len(resC6.Traces[0]); i++ {
		if resC3.Traces[0][i] != resC6.Traces[0][i] {
			t.Fatalf("C3/C6 traces diverge at round %d:\n%s\n%s",
				i, resC3.Traces[0][i], resC6.Traces[0][i])
		}
	}
}

func TestCayleyElectAgentsAgreeOnD(t *testing.T) {
	// Regression: Q3 is a Cayley graph of two non-isomorphic groups (Z2³
	// and a Z4×Z2-type subgroup), and a naive per-map regular-subgroup
	// search can hand different agents different translation counts d —
	// one agent then reduces while the other has already declared the
	// election unsolvable, deadlocking the run. CayleyTranslationCount
	// canonicalizes the bicolored map first; every 2-agent placement on Q3
	// has d = 2 (the xor translation) and must come back unsolvable.
	g := graph.Hypercube(3)
	for other := 1; other < 8; other++ {
		res := run(t, g, []int{0, other}, int64(10+other), false,
			CayleyElect(CayleyOptions{}))
		if !res.AllUnsolvable() {
			t.Fatalf("homes {0,%d}: expected unsolvable, got %+v", other, res.Outcomes)
		}
	}
	// And d itself is stable across relabelings of the same placement.
	black := make([]int, 8)
	black[0], black[4] = 1, 1
	_, dBase, err := CayleyTranslationCount(g, black, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dBase != 2 {
		t.Fatalf("d = %d, want 2 (xor by 100 preserves the blacks)", dBase)
	}
	for trial := 0; trial < 5; trial++ {
		p := rand.New(rand.NewSource(int64(trial))).Perm(8)
		h, err := g.Relabel(p)
		if err != nil {
			t.Fatal(err)
		}
		nblack := make([]int, 8)
		for v, b := range black {
			nblack[p[v]] = b
		}
		_, d, err := CayleyTranslationCount(h, nblack, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d != dBase {
			t.Fatalf("trial %d: d = %d under relabeling, want %d", trial, d, dBase)
		}
	}
}
