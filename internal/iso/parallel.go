package iso

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/perm"
)

// Options tunes a canonical labeling computation (CanonicalOpt,
// CanonicalSparseOpt). The zero value is the plain sequential unbudgeted
// search.
type Options struct {
	// Workers is the number of search workers. Values <= 1 run the
	// sequential engine; values > 1 fan the root branch cell out over a
	// worker pool with a shared best-word bound. The canonical *word* is
	// bit-identical for every worker count (DESIGN.md §13); the returned
	// labeling permutation and automorphism generators may differ between
	// schedules (any labeling achieving the word is canonical).
	Workers int
	// MaxLeaves bounds search effort exactly like CanonicalBudget: the
	// search fails with ErrLeafBudget after visiting MaxLeaves leaves
	// across all workers (<= 0 means unbounded).
	MaxLeaves int
	// Ctx, when non-nil, cancels the search: every worker polls it once
	// per search node and the computation returns Ctx.Err(). This is the
	// path by which a canceled /v1/analyze request stops its canonical
	// searches.
	Ctx context.Context
}

// haltBudget / haltCtx distinguish why a shared search stopped.
const (
	haltBudget = 1
	haltCtx    = 2
)

// bestSnap is one immutable published best: the word, the labeling that
// produced it (both directions), and a generation counter. Workers read the
// current snapshot with one atomic pointer load — the "lock-light shared
// prefix bound" — and only the publish path takes a lock.
type bestSnap struct {
	word []byte
	p    perm.Perm
	inv  []int
	gen  int
}

// sharedSearch is the state shared by the workers of one parallel canonical
// search: the best-word snapshot, the pooled automorphisms, the global leaf
// budget, the task cursor over the root branch cell, and the claimed-vertex
// list that extends orbit pruning across workers.
type sharedSearch struct {
	snap atomic.Pointer[bestSnap]
	mu   sync.Mutex // serializes publish (compare-under-lock)

	autosMu sync.Mutex
	autos   []perm.Perm // append-only; entries immutable once appended
	autoLen atomic.Int64

	leaves    atomic.Int64
	maxLeaves int64
	halted    atomic.Bool
	haltWhy   atomic.Int32

	cursor    atomic.Int64
	claimedMu sync.Mutex
	claimed   []int

	tasks       atomic.Int64
	claimPrunes atomic.Int64
	publishes   atomic.Int64
}

func (sh *sharedSearch) haltBudget() {
	sh.haltWhy.CompareAndSwap(0, haltBudget)
	sh.halted.Store(true)
}

// publish installs this worker's leaf as the shared best if it is still
// strictly smaller than the current snapshot. The pre-publish compare in
// sharedLeaf is advisory; this re-compare under the lock is what guarantees
// the snapshot word only ever decreases, which makes every stale prefix
// prune sound (pruning against an old best is pruning against an upper
// bound of the final word).
func (sh *sharedSearch) publish(st *canonState, lv *level) {
	sh.mu.Lock()
	cur := sh.snap.Load()
	if cur == nil || bytes.Compare(st.prefix, cur.word) < 0 {
		ns := &bestSnap{
			word: append([]byte(nil), st.prefix...),
			p:    make(perm.Perm, st.n),
			inv:  make([]int, st.n),
			gen:  1,
		}
		if cur != nil {
			ns.gen = cur.gen + 1
		}
		for pos, v := range lv.lab {
			ns.p[v] = pos
			ns.inv[pos] = v
		}
		sh.snap.Store(ns)
		sh.publishes.Add(1)
	}
	sh.mu.Unlock()
}

// addAuto appends a verified automorphism to the shared pool and returns
// the current slice for the caller's local mirror. Entries are immutable
// and the slice is append-only, so a mirror taken under the lock stays
// valid forever; autoLen lets workers detect growth with one atomic load.
func (sh *sharedSearch) addAuto(a perm.Perm) []perm.Perm {
	sh.autosMu.Lock()
	sh.autos = append(sh.autos, a)
	v := sh.autos
	sh.autoLen.Store(int64(len(v)))
	sh.autosMu.Unlock()
	return v
}

// CanonicalOpt is Canonical with explicit search options (worker count,
// leaf budget, cancellation). Workers <= 1 reproduces CanonicalBudget
// exactly; any worker count produces the same canonical word.
func CanonicalOpt(c *Colored, o Options) (*Result, error) {
	if c.N == 0 {
		return &Result{Perm: perm.Perm{}, Word: []byte{}}, nil
	}
	if referenceEngine.Load() {
		// The benchmark-only reference switch overrides the options: the
		// frozen engine is sequential, unbudgeted and uncancelable.
		return referenceCanonical(c), nil
	}
	return canonicalRun(func() *canonState { return newCanonState(c, 0) }, o)
}

// CanonicalSparse computes the canonical form of a Sparse with the default
// sequential options. The sparse word is a different (O(n+m) varint)
// serialization than the dense engine's — words are comparable only within
// one engine — but carries the same guarantee: equal words exactly
// characterize color-isomorphism.
func CanonicalSparse(sp *Sparse) *Result {
	r, err := CanonicalSparseOpt(sp, Options{})
	if err != nil {
		panic("iso: unreachable: unbudgeted sparse search returned " + err.Error())
	}
	return r
}

// CanonicalSparseOpt is CanonicalSparse with explicit search options.
func CanonicalSparseOpt(sp *Sparse, o Options) (*Result, error) {
	if sp.N == 0 {
		return &Result{Perm: perm.Perm{}, Word: []byte{}}, nil
	}
	return canonicalRun(func() *canonState { return newSparseCanonState(sp, 0) }, o)
}

// canonicalRun executes a search over states built by mk, sequentially or
// with a worker pool fanned out over the root branch cell.
func canonicalRun(mk func() *canonState, o Options) (*Result, error) {
	if o.Workers <= 1 {
		st := mk()
		st.maxLeaves = o.MaxLeaves
		if o.Ctx != nil {
			st.done = o.Ctx.Done()
		}
		st.run()
		st.flushStats()
		if st.stopped {
			return nil, o.Ctx.Err()
		}
		if st.budgetHit {
			return nil, ErrLeafBudget
		}
		return &Result{Perm: st.bperm, Word: st.best, AutoGens: st.autos}, nil
	}
	return parallelRun(mk, o)
}

// rootPrep runs the shared deterministic part of every worker's search: the
// initial partition, its refinement, and the determined prefix over the
// leading singleton cells. It returns the level, the leading-singleton
// count, and the branch cell (target < 0 when the root is already
// discrete).
func (st *canonState) rootPrep() (lv *level, k, target int) {
	lv = st.level(0)
	st.initialPartition(lv)
	st.prepareRootPrefix(lv)
	st.refine(lv)
	k = 0
	for k < lv.ncells && lv.cellStart[k+1]-lv.cellStart[k] == 1 {
		k++
	}
	if st.sparse {
		for i := 0; i < k; i++ {
			st.posOf[lv.lab[i]] = int32(i)
		}
	}
	for i := 0; i < k; i++ {
		if st.sparse {
			st.appendSparseBlock(i, lv.lab[i])
		} else {
			st.prefix = appendBlock(st.prefix, st.c, lv.lab, i, lv.lab[i])
		}
	}
	target, targetLen := -1, st.n+1
	for t := 0; t < lv.ncells; t++ {
		if l := int(lv.cellStart[t+1] - lv.cellStart[t]); l > 1 && l < targetLen {
			target, targetLen = t, l
		}
	}
	return lv, k, target
}

// parallelRun fans the root branch cell out over a worker pool. Tasks (one
// per branch vertex, in cell order) are claimed from an atomic cursor —
// idle workers pull the next unclaimed branch rather than sitting behind a
// static partition, which is the work-stealing property that keeps the pool
// busy when subtree costs are skewed. Each worker owns a full private
// canonState (levels, refinement scratch, union-finds); only the best-word
// snapshot, the automorphism pool, the leaf budget, and the claimed-vertex
// list are shared. The canonical word is provably the same as the
// sequential engine's: the result is min over a fixed leaf set of a fixed
// serialization, every prune (prefix, orbit, claim) discards only leaves
// that cannot be the minimum, and the min is schedule-independent.
func parallelRun(mk func() *canonState, o Options) (*Result, error) {
	root := mk()
	lv0, k0, target := root.rootPrep()
	if target < 0 {
		// Discrete after one refinement: a single leaf, no search to share.
		word := append([]byte(nil), root.prefix...)
		p := make(perm.Perm, root.n)
		for pos, v := range lv0.lab {
			p[v] = pos
		}
		root.leaves = 1
		root.flushStats()
		return &Result{Perm: p, Word: word}, nil
	}
	s, e := int(lv0.cellStart[target]), int(lv0.cellStart[target+1])
	tasks := append([]int(nil), lv0.lab[s:e]...)

	sh := &sharedSearch{maxLeaves: int64(o.MaxLeaves)}
	sh.claimed = make([]int, 0, len(tasks))
	var done <-chan struct{}
	if o.Ctx != nil {
		done = o.Ctx.Done()
	}
	workers := o.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var wg sync.WaitGroup
	states := make([]*canonState, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := mk()
			st.sh = sh
			st.done = done
			st.nodes++ // account the root node this worker re-derives
			lv, k, tgt := st.rootPrep()
			_ = k
			for !st.halted() {
				i := sh.cursor.Add(1) - 1
				if i >= int64(len(tasks)) {
					break
				}
				v := tasks[i]
				sh.tasks.Add(1)
				// Cross-worker orbit pruning: a vertex in the orbit (under
				// the automorphisms discovered so far) of a vertex some
				// worker has already claimed leads to a subtree whose leaf
				// words are exactly the claimed subtree's — and the claimed
				// subtree will be fully explored. Claimed vertices play the
				// role the sequential engine's per-node tried list plays.
				st.syncShared(-1) // refresh the automorphism mirror
				sh.claimedMu.Lock()
				lv.tried = append(lv.tried[:0], sh.claimed...)
				sh.claimedMu.Unlock()
				if st.inOrbitOfTried(lv, v) {
					sh.claimPrunes.Add(1)
					continue
				}
				sh.claimedMu.Lock()
				sh.claimed = append(sh.claimed, v)
				sh.claimedMu.Unlock()

				child := st.level(1)
				child.copyFrom(lv)
				child.individualize(tgt, v)
				st.base = append(st.base[:0], v)
				cmp := -1
				if st.best != nil {
					// The root prefix is a common prefix of every leaf word,
					// including best.
					cmp = 0
				}
				st.search(1, k0, cmp, tgt)
				st.base = st.base[:0]
			}
			states[w] = st
		}(w)
	}
	wg.Wait()

	var nodes, orbitPrunes, prefixPrunes int64
	for _, st := range states {
		if st == nil {
			continue
		}
		nodes += int64(st.nodes)
		orbitPrunes += int64(st.orbitPrunes)
		prefixPrunes += int64(st.prefixPrunes)
	}
	flushParallelStats(sh, nodes, orbitPrunes, prefixPrunes)

	if o.Ctx != nil && o.Ctx.Err() != nil {
		return nil, o.Ctx.Err()
	}
	if sh.haltWhy.Load() == haltBudget {
		searchStats.budgetExhaustions.Add(1)
		return nil, ErrLeafBudget
	}
	sn := sh.snap.Load()
	sh.autosMu.Lock()
	autos := sh.autos
	sh.autosMu.Unlock()
	return &Result{Perm: sn.p, Word: sn.word, AutoGens: autos}, nil
}
