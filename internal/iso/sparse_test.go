package iso

// Tests of the O(n+m) sparse canonical engine: agreement with the dense
// engine on isomorphism classification, invariance under relabeling,
// worker-count determinism, and orbit computation.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
)

func sparseFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"petersen":    graph.Petersen(),
		"c64":         graph.Cycle(64),
		"q4":          graph.Hypercube(4),
		"torus4x5":    graph.Torus(4, 5),
		"grid3x4":     graph.Grid(3, 4),
		"wheel7":      graph.Wheel(7),
		"prism8":      graph.Prism(8),
		"blowup4x3":   graph.BlowupCycle(4, 3),
		"randreg14x3": graph.RandomRegular(14, 3, 11),
		"randconn":    graph.RandomConnected(13, 6, 5),
	}
}

// TestSparseRelabelingInvariance: the sparse canonical word must be the same
// for every relabeling of the same colored graph — the defining invariance.
func TestSparseRelabelingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, g := range sparseFamilies() {
		n := g.N()
		cols := make([]int, n)
		for i := range cols {
			cols[i] = rng.Intn(2)
		}
		want := CanonicalSparse(SparseFromGraph(g, cols)).Word
		for trial := 0; trial < 4; trial++ {
			p := rng.Perm(n)
			h, err := g.Relabel(p)
			if err != nil {
				t.Fatal(err)
			}
			hcols := make([]int, n)
			for v, c := range cols {
				hcols[p[v]] = c
			}
			got := CanonicalSparse(SparseFromGraph(h, hcols))
			if !bytes.Equal(got.Word, want) {
				t.Fatalf("%s trial %d: sparse word not relabeling-invariant", name, trial)
			}
		}
	}
}

// TestSparseVsDenseClassification: the two engines use different word
// serializations, so words are not comparable across engines — but their
// equality relations must coincide. Pairs of graphs are classified as
// isomorphic or not by both engines and the verdicts compared.
func TestSparseVsDenseClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	mk := func() *Colored { return randomConnectedMulti(rng, 9) }
	for trial := 0; trial < 150; trial++ {
		a := mk()
		var b *Colored
		if trial%2 == 0 {
			b = a.Permuted(perm.Perm(rng.Perm(a.N)))
		} else {
			b = mk()
		}
		dense := bytes.Equal(Canonical(a).Word, Canonical(b).Word)
		sparse := bytes.Equal(
			CanonicalSparse(SparseFromColored(a)).Word,
			CanonicalSparse(SparseFromColored(b)).Word)
		if dense != sparse {
			t.Fatalf("trial %d: dense engine says isomorphic=%v, sparse says %v", trial, dense, sparse)
		}
	}
}

// TestSparseWorkerDeterminism: the sparse canonical word must be
// bit-identical across worker counts, like the dense engine's.
func TestSparseWorkerDeterminism(t *testing.T) {
	for name, g := range sparseFamilies() {
		sp := SparseFromGraph(g, nil)
		want := CanonicalSparse(sp).Word
		for _, w := range []int{2, 4, 8} {
			res, err := CanonicalSparseOpt(sp, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !bytes.Equal(res.Word, want) {
				t.Fatalf("%s workers=%d: sparse word differs from sequential", name, w)
			}
		}
	}
}

// TestSparseAutomorphismsValid: every generator returned by the sparse
// engine must be a real automorphism of the sparse graph.
func TestSparseAutomorphismsValid(t *testing.T) {
	for name, g := range sparseFamilies() {
		sp := SparseFromGraph(g, nil)
		res := CanonicalSparse(sp)
		if !bytes.Equal(sparseWordOf(sp, res.Perm), res.Word) {
			t.Fatalf("%s: sparse Perm does not serialize to Word", name)
		}
		for _, a := range res.AutoGens {
			if !sp.IsAutomorphism(a) {
				t.Fatalf("%s: sparse engine emitted a non-automorphism", name)
			}
		}
	}
}

// sparseWordOf serializes the sparse word of an arbitrary labeling p by
// driving the engine's own block encoder over the fully placed labeling
// (appendSparseBlock only looks at positions j <= i, so placing everything
// up front is safe). It is the sparse analogue of Colored.word.
func sparseWordOf(sp *Sparse, p perm.Perm) []byte {
	st := newSparseCanonState(sp, 0)
	lv := st.level(0)
	st.initialPartition(lv)
	st.prepareRootPrefix(lv)
	inv := p.Inverse()
	for i := 0; i < sp.N; i++ {
		st.posOf[inv[i]] = int32(i)
	}
	for i := 0; i < sp.N; i++ {
		st.appendSparseBlock(i, inv[i])
	}
	return append([]byte(nil), st.prefix...)
}

// TestSparseOrbitsVsDense: sparse orbit computation must produce exactly the
// dense engine's automorphism orbits, on plain and colored graphs.
func TestSparseOrbitsVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for name, g := range sparseFamilies() {
		for _, colored := range []bool{false, true} {
			var cols []int
			if colored {
				cols = make([]int, g.N())
				for i := range cols {
					cols[i] = rng.Intn(2)
				}
			}
			want := Orbits(FromGraph(g, cols))
			got, err := SparseOrbits(SparseFromGraph(g, cols), Options{})
			if err != nil {
				t.Fatalf("%s colored=%v: %v", name, colored, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s colored=%v: sparse orbits %v != dense %v", name, colored, got, want)
			}
		}
	}
}

// TestSparseEquitableVsDense: the sparse equitable partition must match the
// dense engine's cell-for-cell.
func TestSparseEquitableVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 60; trial++ {
		c := randomConnectedMulti(rng, 10)
		want := EquitablePartition(c)
		got := SparseEquitablePartition(SparseFromColored(c))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: sparse equitable partition differs", trial)
		}
	}
}

// TestSparseFromArcsDigraph: arc-list construction must agree with
// NewDigraph-based dense classification on random digraphs with
// multiplicities and loops.
func TestSparseFromArcsDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(7)
		var arcs [][2]int
		for a := rng.Intn(3 * n); a > 0; a-- {
			arcs = append(arcs, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		cols := make([]int, n)
		for i := range cols {
			cols[i] = rng.Intn(2)
		}
		// Relabel and compare: the sparse words of the digraph and a random
		// relabeling must be equal.
		p := rng.Perm(n)
		var arcs2 [][2]int
		for _, uv := range arcs {
			arcs2 = append(arcs2, [2]int{p[uv[0]], p[uv[1]]})
		}
		cols2 := make([]int, n)
		for v, c := range cols {
			cols2[p[v]] = c
		}
		w1 := CanonicalSparse(SparseFromArcs(n, arcs, cols)).Word
		w2 := CanonicalSparse(SparseFromArcs(n, arcs2, cols2)).Word
		if !bytes.Equal(w1, w2) {
			t.Fatalf("trial %d: sparse digraph word not relabeling-invariant", trial)
		}
		// And agreement with the dense digraph engine's verdict against an
		// independent digraph.
		m := 2 + rng.Intn(7)
		var arcs3 [][2]int
		for a := rng.Intn(3 * m); a > 0; a-- {
			arcs3 = append(arcs3, [2]int{rng.Intn(m), rng.Intn(m)})
		}
		cols3 := make([]int, m)
		for i := range cols3 {
			cols3[i] = rng.Intn(2)
		}
		dense := bytes.Equal(
			Canonical(NewDigraph(n, arcs, cols)).Word,
			Canonical(NewDigraph(m, arcs3, cols3)).Word)
		sparse := bytes.Equal(w1, CanonicalSparse(SparseFromArcs(m, arcs3, cols3)).Word)
		if dense != sparse {
			t.Fatalf("trial %d: digraph classification disagrees (dense=%v sparse=%v)", trial, dense, sparse)
		}
	}
}

// TestSparseFromGraphLoopsAndMultis: the Graph→Sparse bridge must preserve
// loop and parallel-edge multiplicities (a loop contributes 2 to the
// adjacency diagonal, matching AdjacencyMatrix).
func TestSparseFromGraphLoopsAndMultis(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // double edge
	b.AddEdge(1, 2)
	b.AddEdge(2, 2) // loop
	g := b.Graph()
	sp := SparseFromGraph(g, nil)
	adj := g.AdjacencyMatrix()
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if got := int(csrOutMult(sp.g, u, int32(v))); got != adj[u][v] {
				t.Fatalf("mult(%d,%d) = %d, want %d", u, v, got, adj[u][v])
			}
		}
	}
	// Classification must agree with the dense engine on this multigraph.
	c := FromGraph(g, nil)
	pm := perm.Perm{2, 0, 1}
	if !bytes.Equal(
		CanonicalSparse(sp).Word,
		CanonicalSparse(SparseFromColored(c.Permuted(pm))).Word) {
		t.Fatal("sparse words differ across a relabeling of the multigraph")
	}
}
