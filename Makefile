# Reproduction of "Can we elect if we cannot compare?" (SPAA 2003).
# Stdlib only; everything runs offline.

GO ?= go

.PHONY: all build test race bench experiments examples vet fmt cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure of the paper (E1-E12).
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/petersen
	$(GO) run ./examples/hypercube
	$(GO) run ./examples/babel
	$(GO) run ./examples/preferences
	$(GO) run ./examples/rendezvous
