// Package isobench defines the canonical-engine benchmark kernels shared by
// the repo-root `go test -bench` benchmarks (bench_iso_test.go) and the
// BENCH_iso.json perf-trajectory generator (cmd/benchiso). Keeping the
// kernels in one place guarantees the JSON artifact and the interactive
// benchmarks measure exactly the same work (DESIGN.md §8, EXPERIMENTS.md).
package isobench

import (
	"testing"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/order"
)

// Case is one named benchmark kernel.
type Case struct {
	Name string
	Run  func(b *testing.B)
}

// analyzeC32 is the headline workload of the perf trajectory: the full
// centralized analysis (classes, ≺ order, Cayley recognition, Theorem 2.1
// oracle) of the 32-cycle with four spread home-bases. The documented target
// is ≥5× over the pre-optimization engine on this kernel.
func analyzeC32(b *testing.B) {
	g := graph.Cycle(32)
	homes := []int{0, 8, 16, 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := elect.Analyze(g, homes, order.Direct); err != nil {
			b.Fatal(err)
		}
	}
}

// AnalyzeC32 runs the headline kernel under the optimized engine.
func AnalyzeC32(b *testing.B) { analyzeC32(b) }

// AnalyzeC32Reference runs the headline kernel with Canonical routed through
// the frozen pre-optimization engine, giving the perf-trajectory baseline.
func AnalyzeC32Reference(b *testing.B) {
	iso.SetReferenceEngine(true)
	defer iso.SetReferenceEngine(false)
	analyzeC32(b)
}

func canonical(c *iso.Colored) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			iso.CanonicalWord(c)
		}
	}
}

// surrounding returns the C32 surrounding digraph kernel input: the exact
// bicolored digraph shape Analyze feeds the engine once per class.
func surrounding() *iso.Colored {
	g := graph.Cycle(32)
	return order.Surrounding(g, elect.BlackColors(32, []int{0, 8, 16, 24}), 0)
}

// Cases lists the kernels in report order. The first two form the speedup
// pair (reference vs optimized Analyze(C32)); the rest track the engine on
// representative shapes: cycles, hypercubes, Petersen, tori, a surrounding
// digraph, and the refinement pass alone.
func Cases() []Case {
	return []Case{
		{"AnalyzeC32Reference", AnalyzeC32Reference},
		{"AnalyzeC32", AnalyzeC32},
		{"CanonicalC32Surrounding", canonical(surrounding())},
		{"CanonicalC64", canonical(iso.FromGraph(graph.Cycle(64), nil))},
		{"CanonicalQ4", canonical(iso.FromGraph(graph.Hypercube(4), nil))},
		{"CanonicalPetersen", canonical(iso.FromGraph(graph.Petersen(), nil))},
		{"CanonicalTorus4x4", canonical(iso.FromGraph(graph.Torus(4, 4), nil))},
		{"EquitablePartitionQ5", func(b *testing.B) {
			c := iso.FromGraph(graph.Hypercube(5), nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				iso.EquitablePartition(c)
			}
		}},
		{"OrderClassesTorus4x6", func(b *testing.B) {
			g := graph.Torus(4, 6)
			colors := elect.BlackColors(24, []int{0, 12})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				order.ComputeAndOrder(g, colors, order.Direct)
			}
		}},
	}
}

// sparseCanonical returns a kernel canonicalizing sp with the given worker
// count; the graph is built once, outside the timed loop.
func sparseCanonical(mk func() *graph.Graph, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		sp := iso.SparseFromGraph(mk(), nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := iso.CanonicalSparseOpt(sp, iso.Options{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// twinBlowup is the twin-heavy multigraph kernel input: the 4-fold blowup of
// C_32 with every edge doubled — 32 classes of 4 mutually interchangeable
// twins, multiplicity-2 arcs throughout, automorphism group of order at
// least (4!)^32·64. Orbit pruning must collapse the factorial fan-out at
// every level of the search.
func twinBlowup() *graph.Graph {
	base := graph.BlowupCycle(32, 4)
	b := graph.NewBuilder(base.N())
	for _, e := range base.EdgeEndpoints() {
		b.AddEdge(e[0], e[1])
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}

// LargeCases lists the large-family kernels (10³–10⁵ nodes) exercising the
// word-packed sparse engine: full canonical searches at n ≈ 4·10³, the
// worker-pool pairs, and the 10⁵-node refinement and Analyze workloads. Kept
// out of Cases so `benchiso -quick` and the default `go test -bench` stay
// fast; `benchiso` without -quick and `make bench-iso-large` include them.
//
// The *Par4 kernels run the same search with four workers. On a multi-core
// host the fan-out spreads the root branches across cores; on a single-core
// host (see the gomaxprocs field of BENCH_iso.json) the pool's speculative
// exploration of sibling branches costs wall-clock instead of saving it —
// the pair is reported honestly either way, and the differential tests
// guarantee the words are bit-identical regardless.
func LargeCases() []Case {
	return []Case{
		{"CanonicalSparseC4096", sparseCanonical(func() *graph.Graph { return graph.Cycle(4096) }, 1)},
		{"CanonicalSparseC4096Par4", sparseCanonical(func() *graph.Graph { return graph.Cycle(4096) }, 4)},
		{"CanonicalSparseTorus64x64", sparseCanonical(func() *graph.Graph { return graph.Torus(64, 64) }, 1)},
		{"CanonicalSparseTwinBlowup", sparseCanonical(twinBlowup, 1)},
		{"CanonicalSparseTwinBlowupPar4", sparseCanonical(twinBlowup, 4)},
		{"RefinePassRandReg100k", func(b *testing.B) {
			sp := iso.SparseFromGraph(graph.RandomRegular(100_000, 3, 1), nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iso.SparseEquitablePartition(sp)
			}
		}},
		{"AnalyzeRandReg100k", func(b *testing.B) {
			g := graph.RandomRegular(100_000, 3, 1)
			homes := []int{0, 137, 4242, 99_999}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := elect.Analyze(g, homes, order.Direct); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}
