package zoo_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/zoo"
)

// relabelDiverges reports whether renaming an instance's nodes by perm
// changes anything observable about a zoo protocol: the central prediction
// (solvability, winning agent index, mode, fallback, applicability) or the
// deterministic transformed-backend run fingerprint (per-agent outcomes and
// exact move counts). Node names are exactly what the qualitative model
// denies the agents, so everything here must be invariant.
func relabelDiverges(t *testing.T, spec string, g *graph.Graph, homes []int, perm []int) bool {
	t.Helper()
	g2, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	homes2 := make([]int, len(homes))
	for i, h := range homes {
		homes2[i] = perm[h]
	}
	pred, err := zoo.Predict(spec, g, nil, homes)
	if err != nil {
		t.Fatal(err)
	}
	pred2, err := zoo.Predict(spec, g2, nil, homes2)
	if err != nil {
		t.Fatal(err)
	}
	if pred != pred2 {
		return true
	}
	p, err := zoo.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Transformed{}.Run(runtime.Config{Graph: g, Homes: homes, Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := runtime.Transformed{}.Run(runtime.Config{Graph: g2, Homes: homes2, Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Outcomes {
		if res.Outcomes[i] != res2.Outcomes[i] || res.Moves[i] != res2.Moves[i] {
			return true
		}
	}
	return false
}

// shrinkPerm reduces a divergence-inducing permutation toward the identity:
// it repeatedly restores a displaced node to its own name (swapping to stay
// a permutation) as long as the divergence persists, so the report shows the
// fewest renamed nodes that still break invariance.
func shrinkPerm(diverges func([]int) bool, perm []int) []int {
	perm = append([]int(nil), perm...)
	for changed := true; changed; {
		changed = false
		for i := range perm {
			if perm[i] == i {
				continue
			}
			cand := append([]int(nil), perm...)
			j := i
			for k, v := range cand {
				if v == i {
					j = k
				}
			}
			cand[i], cand[j] = i, cand[i]
			if diverges(cand) {
				perm = cand
				changed = true
			}
		}
	}
	return perm
}

// displaced counts the nodes perm renames.
func displaced(perm []int) int {
	n := 0
	for i, p := range perm {
		if p != i {
			n++
		}
	}
	return n
}

// TestZooRelabelingInvariance is the property test behind the zoo's
// anonymity claim: for random (protocol, instance, permutation) triples,
// relabeling the graph and mapping the homes through the permutation leaves
// both the central prediction and the per-agent run fingerprint unchanged.
// On failure the permutation is shrunk to a minimal set of renames first.
func TestZooRelabelingInvariance(t *testing.T) {
	pool := []zooInstance{
		{"cycle5", graph.Cycle(5), []int{0, 2}},
		{"cycle6", graph.Cycle(6), []int{0, 3}},
		{"path6", graph.Path(6), []int{0, 3, 5}},
		{"star4", graph.Star(4), []int{1, 2}},
		{"hypercube3", graph.Hypercube(3), []int{0, 5, 6}},
		{"twin-double", twinDouble(t), []int{0, 1}},
	}
	specs := zoo.Specs()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := pool[rng.Intn(len(pool))]
		spec := specs[rng.Intn(len(specs))]
		perm := rng.Perm(inst.g.N())
		if !relabelDiverges(t, spec, inst.g, inst.homes, perm) {
			return true
		}
		min := shrinkPerm(func(p []int) bool {
			return relabelDiverges(t, spec, inst.g, inst.homes, p)
		}, perm)
		t.Logf("%s on %s diverges under relabeling %v (shrunk from %v, %d nodes renamed)",
			spec, inst.name, min, perm, displaced(min))
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShrinkPerm checks the shrinker itself on fabricated divergences: an
// always-diverging predicate shrinks all the way to the identity, and a
// divergence tied to one node shrinks to a single transposition moving it.
func TestShrinkPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	start := rng.Perm(8)
	if start[2] == 2 {
		start[2], start[3] = start[3], start[2]
	}

	id := shrinkPerm(func([]int) bool { return true }, start)
	if displaced(id) != 0 {
		t.Fatalf("always-true divergence shrank to %v, want identity", id)
	}

	moved2 := shrinkPerm(func(p []int) bool { return p[2] != 2 }, start)
	if moved2[2] == 2 {
		t.Fatalf("shrinker repaired the one node the divergence needs: %v", moved2)
	}
	if d := displaced(moved2); d != 2 {
		t.Fatalf("node-2 divergence shrank to %v (%d renamed), want one transposition", moved2, d)
	}
}
