package elect

import (
	"fmt"

	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// knowledge is everything an agent derives locally from its map after
// MAP-DRAWING: the ordered equivalence classes (COMPUTE & ORDER), the gcd
// reduction schedule, and navigation plans. It lives entirely in the agent's
// own coordinates.
type knowledge struct {
	a   *sim.Agent
	m   *Map
	ord *order.Ordered

	at   int   // current local node
	tour []int // DFS preorder of nodes (tour visits them in this order)
	par  []int // DFS tree parent
}

// newKnowledge runs COMPUTE & ORDER on a drawn map.
func newKnowledge(a *sim.Agent, m *Map, ord order.Ordering) *knowledge {
	a.SetPhase(telemetry.PhaseOrder)
	sp := a.Span("compute-and-order")
	k := &knowledge{a: a, m: m, at: m.Home}
	k.ord = order.ComputeAndOrder(m.G, m.Colors(), ord)
	k.buildTour()
	sp.End()
	return k
}

// buildTour computes a DFS tree of the map rooted at home; a full traversal
// follows the tree with backtracking (2(n−1) moves).
func (k *knowledge) buildTour() {
	n := k.m.G.N()
	k.par = make([]int, n)
	for i := range k.par {
		k.par[i] = -1
	}
	k.par[k.m.Home] = k.m.Home
	var pre []int
	var dfs func(v int)
	dfs = func(v int) {
		pre = append(pre, v)
		for _, h := range k.m.G.Ports(v) {
			if k.par[h.To] == -1 {
				k.par[h.To] = v
				dfs(h.To)
			}
		}
	}
	dfs(k.m.Home)
	k.tour = pre
}

// moveTo walks the agent from its current node to the target local node
// along DFS-tree paths (up to the common ancestor, then down).
func (k *knowledge) moveTo(target int) error {
	if k.at == target {
		return nil
	}
	// Path from node to root.
	pathUp := func(v int) []int {
		var p []int
		for v != k.m.Home {
			p = append(p, v)
			v = k.par[v]
		}
		p = append(p, k.m.Home)
		return p
	}
	up := pathUp(k.at)
	down := pathUp(target)
	// Trim the common suffix (shared ancestry), keeping the joint.
	i, j := len(up)-1, len(down)-1
	for i > 0 && j > 0 && up[i-1] == down[j-1] {
		i--
		j--
	}
	// Walk up[0..i] then down[j..0].
	route := append([]int{}, up[1:i+1]...)
	for t := j - 1; t >= 0; t-- {
		route = append(route, down[t])
	}
	for _, next := range route {
		if err := k.step(next); err != nil {
			return err
		}
	}
	if k.at != target {
		return fmt.Errorf("elect: navigation ended at %d, want %d", k.at, target)
	}
	return nil
}

// step moves across one edge to an adjacent local node.
func (k *knowledge) step(next int) error {
	for p, h := range k.m.G.Ports(k.at) {
		if h.To == next {
			if _, err := k.a.Move(k.m.Syms[k.at][p]); err != nil {
				return err
			}
			k.at = next
			return nil
		}
	}
	return fmt.Errorf("elect: %d not adjacent to %d", next, k.at)
}

// tourAll visits every node of the map in DFS order, invoking f at each
// (including home, first), and returns the agent to its home-base.
func (k *knowledge) tourAll(f func(local int, b *sim.Board)) error {
	for _, v := range k.tour {
		if err := k.moveTo(v); err != nil {
			return err
		}
		if f != nil {
			if err := k.a.Access(func(b *sim.Board) { f(v, b) }); err != nil {
				return err
			}
		}
	}
	return k.moveTo(k.m.Home)
}

// writeEverywhere tours the network writing the tag on every whiteboard.
func (k *knowledge) writeEverywhere(tag string) error {
	return k.tourAll(func(_ int, b *sim.Board) { b.Write(tag) })
}

// waitHome blocks at the home-base until pred holds on its whiteboard.
func (k *knowledge) waitHome(pred func(sim.Signs) bool) (sim.Signs, error) {
	if err := k.moveTo(k.m.Home); err != nil {
		return nil, err
	}
	return k.a.Wait(pred)
}

// accessHome runs f on the home whiteboard.
func (k *knowledge) accessHome(f func(b *sim.Board)) error {
	if err := k.moveTo(k.m.Home); err != nil {
		return err
	}
	return k.a.Access(f)
}

// myClass returns the index (in protocol order) of the agent's home class.
func (k *knowledge) myClass() int { return k.ord.ClassOf[k.m.Home] }

// classNodes returns the local nodes of class i.
func (k *knowledge) classNodes(i int) []int { return k.ord.Classes[i] }

// isHomeBase reports whether local node v is a home-base.
func (k *knowledge) isHomeBase(v int) bool { return k.m.Black[v] }
