package elect

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// QuantitativeElect is the universal election protocol of the quantitative
// model (Section 1.3): every agent traverses the graph to collect all agent
// labels, and the agent with the maximum label is elected. It requires the
// run to be configured with sim.Config.QuantitativeIDs — the protocol
// compares integer identities, which the qualitative model forbids.
//
// Implementation: each agent stamps its integer identity (as a colored sign
// "id:<n>") on every whiteboard and then waits at home until all r identity
// signs have arrived, where r is the number of home-bases counted during
// MAP-DRAWING. The maximum identity wins; the winner's color is read off
// the winning sign.
func QuantitativeElect() sim.Protocol {
	return func(a *sim.Agent) (sim.Outcome, error) {
		m, err := MapDraw(a)
		if err != nil {
			return sim.Outcome{}, err
		}
		k := newKnowledge(a, m, 0)
		myID := a.ID()
		if err := k.writeEverywhere("id:" + strconv.Itoa(myID)); err != nil {
			return sim.Outcome{}, err
		}
		r := m.R()
		ss, err := k.waitHome(func(ss sim.Signs) bool {
			return len(ss.WithPrefix("id:")) >= r
		})
		if err != nil {
			return sim.Outcome{}, err
		}
		best, bestColor := -1, sim.Color{}
		for _, s := range ss.WithPrefix("id:") {
			n, err := strconv.Atoi(strings.TrimPrefix(s.Tag, "id:"))
			if err != nil {
				return sim.Outcome{}, fmt.Errorf("elect: malformed id sign %q", s.Tag)
			}
			if n > best {
				best, bestColor = n, s.Color
			}
		}
		if best == myID {
			return sim.Outcome{Role: sim.RoleLeader, Leader: a.Color()}, nil
		}
		return sim.Outcome{Role: sim.RoleDefeated, Leader: bestColor}, nil
	}
}
