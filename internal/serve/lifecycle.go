package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// HTTPServer couples an http.Server with a bound listener, asynchronous
// error propagation, and ordered shutdown — the lifecycle plumbing every
// serving CLI in this repository shares. It exists because the obvious
// `go http.Serve(ln, mux)` loses the error and leaks the listener
// (cmd/campaign -listen did exactly that).
type HTTPServer struct {
	srv  *http.Server
	ln   net.Listener
	errc chan error
}

// Listen binds addr and prepares (but does not start) the server. base,
// when non-nil, parents every request context — cancel it to cancel all
// in-flight request contexts (the drain hammer).
func Listen(addr string, h http.Handler, base context.Context) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if base != nil {
		srv.BaseContext = func(net.Listener) context.Context { return base }
	}
	return &HTTPServer{srv: srv, ln: ln, errc: make(chan error, 1)}, nil
}

// Addr is the bound address (resolves ":0" to the real port).
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Start serves in a background goroutine. A serve failure lands on Err;
// the expected http.ErrServerClosed after Shutdown/Close does not.
func (h *HTTPServer) Start() {
	go func() {
		if err := h.srv.Serve(h.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			h.errc <- err
		}
		close(h.errc)
	}()
}

// Err yields at most one asynchronous serve error, then closes. Select on
// it alongside your main work so a dying listener is not silent.
func (h *HTTPServer) Err() <-chan error { return h.errc }

// Shutdown stops accepting, then waits for in-flight requests up to ctx's
// deadline (http.Server.Shutdown semantics).
func (h *HTTPServer) Shutdown(ctx context.Context) error {
	return h.srv.Shutdown(ctx)
}

// Close tears the server down immediately, dropping in-flight connections.
func (h *HTTPServer) Close() error { return h.srv.Close() }

// Drain is the daemon's full termination sequence: flip s to draining
// (healthz 503), stop accepting and wait up to grace for in-flight
// requests; if any outlive the budget, cancel their runs through
// s.CancelRuns and give them cleanup seconds to unwind before closing
// hard. Returns nil on a clean drain.
func Drain(h *HTTPServer, s *Server, grace, cleanup time.Duration) error {
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := h.Shutdown(ctx)
	if err == nil {
		return nil
	}
	// In-flight work outlived the budget: abort the runs (the context
	// plumbing unwinds sims mid-flight), then re-await briefly.
	s.CancelRuns()
	ctx2, cancel2 := context.WithTimeout(context.Background(), cleanup)
	defer cancel2()
	if err2 := h.Shutdown(ctx2); err2 != nil {
		h.Close() //nolint:errcheck // already failing; report the drain error
		return err
	}
	return nil
}
