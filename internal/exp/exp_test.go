package exp

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "bbb"}, [][]string{{"xx", "y"}, {"z", "wwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: %d\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}

func TestFirstSeenCoding(t *testing.T) {
	got := FirstSeenCoding([]string{"*", "o", ".", "*"})
	want := []int{1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coding %v, want %v", got, want)
		}
	}
	if len(FirstSeenCoding(nil)) != 0 {
		t.Fatal("empty coding should be empty")
	}
}

func TestFig2Experiments(t *testing.T) {
	if out, err := Fig2AB(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out, err := Fig2C(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}

func TestAnonymousExperiment(t *testing.T) {
	out, err := RunAnonymousExperiment()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "contradiction") {
		t.Error("missing contradiction line")
	}
}

func TestElectExperiment(t *testing.T) {
	out, rows, err := RunElectExperiment(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(rows) != len(ElectSuite()) {
		t.Fatalf("rows %d, want %d", len(rows), len(ElectSuite()))
	}
	for _, r := range rows {
		if r.Ratio > 40 {
			t.Errorf("%s: ratio %.1f exceeds constant bound", r.Name, r.Ratio)
		}
	}
}

func TestPetersenExperiment(t *testing.T) {
	out, err := RunPetersenExperiment(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}

func TestCostExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, rows, err := RunCostExperiment(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(rows) == 0 {
		t.Fatal("no cost rows")
	}
}

func TestCayleyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, rows, err := RunCayleyExperiment(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, rows, err := Table1(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Universal != "No" || rows[2].Universal != "Yes" {
		t.Errorf("Table 1 corners wrong: %+v", rows)
	}
	if !strings.Contains(rows[1].EffectualCayley, "Yes") {
		t.Errorf("qualitative Cayley cell: %q", rows[1].EffectualCayley)
	}
}

func TestSkipAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := RunSkipAblation(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "moves(literal)") {
		t.Error("missing ablation column")
	}
}

func TestSharedHomesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := RunSharedHomesExperiment(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "weighted placements") {
		t.Error("missing sweep summary")
	}
}

func TestDegradationExperiment(t *testing.T) {
	out, rows, err := RunDegradationExperiment(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, r := range rows {
		if r.Factor <= 0 || r.Factor > 20 {
			t.Errorf("%s: degradation factor %.2f out of plausible range", r.Name, r.Factor)
		}
	}
}

func TestFig1Experiment(t *testing.T) {
	out, err := RunFig1Experiment(1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "identical") {
		t.Error("missing equivalence column")
	}
}
