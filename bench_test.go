package repro

// Benchmarks regenerating the paper's table and figures (DESIGN.md §4):
//
//	E1 Table 1     — BenchmarkTable1*
//	E2 Figure 2ab  — BenchmarkFig2Views
//	E3 Figure 2c   — BenchmarkFig2cViews
//	E4 Theorem 3.1 — BenchmarkElect* (per family; reports moves/(r·|E|))
//	E5 Theorem 4.1 — BenchmarkCayley*
//	E6 Figure 5    — BenchmarkPetersen*
//	E7 Section 1.3 — BenchmarkAnonymousLockstep
//	E8 cost bound  — BenchmarkMovesScaling* (reports moves/(r·|E|))
//
// plus the DESIGN.md §5 ablations: hair vs direct ordering, canonical vs
// brute-force labeling, refinement views vs explicit trees, map drawing.

import (
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/labeling"
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/view"
)

// benchRun measures one protocol on one instance across b.N adversary seeds,
// executed as a single-worker campaign work list (seeds 1..b.N, analysis
// skipped) so the benchmarks and the experiment tables share one engine and
// the per-op time stays the pure protocol runtime.
func benchRun(b *testing.B, g *graph.Graph, homes []int, kind campaign.ProtocolKind) {
	b.Helper()
	b.ReportAllocs()
	runs := make([]campaign.Run, b.N)
	for i := range runs {
		runs[i] = campaign.Run{
			Instance: "bench", G: g, Homes: homes, Seed: int64(i + 1), Protocol: kind,
		}
	}
	b.ResetTimer()
	rep, err := campaign.ExecuteRuns(runs, campaign.Options{Workers: 1, NoAnalysis: true})
	if err != nil {
		b.Fatal(err)
	}
	last := rep.Results[len(rep.Results)-1]
	if last.Err != "" {
		b.Fatal(last.Err)
	}
	b.ReportMetric(last.Ratio, "moves/(r|E|)")
}

// --- E1: Table 1 ---

func BenchmarkTable1QualitativeK2(b *testing.B) {
	benchRun(b, graph.Path(2), []int{0, 1}, campaign.ProtoElect)
}

func BenchmarkTable1QuantitativeK2(b *testing.B) {
	benchRun(b, graph.Path(2), []int{0, 1}, campaign.ProtoQuantitative)
}

func BenchmarkTable1QuantitativePetersen(b *testing.B) {
	benchRun(b, graph.Petersen(), []int{0, 1}, campaign.ProtoQuantitative)
}

// --- E2 / E3: Figure 2 ---

func BenchmarkFig2Views(b *testing.B) {
	g := graph.Path(3)
	l := labeling.Fig2aLabeling()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := view.ComputeClasses(g, l, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2cViews(b *testing.B) {
	g := graph.Fig2c()
	l := labeling.Fig2cLabeling()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := view.ComputeClasses(g, l, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Protocol ELECT per family (Theorem 3.1) ---

func BenchmarkElectCycleSolvable(b *testing.B) {
	benchRun(b, graph.Cycle(6), []int{0, 2}, campaign.ProtoElect)
}

func BenchmarkElectCycleUnsolvable(b *testing.B) {
	benchRun(b, graph.Cycle(6), []int{0, 3}, campaign.ProtoElect)
}

func BenchmarkElectStarNodeReduce(b *testing.B) {
	benchRun(b, graph.Star(4), []int{1, 2, 3}, campaign.ProtoElect)
}

func BenchmarkElectHypercube(b *testing.B) {
	benchRun(b, graph.Hypercube(3), []int{0, 1, 3}, campaign.ProtoElect)
}

func BenchmarkElectRandom10(b *testing.B) {
	benchRun(b, graph.RandomConnected(10, 6, 13), []int{0, 2, 5, 8}, campaign.ProtoElect)
}

// --- E5: the Cayley decision (Theorem 4.1) ---

func BenchmarkCayleyElectQ3(b *testing.B) {
	benchRun(b, graph.Hypercube(3), []int{0, 1, 3}, campaign.ProtoCayley)
}

func BenchmarkCayleyDecisionTorus(b *testing.B) {
	g := graph.Torus(3, 3)
	black := make([]int, g.N())
	black[0], black[4] = 1, 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := elect.CayleyTranslationCount(g, black, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCayleyRecognizePetersenNegative(b *testing.B) {
	g := graph.Petersen()
	black := make([]int, 10)
	black[0], black[1] = 1, 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		isCayley, _, err := elect.CayleyTranslationCount(g, black, 0)
		if err != nil {
			b.Fatal(err)
		}
		if isCayley {
			b.Fatal("Petersen recognized as Cayley")
		}
	}
}

// --- E6: Figure 5 ---

func BenchmarkPetersenElectFails(b *testing.B) {
	benchRun(b, graph.Petersen(), []int{0, 1}, campaign.ProtoElect)
}

func BenchmarkPetersenAdHoc(b *testing.B) {
	benchRun(b, graph.Petersen(), []int{0, 1}, campaign.ProtoPetersen)
}

// --- E7: Section 1.3 lockstep ---

func BenchmarkAnonymousLockstep(b *testing.B) {
	proto := func(obs elect.AnonObs) (string, elect.AnonAction) {
		if obs.State == "" {
			return "walk", elect.AnonAction{Write: "pebble", MoveLabel: 1}
		}
		if len(obs.Board) > 0 {
			return "done", elect.AnonAction{Declare: "leader"}
		}
		return "walk", elect.AnonAction{MoveLabel: 1}
	}
	cfg := elect.AnonConfig{
		G: graph.Cycle(6), Labels: elect.OrientedCycleLabeling(6),
		Homes: []int{0, 3}, Rounds: 8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := elect.RunAnonymous(cfg, proto); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: move scaling O(r·|E|) ---

func BenchmarkMovesScaling(b *testing.B) {
	for _, n := range []int{6, 12, 24} {
		homes := []int{0, n / 3, 2 * n / 3}
		b.Run(fmt.Sprintf("cycle-n%d-r3", n), func(b *testing.B) {
			benchRun(b, graph.Cycle(n), homes, campaign.ProtoElect)
		})
	}
	for _, r := range []int{2, 4, 8} {
		homes := make([]int, r)
		for i := range homes {
			homes[i] = 2 * i
		}
		b.Run(fmt.Sprintf("cycle-n16-r%d", r), func(b *testing.B) {
			benchRun(b, graph.Cycle(16), homes, campaign.ProtoElect)
		})
	}
}

// BenchmarkCampaignParallel measures the campaign engine end to end: a
// 20-run work list (two cycle instances × 10 seeds) through the worker
// pool with the shared analysis cache, per-op = one whole campaign.
func BenchmarkCampaignParallel(b *testing.B) {
	spec := campaign.Spec{
		Families: []campaign.FamilySpec{
			{Family: "cycle", Sizes: []int{9, 12}, Placement: "adjacent", R: 3},
		},
		Seeds:    campaign.SeedRange{From: 1, To: 10},
		Protocol: campaign.ProtoElect,
	}
	runs, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := campaign.ExecuteRuns(runs, campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Summary.Errors > 0 || rep.Summary.Mismatches > 0 {
			b.Fatalf("campaign failed: %+v", rep.Summary.Outcomes)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkOrderingDirect(b *testing.B) {
	g := graph.Petersen()
	colors := elect.BlackColors(10, []int{0, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		order.ComputeAndOrder(g, colors, order.Direct)
	}
}

func BenchmarkOrderingHairs(b *testing.B) {
	g := graph.Petersen()
	colors := elect.BlackColors(10, []int{0, 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		order.ComputeAndOrder(g, colors, order.Hairs)
	}
}

func BenchmarkCanonicalSearch(b *testing.B) {
	c := iso.FromGraph(graph.Complete(7), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		iso.CanonicalWord(c)
	}
}

func BenchmarkCanonicalBrute(b *testing.B) {
	c := iso.FromGraph(graph.Complete(7), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		iso.BruteCanonicalWord(c)
	}
}

func BenchmarkViewsRefinement(b *testing.B) {
	g := graph.Hypercube(4)
	l := graph.PortLabeling(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := view.ComputeClasses(g, l, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViewsExplicitTree(b *testing.B) {
	g := graph.Hypercube(3)
	l := graph.PortLabeling(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		view.BuildTree(g, l, nil, 0, 5)
	}
}

func BenchmarkMapDraw(b *testing.B) {
	g := graph.Hypercube(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{Graph: g, Homes: []int{0}, Seed: int64(i), WakeAll: true},
			func(a *sim.Agent) (sim.Outcome, error) {
				_, err := elect.MapDraw(a)
				return sim.Outcome{}, err
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm21Oracle measures the exact symmetric-labeling decision.
func BenchmarkThm21Oracle(b *testing.B) {
	g := graph.Cycle(8)
	colors := elect.BlackColors(8, []int{0, 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := labeling.ExistsSymmetricLabeling(g, colors, 0); err != nil {
			b.Fatal(err)
		}
	}
}
