package elect

import (
	"repro/internal/runtime"
	"repro/internal/sim"
)

// QuantitativeElect is the universal election protocol of the quantitative
// model (Section 1.3): every agent traverses the graph to discover the
// other agents, and the agent with the maximum label is elected. It
// requires the run to be configured with sim.Config.QuantitativeIDs — the
// protocol compares integer identities, which the qualitative model
// forbids.
//
// The implementation is runtime.DFSElection — the repository's single
// portable election — adapted onto the concurrent simulator with
// runtime.AsSimProtocol. The same protocol value runs unchanged on all
// four runtime backends; this wrapper only fixes the historical name and
// sim.Protocol signature for the quantitative experiment suite.
func QuantitativeElect() sim.Protocol {
	return runtime.AsSimProtocol(runtime.DFSElection())
}
