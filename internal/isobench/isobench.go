// Package isobench defines the canonical-engine benchmark kernels shared by
// the repo-root `go test -bench` benchmarks (bench_iso_test.go) and the
// BENCH_iso.json perf-trajectory generator (cmd/benchiso). Keeping the
// kernels in one place guarantees the JSON artifact and the interactive
// benchmarks measure exactly the same work (DESIGN.md §8, EXPERIMENTS.md).
package isobench

import (
	"testing"

	"repro/internal/elect"
	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/order"
)

// Case is one named benchmark kernel.
type Case struct {
	Name string
	Run  func(b *testing.B)
}

// analyzeC32 is the headline workload of the perf trajectory: the full
// centralized analysis (classes, ≺ order, Cayley recognition, Theorem 2.1
// oracle) of the 32-cycle with four spread home-bases. The documented target
// is ≥5× over the pre-optimization engine on this kernel.
func analyzeC32(b *testing.B) {
	g := graph.Cycle(32)
	homes := []int{0, 8, 16, 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := elect.Analyze(g, homes, order.Direct); err != nil {
			b.Fatal(err)
		}
	}
}

// AnalyzeC32 runs the headline kernel under the optimized engine.
func AnalyzeC32(b *testing.B) { analyzeC32(b) }

// AnalyzeC32Reference runs the headline kernel with Canonical routed through
// the frozen pre-optimization engine, giving the perf-trajectory baseline.
func AnalyzeC32Reference(b *testing.B) {
	iso.SetReferenceEngine(true)
	defer iso.SetReferenceEngine(false)
	analyzeC32(b)
}

func canonical(c *iso.Colored) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			iso.CanonicalWord(c)
		}
	}
}

// surrounding returns the C32 surrounding digraph kernel input: the exact
// bicolored digraph shape Analyze feeds the engine once per class.
func surrounding() *iso.Colored {
	g := graph.Cycle(32)
	return order.Surrounding(g, elect.BlackColors(32, []int{0, 8, 16, 24}), 0)
}

// Cases lists the kernels in report order. The first two form the speedup
// pair (reference vs optimized Analyze(C32)); the rest track the engine on
// representative shapes: cycles, hypercubes, Petersen, tori, a surrounding
// digraph, and the refinement pass alone.
func Cases() []Case {
	return []Case{
		{"AnalyzeC32Reference", AnalyzeC32Reference},
		{"AnalyzeC32", AnalyzeC32},
		{"CanonicalC32Surrounding", canonical(surrounding())},
		{"CanonicalC64", canonical(iso.FromGraph(graph.Cycle(64), nil))},
		{"CanonicalQ4", canonical(iso.FromGraph(graph.Hypercube(4), nil))},
		{"CanonicalPetersen", canonical(iso.FromGraph(graph.Petersen(), nil))},
		{"CanonicalTorus4x4", canonical(iso.FromGraph(graph.Torus(4, 4), nil))},
		{"EquitablePartitionQ5", func(b *testing.B) {
			c := iso.FromGraph(graph.Hypercube(5), nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				iso.EquitablePartition(c)
			}
		}},
		{"OrderClassesTorus4x6", func(b *testing.B) {
			g := graph.Torus(4, 6)
			colors := elect.BlackColors(24, []int{0, 12})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				order.ComputeAndOrder(g, colors, order.Direct)
			}
		}},
	}
}
