package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter: %d, want 5", c.Value())
	}
	if r.Counter("runs") != c {
		t.Error("counter handle not stable across lookups")
	}
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge: %d, want 4", g.Value())
	}
	h := r.Histogram("moves", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 1022 {
		t.Errorf("histogram count/sum: %d/%d, want 4/1022", s.Count, s.Sum)
	}
	want := []int64{2, 1, 1} // <=10, <=100, overflow
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d: %d, want %d", i, b.Count, want[i])
		}
	}
	if !s.Buckets[2].Overflow {
		t.Error("last bucket should be marked overflow")
	}
}

// TestNilRegistryIsNoOp guards the disabled path: a nil registry hands
// out nil handles whose every method is a no-op, and none of it panics.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("y").Set(3)
	r.Histogram("z", []int64{1}).Observe(9)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Error("nil metrics should read as zero")
	}
	if got := r.Names(); got != nil {
		t.Errorf("nil registry names: %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

// TestNilRunIsAllocationFree guards the tentpole guarantee: with
// telemetry disabled (a nil *Run), every collection entry point is a
// zero-allocation no-op.
func TestNilRunIsAllocationFree(t *testing.T) {
	var r *Run
	allocs := testing.AllocsPerRun(100, func() {
		r.CountMove(PhaseMapDraw)
		r.CountAccess(PhaseOrder)
		r.CountWrite(PhaseAgentReduce)
		r.CountErase(PhaseNodeReduce)
		sp := r.StartSpan(0, "x", PhaseMapDraw)
		sp.End()
		r.Instant(0, "y", PhaseNone, 0)
	})
	if allocs != 0 {
		t.Errorf("nil-Run telemetry allocated %.1f times per run, want 0", allocs)
	}
}

func TestRunCountersAndSpans(t *testing.T) {
	r := NewRun()
	r.CountMove(PhaseMapDraw)
	r.CountMove(PhaseMapDraw)
	r.CountAccess(PhaseOrder)
	r.CountWrite(PhaseAgentReduce)
	r.CountErase(PhaseNodeReduce)
	r.CountMove(NumPhases + 3) // out of range clamps to PhaseNone
	tot := r.Totals()
	if tot.Moves[PhaseMapDraw] != 2 || tot.Accesses[PhaseOrder] != 1 ||
		tot.Writes[PhaseAgentReduce] != 1 || tot.Erases[PhaseNodeReduce] != 1 {
		t.Errorf("totals wrong: %+v", tot)
	}
	if tot.Moves[PhaseNone] != 1 {
		t.Errorf("out-of-range phase should clamp to none, got %+v", tot.Moves)
	}

	sp := r.StartSpan(2, "map-drawing", PhaseMapDraw)
	time.Sleep(time.Millisecond)
	sp.End()
	r.Instant(2, "move", PhaseMapDraw, r.Since())
	spans, instants := r.Spans(), r.Instants()
	if len(spans) != 1 || len(instants) != 1 {
		t.Fatalf("spans/instants: %d/%d, want 1/1", len(spans), len(instants))
	}
	s := spans[0]
	if s.Track != 2 || s.Name != "map-drawing" || s.Phase != PhaseMapDraw {
		t.Errorf("span record wrong: %+v", s)
	}
	if s.End <= s.Start {
		t.Errorf("span must have positive duration: %+v", s)
	}
	if instants[0].At < s.End {
		t.Errorf("instant recorded before the span ended: %+v vs %+v", instants[0], s)
	}
}

func TestRunConcurrentUse(t *testing.T) {
	r := NewRun()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.CountMove(PhaseMapDraw)
				if i%100 == 0 {
					sp := r.StartSpan(w, "tick", PhaseOrder)
					sp.End()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Totals().Moves[PhaseMapDraw]; got != 8000 {
		t.Errorf("concurrent moves: %d, want 8000", got)
	}
	if got := len(r.Spans()); got != 80 {
		t.Errorf("concurrent spans: %d, want 80", got)
	}
}

func TestRegistryJSONAndHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign_runs_total").Add(3)
	r.Gauge("campaign_inflight").Set(2)
	r.Histogram("run_moves", ExpBuckets(10, 4, 3)).Observe(50)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var got struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Counters["campaign_runs_total"] != 3 || got.Gauges["campaign_inflight"] != 2 {
		t.Errorf("metrics round-trip wrong: %+v", got)
	}
	h := got.Histograms["run_moves"]
	if h.Count != 1 || h.Sum != 50 {
		t.Errorf("histogram round-trip wrong: %+v", h)
	}
}

// TestServeHTTPEmptyRegistry: a scrape of a registry with no metrics yet
// yields the full envelope with empty (not null) maps — clients index into
// them without nil checks.
func TestServeHTTPEmptyRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	NewRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		v, ok := raw[key]
		if !ok {
			t.Fatalf("empty snapshot missing %q: %s", key, rec.Body.String())
		}
		if string(v) == "null" {
			t.Fatalf("%q is null, want {}", key)
		}
	}
}

// TestServeHTTPConcurrentScrape: scraping while writers mutate counters,
// gauges and histograms is safe (meaningful under -race) and every scrape
// returns parseable JSON.
func TestServeHTTPConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				r.Counter("hits").Inc()
				r.Gauge("inflight").Set(int64(i))
				r.Histogram("lat", ExpBuckets(1, 2, 8)).Observe(int64(i % 100))
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("scrape %d: status %d", i, rec.Code)
		}
		var got Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("scrape %d: bad JSON: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if r.Counter("hits").Value() == 0 {
		t.Fatal("writers never ran")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(10, 4, 4)
	want := []int64{10, 40, 160, 640}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets: %v, want %v", got, want)
		}
	}
	// Degenerate parameters still produce strictly ascending bounds.
	got = ExpBuckets(0, 0, 3)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("bounds not ascending: %v", got)
		}
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || name == "invalid" || seen[name] {
			t.Errorf("phase %d has bad or duplicate name %q", p, name)
		}
		seen[name] = true
	}
	if (NumPhases + 1).String() != "invalid" {
		t.Error("out-of-range phase should stringify as invalid")
	}
	if got := PhaseNames(); len(got) != int(NumPhases) || got[PhaseMapDraw] != "mapdraw" {
		t.Errorf("PhaseNames: %v", got)
	}
}
