# Reproduction of "Can we elect if we cannot compare?" (SPAA 2003).
# Stdlib only; everything runs offline.

GO ?= go

.PHONY: all build test race bench bench-iso bench-iso-large campaign experiments examples vet fmt cover cover-gate fuzz adversary faults serve bench-serve

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Canonical-engine perf trajectory: regenerate BENCH_iso.json (DESIGN.md §8,
# EXPERIMENTS.md). Fails if the optimized engine falls below the documented
# speedup gate over the frozen reference on Analyze(C32). -quick skips the
# large-family kernels; bench-iso-large measures everything including the
# 10³–10⁵-node sparse-engine workloads and the worker-pool pairs.
bench-iso:
	$(GO) run ./cmd/benchiso -quick -o BENCH_iso.json

bench-iso-large:
	$(GO) run ./cmd/benchiso -o BENCH_iso.json

cover:
	$(GO) test -cover ./...

# CI's coverage gate: the protocol core, the engine, the fault plane, the
# sketch layer and the runtime contract must each keep statement coverage
# at or above 70%.
cover-gate:
	@fail=0; \
	for pkg in ./internal/elect ./internal/sim ./internal/faults ./internal/telemetry/sketch ./internal/runtime; do \
		$(GO) test -coverprofile=cover.out $$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct%"; \
		if awk -v p=$$pct 'BEGIN{exit !(p < 70)}'; then \
			echo "$$pkg coverage $$pct% is below the 70% gate"; fail=1; \
		fi; \
	done; \
	rm -f cover.out; exit $$fail

# The acceptance campaign: cycles + hypercubes across 25 seeds, all cores.
campaign:
	$(GO) run ./cmd/campaign \
		-families "cycle:6,9,12,15,18,24;hypercube:3,4" \
		-placement spread -r 3 -seeds 1..25 \
		-jsonl campaign_runs.jsonl -summary BENCH_campaign.json

# Native fuzzing smoke: 30s per target (same invocation as CI).
fuzz:
	$(GO) test -fuzz FuzzElectSchedule -fuzztime 30s -run '^$$' ./internal/adversary
	$(GO) test -fuzz FuzzCanonical -fuzztime 30s -run '^$$' ./internal/iso
	$(GO) test -fuzz FuzzFromTwins -fuzztime 30s -run '^$$' ./internal/graph

# Adversarial schedule sweep of a representative instance: every strategy
# across seeds, protocol invariants checked per run (see DESIGN.md §10).
adversary:
	$(GO) run ./cmd/adversary -graph cycle -n 12 -homes 0,4,8 \
		-seeds 1..8 -report adversary_report.json -save adversary_violations

# Fault-plane sweep: crash-stops, torn writes and read staleness crossed
# with the scheduling adversary, fault-aware invariants checked per run
# (see DESIGN.md §11). Exits nonzero on any violation.
faults:
	$(GO) run ./cmd/faults -graph star -n 4 -homes 1,2 \
		-seeds 1..8 -report faults_report.json -save fault_violations

# The election daemon (internal/serve, DESIGN.md §12): analyses, single
# runs and streamed campaigns over HTTP/JSON on :8080.
serve:
	$(GO) run ./cmd/electd -listen :8080

# Daemon throughput/latency benchmark: start a local electd, drive the
# seeded open-loop mix against it, write BENCH_serve.json, tear it down.
bench-serve:
	$(GO) build -o /tmp/electd-bench ./cmd/electd
	$(GO) build -o /tmp/electload-bench ./cmd/electload
	@/tmp/electd-bench -listen 127.0.0.1:18080 & \
	EPID=$$!; \
	/tmp/electload-bench -addr 127.0.0.1:18080 -duration 10s -rate 200 -out BENCH_serve.json; \
	rc=$$?; kill -TERM $$EPID; wait $$EPID; exit $$rc

# Regenerate every table and figure of the paper (E1-E12).
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/petersen
	$(GO) run ./examples/hypercube
	$(GO) run ./examples/babel
	$(GO) run ./examples/preferences
	$(GO) run ./examples/rendezvous
