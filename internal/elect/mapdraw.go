// Package elect implements the paper's protocols on top of the sim runtime:
//
//   - MAP-DRAWING: every agent draws a map of the anonymous network by a
//     whiteboard DFS, waking sleeping agents it meets (Section 3.2).
//   - COMPUTE & ORDER: equivalence classes of the drawn bicolored map,
//     totally ordered by the canonical surrounding order ≺ (Lemma 3.1).
//   - Protocol ELECT: gcd reduction of the active-agent set by AGENT-REDUCE
//     (agent–agent matching) and NODE-REDUCE (agent–node acquisition),
//     with sign-based synchronization (Figures 3 and 4, Theorem 3.1).
//   - The Cayley variant of Section 4 (translation classes), the
//     quantitative baseline of Section 1.3, the bespoke Petersen protocol
//     of Section 4, and a lockstep interpreter for the anonymous-agents
//     impossibility argument of Section 1.3.
//
// All protocol code sees the network exclusively through sim.Agent — opaque
// incomparable colors and port symbols, whiteboards, moves — so the
// qualitative model is enforced mechanically.
package elect

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Map is the result of MAP-DRAWING from one agent's perspective: an
// isomorphic copy of the network in the agent's own coordinates (node 0 is
// the agent's home-base; port p of node v corresponds to Symbols()[p] in the
// agent's own presentation order).
type Map struct {
	// G is the drawn multigraph.
	G *graph.Graph
	// Syms[v][p] is the symbol behind port p of local node v.
	Syms [][]sim.Symbol
	// Black[v] reports whether local node v is a home-base (Weight > 0).
	Black []bool
	// Weight[v] is the number of agents based at local node v — 0 or 1 in
	// the paper's main setting, possibly more under the shared-home
	// extension of Section 1.2.
	Weight []int
	// HomeColors[v] lists the colors of the agents based at v (empty if
	// white). HomeColor reports the first for the common 0/1-weight case.
	HomeColors [][]sim.Color
	// Home is the agent's own home node (always 0).
	Home int
}

// HomeColor returns the color of the (single) agent based at v; it panics
// if several agents share the node — callers supporting the shared-home
// extension must use HomeColors.
func (m *Map) HomeColor(v int) sim.Color {
	if len(m.HomeColors[v]) == 0 {
		return sim.Color{}
	}
	if len(m.HomeColors[v]) > 1 {
		panic("elect: node hosts several agents; use HomeColors")
	}
	return m.HomeColors[v][0]
}

// R returns the number of agents on the map (the sum of node weights).
func (m *Map) R() int {
	r := 0
	for _, w := range m.Weight {
		r += w
	}
	return r
}

// Colors returns the node coloring for the order package: the weight of
// each node (0 = white; under the paper's main setting black nodes are 1).
func (m *Map) Colors() []int {
	return append([]int(nil), m.Weight...)
}

// tagMapNode marks a node as visited by this agent, carrying the agent's
// local id for the node: "map:<k>".
const tagMapNodePrefix = "map:"

// MapDraw performs MAP-DRAWING: a depth-first traversal of the whole
// network, marking each whiteboard with a colored sign carrying the agent's
// local node number, wiring up ports via entry symbols, recording home-base
// colors, and waking every sleeping agent encountered. The agent ends back
// at its home-base. Cost: every edge is traversed at most twice in each
// direction, O(|E|) moves.
func MapDraw(a *sim.Agent) (*Map, error) {
	a.SetPhase(telemetry.PhaseMapDraw)
	sp := a.Span("map-drawing")
	defer sp.End()
	type nodeRec struct {
		syms   []sim.Symbol
		twins  [][2]int // per local port: (node, port) of twin; -1 unset
		colors []sim.Color
	}
	var nodes []*nodeRec
	symIndex := func(rec *nodeRec, s sim.Symbol) int {
		for i, t := range rec.syms {
			if t == s {
				return i
			}
		}
		return -1
	}

	// visit registers the current node if new, returning (local id, isNew).
	visit := func() (int, bool, error) {
		id, isNew := -1, false
		err := a.Access(func(b *sim.Board) {
			ss := b.Signs()
			for _, s := range ss {
				if s.Color.Equal(a.Color()) && strings.HasPrefix(s.Tag, tagMapNodePrefix) {
					k, err := strconv.Atoi(s.Tag[len(tagMapNodePrefix):])
					if err == nil {
						id = k
					}
					return
				}
			}
			// New node: assign the next local id and record its structure.
			id, isNew = len(nodes), true
			b.Write(tagMapNodePrefix + strconv.Itoa(id))
			rec := &nodeRec{syms: a.Symbols()}
			rec.twins = make([][2]int, len(rec.syms))
			for i := range rec.twins {
				rec.twins[i] = [2]int{-1, -1}
			}
			homes := ss.Colors(sim.TagHome)
			if len(homes) > 0 {
				rec.colors = homes
				// Wake the residents if they are still asleep.
				if !ss.Has(sim.TagWake) {
					b.Write(sim.TagWake)
				}
			}
			nodes = append(nodes, rec)
		})
		return id, isNew, err
	}

	if _, _, err := visit(); err != nil {
		return nil, err
	}

	// Iterative DFS over (node, port) pairs. The agent physically sits at
	// stack[len(stack)-1].node throughout.
	type frame struct {
		node     int
		nextPort int
		backSym  sim.Symbol // symbol leading back to the parent (zero at root)
	}
	stack := []*frame{{node: 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		rec := nodes[f.node]
		if f.nextPort >= len(rec.syms) {
			// Done with this node: backtrack physically.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				if _, err := a.Move(f.backSym); err != nil {
					return nil, err
				}
			}
			continue
		}
		p := f.nextPort
		f.nextPort++
		if rec.twins[p][0] != -1 {
			continue // already wired from the other side
		}
		entry, err := a.Move(rec.syms[p])
		if err != nil {
			return nil, err
		}
		id, isNew, err := visit()
		if err != nil {
			return nil, err
		}
		q := symIndex(nodes[id], entry)
		if q < 0 {
			return nil, errors.New("elect: entry symbol not among destination symbols")
		}
		rec.twins[p] = [2]int{id, q}
		nodes[id].twins[q] = [2]int{f.node, p}
		if isNew {
			stack = append(stack, &frame{node: id, backSym: entry})
		} else {
			// Known node (or a loop back to the same node): step back.
			if _, err := a.Move(entry); err != nil {
				return nil, err
			}
		}
	}

	// Assemble the Map.
	twins := make([][][2]int, len(nodes))
	syms := make([][]sim.Symbol, len(nodes))
	black := make([]bool, len(nodes))
	weight := make([]int, len(nodes))
	colors := make([][]sim.Color, len(nodes))
	for v, rec := range nodes {
		twins[v] = rec.twins
		syms[v] = rec.syms
		black[v] = len(rec.colors) > 0
		weight[v] = len(rec.colors)
		colors[v] = rec.colors
	}
	g, err := graph.FromTwins(twins)
	if err != nil {
		return nil, fmt.Errorf("elect: inconsistent map: %w", err)
	}
	return &Map{G: g, Syms: syms, Black: black, Weight: weight, HomeColors: colors, Home: 0}, nil
}
