// Package adversary searches the schedule space of the asynchronous
// simulator for protocol-invariant violations.
//
// Theorem 3.1 claims correctness of Protocol ELECT on *every* asynchronous
// execution, but a seeded random-delay run exercises exactly one schedule.
// This package replays one (G, placement) instance under a sweep of
// scheduling strategies × seeds — each run serialized through the
// sim.Strategy turnstile so its decision log pins the execution down — and
// checks the elect invariants after every run: at most one leader,
// all-agree-or-all-report-failure, verdict equal to the independently
// computed gcd of the class sizes, and the O(r·|E|) move bound. Any
// violating run ships with its compact decision log, replayable bit-for-bit
// via sim.Replay (cmd/elect -replay, cmd/adversary -save-violations).
//
// The built-in strategies (see Strategies) probe qualitatively different
// corners: uniform random, fair round-robin, starvation of one agent,
// convoy bursts, global lockstep, and the greedy same-class attacker that
// keeps automorphism-equivalent agents maximally concurrent at the
// symmetry-breaking whiteboard races of AGENT-REDUCE / NODE-REDUCE.
package adversary

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/elect"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config describes one exploration: an instance, the strategies and seeds
// to sweep, and the invariant parameters.
type Config struct {
	// Instance names the (graph, homes) pair in reports (optional).
	Instance string
	G        *graph.Graph
	Homes    []int
	// Protocol is the protocol under test (default: ELECT with the direct
	// ordering). The invariant oracle assumes ELECT semantics — elect iff
	// the class-size gcd is 1 — so substituting another protocol only makes
	// sense for ELECT-equivalent variants (or deliberately broken ones, in
	// tests proving the checker fires).
	Protocol sim.Protocol
	// Strategies lists strategy names to sweep (default: all built-ins).
	Strategies []string
	// Faults lists fault strategy names (faults.Strategies vocabulary) to
	// cross with the scheduling strategies; the empty name "" is the
	// fault-free baseline. Empty means fault-free only. Runs with a fault
	// strategy are checked against the fault-aware invariant spec: crashes
	// may stall the run, but never two leaders and never a wrong leader.
	Faults []string
	// Seeds lists the seeds swept per strategy; each seed drives both the
	// simulation (colors, presentations, wake set) and the strategy's own
	// randomness (default 1..4).
	Seeds []int64
	// WakeAll starts every agent awake; otherwise each seed wakes a random
	// nonempty subset (more schedules, including sleeper-wakes-sleeper
	// chains).
	WakeAll bool
	// RatioBound is the constant c of the moves ≤ c·r·|E| invariant
	// (default 40, matching the campaign engine).
	RatioBound float64
	// Timeout is the per-run watchdog (default 60s).
	Timeout time.Duration
	// Workers bounds the pool running (strategy, seed) combinations in
	// parallel; each run is internally serialized by its turnstile
	// (default GOMAXPROCS).
	Workers int
	// KeepSchedules retains the decision log of every run in the report;
	// by default only violating runs carry their schedule (clean sweeps
	// stay small).
	KeepSchedules bool
	// Metrics, when set, receives live explorer counters:
	// adversary_runs_total, adversary_violations_total,
	// adversary_deadlocks_total, adversary_decisions_total and a per-run
	// decision histogram.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.G == nil || len(c.Homes) == 0 {
		return c, fmt.Errorf("adversary: need a graph and at least one home")
	}
	if c.Protocol == nil {
		c.Protocol = elect.Elect(elect.Options{})
	}
	if len(c.Strategies) == 0 {
		c.Strategies = Strategies()
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3, 4}
	}
	if c.RatioBound == 0 {
		c.RatioBound = 40
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Instance == "" {
		c.Instance = fmt.Sprintf("n%d%v", c.G.N(), c.Homes)
	}
	return c, nil
}

// decisionBuckets shapes the adversary_run_decisions histogram.
var decisionBuckets = telemetry.ExpBuckets(16, 4, 8)

// Explore sweeps the instance under every (strategy, seed) combination and
// checks the protocol invariants after each run. It returns a report of all
// runs; it does not stop at the first violation (the point is the coverage
// of the whole sweep).
func Explore(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// The centralized oracle, computed once: expected verdict + classes for
	// the same-class strategy.
	an, err := elect.Analyze(cfg.G, cfg.Homes, order.Direct)
	if err != nil {
		return nil, fmt.Errorf("adversary: analyze %s: %w", cfg.Instance, err)
	}
	spec := elect.SpecFromAnalysis(an, cfg.G.M(), cfg.RatioBound)
	classOf := AgentClasses(cfg.G, cfg.Homes)

	rep := &Report{
		Instance: cfg.Instance,
		N:        cfg.G.N(), M: cfg.G.M(), R: len(cfg.Homes),
		Sizes: an.Sizes, GCD: an.GCD, Expected: spec.Expected,
		Strategies: cfg.Strategies, Seeds: cfg.Seeds, Faults: cfg.Faults,
	}
	faultAxis := cfg.Faults
	if len(faultAxis) == 0 {
		faultAxis = []string{""} // fault-free baseline only
	}
	type job struct {
		strat string
		fault string
		seed  int64
	}
	var jobs []job
	for _, s := range cfg.Strategies {
		for _, f := range faultAxis {
			for _, seed := range cfg.Seeds {
				jobs = append(jobs, job{s, f, seed})
			}
		}
	}
	rep.Runs = make([]RunRecord, len(jobs))

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rep.Runs[i] = exploreOne(cfg, jobs[i].strat, jobs[i].fault, jobs[i].seed, spec, classOf)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i := range rep.Runs {
		if len(rep.Runs[i].Violations) > 0 {
			rep.Violating++
		}
		if rep.Runs[i].Deadlock {
			rep.Deadlocks++
		}
		rep.Decisions += int64(rep.Runs[i].Decisions)
		rep.CrashedAgents += rep.Runs[i].Crashed
		rep.Takeovers += rep.Runs[i].Takeovers
	}
	return rep, nil
}

// exploreOne runs one (strategy, fault, seed) combination under recording
// and checks the invariants (the fault-aware spec when a fault strategy is
// set).
func exploreOne(cfg Config, strat, fault string, seed int64, spec elect.InvariantSpec, classOf []int) RunRecord {
	rec := RunRecord{Strategy: strat, Fault: fault, Seed: seed}
	strategy, err := NewStrategy(strat, seed, classOf)
	if err != nil {
		rec.Violations = []elect.Violation{{Code: elect.VioRunError, Detail: err.Error()}}
		return rec
	}
	var inj *faults.Injector
	if fault != "" {
		inj, err = faults.New(fault, seed, len(cfg.Homes), cfg.Homes)
		if err != nil {
			rec.Violations = []elect.Violation{{Code: elect.VioRunError, Detail: err.Error()}}
			return rec
		}
		spec.FaultsInjected = true
	}
	var log sim.Schedule
	start := time.Now()
	simCfg := sim.Config{
		Graph:     cfg.G,
		Homes:     cfg.Homes,
		Seed:      seed,
		WakeAll:   cfg.WakeAll,
		Timeout:   cfg.Timeout,
		Scheduler: strategy,
		Record:    &log,
	}
	if inj != nil {
		simCfg.Faults = inj
	}
	res, runErr := sim.Run(simCfg, cfg.Protocol)
	rec.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	rec.Decisions = log.Len()
	rec.Deadlock = runErr != nil && runErr == sim.ErrDeadlock
	if res != nil {
		rec.Moves = res.TotalMoves()
		rec.Accesses = res.TotalAccesses()
		rec.Crashed = res.CrashedCount()
		rec.Takeovers = res.Takeovers
		switch {
		case res.AgreedLeader():
			rec.Outcome = "leader"
		case res.AllUnsolvable():
			rec.Outcome = "unsolvable"
		default:
			rec.Outcome = "mixed"
		}
	}
	rec.Violations = elect.CheckInvariants(res, runErr, spec)
	if inj != nil {
		// The fault manifest: what was actually injected. Plans are tiny,
		// so every fault run carries its own (that is what makes a
		// violating run replayable without re-deriving the strategy).
		rec.FaultEvents = len(inj.Recorded().Events)
		rec.FaultPlan = inj.Recorded().EncodeString()
	}
	if len(rec.Violations) > 0 || cfg.KeepSchedules {
		rec.Schedule = EncodeScheduleString(&log)
	}
	m := cfg.Metrics
	m.Counter("adversary_runs_total").Inc()
	m.Counter("adversary_strategy_" + strat + "_runs").Inc()
	m.Counter("adversary_decisions_total").Add(int64(log.Len()))
	m.Histogram("adversary_run_decisions", decisionBuckets).Observe(int64(log.Len()))
	if len(rec.Violations) > 0 {
		m.Counter("adversary_violations_total").Inc()
	}
	if rec.Deadlock {
		m.Counter("adversary_deadlocks_total").Inc()
	}
	return rec
}

// AgentClasses maps each agent to the automorphism-equivalence class index
// of its home node under the bicolored instance — the input the same-class
// strategy targets. Exported for callers (campaign, CLIs) that construct
// strategies directly via NewStrategy.
func AgentClasses(g *graph.Graph, homes []int) []int {
	classes := order.Classes(g, elect.BlackColors(g.N(), homes))
	nodeClass := make([]int, g.N())
	for ci, nodes := range classes {
		for _, v := range nodes {
			nodeClass[v] = ci
		}
	}
	out := make([]int, len(homes))
	for i, h := range homes {
		out[i] = nodeClass[h]
	}
	return out
}
