package sketch

import "fmt"

// Count-min dimensions: DefaultWidth counters per row keeps the
// over-estimate below total/512 per row; DefaultDepth independent rows
// drive the probability all rows collide to (1/512)^4.
const (
	DefaultWidth = 512
	DefaultDepth = 4
)

// CountMin is a count-min frequency sketch over string keys: Add counts
// a key, Estimate returns a count that is never an under-estimate and
// over-estimates by more than Total()/width per row only with
// probability ~(1/2)^depth. Memory is width·depth counters, independent
// of the number of distinct keys — the campaign plane uses it to track
// invariant-violation signatures across millions of runs without an
// unbounded map.
//
// Hashing is deterministic (seeded FNV-1a), so two sketches with equal
// dimensions — such as the per-worker shards of one campaign — are
// mergeable with Merge, which is associative and commutative like
// Hist.Merge. Not safe for concurrent use.
type CountMin struct {
	width, depth int
	rows         []int64 // depth rows of width counters, row-major
	total        int64
}

// NewCountMin builds a sketch with the given dimensions (values < 1 take
// the defaults).
func NewCountMin(width, depth int) *CountMin {
	if width < 1 {
		width = DefaultWidth
	}
	if depth < 1 {
		depth = DefaultDepth
	}
	return &CountMin{width: width, depth: depth, rows: make([]int64, width*depth)}
}

// fnvRow hashes key for row r: FNV-1a 64 with a row-seeded offset basis,
// deterministic across processes.
func fnvRow(key string, r int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) + uint64(r)*0x9e3779b97f4a7c15
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Add counts n occurrences of key (n <= 0 is a no-op).
func (c *CountMin) Add(key string, n int64) {
	if n <= 0 {
		return
	}
	for r := 0; r < c.depth; r++ {
		c.rows[r*c.width+int(fnvRow(key, r)%uint64(c.width))] += n
	}
	c.total += n
}

// Estimate returns the estimated count of key: the minimum over rows,
// never below the true count.
func (c *CountMin) Estimate(key string) int64 {
	if c.depth == 0 {
		return 0
	}
	est := c.rows[int(fnvRow(key, 0)%uint64(c.width))]
	for r := 1; r < c.depth; r++ {
		if v := c.rows[r*c.width+int(fnvRow(key, r)%uint64(c.width))]; v < est {
			est = v
		}
	}
	return est
}

// Total returns the sum of all added counts.
func (c *CountMin) Total() int64 { return c.total }

// Merge folds o into c. The sketches must have identical dimensions
// (per-worker shards built by the same constructor always do). A nil or
// empty o is a no-op.
func (c *CountMin) Merge(o *CountMin) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if o.width != c.width || o.depth != c.depth {
		return fmt.Errorf("sketch: merge dimensions mismatch (%dx%d vs %dx%d)",
			c.width, c.depth, o.width, o.depth)
	}
	for i, v := range o.rows {
		c.rows[i] += v
	}
	c.total += o.total
	return nil
}

// Reset empties the sketch, keeping its dimensions.
func (c *CountMin) Reset() {
	for i := range c.rows {
		c.rows[i] = 0
	}
	c.total = 0
}

// Clone returns an independent copy (nil-safe).
func (c *CountMin) Clone() *CountMin {
	if c == nil {
		return nil
	}
	cp := *c
	cp.rows = append([]int64(nil), c.rows...)
	return &cp
}
