package runtime

import (
	"errors"
	"math/rand"
)

// Transformed is backend (c): the paper's Figure 1 transformation executed
// in process. "A message is an agent": each node is a processor owning a
// whiteboard and an inbox of (program, memory) messages; processing a
// message runs one protocol step against the local whiteboard, a Move
// becomes a send through the labeled port, a park waits for the whiteboard
// to change, and the initial wake-up is a fictitious first delivery at the
// home processor. Scheduling is a seeded random choice among busy
// processors, so runs are deterministic per (Config, Protocol).
type Transformed struct{}

// Name returns "transformed".
func (Transformed) Name() string { return "transformed" }

// netMsg is an agent riding a message: its index, carried memory, and the
// label (at the receiving processor) of the arrival port.
type netMsg struct {
	agent  int
	memory string
	entry  int
}

// parkedMsg is an agent whose last activation neither moved nor halted: it
// waits at the processor until the whiteboard revision moves past seenRev.
type parkedMsg struct {
	netMsg
	seenRev int
}

// Run executes the protocol through the Figure 1 transformation.
func (tr Transformed) Run(cfg Config, p Protocol) (*Result, error) {
	labels, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	boards := make([]boardSet, n)
	rev := make([]int, n)
	inbox := make([][]netMsg, n)
	park := make([][]parkedMsg, n)
	res := &Result{
		Outcomes: make([]string, len(cfg.Homes)),
		Moves:    make([]int64, len(cfg.Homes)),
		Backend:  tr.Name(),
	}
	halted := 0
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Engine pre-marks and initial deliveries at the home processors.
	for i, h := range cfg.Homes {
		boards[h].write(i, TagHome)
		inbox[h] = append(inbox[h], netMsg{agent: i, memory: p.Init(i + 1), entry: -1})
	}

	// execute runs one Figure 1 activation at processor v.
	execute := func(v int, m netMsg) error {
		mem, eff := p.Step(m.memory, View{
			Degree: cfg.Graph.Deg(v),
			Labels: append([]int(nil), labels[v]...),
			Entry:  m.entry,
			Board:  boards[v].view(),
			ID:     m.agent + 1,
		})
		for _, w := range eff.Write {
			if boards[v].write(m.agent, w) {
				rev[v]++
			}
		}
		if eff.Halt != "" {
			res.Outcomes[m.agent] = eff.Halt
			halted++
			return nil
		}
		if eff.Move >= 0 {
			for port, h := range cfg.Graph.Ports(v) {
				if labels[v][port] == eff.Move {
					res.Moves[m.agent]++
					inbox[h.To] = append(inbox[h.To], netMsg{
						agent:  m.agent,
						memory: mem,
						entry:  labels[h.To][h.Twin],
					})
					return nil
				}
			}
			return errors.New("runtime: transformed: move through unknown label")
		}
		park[v] = append(park[v], parkedMsg{netMsg: netMsg{agent: m.agent, memory: mem, entry: m.entry}, seenRev: rev[v]})
		return nil
	}

	for res.Steps < cfg.MaxSteps && halted < len(cfg.Homes) {
		// Busy processors: nonempty inbox, or a parked agent whose board
		// has changed since it parked.
		var busy []int
		for v := 0; v < n; v++ {
			if len(inbox[v]) > 0 {
				busy = append(busy, v)
				continue
			}
			for _, pk := range park[v] {
				if pk.seenRev != rev[v] {
					busy = append(busy, v)
					break
				}
			}
		}
		if len(busy) == 0 {
			break
		}
		v := busy[rng.Intn(len(busy))]
		res.Steps++
		if len(inbox[v]) > 0 {
			// FIFO delivery.
			msg := inbox[v][0]
			inbox[v] = inbox[v][1:]
			if err := execute(v, msg); err != nil {
				return res, err
			}
			continue
		}
		// Re-step the first re-steppable parked agent.
		for idx, pk := range park[v] {
			if pk.seenRev != rev[v] {
				park[v] = append(park[v][:idx], park[v][idx+1:]...)
				if err := execute(v, pk.netMsg); err != nil {
					return res, err
				}
				break
			}
		}
	}
	if halted < len(cfg.Homes) {
		return res, errors.New("runtime: transformed run ended with unhalted agents (deadlock or step budget)")
	}
	return res, nil
}
