// Command elect runs one simulated election and prints the per-agent
// outcomes and cost counters.
//
// Usage:
//
//	elect -graph cycle -n 6 -homes 0,3 [-protocol elect|cayley|quantitative|petersen]
//	      [-seed N] [-hairs] [-wake-all] [-trace] [-timeline out.json]
//	      [-strategy name [-record sched.json]] [-replay sched.json]
//
// With -timeline the run is collected by internal/telemetry and exported
// as Chrome trace_event JSON: open the file in Perfetto (ui.perfetto.dev)
// or chrome://tracing to see per-agent protocol phase spans and whiteboard
// events on a common timeline, plus a per-phase cost breakdown on stdout.
//
// With -strategy the run is serialized through the deterministic adversary
// scheduler (see internal/adversary); -record saves its decision log as a
// self-contained replay file, and -replay re-executes such a file (as
// written here or by cmd/adversary -save) bit-for-bit — combine with
// -timeline to inspect a violating schedule in Perfetto.
//
// Graph families: path, cycle, complete, star, hypercube (n = dimension),
// torus (n×n), petersen, wheel, prism, ccc (n = dimension), random.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/adversary"
	"repro/internal/telemetry"
)

func main() {
	family := flag.String("graph", "cycle", "graph family: path, cycle, complete, star, hypercube, torus, petersen, wheel, prism, ccc, random")
	n := flag.Int("n", 6, "size parameter (nodes, or dimension for hypercube/ccc, or side for torus)")
	homesArg := flag.String("homes", "0", "comma-separated home-base nodes")
	protocol := flag.String("protocol", "elect", "protocol: elect, cayley, quantitative, petersen")
	seed := flag.Int64("seed", 1, "adversary seed")
	hairs := flag.Bool("hairs", false, "use the paper's hair ordering for ≺ (Lemma 3.1)")
	wakeAll := flag.Bool("wake-all", false, "wake all agents at start (default: random nonempty subset)")
	analyze := flag.Bool("analyze", true, "print the centralized solvability analysis")
	trace := flag.Bool("trace", false, "print every runtime event (moves, sign writes, outcomes)")
	timeline := flag.String("timeline", "", "write a Chrome trace_event timeline (open in Perfetto) to this file")
	strategyName := flag.String("strategy", "", "adversary scheduling strategy (deterministic serialized run): "+strings.Join(adversary.Strategies(), ", "))
	recordPath := flag.String("record", "", "write the scheduled run's decision log as a replay file (requires -strategy)")
	replayPath := flag.String("replay", "", "replay a recorded schedule file (overrides -graph/-n/-homes/-seed/-wake-all/-strategy)")
	flag.Parse()

	var replayFile *adversary.ScheduleFile
	if *replayPath != "" {
		var err error
		replayFile, err = adversary.LoadScheduleFile(*replayPath)
		if err != nil {
			fail(err)
		}
		*family, *n = replayFile.Family, replayFile.Size
		*seed, *wakeAll = replayFile.Seed, replayFile.WakeAll
		if replayFile.Protocol != "" {
			*protocol = replayFile.Protocol
		}
		fmt.Printf("replaying %s: %s%d%v seed %d (recorded under strategy %q)\n",
			*replayPath, replayFile.Family, replayFile.Size, replayFile.Homes, replayFile.Seed, replayFile.Strategy)
	}

	g, err := buildGraph(*family, *n)
	if err != nil {
		fail(err)
	}
	homes, err := parseHomes(*homesArg)
	if err != nil {
		fail(err)
	}
	if replayFile != nil {
		homes = replayFile.Homes
	}
	fmt.Printf("graph: %s (n=%d, |E|=%d), homes: %v, protocol: %s, seed: %d\n",
		*family, g.N(), g.M(), homes, *protocol, *seed)

	if *analyze {
		an, err := repro.Analyze(g, homes)
		if err != nil {
			fail(err)
		}
		fmt.Printf("analysis: class sizes %v, gcd %d; Cayley %v", an.Sizes, an.GCD, an.Cayley)
		if an.Cayley {
			fmt.Printf(" (translation d = %d)", an.TranslationD)
		}
		if an.Thm21Checked {
			verdict := "election possible"
			if an.Impossible21 {
				verdict = "election impossible (Theorem 2.1)"
			}
			fmt.Printf("; %s", verdict)
		}
		fmt.Println()
	}

	cfg := repro.RunConfig{Seed: *seed, WakeAll: *wakeAll, UseHairOrdering: *hairs}
	var replayStrat *repro.ReplayStrategy
	var recorded repro.Schedule
	switch {
	case replayFile != nil:
		sched, err := replayFile.Decode()
		if err != nil {
			fail(err)
		}
		replayStrat = repro.Replay(sched)
		cfg.Scheduler = replayStrat
	case *strategyName != "":
		strat, err := adversary.NewStrategy(*strategyName, *seed, adversary.AgentClasses(g, homes))
		if err != nil {
			fail(err)
		}
		cfg.Scheduler = strat
		if *recordPath != "" {
			cfg.RecordSchedule = &recorded
		}
	case *recordPath != "":
		fail(fmt.Errorf("-record requires -strategy"))
	}
	var tele *repro.TelemetryRun
	if *timeline != "" {
		tele = repro.NewTelemetryRun()
		cfg.Telemetry = tele
	}
	// The sink runs behind a buffered tracer so terminal I/O and timeline
	// bookkeeping happen off the simulation's hot path (events are emitted
	// under the board lock); Close after the run flushes whatever is still
	// buffered. With -timeline the sink replays whiteboard events as instant
	// marks on the exported timeline, using each event's own timestamp so
	// buffering does not skew it.
	var tracer *repro.BufferedTracer
	if *trace || tele != nil {
		printEvents := *trace
		tracer = repro.NewBufferedTracer(func(e repro.TraceEvent) {
			if tele != nil && e.Kind != repro.EvMove {
				name := e.Kind.String()
				if e.Tag != "" {
					name += " " + e.Tag
				}
				tele.Instant(e.Agent, name, e.Phase, e.At)
			}
			if !printEvents {
				return
			}
			switch e.Kind.String() {
			case "move":
				fmt.Printf("%12v agent %d -> node %d\n", e.At.Round(time.Microsecond), e.Agent, e.Node)
			case "write", "erase":
				fmt.Printf("%12v agent %d %s %q at node %d\n", e.At.Round(time.Microsecond), e.Agent, e.Kind, e.Tag, e.Node)
			default:
				fmt.Printf("%12v agent %d %s %s\n", e.At.Round(time.Microsecond), e.Agent, e.Kind, e.Tag)
			}
		}, 0)
		cfg.Trace = tracer.Trace
	}
	var res *repro.Result
	switch *protocol {
	case "elect":
		res, err = repro.RunElect(g, homes, cfg)
	case "cayley":
		res, err = repro.RunCayleyElect(g, homes, cfg)
	case "quantitative":
		res, err = repro.RunQuantitative(g, homes, cfg)
	case "petersen":
		res, err = repro.RunPetersenAdHoc(g, homes, cfg)
	default:
		fail(fmt.Errorf("unknown protocol %q", *protocol))
	}
	if tracer != nil {
		tracer.Close()
		if d := tracer.Dropped(); d > 0 {
			fmt.Printf("trace: %d events dropped (buffer full)\n", d)
		}
	}
	if err != nil {
		fail(err)
	}
	for i, o := range res.Outcomes {
		line := fmt.Sprintf("agent %d (home %d, %v): %s", i, homes[i], res.Colors[i], o.Role)
		if o.Role == repro.RoleDefeated {
			line += fmt.Sprintf(", accepts leader %v", o.Leader)
		}
		fmt.Printf("%s  [moves %d, accesses %d]\n", line, res.Moves[i], res.Accesses[i])
	}
	fmt.Printf("total: %d moves, %d whiteboard accesses, %v wall clock\n",
		res.TotalMoves(), res.TotalAccesses(), res.Elapsed)
	if replayStrat != nil {
		if d := replayStrat.Divergences(); d > 0 {
			fmt.Printf("replay: %d scheduling divergences (log did not match this build/run)\n", d)
		} else {
			fmt.Println("replay: schedule followed exactly (0 divergences)")
		}
	}
	if cfg.RecordSchedule != nil {
		sf := &adversary.ScheduleFile{
			Family: *family, Size: *n, Homes: homes,
			Seed: *seed, Protocol: *protocol, WakeAll: *wakeAll,
			Strategy: *strategyName,
			Schedule: adversary.EncodeScheduleString(&recorded),
		}
		if err := sf.WriteFile(*recordPath); err != nil {
			fail(err)
		}
		fmt.Printf("schedule (%d decisions) written to %s (replay with -replay)\n",
			recorded.Len(), *recordPath)
	}
	if tele != nil {
		tot := tele.Totals()
		for p, name := range telemetry.PhaseNames() {
			if tot.Moves[p] == 0 && tot.Accesses[p] == 0 && tot.Writes[p] == 0 && tot.Erases[p] == 0 {
				continue
			}
			fmt.Printf("  phase %-12s moves=%d accesses=%d writes=%d erases=%d\n",
				name, tot.Moves[p], tot.Accesses[p], tot.Writes[p], tot.Erases[p])
		}
		f, err := os.Create(*timeline)
		if err != nil {
			fail(err)
		}
		if err := repro.WriteChromeTrace(f, tele); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("timeline written to %s (open in Perfetto or chrome://tracing)\n", *timeline)
	}
	switch {
	case res.AgreedLeader():
		fmt.Println("result: a unique leader was elected and acknowledged")
	case res.AllUnsolvable():
		fmt.Println("result: all agents report the election unsolvable")
	default:
		fmt.Println("result: MIXED outcomes (protocol contract violated)")
		os.Exit(1)
	}
}

func buildGraph(family string, n int) (*repro.Graph, error) {
	switch family {
	case "path":
		return repro.Path(n), nil
	case "cycle":
		return repro.Cycle(n), nil
	case "complete":
		return repro.Complete(n), nil
	case "star":
		return repro.Star(n), nil
	case "hypercube":
		return repro.Hypercube(n), nil
	case "torus":
		return repro.Torus(n, n), nil
	case "petersen":
		return repro.Petersen(), nil
	case "wheel":
		return repro.Wheel(n), nil
	case "prism":
		return repro.Prism(n), nil
	case "ccc":
		return repro.CCC(n), nil
	case "random":
		return repro.RandomConnected(n, n/2, 42), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func parseHomes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad home %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "elect:", err)
	os.Exit(1)
}
