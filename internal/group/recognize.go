package group

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/iso"
	"repro/internal/perm"
)

// ErrUndecided is returned when the recognizer cannot decide within its
// resource caps (automorphism group too large to enumerate).
var ErrUndecided = errors.New("group: Cayley recognition undecided (automorphism group exceeds cap)")

// Recognition is the result of deciding whether a graph is a Cayley graph.
type Recognition struct {
	// IsCayley reports the decision.
	IsCayley bool
	// Regular, when IsCayley, is the regular subgroup of Aut(G) found
	// (a list of vertex permutations, closed under composition, acting
	// regularly). Regular[v] is the unique element mapping Base to v.
	Regular []perm.Perm
	// Base is the base vertex used to index Regular (always 0).
	Base int
	// Group, when IsCayley, is the abstract group reconstructed from the
	// regular subgroup: element v corresponds to the permutation
	// Regular[v], with the base vertex as identity.
	Group *Group
	// Gens, when IsCayley, is the generating set: the neighbors of Base,
	// as group elements. Cay(Group, Gens) is isomorphic to the input with
	// the identity vertex map (vertex v ↔ element v).
	Gens []int
}

// Recognize decides whether g is a Cayley graph by searching for a regular
// subgroup of Aut(g) (Sabidussi's theorem). The search is deterministic, so
// every caller — in particular every agent of the Section 4 protocol — finds
// the same subgroup for the same input. autCap bounds the automorphism-group
// enumeration (0 selects a default of 2^17 elements).
//
// The paper notes this test is "time-consuming, but decidable"; this
// implementation is exact at the evaluation's laptop scale.
func Recognize(g *graph.Graph, autCap int) (*Recognition, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("group: empty graph")
	}
	if !g.IsConnected() {
		return &Recognition{IsCayley: false}, nil
	}
	if reg, _ := g.IsRegular(); !reg {
		// Cayley graphs are vertex-transitive, hence regular.
		return &Recognition{IsCayley: false}, nil
	}
	if n == 1 {
		r := &Recognition{IsCayley: true, Regular: []perm.Perm{perm.Identity(1)}, Base: 0}
		r.Group = Cyclic(1)
		return r, nil
	}
	if autCap <= 0 {
		autCap = 1 << 17
	}
	gens := iso.AutomorphismGens(iso.FromGraph(g, nil))
	aut, err := perm.Closure(n, gens, autCap)
	if err != nil {
		return nil, ErrUndecided
	}
	if !aut.IsTransitive() {
		return &Recognition{IsCayley: false}, nil
	}
	reg := findRegularSubgroup(n, aut)
	if reg == nil {
		return &Recognition{IsCayley: false}, nil
	}
	rec := &Recognition{IsCayley: true, Regular: reg, Base: 0}
	rec.Group, rec.Gens, err = abstractFromRegular(g, reg)
	if err != nil {
		return nil, fmt.Errorf("group: internal reconstruction error: %w", err)
	}
	return rec, nil
}

// findRegularSubgroup searches Aut for a subgroup acting regularly on the
// n vertices, returning it indexed by image of vertex 0 (reg[v] maps 0 to
// v), or nil if none exists. Deterministic: candidates are scanned in the
// sorted element order produced by perm.Closure.
func findRegularSubgroup(n int, aut *perm.Group) []perm.Perm {
	// Candidates for reg[v]: fixed-point-free automorphisms mapping 0 to v
	// (every non-identity element of a regular subgroup is fixed-point-free).
	cand := make([][]perm.Perm, n)
	cand[0] = []perm.Perm{perm.Identity(n)}
	for _, a := range aut.Elements() {
		if a.IsIdentity() {
			continue
		}
		if a.IsFixedPointFree() {
			cand[a[0]] = append(cand[a[0]], a)
		}
	}
	for v := 1; v < n; v++ {
		if len(cand[v]) == 0 {
			return nil
		}
	}
	chosen := make([]perm.Perm, n)
	chosen[0] = perm.Identity(n)
	if search(n, cand, chosen, 1) {
		return chosen
	}
	return nil
}

// search assigns chosen[v] for all unassigned v, maintaining the invariant
// that the assigned set is product-consistent: for assigned u, v with
// u∘v's image of 0 assigned, chosen must agree. Constraint propagation:
// assigning chosen[v] forces chosen[w] for every product w reachable from
// assigned elements; contradictions backtrack.
func search(n int, cand [][]perm.Perm, chosen []perm.Perm, from int) bool {
	// Find first unassigned vertex.
	v := -1
	for u := from; u < n; u++ {
		if chosen[u] == nil {
			v = u
			break
		}
	}
	if v == -1 {
		return true // all assigned and consistent: regular subgroup found
	}
	for _, c := range cand[v] {
		// Tentatively assign and propagate closure.
		assigned := map[int]perm.Perm{v: c}
		if propagate(n, chosen, assigned) {
			for u, p := range assigned {
				chosen[u] = p
			}
			if search(n, cand, chosen, from) {
				return true
			}
			for u := range assigned {
				chosen[u] = nil
			}
		}
	}
	return false
}

// propagate extends the tentative assignment with all forced products.
// Returns false on contradiction; on success, assigned contains every
// newly-forced element (not those already in chosen).
func propagate(n int, chosen []perm.Perm, assigned map[int]perm.Perm) bool {
	get := func(u int) perm.Perm {
		if p := chosen[u]; p != nil {
			return p
		}
		return assigned[u]
	}
	queue := make([]int, 0, len(assigned))
	for u := range assigned {
		queue = append(queue, u)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		pu := get(u)
		// Close under products with every currently-known element, on both
		// sides, and under inverse.
		var known []int
		for w := 0; w < n; w++ {
			if get(w) != nil {
				known = append(known, w)
			}
		}
		try := func(p perm.Perm) bool {
			img := p[0]
			if ex := get(img); ex != nil {
				return ex.Equal(p)
			}
			assigned[img] = p
			queue = append(queue, img)
			return true
		}
		if !try(pu.Inverse()) {
			return false
		}
		for _, w := range known {
			pw := get(w)
			if !try(pu.Compose(pw)) || !try(pw.Compose(pu)) {
				return false
			}
		}
	}
	return true
}

// abstractFromRegular reconstructs the abstract group and generating set
// from a regular subgroup indexed by image of vertex 0.
func abstractFromRegular(g *graph.Graph, reg []perm.Perm) (*Group, []int, error) {
	n := g.N()
	// mul[u][v]: the element reg[u]∘reg[v] (apply reg[v] first) maps 0 to
	// reg[u](reg[v](0)) = reg[u][v]; since the subgroup is regular that
	// element is reg of that image.
	mul := make([][]int, n)
	for u := 0; u < n; u++ {
		mul[u] = make([]int, n)
		for v := 0; v < n; v++ {
			img := reg[u][reg[v][0]]
			// Verify consistency: reg[img] must equal reg[u]∘reg[v].
			comp := reg[v].Compose(reg[u])
			if !comp.Equal(reg[img]) {
				return nil, nil, fmt.Errorf("regular subgroup not closed at (%d,%d)", u, v)
			}
			mul[u][v] = img
		}
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	grp, err := FromTable("Recognized", mul, names)
	if err != nil {
		return nil, nil, err
	}
	gens := g.NeighborSet(0)
	sort.Ints(gens)
	return grp, gens, nil
}

// RecognizedCayley wraps a successful recognition as a Cayley structure on
// the original graph: vertex v is element v, and the port-generator map is
// recovered from the graph (port p of v leads to w, which is the element
// v⁻¹w applied... precisely: the generator is v⁻¹·w).
func (r *Recognition) RecognizedCayley(g *graph.Graph) (*Cayley, error) {
	if !r.IsCayley {
		return nil, errors.New("group: not a Cayley graph")
	}
	n := g.N()
	portGen := make([][]int, n)
	for v := 0; v < n; v++ {
		portGen[v] = make([]int, g.Deg(v))
		for p, h := range g.Ports(v) {
			portGen[v][p] = r.Group.Mul(r.Group.Inv(v), h.To)
		}
	}
	var gens []int
	seen := make(map[int]bool)
	for _, s := range portGen[0] {
		if !seen[s] {
			seen[s] = true
			gens = append(gens, s)
		}
	}
	sort.Ints(gens)
	return &Cayley{Group: r.Group, Gens: gens, G: g, PortGen: portGen}, nil
}
